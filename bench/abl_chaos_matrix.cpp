// Ablation: controller x fault type x severity chaos matrix.
//
// Every controller variant is exercised against every fault type in
// src/fault at two severities on Online Boutique, measuring goodput while
// the fault is active and after it clears. This is the "as many scenarios
// as you can imagine" axis the single scripted Fig. 18 drop cannot cover:
// it shows which control schemes stay stable under pod churn, degraded
// capacity, slow dependencies, dependency blackholes, and error bursts.
//
//   --smoke   1 seed, short horizon (CI fault-path crash check)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/online_boutique.hpp"
#include "common/table.hpp"
#include "exp/harness.hpp"
#include "exp/model_cache.hpp"
#include "exp/run_executor.hpp"
#include "fault/fault.hpp"

using namespace topfull;

namespace {

struct Phase {
  double fault_s;     ///< fault injection time
  double clear_s;     ///< fault end (revert/restart) time
  double end_s;       ///< run horizon
};

struct FaultCell {
  const char* name;
  fault::FaultType type;
  double mild;
  double severe;
};

// The matrix targets productcatalog: it sits on every API path, so every
// controller must react to its failure.
constexpr const char* kTarget = "productcatalog";

fault::FaultSchedule MakeFault(const FaultCell& cell, double severity,
                               const Phase& phase) {
  fault::FaultSchedule schedule;
  const SimTime at = Seconds(phase.fault_s);
  const SimTime duration = Seconds(phase.clear_s - phase.fault_s);
  switch (cell.type) {
    case fault::FaultType::kPodCrash:
      // severity = number of pods to kill (of productcatalog's 3).
      schedule.CrashPods(kTarget, at, static_cast<int>(severity), duration);
      break;
    case fault::FaultType::kCapacityDegrade:
      schedule.DegradeCapacity(kTarget, at, duration, severity);
      break;
    case fault::FaultType::kServiceTimeInflate:
      schedule.InflateServiceTime(kTarget, at, duration, severity);
      break;
    case fault::FaultType::kBlackhole:
      // severity = blackhole length as a fraction of the fault window.
      schedule.Blackhole(kTarget, at, static_cast<SimTime>(duration * severity));
      break;
    case fault::FaultType::kErrorBurst:
      schedule.ErrorBurst(kTarget, at, duration, severity);
      break;
    case fault::FaultType::kVmOutage:
      break;  // not part of the matrix (needs an HPA/cluster setup)
  }
  return schedule;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const Phase phase = smoke ? Phase{10.0, 20.0, 30.0} : Phase{20.0, 40.0, 70.0};
  const std::vector<std::uint64_t> seeds =
      smoke ? std::vector<std::uint64_t>{17} : std::vector<std::uint64_t>{17, 18};

  PrintBanner("Chaos matrix",
              "Online Boutique: controller x fault type x severity. Goodput "
              "during the fault window and after it clears (averaged over "
              "seeds).");

  const FaultCell cells[] = {
      {"crash", fault::FaultType::kPodCrash, 1, 2},
      {"degrade", fault::FaultType::kCapacityDegrade, 0.6, 0.25},
      {"inflate", fault::FaultType::kServiceTimeInflate, 1.5, 3.0},
      {"blackhole", fault::FaultType::kBlackhole, 0.5, 1.0},
      {"errors", fault::FaultType::kErrorBurst, 0.1, 0.4},
  };
  const exp::Variant variants[] = {
      exp::Variant::kNoControl,
      exp::Variant::kTopFull,
      exp::Variant::kDagor,
      exp::Variant::kBreakwater,
  };
  auto policy = exp::GetPretrainedPolicy();

  std::vector<exp::RunSpec> specs;
  for (const exp::Variant variant : variants) {
    for (const FaultCell& cell : cells) {
      for (const bool severe : {false, true}) {
        for (const std::uint64_t seed : seeds) {
          exp::RunSpec spec;
          spec.label = exp::VariantName(variant) + std::string("/") + cell.name +
                       (severe ? "/severe" : "/mild");
          spec.duration_s = phase.end_s;
          spec.variant = variant;
          spec.policy = policy.get();
          spec.make_app = [seed]() {
            apps::BoutiqueOptions options;
            options.seed = seed;
            auto app = apps::MakeOnlineBoutique(options);
            // Uniform RPC policy across every cell so the comparison is
            // fair; blackholes need the hop timeout to resolve.
            app->ConfigureRpc(Millis(500), /*max_retries=*/1, Millis(25));
            return app;
          };
          spec.traffic = [](workload::TrafficDriver& traffic, sim::Application& app) {
            traffic.AddClosedLoop(exp::UniformUsers(app),
                                  workload::Schedule::Constant(2000));
          };
          spec.faults = MakeFault(cell, severe ? cell.severe : cell.mild, phase);
          specs.push_back(std::move(spec));
        }
      }
    }
  }

  const auto results = exp::RunExecutor().Execute(specs);

  Table table("goodput (rps)");
  table.SetHeader({"controller", "fault", "severity", "during fault", "after clear"});
  std::size_t i = 0;
  for (const exp::Variant variant : variants) {
    for (const FaultCell& cell : cells) {
      for (const bool severe : {false, true}) {
        double during = 0.0, after = 0.0;
        for (std::size_t s = 0; s < seeds.size(); ++s, ++i) {
          const sim::Application& app = *results[i].app;
          during += exp::TotalGoodput(app, phase.fault_s, phase.clear_s);
          after += exp::TotalGoodput(app, phase.clear_s + 5.0, phase.end_s);
        }
        const auto n = static_cast<double>(seeds.size());
        table.AddRow({exp::VariantName(variant), cell.name,
                      severe ? "severe" : "mild", Fmt(during / n, 0),
                      Fmt(after / n, 0)});
      }
    }
  }
  table.Print();
  std::printf("\n%zu runs (%zu seed(s), horizon %.0f s, fault %g-%g s)%s\n",
              results.size(), seeds.size(), phase.end_s, phase.fault_s,
              phase.clear_s, smoke ? " [smoke]" : "");
  return 0;
}

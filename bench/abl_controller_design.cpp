// Ablation bench: the TopFull controller's design knobs, beyond the paper's
// Fig. 10 component breakdown. All runs use the Online Boutique overload of
// Fig. 8 (4200 closed-loop users) with the trained RL policy and vary one
// dimension at a time:
//
//   (a) overload detection — utilisation threshold sweep, and disabling the
//       queue-delay detector;
//   (b) controller latency feature — p50 vs p95 vs p99;
//   (c) control period — 0.5 s / 1 s (paper) / 2 s / 4 s;
//   (d) target-selection order — fewest-APIs-first (paper §4.1) vs
//       most-APIs-first vs arbitrary.
#include <cstdio>

#include "apps/online_boutique.hpp"
#include "common/table.hpp"
#include "exp/harness.hpp"
#include "exp/model_cache.hpp"

using namespace topfull;

namespace {

constexpr int kUsers = 4200;
constexpr double kSurgeS = 15.0;
constexpr double kEndS = 120.0;

double Run(const rl::GaussianPolicy* policy, core::TopFullConfig config) {
  apps::BoutiqueOptions options;
  options.seed = 77;
  auto app = apps::MakeOnlineBoutique(options);
  core::TopFullController controller(
      app.get(), std::make_unique<core::RlRateController>(policy), config);
  controller.Start();
  workload::TrafficDriver traffic(app.get());
  traffic.AddClosedLoop(exp::UniformUsers(*app),
                        workload::Schedule::Constant(kUsers / 6)
                            .Then(Seconds(kSurgeS), kUsers));
  app->RunFor(Seconds(kEndS));
  return exp::TotalGoodput(*app, kSurgeS, kEndS);
}

}  // namespace

int main() {
  PrintBanner("Controller-design ablations",
              "Online Boutique surge: avg total goodput (rps) while varying "
              "one controller knob at a time (all else = defaults).");
  auto policy = exp::GetPretrainedPolicy();

  {
    Table table("(a) overload detection");
    table.SetHeader({"detector", "goodput"});
    for (const double threshold : {0.85, 0.90, 0.95, 0.99}) {
      core::TopFullConfig config;
      config.overload.util_threshold = threshold;
      table.AddRow({"util > " + Fmt(threshold, 2), Fmt(Run(policy.get(), config), 0)});
    }
    core::TopFullConfig no_qd;
    no_qd.overload.use_queue_delay = false;
    table.AddRow({"util only (no queue-delay detector)",
                  Fmt(Run(policy.get(), no_qd), 0)});
    table.Print();
    std::printf("\n");
  }
  {
    Table table("(b) latency feature percentile");
    table.SetHeader({"feature", "goodput"});
    for (const double p : {50.0, 95.0, 99.0}) {
      core::TopFullConfig config;
      config.latency_percentile = p;
      table.AddRow({"p" + Fmt(p, 0), Fmt(Run(policy.get(), config), 0)});
    }
    table.Print();
    std::printf("\n");
  }
  {
    Table table("(c) control period");
    table.SetHeader({"period", "goodput"});
    for (const double period_s : {0.5, 1.0, 2.0, 4.0}) {
      core::TopFullConfig config;
      config.period = Seconds(period_s);
      table.AddRow({Fmt(period_s, 1) + " s", Fmt(Run(policy.get(), config), 0)});
    }
    table.Print();
    std::printf("\n");
  }
  {
    Table table("(d) target-selection order (paper: fewest APIs first)");
    table.SetHeader({"order", "goodput"});
    const std::pair<core::TargetOrder, const char*> orders[] = {
        {core::TargetOrder::kFewestApisFirst, "fewest APIs first"},
        {core::TargetOrder::kMostApisFirst, "most APIs first"},
        {core::TargetOrder::kServiceIdOrder, "arbitrary (service id)"},
    };
    for (const auto& [order, name] : orders) {
      core::TopFullConfig config;
      config.target_order = order;
      table.AddRow({name, Fmt(Run(policy.get(), config), 0)});
    }
    table.Print();
  }
  return 0;
}

// Ablation bench: asynchronous vs synchronous (thread-per-request) RPC
// servers under overload.
//
// The paper's applications run async gRPC handlers, so a slow downstream
// only grows queues. Many production stacks (thread-pool servlet servers,
// classic Spring) instead *block a worker thread* per in-flight request:
// a single overloaded downstream then eats the concurrency of every
// upstream on the path — overload cascades upward even though those
// services have CPU to spare. This bench overloads only the Checkout
// service of Online Boutique and reports what happens to the OTHER APIs
// under both server models, with and without TopFull.
#include <cstdio>

#include "common/table.hpp"
#include "exp/harness.hpp"
#include "exp/model_cache.hpp"
#include "sim/app.hpp"

using namespace topfull;

namespace {

constexpr double kEndS = 120.0;

/// A boutique-like 4-service line: frontend -> checkout (small) with two
/// bystander APIs that share only the frontend.
std::unique_ptr<sim::Application> MakeApp(bool blocking) {
  auto app = std::make_unique<sim::Application>("sync-abl", 131);
  auto add = [&](const char* name, double mean_ms, int threads, int pods) {
    sim::ServiceConfig config;
    config.name = name;
    config.mean_service_ms = mean_ms;
    config.threads = threads;
    config.initial_pods = pods;
    config.blocking_rpc = blocking;
    config.max_queue = 256;
    return app->AddService(config);
  };
  // Thread-per-request servers run far more threads than cores (the
  // threads mostly sit blocked on downstream I/O); async servers need only
  // a few workers. CPU cost per request is identical.
  const sim::ServiceId frontend = add("frontend", 2.0, blocking ? 48 : 8, 1);
  const sim::ServiceId checkout = add("checkout", 20.0, 4, 2);  // 400 rps
  const sim::ServiceId catalog = add("catalog", 4.0, 4, 2);     // 2000 rps
  const sim::ServiceId cart = add("cart", 4.0, 4, 2);           // 2000 rps

  sim::ApiSpec buy("buy", 1);
  buy.AddPath(sim::ExecutionPath{sim::Chain({frontend, checkout}), 1.0, {}});
  app->AddApi(std::move(buy));
  sim::ApiSpec browse("browse", 1);
  browse.AddPath(sim::ExecutionPath{sim::Chain({frontend, catalog}), 1.0, {}});
  app->AddApi(std::move(browse));
  sim::ApiSpec view_cart("viewcart", 1);
  view_cart.AddPath(sim::ExecutionPath{sim::Chain({frontend, cart}), 1.0, {}});
  app->AddApi(std::move(view_cart));
  app->Finalize();
  return app;
}

struct Row {
  double buy, browse, viewcart;
};

Row Run(bool blocking, bool topfull, const rl::GaussianPolicy* policy) {
  auto app = MakeApp(blocking);
  exp::Controllers controllers;
  controllers.Attach(topfull ? exp::Variant::kTopFull : exp::Variant::kNoControl,
                     *app, policy);
  workload::TrafficDriver traffic(app.get());
  traffic.AddOpenLoop(0, workload::Schedule::Constant(1200));  // 3x checkout
  traffic.AddOpenLoop(1, workload::Schedule::Constant(800));   // healthy
  traffic.AddOpenLoop(2, workload::Schedule::Constant(800));   // healthy
  app->RunFor(Seconds(kEndS));
  return {app->metrics().AvgGoodput(0, 30, kEndS),
          app->metrics().AvgGoodput(1, 30, kEndS),
          app->metrics().AvgGoodput(2, 30, kEndS)};
}

}  // namespace

int main() {
  PrintBanner("Sync-RPC ablation",
              "Only 'buy' overloads its Checkout dependency (3x). Async "
              "servers contain the damage; blocking servers let it eat the "
              "shared frontend's threads and starve the bystander APIs.");
  auto policy = exp::GetPretrainedPolicy();

  Table table("avg goodput (rps); bystanders offered 800 rps each");
  table.SetHeader({"server model", "control", "buy (overloaded dep)",
                   "browse (bystander)", "viewcart (bystander)"});
  struct Config {
    bool blocking, topfull;
    const char* model;
    const char* control;
  };
  for (const Config& config :
       {Config{false, false, "async", "none"}, Config{false, true, "async", "TopFull"},
        Config{true, false, "blocking", "none"},
        Config{true, true, "blocking", "TopFull"}}) {
    const Row row = Run(config.blocking, config.topfull, policy.get());
    table.AddRow({config.model, config.control, Fmt(row.buy, 0),
                  Fmt(row.browse, 0), Fmt(row.viewcart, 0)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: with async servers the bystanders barely notice the\n"
      "buy overload; with blocking servers they collapse too (frontend\n"
      "threads pile up behind checkout) unless TopFull throttles 'buy' at\n"
      "the entry and frees those threads.\n");
  return 0;
}

// Figure 4 (§2 motivation): concurrent per-microservice load control causes
// starvation.
//
// Paper setup: Online Boutique; the load of Get Product and Post Checkout is
// increased so that Recommendation and Checkout overload (Fig. 3). DAGOR's
// per-microservice control lets admitted Get Product requests die at
// Recommendation after consuming ProductCatalog capacity; TopFull's
// API-wise entry control serves ~1.9x more Get Product at the same Post
// Checkout goodput.
#include <cstdio>

#include "apps/online_boutique.hpp"
#include "common/table.hpp"
#include "exp/harness.hpp"
#include "exp/model_cache.hpp"

using namespace topfull;

namespace {

constexpr double kSurgeStartS = 20.0;
constexpr double kEndS = 140.0;

struct RunResult {
  std::unique_ptr<sim::Application> app;
};

std::unique_ptr<sim::Application> Run(exp::Variant variant,
                                      const rl::GaussianPolicy* policy) {
  apps::BoutiqueOptions options;
  options.seed = 31;
  auto app = apps::MakeOnlineBoutique(options);
  exp::Controllers controllers;
  controllers.Attach(variant, *app, policy);
  workload::TrafficDriver traffic(app.get());
  // Background load on every API; the surge hits getproduct + postcheckout.
  for (sim::ApiId a = 0; a < app->NumApis(); ++a) {
    traffic.AddOpenLoop(a, workload::Schedule::Constant(120));
  }
  traffic.AddOpenLoop(apps::kGetProduct,
                      workload::Schedule::Constant(0).Then(Seconds(kSurgeStartS), 1400));
  traffic.AddOpenLoop(apps::kPostCheckout,
                      workload::Schedule::Constant(0).Then(Seconds(kSurgeStartS), 700));
  app->RunFor(Seconds(kEndS));
  return app;
}

}  // namespace

int main() {
  PrintBanner("Figure 4 (+ Fig. 3 scenario)",
              "Online Boutique: Get Product + Post Checkout surge. DAGOR "
              "starves Get Product; TopFull avoids the waste.");
  auto policy = exp::GetPretrainedPolicy();

  auto dagor_app = Run(exp::Variant::kDagor, nullptr);
  auto topfull_app = Run(exp::Variant::kTopFull, policy.get());

  Table timeline("goodput timeline (rps, 10 s bins after surge)");
  timeline.SetHeader({"t(s)", "DAGOR getproduct", "DAGOR postcheckout",
                      "TopFull getproduct", "TopFull postcheckout"});
  for (double t = kSurgeStartS; t + 10.0 <= kEndS; t += 10.0) {
    timeline.AddRow(
        Fmt(t + 10.0, 0),
        {dagor_app->metrics().AvgGoodput(apps::kGetProduct, t, t + 10),
         dagor_app->metrics().AvgGoodput(apps::kPostCheckout, t, t + 10),
         topfull_app->metrics().AvgGoodput(apps::kGetProduct, t, t + 10),
         topfull_app->metrics().AvgGoodput(apps::kPostCheckout, t, t + 10)},
        0);
  }
  timeline.Print();

  const double from = kSurgeStartS + 20.0;
  const double dagor_gp =
      dagor_app->metrics().AvgGoodput(apps::kGetProduct, from, kEndS);
  const double topfull_gp =
      topfull_app->metrics().AvgGoodput(apps::kGetProduct, from, kEndS);
  const double dagor_pc =
      dagor_app->metrics().AvgGoodput(apps::kPostCheckout, from, kEndS);
  const double topfull_pc =
      topfull_app->metrics().AvgGoodput(apps::kPostCheckout, from, kEndS);
  std::printf("\nGet Product:   TopFull %.0f rps vs DAGOR %.0f rps -> %.2fx "
              "(paper: ~1.9x)\n",
              topfull_gp, dagor_gp, topfull_gp / dagor_gp);
  std::printf("Post Checkout: TopFull %.0f rps vs DAGOR %.0f rps -> %.2fx "
              "(paper: ~1x, same amount)\n",
              topfull_pc, dagor_pc, topfull_pc / dagor_pc);
  return 0;
}

// Figure 8: per-API and total goodput under overload on Online Boutique.
//
// Paper setup: 2600 Locust users (1 rps each) overload the application; all
// APIs share one business priority. Compared: no control, Breakwater,
// DAGOR, TopFull. Paper result: TopFull 1.82x DAGOR and 2.26x Breakwater on
// total average goodput.
#include <cstdio>

#include "apps/online_boutique.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "exp/harness.hpp"
#include "exp/model_cache.hpp"

using namespace topfull;

namespace {

constexpr int kUsers = 4200;
constexpr double kWarmupS = 30.0;
constexpr double kEndS = 150.0;

/// One run; returns per-API goodputs with the total appended.
std::vector<double> RunOnce(exp::Variant variant, const rl::GaussianPolicy* policy,
                            std::uint64_t seed) {
  apps::BoutiqueOptions options;
  options.seed = seed;
  // The paper's DAGOR implementation always assigns a pre-determined
  // business priority per API type (§5); Breakwater has no priorities and
  // TopFull maximises total goodput, so those run with equal priorities.
  options.distinct_priorities = variant == exp::Variant::kDagor;
  auto app = apps::MakeOnlineBoutique(options);
  exp::Controllers controllers;
  controllers.Attach(variant, *app, policy);
  workload::TrafficDriver traffic(app.get());
  workload::ClosedLoopConfig users = exp::UniformUsers(*app);
  users.mix.weights = {1.0, 1.2, 0.9, 0.9, 1.0};
  traffic.AddClosedLoop(users, workload::Schedule::Constant(kUsers));
  app->RunFor(Seconds(kEndS));
  return exp::PerApiGoodputRow(*app, kWarmupS, kEndS);
}

/// Three seeds per variant; the table gets the per-API means and the total
/// as mean +/- stddev across seeds.
double RunVariant(exp::Variant variant, const rl::GaussianPolicy* policy,
                  Table& table) {
  constexpr std::uint64_t kSeeds[] = {17, 18, 19};
  std::vector<std::vector<double>> runs;
  for (const std::uint64_t seed : kSeeds) {
    runs.push_back(RunOnce(variant, policy, seed));
  }
  std::vector<std::string> row{exp::VariantName(variant)};
  StreamingStats total;
  for (std::size_t col = 0; col < runs[0].size(); ++col) {
    StreamingStats stats;
    for (const auto& run : runs) stats.Add(run[col]);
    if (col + 1 == runs[0].size()) {
      total = stats;
      row.push_back(Fmt(stats.mean(), 0) + " +/- " + Fmt(stats.stddev(), 0));
    } else {
      row.push_back(Fmt(stats.mean(), 0));
    }
  }
  table.AddRow(std::move(row));
  return total.mean();
}

}  // namespace

int main() {
  PrintBanner("Figure 8",
              "Online Boutique, 2600 closed-loop users: average goodput per "
              "API and total (rps) under overload.");
  auto policy = exp::GetPretrainedPolicy();

  Table table("avg goodput (rps) over steady overload; mean of 3 seeds");
  table.SetHeader({"variant", "API1 postcheckout", "API2 getproduct",
                   "API3 getcart", "API4 postcart", "API5 emptycart", "total"});
  const double none = RunVariant(exp::Variant::kNoControl, nullptr, table);
  const double breakwater = RunVariant(exp::Variant::kBreakwater, nullptr, table);
  const double dagor = RunVariant(exp::Variant::kDagor, nullptr, table);
  // WISP is discussed in the paper's related work (§7) but not measured;
  // included here as an extra baseline.
  const double wisp = RunVariant(exp::Variant::kWisp, nullptr, table);
  const double topfull = RunVariant(exp::Variant::kTopFull, policy.get(), table);
  table.Print();

  std::printf("\nTopFull vs DAGOR:      %.2fx   (paper: 1.82x)\n", topfull / dagor);
  std::printf("TopFull vs Breakwater: %.2fx   (paper: 2.26x)\n", topfull / breakwater);
  std::printf("TopFull vs WISP:       %.2fx   (not in paper)\n", topfull / wisp);
  std::printf("TopFull vs no control: %.2fx\n", topfull / none);
  return 0;
}

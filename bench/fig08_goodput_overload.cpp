// Figure 8: per-API and total goodput under overload on Online Boutique.
//
// Paper setup: 2600 Locust users (1 rps each) overload the application; all
// APIs share one business priority. Compared: no control, Breakwater,
// DAGOR, TopFull. Paper result: TopFull 1.82x DAGOR and 2.26x Breakwater on
// total average goodput.
//
// All variant x seed runs execute concurrently on the shared worker pool.
#include <cstdio>

#include "apps/online_boutique.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "exp/harness.hpp"
#include "exp/model_cache.hpp"
#include "exp/run_executor.hpp"

using namespace topfull;

namespace {

constexpr int kUsers = 4200;
constexpr double kWarmupS = 30.0;
constexpr double kEndS = 150.0;
constexpr std::uint64_t kSeeds[] = {17, 18, 19};

/// One run of `variant` with `seed`.
exp::RunSpec MakeRun(exp::Variant variant, const rl::GaussianPolicy* policy,
                     std::uint64_t seed) {
  exp::RunSpec spec;
  spec.label = exp::VariantName(variant) + "/seed" + std::to_string(seed);
  spec.duration_s = kEndS;
  spec.variant = variant;
  spec.policy = policy;
  spec.make_app = [variant, seed] {
    apps::BoutiqueOptions options;
    options.seed = seed;
    // The paper's DAGOR implementation always assigns a pre-determined
    // business priority per API type (§5); Breakwater has no priorities and
    // TopFull maximises total goodput, so those run with equal priorities.
    options.distinct_priorities = variant == exp::Variant::kDagor;
    return apps::MakeOnlineBoutique(options);
  };
  spec.traffic = [](workload::TrafficDriver& traffic, sim::Application& app) {
    workload::ClosedLoopConfig users = exp::UniformUsers(app);
    users.mix.weights = {1.0, 1.2, 0.9, 0.9, 1.0};
    traffic.AddClosedLoop(users, workload::Schedule::Constant(kUsers));
  };
  return spec;
}

/// Reduces one variant's three seed runs into a table row; returns the mean
/// total goodput.
double ReduceVariant(exp::Variant variant,
                     const std::vector<exp::RunResult>& results, std::size_t first,
                     Table& table) {
  std::vector<std::vector<double>> runs;
  for (std::size_t s = 0; s < std::size(kSeeds); ++s) {
    runs.push_back(exp::PerApiGoodputRow(*results[first + s].app, kWarmupS, kEndS));
  }
  std::vector<std::string> row{exp::VariantName(variant)};
  StreamingStats total;
  for (std::size_t col = 0; col < runs[0].size(); ++col) {
    StreamingStats stats;
    for (const auto& run : runs) stats.Add(run[col]);
    if (col + 1 == runs[0].size()) {
      total = stats;
      row.push_back(Fmt(stats.mean(), 0) + " +/- " + Fmt(stats.stddev(), 0));
    } else {
      row.push_back(Fmt(stats.mean(), 0));
    }
  }
  table.AddRow(std::move(row));
  return total.mean();
}

}  // namespace

int main() {
  PrintBanner("Figure 8",
              "Online Boutique, 2600 closed-loop users: average goodput per "
              "API and total (rps) under overload.");
  auto policy = exp::GetPretrainedPolicy();

  // WISP is discussed in the paper's related work (§7) but not measured;
  // included here as an extra baseline.
  const std::vector<std::pair<exp::Variant, const rl::GaussianPolicy*>> variants = {
      {exp::Variant::kNoControl, nullptr}, {exp::Variant::kBreakwater, nullptr},
      {exp::Variant::kDagor, nullptr},     {exp::Variant::kWisp, nullptr},
      {exp::Variant::kTopFull, policy.get()}};
  std::vector<exp::RunSpec> specs;
  for (const auto& vp : variants) {
    for (const std::uint64_t seed : kSeeds) specs.push_back(MakeRun(vp.first, vp.second, seed));
  }
  const std::vector<exp::RunResult> results = exp::RunExecutor().Execute(specs);

  Table table("avg goodput (rps) over steady overload; mean of 3 seeds");
  table.SetHeader({"variant", "API1 postcheckout", "API2 getproduct",
                   "API3 getcart", "API4 postcart", "API5 emptycart", "total"});
  std::vector<double> totals;
  for (std::size_t v = 0; v < variants.size(); ++v) {
    totals.push_back(
        ReduceVariant(variants[v].first, results, v * std::size(kSeeds), table));
  }
  table.Print();

  const double none = totals[0], breakwater = totals[1], dagor = totals[2],
               wisp = totals[3], topfull = totals[4];
  std::printf("\nTopFull vs DAGOR:      %.2fx   (paper: 1.82x)\n", topfull / dagor);
  std::printf("TopFull vs Breakwater: %.2fx   (paper: 2.26x)\n", topfull / breakwater);
  std::printf("TopFull vs WISP:       %.2fx   (not in paper)\n", topfull / wisp);
  std::printf("TopFull vs no control: %.2fx\n", topfull / none);
  return 0;
}

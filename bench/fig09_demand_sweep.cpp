// Figure 9: total goodput vs. user demand on Online Boutique.
//
// Paper result: TopFull and DAGOR stay flat once demand exceeds capacity
// (consistent admission standards), while Breakwater degrades further as
// demand grows (uncorrelated random shedding across tiers compounds).
#include <cstdio>
#include <vector>

#include "apps/online_boutique.hpp"
#include "common/table.hpp"
#include "exp/harness.hpp"
#include "exp/model_cache.hpp"

using namespace topfull;

namespace {

constexpr double kWarmupS = 20.0;
constexpr double kEndS = 90.0;

double RunPoint(exp::Variant variant, const rl::GaussianPolicy* policy, int users) {
  apps::BoutiqueOptions options;
  options.seed = 23;
  // DAGOR carries its per-API business priorities by design (§5).
  options.distinct_priorities = variant == exp::Variant::kDagor;
  auto app = apps::MakeOnlineBoutique(options);
  exp::Controllers controllers;
  controllers.Attach(variant, *app, policy);
  workload::TrafficDriver traffic(app.get());
  // Same browse/checkout-heavy journey as Fig. 8.
  workload::ClosedLoopConfig config = exp::UniformUsers(*app);
  config.mix.weights = {1.5, 1.7, 0.6, 0.6, 0.6};
  traffic.AddClosedLoop(config, workload::Schedule::Constant(users));
  app->RunFor(Seconds(kEndS));
  return exp::TotalGoodput(*app, kWarmupS, kEndS);
}

}  // namespace

int main() {
  PrintBanner("Figure 9",
              "Online Boutique: total goodput (rps) vs. user demand for "
              "Breakwater / DAGOR / TopFull.");
  auto policy = exp::GetPretrainedPolicy();
  const std::vector<int> demands = {1200, 1800, 2600, 3400, 4200, 5000};

  Table table("total goodput (rps) by closed-loop user count");
  std::vector<std::string> header = {"variant"};
  for (const int d : demands) header.push_back(std::to_string(d));
  table.SetHeader(header);

  for (const auto& [variant, policy_ptr] :
       std::vector<std::pair<exp::Variant, const rl::GaussianPolicy*>>{
           {exp::Variant::kBreakwater, nullptr},
           {exp::Variant::kDagor, nullptr},
           {exp::Variant::kTopFull, policy.get()}}) {
    std::vector<double> row;
    for (const int users : demands) row.push_back(RunPoint(variant, policy_ptr, users));
    table.AddRow(exp::VariantName(variant), row, 0);
  }
  table.Print();
  std::printf(
      "\nExpected shape: TopFull/DAGOR roughly flat beyond saturation;\n"
      "Breakwater decays as demand rises (multi-tier random drops).\n");
  return 0;
}

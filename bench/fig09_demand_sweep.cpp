// Figure 9: total goodput vs. user demand on Online Boutique.
//
// Paper result: TopFull and DAGOR stay flat once demand exceeds capacity
// (consistent admission standards), while Breakwater degrades further as
// demand grows (uncorrelated random shedding across tiers compounds).
//
// The variant x demand matrix runs on the shared worker pool (RunExecutor);
// set TOPFULL_THREADS to control the fan-out.
#include <cstdio>
#include <vector>

#include "apps/online_boutique.hpp"
#include "common/table.hpp"
#include "exp/harness.hpp"
#include "exp/model_cache.hpp"
#include "exp/run_executor.hpp"

using namespace topfull;

namespace {

constexpr double kWarmupS = 20.0;
constexpr double kEndS = 90.0;

exp::RunSpec MakePoint(exp::Variant variant, const rl::GaussianPolicy* policy,
                       int users) {
  exp::RunSpec spec;
  spec.label = exp::VariantName(variant) + "@" + std::to_string(users);
  spec.duration_s = kEndS;
  spec.variant = variant;
  spec.policy = policy;
  spec.make_app = [variant] {
    apps::BoutiqueOptions options;
    options.seed = 23;
    // DAGOR carries its per-API business priorities by design (§5).
    options.distinct_priorities = variant == exp::Variant::kDagor;
    return apps::MakeOnlineBoutique(options);
  };
  spec.traffic = [users](workload::TrafficDriver& traffic, sim::Application& app) {
    // Same browse/checkout-heavy journey as Fig. 8.
    workload::ClosedLoopConfig config = exp::UniformUsers(app);
    config.mix.weights = {1.5, 1.7, 0.6, 0.6, 0.6};
    traffic.AddClosedLoop(config, workload::Schedule::Constant(users));
  };
  return spec;
}

}  // namespace

int main() {
  PrintBanner("Figure 9",
              "Online Boutique: total goodput (rps) vs. user demand for "
              "Breakwater / DAGOR / TopFull.");
  auto policy = exp::GetPretrainedPolicy();
  const std::vector<int> demands = {1200, 1800, 2600, 3400, 4200, 5000};
  const std::vector<std::pair<exp::Variant, const rl::GaussianPolicy*>> variants = {
      {exp::Variant::kBreakwater, nullptr},
      {exp::Variant::kDagor, nullptr},
      {exp::Variant::kTopFull, policy.get()}};

  std::vector<exp::RunSpec> specs;
  for (const auto& [variant, policy_ptr] : variants) {
    for (const int users : demands) specs.push_back(MakePoint(variant, policy_ptr, users));
  }
  const std::vector<exp::RunResult> results = exp::RunExecutor().Execute(specs);

  Table table("total goodput (rps) by closed-loop user count");
  std::vector<std::string> header = {"variant"};
  for (const int d : demands) header.push_back(std::to_string(d));
  table.SetHeader(header);

  std::size_t next = 0;
  for (const auto& vp : variants) {
    std::vector<double> row;
    row.reserve(demands.size());
    for (std::size_t d = 0; d < demands.size(); ++d, ++next) {
      row.push_back(exp::TotalGoodput(*results[next].app, kWarmupS, kEndS));
    }
    table.AddRow(exp::VariantName(vp.first), row, 0);
  }
  table.Print();
  std::printf(
      "\nExpected shape: TopFull/DAGOR roughly flat beyond saturation;\n"
      "Breakwater decays as demand rises (multi-tier random drops).\n");
  return 0;
}

// Figure 10: component-wise performance breakdown on all three benchmark
// applications.
//
// Compared: no control, TopFull with MIMD instead of RL, TopFull without
// clustering (sequential control), DAGOR, and full TopFull. Paper: MIMD
// costs 11-34 % goodput and removing clustering costs 2.6-22.5 % depending
// on how many independent clusters the application forms.
#include <cstdio>
#include <functional>

#include "apps/alibaba_demo.hpp"
#include "apps/online_boutique.hpp"
#include "apps/train_ticket.hpp"
#include "common/table.hpp"
#include "exp/harness.hpp"
#include "exp/model_cache.hpp"

using namespace topfull;

namespace {

// The surge arrives at t=20 s; measuring from the onset includes the
// convergence transient, which is where parallel per-cluster control
// (vs the sequential ablation) earns its keep.
constexpr double kSurgeS = 20.0;
constexpr double kEndS = 110.0;

// The factory takes `dagor` = true when building the app for the DAGOR
// variant, which carries distinct per-API business priorities by design.
using Factory = std::function<std::unique_ptr<sim::Application>(bool dagor)>;

double RunVariant(const Factory& factory, int users, exp::Variant variant,
                  const rl::GaussianPolicy* policy) {
  auto app = factory(variant == exp::Variant::kDagor);
  exp::Controllers controllers;
  controllers.Attach(variant, *app, policy);
  workload::TrafficDriver traffic(app.get());
  traffic.AddClosedLoop(exp::UniformUsers(*app),
                        workload::Schedule::Constant(users / 6)
                            .Then(Seconds(kSurgeS), users));
  app->RunFor(Seconds(kEndS));
  return exp::TotalGoodput(*app, kSurgeS, kEndS);
}

}  // namespace

int main() {
  PrintBanner("Figure 10",
              "Component breakdown: avg total goodput (rps) under overload, "
              "and loss vs. full TopFull.");
  auto policy = exp::GetPretrainedPolicy();

  struct Benchmark {
    const char* name;
    Factory factory;
    int users;
  };
  const Benchmark benchmarks[] = {
      {"Online Boutique",
       [](bool dagor) {
         apps::BoutiqueOptions options;
         options.seed = 41;
         options.distinct_priorities = dagor;
         return apps::MakeOnlineBoutique(options);
       },
       2600},
      {"Train Ticket",
       [](bool dagor) {
         apps::TrainTicketOptions options;
         options.seed = 43;
         options.distinct_priorities = dagor;
         return apps::MakeTrainTicket(options);
       },
       3000},
      {"Trace Demo",
       [](bool) {
         apps::AlibabaDemoOptions options;
         options.seed = 2021;
         return apps::MakeAlibabaDemo(options).app;
       },
       6000},
  };

  const std::pair<exp::Variant, bool> variants[] = {
      {exp::Variant::kNoControl, false},   {exp::Variant::kDagor, false},
      {exp::Variant::kTopFullMimd, false}, {exp::Variant::kTopFullNoCluster, true},
      {exp::Variant::kTopFull, true},
  };

  for (const auto& benchmark : benchmarks) {
    Table table(std::string(benchmark.name) + " (avg total goodput, rps)");
    table.SetHeader({"variant", "goodput", "vs TopFull"});
    double topfull_goodput = 0.0;
    std::vector<std::pair<std::string, double>> rows;
    for (const auto& [variant, needs_policy] : variants) {
      const double g = RunVariant(benchmark.factory, benchmark.users, variant,
                                  needs_policy ? policy.get() : nullptr);
      rows.emplace_back(exp::VariantName(variant), g);
      if (variant == exp::Variant::kTopFull) topfull_goodput = g;
    }
    for (const auto& [name, g] : rows) {
      table.AddRow({name, Fmt(g, 0),
                    Fmt(100.0 * (g - topfull_goodput) / topfull_goodput, 1) + "%"});
    }
    table.Print();
    std::printf("\n");
  }
  std::printf("Paper deltas: MIMD -34.4%% (OB), -18.4%% (TT), -11.1%% (demo); "
              "w/o cluster -2.6%% (OB), -22.5%% (TT), -18.7%% (demo).\n");
  return 0;
}

// Figure 11: per-API goodput with business priorities, DAGOR vs TopFull.
//
// APIs 1..4 get descending business priority. Paper: DAGOR starves the
// lower-priority APIs (API 4 worst — TopFull serves 22.45x more of it);
// TopFull still guarantees the high-priority APIs (1.58x on API 1) while
// recovering the starved ones; 2.60x average goodput overall.
#include <cstdio>

#include "apps/online_boutique.hpp"
#include "common/table.hpp"
#include "exp/harness.hpp"
#include "exp/model_cache.hpp"

using namespace topfull;

namespace {

constexpr int kUsers = 3000;
constexpr double kWarmupS = 30.0;
constexpr double kEndS = 150.0;

std::unique_ptr<sim::Application> Run(exp::Variant variant,
                                      const rl::GaussianPolicy* policy) {
  apps::BoutiqueOptions options;
  options.seed = 47;
  options.distinct_priorities = true;
  auto app = apps::MakeOnlineBoutique(options);
  exp::Controllers controllers;
  controllers.Attach(variant, *app, policy);
  workload::TrafficDriver traffic(app.get());
  traffic.AddClosedLoop(exp::UniformUsers(*app), workload::Schedule::Constant(kUsers));
  app->RunFor(Seconds(kEndS));
  return app;
}

}  // namespace

int main() {
  PrintBanner("Figure 11",
              "Online Boutique with business priorities API1 > API2 > API3 > "
              "API4: per-API avg goodput (rps).");
  auto policy = exp::GetPretrainedPolicy();
  auto dagor_app = Run(exp::Variant::kDagor, nullptr);
  auto topfull_app = Run(exp::Variant::kTopFull, policy.get());

  Table table("avg goodput (rps)");
  table.SetHeader({"variant", "API1", "API2", "API3", "API4", "avg(1-4)"});
  auto row = [&](const char* name, const sim::Application& app) {
    std::vector<double> values;
    double sum = 0.0;
    for (sim::ApiId a = 0; a < 4; ++a) {
      const double g = app.metrics().AvgGoodput(a, kWarmupS, kEndS);
      values.push_back(g);
      sum += g;
    }
    values.push_back(sum / 4.0);
    table.AddRow(name, values, 0);
    return values;
  };
  const auto dagor_row = row("DAGOR", *dagor_app);
  const auto topfull_row = row("TopFull", *topfull_app);
  table.Print();

  std::printf("\nTopFull/DAGOR per API:  ");
  const double paper[] = {1.58, 7.55, 0.0, 22.45};
  for (int a = 0; a < 4; ++a) {
    std::printf("API%d %.2fx%s  ", a + 1, topfull_row[a] / std::max(1.0, dagor_row[a]),
                paper[a] > 0 ? ("(paper " + Fmt(paper[a], 2) + "x)").c_str() : "");
  }
  std::printf("\nAverage: %.2fx (paper: 2.60x)\n",
              topfull_row[4] / std::max(1.0, dagor_row[4]));
  return 0;
}

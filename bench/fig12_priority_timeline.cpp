// Figure 12: load-control timeline of API 1 (Post Checkout) and API 2
// (Get Product) under business priorities, DAGOR vs TopFull.
//
// Paper narrative: DAGOR sheds all lower-priority traffic at the overloaded
// Product microservice; TopFull rate-limits API 1 while resolving Checkout
// and *re-raises* API 2 to fill the capacity Product regains — even though
// API 1 nominally outranks API 2, API 1 is not increased while it still
// touches another overloaded microservice.
#include <cstdio>

#include "apps/online_boutique.hpp"
#include "common/table.hpp"
#include "exp/csv.hpp"
#include "exp/harness.hpp"
#include "exp/model_cache.hpp"

using namespace topfull;

namespace {

constexpr double kEndS = 120.0;

std::unique_ptr<sim::Application> Run(exp::Variant variant,
                                      const rl::GaussianPolicy* policy) {
  apps::BoutiqueOptions options;
  options.seed = 53;
  options.distinct_priorities = true;
  auto app = apps::MakeOnlineBoutique(options);
  exp::Controllers controllers;
  controllers.Attach(variant, *app, policy);
  workload::TrafficDriver traffic(app.get());
  // Surge concentrated on the two APIs of Fig. 3 at t=10 s.
  traffic.AddOpenLoop(apps::kPostCheckout,
                      workload::Schedule::Constant(100).Then(Seconds(10), 800));
  traffic.AddOpenLoop(apps::kGetProduct,
                      workload::Schedule::Constant(100).Then(Seconds(10), 1600));
  app->RunFor(Seconds(kEndS));
  return app;
}

}  // namespace

int main() {
  PrintBanner("Figure 12",
              "Per-second goodput timeline of API1 (postcheckout) and API2 "
              "(getproduct), DAGOR vs TopFull.");
  auto policy = exp::GetPretrainedPolicy();
  auto dagor_app = Run(exp::Variant::kDagor, nullptr);
  auto topfull_app = Run(exp::Variant::kTopFull, policy.get());

  Table table("goodput (rps, 5 s bins)");
  table.SetHeader({"t(s)", "DAGOR API1", "DAGOR API2", "TopFull API1",
                   "TopFull API2"});
  for (double t = 0.0; t + 5.0 <= kEndS; t += 5.0) {
    table.AddRow(Fmt(t + 5.0, 0),
                 {dagor_app->metrics().AvgGoodput(apps::kPostCheckout, t, t + 5),
                  dagor_app->metrics().AvgGoodput(apps::kGetProduct, t, t + 5),
                  topfull_app->metrics().AvgGoodput(apps::kPostCheckout, t, t + 5),
                  topfull_app->metrics().AvgGoodput(apps::kGetProduct, t, t + 5)},
                 0);
  }
  table.Print();

  exp::MaybeExportTimeline(*dagor_app, "fig12_dagor");
  exp::MaybeExportTimeline(*topfull_app, "fig12_topfull");

  const double dagor_api2 =
      dagor_app->metrics().AvgGoodput(apps::kGetProduct, 30.0, kEndS);
  const double topfull_api2 =
      topfull_app->metrics().AvgGoodput(apps::kGetProduct, 30.0, kEndS);
  std::printf("\nSteady-state API2: TopFull %.0f rps vs DAGOR %.0f rps (%.2fx)\n",
              topfull_api2, dagor_api2, topfull_api2 / std::max(1.0, dagor_api2));
  return 0;
}

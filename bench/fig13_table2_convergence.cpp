// Figure 13 + Table 2: adaptation speed after an overload hits — DAGOR with
// different step parameters vs TopFull's RL rate controller.
//
// Paper setup: overload from the single Post Checkout API (Locust users),
// isolating the rate controller. Results: TopFull converges in 5 s; DAGOR
// takes 27 s with its default 0.05 decrease step, 19 s with 0.1, and never
// stabilises with 0.5 (oscillation). Convergence here = first time a run
// reaches 90 % of the best variant's steady goodput and holds it for 5
// consecutive seconds.
//
// The four runs execute concurrently on the shared worker pool; the DAGOR
// alpha sweep uses RunSpec::attach for its custom controller config.
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <vector>

#include "apps/online_boutique.hpp"
#include "baselines/dagor.hpp"
#include "common/table.hpp"
#include "exp/harness.hpp"
#include "exp/model_cache.hpp"
#include "exp/run_executor.hpp"

using namespace topfull;

namespace {

constexpr double kSurgeS = 10.0;
constexpr double kEndS = 120.0;
constexpr int kSurgeUsers = 1400;

std::unique_ptr<sim::Application> MakeApp() {
  apps::BoutiqueOptions options;
  options.seed = 59;
  return apps::MakeOnlineBoutique(options);
}

void Drive(workload::TrafficDriver& traffic, sim::Application&) {
  // Single-API overload: Post Checkout users jump from light load to ~3.5x
  // the Checkout microservice's capacity at t=10 s.
  workload::ClosedLoopConfig users;
  users.mix.weights = {1.0, 0.0, 0.0, 0.0, 0.0};  // postcheckout only
  traffic.AddClosedLoop(users,
                        workload::Schedule::Constant(50).Then(Seconds(kSurgeS),
                                                              kSurgeUsers));
}

double SteadyGoodput(const sim::Application& app) {
  return app.metrics().AvgGoodput(apps::kPostCheckout, kEndS - 40.0, kEndS);
}

/// Seconds from the surge until goodput first reaches `bar` and stays there
/// for 5 consecutive seconds; inf when that never happens (oscillation).
double ConvergenceSeconds(const sim::Application& app, double bar) {
  const auto& timeline = app.metrics().Timeline();
  int run = 0;
  for (const auto& snap : timeline) {
    if (snap.t_end_s <= kSurgeS) continue;
    if (static_cast<double>(snap.apis[apps::kPostCheckout].good) >= bar) {
      if (++run >= 5) return snap.t_end_s - static_cast<double>(run - 1) - kSurgeS;
    } else {
      run = 0;
    }
  }
  return std::numeric_limits<double>::infinity();
}

}  // namespace

int main() {
  PrintBanner("Figure 13 / Table 2",
              "Single Post Checkout overload: convergence speed of DAGOR "
              "(alpha = 0.05 / 0.1 / 0.5) vs TopFull (RL).");
  auto policy = exp::GetPretrainedPolicy();

  std::vector<exp::RunSpec> specs;
  // DAGOR with swept decrease step.
  for (const double alpha : {0.05, 0.1, 0.5}) {
    exp::RunSpec spec;
    spec.label = "DAGOR (" + Fmt(alpha, 2) + ")";
    spec.duration_s = kEndS;
    spec.make_app = MakeApp;
    spec.traffic = Drive;
    spec.attach = [alpha](sim::Application& app) -> std::shared_ptr<void> {
      baselines::DagorConfig config;
      config.alpha = alpha;
      auto dagor = std::make_shared<baselines::DagorAdmission>(&app, config);
      dagor->Install();
      return dagor;
    };
    specs.push_back(std::move(spec));
  }
  // TopFull RL.
  {
    exp::RunSpec spec;
    spec.label = "TopFull (RL)";
    spec.duration_s = kEndS;
    spec.make_app = MakeApp;
    spec.traffic = Drive;
    spec.variant = exp::Variant::kTopFull;
    spec.policy = policy.get();
    specs.push_back(std::move(spec));
  }
  const std::vector<exp::RunResult> runs = exp::RunExecutor().Execute(specs);

  double best_steady = 0.0;
  for (const auto& run : runs) best_steady = std::max(best_steady, SteadyGoodput(*run.app));
  const double bar = 0.9 * best_steady;

  Table table("convergence to 90% of the best steady goodput (" +
              Fmt(best_steady, 0) + " rps) after overload");
  table.SetHeader({"rate controller", "steady goodput (rps)", "convergence (s)"});
  for (const auto& run : runs) {
    const double conv = ConvergenceSeconds(*run.app, bar);
    table.AddRow({run.label, Fmt(SteadyGoodput(*run.app), 0),
                  std::isinf(conv) ? "never (oscillates)" : Fmt(conv, 0)});
  }
  table.Print();
  std::printf("\nPaper: DAGOR(0.05) 27 s, DAGOR(0.1) 19 s, DAGOR(0.5) never, "
              "TopFull 5 s.\n");
  return 0;
}

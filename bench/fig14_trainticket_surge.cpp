// Figure 14: Train Ticket under a traffic surge with the Kubernetes
// autoscaler — autoscaler alone vs TopFull(BW)+autoscaler vs
// TopFull+autoscaler.
//
// Paper: TopFull serves 1.38x the autoscaler's average goodput during the
// surge with the same vCPUs, and 1.75x TopFull(BW) (the AIMD entry
// controller reacts to new resources far slower than the RL policy).
#include <cstdio>

#include "apps/train_ticket.hpp"
#include "autoscale/hpa.hpp"
#include "common/table.hpp"
#include "exp/csv.hpp"
#include "exp/harness.hpp"
#include "exp/model_cache.hpp"

using namespace topfull;

namespace {

constexpr double kSurgeS = 40.0;
constexpr double kEndS = 300.0;
constexpr int kBaseUsers = 700;
constexpr int kSurgeUsers = 4200;

std::unique_ptr<sim::Application> Run(exp::Variant variant,
                                      const rl::GaussianPolicy* policy) {
  apps::TrainTicketOptions options;
  options.seed = 61;
  options.probe_failures = true;  // pods crash-loop under sustained queueing
  auto app = apps::MakeTrainTicket(options);

  autoscale::ClusterConfig cluster_config;
  cluster_config.initial_vms = 3;
  cluster_config.vcpus_per_vm = 36.0;  // surge demand exceeds the pool: the
                                       // autoscaler cannot fully absorb it
  cluster_config.max_vms = 3;
  cluster_config.vm_startup = Seconds(60);
  autoscale::Cluster cluster(&app->sim(), cluster_config);
  autoscale::HpaConfig hpa_config;
  autoscale::HorizontalPodAutoscaler hpa(app.get(), &cluster, hpa_config);
  hpa.Start();

  exp::Controllers controllers;
  controllers.Attach(variant, *app, policy);

  workload::TrafficDriver traffic(app.get());
  traffic.AddClosedLoop(exp::UniformUsers(*app),
                        workload::Schedule::Constant(kBaseUsers)
                            .Then(Seconds(kSurgeS), kSurgeUsers));
  app->RunFor(Seconds(kEndS));
  return app;
}

}  // namespace

int main() {
  PrintBanner("Figure 14",
              "Train Ticket + HPA, surge " + std::to_string(kBaseUsers) + " -> " +
                  std::to_string(kSurgeUsers) +
                  " users at t=40 s: per-API goodput and total timeline.");
  auto policy = exp::GetPretrainedPolicy();

  auto solo = Run(exp::Variant::kNoControl, nullptr);
  auto bw = Run(exp::Variant::kTopFullBw, nullptr);
  auto topfull = Run(exp::Variant::kTopFull, policy.get());

  Table per_api("(a) avg goodput per API during surge (rps)");
  per_api.SetHeader({"variant", "API1", "API2", "API3", "API4", "API5", "API6",
                     "total"});
  auto add = [&](const char* name, const sim::Application& app) {
    per_api.AddRow(name, exp::PerApiGoodputRow(app, kSurgeS, kEndS), 0);
  };
  add("autoscaler", *solo);
  add("TopFull(BW)+AS", *bw);
  add("TopFull+AS", *topfull);
  per_api.Print();

  Table timeline("\n(b) total goodput timeline (rps, 10 s bins)");
  timeline.SetHeader({"t(s)", "autoscaler", "TopFull(BW)+AS", "TopFull+AS"});
  for (double t = 0.0; t + 10.0 <= kEndS; t += 10.0) {
    timeline.AddRow(Fmt(t + 10.0, 0),
                    {exp::TotalGoodput(*solo, t, t + 10),
                     exp::TotalGoodput(*bw, t, t + 10),
                     exp::TotalGoodput(*topfull, t, t + 10)},
                    0);
  }
  timeline.Print();

  exp::MaybeExportTimeline(*solo, "fig14_autoscaler");
  exp::MaybeExportTimeline(*bw, "fig14_topfull_bw");
  exp::MaybeExportTimeline(*topfull, "fig14_topfull");

  const double g_solo = exp::TotalGoodput(*solo, kSurgeS, kEndS);
  const double g_bw = exp::TotalGoodput(*bw, kSurgeS, kEndS);
  const double g_tf = exp::TotalGoodput(*topfull, kSurgeS, kEndS);
  std::printf("\nTopFull vs autoscaler:  %.2fx (paper: 1.38x)\n", g_tf / g_solo);
  std::printf("TopFull vs TopFull(BW): %.2fx (paper: 1.75x)\n", g_tf / g_bw);
  return 0;
}

// Figure 15: Online Boutique under a traffic surge with the autoscaler.
//
// Paper: without overload control the Recommendation pods fail their
// liveness probes under the initial surge and crash-loop — the autoscaler
// keeps feeding pods into the fire until enough arrive at once — so TopFull
// +autoscaler serves 3.91x the standalone autoscaler during the surge.
#include <cstdio>

#include "apps/online_boutique.hpp"
#include "autoscale/hpa.hpp"
#include "common/table.hpp"
#include "exp/harness.hpp"
#include "exp/model_cache.hpp"

using namespace topfull;

namespace {

constexpr double kSurgeS = 40.0;
constexpr double kEndS = 300.0;
constexpr int kBaseUsers = 600;
constexpr int kSurgeUsers = 4200;

struct RunOutput {
  std::unique_ptr<sim::Application> app;
  int probe_kills = 0;
};

RunOutput Run(exp::Variant variant, const rl::GaussianPolicy* policy) {
  apps::BoutiqueOptions options;
  options.seed = 67;
  options.probe_failures = true;  // the Fig. 15 failure mode
  auto app = apps::MakeOnlineBoutique(options);

  autoscale::ClusterConfig cluster_config;
  cluster_config.initial_vms = 1;
  cluster_config.max_vms = 3;
  cluster_config.vm_startup = Seconds(60);
  autoscale::Cluster cluster(&app->sim(), cluster_config);
  autoscale::HorizontalPodAutoscaler hpa(app.get(), &cluster, {});
  hpa.Start();

  exp::Controllers controllers;
  controllers.Attach(variant, *app, policy);

  workload::TrafficDriver traffic(app.get());
  traffic.AddClosedLoop(exp::UniformUsers(*app),
                        workload::Schedule::Constant(kBaseUsers)
                            .Then(Seconds(kSurgeS), kSurgeUsers));
  app->RunFor(Seconds(kEndS));

  RunOutput out;
  const sim::ServiceId recommendation = app->FindService("recommendation");
  out.probe_kills = app->service(recommendation).ProbeKills();
  out.app = std::move(app);
  return out;
}

}  // namespace

int main() {
  PrintBanner("Figure 15",
              "Online Boutique + HPA with liveness-probe pod failures, surge "
              "at t=40 s: per-API goodput and total timeline.");
  auto policy = exp::GetPretrainedPolicy();

  auto solo = Run(exp::Variant::kNoControl, nullptr);
  auto bw = Run(exp::Variant::kTopFullBw, nullptr);
  auto topfull = Run(exp::Variant::kTopFull, policy.get());

  Table per_api("(a) avg goodput per API during surge (rps)");
  per_api.SetHeader({"variant", "API1", "API2", "API3", "API4", "API5", "total",
                     "rec pod kills"});
  auto add = [&](const char* name, const RunOutput& run) {
    std::vector<double> row = exp::PerApiGoodputRow(*run.app, kSurgeS, kEndS);
    row.push_back(run.probe_kills);
    per_api.AddRow(name, row, 0);
  };
  add("autoscaler", solo);
  add("TopFull(BW)+AS", bw);
  add("TopFull+AS", topfull);
  per_api.Print();

  Table timeline("\n(b) total goodput timeline (rps, 10 s bins)");
  timeline.SetHeader({"t(s)", "autoscaler", "TopFull(BW)+AS", "TopFull+AS"});
  for (double t = 0.0; t + 10.0 <= kEndS; t += 10.0) {
    timeline.AddRow(Fmt(t + 10.0, 0),
                    {exp::TotalGoodput(*solo.app, t, t + 10),
                     exp::TotalGoodput(*bw.app, t, t + 10),
                     exp::TotalGoodput(*topfull.app, t, t + 10)},
                    0);
  }
  timeline.Print();

  const double g_solo = exp::TotalGoodput(*solo.app, kSurgeS, kEndS);
  const double g_bw = exp::TotalGoodput(*bw.app, kSurgeS, kEndS);
  const double g_tf = exp::TotalGoodput(*topfull.app, kSurgeS, kEndS);
  std::printf("\nTopFull vs autoscaler:  %.2fx (paper: 3.91x)\n", g_tf / g_solo);
  std::printf("TopFull vs TopFull(BW): %.2fx (paper: 1.19x)\n", g_tf / g_bw);
  return 0;
}

// Figure 16: resource saving under traffic spikes — average goodput vs the
// vCPUs pre-provisioned on the critical (bottleneck) microservices, with and
// without TopFull (no autoscaler; pure overprovisioning trade-off).
//
// Paper: TopFull matches or beats the uncontrolled deployment with up to
// 50 % fewer vCPUs on Train Ticket and 57 % fewer on Online Boutique
// (2.98x goodput at 5 vCPUs on TT, 12.96x at 15 vCPUs on OB).
//
// The 2 apps x 6 vCPU budgets x {with, without} matrix (24 independent
// runs) executes concurrently on the shared worker pool.
#include <algorithm>
#include <cstdio>

#include "apps/online_boutique.hpp"
#include "apps/train_ticket.hpp"
#include "common/table.hpp"
#include "exp/harness.hpp"
#include "exp/model_cache.hpp"
#include "exp/run_executor.hpp"

using namespace topfull;

namespace {

constexpr double kSpikeStartS = 30.0;
constexpr double kSpikeS = 120.0;  // paper: two-minute spike
constexpr double kEndS = 180.0;

void SpikeTraffic(workload::TrafficDriver& traffic, sim::Application& app) {
  traffic.AddClosedLoop(exp::UniformUsers(app),
                        workload::Schedule::Spike(500, Seconds(kSpikeStartS),
                                                  Seconds(kSpikeS), 3200));
}

std::unique_ptr<sim::Application> MakeTrainTicket(int critical_vcpus) {
  apps::TrainTicketOptions options;
  options.seed = 71;
  auto app = apps::MakeTrainTicket(options);
  // Distribute the critical vCPU budget over the services the spike
  // saturates (1 pod = 1 vCPU): the travel/food query plane plus the order
  // services behind it.
  app->service(app->FindService("ts-travel"))
      .SetPodCount(std::max(1, critical_vcpus * 3 / 10));
  app->service(app->FindService("ts-travel2"))
      .SetPodCount(std::max(1, critical_vcpus * 2 / 10));
  app->service(app->FindService("ts-food"))
      .SetPodCount(std::max(1, critical_vcpus * 2 / 10));
  app->service(app->FindService("ts-order"))
      .SetPodCount(std::max(1, critical_vcpus * 2 / 10));
  app->service(app->FindService("ts-order-other"))
      .SetPodCount(std::max(1, critical_vcpus * 1 / 10));
  return app;
}

std::unique_ptr<sim::Application> MakeBoutique(int critical_vcpus) {
  apps::BoutiqueOptions options;
  options.seed = 73;
  options.probe_failures = true;
  auto app = apps::MakeOnlineBoutique(options);
  // Critical services: recommendation + checkout + productcatalog
  // (40/30/30 of the budget).
  app->service(app->FindService("recommendation"))
      .SetPodCount(std::max(1, critical_vcpus * 4 / 10));
  app->service(app->FindService("checkout"))
      .SetPodCount(std::max(1, critical_vcpus * 3 / 10));
  app->service(app->FindService("productcatalog"))
      .SetPodCount(std::max(1, critical_vcpus * 3 / 10));
  return app;
}

void Sweep(const char* name, const std::vector<int>& vcpus,
           std::unique_ptr<sim::Application> (*make_app)(int),
           const rl::GaussianPolicy* policy) {
  std::vector<exp::RunSpec> specs;
  for (const int v : vcpus) {
    for (const bool with_topfull : {false, true}) {
      exp::RunSpec spec;
      spec.label = std::string(name) + "/" + std::to_string(v) +
                   (with_topfull ? "/topfull" : "/none");
      spec.duration_s = kEndS;
      spec.variant =
          with_topfull ? exp::Variant::kTopFull : exp::Variant::kNoControl;
      spec.policy = with_topfull ? policy : nullptr;
      spec.make_app = [make_app, v] { return make_app(v); };
      spec.traffic = SpikeTraffic;
      specs.push_back(std::move(spec));
    }
  }
  const std::vector<exp::RunResult> results = exp::RunExecutor().Execute(specs);

  Table table(std::string(name) +
              ": avg goodput (rps) during the spike vs critical vCPUs");
  table.SetHeader({"vCPUs", "without TopFull", "with TopFull", "gain"});
  for (std::size_t i = 0; i < vcpus.size(); ++i) {
    const double without = exp::TotalGoodput(*results[2 * i].app, kSpikeStartS,
                                             kSpikeStartS + kSpikeS);
    const double with = exp::TotalGoodput(*results[2 * i + 1].app, kSpikeStartS,
                                          kSpikeStartS + kSpikeS);
    table.AddRow({std::to_string(vcpus[i]), Fmt(without, 0), Fmt(with, 0),
                  Fmt(with / std::max(1.0, without), 2) + "x"});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  PrintBanner("Figure 16",
              "Two-minute traffic spike; goodput vs pre-provisioned vCPUs on "
              "critical microservices, with/without TopFull.");
  auto policy = exp::GetPretrainedPolicy();
  Sweep("(a) Train Ticket", {5, 10, 15, 20, 28, 36}, MakeTrainTicket, policy.get());
  Sweep("(b) Online Boutique", {5, 10, 15, 20, 28, 36}, MakeBoutique, policy.get());
  std::printf("Paper: TT needs up to 50%% fewer vCPUs with TopFull (2.98x at "
              "5 vCPUs); OB up to 57%% fewer (12.96x at 15 vCPUs).\n");
  return 0;
}

// Figure 16: resource saving under traffic spikes — average goodput vs the
// vCPUs pre-provisioned on the critical (bottleneck) microservices, with and
// without TopFull (no autoscaler; pure overprovisioning trade-off).
//
// Paper: TopFull matches or beats the uncontrolled deployment with up to
// 50 % fewer vCPUs on Train Ticket and 57 % fewer on Online Boutique
// (2.98x goodput at 5 vCPUs on TT, 12.96x at 15 vCPUs on OB).
#include <cstdio>
#include <numeric>

#include "apps/online_boutique.hpp"
#include "apps/train_ticket.hpp"
#include "common/table.hpp"
#include "exp/harness.hpp"
#include "exp/model_cache.hpp"

using namespace topfull;

namespace {

constexpr double kSpikeStartS = 30.0;
constexpr double kSpikeS = 120.0;  // paper: two-minute spike
constexpr double kEndS = 180.0;

double RunTrainTicket(bool with_topfull, const rl::GaussianPolicy* policy,
                      int critical_vcpus) {
  apps::TrainTicketOptions options;
  options.seed = 71;
  auto app = apps::MakeTrainTicket(options);
  // Distribute the critical vCPU budget over the services the spike
  // saturates (1 pod = 1 vCPU): the travel/food query plane plus the order
  // services behind it.
  app->service(app->FindService("ts-travel"))
      .SetPodCount(std::max(1, critical_vcpus * 3 / 10));
  app->service(app->FindService("ts-travel2"))
      .SetPodCount(std::max(1, critical_vcpus * 2 / 10));
  app->service(app->FindService("ts-food"))
      .SetPodCount(std::max(1, critical_vcpus * 2 / 10));
  app->service(app->FindService("ts-order"))
      .SetPodCount(std::max(1, critical_vcpus * 2 / 10));
  app->service(app->FindService("ts-order-other"))
      .SetPodCount(std::max(1, critical_vcpus * 1 / 10));

  exp::Controllers controllers;
  controllers.Attach(with_topfull ? exp::Variant::kTopFull : exp::Variant::kNoControl,
                     *app, policy);
  workload::TrafficDriver traffic(app.get());
  traffic.AddClosedLoop(exp::UniformUsers(*app),
                        workload::Schedule::Spike(500, Seconds(kSpikeStartS),
                                                  Seconds(kSpikeS), 3200));
  app->RunFor(Seconds(kEndS));
  return exp::TotalGoodput(*app, kSpikeStartS, kSpikeStartS + kSpikeS);
}

double RunBoutique(bool with_topfull, const rl::GaussianPolicy* policy,
                   int critical_vcpus) {
  apps::BoutiqueOptions options;
  options.seed = 73;
  options.probe_failures = true;
  auto app = apps::MakeOnlineBoutique(options);
  // Critical services: recommendation + checkout + productcatalog
  // (40/30/30 of the budget).
  app->service(app->FindService("recommendation"))
      .SetPodCount(std::max(1, critical_vcpus * 4 / 10));
  app->service(app->FindService("checkout"))
      .SetPodCount(std::max(1, critical_vcpus * 3 / 10));
  app->service(app->FindService("productcatalog"))
      .SetPodCount(std::max(1, critical_vcpus * 3 / 10));

  exp::Controllers controllers;
  controllers.Attach(with_topfull ? exp::Variant::kTopFull : exp::Variant::kNoControl,
                     *app, policy);
  workload::TrafficDriver traffic(app.get());
  traffic.AddClosedLoop(exp::UniformUsers(*app),
                        workload::Schedule::Spike(500, Seconds(kSpikeStartS),
                                                  Seconds(kSpikeS), 3200));
  app->RunFor(Seconds(kEndS));
  return exp::TotalGoodput(*app, kSpikeStartS, kSpikeStartS + kSpikeS);
}

void Sweep(const char* name, const std::vector<int>& vcpus,
           double (*run)(bool, const rl::GaussianPolicy*, int),
           const rl::GaussianPolicy* policy) {
  Table table(std::string(name) +
              ": avg goodput (rps) during the spike vs critical vCPUs");
  table.SetHeader({"vCPUs", "without TopFull", "with TopFull", "gain"});
  for (const int v : vcpus) {
    const double without = run(false, nullptr, v);
    const double with = run(true, policy, v);
    table.AddRow({std::to_string(v), Fmt(without, 0), Fmt(with, 0),
                  Fmt(with / std::max(1.0, without), 2) + "x"});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  PrintBanner("Figure 16",
              "Two-minute traffic spike; goodput vs pre-provisioned vCPUs on "
              "critical microservices, with/without TopFull.");
  auto policy = exp::GetPretrainedPolicy();
  Sweep("(a) Train Ticket", {5, 10, 15, 20, 28, 36}, RunTrainTicket, policy.get());
  Sweep("(b) Online Boutique", {5, 10, 15, 20, 28, 36}, RunBoutique, policy.get());
  std::printf("Paper: TT needs up to 50%% fewer vCPUs with TopFull (2.98x at "
              "5 vCPUs); OB up to 57%% fewer (12.96x at 15 vCPUs).\n");
  return 0;
}

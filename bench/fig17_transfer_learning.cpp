// Figure 17 (+ §6.4 "Performance gain of transfer learning"): average
// goodput of different RL models on the Train Ticket surge scenario.
//
// Models: the pre-trained base (graph simulator only), Transfer-TT (base
// fine-tuned on Train Ticket), Transfer-OB (base fine-tuned on Online
// Boutique), plus the autoscaler-free no-control floor for reference.
// Paper: the transfer-learned model serves 8-9 % more than the base; the
// base alone already beats the standalone autoscaler (939 vs 829 rps).
//
// Fine-tuned models are cached under models/; the first run performs the
// specialisation (TOPFULL_FINETUNE_EPISODES overrides the episode count).
#include <cstdio>

#include "apps/online_boutique.hpp"
#include "apps/train_ticket.hpp"
#include "autoscale/hpa.hpp"
#include "common/table.hpp"
#include "exp/harness.hpp"
#include "exp/microservice_env.hpp"
#include "exp/model_cache.hpp"

using namespace topfull;

namespace {

constexpr double kSurgeS = 40.0;
constexpr double kEndS = 240.0;

std::shared_ptr<rl::GaussianPolicy> FineTune(
    const std::string& cache_name,
    std::function<std::unique_ptr<sim::Application>(std::uint64_t)> factory,
    std::vector<std::pair<double, double>> rate_ranges,
    const rl::GaussianPolicy& base) {
  if (auto cached = exp::LoadCachedPolicy(cache_name)) return cached;
  const int episodes = exp::FinetuneEpisodes();
  std::fprintf(stderr, "[fig17] fine-tuning %s for %d episodes...\n",
               cache_name.c_str(), episodes);
  Rng rng(99);
  auto policy = std::make_shared<rl::GaussianPolicy>(rl::PolicyConfig{}, rng);
  std::vector<double> params;
  base.CopyParamsTo(params);
  policy->SetParams(params);  // start from the pre-trained base (Sim2real)

  exp::MicroserviceEnvConfig env_config;
  env_config.factory = std::move(factory);
  env_config.api_rate_ranges = std::move(rate_ranges);
  exp::MicroserviceEnv env(std::move(env_config));

  rl::PpoConfig ppo;
  ppo.episodes_per_iter = 4;  // app episodes are costly; smaller batches
  ppo.lr = 1e-5;              // conservative: specialisation, not retraining
  ppo.sgd_iters = 4;
  rl::PpoTrainer trainer(policy.get(), ppo, 0x71707170);
  // Checkpoint selection on a fixed validation scenario set keeps the
  // fine-tuned model from drifting below the base policy.
  auto validate = [&env](rl::GaussianPolicy& p) {
    return rl::EvaluatePolicy(p, env, /*episodes=*/12, /*seed0=*/777,
                              /*steps_per_episode=*/50);
  };
  trainer.Train(env, episodes, validate, /*checkpoint_every=*/20);
  exp::SaveCachedPolicy(*policy, cache_name);
  return policy;
}

double RunSurge(const rl::GaussianPolicy* policy, bool topfull) {
  // Same scenario as Fig. 14: capacity-capped cluster, pods that crash-loop
  // under sustained queueing.
  apps::TrainTicketOptions options;
  options.seed = 79;
  options.probe_failures = true;
  auto app = apps::MakeTrainTicket(options);
  autoscale::ClusterConfig cluster_config;
  cluster_config.vcpus_per_vm = 36.0;
  cluster_config.initial_vms = 3;
  cluster_config.max_vms = 3;
  cluster_config.vm_startup = Seconds(60);
  autoscale::Cluster cluster(&app->sim(), cluster_config);
  autoscale::HorizontalPodAutoscaler hpa(app.get(), &cluster, {});
  hpa.Start();
  exp::Controllers controllers;
  controllers.Attach(topfull ? exp::Variant::kTopFull : exp::Variant::kNoControl,
                     *app, policy);
  workload::TrafficDriver traffic(app.get());
  traffic.AddClosedLoop(exp::UniformUsers(*app),
                        workload::Schedule::Constant(700).Then(Seconds(kSurgeS), 4200));
  app->RunFor(Seconds(kEndS));
  return exp::TotalGoodput(*app, kSurgeS, kEndS);
}

}  // namespace

int main() {
  PrintBanner("Figure 17",
              "Train Ticket surge with HPA: avg total goodput of base vs "
              "transfer-learned RL models.");
  auto base = exp::GetPretrainedPolicy();

  auto transfer_tt = FineTune(
      "transfer_tt",
      [](std::uint64_t seed) {
        apps::TrainTicketOptions options;
        options.seed = seed;
        return apps::MakeTrainTicket(options);
      },
      {{60, 500}, {40, 350}, {80, 600}, {80, 600}, {60, 500}, {80, 600}}, *base);
  auto transfer_ob = FineTune(
      "transfer_ob",
      [](std::uint64_t seed) {
        apps::BoutiqueOptions options;
        options.seed = seed;
        return apps::MakeOnlineBoutique(options);
      },
      {{100, 700}, {150, 1200}, {100, 900}, {100, 900}, {100, 900}}, *base);

  Table table("avg total goodput during surge (rps)");
  table.SetHeader({"model", "goodput", "vs autoscaler"});
  const double solo = RunSurge(nullptr, /*topfull=*/false);
  struct Row {
    const char* name;
    const rl::GaussianPolicy* policy;
  };
  for (const Row& row : {Row{"autoscaler only", nullptr},
                         Row{"base (simulator only)", base.get()},
                         Row{"Transfer-OB", transfer_ob.get()},
                         Row{"Transfer-TT", transfer_tt.get()}}) {
    const double g = row.policy == nullptr ? solo : RunSurge(row.policy, true);
    table.AddRow({row.name, Fmt(g, 0), Fmt(g / solo, 2) + "x"});
  }
  table.Print();
  std::printf("\nPaper: base 1.13x autoscaler (939 vs 829 rps); Transfer-TT "
              "8-9%% above base; Transfer-OB between base and Transfer-TT.\n");
  return 0;
}

// Figure 18: adaptation to internal instance failures.
//
// Paper setup: 25 of the 35 ts-station pods are deleted at t=50 s;
// Kubernetes re-creates them (ready again ~60 s later). Without control the
// 10 surviving pods drown and goodput collapses to ~0 until recovery; with
// TopFull the APIs crossing ts-station are throttled to what 10 pods can
// serve, preserving that goodput throughout.
#include <cstdio>

#include "apps/train_ticket.hpp"
#include "common/table.hpp"
#include "exp/csv.hpp"
#include "exp/harness.hpp"
#include "exp/model_cache.hpp"

using namespace topfull;

namespace {

constexpr double kFailS = 50.0;
constexpr double kRecoverDelayS = 60.0;
constexpr double kEndS = 180.0;
constexpr int kKilledPods = 25;

std::unique_ptr<sim::Application> Run(exp::Variant variant,
                                      const rl::GaussianPolicy* policy) {
  apps::TrainTicketOptions options;
  options.seed = 83;
  auto app = apps::MakeTrainTicket(options);
  exp::Controllers controllers;
  controllers.Attach(variant, *app, policy);

  workload::TrafficDriver traffic(app.get());
  // Open-loop demand: external callers keep sending at the pre-failure
  // rate, so the surviving 10 ts-station pods face ~1.4x their capacity.
  for (sim::ApiId a = 0; a < app->NumApis(); ++a) {
    traffic.AddOpenLoop(a, workload::Schedule::Constant(460));
  }

  const sim::ServiceId station = app->FindService("ts-station");
  app->sim().ScheduleAt(Seconds(kFailS), [&app, station]() {
    app->service(station).KillPods(kKilledPods);
    // The deployment controller replaces the dead pods; they come up after
    // the recovery delay.
    app->service(station).SetPodCount(35, Seconds(kRecoverDelayS));
  });

  app->RunFor(Seconds(kEndS));
  return app;
}

}  // namespace

int main() {
  PrintBanner("Figure 18",
              "Train Ticket: 25/35 ts-station pods killed at t=50 s, replaced "
              "60 s later. Total goodput timeline, no-control vs TopFull.");
  auto policy = exp::GetPretrainedPolicy();
  auto none = Run(exp::Variant::kNoControl, nullptr);
  auto topfull = Run(exp::Variant::kTopFull, policy.get());

  Table timeline("total goodput (rps, 5 s bins)");
  timeline.SetHeader({"t(s)", "no control", "TopFull", "station pods (TopFull run)"});
  for (double t = 0.0; t + 5.0 <= kEndS; t += 5.0) {
    // Pod count from the service itself at print time is end-state; report
    // the phase instead.
    const char* phase = (t + 5 <= kFailS) ? "35"
                        : (t + 5 <= kFailS + kRecoverDelayS) ? "10"
                                                             : "35";
    timeline.AddRow({Fmt(t + 5.0, 0), Fmt(exp::TotalGoodput(*none, t, t + 5), 0),
                     Fmt(exp::TotalGoodput(*topfull, t, t + 5), 0), phase});
  }
  timeline.Print();

  exp::MaybeExportTimeline(*none, "fig18_no_control");
  exp::MaybeExportTimeline(*topfull, "fig18_topfull");

  const double during_none = exp::TotalGoodput(*none, kFailS + 10, kFailS + kRecoverDelayS);
  const double during_tf = exp::TotalGoodput(*topfull, kFailS + 10, kFailS + kRecoverDelayS);
  std::printf("\nDuring the failure window: no control %.0f rps, TopFull %.0f "
              "rps.\nPaper: no control serves ~zero until recovery; TopFull "
              "holds the goodput 10 pods can sustain.\n",
              during_none, during_tf);
  return 0;
}

// Figure 18: adaptation to internal instance failures.
//
// Paper setup: 25 of the 35 ts-station pods are deleted at t=50 s;
// Kubernetes re-creates them (ready again ~60 s later). Without control the
// surviving pods drown and goodput collapses until recovery; with TopFull
// the APIs crossing ts-station are throttled to what the survivors can
// serve, preserving that goodput throughout, and the healthy goodput is
// regained as soon as restored capacity suffices.
//
// Ported onto the fault-injection engine (src/fault): the crash + staggered
// restart is a FaultSchedule event, the runs go through exp::RunExecutor
// (parallel, bit-identical at any pool size), and DAGOR / Breakwater join
// the comparison.
//
// Two deliberate deviations from the paper's literal numbers, both because
// our simulator's RPCs do not block upstream threads (so cascades the real
// deployment produced by itself need explicit modelling):
//  - 30 of 35 pods die instead of 25: our ts-station runs with ~2.8x
//    headroom, so killing 25 leaves only a mild 1.25x overload; killing 30
//    reproduces the paper's drown-the-survivors regime (~2.5x).
//  - demand sits at the knee (3600 closed-loop users) where ts-travel and
//    ts-order have little slack, so work wasted on requests that later die
//    at ts-station is not free — the coupling the paper got from blocking
//    RPC threads.
#include <algorithm>
#include <cstdio>

#include "apps/train_ticket.hpp"
#include "common/table.hpp"
#include "exp/csv.hpp"
#include "exp/harness.hpp"
#include "exp/model_cache.hpp"
#include "exp/run_executor.hpp"
#include "fault/fault.hpp"

using namespace topfull;

namespace {

constexpr double kFailS = 50.0;
constexpr double kRecoverDelayS = 60.0;
constexpr double kRestartStaggerS = 1.0;  // rolling re-create, 1 pod/s
constexpr double kEndS = 180.0;
constexpr int kKilledPods = 30;
constexpr int kUsers = 3600;

exp::RunSpec MakeSpec(exp::Variant variant, const rl::GaussianPolicy* policy) {
  exp::RunSpec spec;
  spec.label = exp::VariantName(variant);
  spec.duration_s = kEndS;
  spec.variant = variant;
  spec.policy = policy;
  // §4.1 recovery: reopen throttled APIs optimistically once their paths are
  // overload-free (re-overloading puts them back under cluster control next
  // tick) and deactivate the limiter when it stops binding.
  spec.topfull_config.recovery_step = 0.5;
  spec.topfull_config.deactivate_when_slack = true;
  spec.make_app = [variant]() {
    apps::TrainTicketOptions options;
    options.seed = 83;
    // DAGOR runs with its designed per-API business priorities (fig8/fig9
    // convention); the priority-free variants run all-equal.
    options.distinct_priorities = variant == exp::Variant::kDagor;
    auto app = apps::MakeTrainTicket(options);
    // Per-hop timeouts with one bounded retry: failed attempts are retried
    // by the caller, so deep shedding at ts-station re-amplifies load on
    // the upstream path (the §6.1 wasted-work mechanism).
    app->ConfigureRpc(Millis(800), /*max_retries=*/1, Millis(50));
    return app;
  };
  // Locust-style closed loop: kUsers users issuing one request at a time
  // with ~1 s think time, uniformly over the six APIs.
  spec.traffic = [](workload::TrafficDriver& traffic, sim::Application& app) {
    traffic.AddClosedLoop(exp::UniformUsers(app),
                          workload::Schedule::Constant(kUsers));
  };
  // The failure itself: one crash event; the deployment controller replaces
  // the dead pods starting kRecoverDelayS later, one becoming ready per
  // kRestartStaggerS (a rolling re-create rather than 30 simultaneously).
  spec.faults.CrashPods("ts-station", Seconds(kFailS), kKilledPods,
                        Seconds(kRecoverDelayS), Seconds(kRestartStaggerS));
  return spec;
}

/// First time >= from_s at which the 1 s-binned goodput stays at or above
/// `target` for 5 consecutive bins, or -1 when never reached.
double RecoveryTime(const sim::Application& app, double from_s, double target) {
  for (double t = from_s; t + 5.0 <= kEndS; t += 1.0) {
    bool sustained = true;
    for (int bin = 0; bin < 5; ++bin) {
      if (exp::TotalGoodput(app, t + bin, t + bin + 1) < target) {
        sustained = false;
        break;
      }
    }
    if (sustained) return t;
  }
  return -1.0;
}

}  // namespace

int main() {
  PrintBanner("Figure 18",
              "Train Ticket: 30/35 ts-station pods killed at t=50 s, rolling "
              "re-create from t=110 s (fault engine). Goodput timelines, "
              "no-control vs TopFull vs DAGOR vs Breakwater.");
  auto policy = exp::GetPretrainedPolicy();
  const std::vector<exp::RunSpec> specs = {
      MakeSpec(exp::Variant::kNoControl, nullptr),
      MakeSpec(exp::Variant::kTopFull, policy.get()),
      MakeSpec(exp::Variant::kDagor, nullptr),
      MakeSpec(exp::Variant::kBreakwater, nullptr),
  };
  const auto results = exp::RunExecutor().Execute(specs);

  Table timeline("total goodput (rps, 5 s bins)");
  timeline.SetHeader({"t(s)", "no control", "TopFull", "DAGOR", "Breakwater",
                      "station pods"});
  for (double t = 0.0; t + 5.0 <= kEndS; t += 5.0) {
    const double mid = t + 2.5;
    int pods = 35;
    if (mid >= kFailS) {
      const double restored =
          (mid - (kFailS + kRecoverDelayS)) / kRestartStaggerS;
      const int back = std::clamp(static_cast<int>(restored), 0, kKilledPods);
      pods = 35 - kKilledPods + back;
    }
    timeline.AddRow({Fmt(t + 5.0, 0),
                     Fmt(exp::TotalGoodput(*results[0].app, t, t + 5), 0),
                     Fmt(exp::TotalGoodput(*results[1].app, t, t + 5), 0),
                     Fmt(exp::TotalGoodput(*results[2].app, t, t + 5), 0),
                     Fmt(exp::TotalGoodput(*results[3].app, t, t + 5), 0),
                     Fmt(static_cast<double>(pods), 0)});
  }
  timeline.Print();

  exp::MaybeExportTimeline(*results[0].app, "fig18_no_control");
  exp::MaybeExportTimeline(*results[1].app, "fig18_topfull");
  exp::MaybeExportTimeline(*results[2].app, "fig18_dagor");
  exp::MaybeExportTimeline(*results[3].app, "fig18_breakwater");

  std::printf("\nfault log (TopFull run):\n");
  for (const auto& r : results[1].fault_log) {
    std::printf("  t=%7.2fs %s %s svc=%s count=%d\n", ToSeconds(r.at),
                fault::FaultTypeName(r.type), fault::FaultActionName(r.action),
                r.service.c_str(), r.count);
  }

  // The recovery bar is the healthy system's goodput: 95% of the best
  // pre-failure level across variants. Measuring against each variant's own
  // (possibly already degraded) pre-failure level would reward a controller
  // for being slow before the failure too.
  double healthy = 0.0;
  for (const auto& result : results) {
    healthy = std::max(healthy, exp::TotalGoodput(*result.app, 25, kFailS));
  }
  const double bar = 0.95 * healthy;

  Table summary("failure window + recovery");
  summary.SetHeader({"variant", "pre-fail (rps)", "during failure (rps)",
                     "recovered (rps)", "t_recover (>=95% healthy)"});
  for (const auto& result : results) {
    const double prefail = exp::TotalGoodput(*result.app, 25, kFailS);
    const double during =
        exp::TotalGoodput(*result.app, kFailS + 10, kFailS + kRecoverDelayS);
    const double recovered = exp::TotalGoodput(*result.app, 150, kEndS);
    const double recover =
        RecoveryTime(*result.app, kFailS + kRecoverDelayS, bar);
    summary.AddRow({result.label, Fmt(prefail, 0), Fmt(during, 0),
                    Fmt(recovered, 0),
                    recover < 0 ? "never" : Fmt(recover, 0) + " s"});
  }
  summary.Print();
  std::printf(
      "\nPaper: no control collapses until recovery; TopFull holds the goodput "
      "the survivors can sustain and is back at the healthy level as soon as "
      "restored capacity suffices, while the per-pod baselines plateau below "
      "it (recovery bar: %.0f rps).\n",
      bar);
  return 0;
}

// Figure 19: sensitivity to VM startup time.
//
// Paper setup: Online Boutique surge (160 s) with the cluster autoscaler's
// VM startup time emulated at 20 / 40 / 60 s (real clouds: 41-124 s, up to
// 267 s on Azure at peak hours). Paper: both improve with faster VMs;
// TopFull keeps up to a 1.52x edge and still wins at 20 s because it acts on
// a smaller timescale than any autoscaler.
#include <cstdio>

#include "apps/online_boutique.hpp"
#include "autoscale/hpa.hpp"
#include "common/table.hpp"
#include "exp/harness.hpp"
#include "exp/model_cache.hpp"

using namespace topfull;

namespace {

constexpr double kSurgeS = 30.0;
constexpr double kSurgeLenS = 160.0;  // paper: 160 s surge
constexpr double kEndS = 220.0;

double Run(exp::Variant variant, const rl::GaussianPolicy* policy,
           double vm_startup_s) {
  apps::BoutiqueOptions options;
  options.seed = 89;
  options.probe_failures = true;
  auto app = apps::MakeOnlineBoutique(options);
  autoscale::ClusterConfig cluster_config;
  // Small VMs so the surge immediately exhausts the pool: how fast new VMs
  // arrive (the swept startup time) is then what gates the autoscaler.
  cluster_config.vcpus_per_vm = 24.0;
  cluster_config.initial_vms = 1;
  cluster_config.max_vms = 6;
  cluster_config.vm_startup = Seconds(vm_startup_s);
  autoscale::Cluster cluster(&app->sim(), cluster_config);
  autoscale::HorizontalPodAutoscaler hpa(app.get(), &cluster, {});
  hpa.Start();
  exp::Controllers controllers;
  controllers.Attach(variant, *app, policy);
  workload::TrafficDriver traffic(app.get());
  traffic.AddClosedLoop(exp::UniformUsers(*app),
                        workload::Schedule::Spike(600, Seconds(kSurgeS),
                                                  Seconds(kSurgeLenS), 3600));
  app->RunFor(Seconds(kEndS));
  return exp::TotalGoodput(*app, kSurgeS, kSurgeS + kSurgeLenS);
}

}  // namespace

int main() {
  PrintBanner("Figure 19",
              "Online Boutique surge with HPA: avg goodput vs emulated VM "
              "startup time (20/40/60 s).");
  auto policy = exp::GetPretrainedPolicy();

  Table table("avg goodput during the 160 s surge (rps)");
  table.SetHeader({"VM startup", "autoscaler", "TopFull+AS", "gain"});
  for (const double startup : {20.0, 40.0, 60.0}) {
    const double solo = Run(exp::Variant::kNoControl, nullptr, startup);
    const double tf = Run(exp::Variant::kTopFull, policy.get(), startup);
    table.AddRow({Fmt(startup, 0) + "s", Fmt(solo, 0), Fmt(tf, 0),
                  Fmt(tf / std::max(1.0, solo), 2) + "x"});
  }
  table.Print();
  std::printf("\nPaper: goodput rises as VM startup shrinks; TopFull keeps up "
              "to a 1.52x advantage and still wins at 20 s.\n");
  return 0;
}

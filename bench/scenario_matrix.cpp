// Scenario conformance matrix: every workload-pathology scenario under
// every controller, with per-cell invariant verdicts.
//
// The CI gate for controller behaviour: a cell fails when an invariant
// breaks unexpectedly OR when a controller that is supposed to trip a
// pathology (e.g. the static limit staying trapped in the metastable
// scenario) fails to trip it — the suite guards the demonstrations as
// much as the fixes.
//
// Usage:
//   scenario_matrix [--smoke] [--json FILE] [--controllers a,b,c]
//                   [--scenario NAME] [--profile FILE] [--list]
//
//   --smoke        time-scale every scenario to 25 % for a quick validity
//                  check; conformance is reported but not enforced (the
//                  thresholds are calibrated for full length)
//   --json FILE    also write the machine-readable matrix report
//   --controllers  comma-separated controller list
//                  (default topfull,dagor,breakwater,static)
//   --scenario     run a single built-in scenario
//   --profile      load scenarios from a text profile instead of builtins
//   --list         print the scenario library and exit
//
// Exit code: 0 when every cell conforms (always 0 under --smoke unless a
// cell errors), 1 otherwise.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "scenario/library.hpp"
#include "scenario/profile.hpp"
#include "scenario/runner.hpp"

using namespace topfull;

namespace {

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream stream(s);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

void PrintLibrary(const std::vector<scenario::ScenarioSpec>& specs) {
  Table table("Scenario library");
  table.SetHeader({"name", "app", "duration", "invariants", "description"});
  for (const scenario::ScenarioSpec& spec : specs) {
    std::string kinds;
    for (const scenario::Invariant& inv : spec.invariants) {
      if (!kinds.empty()) kinds += "+";
      kinds += scenario::InvariantKindName(inv.kind);
    }
    table.AddRow({spec.name, spec.app, Fmt(spec.duration_s, 0) + " s", kinds,
                  spec.description});
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool list = false;
  std::string json_path;
  std::string only_scenario;
  std::string profile_path;
  scenario::MatrixOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--controllers" && i + 1 < argc) {
      options.controllers = SplitCsv(argv[++i]);
    } else if (arg == "--scenario" && i + 1 < argc) {
      only_scenario = argv[++i];
    } else if (arg == "--profile" && i + 1 < argc) {
      profile_path = argv[++i];
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }

  std::vector<scenario::ScenarioSpec> specs;
  if (!profile_path.empty()) {
    std::string error;
    const auto parsed = scenario::LoadScenarioProfile(profile_path, &error);
    if (!parsed.has_value()) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 2;
    }
    specs = *parsed;
  } else {
    specs = scenario::BuiltinScenarios();
  }
  if (!only_scenario.empty()) {
    std::vector<scenario::ScenarioSpec> filtered;
    for (scenario::ScenarioSpec& spec : specs) {
      if (spec.name == only_scenario) filtered.push_back(std::move(spec));
    }
    if (filtered.empty()) {
      std::fprintf(stderr, "unknown scenario '%s'\n", only_scenario.c_str());
      return 2;
    }
    specs = std::move(filtered);
  }
  if (list) {
    PrintLibrary(specs);
    return 0;
  }
  if (smoke) {
    for (scenario::ScenarioSpec& spec : specs) spec = spec.TimeScaled(0.25);
  }

  PrintBanner("scenario_matrix",
              "workload-pathology scenarios x controllers, invariant verdicts");
  const std::vector<scenario::CellVerdict> verdicts =
      scenario::RunScenarioMatrix(specs, options);
  scenario::PrintMatrixReport(verdicts);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << scenario::MatrixReportJson(verdicts);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  }

  bool errored = false;
  for (const scenario::CellVerdict& cell : verdicts) {
    if (!cell.error.empty()) errored = true;
  }
  if (errored) return 2;
  if (smoke) return 0;  // validity run; thresholds need full duration
  return scenario::AllConform(verdicts) ? 0 : 1;
}

// §2 "Starvation is easily triggered and frequent": two measurements.
//
// (a) Online Boutique: surging one API at a time always overloads multiple
//     microservices — 3.4 on average across the five APIs in the paper.
// (b) Alibaba trace: 44.4 % of the APIs involved in overloaded microservices
//     are potentially starvation-vulnerable (involved in several overloaded
//     microservices with contending APIs). We run the same analysis over the
//     synthetic trace calibrated to the published statistics.
#include <cstdio>

#include "apps/online_boutique.hpp"
#include "common/table.hpp"
#include "exp/harness.hpp"
#include "trace/synthetic_trace.hpp"

using namespace topfull;

namespace {

int OverloadedServicesAfterSurge(sim::ApiId api) {
  apps::BoutiqueOptions options;
  options.seed = 97;
  auto app = apps::MakeOnlineBoutique(options);
  workload::TrafficDriver traffic(app.get());
  // Moderate background on all APIs, then a large surge on one API.
  for (sim::ApiId a = 0; a < app->NumApis(); ++a) {
    traffic.AddOpenLoop(a, workload::Schedule::Constant(300));
  }
  traffic.AddOpenLoop(api, workload::Schedule::Constant(0).Then(Seconds(10), 4000));
  app->RunFor(Seconds(40));
  // Utilisation averaged over the last 10 s (single 1 s snapshots are noisy
  // for services hovering right at the threshold).
  const auto& timeline = app->metrics().Timeline();
  const std::size_t window = std::min<std::size_t>(10, timeline.size());
  int overloaded = 0;
  for (int s = 0; s < app->NumServices(); ++s) {
    double sum = 0.0;
    for (std::size_t i = timeline.size() - window; i < timeline.size(); ++i) {
      sum += timeline[i].services[static_cast<std::size_t>(s)].cpu_utilization;
    }
    if (sum / static_cast<double>(window) > 0.8) ++overloaded;
  }
  return overloaded;
}

}  // namespace

int main() {
  PrintBanner("Section 2 analysis",
              "(a) overloaded microservices per single-API surge on Online "
              "Boutique; (b) starvation vulnerability in the trace.");

  const char* names[] = {"postcheckout", "getproduct", "getcart", "postcart",
                         "emptycart"};
  Table per_api("(a) single-API 6x surge -> # microservices with util > 0.8");
  per_api.SetHeader({"surged API", "overloaded microservices"});
  double total = 0.0;
  for (sim::ApiId a = 0; a < 5; ++a) {
    const int n = OverloadedServicesAfterSurge(a);
    total += n;
    per_api.AddRow({names[a], std::to_string(n)});
  }
  per_api.Print();
  std::printf("average: %.1f (paper: 3.4)\n\n", total / 5.0);

  const trace::TraceConfig config;
  const trace::SyntheticTrace synthetic = trace::GenerateTrace(config, 20210701);
  const trace::StarvationAnalysis analysis =
      trace::AnalyzeStarvation(synthetic, config.util_threshold);
  Table trace_table("(b) synthetic Alibaba trace (23,481 microservices)");
  trace_table.SetHeader({"metric", "value", "paper"});
  trace_table.AddRow({"overloaded microservices",
                      std::to_string(analysis.overloaded_services), "up to 68"});
  trace_table.AddRow({"APIs involved in overloaded ms",
                      std::to_string(analysis.apis_involved), "-"});
  trace_table.AddRow({"starvation-vulnerable APIs",
                      std::to_string(analysis.vulnerable_apis), "-"});
  trace_table.AddRow({"vulnerable fraction",
                      Fmt(100.0 * analysis.vulnerable_fraction, 1) + "%", "44.4%"});
  trace_table.Print();
  return 0;
}

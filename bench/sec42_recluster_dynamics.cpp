// §4.2 "Re-clustering dynamically": clusters are transitive — they merge
// when a new overload bridges previously independent groups and split again
// as overloads resolve.
//
// Scenario (Train Ticket): phase 1 surges the two ticket-query APIs (their
// bottlenecks, ts-travel and ts-travel2, are disjoint -> 2 clusters);
// phase 2 fails 3 of ts-basic's 4 pods — ts-basic sits on BOTH ticket
// queries' paths, so the shared overload bridges the groups into one
// cluster; phase 3 restores the pods and the merged cluster splits back.
#include <cstdio>

#include "apps/train_ticket.hpp"
#include "common/table.hpp"
#include "exp/harness.hpp"

using namespace topfull;

int main() {
  PrintBanner("Section 4.2 re-clustering dynamics",
              "Cluster count / membership over time as overloads appear, "
              "bridge, and resolve.");

  apps::TrainTicketOptions options;
  options.seed = 119;
  auto app = apps::MakeTrainTicket(options);
  // Passive observation: clustering is an analysis over the overload set
  // (Eq. 2), so we watch it evolve on the uncontrolled system — under
  // TopFull the overloads themselves would be resolved within seconds
  // (which is the product's job, but makes a poor illustration).
  core::ApiRegistry registry(*app);
  core::OverloadConfig detect;
  detect.util_exit_threshold = 0.8;  // two-threshold detector
  std::vector<bool> flagged(static_cast<std::size_t>(app->NumServices()), false);
  core::ClusterTracker tracker(app->NumApis());

  workload::TrafficDriver traffic(app.get());
  // Base load everywhere.
  for (sim::ApiId a = 0; a < app->NumApis(); ++a) {
    traffic.AddOpenLoop(a, workload::Schedule::Constant(120));
  }
  // Phase 1 (t=10): ticket queries surge; travel and travel2 overload.
  traffic.AddOpenLoop(apps::kHighSpeedTicket,
                      workload::Schedule::Constant(0).Then(Seconds(10), 900));
  traffic.AddOpenLoop(apps::kNormalSpeedTicket,
                      workload::Schedule::Constant(0).Then(Seconds(10), 500));
  // Phase 2 (t=50..90): ts-basic — shared by BOTH ticket queries — loses
  // 3 of its 4 pods. The shared overload bridges the two previously
  // independent clusters into one (Eq. 2 transitivity); pods return at
  // t=90 and the merged cluster splits back apart.
  const sim::ServiceId basic = app->FindService("ts-basic");
  app->sim().ScheduleAt(Seconds(50), [&app, basic]() {
    app->service(basic).KillPods(3);
  });
  app->sim().ScheduleAt(Seconds(90), [&app, basic]() {
    app->service(basic).SetPodCount(4, Seconds(1));
  });

  for (int t = 0; t < 140; ++t) {
    app->RunFor(Seconds(1));
    const auto& snap = app->metrics().Latest();
    std::vector<sim::ServiceId> overloaded = core::DetectOverloaded(snap, detect);
    std::vector<bool> now(flagged.size(), false);
    for (const sim::ServiceId s : overloaded) now[s] = true;
    for (std::size_t s = 0; s < flagged.size(); ++s) {
      if (flagged[s] && !now[s] &&
          snap.services[s].cpu_utilization >= detect.util_exit_threshold) {
        now[s] = true;
      }
    }
    overloaded.clear();
    for (std::size_t s = 0; s < now.size(); ++s) {
      if (now[s]) overloaded.push_back(static_cast<sim::ServiceId>(s));
    }
    flagged = std::move(now);
    tracker.Record(ToSeconds(app->sim().Now()), core::BuildClusters(registry, overloaded));
  }

  Table table("clusters per control tick (5 s samples)");
  table.SetHeader({"t(s)", "clusters", "overloaded services", "APIs involved",
                   "splits", "merges"});
  for (const auto& snap : tracker.History()) {
    if (static_cast<int>(snap.t_s) % 5 != 0 && snap.splits == 0 && snap.merges == 0) {
      continue;  // print the 5 s grid plus every split/merge event
    }
    table.AddRow({Fmt(snap.t_s, 0), std::to_string(snap.clusters),
                  std::to_string(snap.overloaded_services),
                  std::to_string(snap.member_apis), std::to_string(snap.splits),
                  std::to_string(snap.merges)});
  }
  table.Print();
  std::printf("\ntotal splits: %d, total merges: %d — Eq. 2 partitions are "
              "re-derived every tick, so the sub-problems track the live "
              "overload set.\n",
              tracker.TotalSplits(), tracker.TotalMerges());
  return 0;
}

// §6.4 "Scalability and effectiveness of clustering": cluster the overloaded
// microservices of the (synthetic) Alibaba trace.
//
// Paper: at a given time up to 68 of 23,481 microservices are overloaded;
// 59 % of them share no API with any other overloaded microservice; the
// sharing ones form groups of 2.38 on average; the 68 constraints decompose
// into 57 independent clusters with 1.19 constraints each.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/partition.hpp"
#include "common/table.hpp"
#include "trace/synthetic_trace.hpp"

using namespace topfull;

int main(int argc, char** argv) {
  PrintBanner("Section 6.4 clustering",
              "Clustering the overloaded microservices of the synthetic "
              "Alibaba trace into independent sub-problems.");

  const trace::TraceConfig config;
  const trace::SyntheticTrace synthetic = trace::GenerateTrace(config, 20210701);

  const auto start = std::chrono::steady_clock::now();
  const trace::ClusteringAnalysis analysis =
      trace::AnalyzeClustering(synthetic, config.util_threshold);
  const auto elapsed = std::chrono::duration<double, std::milli>(
      std::chrono::steady_clock::now() - start);

  Table table("clustering of the overload snapshot");
  table.SetHeader({"metric", "measured", "paper"});
  table.AddRow({"microservices in trace", std::to_string(synthetic.num_services),
                "23,481"});
  table.AddRow({"overloaded (util > 0.8)",
                std::to_string(analysis.overloaded_services), "68"});
  table.AddRow({"independent clusters", std::to_string(analysis.clusters), "57"});
  table.AddRow({"avg constraints per cluster",
                Fmt(analysis.avg_constraints_per_cluster, 2), "1.19"});
  table.AddRow({"overloaded ms sharing no APIs",
                Fmt(100.0 * analysis.isolated_fraction, 0) + "%", "59%"});
  table.AddRow({"avg sharing-group size", Fmt(analysis.avg_sharing_group, 2),
                "2.38"});
  table.AddRow({"analysis wall time", Fmt(elapsed.count(), 1) + " ms", "-"});
  table.Print();

  std::printf("\nEach cluster is an independent sub-problem, so TopFull runs "
              "one rate controller per cluster in parallel.\n");

  // The same decomposition drives the sharded DES: pack the independent
  // clusters onto engine shards (LPT by constraint count) and emit the
  // cluster -> shard map as JSON for tooling and the sharded-run docs.
  const int kShards = 8;
  std::vector<double> cluster_weight(static_cast<std::size_t>(analysis.clusters),
                                     0.0);
  for (const int c : analysis.service_cluster) {
    cluster_weight[static_cast<std::size_t>(c)] += 1.0;
  }
  const std::vector<int> cluster_shard = PackBinsLpt(cluster_weight, kShards);
  const char* out_path =
      argc > 1 ? argv[1] : "SEC64_cluster_shard_map.json";
  if (std::FILE* f = std::fopen(out_path, "w")) {
    std::string json = "{\n";
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "  \"clusters\": %d, \"shards\": %d,\n  \"services\": [\n",
                  analysis.clusters, kShards);
    json += buf;
    for (std::size_t i = 0; i < analysis.overloaded_ids.size(); ++i) {
      const int cluster = analysis.service_cluster[i];
      std::snprintf(buf, sizeof buf,
                    "    {\"service\": %d, \"cluster\": %d, \"shard\": %d}%s\n",
                    analysis.overloaded_ids[i], cluster,
                    cluster_shard[static_cast<std::size_t>(cluster)],
                    i + 1 == analysis.overloaded_ids.size() ? "" : ",");
      json += buf;
    }
    json += "  ]\n}\n";
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("cluster -> shard map (%d clusters over %d shards) written to "
                "%s\n",
                analysis.clusters, kShards, out_path);
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  return 0;
}

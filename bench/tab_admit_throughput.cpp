// Concurrent admission-plane throughput bench (DESIGN.md §15).
//
// Measures the gateway datapath the sim's entry limiter now runs on —
// CachedGate::TryAdmit through an AdmissionPlane slot backed by the
// lock-free AtomicTokenBucket — at 1/4/8/16/32 threads:
//
//   admit_heavy    rate far above the offered load: every op takes the CAS
//                  admit path (the worst-case write contention on one line)
//   reject_path    drained zero-rate bucket: every op takes the zero-RMW
//                  fast reject (should scale near-linearly with cores)
//   mixed          refill ~0.5 token/µs against multi-thread offered load:
//                  admits and rejects interleave
//   reconfig_storm admit_heavy while a control thread republishes the slot's
//                  (rate, burst) as fast as it can — every publish builds
//                  and release-publishes a fresh RCU snapshot
//
// plus a single-threaded `token_bucket_ref` row (the historical sim-internal
// TokenBucket, the 4.9 ns/admit reference) through the same harness.
//
// Reported per row: ns/op, ops/sec (total and per thread), p99 admit latency
// (sampled every 128th op with steady_clock), admit-path heap allocations
// per op (thread-local operator-new hook, so a reconfiguring control
// thread's snapshot builds are *not* charged to the admit path — those are
// the point of the RCU design), CAS-retry-bound rejects, and publishes.
//
// Threads beyond the machine's cores oversubscribe; per-thread throughput
// and the p99 then include scheduler preemption. CI gates each row against
// a committed same-class-runner baseline with generous tolerance
// (bench/baselines/BENCH_admit_throughput.json): >30 % ops/sec drop or a
// >2x p99 blow-up fails, and the admit path must stay allocation-free.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "admit/admitter.hpp"
#include "admit/atomic_token_bucket.hpp"
#include "admit/plane.hpp"
#include "common/token_bucket.hpp"

using namespace topfull;

// --- thread-local counting allocator hook ------------------------------------

#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

static thread_local std::uint64_t t_allocs = 0;

void* operator new(std::size_t size) {
  ++t_allocs;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void* operator new[](std::size_t size) {
  ++t_allocs;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kSamplePeriod = 128;  ///< p99 sampling stride

struct Row {
  std::string name;
  int threads = 1;
  std::uint64_t ops = 0;
  std::uint64_t admitted = 0;
  double wall_s = 0.0;
  double p99_ns = 0.0;
  std::uint64_t admit_allocs = 0;  // worker-thread allocations only
  std::uint64_t contention_rejects = 0;
  std::uint64_t publishes = 0;

  double OpsPerSec() const { return static_cast<double>(ops) / wall_s; }
  double NsPerOp() const { return 1e9 * wall_s / static_cast<double>(ops); }
  double AllocsPerOp() const {
    return static_cast<double>(admit_allocs) / static_cast<double>(ops);
  }
};

/// One worker's slice: `ops` admits against `fn(now)` with a private virtual
/// microsecond clock (`step_us` per op — reading a shared clock would
/// serialize the very threads we are measuring). Samples every 128th op.
template <typename Fn>
void Worker(Fn fn, std::uint64_t ops, SimTime step_us,
            std::uint64_t* admitted_out, std::uint64_t* allocs_out,
            std::vector<double>* samples_out) {
  std::vector<double> samples;
  samples.reserve(ops / kSamplePeriod + 1);
  const std::uint64_t allocs0 = t_allocs;
  std::uint64_t admitted = 0;
  SimTime now = 0;
  for (std::uint64_t i = 0; i < ops; ++i) {
    now += step_us;
    if ((i & (kSamplePeriod - 1)) == 0) {
      const auto t0 = Clock::now();
      admitted += fn(now) ? 1 : 0;
      const auto t1 = Clock::now();
      samples.push_back(
          std::chrono::duration<double, std::nano>(t1 - t0).count());
    } else {
      admitted += fn(now) ? 1 : 0;
    }
  }
  *allocs_out = t_allocs - allocs0;
  *admitted_out = admitted;
  *samples_out = std::move(samples);
}

double Percentile99(std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  const std::size_t idx =
      std::min(samples.size() - 1,
               static_cast<std::size_t>(0.99 * static_cast<double>(samples.size())));
  std::nth_element(samples.begin(), samples.begin() + static_cast<std::ptrdiff_t>(idx),
                   samples.end());
  return samples[idx];
}

/// Runs `threads` workers over `fn`, with an optional control-thread loop
/// (`storm`, called until the workers finish; return = publishes done).
template <typename Fn, typename Storm>
Row RunCase(const std::string& name, int threads, std::uint64_t ops_per_thread,
            SimTime step_us, Fn fn, Storm storm, bool with_storm) {
  Row row;
  row.name = name;
  row.threads = threads;
  row.ops = ops_per_thread * static_cast<std::uint64_t>(threads);

  std::vector<std::uint64_t> admitted(static_cast<std::size_t>(threads), 0);
  std::vector<std::uint64_t> allocs(static_cast<std::size_t>(threads), 0);
  std::vector<std::vector<double>> samples(static_cast<std::size_t>(threads));
  std::atomic<int> remaining{threads};

  const auto t0 = Clock::now();
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t]() {
      Worker(fn, ops_per_thread, step_us, &admitted[static_cast<std::size_t>(t)],
             &allocs[static_cast<std::size_t>(t)],
             &samples[static_cast<std::size_t>(t)]);
      remaining.fetch_sub(1, std::memory_order_relaxed);
    });
  }
  if (with_storm) {
    // The bench main thread plays the control thread until the last worker
    // reports in.
    while (remaining.load(std::memory_order_relaxed) > 0) {
      row.publishes += storm();
    }
  }
  for (auto& th : pool) th.join();
  row.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();

  std::vector<double> all;
  for (int t = 0; t < threads; ++t) {
    row.admitted += admitted[static_cast<std::size_t>(t)];
    row.admit_allocs += allocs[static_cast<std::size_t>(t)];
    all.insert(all.end(), samples[static_cast<std::size_t>(t)].begin(),
               samples[static_cast<std::size_t>(t)].end());
  }
  row.p99_ns = Percentile99(all);
  return row;
}

std::uint64_t NoStorm() { return 0; }

void Print(const Row& r) {
  std::printf(
      "%-16s t=%2d  %7.2f ns/op  %12.0f ops/s  %11.0f ops/s/thread  "
      "p99 %8.0f ns  allocs/op %.4f  cas_rejects %llu  publishes %llu\n",
      r.name.c_str(), r.threads, r.NsPerOp(), r.OpsPerSec(),
      r.OpsPerSec() / r.threads, r.p99_ns, r.AllocsPerOp(),
      static_cast<unsigned long long>(r.contention_rejects),
      static_cast<unsigned long long>(r.publishes));
}

void WriteJson(const std::vector<Row>& rows, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    std::exit(2);
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "  {\"case\": \"%s\", \"threads\": %d, \"ops\": %llu, "
                 "\"wall_s\": %.4f, \"ops_per_sec\": %.1f, "
                 "\"ns_per_op\": %.3f, \"p99_ns\": %.1f, "
                 "\"allocs_per_op\": %.6f, \"admit_fraction\": %.4f, "
                 "\"contention_rejects\": %llu, \"publishes\": %llu}%s\n",
                 r.name.c_str(), r.threads,
                 static_cast<unsigned long long>(r.ops), r.wall_s,
                 r.OpsPerSec(), r.NsPerOp(), r.p99_ns, r.AllocsPerOp(),
                 static_cast<double>(r.admitted) / static_cast<double>(r.ops),
                 static_cast<unsigned long long>(r.contention_rejects),
                 static_cast<unsigned long long>(r.publishes),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const char* out = argc > 1 ? argv[1] : "BENCH_admit_throughput.json";
  const std::vector<int> kThreadCounts = {1, 4, 8, 16, 32};
  // ~24M ops/case split across the workers, so every row runs long enough
  // to stabilize but the full table stays CI-sized.
  const auto ops_for = [](int threads) {
    return static_cast<std::uint64_t>(24'000'000 / threads);
  };
  std::vector<Row> rows;

  // Floor row: a dependent `lock cmpxchg16b` loop with no bucket logic at
  // all. Every admit must spend its token through exactly one such locked op
  // (conservation needs the RMW), so no admitter can beat this row. On bare
  // metal it is ~6 ns; virtualized hosts can push the bare instruction past
  // 2x the plain TokenBucket row, which is why the CI gate reads this row
  // instead of hard-coding an absolute bound.
  {
    admit::Packed128 cell{0.0, 0};
    admit::Packed128 expected{0.0, 0};
    Row r = RunCase(
        "cas16b_floor", 1, ops_for(1), 1,
        [&cell, &expected](SimTime now) {
          const admit::Packed128 want{expected.tokens + 1.0, now};
          if (admit::CompareExchange(&cell, expected, want)) expected = want;
          return true;
        },
        NoStorm, false);
    Print(r);
    rows.push_back(r);
  }
  // Single-threaded reference: the historical sim-internal TokenBucket.
  {
    TokenBucket bucket(1e9, 1e6);
    Row r = RunCase(
        "token_bucket_ref", 1, ops_for(1), 1,
        [&bucket](SimTime now) { return bucket.TryAdmit(now); }, NoStorm,
        false);
    Print(r);
    rows.push_back(r);
  }
  // Single-threaded AtomicTokenBucket, no plane: the acceptance criterion
  // is that this stays within 2x of token_bucket_ref.
  {
    admit::AtomicTokenBucket bucket(1e9, 1e6);
    Row r = RunCase(
        "atomic_bucket_1t", 1, ops_for(1), 1,
        [&bucket](SimTime now) { return bucket.TryAdmit(now); }, NoStorm,
        false);
    r.contention_rejects = bucket.contention_rejects();
    Print(r);
    rows.push_back(r);
  }

  for (const int threads : kThreadCounts) {
    // admit_heavy: rate >> offered, every op CASes the shared cell.
    {
      admit::AdmissionPlane plane;
      const int slot = plane.Register(
          "entry", "api", std::make_shared<admit::TokenBucketAdmitter>(1e9, 1e6));
      admit::AtomicTokenBucket& bucket =
          static_cast<admit::TokenBucketAdmitter&>(
              *plane.Snapshot()->slots[static_cast<std::size_t>(slot)])
              .bucket();
      Row r = RunCase(
          "admit_heavy", threads, ops_for(threads), 1,
          [&plane, slot](SimTime now) {
            thread_local admit::CachedGate gate;
            thread_local const admit::AdmissionPlane* bound = nullptr;
            if (bound != &plane) {
              gate = admit::CachedGate(&plane);
              bound = &plane;
            }
            admit::AdmitRequest req;
            req.now = now;
            return gate.TryAdmit(slot, req);
          },
          NoStorm, false);
      r.contention_rejects = bucket.contention_rejects();
      Print(r);
      rows.push_back(r);
    }
    // reject_path: drained zero-rate bucket — the zero-RMW fast reject.
    {
      admit::AdmissionPlane plane;
      const int slot = plane.Register(
          "entry", "api", std::make_shared<admit::TokenBucketAdmitter>(0.0, 1.0));
      {
        admit::AdmitRequest drain;
        drain.now = 0;
        plane.TryAdmit(slot, drain);  // spend the single token
      }
      Row r = RunCase(
          "reject_path", threads, ops_for(threads), 0,
          [&plane, slot](SimTime now) {
            thread_local admit::CachedGate gate;
            thread_local const admit::AdmissionPlane* bound = nullptr;
            if (bound != &plane) {
              gate = admit::CachedGate(&plane);
              bound = &plane;
            }
            admit::AdmitRequest req;
            req.now = now;
            return gate.TryAdmit(slot, req);
          },
          NoStorm, false);
      Print(r);
      rows.push_back(r);
    }
    // mixed: ~0.5 token refilled per µs of per-thread virtual time, so the
    // admit fraction falls with the thread count and both paths interleave.
    {
      admit::AdmissionPlane plane;
      const int slot = plane.Register(
          "entry", "api",
          std::make_shared<admit::TokenBucketAdmitter>(5e5, 64.0));
      Row r = RunCase(
          "mixed", threads, ops_for(threads), 1,
          [&plane, slot](SimTime now) {
            thread_local admit::CachedGate gate;
            thread_local const admit::AdmissionPlane* bound = nullptr;
            if (bound != &plane) {
              gate = admit::CachedGate(&plane);
              bound = &plane;
            }
            admit::AdmitRequest req;
            req.now = now;
            return gate.TryAdmit(slot, req);
          },
          NoStorm, false);
      Print(r);
      rows.push_back(r);
    }
    // reconfig_storm: admit_heavy while the control thread republishes the
    // slot's limits as fast as it can (alternating values defeat the
    // coalescing, so every iteration builds + publishes a new snapshot).
    {
      admit::AdmissionPlane plane;
      const int slot = plane.Register(
          "entry", "api", std::make_shared<admit::TokenBucketAdmitter>(1e9, 1e6));
      bool flip = false;
      auto storm = [&plane, slot, &flip]() -> std::uint64_t {
        flip = !flip;
        plane.Configure(slot, flip ? 1e9 : 9.9e8, 1e6);
        return 1;
      };
      Row r = RunCase(
          "reconfig_storm", threads, ops_for(threads), 1,
          [&plane, slot](SimTime now) {
            thread_local admit::CachedGate gate;
            thread_local const admit::AdmissionPlane* bound = nullptr;
            if (bound != &plane) {
              gate = admit::CachedGate(&plane);
              bound = &plane;
            }
            admit::AdmitRequest req;
            req.now = now;
            return gate.TryAdmit(slot, req);
          },
          storm, true);
      Print(r);
      rows.push_back(r);
    }
  }

  WriteJson(rows, out);
  std::printf("wrote %s\n", out);
  return 0;
}

// DES hot-path throughput microbenchmark (engine rewrite, DESIGN.md §10).
//
// Measures events/sec and heap allocations per event for four workloads that
// stress different parts of the engine:
//   open_loop       Poisson arrivals through a 3-hop chain (steady state)
//   deep_call_tree  closed-loop users over a parallel fan-out call tree
//   timeout_heavy   2 s hop timeouts on a few-ms chain: every hop arms a
//                   timer that is cancelled long before it would fire
//   timer_churn     pure DES: 64 connections re-arming a 1 s idle timeout
//                   every 1 ms of activity
//
// Allocations are counted by a global operator new hook, so run this binary
// alone (single process, Release build) for meaningful numbers. Events are
// counted as processed + cancelled: the seed engine had no cancellation and
// let dead timers fire as no-ops, so this is the comparable event count.
//
// The seed rows embedded below were measured from the pre-rewrite engine
// (shared_ptr request state + std::function events + std::priority_queue,
// commit 62e3978) with identical workload code on the reference machine.
//
// Output: one human-readable row per workload plus a JSON file (default
// ./BENCH_event_throughput.json, override with argv[1]) containing both the
// embedded seed rows and the rows measured by this run. CI gates on the
// JSON: allocs_per_event is machine-independent; events_per_sec is compared
// against a committed same-class-runner baseline with generous tolerance.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "des/sharded_simulation.hpp"
#include "obs/live.hpp"
#include "sim/app.hpp"
#include "sim/call_graph.hpp"
#include "sim/sharded_app.hpp"
#include "workload/generators.hpp"

using namespace topfull;

// --- counting allocator hook -------------------------------------------------

// Replacing global operator new with a malloc-backed hook is conforming;
// GCC cannot see the new/free pairing across the replacement and warns.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

static std::atomic<std::uint64_t> g_allocs{0};

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void* operator new[](std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

struct Measurement {
  double wall_s = 0.0;
  std::uint64_t events = 0;
  std::uint64_t allocs = 0;
  sim::Application::ArenaStats arena;  // zero for the pure-DES workload
  /// Live-plane rows only: wall time spent inside Publish and the number of
  /// snapshots published. publish_s / wall_s is the publisher overhead,
  /// measured directly rather than as a delta of two noisy eps readings.
  double publish_s = 0.0;
  std::uint64_t publishes = 0;
};

std::uint64_t EngineEvents(const des::Simulation& sim) {
  return sim.EventsProcessed() + sim.EventsCancelled();
}

/// Runs `app` to `warmup_s`, then measures wall time, engine events and heap
/// allocations while advancing to `warmup_s + measure_s`.
Measurement MeasureApp(sim::Application& app, double warmup_s, double measure_s) {
  app.RunUntil(Seconds(warmup_s));
  const std::uint64_t events0 = EngineEvents(app.sim());
  const std::uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  app.RunUntil(Seconds(warmup_s + measure_s));
  const auto t1 = std::chrono::steady_clock::now();
  Measurement m;
  m.wall_s = std::chrono::duration<double>(t1 - t0).count();
  m.events = EngineEvents(app.sim()) - events0;
  m.allocs = g_allocs.load(std::memory_order_relaxed) - allocs0;
  m.arena = app.Arena();
  return m;
}

std::unique_ptr<sim::Application> MakeChainApp(std::uint64_t seed,
                                               SimTime hop_timeout, int retries) {
  auto app = std::make_unique<sim::Application>("chain3", seed);
  const double mean_ms[] = {4.0, 5.0, 6.0};
  for (int i = 0; i < 3; ++i) {
    sim::ServiceConfig config;
    config.name = "svc" + std::to_string(i);
    config.mean_service_ms = mean_ms[i];
    config.threads = 16;
    config.initial_pods = 8;
    app->AddService(config);
  }
  sim::ApiSpec api("chain", 1);
  api.AddPath(sim::ExecutionPath{sim::Chain({0, 1, 2}), 1.0, {}});
  app->AddApi(std::move(api));
  app->Finalize();
  if (hop_timeout > 0) app->ConfigureRpc(hop_timeout, retries, Millis(10));
  return app;
}

Measurement RunOpenLoop() {
  auto app = MakeChainApp(101, /*hop_timeout=*/0, 0);
  workload::TrafficDriver traffic(app.get());
  traffic.AddOpenLoop(0, workload::Schedule::Constant(15000.0));
  return MeasureApp(*app, 3.0, 15.0);
}

/// open_loop with the live telemetry plane attached: the observability
/// server runs on an ephemeral port and a full metrics snapshot is captured
/// and published every `publish_every_s` of *simulation* time, so the number
/// of publishes (and the allocations they cost) is machine-independent.
/// The eps delta against the plain open_loop row is the publisher overhead.
Measurement RunOpenLoopLive(double publish_every_s) {
  auto app = MakeChainApp(101, /*hop_timeout=*/0, 0);
  workload::TrafficDriver traffic(app.get());
  traffic.AddOpenLoop(0, workload::Schedule::Constant(15000.0));

  obs::LivePlane live;  // ephemeral port
  live.StartServer();
  obs::LiveSources sources;
  sources.shards.push_back({app.get(), nullptr, nullptr});
  sources.label = "open_loop_live";
  sources.duration_s = 18.0;

  app->RunUntil(Seconds(3.0));
  live.Publish(sources);
  const SimTime step = Seconds(publish_every_s);
  const SimTime end = Seconds(18.0);
  const std::uint64_t events0 = EngineEvents(app->sim());
  const std::uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  SimTime next = Seconds(3.0);
  double publish_s = 0.0;
  std::uint64_t publishes = 0;
  while (next < end) {
    next += step;
    app->RunUntil(next < end ? next : end);
    const auto p0 = std::chrono::steady_clock::now();
    live.Publish(sources);
    publish_s +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - p0)
            .count();
    ++publishes;
  }
  const auto t1 = std::chrono::steady_clock::now();
  Measurement m;
  m.wall_s = std::chrono::duration<double>(t1 - t0).count();
  m.events = EngineEvents(app->sim()) - events0;
  m.allocs = g_allocs.load(std::memory_order_relaxed) - allocs0;
  m.arena = app->Arena();
  m.publish_s = publish_s;
  m.publishes = publishes;
  return m;
}

/// `copies` independent deep-tree deployments in one Application. Copy 0 is
/// the historical deep_call_tree workload byte for byte; further copies are
/// disjoint replicas, so the shard partitioner sees `copies` clusters.
std::unique_ptr<sim::Application> MakeDeepTreeApp(int copies) {
  auto app = std::make_unique<sim::Application>("deep-tree", 202);
  for (int c = 0; c < copies; ++c) {
    const std::string prefix = c == 0 ? "" : "c" + std::to_string(c) + "-";
    const auto base = static_cast<sim::ServiceId>(app->NumServices());
    sim::ServiceConfig root;
    root.name = prefix + "root";
    root.mean_service_ms = 1.0;
    root.threads = 16;
    root.initial_pods = 8;
    app->AddService(root);
    for (int b = 0; b < 3; ++b) {
      for (int d = 0; d < 2; ++d) {
        sim::ServiceConfig config;
        config.name = prefix + "b" + std::to_string(b) + "d" + std::to_string(d);
        config.mean_service_ms = 2.0;
        config.threads = 16;
        config.initial_pods = 4;
        app->AddService(config);
      }
    }
    // root fans out to three 2-deep chains in parallel: 7 hops per request.
    sim::CallNode tree;
    tree.service = base;
    tree.parallel = true;
    for (int b = 0; b < 3; ++b) {
      tree.children.push_back(
          sim::Chain({static_cast<sim::ServiceId>(base + 1 + 2 * b),
                      static_cast<sim::ServiceId>(base + 2 + 2 * b)}));
    }
    sim::ApiSpec api(c == 0 ? "tree" : prefix + "tree", 1);
    api.AddPath(sim::ExecutionPath{tree, 1.0, {}});
    app->AddApi(std::move(api));
  }
  app->Finalize();
  return app;
}

Measurement RunDeepCallTree() {
  auto app = MakeDeepTreeApp(1);
  workload::TrafficDriver traffic(app.get());
  workload::ClosedLoopConfig users;
  users.mix.weights = {1.0};
  users.think = Millis(200);
  traffic.AddClosedLoop(users, workload::Schedule::Constant(3000));
  return MeasureApp(*app, 3.0, 12.0);
}

/// The sharded engine on a scaled deep-tree workload: 8 disjoint tree
/// deployments (8 clusters), 16k closed-loop users, one simulation
/// partitioned across `shards` engine shards with 1 ms lookahead. Measures
/// aggregate events/sec over all shards plus the barrier-blocked fraction
/// of shard wall time (near 1 on an oversubscribed machine, small on real
/// cores).
struct ShardedMeasurement {
  Measurement m;
  double blocked_frac = 0.0;
  std::uint64_t messages = 0;
};

ShardedMeasurement RunShardedDeepTree(int shards) {
  constexpr int kCopies = 8;
  sim::ShardedApp::Options options;
  options.shards = shards;
  options.net_latency = Millis(1);
  sim::ShardedApp app([] { return MakeDeepTreeApp(kCopies); }, options);
  std::vector<std::unique_ptr<workload::TrafficDriver>> traffic;
  for (int i = 0; i < shards; ++i) {
    auto driver = std::make_unique<workload::TrafficDriver>(&app.app(i));
    if (shards > 1) {
      driver->SetShardScope({&app.plan().api_origin, i});
    }
    workload::ClosedLoopConfig users;
    users.mix.weights.assign(kCopies, 1.0);
    users.think = Millis(200);
    driver->AddClosedLoop(users, workload::Schedule::Constant(2000.0 * kCopies));
    traffic.push_back(std::move(driver));
  }
  auto engine_events = [&app, shards] {
    std::uint64_t total = 0;
    for (int i = 0; i < shards; ++i) total += EngineEvents(app.app(i).sim());
    return total;
  };
  app.RunUntil(Seconds(3));
  const std::vector<des::ShardedSimulation::ShardStats> stats0 =
      app.engine().Stats();
  const std::uint64_t events0 = engine_events();
  const std::uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  app.RunUntil(Seconds(9));
  const auto t1 = std::chrono::steady_clock::now();
  ShardedMeasurement r;
  r.m.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.m.events = engine_events() - events0;
  r.m.allocs = g_allocs.load(std::memory_order_relaxed) - allocs0;
  double busy = 0, blocked = 0;
  const auto& stats = app.engine().Stats();
  for (int i = 0; i < shards; ++i) {
    const auto& s0 = stats0[static_cast<std::size_t>(i)];
    const auto& s1 = stats[static_cast<std::size_t>(i)];
    busy += s1.busy_s - s0.busy_s;
    blocked += s1.blocked_s - s0.blocked_s;
    r.messages += s1.messages_delivered;
  }
  r.blocked_frac = busy + blocked > 0 ? blocked / (busy + blocked) : 0.0;
  return r;
}

Measurement RunTimeoutHeavy() {
  // Hop timeouts of 2 s on a chain whose latencies are a few ms: every hop
  // arms a timeout that the seed engine kept as dead weight in the queue
  // for 2 s; the rewritten engine cancels it when the hop settles.
  auto app = MakeChainApp(303, Seconds(2), /*retries=*/1);
  workload::TrafficDriver traffic(app.get());
  traffic.AddOpenLoop(0, workload::Schedule::Constant(12000.0));
  return MeasureApp(*app, 4.0, 12.0);
}

Measurement RunTimerChurn() {
  // 64 connections, each re-arming a 1 s idle timeout every 1 ms of
  // activity. Seed engine: the superseded timeout stays queued (dead) and
  // fires as a no-op; rewritten engine: it is cancelled in O(log n).
  des::Simulation sim;
  constexpr int kConns = 64;
  constexpr SimTime kActivity = Millis(1);
  constexpr SimTime kIdleTimeout = Seconds(1);
  struct Conn {
    std::uint64_t epoch = 0;
  };
  std::vector<Conn> conns(kConns);
  std::uint64_t expired = 0;
  std::function<void(int)> activity = [&](int i) {
    const std::uint64_t epoch = ++conns[i].epoch;
    sim.ScheduleAfter(kIdleTimeout, [&conns, &expired, i, epoch]() {
      if (conns[static_cast<std::size_t>(i)].epoch == epoch) ++expired;
    });
    sim.ScheduleAfter(kActivity, [&activity, i]() { activity(i); });
  };
  for (int i = 0; i < kConns; ++i) {
    sim.ScheduleAt(i, [&activity, i]() { activity(i); });
  }
  sim.RunUntil(Seconds(3));
  const std::uint64_t events0 = EngineEvents(sim);
  const std::uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  sim.RunUntil(Seconds(18));
  const auto t1 = std::chrono::steady_clock::now();
  Measurement m;
  m.wall_s = std::chrono::duration<double>(t1 - t0).count();
  m.events = EngineEvents(sim) - events0;
  m.allocs = g_allocs.load(std::memory_order_relaxed) - allocs0;
  if (expired > 0) std::fprintf(stderr, "unexpected expirations: %llu\n",
                                static_cast<unsigned long long>(expired));
  return m;
}

/// Seed-engine numbers measured on the reference machine (Release, same
/// workload code, events counted as all-fire which equals processed +
/// cancelled for an engine without cancellation).
struct SeedRow {
  const char* name;
  double events_per_sec;
  double allocs_per_event;
};

constexpr SeedRow kSeedRows[] = {
    {"open_loop", 2.19e6, 10.8332},
    {"deep_call_tree", 1.645e6, 9.7045},
    {"timeout_heavy", 1.435e6, 7.4770},
    {"timer_churn", 6.89e6, 0.5000},
};

void AppendJsonRow(std::string& out, const char* workload, const char* engine,
                   std::uint64_t events, double wall_s, double events_per_sec,
                   double allocs_per_event, bool last) {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "  {\"workload\": \"%s\", \"engine\": \"%s\", "
                "\"events\": %llu, \"wall_s\": %.4f, "
                "\"events_per_sec\": %.1f, \"allocs_per_event\": %.4f}%s\n",
                workload, engine, static_cast<unsigned long long>(events),
                wall_s, events_per_sec, allocs_per_event, last ? "" : ",");
  out += buf;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path =
      argc > 1 ? argv[1] : "BENCH_event_throughput.json";
  struct Case {
    const char* name;
    Measurement (*run)();
  };
  const Case cases[] = {{"open_loop", RunOpenLoop},
                        {"deep_call_tree", RunDeepCallTree},
                        {"timeout_heavy", RunTimeoutHeavy},
                        {"timer_churn", RunTimerChurn}};
  std::string json = "[\n";
  for (const auto& seed : kSeedRows) {
    AppendJsonRow(json, seed.name, "seed", 0, 0.0, seed.events_per_sec,
                  seed.allocs_per_event, false);
  }
  double open_loop_eps = 0.0;
  for (std::size_t i = 0; i < std::size(cases); ++i) {
    const auto& c = cases[i];
    const Measurement m = c.run();
    const double eps = static_cast<double>(m.events) / m.wall_s;
    const double ape =
        static_cast<double>(m.allocs) / static_cast<double>(m.events);
    if (std::string(c.name) == "open_loop") open_loop_eps = eps;
    std::printf(
        "%s: events=%llu wall_s=%.3f events_per_sec=%.0f allocs=%llu "
        "allocs_per_event=%.4f\n",
        c.name, static_cast<unsigned long long>(m.events), m.wall_s, eps,
        static_cast<unsigned long long>(m.allocs), ape);
    if (m.arena.request_capacity > 0) {
      std::printf(
          "  arena: live_requests=%llu request_capacity=%llu "
          "live_attempts=%llu attempt_capacity=%llu\n",
          static_cast<unsigned long long>(m.arena.live_requests),
          static_cast<unsigned long long>(m.arena.request_capacity),
          static_cast<unsigned long long>(m.arena.live_attempts),
          static_cast<unsigned long long>(m.arena.attempt_capacity));
    }
    AppendJsonRow(json, c.name, "current", m.events, m.wall_s, eps, ape,
                  /*last=*/false);
  }

  // Live telemetry plane on the open_loop workload: snapshot publishes paced
  // by sim time (10 ms / 100 ms), server listening. The eps delta against
  // the plain open_loop row above is the publisher's overhead.
  const struct {
    const char* name;
    double publish_every_s;
  } live_cases[] = {{"open_loop_live_10ms", 0.010},
                    {"open_loop_live_100ms", 0.100}};
  for (const auto& c : live_cases) {
    const Measurement m = RunOpenLoopLive(c.publish_every_s);
    const double eps = static_cast<double>(m.events) / m.wall_s;
    const double ape =
        static_cast<double>(m.allocs) / static_cast<double>(m.events);
    // Direct overhead: wall time inside Publish, measured exactly. The eps
    // delta against open_loop measures the same thing but is buried in
    // run-to-run scheduling noise on shared machines. Publishes here are
    // paced by SIM time so the count is deterministic; since the sim runs
    // much faster than wall time, the in-bench publish fraction overstates
    // the real cost. wall_paced_overhead rescales to what the LivePlane
    // actually does — publish every c.publish_every_s of WALL time — which
    // is the ≤2% publisher budget the live plane is held to.
    const double publish_frac = m.wall_s > 0 ? 100.0 * m.publish_s / m.wall_s : 0.0;
    const double us_per_publish =
        m.publishes > 0 ? 1e6 * m.publish_s / static_cast<double>(m.publishes)
                        : 0.0;
    const double wall_paced_overhead =
        100.0 * (us_per_publish * 1e-6) / c.publish_every_s;
    std::printf(
        "%s: events=%llu wall_s=%.3f events_per_sec=%.0f allocs=%llu "
        "allocs_per_event=%.4f publishes=%llu us_per_publish=%.1f "
        "publish_frac_in_bench=%.2f%% wall_paced_overhead=%.2f%% "
        "eps_delta_vs_open_loop=%.2f%%\n",
        c.name, static_cast<unsigned long long>(m.events), m.wall_s, eps,
        static_cast<unsigned long long>(m.allocs), ape,
        static_cast<unsigned long long>(m.publishes), us_per_publish,
        publish_frac, wall_paced_overhead,
        open_loop_eps > 0 ? 100.0 * (1.0 - eps / open_loop_eps) : 0.0);
    AppendJsonRow(json, c.name, "current", m.events, m.wall_s, eps, ape,
                  /*last=*/false);
  }

  // Sharded engine: one scaled deep-tree simulation across 1/2/4/8 shards.
  // Aggregate events/sec; speedup is reported against the 1-shard row of
  // this same process (hardware-dependent — near-linear on free cores,
  // flat on an oversubscribed machine where blocked_frac goes to 1).
  const int shard_counts[] = {1, 2, 4, 8};
  double sharded_base_eps = 0.0;
  for (std::size_t i = 0; i < std::size(shard_counts); ++i) {
    const int shards = shard_counts[i];
    const ShardedMeasurement r = RunShardedDeepTree(shards);
    const double eps = static_cast<double>(r.m.events) / r.m.wall_s;
    const double ape =
        static_cast<double>(r.m.allocs) / static_cast<double>(r.m.events);
    if (shards == 1) sharded_base_eps = eps;
    char name[64];
    std::snprintf(name, sizeof name, "sharded_deep_tree_s%d", shards);
    std::printf(
        "%s: events=%llu wall_s=%.3f events_per_sec=%.0f allocs_per_event=%.4f "
        "blocked_frac=%.3f msgs=%llu speedup=%.2fx\n",
        name, static_cast<unsigned long long>(r.m.events), r.m.wall_s, eps, ape,
        r.blocked_frac, static_cast<unsigned long long>(r.messages),
        sharded_base_eps > 0 ? eps / sharded_base_eps : 0.0);
    char extra[512];
    std::snprintf(extra, sizeof extra,
                  "  {\"workload\": \"%s\", \"engine\": \"current\", "
                  "\"events\": %llu, \"wall_s\": %.4f, "
                  "\"events_per_sec\": %.1f, \"allocs_per_event\": %.4f, "
                  "\"shards\": %d, \"blocked_frac\": %.4f, "
                  "\"messages\": %llu}%s\n",
                  name, static_cast<unsigned long long>(r.m.events), r.m.wall_s,
                  eps, ape, shards, r.blocked_frac,
                  static_cast<unsigned long long>(r.messages),
                  i + 1 == std::size(shard_counts) ? "" : ",");
    json += extra;
  }
  json += "]\n";
  if (std::FILE* f = std::fopen(out_path, "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path);
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  return 0;
}

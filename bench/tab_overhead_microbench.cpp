// §6.4 "Online deployment overhead cost" — google-benchmark micro-benchmarks
// of the two per-tick costs: building clusters and one RL inference.
//
// Paper (Xeon Platinum 8370C): clustering the Train Ticket app costs
// 1.26e6 cycles, one RL inference 2.33e6 cycles; one core can control
// ~15,000 microservices / 1,000 clusters per second. We report wall time
// and a cycle estimate at the measured clock.
#include <benchmark/benchmark.h>

#include "apps/train_ticket.hpp"
#include "common/token_bucket.hpp"
#include "core/clustering.hpp"
#include "core/registry.hpp"
#include "exp/model_cache.hpp"
#include "rl/observation.hpp"
#include "trace/synthetic_trace.hpp"

using namespace topfull;

namespace {

// Clustering the Train Ticket registry with a rotating overloaded set.
void BM_ClusteringTrainTicket(benchmark::State& state) {
  apps::TrainTicketOptions options;
  auto app = apps::MakeTrainTicket(options);
  core::ApiRegistry registry(*app);
  const int num_overloaded = static_cast<int>(state.range(0));
  std::vector<std::vector<sim::ServiceId>> overloaded_sets;
  Rng rng(4242);
  for (int i = 0; i < 64; ++i) {
    std::vector<sim::ServiceId> set;
    for (int k = 0; k < num_overloaded; ++k) {
      set.push_back(static_cast<sim::ServiceId>(
          rng.UniformInt(0, app->NumServices() - 1)));
    }
    overloaded_sets.push_back(std::move(set));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto clusters =
        core::BuildClusters(registry, overloaded_sets[i++ % overloaded_sets.size()]);
    benchmark::DoNotOptimize(clusters.size());
  }
}
BENCHMARK(BM_ClusteringTrainTicket)->Arg(2)->Arg(5)->Arg(10);

// Clustering at Alibaba-trace scale (68 overloaded among 23,481 services).
void BM_ClusteringTraceScale(benchmark::State& state) {
  const trace::TraceConfig config;
  const trace::SyntheticTrace synthetic = trace::GenerateTrace(config, 20210701);
  for (auto _ : state) {
    const auto analysis = trace::AnalyzeClustering(synthetic, config.util_threshold);
    benchmark::DoNotOptimize(analysis.clusters);
  }
}
BENCHMARK(BM_ClusteringTraceScale)->Unit(benchmark::kMillisecond);

// One deterministic RL inference (the per-cluster per-second decision).
void BM_RlInference(benchmark::State& state) {
  auto policy = exp::GetPretrainedPolicy();
  const std::vector<double> obs = rl::MakeObservation(800.0, 1000.0, 1.2, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->MeanAction(obs));
  }
}
BENCHMARK(BM_RlInference);

// Token-bucket admission (the per-request datapath cost at the entry).
void BM_TokenBucketAdmit(benchmark::State& state) {
  TokenBucket bucket(1e6, 1e5);
  SimTime now = 0;
  for (auto _ : state) {
    now += 10;
    benchmark::DoNotOptimize(bucket.TryAdmit(now));
  }
}
BENCHMARK(BM_TokenBucketAdmit);

}  // namespace

BENCHMARK_MAIN();

// §6.4 "Online deployment overhead cost" — google-benchmark micro-benchmarks
// of the two per-tick costs: building clusters and one RL inference.
//
// Paper (Xeon Platinum 8370C): clustering the Train Ticket app costs
// 1.26e6 cycles, one RL inference 2.33e6 cycles; one core can control
// ~15,000 microservices / 1,000 clusters per second. We report wall time
// and a cycle estimate at the measured clock. Also measures the metrics
// engine's in-line recording costs (counter/histogram updates, registry
// lookup, collector with the registry on vs off).
#include <benchmark/benchmark.h>

#include "admit/plane.hpp"
#include "apps/train_ticket.hpp"
#include "common/token_bucket.hpp"
#include "core/clustering.hpp"
#include "core/registry.hpp"
#include "exp/model_cache.hpp"
#include "obs/metrics_registry.hpp"
#include "rl/observation.hpp"
#include "sim/metrics.hpp"
#include "trace/synthetic_trace.hpp"

using namespace topfull;

namespace {

// Clustering the Train Ticket registry with a rotating overloaded set.
void BM_ClusteringTrainTicket(benchmark::State& state) {
  apps::TrainTicketOptions options;
  auto app = apps::MakeTrainTicket(options);
  core::ApiRegistry registry(*app);
  const int num_overloaded = static_cast<int>(state.range(0));
  std::vector<std::vector<sim::ServiceId>> overloaded_sets;
  Rng rng(4242);
  for (int i = 0; i < 64; ++i) {
    std::vector<sim::ServiceId> set;
    for (int k = 0; k < num_overloaded; ++k) {
      set.push_back(static_cast<sim::ServiceId>(
          rng.UniformInt(0, app->NumServices() - 1)));
    }
    overloaded_sets.push_back(std::move(set));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto clusters =
        core::BuildClusters(registry, overloaded_sets[i++ % overloaded_sets.size()]);
    benchmark::DoNotOptimize(clusters.size());
  }
}
BENCHMARK(BM_ClusteringTrainTicket)->Arg(2)->Arg(5)->Arg(10);

// Clustering at Alibaba-trace scale (68 overloaded among 23,481 services).
void BM_ClusteringTraceScale(benchmark::State& state) {
  const trace::TraceConfig config;
  const trace::SyntheticTrace synthetic = trace::GenerateTrace(config, 20210701);
  for (auto _ : state) {
    const auto analysis = trace::AnalyzeClustering(synthetic, config.util_threshold);
    benchmark::DoNotOptimize(analysis.clusters);
  }
}
BENCHMARK(BM_ClusteringTraceScale)->Unit(benchmark::kMillisecond);

// One deterministic RL inference (the per-cluster per-second decision).
void BM_RlInference(benchmark::State& state) {
  auto policy = exp::GetPretrainedPolicy();
  const std::vector<double> obs = rl::MakeObservation(800.0, 1000.0, 1.2, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->MeanAction(obs));
  }
}
BENCHMARK(BM_RlInference);

// Token-bucket admission (the per-request datapath cost at the entry).
void BM_TokenBucketAdmit(benchmark::State& state) {
  TokenBucket bucket(1e6, 1e5);
  SimTime now = 0;
  for (auto _ : state) {
    now += 10;
    benchmark::DoNotOptimize(bucket.TryAdmit(now));
  }
}
BENCHMARK(BM_TokenBucketAdmit);

// --- Concurrent admission plane (ISSUE 10): contended-admit rows -------------
// The same datapath as BM_TokenBucketAdmit, on the lock-free bucket the
// admission plane runs on. Single-threaded must stay within 2x of the plain
// bucket above; the ->Threads rows show the shared-cache-line CAS cost under
// real contention.

void BM_AtomicTokenBucketAdmit(benchmark::State& state) {
  admit::AtomicTokenBucket bucket(1e6, 1e5);
  SimTime now = 0;
  for (auto _ : state) {
    now += 10;
    benchmark::DoNotOptimize(bucket.TryAdmit(now));
  }
}
BENCHMARK(BM_AtomicTokenBucketAdmit);

// All threads hammer ONE bucket (one 16-byte cell, one cache line) with
// per-thread virtual clocks — the worst case the entry gateway can see.
void BM_AtomicTokenBucketAdmitContended(benchmark::State& state) {
  static admit::AtomicTokenBucket bucket(1e6, 1e5);
  SimTime now = 0;
  for (auto _ : state) {
    now += 10;
    benchmark::DoNotOptimize(bucket.TryAdmit(now));
  }
  state.SetLabel("shared bucket");
}
BENCHMARK(BM_AtomicTokenBucketAdmitContended)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// Full gateway path: CachedGate -> plane snapshot -> TokenBucketAdmitter.
// Steady state (no reconfigs) is one relaxed version load on top of the
// bucket CAS — this row minus BM_AtomicTokenBucketAdmit is the plane tax.
void BM_CachedGateAdmit(benchmark::State& state) {
  admit::AdmissionPlane plane;
  const int slot = plane.Register(
      "entry", "bench", std::make_shared<admit::TokenBucketAdmitter>(1e6, 1e5));
  admit::CachedGate gate(&plane);
  admit::AdmitRequest req;
  for (auto _ : state) {
    req.now += 10;
    benchmark::DoNotOptimize(gate.TryAdmit(slot, req));
  }
}
BENCHMARK(BM_CachedGateAdmit);

void BM_CachedGateAdmitContended(benchmark::State& state) {
  static admit::AdmissionPlane plane;
  static const int slot = plane.Register(
      "entry", "bench", std::make_shared<admit::TokenBucketAdmitter>(1e6, 1e5));
  thread_local admit::CachedGate gate(&plane);
  admit::AdmitRequest req;
  for (auto _ : state) {
    req.now += 10;
    benchmark::DoNotOptimize(gate.TryAdmit(slot, req));
  }
  state.SetLabel("shared plane slot");
}
BENCHMARK(BM_CachedGateAdmitContended)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// --- Metrics-registry overhead (ISSUE 4): the in-line recording costs --------

// One counter increment through a cached handle (the steady-state hot path:
// the name is resolved once, outside the loop).
void BM_MetricsCounterInc(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Counter* counter =
      registry.GetCounter("topfull_bench_total", "Bench.", {{"api", "a"}});
  for (auto _ : state) {
    counter->Inc();
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_MetricsCounterInc);

// One histogram sample (frexp bucketing + exact moment updates).
void BM_MetricsHistogramRecord(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Histogram* histogram =
      registry.GetHistogram("topfull_bench_latency_ms", "Bench.");
  double v = 0.1;
  for (auto _ : state) {
    histogram->Record(v);
    v = v < 1e4 ? v * 1.1 : 0.1;  // walk the buckets
    benchmark::DoNotOptimize(histogram);
  }
}
BENCHMARK(BM_MetricsHistogramRecord);

// Name -> cell resolution (what handle caching avoids on the hot path).
void BM_MetricsRegistryLookup(benchmark::State& state) {
  obs::MetricsRegistry registry;
  registry.GetCounter("topfull_bench_total", "Bench.", {{"api", "a"}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        registry.GetCounter("topfull_bench_total", "Bench.", {{"api", "a"}}));
  }
}
BENCHMARK(BM_MetricsRegistryLookup);

// The collector's per-completion cost with the live registry unbound vs
// bound (registry on adds one counter + one histogram update per event).
void BM_CollectorOnCompleted(benchmark::State& state) {
  const bool bind = state.range(0) != 0;
  sim::MetricsCollector collector(1, Millis(100));
  obs::MetricsRegistry registry;
  if (bind) {
    sim::ApiMetricHandles handles;
    handles.offered = registry.GetCounter("topfull_requests_offered_total", "O.");
    handles.admitted = registry.GetCounter("topfull_requests_admitted_total", "A.");
    handles.rejected_entry =
        registry.GetCounter("topfull_requests_rejected_entry_total", "R.");
    handles.rejected_service =
        registry.GetCounter("topfull_requests_rejected_service_total", "R.");
    handles.completed = registry.GetCounter("topfull_requests_completed_total", "C.");
    handles.good = registry.GetCounter("topfull_requests_good_total", "G.");
    handles.latency_ms = registry.GetHistogram("topfull_request_latency_ms", "L.");
    collector.BindRegistry({handles});
  }
  SimTime now = 0;
  std::uint64_t i = 0;
  for (auto _ : state) {
    collector.OnCompleted(0, Millis(5));
    // Close the window periodically so the latency scratch buffer stays
    // small; identical in both variants, so the comparison is fair.
    if ((++i & 0xfff) == 0) {
      now += Seconds(1);
      benchmark::DoNotOptimize(&collector.Collect(now, {}));
    }
  }
  state.SetLabel(bind ? "registry on" : "registry off");
}
BENCHMARK(BM_CollectorOnCompleted)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();

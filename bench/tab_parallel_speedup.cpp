// Parallel-executor speedup: wall-clock scaling of (a) a fig09-style
// demand-sweep and (b) PPO rollout collection, vs. worker-pool size.
//
// Both workloads are embarrassingly parallel whole simulations, so on a
// machine with >= 4 cores the 4-thread column should show >= 3x over the
// sequential baseline. The outputs of every configuration are asserted
// bit-identical to the sequential run first — speedup never trades away
// the determinism contract.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "apps/online_boutique.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "exp/harness.hpp"
#include "exp/run_executor.hpp"
#include "rl/graph_sim_env.hpp"
#include "rl/ppo.hpp"

using namespace topfull;

namespace {

constexpr double kSweepEndS = 30.0;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Fig09-style variant x demand matrix on non-RL variants (hermetic: no
/// pre-trained policy needed).
std::vector<exp::RunSpec> SweepSpecs() {
  std::vector<exp::RunSpec> specs;
  for (const exp::Variant variant :
       {exp::Variant::kNoControl, exp::Variant::kBreakwater, exp::Variant::kDagor}) {
    for (const int users : {1200, 2600, 4200}) {
      exp::RunSpec spec;
      spec.label = exp::VariantName(variant) + "@" + std::to_string(users);
      spec.duration_s = kSweepEndS;
      spec.variant = variant;
      spec.make_app = [variant] {
        apps::BoutiqueOptions options;
        options.seed = 23;
        options.distinct_priorities = variant == exp::Variant::kDagor;
        return apps::MakeOnlineBoutique(options);
      };
      spec.traffic = [users](workload::TrafficDriver& traffic, sim::Application& app) {
        traffic.AddClosedLoop(exp::UniformUsers(app),
                              workload::Schedule::Constant(users));
      };
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

std::vector<double> SweepGoodputs(const std::vector<exp::RunResult>& results) {
  std::vector<double> goodputs;
  goodputs.reserve(results.size());
  for (const auto& r : results) {
    goodputs.push_back(exp::TotalGoodput(*r.app, 10.0, kSweepEndS));
  }
  return goodputs;
}

double TimeSweep(ThreadPool& pool, const std::vector<exp::RunSpec>& specs,
                 std::vector<double>* goodputs) {
  const double start = NowSeconds();
  const std::vector<exp::RunResult> results = exp::RunExecutor(&pool).Execute(specs);
  const double elapsed = NowSeconds() - start;
  *goodputs = SweepGoodputs(results);
  return elapsed;
}

/// Rollout collection over env clones; the PPO update itself is sequential
/// by design, so this times the part the pool accelerates.
double TimeRollouts(ThreadPool& pool, double* reward) {
  rl::PpoConfig config;
  config.episodes_per_iter = 64;
  Rng rng(7);
  rl::GaussianPolicy policy(rl::PolicyConfig{}, rng);
  rl::PpoTrainer trainer(&policy, config, /*seed=*/7);
  trainer.set_pool(&pool);
  auto make_env = []() -> std::unique_ptr<rl::Env> {
    return std::make_unique<rl::GraphSimEnv>(rl::GraphSimConfig{}, /*base_seed=*/11);
  };
  const double start = NowSeconds();
  double sum = 0.0;
  constexpr int kCollections = 20;
  for (int i = 0; i < kCollections; ++i) sum += trainer.CollectRolloutOnly(make_env);
  const double elapsed = NowSeconds() - start;
  *reward = sum / kCollections;
  return elapsed;
}

}  // namespace

int main() {
  PrintBanner("Parallel-executor speedup",
              "Wall-clock speedup of the demand sweep and of PPO rollout "
              "collection vs. worker-pool size.");
  const int hw = ThreadPool::EnvThreads();
  std::printf("hardware threads (TOPFULL_THREADS/hardware_concurrency): %d\n\n", hw);

  std::vector<int> sizes = {1, 2, 4};
  if (hw > 4) sizes.push_back(hw);

  const std::vector<exp::RunSpec> specs = SweepSpecs();
  std::vector<double> reference_goodputs;
  std::vector<double> sweep_seconds;
  double reference_reward = 0.0;
  std::vector<double> rollout_seconds;

  for (std::size_t i = 0; i < sizes.size(); ++i) {
    ThreadPool pool(sizes[i]);
    std::vector<double> goodputs;
    sweep_seconds.push_back(TimeSweep(pool, specs, &goodputs));
    double reward = 0.0;
    rollout_seconds.push_back(TimeRollouts(pool, &reward));
    if (i == 0) {
      reference_goodputs = goodputs;
      reference_reward = reward;
    } else if (goodputs != reference_goodputs || reward != reference_reward) {
      // Determinism contract: any pool size must reproduce the sequential
      // outputs bit-for-bit.
      std::fprintf(stderr, "DETERMINISM VIOLATION at %d threads\n", sizes[i]);
      return 1;
    }
  }

  Table table("wall-clock seconds (speedup vs 1 thread)");
  table.SetHeader({"threads", "demand sweep (9 runs)", "PPO rollouts (20x64 eps)"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    table.AddRow({std::to_string(sizes[i]),
                  Fmt(sweep_seconds[i], 2) + " s (" +
                      Fmt(sweep_seconds[0] / sweep_seconds[i], 2) + "x)",
                  Fmt(rollout_seconds[i], 2) + " s (" +
                      Fmt(rollout_seconds[0] / rollout_seconds[i], 2) + "x)"});
  }
  table.Print();
  std::printf(
      "\nAll configurations produced bit-identical sweep tables and rollout\n"
      "rewards. Expect >= 3x at 4 threads on a 4+-core machine; on fewer\n"
      "cores the speedup is bounded by the hardware.\n");
  return 0;
}

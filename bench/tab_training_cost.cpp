// §6.4 "Training cost benefit from transfer learning".
//
// Paper: 48,000 pre-training episodes take 6 h on a GTX 1080; the 800
// fine-tuning episodes take 12 h of real-world sampling on a 3-node cluster
// at $8.1/h => $97.2, versus 30 days / $5,832 to train from scratch in the
// real world. We measure this implementation's simulator episode throughput
// and apply the paper's real-world cost model (real-world sampling time is
// bounded by wall-clock seconds per control step, not compute).
#include <chrono>
#include <cstdio>

#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "exp/model_cache.hpp"
#include "rl/graph_sim_env.hpp"

using namespace topfull;

int main() {
  PrintBanner("Training-cost table (§6.4)",
              "Measured simulator training throughput + the paper's "
              "real-world cost model.");
  // Rollout + validation episodes run concurrently on the shared worker
  // pool (TOPFULL_THREADS); the measured throughput scales with cores.
  std::printf("worker pool: %d thread(s)\n\n", ThreadPool::Global().size());

  // Measure: train a fresh policy for a modest number of episodes.
  constexpr int kMeasureEpisodes = 400;
  const auto start = std::chrono::steady_clock::now();
  rl::TrainResult result;
  auto policy = exp::TrainBasePolicy(kMeasureEpisodes, /*seed=*/555, &result);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  const double eps_per_s = result.episodes_trained / seconds;

  // Paper's real-world cost model.
  constexpr double kPaperPretrainEpisodes = 48000;
  constexpr double kRealSecondsPerEpisode = 12.0 * 3600 / 800;  // 12 h / 800 eps
  constexpr double kDollarsPerHour = 8.1;  // 3x Azure D48ds_v5

  const double pretrain_hours = kPaperPretrainEpisodes / eps_per_s / 3600.0;
  const double finetune_hours = 800 * kRealSecondsPerEpisode / 3600.0;
  const double scratch_hours = kPaperPretrainEpisodes * kRealSecondsPerEpisode / 3600.0;

  Table table("training cost: Sim2real transfer vs real-world-only");
  table.SetHeader({"quantity", "measured/derived", "paper"});
  table.AddRow({"simulator throughput", Fmt(eps_per_s, 0) + " episodes/s", "-"});
  table.AddRow({"48,000-episode pre-train", Fmt(pretrain_hours * 60, 1) + " min (CPU)",
                "6 h (GTX 1080)"});
  table.AddRow({"800-episode real-world fine-tune", Fmt(finetune_hours, 0) + " h",
                "12 h"});
  table.AddRow({"fine-tune cost", "$" + Fmt(finetune_hours * kDollarsPerHour, 1),
                "$97.2"});
  table.AddRow({"48,000 real-world episodes (no transfer)",
                Fmt(scratch_hours / 24.0, 0) + " days", "30 days"});
  table.AddRow({"no-transfer cost", "$" + Fmt(scratch_hours * kDollarsPerHour, 0),
                "$5,832"});
  table.Print();

  std::printf("\nFinal mean episode reward over the measurement run: %.3f\n",
              result.history.empty() ? 0.0
                                     : result.history.back().mean_episode_reward);
  return 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/abl_controller_design.dir/abl_controller_design.cpp.o"
  "CMakeFiles/abl_controller_design.dir/abl_controller_design.cpp.o.d"
  "abl_controller_design"
  "abl_controller_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_controller_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

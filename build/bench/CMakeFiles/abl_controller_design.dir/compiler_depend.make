# Empty compiler generated dependencies file for abl_controller_design.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/abl_sync_rpc.dir/abl_sync_rpc.cpp.o"
  "CMakeFiles/abl_sync_rpc.dir/abl_sync_rpc.cpp.o.d"
  "abl_sync_rpc"
  "abl_sync_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sync_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

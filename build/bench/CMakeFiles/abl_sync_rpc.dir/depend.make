# Empty dependencies file for abl_sync_rpc.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig04_starvation_demo.dir/fig04_starvation_demo.cpp.o"
  "CMakeFiles/fig04_starvation_demo.dir/fig04_starvation_demo.cpp.o.d"
  "fig04_starvation_demo"
  "fig04_starvation_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_starvation_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig04_starvation_demo.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig08_goodput_overload.dir/fig08_goodput_overload.cpp.o"
  "CMakeFiles/fig08_goodput_overload.dir/fig08_goodput_overload.cpp.o.d"
  "fig08_goodput_overload"
  "fig08_goodput_overload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_goodput_overload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig08_goodput_overload.
# This may be replaced when dependencies are built.

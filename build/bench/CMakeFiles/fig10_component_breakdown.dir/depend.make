# Empty dependencies file for fig10_component_breakdown.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig11_priority_starvation.dir/fig11_priority_starvation.cpp.o"
  "CMakeFiles/fig11_priority_starvation.dir/fig11_priority_starvation.cpp.o.d"
  "fig11_priority_starvation"
  "fig11_priority_starvation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_priority_starvation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

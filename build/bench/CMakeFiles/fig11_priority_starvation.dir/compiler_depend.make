# Empty compiler generated dependencies file for fig11_priority_starvation.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig12_priority_timeline.cpp" "bench/CMakeFiles/fig12_priority_timeline.dir/fig12_priority_timeline.cpp.o" "gcc" "bench/CMakeFiles/fig12_priority_timeline.dir/fig12_priority_timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/topfull_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/topfull_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/topfull_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/topfull_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/topfull_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/topfull_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/autoscale/CMakeFiles/topfull_autoscale.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/topfull_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/topfull_des.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/topfull_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/topfull_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

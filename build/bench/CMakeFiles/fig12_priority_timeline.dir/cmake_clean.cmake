file(REMOVE_RECURSE
  "CMakeFiles/fig12_priority_timeline.dir/fig12_priority_timeline.cpp.o"
  "CMakeFiles/fig12_priority_timeline.dir/fig12_priority_timeline.cpp.o.d"
  "fig12_priority_timeline"
  "fig12_priority_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_priority_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

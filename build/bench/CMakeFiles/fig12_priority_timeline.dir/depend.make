# Empty dependencies file for fig12_priority_timeline.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig13_table2_convergence.
# This may be replaced when dependencies are built.

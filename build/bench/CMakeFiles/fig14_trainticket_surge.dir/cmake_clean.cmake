file(REMOVE_RECURSE
  "CMakeFiles/fig14_trainticket_surge.dir/fig14_trainticket_surge.cpp.o"
  "CMakeFiles/fig14_trainticket_surge.dir/fig14_trainticket_surge.cpp.o.d"
  "fig14_trainticket_surge"
  "fig14_trainticket_surge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_trainticket_surge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

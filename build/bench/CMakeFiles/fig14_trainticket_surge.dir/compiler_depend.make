# Empty compiler generated dependencies file for fig14_trainticket_surge.
# This may be replaced when dependencies are built.

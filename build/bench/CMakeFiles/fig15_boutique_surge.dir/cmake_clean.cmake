file(REMOVE_RECURSE
  "CMakeFiles/fig15_boutique_surge.dir/fig15_boutique_surge.cpp.o"
  "CMakeFiles/fig15_boutique_surge.dir/fig15_boutique_surge.cpp.o.d"
  "fig15_boutique_surge"
  "fig15_boutique_surge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_boutique_surge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig15_boutique_surge.
# This may be replaced when dependencies are built.

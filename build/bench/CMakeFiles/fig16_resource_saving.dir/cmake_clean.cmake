file(REMOVE_RECURSE
  "CMakeFiles/fig16_resource_saving.dir/fig16_resource_saving.cpp.o"
  "CMakeFiles/fig16_resource_saving.dir/fig16_resource_saving.cpp.o.d"
  "fig16_resource_saving"
  "fig16_resource_saving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_resource_saving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

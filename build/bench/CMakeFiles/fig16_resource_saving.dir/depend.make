# Empty dependencies file for fig16_resource_saving.
# This may be replaced when dependencies are built.

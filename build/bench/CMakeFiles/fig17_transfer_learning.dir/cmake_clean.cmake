file(REMOVE_RECURSE
  "CMakeFiles/fig17_transfer_learning.dir/fig17_transfer_learning.cpp.o"
  "CMakeFiles/fig17_transfer_learning.dir/fig17_transfer_learning.cpp.o.d"
  "fig17_transfer_learning"
  "fig17_transfer_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_transfer_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

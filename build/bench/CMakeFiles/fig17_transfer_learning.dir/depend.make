# Empty dependencies file for fig17_transfer_learning.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig18_failure_adaptation.dir/fig18_failure_adaptation.cpp.o"
  "CMakeFiles/fig18_failure_adaptation.dir/fig18_failure_adaptation.cpp.o.d"
  "fig18_failure_adaptation"
  "fig18_failure_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_failure_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

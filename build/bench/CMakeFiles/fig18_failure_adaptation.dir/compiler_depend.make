# Empty compiler generated dependencies file for fig18_failure_adaptation.
# This may be replaced when dependencies are built.

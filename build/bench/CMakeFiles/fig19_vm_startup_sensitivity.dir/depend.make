# Empty dependencies file for fig19_vm_startup_sensitivity.
# This may be replaced when dependencies are built.

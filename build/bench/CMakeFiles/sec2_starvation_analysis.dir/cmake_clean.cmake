file(REMOVE_RECURSE
  "CMakeFiles/sec2_starvation_analysis.dir/sec2_starvation_analysis.cpp.o"
  "CMakeFiles/sec2_starvation_analysis.dir/sec2_starvation_analysis.cpp.o.d"
  "sec2_starvation_analysis"
  "sec2_starvation_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec2_starvation_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for sec2_starvation_analysis.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sec42_recluster_dynamics.dir/sec42_recluster_dynamics.cpp.o"
  "CMakeFiles/sec42_recluster_dynamics.dir/sec42_recluster_dynamics.cpp.o.d"
  "sec42_recluster_dynamics"
  "sec42_recluster_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec42_recluster_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

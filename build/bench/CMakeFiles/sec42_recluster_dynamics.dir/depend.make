# Empty dependencies file for sec42_recluster_dynamics.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sec64_clustering_scalability.dir/sec64_clustering_scalability.cpp.o"
  "CMakeFiles/sec64_clustering_scalability.dir/sec64_clustering_scalability.cpp.o.d"
  "sec64_clustering_scalability"
  "sec64_clustering_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec64_clustering_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for sec64_clustering_scalability.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tab_overhead_microbench.dir/tab_overhead_microbench.cpp.o"
  "CMakeFiles/tab_overhead_microbench.dir/tab_overhead_microbench.cpp.o.d"
  "tab_overhead_microbench"
  "tab_overhead_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_overhead_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

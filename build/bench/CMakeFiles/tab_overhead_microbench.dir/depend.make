# Empty dependencies file for tab_overhead_microbench.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tab_training_cost.dir/tab_training_cost.cpp.o"
  "CMakeFiles/tab_training_cost.dir/tab_training_cost.cpp.o.d"
  "tab_training_cost"
  "tab_training_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_training_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

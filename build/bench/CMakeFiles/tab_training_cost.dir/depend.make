# Empty dependencies file for tab_training_cost.
# This may be replaced when dependencies are built.

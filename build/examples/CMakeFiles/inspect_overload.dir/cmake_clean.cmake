file(REMOVE_RECURSE
  "CMakeFiles/inspect_overload.dir/inspect_overload.cpp.o"
  "CMakeFiles/inspect_overload.dir/inspect_overload.cpp.o.d"
  "inspect_overload"
  "inspect_overload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_overload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

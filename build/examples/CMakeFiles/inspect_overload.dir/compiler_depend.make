# Empty compiler generated dependencies file for inspect_overload.
# This may be replaced when dependencies are built.

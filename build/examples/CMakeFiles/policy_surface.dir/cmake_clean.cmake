file(REMOVE_RECURSE
  "CMakeFiles/policy_surface.dir/policy_surface.cpp.o"
  "CMakeFiles/policy_surface.dir/policy_surface.cpp.o.d"
  "policy_surface"
  "policy_surface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

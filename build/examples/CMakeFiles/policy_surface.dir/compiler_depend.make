# Empty compiler generated dependencies file for policy_surface.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/train_controller.dir/train_controller.cpp.o"
  "CMakeFiles/train_controller.dir/train_controller.cpp.o.d"
  "train_controller"
  "train_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for train_controller.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("des")
subdirs("sim")
subdirs("workload")
subdirs("autoscale")
subdirs("rl")
subdirs("core")
subdirs("baselines")
subdirs("apps")
subdirs("trace")
subdirs("exp")

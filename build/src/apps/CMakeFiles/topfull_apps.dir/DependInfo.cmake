
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/alibaba_demo.cpp" "src/apps/CMakeFiles/topfull_apps.dir/alibaba_demo.cpp.o" "gcc" "src/apps/CMakeFiles/topfull_apps.dir/alibaba_demo.cpp.o.d"
  "/root/repo/src/apps/online_boutique.cpp" "src/apps/CMakeFiles/topfull_apps.dir/online_boutique.cpp.o" "gcc" "src/apps/CMakeFiles/topfull_apps.dir/online_boutique.cpp.o.d"
  "/root/repo/src/apps/train_ticket.cpp" "src/apps/CMakeFiles/topfull_apps.dir/train_ticket.cpp.o" "gcc" "src/apps/CMakeFiles/topfull_apps.dir/train_ticket.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/topfull_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/topfull_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/topfull_des.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/topfull_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/topfull_apps.dir/alibaba_demo.cpp.o"
  "CMakeFiles/topfull_apps.dir/alibaba_demo.cpp.o.d"
  "CMakeFiles/topfull_apps.dir/online_boutique.cpp.o"
  "CMakeFiles/topfull_apps.dir/online_boutique.cpp.o.d"
  "CMakeFiles/topfull_apps.dir/train_ticket.cpp.o"
  "CMakeFiles/topfull_apps.dir/train_ticket.cpp.o.d"
  "libtopfull_apps.a"
  "libtopfull_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topfull_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

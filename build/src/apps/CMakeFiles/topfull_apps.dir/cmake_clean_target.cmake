file(REMOVE_RECURSE
  "libtopfull_apps.a"
)

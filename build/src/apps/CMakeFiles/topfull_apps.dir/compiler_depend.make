# Empty compiler generated dependencies file for topfull_apps.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autoscale/cluster.cpp" "src/autoscale/CMakeFiles/topfull_autoscale.dir/cluster.cpp.o" "gcc" "src/autoscale/CMakeFiles/topfull_autoscale.dir/cluster.cpp.o.d"
  "/root/repo/src/autoscale/hpa.cpp" "src/autoscale/CMakeFiles/topfull_autoscale.dir/hpa.cpp.o" "gcc" "src/autoscale/CMakeFiles/topfull_autoscale.dir/hpa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/topfull_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/topfull_des.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/topfull_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

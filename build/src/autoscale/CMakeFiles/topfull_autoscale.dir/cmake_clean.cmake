file(REMOVE_RECURSE
  "CMakeFiles/topfull_autoscale.dir/cluster.cpp.o"
  "CMakeFiles/topfull_autoscale.dir/cluster.cpp.o.d"
  "CMakeFiles/topfull_autoscale.dir/hpa.cpp.o"
  "CMakeFiles/topfull_autoscale.dir/hpa.cpp.o.d"
  "libtopfull_autoscale.a"
  "libtopfull_autoscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topfull_autoscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libtopfull_autoscale.a"
)

# Empty compiler generated dependencies file for topfull_autoscale.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/breakwater.cpp" "src/baselines/CMakeFiles/topfull_baselines.dir/breakwater.cpp.o" "gcc" "src/baselines/CMakeFiles/topfull_baselines.dir/breakwater.cpp.o.d"
  "/root/repo/src/baselines/dagor.cpp" "src/baselines/CMakeFiles/topfull_baselines.dir/dagor.cpp.o" "gcc" "src/baselines/CMakeFiles/topfull_baselines.dir/dagor.cpp.o.d"
  "/root/repo/src/baselines/wisp.cpp" "src/baselines/CMakeFiles/topfull_baselines.dir/wisp.cpp.o" "gcc" "src/baselines/CMakeFiles/topfull_baselines.dir/wisp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/topfull_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/topfull_des.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/topfull_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/topfull_baselines.dir/breakwater.cpp.o"
  "CMakeFiles/topfull_baselines.dir/breakwater.cpp.o.d"
  "CMakeFiles/topfull_baselines.dir/dagor.cpp.o"
  "CMakeFiles/topfull_baselines.dir/dagor.cpp.o.d"
  "CMakeFiles/topfull_baselines.dir/wisp.cpp.o"
  "CMakeFiles/topfull_baselines.dir/wisp.cpp.o.d"
  "libtopfull_baselines.a"
  "libtopfull_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topfull_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

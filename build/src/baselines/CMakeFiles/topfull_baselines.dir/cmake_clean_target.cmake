file(REMOVE_RECURSE
  "libtopfull_baselines.a"
)

# Empty dependencies file for topfull_baselines.
# This may be replaced when dependencies are built.

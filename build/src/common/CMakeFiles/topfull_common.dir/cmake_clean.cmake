file(REMOVE_RECURSE
  "CMakeFiles/topfull_common.dir/rng.cpp.o"
  "CMakeFiles/topfull_common.dir/rng.cpp.o.d"
  "CMakeFiles/topfull_common.dir/stats.cpp.o"
  "CMakeFiles/topfull_common.dir/stats.cpp.o.d"
  "CMakeFiles/topfull_common.dir/table.cpp.o"
  "CMakeFiles/topfull_common.dir/table.cpp.o.d"
  "CMakeFiles/topfull_common.dir/token_bucket.cpp.o"
  "CMakeFiles/topfull_common.dir/token_bucket.cpp.o.d"
  "libtopfull_common.a"
  "libtopfull_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topfull_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

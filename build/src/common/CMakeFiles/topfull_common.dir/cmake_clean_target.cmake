file(REMOVE_RECURSE
  "libtopfull_common.a"
)

# Empty compiler generated dependencies file for topfull_common.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cluster_tracker.cpp" "src/core/CMakeFiles/topfull_core.dir/cluster_tracker.cpp.o" "gcc" "src/core/CMakeFiles/topfull_core.dir/cluster_tracker.cpp.o.d"
  "/root/repo/src/core/clustering.cpp" "src/core/CMakeFiles/topfull_core.dir/clustering.cpp.o" "gcc" "src/core/CMakeFiles/topfull_core.dir/clustering.cpp.o.d"
  "/root/repo/src/core/controller.cpp" "src/core/CMakeFiles/topfull_core.dir/controller.cpp.o" "gcc" "src/core/CMakeFiles/topfull_core.dir/controller.cpp.o.d"
  "/root/repo/src/core/rate_controller.cpp" "src/core/CMakeFiles/topfull_core.dir/rate_controller.cpp.o" "gcc" "src/core/CMakeFiles/topfull_core.dir/rate_controller.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "src/core/CMakeFiles/topfull_core.dir/registry.cpp.o" "gcc" "src/core/CMakeFiles/topfull_core.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/topfull_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/topfull_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/topfull_des.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/topfull_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

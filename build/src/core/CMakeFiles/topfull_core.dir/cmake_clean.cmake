file(REMOVE_RECURSE
  "CMakeFiles/topfull_core.dir/cluster_tracker.cpp.o"
  "CMakeFiles/topfull_core.dir/cluster_tracker.cpp.o.d"
  "CMakeFiles/topfull_core.dir/clustering.cpp.o"
  "CMakeFiles/topfull_core.dir/clustering.cpp.o.d"
  "CMakeFiles/topfull_core.dir/controller.cpp.o"
  "CMakeFiles/topfull_core.dir/controller.cpp.o.d"
  "CMakeFiles/topfull_core.dir/rate_controller.cpp.o"
  "CMakeFiles/topfull_core.dir/rate_controller.cpp.o.d"
  "CMakeFiles/topfull_core.dir/registry.cpp.o"
  "CMakeFiles/topfull_core.dir/registry.cpp.o.d"
  "libtopfull_core.a"
  "libtopfull_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topfull_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libtopfull_core.a"
)

# Empty dependencies file for topfull_core.
# This may be replaced when dependencies are built.

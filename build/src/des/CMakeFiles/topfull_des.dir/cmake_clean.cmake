file(REMOVE_RECURSE
  "CMakeFiles/topfull_des.dir/simulation.cpp.o"
  "CMakeFiles/topfull_des.dir/simulation.cpp.o.d"
  "libtopfull_des.a"
  "libtopfull_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topfull_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libtopfull_des.a"
)

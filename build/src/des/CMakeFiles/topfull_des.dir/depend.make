# Empty dependencies file for topfull_des.
# This may be replaced when dependencies are built.

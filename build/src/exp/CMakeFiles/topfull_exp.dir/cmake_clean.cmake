file(REMOVE_RECURSE
  "CMakeFiles/topfull_exp.dir/csv.cpp.o"
  "CMakeFiles/topfull_exp.dir/csv.cpp.o.d"
  "CMakeFiles/topfull_exp.dir/harness.cpp.o"
  "CMakeFiles/topfull_exp.dir/harness.cpp.o.d"
  "CMakeFiles/topfull_exp.dir/microservice_env.cpp.o"
  "CMakeFiles/topfull_exp.dir/microservice_env.cpp.o.d"
  "CMakeFiles/topfull_exp.dir/model_cache.cpp.o"
  "CMakeFiles/topfull_exp.dir/model_cache.cpp.o.d"
  "libtopfull_exp.a"
  "libtopfull_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topfull_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libtopfull_exp.a"
)

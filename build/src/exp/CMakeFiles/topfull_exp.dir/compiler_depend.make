# Empty compiler generated dependencies file for topfull_exp.
# This may be replaced when dependencies are built.

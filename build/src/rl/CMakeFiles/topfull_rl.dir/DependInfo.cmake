
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rl/graph_sim_env.cpp" "src/rl/CMakeFiles/topfull_rl.dir/graph_sim_env.cpp.o" "gcc" "src/rl/CMakeFiles/topfull_rl.dir/graph_sim_env.cpp.o.d"
  "/root/repo/src/rl/nn.cpp" "src/rl/CMakeFiles/topfull_rl.dir/nn.cpp.o" "gcc" "src/rl/CMakeFiles/topfull_rl.dir/nn.cpp.o.d"
  "/root/repo/src/rl/policy.cpp" "src/rl/CMakeFiles/topfull_rl.dir/policy.cpp.o" "gcc" "src/rl/CMakeFiles/topfull_rl.dir/policy.cpp.o.d"
  "/root/repo/src/rl/ppo.cpp" "src/rl/CMakeFiles/topfull_rl.dir/ppo.cpp.o" "gcc" "src/rl/CMakeFiles/topfull_rl.dir/ppo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/topfull_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

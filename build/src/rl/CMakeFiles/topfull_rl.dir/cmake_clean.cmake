file(REMOVE_RECURSE
  "CMakeFiles/topfull_rl.dir/graph_sim_env.cpp.o"
  "CMakeFiles/topfull_rl.dir/graph_sim_env.cpp.o.d"
  "CMakeFiles/topfull_rl.dir/nn.cpp.o"
  "CMakeFiles/topfull_rl.dir/nn.cpp.o.d"
  "CMakeFiles/topfull_rl.dir/policy.cpp.o"
  "CMakeFiles/topfull_rl.dir/policy.cpp.o.d"
  "CMakeFiles/topfull_rl.dir/ppo.cpp.o"
  "CMakeFiles/topfull_rl.dir/ppo.cpp.o.d"
  "libtopfull_rl.a"
  "libtopfull_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topfull_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

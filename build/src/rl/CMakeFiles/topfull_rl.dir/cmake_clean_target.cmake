file(REMOVE_RECURSE
  "libtopfull_rl.a"
)

# Empty dependencies file for topfull_rl.
# This may be replaced when dependencies are built.

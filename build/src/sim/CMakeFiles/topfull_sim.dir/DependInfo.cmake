
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/app.cpp" "src/sim/CMakeFiles/topfull_sim.dir/app.cpp.o" "gcc" "src/sim/CMakeFiles/topfull_sim.dir/app.cpp.o.d"
  "/root/repo/src/sim/call_graph.cpp" "src/sim/CMakeFiles/topfull_sim.dir/call_graph.cpp.o" "gcc" "src/sim/CMakeFiles/topfull_sim.dir/call_graph.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/sim/CMakeFiles/topfull_sim.dir/metrics.cpp.o" "gcc" "src/sim/CMakeFiles/topfull_sim.dir/metrics.cpp.o.d"
  "/root/repo/src/sim/pod.cpp" "src/sim/CMakeFiles/topfull_sim.dir/pod.cpp.o" "gcc" "src/sim/CMakeFiles/topfull_sim.dir/pod.cpp.o.d"
  "/root/repo/src/sim/service.cpp" "src/sim/CMakeFiles/topfull_sim.dir/service.cpp.o" "gcc" "src/sim/CMakeFiles/topfull_sim.dir/service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/topfull_common.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/topfull_des.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

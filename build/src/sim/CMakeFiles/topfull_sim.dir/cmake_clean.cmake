file(REMOVE_RECURSE
  "CMakeFiles/topfull_sim.dir/app.cpp.o"
  "CMakeFiles/topfull_sim.dir/app.cpp.o.d"
  "CMakeFiles/topfull_sim.dir/call_graph.cpp.o"
  "CMakeFiles/topfull_sim.dir/call_graph.cpp.o.d"
  "CMakeFiles/topfull_sim.dir/metrics.cpp.o"
  "CMakeFiles/topfull_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/topfull_sim.dir/pod.cpp.o"
  "CMakeFiles/topfull_sim.dir/pod.cpp.o.d"
  "CMakeFiles/topfull_sim.dir/service.cpp.o"
  "CMakeFiles/topfull_sim.dir/service.cpp.o.d"
  "libtopfull_sim.a"
  "libtopfull_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topfull_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

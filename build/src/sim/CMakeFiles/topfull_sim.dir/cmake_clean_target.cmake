file(REMOVE_RECURSE
  "libtopfull_sim.a"
)

# Empty compiler generated dependencies file for topfull_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/topfull_trace.dir/synthetic_trace.cpp.o"
  "CMakeFiles/topfull_trace.dir/synthetic_trace.cpp.o.d"
  "libtopfull_trace.a"
  "libtopfull_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topfull_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libtopfull_trace.a"
)

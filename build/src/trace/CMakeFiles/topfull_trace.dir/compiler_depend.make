# Empty compiler generated dependencies file for topfull_trace.
# This may be replaced when dependencies are built.

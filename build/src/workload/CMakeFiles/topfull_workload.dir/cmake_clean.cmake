file(REMOVE_RECURSE
  "CMakeFiles/topfull_workload.dir/generators.cpp.o"
  "CMakeFiles/topfull_workload.dir/generators.cpp.o.d"
  "CMakeFiles/topfull_workload.dir/schedule.cpp.o"
  "CMakeFiles/topfull_workload.dir/schedule.cpp.o.d"
  "libtopfull_workload.a"
  "libtopfull_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topfull_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

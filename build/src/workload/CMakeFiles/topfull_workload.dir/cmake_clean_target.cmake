file(REMOVE_RECURSE
  "libtopfull_workload.a"
)

# Empty dependencies file for topfull_workload.
# This may be replaced when dependencies are built.

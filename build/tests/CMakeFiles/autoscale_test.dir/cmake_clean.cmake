file(REMOVE_RECURSE
  "CMakeFiles/autoscale_test.dir/autoscale_test.cpp.o"
  "CMakeFiles/autoscale_test.dir/autoscale_test.cpp.o.d"
  "autoscale_test"
  "autoscale_test.pdb"
  "autoscale_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoscale_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/topfull.dir/topfull_cli.cpp.o"
  "CMakeFiles/topfull.dir/topfull_cli.cpp.o.d"
  "topfull"
  "topfull.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topfull.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for topfull.
# This may be replaced when dependencies are built.

// Observability walkthrough: run TopFull on Online Boutique under overload
// and dump what the controller sees — per-service utilisation, the clusters
// it formed, per-API rate limits, admitted rates and goodput.
//
// Useful both as an API example (metrics/cluster introspection) and for
// diagnosing a deployment's equilibrium.
#include <cstdio>

#include "apps/online_boutique.hpp"
#include "common/table.hpp"
#include "exp/harness.hpp"
#include "exp/model_cache.hpp"

using namespace topfull;

int main() {
  apps::BoutiqueOptions options;
  options.seed = 17;
  auto app = apps::MakeOnlineBoutique(options);
  auto policy = exp::GetPretrainedPolicy();
  exp::Controllers controllers;
  controllers.Attach(exp::Variant::kTopFull, *app, policy.get());

  workload::TrafficDriver traffic(app.get());
  workload::ClosedLoopConfig users = exp::UniformUsers(*app);
  users.mix.weights = {1.0, 1.2, 0.9, 0.9, 1.0};
  traffic.AddClosedLoop(users, workload::Schedule::Constant(4200));
  app->RunFor(Seconds(120));

  const auto& snap = app->metrics().Latest();

  Table services("services (last 1 s window)");
  services.SetHeader({"service", "util", "avg qdelay (ms)", "pods", "capacity rps"});
  for (int s = 0; s < app->NumServices(); ++s) {
    services.AddRow({app->service(s).name(), Fmt(snap.services[s].cpu_utilization, 2),
                     Fmt(1000 * snap.services[s].avg_queue_delay_s, 1),
                     std::to_string(snap.services[s].running_pods),
                     Fmt(app->service(s).CapacityRps(), 0)});
  }
  services.Print();

  Table apis("\nAPIs (last 1 s window, avg goodput over 60-120 s)");
  apis.SetHeader({"API", "rate limit", "offered", "admitted", "goodput",
                  "p95 latency (ms)"});
  for (sim::ApiId a = 0; a < app->NumApis(); ++a) {
    const auto limit = controllers.topfull()->RateLimit(a);
    apis.AddRow({app->api(a).name(),
                 limit.has_value() ? Fmt(*limit, 0) : "uncapped",
                 std::to_string(snap.apis[a].offered),
                 std::to_string(snap.apis[a].admitted),
                 Fmt(app->metrics().AvgGoodput(a, 60, 120), 0),
                 Fmt(snap.apis[a].latency_p95_ms, 0)});
  }
  apis.Print();

  std::printf("\nclusters in the last tick:\n");
  for (const auto& cluster : controllers.topfull()->LastClusters()) {
    std::printf("  target=%s  overloaded={", app->service(cluster.target).name().c_str());
    for (const auto s : cluster.overloaded) std::printf(" %s", app->service(s).name().c_str());
    std::printf(" }  candidates={");
    for (const auto a : cluster.candidates) std::printf(" %s", app->api(a).name().c_str());
    std::printf(" }\n");
  }
  return 0;
}

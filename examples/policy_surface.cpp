// Prints the trained rate-control policy's response surface: the
// multiplicative step it takes as a function of (goodput/limit ratio,
// latency/SLO). Handy for understanding what the PPO policy learned —
// the paper's premise is "aggressive decisions in the initial phase of
// overload according to its severity, then fine adjustment".
#include <cstdio>

#include "common/table.hpp"
#include "exp/model_cache.hpp"

using namespace topfull;

int main() {
  auto policy = exp::GetPretrainedPolicy();
  Table table("mean action by state (rows: goodput/limit; cols: latency/SLO)");
  std::vector<std::string> header = {"ratio \\ lat"};
  const double lats[] = {0.0, 0.25, 0.5, 0.8, 1.0, 1.5, 2.0, 3.0, 5.0};
  for (const double l : lats) header.push_back(Fmt(l, 2));
  table.SetHeader(header);
  for (const double ratio : {0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0, 1.1}) {
    std::vector<double> row;
    for (const double lat : lats) {
      row.push_back(policy->MeanAction({ratio, lat}));
    }
    table.AddRow(Fmt(ratio, 2), row, 3);
  }
  table.Print();
  std::printf("\nlog_std = %.3f\n", policy->log_std());
  return 0;
}

// Business-priority walkthrough (paper §4.1 "Respecting the business
// priority" / Algorithm 1).
//
// Three APIs with descending business priority share one bottleneck.
// Under overload, TopFull sheds the lowest-priority API first and gives
// recovered capacity to the highest-priority API first — but, unlike
// DAGOR's strict priority admission, an API whose execution path still
// crosses another overloaded microservice is not raised even if it
// outranks everyone (Fig. 6's rule).
#include <cstdio>

#include "common/table.hpp"
#include "core/controller.hpp"
#include "exp/model_cache.hpp"
#include "sim/app.hpp"
#include "workload/generators.hpp"

using namespace topfull;

int main() {
  sim::Application app("priority-demo", /*seed=*/5);

  sim::ServiceConfig shared;
  shared.name = "shared";  // 4 threads / 5 ms = 800 rps
  shared.mean_service_ms = 5.0;
  shared.threads = 4;
  shared.initial_pods = 1;
  const sim::ServiceId shared_id = app.AddService(shared);

  sim::ServiceConfig niche;
  niche.name = "niche";  // 2 threads / 10 ms = 200 rps: gold's second hop
  niche.mean_service_ms = 10.0;
  niche.threads = 2;
  niche.initial_pods = 1;
  const sim::ServiceId niche_id = app.AddService(niche);

  // gold outranks silver outranks bronze (smaller value = higher priority).
  sim::ApiSpec gold("gold", 1);
  gold.AddPath(sim::ExecutionPath{sim::Chain({shared_id, niche_id}), 1.0, {}});
  app.AddApi(std::move(gold));
  sim::ApiSpec silver("silver", 2);
  silver.AddPath(sim::ExecutionPath{sim::Chain({shared_id}), 1.0, {}});
  app.AddApi(std::move(silver));
  sim::ApiSpec bronze("bronze", 3);
  bronze.AddPath(sim::ExecutionPath{sim::Chain({shared_id}), 1.0, {}});
  app.AddApi(std::move(bronze));
  app.Finalize();

  auto policy = exp::GetPretrainedPolicy();
  core::TopFullController controller(
      &app, std::make_unique<core::RlRateController>(policy.get()));
  controller.Start();

  // Everyone offers 500 rps: "shared" sees 1500 vs its 800 capacity, and
  // gold is additionally capped by "niche" at 200.
  workload::TrafficDriver traffic(&app);
  for (sim::ApiId a = 0; a < 3; ++a) {
    traffic.AddOpenLoop(a, workload::Schedule::Constant(500));
  }
  app.RunFor(Seconds(120));

  Table table("steady goodput under 1.9x overload of the shared service");
  table.SetHeader({"API", "priority", "offered", "goodput (60-120 s)", "rate limit"});
  const char* names[] = {"gold", "silver", "bronze"};
  for (sim::ApiId a = 0; a < 3; ++a) {
    const auto limit = controller.RateLimit(a);
    table.AddRow({names[a], std::to_string(app.api(a).business_priority()), "500",
                  Fmt(app.metrics().AvgGoodput(a, 60, 120), 0),
                  limit ? Fmt(*limit, 0) : "uncapped"});
  }
  table.Print();
  std::printf(
      "\ngold — despite the TOP priority — is throttled down to what its\n"
      "niche dependency (200 rps capacity) can finish; raising it would only\n"
      "waste 'shared' on doomed requests (the Fig. 6 rule). silver keeps\n"
      "nearly all of its demand; bronze absorbs the remaining cuts.\n");
  return 0;
}

// Quickstart: build a tiny two-service application, overload it, and watch
// TopFull's controller restore goodput by rate-limiting the offending API at
// the entry.
//
// This is the Fig. 1 scenario of the paper: API 1 traverses services A and
// B, API 2 traverses only A. B is the small service; uncontrolled, API 1
// floods A with work that B must reject, starving API 2.
#include <cstdio>

#include "common/table.hpp"
#include "core/controller.hpp"
#include "exp/model_cache.hpp"
#include "sim/app.hpp"
#include "workload/generators.hpp"

using namespace topfull;

int main() {
  // 1. Describe the deployment: two services, two APIs.
  sim::Application app("quickstart", /*seed=*/7);

  sim::ServiceConfig a;
  a.name = "service-a";
  a.mean_service_ms = 4.0;  // 8 threads / 4 ms x 1 pod = 2000 rps
  a.threads = 8;
  a.initial_pods = 1;
  const sim::ServiceId sa = app.AddService(a);

  sim::ServiceConfig b;
  b.name = "service-b";
  b.mean_service_ms = 10.0;  // 4 threads / 10 ms x 1 pod = 400 rps
  b.threads = 4;
  b.initial_pods = 1;
  const sim::ServiceId sb = app.AddService(b);

  sim::ApiSpec api1("api1", /*business_priority=*/1);
  api1.AddPath(sim::ExecutionPath{sim::Chain({sa, sb}), 1.0, {}});
  app.AddApi(std::move(api1));

  sim::ApiSpec api2("api2", /*business_priority=*/1);
  api2.AddPath(sim::ExecutionPath{sim::Chain({sa}), 1.0, {}});
  app.AddApi(std::move(api2));

  app.Finalize();

  // 2. Attach TopFull with the shared pre-trained RL rate controller.
  auto policy = exp::GetPretrainedPolicy();
  core::TopFullController controller(
      &app, std::make_unique<core::RlRateController>(policy.get()));
  controller.Start();

  // 3. Offer more than the system can take: 1200 rps to each API.
  workload::TrafficDriver traffic(&app);
  traffic.AddOpenLoop(0, workload::Schedule::Constant(1200));
  traffic.AddOpenLoop(1, workload::Schedule::Constant(1200));

  // 4. Run for two minutes and report per-10s goodput.
  Table table("Goodput (rps, averaged per 10 s) under a 2x overload");
  table.SetHeader({"t(s)", "api1 good", "api2 good", "api1 limit", "api2 limit"});
  for (int block = 0; block < 12; ++block) {
    app.RunFor(Seconds(10));
    const double t0 = block * 10.0, t1 = t0 + 10.0;
    const auto l1 = controller.RateLimit(0);
    const auto l2 = controller.RateLimit(1);
    table.AddRow(Fmt(t1, 0), {app.metrics().AvgGoodput(0, t0, t1),
                              app.metrics().AvgGoodput(1, t0, t1),
                              l1.value_or(-1.0), l2.value_or(-1.0)});
  }
  table.Print();

  std::printf(
      "\nservice-b caps api1 at ~400 rps; TopFull holds api1 near that and\n"
      "lets api2 grow towards service-a's remaining capacity instead of\n"
      "letting api1's doomed requests waste it.\n");
  return 0;
}

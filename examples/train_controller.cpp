// Training walkthrough: pre-train a PPO rate-control policy on the graph
// simulator (§4.3), validate checkpoints, then fine-tune it on a real
// (simulated) application — the full Sim2real pipeline in ~60 lines.
//
// Usage: train_controller [pretrain_episodes] [finetune_episodes]
#include <cstdio>
#include <cstdlib>

#include "apps/online_boutique.hpp"
#include "exp/microservice_env.hpp"
#include "rl/graph_sim_env.hpp"
#include "rl/ppo.hpp"

using namespace topfull;

int main(int argc, char** argv) {
  const int pretrain_episodes = argc > 1 ? std::atoi(argv[1]) : 2000;
  const int finetune_episodes = argc > 2 ? std::atoi(argv[2]) : 40;

  // 1. Fresh policy + the paper's Table-1 PPO configuration (defaults).
  Rng rng(7);
  rl::GaussianPolicy policy(rl::PolicyConfig{}, rng);
  rl::PpoTrainer trainer(&policy, rl::PpoConfig{}, /*seed=*/99);

  // 2. Pre-train on the graph simulator, selecting the best checkpoint by
  //    validation on a fixed scenario set.
  rl::GraphSimEnv env({}, /*base_seed=*/1);
  rl::GraphSimEnv validation({}, /*base_seed=*/2);
  auto validate = [&validation](rl::GaussianPolicy& p) {
    return rl::EvaluatePolicy(p, validation, 8, 1000, 50);
  };
  std::printf("pre-training %d episodes on the graph simulator...\n",
              pretrain_episodes);
  const rl::TrainResult pretrain =
      trainer.Train(env, pretrain_episodes, validate, /*checkpoint_every=*/200);
  std::printf("  episodes=%d  best validation score=%.3f\n",
              pretrain.episodes_trained, pretrain.best_validation_score);
  for (std::size_t i = 0; i < pretrain.history.size();
       i += std::max<std::size_t>(1, pretrain.history.size() / 8)) {
    std::printf("  iter %3zu: mean episode reward %.3f (kl %.4f)\n", i,
                pretrain.history[i].mean_episode_reward, pretrain.history[i].mean_kl);
  }

  // 3. Fine-tune in the application environment (Sim2real specialisation):
  //    each episode spins up a fresh Online Boutique with a random workload
  //    and lets the policy drive the real TopFull controller.
  exp::MicroserviceEnvConfig app_env_config;
  app_env_config.factory = [](std::uint64_t seed) {
    apps::BoutiqueOptions options;
    options.seed = seed;
    return apps::MakeOnlineBoutique(options);
  };
  app_env_config.api_rate_ranges = {{100, 700}, {150, 1200}, {100, 900},
                                    {100, 900}, {100, 900}};
  exp::MicroserviceEnv app_env(std::move(app_env_config));
  rl::PpoConfig finetune_config;
  finetune_config.episodes_per_iter = 4;
  rl::PpoTrainer finetuner(&policy, finetune_config, /*seed=*/123);
  std::printf("fine-tuning %d episodes on Online Boutique...\n", finetune_episodes);
  const rl::TrainResult finetune = finetuner.Train(app_env, finetune_episodes);
  std::printf("  episodes=%d  final mean episode reward=%.3f\n",
              finetune.episodes_trained,
              finetune.history.empty() ? 0.0
                                       : finetune.history.back().mean_episode_reward);

  // 4. Inspect what the policy learned.
  std::printf("\npolicy response (goodput/limit=1.0):\n");
  for (const double lat : {0.0, 0.1, 0.3, 0.6, 1.0, 2.0}) {
    std::printf("  latency %.1fx SLO -> step %+.3f\n", lat,
                policy.MeanAction({1.0, lat}));
  }
  policy.SaveFile("trained_policy.txt");
  std::printf("\nsaved to trained_policy.txt\n");
  return 0;
}

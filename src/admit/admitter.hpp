// Per-(service, method) congestion-controller slots for the admission plane.
//
// One small interface, three admission disciplines behind it — the shapes
// the paper's baseline survey covers:
//  * TokenBucketAdmitter      — TopFull's entry gate (§5): rate + burst.
//  * PriorityThresholdAdmitter — DAGOR-style compound-priority threshold:
//    admit iff the request's priority is within the published threshold.
//  * CreditAdmitter           — Breakwater-style credit pool: admits spend
//    credits the server granted; the control loop tops the pool up.
//
// TryAdmit is the hot path and must stay lock-free and allocation-free on
// every implementation; Configure is control-path-only and is serialized by
// the owning AdmissionPlane.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "admit/atomic_token_bucket.hpp"
#include "common/sim_time.hpp"

namespace topfull::admit {

/// Everything an admitter may look at when deciding. Plain value — built on
/// the caller's stack, never allocated.
struct AdmitRequest {
  SimTime now = 0;
  /// Compound priority (lower = more important), DAGOR convention. Ignored
  /// by rate-based admitters.
  int priority = 0;
};

class Admitter {
 public:
  virtual ~Admitter() = default;

  /// Lock-free, allocation-free admission decision.
  virtual bool TryAdmit(const AdmitRequest& req) = 0;

  /// Control-path reconfiguration. The two parameters are interpreted per
  /// discipline: (rate, burst) for token buckets, (threshold, unused) for
  /// priority thresholds, (grant-rate, pool-cap) for credit pools.
  virtual void Configure(double rate, double burst) = 0;

  /// The discipline's primary knob, for introspection/metrics.
  virtual double rate() const = 0;

  virtual const char* kind() const = 0;
};

/// TopFull's entry-gateway discipline: a lock-free token bucket.
class TokenBucketAdmitter final : public Admitter {
 public:
  TokenBucketAdmitter(double rate, double burst) : bucket_(rate, burst) {}

  bool TryAdmit(const AdmitRequest& req) override {
    return bucket_.TryAdmit(req.now);
  }
  /// Resets the bucket exactly like assigning a fresh TokenBucket — required
  /// for bit-identity with the sim's historical SetRate path (DESIGN.md §15).
  void Configure(double rate, double burst) override {
    bucket_.Configure(rate, burst);
  }
  double rate() const override { return bucket_.rate(); }
  const char* kind() const override { return "token_bucket"; }

  AtomicTokenBucket& bucket() { return bucket_; }
  const AtomicTokenBucket& bucket() const { return bucket_; }

 private:
  AtomicTokenBucket bucket_;
};

/// DAGOR-style admission: admit iff priority <= threshold. The threshold is
/// a single relaxed atomic — readers never see a torn value and the check is
/// one load.
class PriorityThresholdAdmitter final : public Admitter {
 public:
  explicit PriorityThresholdAdmitter(int threshold = 0)
      : threshold_(threshold) {}

  PriorityThresholdAdmitter(PriorityThresholdAdmitter&& other) noexcept
      : threshold_(other.threshold()) {}
  PriorityThresholdAdmitter& operator=(
      PriorityThresholdAdmitter&& other) noexcept {
    SetThreshold(other.threshold());
    return *this;
  }

  bool TryAdmit(const AdmitRequest& req) override {
    return req.priority <= threshold_.load(std::memory_order_relaxed);
  }
  void Configure(double rate, double /*burst*/) override {
    SetThreshold(static_cast<int>(rate));
  }
  double rate() const override { return static_cast<double>(threshold()); }
  const char* kind() const override { return "priority_threshold"; }

  void SetThreshold(int t) {
    threshold_.store(t, std::memory_order_relaxed);
  }
  int threshold() const { return threshold_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int> threshold_;
};

/// Breakwater-style credit pool: every admit spends one credit via a CAS
/// decrement; Grant() (or Configure) refills up to the cap. Overcommit is
/// impossible — the pool can never go negative, so total admits <= total
/// credits granted.
class CreditAdmitter final : public Admitter {
 public:
  explicit CreditAdmitter(double credits, double cap = 0.0)
      : credits_(std::max(0.0, credits)),
        cap_(std::max(std::max(1.0, cap), std::max(0.0, credits))) {}

  bool TryAdmit(const AdmitRequest& /*req*/) override {
    double cur = credits_.load(std::memory_order_relaxed);
    while (cur >= 1.0) {
      if (credits_.compare_exchange_weak(cur, cur - 1.0,
                                         std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  /// Tops the pool up by `n` credits, clamped to the cap.
  void Grant(double n) {
    double cur = credits_.load(std::memory_order_relaxed);
    const double cap = cap_.load(std::memory_order_relaxed);
    while (!credits_.compare_exchange_weak(
        cur, std::min(cap, cur + std::max(0.0, n)),
        std::memory_order_relaxed)) {
    }
  }

  /// (grant, cap): refills the pool to `rate` credits and sets the cap.
  void Configure(double rate, double burst) override {
    cap_.store(std::max(1.0, burst), std::memory_order_relaxed);
    credits_.store(std::clamp(rate, 0.0, std::max(1.0, burst)),
                   std::memory_order_relaxed);
  }
  double rate() const override {
    return credits_.load(std::memory_order_relaxed);
  }
  const char* kind() const override { return "credit"; }

  double credits() const { return credits_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> credits_;
  std::atomic<double> cap_;
};

}  // namespace topfull::admit

// Lock-free token bucket: the concurrent-ready twin of common/TokenBucket.
//
// The whole mutable hot state — {fractional tokens, last-refill time} — lives
// in one 16-byte cell updated with a bounded double-width-CAS loop, so any
// number of request threads can admit concurrently while a control thread
// republishes rates. Used sequentially (one thread, monotonic `now`) the
// decision stream AND the internal state evolution are bit-identical to
// TokenBucket: the same double operations execute in the same order, which is
// what lets the sim's entry limiter run on this class without perturbing a
// single golden digest (DESIGN.md §15).
//
// Fast paths:
//  * Reject without any RMW: each successful CAS mirrors the written value
//    into relaxed per-field atomics on a separate cache line. When the mirror
//    says "no token and no refill due", we reject on the spot. A stale mirror
//    can only make this *conservative* (at a fixed last-refill time the
//    balance only ever decreases, and a newer last-refill time would fail the
//    "no refill due" check), so the fast path may spuriously reject under
//    heavy contention but can never spuriously admit.
//  * Admits always CAS the true cell, so the conservation bound
//    (admitted <= rate·T + burst) holds regardless of mirror staleness.
//
// The mirror exists for speed, not just the fast reject: re-loading the CAS
// target line right after a lock-prefixed op stalls (~2x admit cost measured
// on this repo's reference machine); the mirror keeps the CAS "expected"
// hint warm on its own line.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>

#include "admit/packed_atomic.hpp"
#include "common/sim_time.hpp"

namespace topfull::admit {

class AtomicTokenBucket {
 public:
  /// Same contract as TokenBucket: `rate` in requests/second (clamped >= 0),
  /// `burst` is the bucket depth in tokens (clamped >= 1); starts full with
  /// last-refill at t=0.
  AtomicTokenBucket(double rate, double burst) { Configure(rate, burst); }

  /// Movable so vectors of per-pod controls can grow. Moving is NOT
  /// thread-safe — it is for single-threaded container setup only.
  AtomicTokenBucket(AtomicTokenBucket&& other) noexcept { MoveFrom(other); }
  AtomicTokenBucket& operator=(AtomicTokenBucket&& other) noexcept {
    if (this != &other) MoveFrom(other);
    return *this;
  }
  AtomicTokenBucket(const AtomicTokenBucket&) = delete;
  AtomicTokenBucket& operator=(const AtomicTokenBucket&) = delete;

  /// Attempts to admit one request at time `now`; returns true on success.
  /// Lock-free; never allocates. Under contention the CAS loop is bounded:
  /// after kMaxCasRetries failed attempts the request is rejected (counted
  /// in contention_rejects) rather than spinning unboundedly.
  bool TryAdmit(SimTime now) {
    const double rate = rate_.load(std::memory_order_relaxed);
    const double burst = burst_.load(std::memory_order_relaxed);
    Packed128 cur{mirror_tokens_.load(std::memory_order_relaxed),
                  mirror_last_.load(std::memory_order_relaxed)};
    const std::int64_t sat_elapsed =
        sat_elapsed_.load(std::memory_order_relaxed);
    for (int attempt = 0; attempt < kMaxCasRetries; ++attempt) {
      Packed128 want = cur;
      if (now > want.last) {
        if (want.tokens >= burst - 1.0 && now - want.last >= sat_elapsed) {
          // Saturation shortcut — this IS the steady state of an uncongested
          // API (each admit leaves burst-1; the next refill tops it back up),
          // and it keeps the FP divide off the serial mirror->CAS chain that
          // the lock prefix makes latency-bound. Provably bit-identical to
          // the general expression below: sat_elapsed is the smallest
          // elapsed with refill = fl(fl(ToSeconds(e))*rate) >= 1.0 (refill
          // is monotone in e, precomputed on the control path), so here
          // tokens + refill >= (burst-1) + 1 = burst in exact arithmetic,
          // rounding-to-nearest cannot take a value >= burst below the
          // representable burst, and min(burst, .) then returns exactly
          // burst. A torn read against a concurrent SetRate/Configure can
          // overshoot by at most the sub-token gap (< 1 token, one-shot),
          // within the one-burst-per-reconfig slop Configure already has.
          want.tokens = burst;
          want.last = now;
        } else {
          // Exactly TokenBucket::Refill — same expression, same rounding.
          want.tokens =
              std::min(burst, want.tokens + ToSeconds(now - want.last) * rate);
          want.last = now;
        }
      }
      const bool admit = want.tokens >= 1.0;
      if (admit) {
        want.tokens -= 1.0;
      } else if (want.last == cur.last) {
        // No refill due and no token: nothing to publish. This is the
        // zero-RMW reject path (see header comment for why a stale `cur`
        // keeps this sound on the first iteration).
        return false;
      }
      if (CompareExchange(&state_, cur, want)) {
        mirror_tokens_.store(want.tokens, std::memory_order_relaxed);
        mirror_last_.store(want.last, std::memory_order_relaxed);
        return admit;
      }
      // `cur` now holds the real cell value; recompute against it.
    }
    contention_rejects_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  /// Updates the refill rate, preserving the token balance (TokenBucket::
  /// SetRate semantics). Takes effect atomically per-admit: a concurrent
  /// TryAdmit uses either the old rate or the new one, never a torn value.
  void SetRate(double rate) {
    const double r = std::max(0.0, rate);
    rate_.store(r, std::memory_order_relaxed);
    sat_elapsed_.store(
        SaturatingElapsed(r, burst_.load(std::memory_order_relaxed)),
        std::memory_order_relaxed);
  }

  /// Full reset — equivalent to assigning a fresh TokenBucket(rate, burst):
  /// clamps, refills to the new burst and rewinds last-refill to t=0.
  void Configure(double rate, double burst) {
    const double r = std::max(0.0, rate);
    const double b = std::max(1.0, burst);
    rate_.store(r, std::memory_order_relaxed);
    sat_elapsed_.store(SaturatingElapsed(r, b), std::memory_order_relaxed);
    burst_.store(b, std::memory_order_relaxed);
    const Packed128 fresh{b, 0};
    Store(&state_, fresh,
          Packed128{mirror_tokens_.load(std::memory_order_relaxed),
                    mirror_last_.load(std::memory_order_relaxed)});
    mirror_tokens_.store(fresh.tokens, std::memory_order_relaxed);
    mirror_last_.store(fresh.last, std::memory_order_relaxed);
  }

  double rate() const { return rate_.load(std::memory_order_relaxed); }
  double burst() const { return burst_.load(std::memory_order_relaxed); }

  /// Non-mutating preview of the balance a refill up to `now` would leave
  /// (the concurrent analogue of TokenBucket::PeekTokens). Reads the true
  /// cell untorn; sequentially it is exact.
  double PeekTokens(SimTime now) const {
    const Packed128 cur =
        Load(&state_, Packed128{mirror_tokens_.load(std::memory_order_relaxed),
                                mirror_last_.load(std::memory_order_relaxed)});
    if (now <= cur.last) return cur.tokens;
    return std::min(burst_.load(std::memory_order_relaxed),
                    cur.tokens + ToSeconds(now - cur.last) *
                                     rate_.load(std::memory_order_relaxed));
  }

  /// Requests rejected because the CAS retry bound was exhausted (only ever
  /// non-zero under extreme contention; each is a conservative shed).
  std::uint64_t contention_rejects() const {
    return contention_rejects_.load(std::memory_order_relaxed);
  }

  static constexpr int kMaxCasRetries = 64;

 private:
  /// Smallest elapsed time (µs) whose refill at `rate` is at least one whole
  /// token — i.e. the least e with fl(fl(ToSeconds(e)) * rate) >= 1.0, or
  /// INT64_MAX when no elapsed achieves it (rate == 0). The refill is
  /// monotone non-decreasing in e (rounding a monotone function stays
  /// monotone), so binary search over the exact hot-path expression finds
  /// the exact threshold. Control path only (~60 iterations with divides).
  /// Disabled (INT64_MAX) when burst > 2^53: past that, burst - 1.0 rounds
  /// and the shortcut's exactness proof no longer holds.
  static std::int64_t SaturatingElapsed(double rate, double burst) {
    const auto refill_ge_one = [rate](std::int64_t e) {
      return ToSeconds(e) * rate >= 1.0;
    };
    // Probe range: beyond ~292 years of µs the sim clock itself overflows.
    constexpr std::int64_t kMax = std::int64_t{1} << 62;
    constexpr double kExactBurstMax = 9007199254740992.0;  // 2^53
    if (!(rate > 0.0) || burst > kExactBurstMax || !refill_ge_one(kMax)) {
      return std::numeric_limits<std::int64_t>::max();
    }
    std::int64_t lo = 1, hi = kMax;  // invariant: refill_ge_one(hi)
    while (lo < hi) {
      const std::int64_t mid = lo + (hi - lo) / 2;
      if (refill_ge_one(mid)) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return hi;
  }

  void MoveFrom(const AtomicTokenBucket& other) {
    rate_.store(other.rate_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    sat_elapsed_.store(other.sat_elapsed_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    burst_.store(other.burst_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    const Packed128 v = Load(
        &other.state_,
        Packed128{other.mirror_tokens_.load(std::memory_order_relaxed),
                  other.mirror_last_.load(std::memory_order_relaxed)});
    Store(&state_, v, Packed128{});
    mirror_tokens_.store(v.tokens, std::memory_order_relaxed);
    mirror_last_.store(v.last, std::memory_order_relaxed);
    contention_rejects_.store(
        other.contention_rejects_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }

  // mutable: cmpxchg16b rewrites the target bytes even when used as a pure
  // load (it stores the old value back), so const readers still "write".
  mutable Packed128 state_{};
  std::atomic<double> rate_{0.0};
  std::atomic<double> burst_{1.0};
  /// See SaturatingElapsed(); kept consistent with rate_ by the (serialized)
  /// control path.
  std::atomic<std::int64_t> sat_elapsed_{
      std::numeric_limits<std::int64_t>::max()};
  std::atomic<std::uint64_t> contention_rejects_{0};
  // CAS-expected hint, deliberately on its own cache line so the hot admit
  // loop never issues plain loads against the lock-contended `state_` line.
  alignas(64) std::atomic<double> mirror_tokens_{0.0};
  std::atomic<std::int64_t> mirror_last_{0};
};

}  // namespace topfull::admit

// 16-byte packed atomic: the double-width CAS primitive under
// AtomicTokenBucket (DESIGN.md §15).
//
// GCC refuses to inline 16-byte atomics (`std::atomic<T>::is_lock_free()`
// reports false and every operation becomes an out-of-line libatomic call,
// ~2x the cost of the raw instruction), so on x86-64 we issue
// `lock cmpxchg16b` directly. Other targets fall back to the `__atomic`
// builtins (link libatomic there; see src/admit/CMakeLists.txt).
//
// ThreadSanitizer note: the inline-asm path is invisible to TSan, which is
// sound here because *every* access to a Packed128 cell goes through this
// header — there are no instrumented plain loads/stores of the same bytes
// to race against. Cross-field synchronization is never derived from these
// operations; callers keep independently-consistent state in real
// std::atomic members.
#pragma once

#include <cstdint>
#include <cstring>

namespace topfull::admit {

/// The bucket state that must change atomically as one unit: the fractional
/// token balance and the last-refill timestamp (microseconds).
struct alignas(16) Packed128 {
  double tokens = 0.0;
  std::int64_t last = 0;
};

inline bool operator==(const Packed128& a, const Packed128& b) {
  return std::memcmp(&a, &b, sizeof(Packed128)) == 0;
}

/// Strong compare-exchange of the full 16 bytes. On failure `expected` is
/// refreshed with the current value (exactly the std::atomic contract).
inline bool CompareExchange(Packed128* target, Packed128& expected,
                            const Packed128& desired) noexcept {
#if defined(__x86_64__)
  bool ok;
  std::uint64_t exp_lo, exp_hi, des_lo, des_hi;
  std::memcpy(&exp_lo, &expected.tokens, sizeof(exp_lo));
  std::memcpy(&exp_hi, &expected.last, sizeof(exp_hi));
  std::memcpy(&des_lo, &desired.tokens, sizeof(des_lo));
  std::memcpy(&des_hi, &desired.last, sizeof(des_hi));
  __asm__ __volatile__("lock cmpxchg16b %[ptr]"
                       : "=@ccz"(ok), [ptr] "+m"(*target), "+a"(exp_lo),
                         "+d"(exp_hi)
                       : "b"(des_lo), "c"(des_hi)
                       : "memory");
  if (!ok) {
    std::memcpy(&expected.tokens, &exp_lo, sizeof(exp_lo));
    std::memcpy(&expected.last, &exp_hi, sizeof(exp_hi));
  }
  return ok;
#else
  Packed128 want = desired;
  return __atomic_compare_exchange(target, &expected, &want, /*weak=*/false,
                                   __ATOMIC_SEQ_CST, __ATOMIC_SEQ_CST);
#endif
}

/// Consistent (untorn) load. cmpxchg16b always deposits the current value in
/// rdx:rax, so one CAS with desired == hint doubles as a load: if the hint
/// was right the (idempotent) store rewrites the same bytes, if it was wrong
/// the failure path hands back the real value. `hint` should be the caller's
/// best guess to keep this a single instruction.
inline Packed128 Load(Packed128* target, Packed128 hint) noexcept {
  CompareExchange(target, hint, hint);
  return hint;
}

/// Unconditional store (control path only; loops a CAS until it lands).
inline void Store(Packed128* target, const Packed128& desired,
                  Packed128 hint) noexcept {
  while (!CompareExchange(target, hint, desired)) {
  }
}

}  // namespace topfull::admit

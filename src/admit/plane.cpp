#include "admit/plane.hpp"

namespace topfull::admit {

namespace {
std::string Key(const std::string& service, const std::string& method) {
  std::string key;
  key.reserve(service.size() + method.size() + 1);
  key.append(service);
  key.push_back('/');
  key.append(method);
  return key;
}
}  // namespace

AdmissionPlane::AdmissionPlane() {
  std::lock_guard<std::mutex> lock(mu_);
  PublishLocked();  // readers never see a null snapshot
}

void AdmissionPlane::PublishLocked() {
  auto state = std::make_shared<State>();
  state->version = ++next_version_;
  state->slots.reserve(entries_.size());
  for (int i = 0; i < static_cast<int>(entries_.size()); ++i) {
    const Entry& entry = entries_[static_cast<std::size_t>(i)];
    state->slots.push_back(entry.admitter);
    if (entry.admitter != nullptr) {
      state->index.emplace(Key(entry.service, entry.method), i);
    }
  }
  const std::uint64_t version = state->version;
  cell_.Publish(std::move(state));
  snapshots_published_.fetch_add(1, std::memory_order_relaxed);
  // Release so a reader that observes the new version also observes the
  // published snapshot through cell_.Read().
  version_.store(version, std::memory_order_release);
}

int AdmissionPlane::Register(const std::string& service,
                             const std::string& method,
                             std::shared_ptr<Admitter> admitter) {
  std::lock_guard<std::mutex> lock(mu_);
  const int slot = static_cast<int>(entries_.size());
  entries_.push_back(Entry{service, method, std::move(admitter)});
  PublishLocked();
  return slot;
}

void AdmissionPlane::Remove(int slot) {
  std::lock_guard<std::mutex> lock(mu_);
  if (slot < 0 || slot >= static_cast<int>(entries_.size())) return;
  Entry& entry = entries_[static_cast<std::size_t>(slot)];
  if (entry.admitter == nullptr) return;
  entry.admitter = nullptr;
  entry.configured = false;
  PublishLocked();
}

ConfigureResult AdmissionPlane::Configure(int slot, double rate, double burst) {
  std::lock_guard<std::mutex> lock(mu_);
  if (slot < 0 || slot >= static_cast<int>(entries_.size())) {
    return ConfigureResult::kInvalidSlot;
  }
  Entry& entry = entries_[static_cast<std::size_t>(slot)];
  if (entry.admitter == nullptr) return ConfigureResult::kInvalidSlot;
  // Always applied in place: disciplines that reset internal state on
  // reconfiguration (the token bucket refills to its burst) must do so even
  // for a same-value publish, or the sim's decision stream would diverge
  // from the historical per-SetRate bucket reset (DESIGN.md §15).
  entry.admitter->Configure(rate, burst);
  if (entry.configured && entry.rate == rate && entry.burst == burst) {
    reconfigs_coalesced_.fetch_add(1, std::memory_order_relaxed);
    return ConfigureResult::kCoalesced;
  }
  entry.configured = true;
  entry.rate = rate;
  entry.burst = burst;
  reconfigs_applied_.fetch_add(1, std::memory_order_relaxed);
  PublishLocked();
  return ConfigureResult::kApplied;
}

bool AdmissionPlane::TryAdmit(int slot, const AdmitRequest& req) const {
  const std::shared_ptr<const State> state = Snapshot();
  if (state == nullptr || slot < 0 ||
      slot >= static_cast<int>(state->slots.size())) {
    return true;
  }
  Admitter* admitter = state->slots[static_cast<std::size_t>(slot)].get();
  if (admitter == nullptr) return true;
  return admitter->TryAdmit(req);
}

int AdmissionPlane::FindSlot(const std::string& service,
                             const std::string& method) const {
  const std::shared_ptr<const State> state = Snapshot();
  if (state == nullptr) return -1;
  const auto it = state->index.find(Key(service, method));
  return it == state->index.end() ? -1 : it->second;
}

PlaneStats AdmissionPlane::Stats() const {
  PlaneStats stats;
  stats.reconfigs_applied = reconfigs_applied_.load(std::memory_order_relaxed);
  stats.reconfigs_coalesced =
      reconfigs_coalesced_.load(std::memory_order_relaxed);
  stats.snapshots_published =
      snapshots_published_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace topfull::admit

// AdmissionPlane: the concurrent admission registry (ytsaurus
// TOverloadController shape — see DESIGN.md §15).
//
// Read path: one atomic snapshot load maps (service, method) → admitter
// slot; admits never take a lock and never observe a torn reconfiguration.
// Control path: a single control thread (serialized by a mutex) registers /
// removes slots and republishes rates; topology changes build a fresh
// immutable State and release-publish it, while pure rate changes are
// applied in place on the (stable, shared_ptr-held) admitter objects so the
// read path picks them up without a snapshot rebuild.
//
// Snapshot publication uses the same hazard-slot ring as obs::SnapshotBoard
// rather than std::atomic<std::shared_ptr<...>>: libstdc++'s _Sp_atomic
// releases its internal spinlock with a relaxed RMW, which TSan (correctly,
// per the letter of the memory model) flags — the slot ring is the repo's
// proven TSan-clean single-publisher/multi-reader exchange.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "admit/admitter.hpp"

namespace topfull::admit {

/// Single-publisher / multi-reader cell holding a shared_ptr<const T>.
/// Read() is lock-free and returns a reference-counted handle that keeps the
/// value alive for as long as the caller holds it; Publish() (publisher must
/// be externally serialized) never blocks on readers.
template <typename T>
class RcuCell {
 public:
  void Publish(std::shared_ptr<const T> value) {
    if (value == nullptr) return;
    const std::uint32_t cur = current_.load(std::memory_order_relaxed);
    std::uint32_t next = cur;
    for (;;) {
      next = (next + 1) % kSlots;
      if (next == cur) continue;  // never overwrite the live slot
      if (slots_[next].readers.load(std::memory_order_seq_cst) == 0) break;
    }
    slots_[next].value = std::move(value);
    current_.store(next, std::memory_order_seq_cst);
  }

  std::shared_ptr<const T> Read() const {
    for (;;) {
      const std::uint32_t i = current_.load(std::memory_order_seq_cst);
      Slot& slot = slots_[i];
      slot.readers.fetch_add(1, std::memory_order_seq_cst);
      if (current_.load(std::memory_order_seq_cst) == i) {
        std::shared_ptr<const T> out = slot.value;
        slot.readers.fetch_sub(1, std::memory_order_seq_cst);
        return out;
      }
      // The publisher moved on while we pinned; retry on the fresh slot.
      slot.readers.fetch_sub(1, std::memory_order_seq_cst);
    }
  }

 private:
  // 4 slots: 1 live + up to 2 mid-Read stragglers + 1 the publisher is
  // filling. The publisher skips slots with pinned readers, so a reader's
  // copy always completes on an intact shared_ptr.
  static constexpr std::uint32_t kSlots = 4;

  struct Slot {
    std::shared_ptr<const T> value;
    std::atomic<std::uint32_t> readers{0};
  };

  mutable std::array<Slot, kSlots> slots_;
  std::atomic<std::uint32_t> current_{0};
};

/// Outcome of a control-path Configure.
enum class ConfigureResult {
  kApplied,      ///< limit actually changed; new snapshot published
  kCoalesced,    ///< same (rate, burst) as already configured; publish skipped
  kInvalidSlot,  ///< unknown or removed slot
};

/// Control-plane counters (read with Stats(); all monotonic).
struct PlaneStats {
  std::uint64_t reconfigs_applied = 0;
  std::uint64_t reconfigs_coalesced = 0;
  std::uint64_t snapshots_published = 0;
};

class AdmissionPlane {
 public:
  /// The immutable snapshot the read path navigates. `slots` is dense by
  /// slot id (nullptr = removed slot, which fails open); `index` maps
  /// "service/method" to the slot id.
  struct State {
    std::uint64_t version = 0;
    std::vector<std::shared_ptr<Admitter>> slots;
    std::unordered_map<std::string, int> index;
  };

  AdmissionPlane();

  // --- Control path (thread-safe, serialized internally) --------------------
  /// Registers an admitter under (service, method); returns its stable slot
  /// id. Publishes a new snapshot.
  int Register(const std::string& service, const std::string& method,
               std::shared_ptr<Admitter> admitter);

  /// Removes a slot (subsequent admits on it fail open). The admitter stays
  /// alive for as long as any reader still holds a pinned snapshot.
  void Remove(int slot);

  /// Applies (rate, burst) to a slot's admitter. The admitter is always
  /// reconfigured in place — a discipline like the token bucket resets its
  /// balance on every call, exactly like the sim's historical SetRate path —
  /// but the snapshot republish (and version bump) is coalesced away when
  /// (rate, burst) match what is already configured.
  ConfigureResult Configure(int slot, double rate, double burst);

  // --- Read path (lock-free) ------------------------------------------------
  /// Current snapshot; holding the returned pointer pins every admitter in
  /// it (safe across concurrent Remove).
  std::shared_ptr<const State> Snapshot() const { return cell_.Read(); }

  /// Snapshot version counter; bumps on every publish. Cheap enough to poll
  /// per-admit (one acquire load).
  std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  /// One-shot admit through the current snapshot. Unknown/removed slots fail
  /// open (admit), matching "uncapped" semantics. Prefer CachedGate on hot
  /// paths: this copies the snapshot handle (two ref-count RMWs) per call.
  bool TryAdmit(int slot, const AdmitRequest& req) const;

  /// Slot id for (service, method), or -1.
  int FindSlot(const std::string& service, const std::string& method) const;

  PlaneStats Stats() const;

 private:
  struct Entry {
    std::string service;
    std::string method;
    std::shared_ptr<Admitter> admitter;  // nullptr once removed
    bool configured = false;             // has Configure ever been applied?
    double rate = 0.0;                   // last applied (rate, burst) —
    double burst = 0.0;                  // the coalescing shadow
  };

  /// Builds a State from entries_ and publishes it. Caller holds mu_.
  void PublishLocked();

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  std::uint64_t next_version_ = 0;

  RcuCell<State> cell_;
  std::atomic<std::uint64_t> version_{0};
  std::atomic<std::uint64_t> reconfigs_applied_{0};
  std::atomic<std::uint64_t> reconfigs_coalesced_{0};
  std::atomic<std::uint64_t> snapshots_published_{0};
};

/// Per-caller read handle that only re-reads the plane snapshot when the
/// version moved — the steady-state admit is one relaxed version load plus
/// the admitter's own decision, with zero shared_ptr ref-count traffic and
/// zero allocation.
class CachedGate {
 public:
  CachedGate() = default;
  explicit CachedGate(const AdmissionPlane* plane) : plane_(plane) {}

  bool TryAdmit(int slot, const AdmitRequest& req) {
    Refresh();
    if (state_ == nullptr || slot < 0 ||
        slot >= static_cast<int>(state_->slots.size())) {
      return true;  // fail open, uncapped semantics
    }
    Admitter* admitter = state_->slots[static_cast<std::size_t>(slot)].get();
    if (admitter == nullptr) return true;
    return admitter->TryAdmit(req);
  }

  /// The snapshot this gate currently navigates (tests/introspection).
  const std::shared_ptr<const AdmissionPlane::State>& state() {
    Refresh();
    return state_;
  }

 private:
  void Refresh() {
    if (plane_ == nullptr) return;
    const std::uint64_t v = plane_->version();
    if (v == seen_version_) return;
    state_ = plane_->Snapshot();
    seen_version_ = state_ != nullptr ? state_->version : v;
  }

  const AdmissionPlane* plane_ = nullptr;
  std::shared_ptr<const AdmissionPlane::State> state_;
  std::uint64_t seen_version_ = ~std::uint64_t{0};
};

}  // namespace topfull::admit

#include "apps/alibaba_demo.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <string>

namespace topfull::apps {
namespace {

constexpr int kNumServices = 127;
constexpr int kNumApis = 25;
constexpr int kNumOverloadable = 13;
// 17 single-path APIs + 8 branching APIs (6+5+4+3+2+2+2+2 = 26 paths)
// gives the paper's 43 execution paths with branching up to 6.
constexpr int kBranchCounts[] = {6, 5, 4, 3, 2, 2, 2, 2};

/// Builds one 127-service copy into `app`. `prefix` is empty for copy 0
/// (names — and for a single copy the whole app — identical to the
/// original demo); copies use their own generator stream and an id offset
/// so they share nothing.
void BuildCopy(sim::Application& app, AlibabaDemo& demo, Rng& rng,
               const std::string& prefix, double capacity_scale) {
  // Overloadable services spread across the id space (copy-local ids).
  std::set<int> overloadable_set;
  while (static_cast<int>(overloadable_set.size()) < kNumOverloadable) {
    overloadable_set.insert(static_cast<int>(rng.UniformInt(1, kNumServices - 1)));
  }

  const int id_offset = app.NumServices();
  std::vector<sim::ServiceId> copy_overloadable;
  for (int i = 0; i < kNumServices; ++i) {
    sim::ServiceConfig config;
    config.name = prefix + "ms-" + std::to_string(i);
    const bool hot = overloadable_set.count(i) > 0;
    if (hot) {
      // Designed-overloadable: modest capacity (~150-400 rps).
      config.mean_service_ms = rng.Uniform(18.0, 30.0);
      config.threads = 4;
      config.initial_pods = std::max(
          1, static_cast<int>(std::lround(rng.UniformInt(1, 2) * capacity_scale)));
    } else {
      // Plentiful capacity (~2500-8000 rps).
      config.mean_service_ms = rng.Uniform(2.0, 6.0);
      config.threads = 8;
      config.initial_pods = std::max(
          1, static_cast<int>(std::lround(2 * capacity_scale)));
    }
    // Bound each pod's queue to ~1.5x the SLO's worth of work: requests
    // queued deeper are doomed to violate the SLO anyway (so uncontrolled
    // overload still collapses goodput), while bounded queues keep the
    // latency signal from going completely stale.
    config.max_queue = std::clamp(
        static_cast<int>(config.threads * 1500.0 / config.mean_service_ms), 64, 1024);
    const sim::ServiceId id = app.AddService(config);
    if (hot) {
      demo.overloadable.push_back(id);
      copy_overloadable.push_back(id);
    }
  }

  // Helper: a chain call-tree over the given copy-local service sequence.
  auto make_path = [&](const std::vector<int>& services, double prob) {
    std::vector<sim::ServiceId> ids;
    ids.reserve(services.size());
    for (const int s : services) ids.push_back(s + id_offset);
    return sim::ExecutionPath{sim::Chain(ids), prob, {}};
  };

  // Assign each API 1-3 of the overloadable services; paths route through
  // a random subset of them plus random cold services.
  auto build_path_services = [&](const std::vector<int>& assigned_hot) {
    const int length = static_cast<int>(rng.UniformInt(3, 7));
    std::vector<int> services;
    std::set<int> used;
    // Start at a cold entry service.
    while (true) {
      const int entry = static_cast<int>(rng.UniformInt(0, kNumServices - 1));
      if (overloadable_set.count(entry) == 0) {
        services.push_back(entry);
        used.insert(entry);
        break;
      }
    }
    // At least one of the API's assigned hot services is on every path.
    const int must_hot =
        assigned_hot[static_cast<std::size_t>(rng.UniformInt(
            0, static_cast<std::int64_t>(assigned_hot.size()) - 1))];
    while (static_cast<int>(services.size()) < length - 1) {
      int next;
      if (rng.Bernoulli(0.25) && !assigned_hot.empty()) {
        next = assigned_hot[static_cast<std::size_t>(rng.UniformInt(
            0, static_cast<std::int64_t>(assigned_hot.size()) - 1))];
      } else {
        next = static_cast<int>(rng.UniformInt(0, kNumServices - 1));
        if (overloadable_set.count(next) > 0) continue;  // hot only via assignment
      }
      if (used.count(next) > 0) continue;
      services.push_back(next);
      used.insert(next);
    }
    if (used.count(must_hot) == 0) {
      services.push_back(must_hot);
    }
    return services;
  };

  std::vector<int> hot_ids;
  hot_ids.reserve(copy_overloadable.size());
  for (const sim::ServiceId s : copy_overloadable) hot_ids.push_back(s - id_offset);
  int branching_index = 0;
  for (int a = 0; a < kNumApis; ++a) {
    const bool branching = a < static_cast<int>(std::size(kBranchCounts));
    const int num_paths = branching ? kBranchCounts[branching_index++] : 1;

    // 1-3 assigned overloadable services per API, so that every hot
    // service ends up contended by several APIs.
    std::vector<int> assigned;
    const int num_assigned = static_cast<int>(rng.UniformInt(1, 3));
    while (static_cast<int>(assigned.size()) < num_assigned) {
      const int h = hot_ids[static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(hot_ids.size()) - 1))];
      if (std::find(assigned.begin(), assigned.end(), h) == assigned.end()) {
        assigned.push_back(h);
      }
    }

    sim::ApiSpec spec(prefix + "api-" + std::to_string(a), 1);
    for (int p = 0; p < num_paths; ++p) {
      spec.AddPath(make_path(build_path_services(assigned), rng.Uniform(0.5, 1.5)));
    }
    app.AddApi(std::move(spec));
  }
}

}  // namespace

AlibabaDemo MakeAlibabaDemo(const AlibabaDemoOptions& options) {
  AlibabaDemo demo;
  demo.app = std::make_unique<sim::Application>("alibaba-demo", options.seed);
  sim::Application& app = *demo.app;
  const int replicas = std::max(1, options.replicas);
  for (int k = 0; k < replicas; ++k) {
    // Copy 0 consumes exactly the original stream so replicas == 1
    // reproduces the historical app byte for byte; further copies get
    // their own deterministic streams.
    Rng rng((options.seed + static_cast<std::uint64_t>(k)) ^ 0xA11BABAULL);
    const std::string prefix = k == 0 ? "" : "r" + std::to_string(k) + "-";
    BuildCopy(app, demo, rng, prefix, options.capacity_scale);
  }
  app.Finalize();
  return demo;
}

}  // namespace topfull::apps

// Real-trace demo application (paper §5 "Real-trace Demo implementation"):
// a 127-microservice deployment reconstructed from the Alibaba 2021 trace
// with 25 external APIs and 43 execution paths in total; 8 of the APIs have
// branching execution paths (up to 6 alternatives), and 13 microservices
// are designed to be overloadable (lower capacity, mirroring the trace's
// CPU-util>0.8 microservices).
//
// The paper's demo app is itself a synthetic reconstruction (simple RPC
// servers doing sorting/arithmetic); we reconstruct with the same published
// shape parameters using a seeded deterministic generator.
#pragma once

#include <memory>
#include <vector>

#include "sim/app.hpp"

namespace topfull::apps {

struct AlibabaDemoOptions {
  std::uint64_t seed = 2021;   ///< topology seed (fixed => same app each run)
  double capacity_scale = 1.0;
  /// Scaled-up topology: `replicas` independent copies of the 127-service
  /// deployment (distinct service/API names, per-copy seeds) in one
  /// Application — 127*K services, 25*K APIs. Copies never share services,
  /// so the shard partitioner sees >= K clusters and a sharded run
  /// schedules whole copies onto shards with zero cross-shard edges; this
  /// is the "scaled-up Alibaba topology" target of the sharded-DES bench.
  /// replicas == 1 is byte-identical to the original demo.
  int replicas = 1;
};

struct AlibabaDemo {
  std::unique_ptr<sim::Application> app;
  /// The 13 services designed to be overloadable.
  std::vector<sim::ServiceId> overloadable;
};

AlibabaDemo MakeAlibabaDemo(const AlibabaDemoOptions& options = {});

}  // namespace topfull::apps

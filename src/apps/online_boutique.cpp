#include "apps/online_boutique.hpp"

#include <algorithm>
#include <cmath>

namespace topfull::apps {
namespace {

int ScaledPods(int pods, double scale) {
  return std::max(1, static_cast<int>(std::lround(pods * scale)));
}

}  // namespace

std::unique_ptr<sim::Application> MakeOnlineBoutique(const BoutiqueOptions& options) {
  auto app = std::make_unique<sim::Application>("online-boutique", options.seed);
  const double s = options.capacity_scale;

  auto add = [&](const char* name, double mean_ms, int threads, int pods,
                 bool probe = false) {
    sim::ServiceConfig config;
    config.name = name;
    config.mean_service_ms = mean_ms;
    config.threads = threads;
    config.initial_pods = ScaledPods(pods, s);
    // Bound each pod's queue to ~1.5x the SLO's worth of work: requests
    // queued deeper are doomed to violate the SLO anyway (so uncontrolled
    // overload still collapses goodput), while bounded queues keep the
    // latency signal from going completely stale.
    config.max_queue = std::clamp(
        static_cast<int>(config.threads * 1500.0 / config.mean_service_ms), 64, 1024);
    if (probe && options.probe_failures) {
      config.probe_failures_enabled = true;
      config.probe_queue_threshold = 300;
      config.probe_failure_count = 2;
      config.restart_delay = Seconds(15);
    }
    return app->AddService(config);
  };

  // Capacity per pod = threads / mean_service_time. Totals (x1 scale):
  //   frontend 8000, productcatalog 1500, currency 4000, ad 2000,
  //   cart 2000, redis 8000, recommendation 500, checkout 400,
  //   payment 1600, shipping 1600, email 1600 (rps).
  const sim::ServiceId frontend = add("frontend", 2.0, 8, 2);
  const sim::ServiceId productcatalog = add("productcatalog", 8.0, 4, 3);
  const sim::ServiceId recommendation = add("recommendation", 16.0, 4, 2, /*probe=*/true);
  const sim::ServiceId cart = add("cart", 4.0, 4, 2);
  const sim::ServiceId redis = add("redis-cart", 1.0, 8, 1);
  const sim::ServiceId checkout = add("checkout", 20.0, 4, 2);
  const sim::ServiceId currency = add("currency", 2.0, 4, 2);
  const sim::ServiceId payment = add("payment", 5.0, 4, 2);
  const sim::ServiceId shipping = add("shipping", 5.0, 4, 2);
  const sim::ServiceId email = add("email", 5.0, 4, 2);
  const sim::ServiceId ad = add("ad", 4.0, 4, 2);

  using sim::CallNode;
  auto leaf = [](sim::ServiceId id, double work = 1.0) {
    return CallNode{id, work, false, {}};
  };

  // Business priorities: smaller = higher. Paper Fig. 11: API1 > API2 >
  // API3 > API4 (> API5).
  const int p1 = options.distinct_priorities ? 1 : 1;
  const int p2 = options.distinct_priorities ? 2 : 1;
  const int p3 = options.distinct_priorities ? 3 : 1;
  const int p4 = options.distinct_priorities ? 4 : 1;
  const int p5 = options.distinct_priorities ? 5 : 1;

  // API 1: POST /checkout — frontend first re-reads the cart and catalog
  // (ProductCatalog work happens BEFORE the Checkout bottleneck, so
  // requests later shed or stalled at Checkout have already consumed
  // ProductCatalog capacity — the waste pattern of Figs. 1/12), then calls
  // checkout -> {currency, cart(redis), payment, shipping, email}.
  {
    sim::ApiSpec spec("postcheckout", p1);
    CallNode cart_node = leaf(cart);
    cart_node.children.push_back(leaf(redis));
    CallNode checkout_node = leaf(checkout);
    checkout_node.children = {leaf(currency), cart_node, leaf(payment),
                              leaf(shipping), leaf(email)};
    CallNode root = leaf(frontend);
    root.children = {leaf(productcatalog), checkout_node};
    spec.AddPath(sim::ExecutionPath{root, 1.0, {}});
    app->AddApi(std::move(spec));
  }
  // API 2: GET /product — frontend -> productcatalog, recommendation
  // (-> productcatalog), ad, currency. ProductCatalog is hit before
  // Recommendation, so requests shed at Recommendation waste
  // ProductCatalog capacity (the Fig. 12 waste pattern).
  {
    sim::ApiSpec spec("getproduct", p2);
    CallNode recommend_node = leaf(recommendation);
    recommend_node.children.push_back(leaf(productcatalog, 0.5));
    CallNode root = leaf(frontend);
    root.children = {leaf(productcatalog), recommend_node, leaf(ad), leaf(currency)};
    spec.AddPath(sim::ExecutionPath{root, 1.0, {}});
    app->AddApi(std::move(spec));
  }
  // API 3: GET /cart — frontend -> cart(redis), recommendation
  // (-> productcatalog), shipping quote, currency.
  {
    sim::ApiSpec spec("getcart", p3);
    CallNode cart_node = leaf(cart);
    cart_node.children.push_back(leaf(redis));
    CallNode recommend_node = leaf(recommendation);
    recommend_node.children.push_back(leaf(productcatalog, 0.5));
    CallNode root = leaf(frontend);
    root.children = {cart_node, recommend_node, leaf(shipping, 0.5), leaf(currency)};
    spec.AddPath(sim::ExecutionPath{root, 1.0, {}});
    app->AddApi(std::move(spec));
  }
  // API 4: POST /cart — frontend -> productcatalog, cart(redis).
  {
    sim::ApiSpec spec("postcart", p4);
    CallNode cart_node = leaf(cart);
    cart_node.children.push_back(leaf(redis));
    CallNode root = leaf(frontend);
    root.children = {leaf(productcatalog), cart_node};
    spec.AddPath(sim::ExecutionPath{root, 1.0, {}});
    app->AddApi(std::move(spec));
  }
  // API 5: POST /cart/empty — frontend -> cart(redis).
  {
    sim::ApiSpec spec("emptycart", p5);
    CallNode cart_node = leaf(cart);
    cart_node.children.push_back(leaf(redis));
    CallNode root = leaf(frontend);
    root.children = {cart_node};
    spec.AddPath(sim::ExecutionPath{root, 1.0, {}});
    app->AddApi(std::move(spec));
  }

  app->Finalize();
  return app;
}

}  // namespace topfull::apps

// Online Boutique (Google microservices-demo): 11 microservices, 5 external
// APIs (paper §6: API 1..5 = postcheckout, getproduct, getcart, postcart,
// emptycart). Topology follows Fig. 2/3 of the paper; capacities are chosen
// so that a uniform traffic surge overloads Recommendation, Checkout and
// ProductCatalog — the configuration the paper's starvation analysis uses.
#pragma once

#include <memory>

#include "sim/app.hpp"

namespace topfull::apps {

struct BoutiqueOptions {
  std::uint64_t seed = 42;
  /// Scales every service's pod count (provisioning level).
  double capacity_scale = 1.0;
  /// Distinct business priorities postcheckout > getproduct > getcart >
  /// postcart > emptycart (Fig. 11/12). When false, all APIs share one
  /// priority (Fig. 8: "we regarded all APIs as having the same business
  /// priority").
  bool distinct_priorities = false;
  /// Enable the liveness-probe pod-failure model on Recommendation
  /// (reproduces the crash-looping pods of Fig. 15).
  bool probe_failures = false;
};

/// API indices within the returned application (paper numbering).
enum BoutiqueApi : sim::ApiId {
  kPostCheckout = 0,  // API 1
  kGetProduct = 1,    // API 2
  kGetCart = 2,       // API 3
  kPostCart = 3,      // API 4
  kEmptyCart = 4,     // API 5
};

std::unique_ptr<sim::Application> MakeOnlineBoutique(const BoutiqueOptions& options = {});

}  // namespace topfull::apps

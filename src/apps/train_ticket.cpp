#include "apps/train_ticket.hpp"

#include <algorithm>
#include <cmath>

namespace topfull::apps {
namespace {

int ScaledPods(int pods, double scale) {
  return std::max(1, static_cast<int>(std::lround(pods * scale)));
}

}  // namespace

std::unique_ptr<sim::Application> MakeTrainTicket(const TrainTicketOptions& options) {
  auto app = std::make_unique<sim::Application>("train-ticket", options.seed);
  const double s = options.capacity_scale;

  auto add = [&](const char* name, double mean_ms, int threads, int pods,
                 bool probe = false) {
    sim::ServiceConfig config;
    config.name = name;
    config.mean_service_ms = mean_ms;
    config.threads = threads;
    config.initial_pods = ScaledPods(pods, s);
    // Bound each pod's queue to ~1.5x the SLO's worth of work: requests
    // queued deeper are doomed to violate the SLO anyway (so uncontrolled
    // overload still collapses goodput), while bounded queues keep the
    // latency signal from going completely stale.
    config.max_queue = std::clamp(
        static_cast<int>(config.threads * 1500.0 / config.mean_service_ms), 64, 1024);
    if (probe && options.probe_failures) {
      config.probe_failures_enabled = true;
      config.probe_queue_threshold = config.max_queue * 4 / 5;
      config.probe_failure_count = 3;
      config.restart_delay = Seconds(10);
    }
    return app->AddService(config);
  };

  // Entry and auth plane.
  const sim::ServiceId ui = add("ts-ui-dashboard", 2.0, 8, 4);
  const sim::ServiceId auth = add("ts-auth", 3.0, 4, 4);
  const sim::ServiceId user = add("ts-user", 3.0, 4, 2);
  add("ts-verification-code", 3.0, 4, 1);

  // Travel / ticket query plane.
  const sim::ServiceId travel = add("ts-travel", 25.0, 4, 4, /*probe=*/true);     // ~640 rps
  const sim::ServiceId travel2 = add("ts-travel2", 25.0, 4, 2, /*probe=*/true);   // ~320 rps
  const sim::ServiceId ticketinfo = add("ts-ticketinfo", 8.0, 4, 4);
  const sim::ServiceId basic = add("ts-basic", 10.0, 4, 4);
  const sim::ServiceId station = add("ts-station", 12.0, 1, 35);  // ~83 rps/pod; Fig. 18 kills 25
  const sim::ServiceId train = add("ts-train", 5.0, 4, 2);
  const sim::ServiceId route = add("ts-route", 6.0, 4, 3);
  const sim::ServiceId price = add("ts-price", 5.0, 4, 2);
  const sim::ServiceId seat = add("ts-seat", 10.0, 4, 3);
  const sim::ServiceId config_svc = add("ts-config", 3.0, 4, 2);

  // Order / payment plane.
  const sim::ServiceId order = add("ts-order", 12.0, 4, 3, /*probe=*/true);
  const sim::ServiceId order_other = add("ts-order-other", 12.0, 4, 2, /*probe=*/true);
  const sim::ServiceId payment = add("ts-payment", 10.0, 4, 2);
  const sim::ServiceId inside_payment = add("ts-inside-payment", 10.0, 4, 2);

  // Food plane.
  const sim::ServiceId food = add("ts-food", 15.0, 4, 2, /*probe=*/true);  // ~533 rps
  const sim::ServiceId food_map = add("ts-food-map", 8.0, 4, 2);
  const sim::ServiceId station_food = add("ts-station-food", 8.0, 4, 2);

  // Services present in the deployment but off these six APIs' paths —
  // Train Ticket runs 41 microservices even though the evaluated APIs
  // exercise a subset (they still consume cluster resources).
  add("ts-contacts", 5.0, 4, 1);
  add("ts-security", 5.0, 4, 1);
  add("ts-consign", 5.0, 4, 1);
  add("ts-consign-price", 5.0, 4, 1);
  add("ts-notification", 5.0, 4, 1);
  add("ts-preserve", 5.0, 4, 1);
  add("ts-preserve-other", 5.0, 4, 1);
  add("ts-cancel", 5.0, 4, 1);
  add("ts-rebook", 5.0, 4, 1);
  add("ts-route-plan", 5.0, 4, 1);
  add("ts-travel-plan", 5.0, 4, 1);
  add("ts-execute", 5.0, 4, 1);
  add("ts-assurance", 5.0, 4, 1);
  add("ts-delivery", 5.0, 4, 1);
  add("ts-admin-basic-info", 5.0, 4, 1);
  add("ts-admin-order", 5.0, 4, 1);
  add("ts-admin-route", 5.0, 4, 1);
  add("ts-admin-travel", 5.0, 4, 1);
  add("ts-admin-user", 5.0, 4, 1);
  add("ts-news", 5.0, 4, 1);

  using sim::CallNode;
  auto leaf = [](sim::ServiceId id, double work = 1.0) {
    return CallNode{id, work, false, {}};
  };
  auto priority = [&](int rank) { return options.distinct_priorities ? rank : 1; };

  // Shared sub-trees.
  auto auth_chain = [&]() {
    CallNode n = leaf(auth, 0.5);
    n.children.push_back(leaf(user, 0.5));
    return n;
  };
  auto basic_chain = [&]() {
    CallNode b = leaf(basic);
    b.children = {leaf(station, 0.5), leaf(train, 0.5), leaf(route, 0.5),
                  leaf(price, 0.5)};
    return b;
  };

  // API 1: high speed ticket query.
  {
    sim::ApiSpec spec("high_speed_ticket", priority(1));
    CallNode ticketinfo_node = leaf(ticketinfo);
    ticketinfo_node.children.push_back(basic_chain());
    CallNode seat_node = leaf(seat);
    seat_node.children = {leaf(order, 0.5), leaf(config_svc, 0.5)};
    CallNode travel_node = leaf(travel);
    travel_node.children = {ticketinfo_node, seat_node, leaf(route, 0.5),
                            leaf(order, 0.3)};
    CallNode root = leaf(ui);
    root.children = {auth_chain(), travel_node};
    spec.AddPath(sim::ExecutionPath{root, 1.0, {}});
    app->AddApi(std::move(spec));
  }
  // API 2: normal speed ticket query (ts-travel2 / ts-order-other plane).
  {
    sim::ApiSpec spec("normal_speed_ticket", priority(2));
    CallNode ticketinfo_node = leaf(ticketinfo);
    ticketinfo_node.children.push_back(basic_chain());
    CallNode seat_node = leaf(seat);
    seat_node.children = {leaf(order_other, 0.5), leaf(config_svc, 0.5)};
    CallNode travel_node = leaf(travel2);
    travel_node.children = {ticketinfo_node, seat_node, leaf(route, 0.5),
                            leaf(order_other, 0.3)};
    CallNode root = leaf(ui);
    root.children = {auth_chain(), travel_node};
    spec.AddPath(sim::ExecutionPath{root, 1.0, {}});
    app->AddApi(std::move(spec));
  }
  // API 3: query order.
  {
    sim::ApiSpec spec("query_order", priority(3));
    CallNode order_node = leaf(order);
    order_node.children.push_back(leaf(station, 0.5));
    CallNode root = leaf(ui);
    root.children = {auth_chain(), order_node};
    spec.AddPath(sim::ExecutionPath{root, 1.0, {}});
    app->AddApi(std::move(spec));
  }
  // API 4: query order other.
  {
    sim::ApiSpec spec("query_order_other", priority(4));
    CallNode order_node = leaf(order_other);
    order_node.children.push_back(leaf(station, 0.5));
    CallNode root = leaf(ui);
    root.children = {auth_chain(), order_node};
    spec.AddPath(sim::ExecutionPath{root, 1.0, {}});
    app->AddApi(std::move(spec));
  }
  // API 5: query food.
  {
    sim::ApiSpec spec("query_food", priority(5));
    CallNode food_map_node = leaf(food_map);
    food_map_node.children.push_back(leaf(station_food, 0.5));
    CallNode travel_node = leaf(travel, 0.3);
    travel_node.children.push_back(leaf(route, 0.5));
    CallNode food_node = leaf(food);
    food_node.children = {food_map_node, travel_node, leaf(station, 0.5)};
    CallNode root = leaf(ui);
    root.children = {auth_chain(), food_node};
    spec.AddPath(sim::ExecutionPath{root, 1.0, {}});
    app->AddApi(std::move(spec));
  }
  // API 6: query payment.
  {
    sim::ApiSpec spec("query_payment", priority(6));
    CallNode pay_node = leaf(inside_payment);
    pay_node.children = {leaf(order, 0.5), leaf(payment, 0.5)};
    CallNode root = leaf(ui);
    root.children = {auth_chain(), pay_node};
    spec.AddPath(sim::ExecutionPath{root, 1.0, {}});
    app->AddApi(std::move(spec));
  }

  app->Finalize();
  return app;
}

}  // namespace topfull::apps

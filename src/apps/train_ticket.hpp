// Train Ticket (FudanSELab): 41 microservices, 6 external APIs
// (paper §6: API 1..6 = high speed ticket, normal speed ticket, query order,
// query order other, query food, query payment). The topology follows the
// benchmark's published call graphs (Fig. 7); capacities make ts-travel,
// ts-travel2 and ts-food the natural bottlenecks under a uniform surge so
// that several independent clusters arise (the Fig. 10 clustering benefit),
// and ts-station runs 35 small pods (the Fig. 18 failure-injection target).
#pragma once

#include <memory>

#include "sim/app.hpp"

namespace topfull::apps {

struct TrainTicketOptions {
  std::uint64_t seed = 7;
  double capacity_scale = 1.0;
  /// Distinct business priorities API1 > API2 > ... > API6.
  bool distinct_priorities = false;
  /// Liveness-probe pod failures on the travel/food/order plane: sustained
  /// queue build-up crash-loops those pods (the failure mode §6.3 observes
  /// on real deployments under surge).
  bool probe_failures = false;
};

enum TrainTicketApi : sim::ApiId {
  kHighSpeedTicket = 0,  // API 1
  kNormalSpeedTicket = 1,
  kQueryOrder = 2,
  kQueryOrderOther = 3,
  kQueryFood = 4,
  kQueryPayment = 5,
};

std::unique_ptr<sim::Application> MakeTrainTicket(const TrainTicketOptions& options = {});

}  // namespace topfull::apps

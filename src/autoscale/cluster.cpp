#include "autoscale/cluster.hpp"

#include <algorithm>

namespace topfull::autoscale {

Cluster::Cluster(des::Simulation* sim, ClusterConfig config)
    : sim_(sim), config_(config), ready_vms_(config.initial_vms) {}

bool Cluster::Reserve(double vcpus) {
  if (used_vcpus_ + vcpus > ReadyVcpus() + 1e-9) return false;
  used_vcpus_ += vcpus;
  return true;
}

void Cluster::Release(double vcpus) {
  used_vcpus_ -= vcpus;
  if (used_vcpus_ < 0.0) used_vcpus_ = 0.0;
}

int Cluster::CordonVms(int n) {
  const int take = std::max(0, std::min(n, ready_vms_ - cordoned_vms_));
  cordoned_vms_ += take;
  return take;
}

int Cluster::UncordonVms(int n) {
  const int back = std::max(0, std::min(n, cordoned_vms_));
  cordoned_vms_ -= back;
  return back;
}

bool Cluster::RequestVm() {
  if (ready_vms_ + pending_vms_ >= config_.max_vms) return false;
  ++pending_vms_;
  sim_->ScheduleAfter(config_.vm_startup, [this]() {
    --pending_vms_;
    ++ready_vms_;
  });
  return true;
}

}  // namespace topfull::autoscale

#include "autoscale/cluster.hpp"

namespace topfull::autoscale {

Cluster::Cluster(des::Simulation* sim, ClusterConfig config)
    : sim_(sim), config_(config), ready_vms_(config.initial_vms) {}

bool Cluster::Reserve(double vcpus) {
  if (used_vcpus_ + vcpus > ReadyVcpus() + 1e-9) return false;
  used_vcpus_ += vcpus;
  return true;
}

void Cluster::Release(double vcpus) {
  used_vcpus_ -= vcpus;
  if (used_vcpus_ < 0.0) used_vcpus_ = 0.0;
}

bool Cluster::RequestVm() {
  if (ready_vms_ + pending_vms_ >= config_.max_vms) return false;
  ++pending_vms_;
  sim_->ScheduleAfter(config_.vm_startup, [this]() {
    --pending_vms_;
    ++ready_vms_;
  });
  return true;
}

}  // namespace topfull::autoscale

// Cluster (VM / vCPU pool) model.
//
// Pods consume vCPUs from ready VMs. When capacity runs out the cluster
// autoscaler boots another VM, which becomes ready only after the VM startup
// delay — the provisioning lag whose effect the paper studies (Fig. 19, §6.3:
// real clouds take ~41-267 s).
#pragma once

#include "common/sim_time.hpp"
#include "des/simulation.hpp"

namespace topfull::autoscale {

struct ClusterConfig {
  double vcpus_per_vm = 48.0;  ///< Azure D48ds_v5 size used in the paper.
  int initial_vms = 1;
  int max_vms = 10;  ///< The paper scales up to 10 worker VMs.
  SimTime vm_startup = Seconds(40);
};

class Cluster {
 public:
  Cluster(des::Simulation* sim, ClusterConfig config);

  /// Attempts to reserve `vcpus`; returns false when ready capacity is
  /// insufficient (caller may then RequestVm and retry later).
  bool Reserve(double vcpus);

  /// Releases previously reserved vCPUs.
  void Release(double vcpus);

  /// Boots one more VM if below max (idempotent per pending VM need:
  /// callers may invoke every sync; it refuses beyond max_vms).
  /// Returns true if a boot was initiated.
  bool RequestVm();

  /// Fault injection: marks up to `n` ready VMs unschedulable (zone
  /// outage, maintenance drain). Cordoned capacity is removed from
  /// ReadyVcpus(), so new reservations fail while existing ones keep
  /// running (FreeVcpus() may read negative in the interim). Returns the
  /// number actually cordoned.
  int CordonVms(int n);

  /// Returns up to `n` previously cordoned VMs to the schedulable pool.
  int UncordonVms(int n);

  int CordonedVms() const { return cordoned_vms_; }

  double ReadyVcpus() const {
    return (ready_vms_ - cordoned_vms_) * config_.vcpus_per_vm;
  }
  double UsedVcpus() const { return used_vcpus_; }
  double FreeVcpus() const { return ReadyVcpus() - used_vcpus_; }
  int ReadyVms() const { return ready_vms_; }
  int PendingVms() const { return pending_vms_; }
  const ClusterConfig& config() const { return config_; }

 private:
  des::Simulation* sim_;
  ClusterConfig config_;
  int ready_vms_ = 0;
  int pending_vms_ = 0;
  int cordoned_vms_ = 0;
  double used_vcpus_ = 0.0;
};

}  // namespace topfull::autoscale

#include "autoscale/hpa.hpp"

#include <algorithm>
#include <cmath>

namespace topfull::autoscale {

HorizontalPodAutoscaler::HorizontalPodAutoscaler(sim::Application* app,
                                                 Cluster* cluster, HpaConfig config)
    : app_(app), cluster_(cluster), config_(config) {
  states_.resize(app_->NumServices());
  for (int i = 0; i < app_->NumServices(); ++i) {
    states_[i].min_pods = std::max(config_.default_min_pods,
                                   app_->service(i).config().initial_pods > 0 ? 1 : 0);
    states_[i].max_pods = config_.default_max_pods;
    // Account for the pods the service starts with.
    const auto& svc = app_->service(i);
    states_[i].reserved_vcpus =
        svc.TotalPods() * svc.config().vcpus_per_pod;
    cluster_->Reserve(states_[i].reserved_vcpus);
  }
}

void HorizontalPodAutoscaler::SetLimits(sim::ServiceId service, int min_pods,
                                        int max_pods) {
  states_[service].min_pods = min_pods;
  states_[service].max_pods = max_pods;
}

void HorizontalPodAutoscaler::Exclude(sim::ServiceId service) {
  states_[service].managed = false;
}

void HorizontalPodAutoscaler::Start() {
  if (started_) return;
  started_ = true;
  app_->sim().SchedulePeriodic(app_->sim().Now() + config_.sync_period,
                               config_.sync_period, [this]() { Sync(); });
}

void HorizontalPodAutoscaler::Sync() {
  const auto& snap = app_->metrics().Latest();
  if (snap.services.empty()) return;
  bool need_vm = false;
  for (int id = 0; id < app_->NumServices(); ++id) {
    State& st = states_[id];
    if (!st.managed) continue;
    auto& svc = app_->service(id);
    const int running = svc.RunningPods();
    const int total = svc.TotalPods();
    if (running == 0 && total > 0) continue;  // pods still starting
    const double util = snap.services[id].cpu_utilization;
    const double ratio = util / config_.target_utilization;
    int desired = total;
    if (running > 0 && std::abs(ratio - 1.0) > config_.tolerance) {
      desired = static_cast<int>(std::ceil(static_cast<double>(running) * ratio));
    } else if (running == 0 && total == 0) {
      desired = st.min_pods;
    }
    desired = std::clamp(desired, st.min_pods, st.max_pods);

    if (desired > total) {
      st.below_count = 0;
      // Admit as many new pods as the vCPU pool allows right now.
      const double per_pod = svc.config().vcpus_per_pod;
      int grant = 0;
      for (int k = 0; k < desired - total; ++k) {
        if (cluster_->Reserve(per_pod)) {
          ++grant;
        } else {
          need_vm = true;
          break;
        }
      }
      if (grant > 0) {
        st.reserved_vcpus += grant * per_pod;
        ScaleTo(id, total + grant);
      }
    } else if (desired < total) {
      if (++st.below_count >= config_.scale_down_stable_syncs) {
        const double per_pod = svc.config().vcpus_per_pod;
        const int removed = total - desired;
        ScaleTo(id, desired);
        cluster_->Release(removed * per_pod);
        st.reserved_vcpus -= removed * per_pod;
        st.below_count = 0;
      }
    } else {
      st.below_count = 0;
    }
  }
  if (need_vm) cluster_->RequestVm();
}

void HorizontalPodAutoscaler::ScaleTo(sim::ServiceId id, int desired) {
  app_->service(id).SetPodCount(desired, config_.pod_startup);
}

double HorizontalPodAutoscaler::ReservedVcpus() const {
  double total = 0.0;
  for (const auto& st : states_) total += st.reserved_vcpus;
  return total;
}

}  // namespace topfull::autoscale

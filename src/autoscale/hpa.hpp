// Horizontal Pod Autoscaler (Kubernetes-HPA-like), the paper's autoscaler
// baseline (§6.3).
//
// Every sync period, for every managed service:
//   desired = ceil(running_pods * observed_cpu / target_cpu)
// with a tolerance dead-band, per-service min/max, a scale-down
// stabilisation window, pod startup latency, and vCPU admission against the
// Cluster (booting VMs when the pool is exhausted).
#pragma once

#include <vector>

#include "autoscale/cluster.hpp"
#include "sim/app.hpp"

namespace topfull::autoscale {

struct HpaConfig {
  double target_utilization = 0.6;
  double tolerance = 0.1;  ///< no action while |util/target - 1| <= tolerance.
  SimTime sync_period = Seconds(15);
  SimTime pod_startup = Seconds(10);
  /// Scale-down only after the desired count stayed below current for this
  /// many consecutive syncs (k8s stabilisation window analogue).
  int scale_down_stable_syncs = 8;
  int default_min_pods = 1;
  int default_max_pods = 200;
};

class HorizontalPodAutoscaler {
 public:
  HorizontalPodAutoscaler(sim::Application* app, Cluster* cluster, HpaConfig config);

  /// Restricts scaling bounds for one service.
  void SetLimits(sim::ServiceId service, int min_pods, int max_pods);

  /// Excludes a service from autoscaling (fixed manual size).
  void Exclude(sim::ServiceId service);

  /// Starts the periodic sync loop at the current sim time + sync_period.
  void Start();

  /// One reconciliation pass (exposed for tests).
  void Sync();

  /// Total vCPUs currently reserved for pods of managed services.
  double ReservedVcpus() const;

 private:
  struct State {
    int min_pods = 1;
    int max_pods = 200;
    bool managed = true;
    int below_count = 0;      ///< consecutive syncs with desired < current.
    double reserved_vcpus = 0.0;
  };

  void ScaleTo(sim::ServiceId id, int desired);

  sim::Application* app_;
  Cluster* cluster_;
  HpaConfig config_;
  std::vector<State> states_;
  bool started_ = false;
};

}  // namespace topfull::autoscale

#include "baselines/breakwater.hpp"

#include <algorithm>

namespace topfull::baselines {

BreakwaterAdmission::BreakwaterAdmission(sim::Application* app, BreakwaterConfig config)
    : app_(app), config_(config) {
  pods_.resize(app_->NumServices());
}

void BreakwaterAdmission::Install() {
  if (installed_) return;
  installed_ = true;
  for (int s = 0; s < app_->NumServices(); ++s) {
    app_->service(s).SetAdmission(this);
  }
  app_->sim().SchedulePeriodic(app_->sim().Now() + config_.update_period,
                               config_.update_period, [this]() { Update(); });
}

BreakwaterAdmission::PodCtl& BreakwaterAdmission::Ctl(sim::ServiceId service,
                                                      int pod_index) {
  auto& per_service = pods_[service];
  while (static_cast<int>(per_service.size()) <= pod_index) {
    per_service.emplace_back(config_.initial_rate);
  }
  return per_service[pod_index];
}

bool BreakwaterAdmission::Admit(const sim::RequestInfo& /*info*/,
                                sim::ServiceId service, int pod_index, SimTime now) {
  PodCtl& ctl = Ctl(service, pod_index);
  // AQM: shed when the pod's instantaneous queueing delay blows past the
  // target regardless of available credits.
  const double hol = ToSeconds(app_->service(service).pod(pod_index).HeadOfLineWait());
  if (hol > config_.aqm_factor * config_.target_delay_s) return false;
  return ctl.bucket.TryAdmit(now);
}

double BreakwaterAdmission::CreditRate(sim::ServiceId service, int pod_index) const {
  const auto& per_service = pods_[service];
  if (pod_index >= static_cast<int>(per_service.size())) return config_.initial_rate;
  return per_service[pod_index].rate;
}

void BreakwaterAdmission::Update() {
  for (int s = 0; s < app_->NumServices(); ++s) {
    auto& svc = app_->service(s);
    auto& per_service = pods_[s];
    for (int p = 0; p < static_cast<int>(per_service.size()) && p < svc.PodCount();
         ++p) {
      PodCtl& ctl = per_service[p];
      const double delay = ToSeconds(svc.pod(p).HeadOfLineWait());
      if (delay < config_.target_delay_s) {
        ctl.rate += config_.additive_rps;
      } else {
        const double overload = (delay - config_.target_delay_s) / config_.target_delay_s;
        ctl.rate *= 1.0 - std::min(config_.max_decrease, config_.beta * overload);
      }
      ctl.rate = std::max(config_.min_rate, ctl.rate);
      ctl.bucket.SetRate(ctl.rate);
    }
  }
}

}  // namespace topfull::baselines

// Breakwater overload control (Cho et al., OSDI'20), as re-implemented by
// the TopFull authors for their baseline comparison (§5).
//
// Breakwater is credit-based admission for single-tier RPCs. Following the
// TopFull implementation, each gRPC edge between pods is treated as a
// client-server pair: every pod advertises a credit budget (modelled as a
// token rate) that its upstreams may send; the budget grows additively while
// the pod's queueing delay is below the target and shrinks multiplicatively
// in proportion to the overload above it. An AQM guard sheds arrivals
// whenever the instantaneous queueing delay exceeds twice the target.
// Because shedding is uncorrelated across tiers, a request crossing k
// overloaded pods survives with probability ~(1-p)^k — the multi-tier
// weakness §6.1 analyses.
#pragma once

#include <vector>

#include "admit/atomic_token_bucket.hpp"
#include "sim/app.hpp"

namespace topfull::baselines {

struct BreakwaterConfig {
  /// Queueing-delay target (Breakwater's d_t). The paper's uses are
  /// us-scale RPCs; our pods serve ms-scale requests, so the target scales
  /// with service time. 20 ms works for all benchmark apps.
  double target_delay_s = 0.020;
  /// AQM drop threshold as a multiple of the target.
  double aqm_factor = 2.0;
  /// Additive credit-rate increase per update below target (rps).
  double additive_rps = 50.0;
  /// Multiplicative-decrease aggressiveness above the target.
  double beta = 0.4;
  double max_decrease = 0.5;
  /// Update cadence (Breakwater updates per RTT; pods here run ms-scale
  /// requests, so 100 ms plays that role).
  SimTime update_period = Millis(100);
  /// Initial per-pod credit rate (rps).
  double initial_rate = 200.0;
  double min_rate = 5.0;
};

class BreakwaterAdmission : public sim::ServiceAdmission {
 public:
  BreakwaterAdmission(sim::Application* app, BreakwaterConfig config = {});

  /// Installs on every microservice and starts the credit update loop.
  void Install();

  bool Admit(const sim::RequestInfo& info, sim::ServiceId service, int pod_index,
             SimTime now) override;

  /// One credit-update pass (exposed for tests).
  void Update();

  double CreditRate(sim::ServiceId service, int pod_index) const;

 private:
  struct PodCtl {
    double rate;
    // The plane's lock-free bucket; sequential use is bit-identical to the
    // historical common::TokenBucket (same refill math — DESIGN.md §15).
    admit::AtomicTokenBucket bucket;
    explicit PodCtl(double rate_rps)
        : rate(rate_rps), bucket(rate_rps, std::max(4.0, rate_rps / 10.0)) {}
  };

  PodCtl& Ctl(sim::ServiceId service, int pod_index);

  sim::Application* app_;
  BreakwaterConfig config_;
  std::vector<std::vector<PodCtl>> pods_;
  bool installed_ = false;
};

}  // namespace topfull::baselines

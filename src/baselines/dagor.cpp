#include "baselines/dagor.hpp"

#include <algorithm>

namespace topfull::baselines {

DagorAdmission::DagorAdmission(sim::Application* app, DagorConfig config)
    : app_(app), config_(config) {
  max_compound_ = config_.business_levels * config_.user_levels - 1;
  pods_.resize(app_->NumServices());
}

void DagorAdmission::Install() {
  if (installed_) return;
  installed_ = true;
  for (int s = 0; s < app_->NumServices(); ++s) {
    app_->service(s).SetAdmission(this);
  }
  app_->sim().SchedulePeriodic(app_->sim().Now() + config_.update_period,
                               config_.update_period, [this]() { Update(); });
}

int DagorAdmission::Compound(const sim::RequestInfo& info) const {
  const int b = std::clamp(info.business_priority, 0, config_.business_levels - 1);
  const int u = std::clamp(info.user_priority, 0, config_.user_levels - 1);
  return b * config_.user_levels + u;
}

DagorAdmission::PodCtl& DagorAdmission::Ctl(sim::ServiceId service, int pod_index) {
  auto& per_service = pods_[service];
  while (static_cast<int>(per_service.size()) <= pod_index) {
    PodCtl ctl;
    ctl.threshold = max_compound_;  // fresh pods admit everything
    ctl.histogram.assign(static_cast<std::size_t>(max_compound_) + 1, 0);
    per_service.push_back(std::move(ctl));
  }
  return per_service[pod_index];
}

bool DagorAdmission::Admit(const sim::RequestInfo& info, sim::ServiceId service,
                           int pod_index, SimTime /*now*/) {
  PodCtl& ctl = Ctl(service, pod_index);
  const int priority = Compound(info);
  ++ctl.arrived;
  ++ctl.histogram[static_cast<std::size_t>(priority)];
  if (priority <= ctl.threshold) {
    ++ctl.admitted;
    return true;
  }
  return false;
}

int DagorAdmission::Threshold(sim::ServiceId service, int pod_index) const {
  const auto& per_service = pods_[service];
  if (pod_index >= static_cast<int>(per_service.size())) return max_compound_;
  return per_service[pod_index].threshold;
}

void DagorAdmission::Update() {
  for (int s = 0; s < app_->NumServices(); ++s) {
    auto& svc = app_->service(s);
    auto& per_service = pods_[s];
    for (int p = 0; p < static_cast<int>(per_service.size()) && p < svc.PodCount();
         ++p) {
      PodCtl& ctl = per_service[p];
      if (ctl.arrived == 0) {
        // Idle pod: decay towards fully open.
        ctl.threshold = max_compound_;
        continue;
      }
      const bool overloaded =
          ToSeconds(svc.pod(p).HeadOfLineWait()) > config_.queue_delay_threshold_s;
      // Target admitted volume for the next window, from the histogram of
      // the last window's arrivals.
      double target;
      if (overloaded) {
        target = static_cast<double>(ctl.admitted) * (1.0 - config_.alpha);
      } else {
        target = static_cast<double>(ctl.admitted) * (1.0 + config_.beta) + 1.0;
      }
      // Choose the largest threshold whose cumulative arrivals stay within
      // the target (DAGOR's histogram-guided compound level search).
      std::uint64_t cumulative = 0;
      int threshold = -1;  // admitting nothing
      for (int level = 0; level <= max_compound_; ++level) {
        cumulative += ctl.histogram[static_cast<std::size_t>(level)];
        if (static_cast<double>(cumulative) <= target) {
          threshold = level;
        } else {
          break;
        }
      }
      if (!overloaded && threshold >= ctl.threshold) {
        // Keep opening up even when the histogram is saturated.
        threshold = std::min(max_compound_,
                             std::max(threshold, ctl.threshold + config_.user_levels / 8));
      }
      ctl.threshold = std::clamp(threshold, 0, max_compound_);
      std::fill(ctl.histogram.begin(), ctl.histogram.end(), 0);
      ctl.admitted = 0;
      ctl.arrived = 0;
    }
  }
}

}  // namespace topfull::baselines

// DAGOR overload control (Zhou et al., SoCC'18), as re-implemented by the
// TopFull authors for their baseline comparison (§5).
//
// Every request receives a business priority (per API type) and a random
// user priority in [0, 127] at the entry; sub-requests inherit both. Each
// pod keeps a compound admission threshold over (business, user) priority
// and admits a sub-request only when its compound priority is within the
// threshold — giving the consistent admission standard across microservices
// that DAGOR is known for. Per second, each pod adapts its threshold from
// its queueing delay: shed ~5 % of the admitted load when overloaded, admit
// ~1 % more otherwise (the 0.05 / 0.01 steps discussed around Fig. 13).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/app.hpp"

namespace topfull::baselines {

struct DagorConfig {
  /// Queueing-delay threshold above which a pod declares overload
  /// (DAGOR's WeChat deployment uses ~20 ms average queueing time).
  double queue_delay_threshold_s = 0.020;
  /// Fraction of admitted load shed per adaptation when overloaded.
  double alpha = 0.05;
  /// Fractional admission growth per adaptation when not overloaded.
  double beta = 0.01;
  SimTime update_period = Seconds(1);
  /// Business priority levels (0..levels-1); user priorities are 0..127.
  int business_levels = 8;
  int user_levels = 128;
};

class DagorAdmission : public sim::ServiceAdmission {
 public:
  DagorAdmission(sim::Application* app, DagorConfig config = {});

  /// Installs per-service admission on every microservice and starts the
  /// per-pod threshold adaptation loop.
  void Install();

  bool Admit(const sim::RequestInfo& info, sim::ServiceId service, int pod_index,
             SimTime now) override;

  /// One adaptation pass (exposed for tests).
  void Update();

  /// Current threshold of a pod (compound priority; admit iff P <= T).
  int Threshold(sim::ServiceId service, int pod_index) const;

 private:
  struct PodCtl {
    int threshold = 0;                 ///< compound priority threshold
    std::vector<std::uint32_t> histogram;  ///< arrivals per compound priority
    std::uint64_t admitted = 0;
    std::uint64_t arrived = 0;
  };

  int Compound(const sim::RequestInfo& info) const;
  PodCtl& Ctl(sim::ServiceId service, int pod_index);

  sim::Application* app_;
  DagorConfig config_;
  int max_compound_;
  std::vector<std::vector<PodCtl>> pods_;  // [service][pod]
  bool installed_ = false;
};

}  // namespace topfull::baselines

#include "baselines/static_limit.hpp"

#include <algorithm>

namespace topfull::baselines {

StaticLimitAdmission::StaticLimitAdmission(sim::Application* app,
                                           double rate_per_api,
                                           double burst_fraction,
                                           double min_burst)
    : app_(app), rate_per_api_(rate_per_api) {
  if (rate_per_api <= 0.0) return;
  const double burst = std::max(min_burst, rate_per_api * burst_fraction);
  buckets_.reserve(static_cast<std::size_t>(app->NumApis()));
  for (int i = 0; i < app->NumApis(); ++i) buckets_.emplace_back(rate_per_api, burst);
}

void StaticLimitAdmission::Install() { app_->SetEntryAdmission(this); }

bool StaticLimitAdmission::Admit(sim::ApiId api, SimTime now) {
  if (buckets_.empty()) return true;
  return buckets_[static_cast<std::size_t>(api)].TryAdmit(now);
}

}  // namespace topfull::baselines

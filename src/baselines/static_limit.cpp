#include "baselines/static_limit.hpp"

#include <algorithm>
#include <memory>

namespace topfull::baselines {

StaticLimitAdmission::StaticLimitAdmission(sim::Application* app,
                                           double rate_per_api,
                                           double burst_fraction,
                                           double min_burst)
    : app_(app), rate_per_api_(rate_per_api) {
  if (rate_per_api <= 0.0) return;
  const double burst = std::max(min_burst, rate_per_api * burst_fraction);
  slots_.reserve(static_cast<std::size_t>(app->NumApis()));
  for (int i = 0; i < app->NumApis(); ++i) {
    slots_.push_back(plane_.Register(
        "entry", app->api(i).name(),
        std::make_shared<admit::TokenBucketAdmitter>(rate_per_api, burst)));
  }
  gate_ = admit::CachedGate(&plane_);
}

void StaticLimitAdmission::Install() { app_->SetEntryAdmission(this); }

bool StaticLimitAdmission::Admit(sim::ApiId api, SimTime now) {
  if (slots_.empty()) return true;
  admit::AdmitRequest req;
  req.now = now;
  return gate_.TryAdmit(slots_[static_cast<std::size_t>(api)], req);
}

}  // namespace topfull::baselines

// Static (non-adaptive) entry rate limiter baseline.
//
// The simplest overload "control" an operator can deploy: a fixed per-API
// token bucket at the gateway, provisioned once and never adjusted. It is
// the control group of the scenario matrix — scenarios that require
// *adaptation* (metastable-trap escape, retry-storm damping) are expected
// to defeat it, which is exactly what the invariant expectations encode.
#pragma once

#include <vector>

#include "common/token_bucket.hpp"
#include "sim/admission.hpp"
#include "sim/app.hpp"

namespace topfull::baselines {

class StaticLimitAdmission : public sim::EntryAdmission {
 public:
  /// `rate_per_api` <= 0 leaves every API uncapped (the limiter admits
  /// everything — indistinguishable from no control, but still exercises
  /// the admission path).
  StaticLimitAdmission(sim::Application* app, double rate_per_api,
                       double burst_fraction = 0.25, double min_burst = 4.0);

  /// Installs this limiter as the application's entry admission.
  void Install();

  // sim::EntryAdmission:
  bool Admit(sim::ApiId api, SimTime now) override;

  double rate_per_api() const { return rate_per_api_; }

 private:
  sim::Application* app_;
  double rate_per_api_;
  std::vector<TokenBucket> buckets_;  ///< empty when uncapped
};

}  // namespace topfull::baselines

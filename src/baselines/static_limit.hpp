// Static (non-adaptive) entry rate limiter baseline.
//
// The simplest overload "control" an operator can deploy: a fixed per-API
// token bucket at the gateway, provisioned once and never adjusted. It is
// the control group of the scenario matrix — scenarios that require
// *adaptation* (metastable-trap escape, retry-storm damping) are expected
// to defeat it, which is exactly what the invariant expectations encode.
//
// Backed by the concurrent admission plane (admit::AdmissionPlane) so the
// lock-free admit path is continuously exercised by every scenario-matrix
// cell; driven sequentially by the sim it is bit-identical to the historical
// per-API TokenBucket vector (DESIGN.md §15).
#pragma once

#include <vector>

#include "admit/plane.hpp"
#include "sim/admission.hpp"
#include "sim/app.hpp"

namespace topfull::baselines {

class StaticLimitAdmission : public sim::EntryAdmission {
 public:
  /// `rate_per_api` <= 0 leaves every API uncapped (the limiter admits
  /// everything — indistinguishable from no control, but still exercises
  /// the admission path).
  StaticLimitAdmission(sim::Application* app, double rate_per_api,
                       double burst_fraction = 0.25, double min_burst = 4.0);

  /// Installs this limiter as the application's entry admission.
  void Install();

  // sim::EntryAdmission:
  bool Admit(sim::ApiId api, SimTime now) override;

  double rate_per_api() const { return rate_per_api_; }
  const admit::AdmissionPlane& admission_plane() const { return plane_; }

 private:
  sim::Application* app_;
  double rate_per_api_;
  admit::AdmissionPlane plane_;
  admit::CachedGate gate_;
  std::vector<int> slots_;  ///< empty when uncapped
};

}  // namespace topfull::baselines

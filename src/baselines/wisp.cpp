#include "baselines/wisp.hpp"

#include <algorithm>

namespace topfull::baselines {
namespace {

/// DFS order of a call tree (parents before children — the order in which
/// services spend work on a request).
void DfsOrder(const sim::CallNode& node, std::vector<sim::ServiceId>& out) {
  if (node.service != sim::kNoService) out.push_back(node.service);
  for (const auto& child : node.children) DfsOrder(child, out);
}

}  // namespace

WispAdmission::WispAdmission(sim::Application* app, WispConfig config)
    : app_(app), config_(config) {
  pods_.resize(app_->NumServices());
  admitted_window_.assign(static_cast<std::size_t>(app_->NumServices()), 0);
  downstream_loss_window_.assign(static_cast<std::size_t>(app_->NumServices()), 0);
}

void WispAdmission::Install() {
  if (installed_) return;
  installed_ = true;
  for (int s = 0; s < app_->NumServices(); ++s) {
    app_->service(s).SetAdmission(this);
  }
  app_->sim().SchedulePeriodic(app_->sim().Now() + config_.update_period,
                               config_.update_period, [this]() { Update(); });
}

WispAdmission::PodCtl& WispAdmission::Ctl(sim::ServiceId service, int pod_index) {
  auto& per_service = pods_[service];
  while (static_cast<int>(per_service.size()) <= pod_index) {
    per_service.emplace_back(config_.initial_rate);
  }
  return per_service[pod_index];
}

bool WispAdmission::Admit(const sim::RequestInfo& info, sim::ServiceId service,
                          int pod_index, SimTime now) {
  PodCtl& ctl = Ctl(service, pod_index);
  if (ctl.bucket.TryAdmit(now)) {
    ++admitted_window_[static_cast<std::size_t>(service)];
    return true;
  }
  // This rejection wastes the work every upstream service already spent on
  // the request — report it to them (WISP's children->parent admission-rate
  // propagation). The first execution path approximates the request's
  // actual path for branching APIs.
  if (info.api != sim::kNoApi) {
    std::vector<sim::ServiceId> order;
    DfsOrder(app_->api(info.api).paths().front().root, order);
    for (const sim::ServiceId s : order) {
      if (s == service) break;
      ++downstream_loss_window_[static_cast<std::size_t>(s)];
    }
  }
  return false;
}

double WispAdmission::RateLimit(sim::ServiceId service, int pod_index) const {
  const auto& per_service = pods_[service];
  if (pod_index >= static_cast<int>(per_service.size())) return config_.initial_rate;
  return per_service[pod_index].rate;
}

void WispAdmission::Update() {
  for (int s = 0; s < app_->NumServices(); ++s) {
    auto& svc = app_->service(s);
    auto& per_service = pods_[s];
    const double admitted =
        static_cast<double>(admitted_window_[static_cast<std::size_t>(s)]);
    const double loss =
        static_cast<double>(downstream_loss_window_[static_cast<std::size_t>(s)]);
    const double loss_ratio = admitted > 0.0 ? std::min(1.0, loss / admitted) : 0.0;
    for (int p = 0; p < static_cast<int>(per_service.size()) && p < svc.PodCount();
         ++p) {
      PodCtl& ctl = per_service[p];
      const double delay = ToSeconds(svc.pod(p).HeadOfLineWait());
      if (delay > config_.target_delay_s) {
        // Local overload: multiplicative decrease like the other AQMs.
        const double overload = (delay - config_.target_delay_s) / config_.target_delay_s;
        ctl.rate *= 1.0 - std::min(0.5, config_.beta * overload);
      } else if (loss_ratio > 0.05) {
        // Downstream is rejecting what we forward: shed here instead, as
        // far upstream as possible.
        ctl.rate *= 1.0 - std::min(0.5, config_.downstream_weight * loss_ratio);
      } else {
        ctl.rate += config_.additive_rps;
      }
      ctl.rate = std::max(config_.min_rate, ctl.rate);
      ctl.bucket.SetRate(ctl.rate);
    }
    admitted_window_[static_cast<std::size_t>(s)] = 0;
    downstream_loss_window_[static_cast<std::size_t>(s)] = 0;
  }
}

}  // namespace topfull::baselines

// WISP-style distributed rate management (Suresh et al., SoCC'17), the
// third related system the paper discusses (§7).
//
// WISP places rate limiters at every microservice and propagates admission
// information upstream: each service measures the rate its downstreams will
// actually accept and pushes its own limiter towards that, so excess load
// is shed as early (as far upstream) as possible. Per the paper's critique,
// WISP (a) sheds sub-requests without DAGOR's consistent per-request
// priority, so multi-tier drops compound randomly, and (b) does not reason
// about which APIs are gated by *other* overloaded microservices, so it
// inherits the starvation problem.
//
// Implementation: per-pod token-bucket rate limiters. Every update period a
// pod's limit moves multiplicatively: down in proportion to its own
// queueing delay above target (local overload), and also down towards the
// observed downstream acceptance ratio of requests it forwarded (shed
// upstream what downstream would reject anyway); up additively when both
// are healthy. Downstream acceptance is reported through the application's
// completion bookkeeping: the admission object is notified of every
// sub-request outcome.
#pragma once

#include <vector>

#include "admit/atomic_token_bucket.hpp"
#include "sim/app.hpp"

namespace topfull::baselines {

struct WispConfig {
  double target_delay_s = 0.02;    ///< local queueing-delay target
  double beta = 0.4;               ///< multiplicative decrease aggressiveness
  double additive_rps = 40.0;      ///< additive increase per update
  double downstream_weight = 0.5;  ///< pull towards downstream acceptance
  SimTime update_period = Millis(200);
  double initial_rate = 300.0;
  double min_rate = 5.0;
};

class WispAdmission : public sim::ServiceAdmission {
 public:
  WispAdmission(sim::Application* app, WispConfig config = {});

  /// Installs on every microservice and starts the update loop.
  void Install();

  bool Admit(const sim::RequestInfo& info, sim::ServiceId service, int pod_index,
             SimTime now) override;

  /// One update pass (exposed for tests).
  void Update();

  double RateLimit(sim::ServiceId service, int pod_index) const;

 private:
  struct PodCtl {
    double rate;
    // The plane's lock-free bucket; sequential use is bit-identical to the
    // historical common::TokenBucket (same refill math — DESIGN.md §15).
    admit::AtomicTokenBucket bucket;
    // Downstream acceptance accounting for the current window: of the
    // requests this pod admitted, how many were later shed anywhere
    // downstream of it. Approximated service-wide (see Update()).
    explicit PodCtl(double rate_rps)
        : rate(rate_rps), bucket(rate_rps, std::max(4.0, rate_rps / 10.0)) {}
  };

  PodCtl& Ctl(sim::ServiceId service, int pod_index);

  sim::Application* app_;
  WispConfig config_;
  std::vector<std::vector<PodCtl>> pods_;
  /// Per-service window counters: admitted here / rejected downstream.
  std::vector<std::uint64_t> admitted_window_;
  std::vector<std::uint64_t> downstream_loss_window_;
  bool installed_ = false;

  friend class WispProbe;
};

}  // namespace topfull::baselines

// A small-buffer-only, move-only callable: std::function without the heap.
//
// Every simulator event and pod completion callback used to be a
// std::function whose captures routinely exceeded the 16-byte libstdc++
// small-buffer and therefore cost one heap allocation per event. An
// InlineFunction stores its callable inline — always — and refuses to
// compile otherwise, so the DES hot path cannot silently regress back to
// allocating. Capacity overruns are a static_assert at the capture site:
// either shrink the capture or (deliberately, reviewably) grow the buffer.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace topfull {

template <typename Signature, std::size_t Capacity>
class InlineFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  InlineFunction() noexcept = default;
  InlineFunction(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  /// Wraps any callable (lambda, function pointer, std::function, …) whose
  /// decayed type fits the inline buffer. Lvalues are copied, rvalues moved.
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(runtime/explicit)
    static_assert(sizeof(D) <= Capacity,
                  "callable exceeds InlineFunction capacity: shrink the "
                  "capture (pointers + ids, not values) or grow the buffer");
    static_assert(alignof(D) <= alignof(std::max_align_t),
                  "over-aligned callables are not supported");
    static_assert(std::is_nothrow_move_constructible_v<D>,
                  "callables must be nothrow-move-constructible");
    ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
    invoke_ = [](void* s, Args... args) -> R {
      return (*static_cast<D*>(s))(std::forward<Args>(args)...);
    };
    if constexpr (!std::is_trivially_copyable_v<D> ||
                  !std::is_trivially_destructible_v<D>) {
      manage_ = [](void* dst, void* src) {
        if (dst != nullptr) ::new (dst) D(std::move(*static_cast<D*>(src)));
        static_cast<D*>(src)->~D();
      };
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { MoveFrom(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) noexcept {
    Reset();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { Reset(); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  R operator()(Args... args) {
    return invoke_(static_cast<void*>(storage_), std::forward<Args>(args)...);
  }

 private:
  void Reset() noexcept {
    if (manage_ != nullptr) manage_(nullptr, storage_);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  // Trivially-copyable callables (the hot-path ones) move as a raw byte
  // copy with no manage indirection; everything else move-constructs.
  void MoveFrom(InlineFunction& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (manage_ != nullptr) {
      manage_(storage_, other.storage_);
    } else if (invoke_ != nullptr) {
      __builtin_memcpy(storage_, other.storage_, Capacity);
    }
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  using Invoke = R (*)(void*, Args...);
  /// dst == nullptr: destroy src. Otherwise: move-construct dst from src,
  /// then destroy src. Null for trivially-copyable callables.
  using Manage = void (*)(void* dst, void* src);

  alignas(std::max_align_t) unsigned char storage_[Capacity];
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
};

}  // namespace topfull

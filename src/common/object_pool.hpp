// Slab allocator with a free list: pooled fixed-type records for the DES
// hot path.
//
// Records live in chunked slabs so their addresses are stable for the whole
// pool lifetime (callbacks capture raw pointers into the pool; a growing
// pool must never move live records). Freed records go on a LIFO free list
// and are handed back, still constructed, by the next Alloc — the caller
// re-initialises the fields it uses and owns any generation counter that
// guards against stale handles (see sim::Application's attempt records).
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <vector>

namespace topfull {

template <typename T>
class SlabPool {
 public:
  explicit SlabPool(std::size_t slab_size = 256) : slab_size_(slab_size) {
    assert(slab_size_ > 0);
  }

  /// Returns a record, reusing the most recently freed one when available.
  /// The record keeps whatever state it had when freed; callers reset the
  /// fields they rely on (and must NOT reset generation counters).
  T* Alloc() {
    if (free_.empty()) Grow();
    T* p = free_.back();
    free_.pop_back();
    ++live_;
    return p;
  }

  /// Returns `p` to the pool. `p` must have come from this pool's Alloc.
  void Free(T* p) {
    assert(live_ > 0);
    --live_;
    free_.push_back(p);
  }

  /// Records currently handed out.
  std::size_t live() const { return live_; }
  /// Total records ever created (live + free).
  std::size_t capacity() const { return slabs_.size() * slab_size_; }

 private:
  void Grow() {
    slabs_.push_back(std::make_unique<T[]>(slab_size_));
    free_.reserve(capacity());
    T* slab = slabs_.back().get();
    // Pushed in reverse so the free list hands out records in slab order.
    for (std::size_t i = slab_size_; i > 0; --i) free_.push_back(&slab[i - 1]);
  }

  std::size_t slab_size_;
  std::size_t live_ = 0;
  std::vector<std::unique_ptr<T[]>> slabs_;  ///< stable record storage
  std::vector<T*> free_;
};

}  // namespace topfull

// Deterministic weighted bin packing for shard assignment.
//
// The sharded DES needs clusters (or services) spread across N shards so
// per-shard event rates are balanced. Longest-processing-time-first greedy
// is within 4/3 of optimal for makespan and, crucially here, fully
// deterministic: ties in weight resolve by item index, ties in bin load by
// bin index, so the same inputs always produce the same partition — part
// of the fixed-shard-count bit-identity contract. Header-only so the trace
// tooling can use it without linking the sim.
#pragma once

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <vector>

namespace topfull {

/// Assigns each weighted item to one of `num_bins` bins, heaviest items
/// first, each to the currently lightest bin. Returns item -> bin index.
/// Zero-weight items still get a bin (they ride along deterministically).
inline std::vector<int> PackBinsLpt(const std::vector<double>& weights,
                                    int num_bins) {
  std::vector<int> assignment(weights.size(), 0);
  if (num_bins <= 1 || weights.empty()) return assignment;
  std::vector<std::size_t> order(weights.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return weights[a] > weights[b];
                   });
  std::vector<double> load(static_cast<std::size_t>(num_bins), 0.0);
  for (const std::size_t item : order) {
    int lightest = 0;
    for (int b = 1; b < num_bins; ++b) {
      if (load[static_cast<std::size_t>(b)] <
          load[static_cast<std::size_t>(lightest)]) {
        lightest = b;
      }
    }
    assignment[item] = lightest;
    load[static_cast<std::size_t>(lightest)] += weights[item];
  }
  return assignment;
}

}  // namespace topfull

// A growable FIFO ring buffer.
//
// std::deque allocates a fresh block every few dozen pushes even in steady
// state; this ring reaches a high-water capacity during warm-up and then
// recycles it forever, which is what the per-pod job queues need to stay
// allocation-free. Elements must be default-constructible and
// move-assignable (popped slots are reset to T{} so captured resources are
// released eagerly).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace topfull {

template <typename T>
class RingQueue {
 public:
  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  T& front() {
    assert(count_ > 0);
    return buf_[head_];
  }
  const T& front() const {
    assert(count_ > 0);
    return buf_[head_];
  }

  /// i-th element from the front (0 == front()).
  T& at(std::size_t i) {
    assert(i < count_);
    return buf_[(head_ + i) & mask_];
  }

  void push_back(T value) {
    if (count_ == buf_.size()) Grow();
    buf_[(head_ + count_) & mask_] = std::move(value);
    ++count_;
  }

  void pop_front() {
    assert(count_ > 0);
    buf_[head_] = T{};
    head_ = (head_ + 1) & mask_;
    --count_;
  }

  void clear() {
    while (count_ > 0) pop_front();
  }

  std::size_t capacity() const { return buf_.size(); }

 private:
  void Grow() {
    const std::size_t cap = buf_.empty() ? 16 : buf_.size() * 2;
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < count_; ++i) next[i] = std::move(at(i));
    buf_ = std::move(next);
    head_ = 0;
    mask_ = cap - 1;
  }

  std::vector<T> buf_;  ///< capacity is always a power of two
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::size_t mask_ = 0;
};

/// Single-producer/single-consumer mailbox between two shard threads.
///
/// The sharded DES drives these under a phase-alternating barrier protocol
/// (see des::ShardedSimulation): the producing shard pushes only during
/// execute phases and the consuming shard drains only during drain phases,
/// and the two phases are separated by a full barrier. Push and pop are
/// therefore never concurrent — the barrier provides the happens-before
/// edge — so the queue needs no atomics, can grow on push (the consumer is
/// quiescent whenever a producer runs), and stays allocation-free once it
/// reaches its high-water capacity. The alignas pad keeps two mailboxes
/// that different threads touch in the same round off a shared cache line.
///
/// TSan validates the contract on every PR: any push/pop pair not ordered
/// by the shard barrier is a data race on plain fields and gets reported.
template <typename T>
class alignas(64) SpscMailbox {
 public:
  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }
  std::size_t capacity() const { return queue_.capacity(); }

  /// Producer side; only during the producing thread's execute phase.
  void Push(T value) {
    queue_.push_back(std::move(value));
    ++pushed_;
  }

  /// Consumer side; only during the consuming thread's drain phase.
  /// Invokes `fn(T&&)` for every queued element in FIFO order.
  template <typename Fn>
  std::size_t Drain(Fn&& fn) {
    std::size_t n = 0;
    while (!queue_.empty()) {
      fn(std::move(queue_.front()));
      queue_.pop_front();
      ++n;
    }
    return n;
  }

  /// Total elements ever pushed (producer-side counter; read at quiescence).
  std::uint64_t TotalPushed() const { return pushed_; }

 private:
  RingQueue<T> queue_;
  std::uint64_t pushed_ = 0;
};

}  // namespace topfull

// A growable FIFO ring buffer.
//
// std::deque allocates a fresh block every few dozen pushes even in steady
// state; this ring reaches a high-water capacity during warm-up and then
// recycles it forever, which is what the per-pod job queues need to stay
// allocation-free. Elements must be default-constructible and
// move-assignable (popped slots are reset to T{} so captured resources are
// released eagerly).
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace topfull {

template <typename T>
class RingQueue {
 public:
  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  T& front() {
    assert(count_ > 0);
    return buf_[head_];
  }
  const T& front() const {
    assert(count_ > 0);
    return buf_[head_];
  }

  /// i-th element from the front (0 == front()).
  T& at(std::size_t i) {
    assert(i < count_);
    return buf_[(head_ + i) & mask_];
  }

  void push_back(T value) {
    if (count_ == buf_.size()) Grow();
    buf_[(head_ + count_) & mask_] = std::move(value);
    ++count_;
  }

  void pop_front() {
    assert(count_ > 0);
    buf_[head_] = T{};
    head_ = (head_ + 1) & mask_;
    --count_;
  }

  void clear() {
    while (count_ > 0) pop_front();
  }

  std::size_t capacity() const { return buf_.size(); }

 private:
  void Grow() {
    const std::size_t cap = buf_.empty() ? 16 : buf_.size() * 2;
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < count_; ++i) next[i] = std::move(at(i));
    buf_ = std::move(next);
    head_ = 0;
    mask_ = cap - 1;
  }

  std::vector<T> buf_;  ///< capacity is always a power of two
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace topfull

#include "common/rng.hpp"

#include <cmath>

namespace topfull {
namespace {

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(NextU64() % span);
}

double Rng::Exponential(double mean) {
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  return mean + stddev * z;
}

double Rng::LogNormal(double log_mean, double log_sigma) {
  return std::exp(Normal(log_mean, log_sigma));
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

Rng Rng::Fork(std::uint64_t salt) {
  // Derive a child seed from fresh parent output mixed with the salt.
  const std::uint64_t base = NextU64();
  std::uint64_t sm = base ^ (salt * 0xD1B54A32D192ED03ULL);
  return Rng(SplitMix64(sm));
}

Rng Rng::Fork(std::string_view label) { return Fork(HashLabel(label)); }

std::uint64_t HashLabel(std::string_view label) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : label) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace topfull

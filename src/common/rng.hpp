// Deterministic random number generation for the simulator.
//
// Every stochastic component draws from an Rng that is ultimately seeded from
// a single scenario seed, so whole experiments replay identically. Rng is a
// xoshiro256** generator with SplitMix64 seeding; `Fork` derives independent
// child streams so that adding a consumer does not perturb others.
#pragma once

#include <cstdint>
#include <string_view>

namespace topfull {

class Rng {
 public:
  /// Constructs a generator from a 64-bit seed (SplitMix64-expanded).
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Exponential variate with the given mean (> 0).
  double Exponential(double mean);

  /// Standard normal variate (Box-Muller, stateless variant).
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Log-normal variate parameterised by the mean and sigma of log-space.
  double LogNormal(double log_mean, double log_sigma);

  /// Bernoulli trial with probability p of returning true.
  bool Bernoulli(double p);

  /// Derives an independent child stream. `salt` decorrelates children
  /// created from the same parent state (e.g. hash of a component name).
  Rng Fork(std::uint64_t salt);

  /// Convenience: fork keyed by a string label (FNV-1a hashed).
  Rng Fork(std::string_view label);

 private:
  std::uint64_t s_[4];
};

/// FNV-1a 64-bit hash, used to derive RNG salts from component names.
std::uint64_t HashLabel(std::string_view label);

}  // namespace topfull

// Simulation time primitives.
//
// All simulation time is kept as an integer number of microseconds so that
// event ordering is exact and runs are reproducible bit-for-bit. Helpers
// convert to/from floating-point seconds at the edges (metrics, reports).
#pragma once

#include <cstdint>

namespace topfull {

/// Simulation timestamp / duration in microseconds.
using SimTime = std::int64_t;

inline constexpr SimTime kMicrosPerSec = 1'000'000;
inline constexpr SimTime kMicrosPerMilli = 1'000;

/// Converts whole seconds to SimTime.
constexpr SimTime Seconds(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kMicrosPerSec));
}

/// Converts milliseconds to SimTime.
constexpr SimTime Millis(double ms) {
  return static_cast<SimTime>(ms * static_cast<double>(kMicrosPerMilli));
}

/// Converts a SimTime to floating-point seconds (for reporting).
constexpr double ToSeconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosPerSec);
}

/// Converts a SimTime to floating-point milliseconds (for reporting).
constexpr double ToMillis(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosPerMilli);
}

}  // namespace topfull

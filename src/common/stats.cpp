#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace topfull {

void StreamingStats::Add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  if (count_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

void StreamingStats::Reset() { *this = StreamingStats{}; }

double StreamingStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

void WindowedSamples::Add(SimTime now, double value) {
  samples_.emplace_back(now, value);
}

void WindowedSamples::Expire(SimTime now) {
  const SimTime cutoff = now - window_;
  while (!samples_.empty() && samples_.front().first < cutoff) {
    samples_.pop_front();
  }
}

double WindowedSamples::Percentile(double p, double fallback) const {
  if (samples_.empty()) return fallback;
  scratch_.clear();
  scratch_.reserve(samples_.size());
  for (const auto& [t, v] : samples_) scratch_.push_back(v);
  return PercentileInPlace(scratch_, p, fallback);
}

double WindowedSamples::Mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& [t, v] : samples_) sum += v;
  return sum / static_cast<double>(samples_.size());
}

double Percentile(std::vector<double> values, double p, double fallback) {
  return PercentileInPlace(values, p, fallback);
}

double PercentileInPlace(std::vector<double>& values, double p, double fallback) {
  if (values.empty()) return fallback;
  std::sort(values.begin(), values.end());
  return PercentileSorted(values, p, fallback);
}

double PercentileSorted(const std::vector<double>& sorted, double p,
                        double fallback) {
  if (sorted.empty()) return fallback;
  // A non-finite rank (e.g. a NaN produced upstream by a zero-completion
  // window) must not poison the observation pipeline: std::clamp on NaN is
  // UB and the size_t cast below would be too.
  if (!std::isfinite(p)) return fallback;
  if (sorted.size() == 1) return sorted[0];
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace topfull

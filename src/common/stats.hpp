// Streaming statistics used by the metric collectors.
//
// - StreamingStats: Welford mean/variance plus min/max, O(1) memory.
// - WindowedSamples: time-stamped sample window with percentile queries;
//   this is what feeds "end-to-end percentile latency" observations.
// - Counter windows: per-interval rate accounting (goodput, admitted rate).
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "common/sim_time.hpp"

namespace topfull {

/// Constant-memory running mean / variance / min / max.
class StreamingStats {
 public:
  void Add(double x);
  void Reset();

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Sliding time window of (timestamp, value) samples with percentile queries.
///
/// Samples older than `window` relative to the most recent `Expire` call are
/// discarded. Percentile queries copy and sort the live window; windows hold
/// at most a second or two of samples so this stays cheap.
class WindowedSamples {
 public:
  explicit WindowedSamples(SimTime window) : window_(window) {}

  /// Records a sample observed at `now`.
  void Add(SimTime now, double value);

  /// Drops samples older than `now - window`.
  void Expire(SimTime now);

  /// Returns the p-th percentile (p in [0,100]) of live samples, or
  /// `fallback` when the window is empty.
  double Percentile(double p, double fallback = 0.0) const;

  double Mean() const;
  std::size_t Count() const { return samples_.size(); }
  bool Empty() const { return samples_.empty(); }

 private:
  SimTime window_;
  std::deque<std::pair<SimTime, double>> samples_;
  mutable std::vector<double> scratch_;  // reused percentile buffer
};

/// Percentile of an arbitrary vector (nearest-rank with linear
/// interpolation). Returns `fallback` for empty input or non-finite `p`;
/// p is clamped to [0, 100]. Sorts a copy.
double Percentile(std::vector<double> values, double p, double fallback = 0.0);

/// In-place variant: sorts `values` and reads the percentile from it.
/// Hot-path form — callers with a scratch buffer avoid the copy.
double PercentileInPlace(std::vector<double>& values, double p,
                         double fallback = 0.0);

/// Percentile of an already ascending-sorted buffer; no copy, no sort.
/// Lets one sort serve any number of quantile reads.
double PercentileSorted(const std::vector<double>& sorted, double p,
                        double fallback = 0.0);

/// Exponentially weighted moving average.
class Ewma {
 public:
  /// `alpha` is the weight of the newest observation, in (0, 1].
  explicit Ewma(double alpha) : alpha_(alpha) {}

  void Add(double x) {
    value_ = initialized_ ? alpha_ * x + (1.0 - alpha_) * value_ : x;
    initialized_ = true;
  }
  double value() const { return value_; }
  bool initialized() const { return initialized_; }
  void Reset() { initialized_ = false; value_ = 0.0; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace topfull

#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace topfull {

void Table::SetHeader(std::vector<std::string> header) { header_ = std::move(header); }

void Table::AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

void Table::AddRow(const std::string& label, const std::vector<double>& values,
                   int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (const double v : values) row.push_back(Fmt(v, precision));
  rows_.push_back(std::move(row));
}

std::string Table::Render() const {
  std::vector<std::size_t> widths;
  auto widen = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream out;
  if (!caption_.empty()) out << caption_ << '\n';
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << "  ";
      out << row[i];
      if (i + 1 < row.size()) {
        out << std::string(widths[i] - row[i].size(), ' ');
      }
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < widths.size(); ++i) total += widths[i] + (i ? 2 : 0);
    out << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::Print() const { std::fputs(Render().c_str(), stdout); }

std::string Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void PrintBanner(const std::string& name, const std::string& description) {
  std::printf("\n==== %s ====\n%s\n\n", name.c_str(), description.c_str());
}

}  // namespace topfull

// Console table / series printers shared by the benchmark harnesses.
//
// Every bench binary reports its figure/table in the same plain-text layout:
// a caption, a header row, aligned columns. Series (timelines, sweeps) are
// printed as CSV-ish rows so they can be re-plotted directly.
#pragma once

#include <string>
#include <vector>

namespace topfull {

class Table {
 public:
  explicit Table(std::string caption) : caption_(std::move(caption)) {}

  /// Sets the header row. Column count of subsequent rows must match.
  void SetHeader(std::vector<std::string> header);

  /// Appends a row of pre-formatted cells.
  void AddRow(std::vector<std::string> row);

  /// Convenience for mixed label + numeric rows.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 1);

  /// Renders the table with aligned columns.
  std::string Render() const;

  /// Renders and writes to stdout.
  void Print() const;

 private:
  std::string caption_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision.
std::string Fmt(double v, int precision = 1);

/// Prints a `# name` section banner for a figure/table reproduction.
void PrintBanner(const std::string& name, const std::string& description);

}  // namespace topfull

#include "common/thread_pool.hpp"

#include <cstdlib>

namespace topfull {
namespace {

// Set inside WorkerLoop so reentrant Submit/ParallelMap calls can detect
// that they already run on one of this pool's workers.
thread_local const ThreadPool* tls_worker_pool = nullptr;

std::mutex g_global_mutex;
std::unique_ptr<ThreadPool> g_global_pool;
int g_global_threads_override = 0;

}  // namespace

ThreadPool::ThreadPool(int threads) : size_(threads > 0 ? threads : EnvThreads()) {
  if (size_ <= 1) return;
  workers_.reserve(static_cast<std::size_t>(size_));
  for (int i = 0; i < size_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

bool ThreadPool::OnWorkerThread() const { return tls_worker_pool == this; }

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  tls_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

int ThreadPool::EnvThreads() {
  if (const char* value = std::getenv("TOPFULL_THREADS")) {
    const int parsed = std::atoi(value);
    if (parsed > 0) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool& ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  if (!g_global_pool) {
    g_global_pool = std::make_unique<ThreadPool>(g_global_threads_override);
  }
  return *g_global_pool;
}

void ThreadPool::SetGlobalThreads(int threads) {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  g_global_threads_override = threads;
  g_global_pool.reset();
}

}  // namespace topfull

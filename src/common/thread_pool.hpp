// Fixed-size worker pool with deterministic, order-preserving fan-out.
//
// Parallelism in this repo follows one contract: only *whole simulations*
// (independent `Simulation` + `Application` runs, or independent RL episodes
// on per-worker env clones) run concurrently, and parallel output must be
// bit-identical to sequential output. ParallelMap enforces the ordering half
// of that contract: results come back in submission order no matter which
// worker finishes first, so downstream reductions see the same operand order
// at every pool size.
//
// Sizing: `threads <= 0` reads the TOPFULL_THREADS environment variable and
// falls back to `hardware_concurrency`. A pool of size 1 never spawns a
// thread — Submit and ParallelMap run inline on the caller, the pure
// sequential baseline the determinism tests compare against.
//
// Reentrancy: Submit/ParallelMap called from inside a worker of the same
// pool run inline instead of queueing; queueing would deadlock once every
// worker blocks on tasks stuck behind it in the queue.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace topfull {

class ThreadPool {
 public:
  /// `threads <= 0` sizes the pool from TOPFULL_THREADS / the hardware.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return size_; }

  /// True when the calling thread is one of this pool's workers.
  bool OnWorkerThread() const;

  /// Schedules `fn` and returns its future. Exceptions thrown by `fn`
  /// surface from future.get(). Runs inline for size-1 pools and when
  /// called from one of this pool's own workers.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    if (RunsInline()) {
      std::promise<R> promise;
      std::future<R> future = promise.get_future();
      try {
        if constexpr (std::is_void_v<R>) {
          fn();
          promise.set_value();
        } else {
          promise.set_value(fn());
        }
      } catch (...) {
        promise.set_exception(std::current_exception());
      }
      return future;
    }
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Enqueue([task] { (*task)(); });
    return future;
  }

  /// results[i] = fn(i) for i in [0, n), in submission order regardless of
  /// completion order. Waits for every task before returning; if any task
  /// threw, rethrows the lowest-index exception after the wait.
  template <typename Fn>
  auto ParallelMap(std::size_t n, Fn&& fn)
      -> std::vector<std::invoke_result_t<std::decay_t<Fn>, std::size_t>> {
    using R = std::invoke_result_t<std::decay_t<Fn>, std::size_t>;
    static_assert(!std::is_void_v<R>, "ParallelMap needs a value-returning fn");
    std::vector<R> results;
    results.reserve(n);
    if (RunsInline()) {
      for (std::size_t i = 0; i < n; ++i) results.push_back(fn(i));
      return results;
    }
    std::vector<std::future<R>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      futures.push_back(Submit([&fn, i] { return fn(i); }));
    }
    std::exception_ptr first_error;
    for (auto& future : futures) {
      try {
        results.push_back(future.get());
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return results;
  }

  /// Pool size from TOPFULL_THREADS, defaulting to hardware_concurrency.
  static int EnvThreads();

  /// Lazily constructed process-wide pool (sized by SetGlobalThreads /
  /// TOPFULL_THREADS). Shared by the run executor and the PPO trainer.
  static ThreadPool& Global();

  /// Overrides the global pool size (CLI --threads). Drops any existing
  /// global pool, so call it before submitting work, not during.
  static void SetGlobalThreads(int threads);

 private:
  bool RunsInline() const { return size_ <= 1 || OnWorkerThread(); }
  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  int size_ = 1;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace topfull

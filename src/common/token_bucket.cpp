#include "common/token_bucket.hpp"

#include <algorithm>

namespace topfull {

TokenBucket::TokenBucket(double rate, double burst)
    : rate_(std::max(0.0, rate)), burst_(std::max(1.0, burst)), tokens_(burst_) {}

void TokenBucket::Refill(SimTime now) {
  if (now <= last_refill_) return;
  const double elapsed = ToSeconds(now - last_refill_);
  tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
  last_refill_ = now;
}

bool TokenBucket::TryAdmit(SimTime now) {
  Refill(now);
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    return true;
  }
  return false;
}

void TokenBucket::SetRate(double rate) { rate_ = std::max(0.0, rate); }

double TokenBucket::PeekTokens(SimTime now) const {
  if (now <= last_refill_) return tokens_;
  return std::min(burst_, tokens_ + ToSeconds(now - last_refill_) * rate_);
}

}  // namespace topfull

// Token-bucket rate limiter (the paper's entry rate limiter, §5).
//
// Tokens accrue continuously at `rate` per second up to `burst` tokens;
// each admitted request consumes one token. Rate changes take effect
// immediately and preserve the fractional token balance.
#pragma once

#include "common/sim_time.hpp"

namespace topfull {

class TokenBucket {
 public:
  /// `rate` in requests/second; `burst` is the bucket depth in tokens.
  TokenBucket(double rate, double burst);

  /// Attempts to admit one request at time `now`; returns true on success.
  bool TryAdmit(SimTime now);

  /// Updates the refill rate (requests/second). Never negative.
  void SetRate(double rate);

  double rate() const { return rate_; }
  double burst() const { return burst_; }

  /// Non-mutating preview of the balance a refill up to `now` would leave
  /// (for tests/metrics). Pure read: the bucket state is untouched, so
  /// interleaving previews with TryAdmit cannot perturb the decision stream.
  double PeekTokens(SimTime now) const;

 private:
  void Refill(SimTime now);

  double rate_;
  double burst_;
  double tokens_;
  SimTime last_refill_ = 0;
};

}  // namespace topfull

// Disjoint-set union with path compression and union by size.
//
// Used by the TopFull clustering step (Eq. 2): APIs sharing any overloaded
// microservice are merged into one cluster.
#pragma once

#include <cstddef>
#include <numeric>
#include <vector>

namespace topfull {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  /// Root of x's set (with path compression).
  std::size_t Find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Merges the sets containing a and b; returns true if they were distinct.
  bool Union(std::size_t a, std::size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return true;
  }

  bool Connected(std::size_t a, std::size_t b) { return Find(a) == Find(b); }

  /// Size of the set containing x.
  std::size_t SizeOf(std::size_t x) { return size_[Find(x)]; }

  std::size_t Count() const { return parent_.size(); }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};

}  // namespace topfull

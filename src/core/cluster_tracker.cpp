#include "core/cluster_tracker.hpp"

#include <set>

namespace topfull::core {

void ClusterTracker::Record(double t_s, const std::vector<Cluster>& clusters) {
  ClusterSnapshot snap;
  snap.t_s = t_s;
  snap.clusters = static_cast<int>(clusters.size());
  snap.api_cluster.assign(static_cast<std::size_t>(num_apis_), -1);
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    snap.overloaded_services += static_cast<int>(clusters[c].overloaded.size());
    for (const sim::ApiId a : clusters[c].apis) {
      snap.api_cluster[a] = static_cast<int>(c);
      ++snap.member_apis;
    }
  }

  if (!history_.empty()) {
    const ClusterSnapshot& prev = history_.back();
    // A merge: a current cluster whose members came from >= 2 previous
    // clusters. A split: a previous cluster whose members now live in >= 2
    // current clusters. APIs that were (or became) uninvolved don't count.
    std::vector<std::set<int>> sources(static_cast<std::size_t>(snap.clusters));
    std::vector<std::set<int>> destinations(
        static_cast<std::size_t>(prev.clusters));
    for (int a = 0; a < num_apis_; ++a) {
      const int now = snap.api_cluster[static_cast<std::size_t>(a)];
      const int before = prev.api_cluster[static_cast<std::size_t>(a)];
      if (now >= 0 && before >= 0) {
        sources[static_cast<std::size_t>(now)].insert(before);
        destinations[static_cast<std::size_t>(before)].insert(now);
      }
    }
    for (const auto& from : sources) snap.merges += from.size() >= 2 ? 1 : 0;
    for (const auto& to : destinations) snap.splits += to.size() >= 2 ? 1 : 0;
    total_splits_ += snap.splits;
    total_merges_ += snap.merges;
  }
  history_.push_back(std::move(snap));
}

}  // namespace topfull::core

// Cluster-evolution tracking (paper §4.2 "Re-clustering dynamically").
//
// TopFull re-clusters every control tick; clusters are transitive, so they
// split when an overload resolves and merge when a new overload bridges
// previously independent groups. The tracker compares consecutive tick
// partitions and counts those split/merge events — used by the §4.2
// dynamics bench and available for operational dashboards.
#pragma once

#include <vector>

#include "core/clustering.hpp"

namespace topfull::core {

/// Summary of one tick's clustering.
struct ClusterSnapshot {
  double t_s = 0.0;
  int clusters = 0;
  int overloaded_services = 0;
  int member_apis = 0;
  /// Partition of APIs: cluster index per API, -1 when uninvolved.
  std::vector<int> api_cluster;
  /// Clusters that contain APIs from >= 2 clusters of the previous tick.
  int merges = 0;
  /// Previous-tick clusters whose APIs now span >= 2 clusters.
  int splits = 0;
};

class ClusterTracker {
 public:
  explicit ClusterTracker(int num_apis) : num_apis_(num_apis) {}

  /// Records the clustering of one tick and derives split/merge counts
  /// relative to the previous recorded tick.
  void Record(double t_s, const std::vector<Cluster>& clusters);

  const std::vector<ClusterSnapshot>& History() const { return history_; }
  int TotalSplits() const { return total_splits_; }
  int TotalMerges() const { return total_merges_; }

 private:
  int num_apis_;
  std::vector<ClusterSnapshot> history_;
  int total_splits_ = 0;
  int total_merges_ = 0;
};

}  // namespace topfull::core

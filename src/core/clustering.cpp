#include "core/clustering.hpp"

#include <algorithm>
#include <map>

#include "common/union_find.hpp"

namespace topfull::core {

std::vector<Cluster> BuildClusters(const ApiRegistry& registry,
                                   const std::vector<sim::ServiceId>& overloaded) {
  UnionFind dsu(static_cast<std::size_t>(registry.num_apis()));

  // Union all APIs that share each overloaded service (Eq. 2).
  std::vector<bool> in_any(static_cast<std::size_t>(registry.num_apis()), false);
  for (const sim::ServiceId s : overloaded) {
    const auto& apis = registry.ApisOf(s);
    for (const sim::ApiId a : apis) in_any[a] = true;
    for (std::size_t i = 1; i < apis.size(); ++i) {
      dsu.Union(static_cast<std::size_t>(apis[0]), static_cast<std::size_t>(apis[i]));
    }
  }

  // Group member APIs by their root.
  std::map<std::size_t, Cluster> by_root;
  for (sim::ApiId a = 0; a < registry.num_apis(); ++a) {
    if (!in_any[a]) continue;
    by_root[dsu.Find(static_cast<std::size_t>(a))].apis.push_back(a);
  }
  // Attach each overloaded service to the cluster of its (first) user API.
  for (const sim::ServiceId s : overloaded) {
    const auto& apis = registry.ApisOf(s);
    if (apis.empty()) continue;  // overloaded but unused by any API: ignore
    by_root[dsu.Find(static_cast<std::size_t>(apis[0]))].overloaded.push_back(s);
  }

  std::vector<Cluster> clusters;
  clusters.reserve(by_root.size());
  for (auto& [root, cluster] : by_root) {
    std::sort(cluster.apis.begin(), cluster.apis.end());
    std::sort(cluster.overloaded.begin(), cluster.overloaded.end());
    // Target selection: overloaded service used by the fewest APIs.
    int best_count = 0;
    for (const sim::ServiceId s : cluster.overloaded) {
      const int count = registry.ApiCount(s);
      if (cluster.target == sim::kNoService || count < best_count) {
        cluster.target = s;
        best_count = count;
      }
    }
    if (cluster.target != sim::kNoService) {
      for (const sim::ApiId a : cluster.apis) {
        if (registry.Uses(a, cluster.target)) cluster.candidates.push_back(a);
      }
    }
    clusters.push_back(std::move(cluster));
  }
  return clusters;
}

}  // namespace topfull::core

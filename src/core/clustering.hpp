// API clustering for parallel load control (paper §4.2, Eq. 2).
//
// Given the set of currently overloaded microservices, APIs that share any
// overloaded microservice on their execution paths are merged into one
// cluster (transitively). Each cluster is an independent sub-problem: load
// control inside it cannot affect overloaded microservices of any other
// cluster, so clusters are controlled in parallel.
#pragma once

#include <vector>

#include "core/registry.hpp"

namespace topfull::core {

/// One independent load-control sub-problem.
struct Cluster {
  std::vector<sim::ApiId> apis;               ///< member APIs, sorted
  std::vector<sim::ServiceId> overloaded;     ///< overloaded services, sorted
  /// The cluster's current mitigation target: the overloaded service used by
  /// the fewest APIs (§4.1 target-selection rule).
  sim::ServiceId target = sim::kNoService;
  /// APIs of the cluster that traverse `target` — Algorithm 1's candidates.
  std::vector<sim::ApiId> candidates;
};

/// Builds clusters from the overloaded-service set. O(sum of group sizes *
/// alpha) using union-find over APIs.
std::vector<Cluster> BuildClusters(const ApiRegistry& registry,
                                   const std::vector<sim::ServiceId>& overloaded);

}  // namespace topfull::core

#include "core/controller.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace topfull::core {

TopFullController::TopFullController(sim::Application* app,
                                     std::unique_ptr<RateController> prototype,
                                     TopFullConfig config)
    : app_(app),
      registry_(*app),
      prototype_(std::move(prototype)),
      config_(config),
      controls_(app->NumApis()) {
  app_->SetEntryAdmission(this);
  // Live registry families, updated in-line with every tick/limit change.
  obs::MetricsRegistry& metrics = app_->metrics_registry();
  ticks_counter_ = metrics.GetCounter("topfull_controller_ticks_total",
                                      "Control ticks executed.");
  decisions_counter_ =
      metrics.GetCounter("topfull_controller_decisions_total",
                         "Control decisions taken (Algorithm 1 + recovery).");
  reconfigs_skipped_counter_ = metrics.GetCounter(
      "topfull_admit_reconfigs_skipped_total",
      "Admission-plane limit publishes coalesced away (same rate and burst "
      "as already configured, so no new RCU snapshot was built).");
  overloaded_gauge_ = metrics.GetGauge(
      "topfull_controller_overloaded_services",
      "Overloaded microservices detected at the last tick (after hysteresis).");
  for (sim::ApiId a = 0; a < app_->NumApis(); ++a) {
    limit_gauges_.push_back(metrics.GetGauge(
        "topfull_api_rate_limit_rps",
        "Entry rate limit per API (+Inf = uncapped).", {{"api", app_->api(a).name()}}));
    limit_gauges_.back()->Set(std::numeric_limits<double>::infinity());
    // One admission-plane slot per API at the entry gateway. The effectively
    // uncapped (1e18, 1e18) bucket mirrors the historical ApiControl default;
    // it is never consulted until the API is capped and Configure()d.
    controls_[a].slot = plane_.Register(
        "entry", app_->api(a).name(),
        std::make_shared<admit::TokenBucketAdmitter>(1e18, 1e18));
  }
  gate_ = admit::CachedGate(&plane_);
}

void TopFullController::Start() {
  if (started_) return;
  started_ = true;
  app_->sim().SchedulePeriodic(app_->sim().Now() + config_.period, config_.period,
                               [this]() { Tick(); });
}

bool TopFullController::Admit(sim::ApiId api, SimTime now) {
  ApiControl& control = controls_[api];
  if (!control.capped) return true;
  admit::AdmitRequest req;
  req.now = now;
  return gate_.TryAdmit(control.slot, req);
}

std::optional<double> TopFullController::RateLimit(sim::ApiId api) const {
  const ApiControl& control = controls_[api];
  if (!control.capped) return std::nullopt;
  return control.rate;
}

void TopFullController::ForceRateLimit(sim::ApiId api, double rate) {
  controls_[api].capped = true;
  SetRate(api, rate);
}

double TopFullController::LatencyOf(const sim::ApiWindow& w) const {
  if (config_.latency_percentile >= 99.0) return w.latency_p99_ms / 1000.0;
  if (config_.latency_percentile >= 95.0) return w.latency_p95_ms / 1000.0;
  return w.latency_p50_ms / 1000.0;
}

ControlState TopFullController::StateOf(const std::vector<sim::ApiId>& apis) const {
  return StateOf(apis, app_->metrics().Latest());
}

ControlState TopFullController::StateOf(const std::vector<sim::ApiId>& apis,
                                        const sim::Snapshot& snap) const {
  ControlState state;
  state.slo_s = ToSeconds(app_->metrics().slo());
  for (const sim::ApiId a : apis) {
    const auto& w = snap.apis[a];
    state.goodput += static_cast<double>(w.good);
    state.rate_limit += controls_[a].capped
                            ? controls_[a].rate
                            : static_cast<double>(std::max<std::uint64_t>(w.admitted, 1));
    state.latency_s = std::max(state.latency_s, LatencyOf(w));
  }
  return state;
}

RateController& TopFullController::ClusterController(sim::ServiceId target) {
  auto& slot = cluster_controllers_[target];
  if (!slot) slot = prototype_->Clone();
  return *slot;
}

RateController& TopFullController::RecoveryController(sim::ApiId api) {
  auto& slot = recovery_controllers_[api];
  if (!slot) slot = prototype_->Clone();
  return *slot;
}

void TopFullController::SetRate(sim::ApiId api, double rate) {
  ApiControl& control = controls_[api];
  const double before = control.rate;
  control.rate = std::clamp(rate, config_.min_rate, config_.max_rate);
  if (decision_observer_ != nullptr) {
    decision_observer_->OnRateChange(api, before, control.rate);
  }
  limit_gauges_[api]->Set(control.rate);
  // Keep a shallow burst so 1 s averages track the limit closely. Configure
  // resets the slot's bucket exactly like the historical fresh-TokenBucket
  // assignment; a same-value republish still resets but skips the RCU
  // snapshot rebuild (coalesced, counted below).
  const double burst =
      std::max(config_.min_burst, control.rate * config_.burst_fraction);
  if (plane_.Configure(control.slot, control.rate, burst) ==
      admit::ConfigureResult::kCoalesced) {
    reconfigs_skipped_counter_->Inc();
  }
}

void TopFullController::EnsureCapped(sim::ApiId api, const sim::Snapshot& snap) {
  ApiControl& control = controls_[api];
  if (control.capped) return;
  control.capped = true;
  const auto& w = snap.apis[api];
  // Seed from the observed admitted rate of the last window: the control
  // starts from "what the system currently takes", not from a blind guess.
  const double seed = std::max<double>(static_cast<double>(w.admitted), config_.min_rate);
  SetRate(api, seed);
}

void TopFullController::AdjustRate(const std::vector<sim::ApiId>& candidates,
                                   double action) {
  if (candidates.empty() || action == 0.0) return;
  // Algorithm 1: positive actions go to the highest-business-priority
  // candidates, negative actions to the lowest. Ties are adjusted together;
  // with priorities disabled (or all equal) every candidate moves equally.
  // A candidate already pinned at the rate floor cannot shed further, so a
  // negative action escalates past it to the next priority tier (otherwise
  // the overload would never resolve once the lowest tier bottoms out).
  std::vector<sim::ApiId> targets;
  if (!config_.respect_priority) {
    targets = candidates;
  } else {
    std::vector<sim::ApiId> eligible;
    if (action < 0.0) {
      for (const sim::ApiId a : candidates) {
        if (!controls_[a].capped || controls_[a].rate > config_.min_rate + 1e-9) {
          eligible.push_back(a);
        }
      }
    }
    if (eligible.empty()) eligible = candidates;
    int extreme = app_->api(eligible[0]).business_priority();
    for (const sim::ApiId a : eligible) {
      const int p = app_->api(a).business_priority();
      // Smaller value = higher priority.
      if (action > 0.0 ? p < extreme : p > extreme) extreme = p;
    }
    for (const sim::ApiId a : eligible) {
      if (app_->api(a).business_priority() == extreme) targets.push_back(a);
    }
  }
  const sim::Snapshot& snap = app_->metrics().Latest();
  for (const sim::ApiId a : targets) {
    double rate = controls_[a].rate * (1.0 + action);
    if (action < 0.0 && a < static_cast<sim::ApiId>(snap.apis.size())) {
      // Excessive-throttling guard: while queues drain after a cut, the
      // observed e2e latency stays stale-high for a few windows, which
      // would otherwise drive the limit far below the throughput the API
      // demonstrably sustains. Never cut below ~80 % of the goodput the
      // API just delivered.
      const double floor = 0.8 * static_cast<double>(snap.apis[a].good);
      rate = std::max(rate, floor);
    }
    SetRate(a, rate);
  }
}

void TopFullController::Tick() {
  const sim::Snapshot& snap = app_->metrics().Latest();
  if (snap.services.empty()) return;
  ticks_counter_->Inc();

  std::vector<sim::ServiceId> overloaded = DetectOverloaded(snap, config_.overload);
  if (config_.overload.util_exit_threshold > 0.0) {
    // Two-threshold hysteresis: a previously flagged service stays in the
    // overloaded set until its utilisation drops below the exit threshold.
    if (flagged_.empty()) {
      flagged_.assign(static_cast<std::size_t>(app_->NumServices()), false);
    }
    std::vector<bool> now_flagged(flagged_.size(), false);
    for (const sim::ServiceId s : overloaded) now_flagged[s] = true;
    for (std::size_t s = 0; s < flagged_.size(); ++s) {
      if (flagged_[s] && !now_flagged[s] &&
          snap.services[s].cpu_utilization >= config_.overload.util_exit_threshold) {
        now_flagged[s] = true;
      }
    }
    overloaded.clear();
    for (std::size_t s = 0; s < now_flagged.size(); ++s) {
      if (now_flagged[s]) overloaded.push_back(static_cast<sim::ServiceId>(s));
    }
    flagged_ = std::move(now_flagged);
  }
  overloaded_gauge_->Set(static_cast<double>(overloaded.size()));
  last_clusters_ = BuildClusters(registry_, overloaded);
  if (tracker_ != nullptr) {
    tracker_->Record(ToSeconds(app_->sim().Now()), last_clusters_);
  }
  if (decision_observer_ != nullptr) {
    decision_observer_->BeginTick(ToSeconds(app_->sim().Now()), overloaded,
                                  last_clusters_);
  }

  // Which APIs are members of some cluster (i.e. touch an overload)?
  std::vector<bool> in_cluster(static_cast<std::size_t>(app_->NumApis()), false);
  for (const auto& cluster : last_clusters_) {
    for (const sim::ApiId a : cluster.apis) in_cluster[a] = true;
  }

  // --- Per-cluster load control (parallel; sequential in the ablation). ----
  if (!last_clusters_.empty()) {
    std::size_t begin = 0, end = last_clusters_.size();
    if (!config_.enable_clustering) {
      // Naive sequential control: one sub-problem per tick, round robin.
      begin = sequential_cursor_ % last_clusters_.size();
      end = begin + 1;
      ++sequential_cursor_;
    }
    std::vector<bool> overloaded_set(static_cast<std::size_t>(app_->NumServices()),
                                     false);
    for (const sim::ServiceId s : overloaded) overloaded_set[s] = true;
    for (std::size_t c = begin; c < end; ++c) {
      const Cluster& cluster = last_clusters_[c];
      if (cluster.overloaded.empty()) continue;
      // Resolve the cluster's overloaded services fewest-APIs-first (§4.1
      // target-selection order). A bottleneck being *held* at capacity
      // stays in the overloaded set indefinitely, so strict
      // one-service-at-a-time would leave every other bottleneck in the
      // cluster unmanaged; instead we progress to further targets within
      // the tick as long as their candidate APIs were not already adjusted
      // by an earlier target (decisions stay independent).
      std::vector<sim::ServiceId> targets = cluster.overloaded;
      switch (config_.target_order) {
        case TargetOrder::kFewestApisFirst:
          std::sort(targets.begin(), targets.end(),
                    [this](sim::ServiceId a, sim::ServiceId b) {
                      const int ca = registry_.ApiCount(a), cb = registry_.ApiCount(b);
                      return ca != cb ? ca < cb : a < b;
                    });
          break;
        case TargetOrder::kMostApisFirst:
          std::sort(targets.begin(), targets.end(),
                    [this](sim::ServiceId a, sim::ServiceId b) {
                      const int ca = registry_.ApiCount(a), cb = registry_.ApiCount(b);
                      return ca != cb ? ca > cb : a < b;
                    });
          break;
        case TargetOrder::kServiceIdOrder:
          break;  // cluster.overloaded is already sorted by id
      }
      std::vector<bool> adjusted(static_cast<std::size_t>(app_->NumApis()), false);
      for (const sim::ServiceId target : targets) {
        const std::vector<sim::ApiId>& all_candidates = registry_.ApisOf(target);
        // APIs already adjusted for an earlier (fewer-API) target this tick
        // are off limits; the remaining candidates are still actionable.
        std::vector<sim::ApiId> candidates;
        for (const sim::ApiId a : all_candidates) {
          if (!adjusted[a]) candidates.push_back(a);
        }
        if (candidates.empty()) continue;
        for (const sim::ApiId a : candidates) {
          adjusted[a] = true;
          EnsureCapped(a, snap);
        }
        const ControlState state = StateOf(candidates, snap);
        const double action = ClusterController(target).DecideStep(state);
        ++decisions_;
        decisions_counter_->Inc();
        if (decision_observer_ != nullptr) {
          decision_observer_->OnClusterDecision(target, candidates, state, action);
        }
        if (action > 0.0) {
          // §4.1: only rate-increase APIs whose execution paths contain no
          // overloaded microservice beyond the target being probed —
          // increasing an API still gated elsewhere only manufactures
          // partially-processed responses (Fig. 6). If nobody qualifies,
          // fall back to all candidates so the capacity search never
          // stalls.
          std::vector<sim::ApiId> eligible;
          for (const sim::ApiId a : candidates) {
            bool gated_elsewhere = false;
            for (const sim::ServiceId s : registry_.ServicesOf(a)) {
              if (s != target && overloaded_set[s]) {
                gated_elsewhere = true;
                break;
              }
            }
            if (!gated_elsewhere) eligible.push_back(a);
          }
          AdjustRate(eligible.empty() ? candidates : eligible, action);
        } else {
          AdjustRate(candidates, action);
        }
      }
    }
  }

  // --- Recovery of rate-limited APIs with overload-free paths (§4.1). ------
  for (sim::ApiId a = 0; a < app_->NumApis(); ++a) {
    if (!controls_[a].capped || in_cluster[a]) continue;
    if (config_.deactivate_when_slack &&
        controls_[a].rate > static_cast<double>(snap.apis[a].offered)) {
      // The limit no longer binds and nothing on the path is overloaded:
      // load control for this API is deactivated (§4.1).
      controls_[a].capped = false;
      limit_gauges_[a]->Set(std::numeric_limits<double>::infinity());
      continue;
    }
    const ControlState state = StateOf({a}, snap);
    const double action = config_.recovery_step > 0.0
                              ? config_.recovery_step
                              : RecoveryController(a).DecideStep(state);
    ++decisions_;
    decisions_counter_->Inc();
    if (decision_observer_ != nullptr) {
      decision_observer_->OnRecoveryDecision(a, state, action);
    }
    if (action != 0.0) SetRate(a, controls_[a].rate * (1.0 + action));
  }
  if (decision_observer_ != nullptr) decision_observer_->EndTick();
}

}  // namespace topfull::core

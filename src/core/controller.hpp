// TopFullController: the end-to-end overload controller (paper §4).
//
// Every control period (1 s):
//   1. read the freshly closed metrics window,
//   2. detect overloaded microservices,
//   3. cluster the affected APIs (Eq. 2) — re-clustered every tick,
//   4. in each cluster (in parallel in the real system; the decision logic
//      is per-cluster-independent here) pick the target = overloaded service
//      used by the fewest APIs and apply Algorithm 1 with the step chosen by
//      the cluster's rate controller,
//   5. separately rate-increase APIs that are rate-limited but currently
//      traverse no overloaded microservice (the recovery controllers).
//
// Admission itself is a per-API token bucket at the entry gateway (§5).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "admit/plane.hpp"
#include "core/cluster_tracker.hpp"
#include "core/clustering.hpp"
#include "core/decision_observer.hpp"
#include "core/overload.hpp"
#include "core/rate_controller.hpp"
#include "core/registry.hpp"
#include "sim/app.hpp"

namespace topfull::core {

/// Order in which a cluster's overloaded services are targeted (§4.1: the
/// paper argues fewest-APIs-first; the alternatives exist for the ablation
/// bench).
enum class TargetOrder {
  kFewestApisFirst,  ///< the paper's rule
  kMostApisFirst,    ///< adversarial inversion
  kServiceIdOrder,   ///< arbitrary fixed order
};

struct TopFullConfig {
  SimTime period = Seconds(1);
  OverloadConfig overload;
  TargetOrder target_order = TargetOrder::kFewestApisFirst;
  /// Which end-to-end latency percentile feeds the controller state.
  double latency_percentile = 95.0;
  /// Ablation switch (§6.2 "w/o cluster"): when false, only one cluster is
  /// controlled per tick (naive sequential load control).
  bool enable_clustering = true;
  /// Respect business priorities in Algorithm 1. With equal priorities all
  /// candidates are adjusted together.
  bool respect_priority = true;
  /// Rate-limit floor (rps) so APIs can always recover.
  double min_rate = 20.0;
  /// Rate-limit ceiling.
  double max_rate = 1e7;
  /// Token-bucket depth as a fraction of the rate (burst tolerance).
  double burst_fraction = 0.25;
  double min_burst = 4.0;
  /// Recovery reopening step (§4.1). 0 keeps the default behaviour — the
  /// prototype controller (a second RL/MIMD instance) also decides recovery
  /// steps. > 0 reopens rate-limited APIs whose paths are overload-free by
  /// this fixed multiplicative step instead: optimistic reopening is safe
  /// because an API whose path re-overloads falls back under cluster
  /// control at the very next tick.
  double recovery_step = 0.0;
  /// §4.1 deactivation: drop an API's rate limiter entirely once it stops
  /// binding — the limit exceeds the API's offered rate while no service on
  /// its path is overloaded.
  bool deactivate_when_slack = false;
};

class TopFullController : public sim::EntryAdmission {
 public:
  /// `prototype` supplies per-cluster/per-API controller instances via
  /// Clone(); pass an RlRateController for TopFull proper, a
  /// MimdRateController / AimdRateController for the ablations.
  TopFullController(sim::Application* app, std::unique_ptr<RateController> prototype,
                    TopFullConfig config = {});

  /// Registers the periodic control loop. Call after Application::Finalize()
  /// (so the metrics window closes before each control tick).
  void Start();

  /// One control tick (exposed for tests and for the RL application env).
  void Tick();

  // sim::EntryAdmission:
  bool Admit(sim::ApiId api, SimTime now) override;

  // --- Introspection ---------------------------------------------------------
  /// Current rate limit; +infinity semantics (uncapped) reported as nullopt.
  std::optional<double> RateLimit(sim::ApiId api) const;
  const std::vector<Cluster>& LastClusters() const { return last_clusters_; }
  const ApiRegistry& registry() const { return registry_; }
  const TopFullConfig& config() const { return config_; }

  /// Overrides the rate limit directly (used by the RL training env).
  void ForceRateLimit(sim::ApiId api, double rate);

  /// Control state of an API set against the latest metrics window (what a
  /// rate controller for that set would observe). Public for the RL
  /// training environment and for tests.
  ControlState StateOf(const std::vector<sim::ApiId>& apis) const;

  /// Total control decisions taken (for overhead accounting).
  std::uint64_t Decisions() const { return decisions_; }

  /// Attaches a cluster-evolution tracker (not owned); every tick's
  /// clustering is recorded for the re-clustering dynamics analysis.
  void SetClusterTracker(ClusterTracker* tracker) { tracker_ = tracker; }

  /// Attaches a decision observer (not owned); every tick's detections,
  /// Algorithm 1 decisions and rate-limit changes are reported to it.
  /// Pass-through: cannot influence control behaviour.
  void SetDecisionObserver(DecisionObserver* observer) { decision_observer_ = observer; }

  /// The concurrent admission plane backing Admit(). The sim drives it from
  /// one thread (decision-stream bit-identical to the historical per-API
  /// TokenBucket), but the same object is safe to hammer from any number of
  /// gateway threads while Tick() republishes limits.
  const admit::AdmissionPlane& admission_plane() const { return plane_; }

 private:
  struct ApiControl {
    bool capped = false;
    double rate = 0.0;
    int slot = -1;  ///< admission-plane slot backing this API's entry gate
  };

  /// Applies Algorithm 1 to `candidates` with multiplicative step `action`.
  void AdjustRate(const std::vector<sim::ApiId>& candidates, double action);
  void SetRate(sim::ApiId api, double rate);
  /// Starts controlling an uncapped API: seeds its limit from the admitted
  /// rate observed in the last window.
  void EnsureCapped(sim::ApiId api, const sim::Snapshot& snap);
  ControlState StateOf(const std::vector<sim::ApiId>& apis,
                       const sim::Snapshot& snap) const;
  double LatencyOf(const sim::ApiWindow& w) const;
  RateController& ClusterController(sim::ServiceId target);
  RateController& RecoveryController(sim::ApiId api);

  sim::Application* app_;
  ApiRegistry registry_;
  std::unique_ptr<RateController> prototype_;
  TopFullConfig config_;
  std::vector<ApiControl> controls_;
  admit::AdmissionPlane plane_;
  admit::CachedGate gate_;
  // Live metrics-registry handles (owned by the app's registry).
  obs::Counter* ticks_counter_ = nullptr;
  obs::Counter* decisions_counter_ = nullptr;
  obs::Counter* reconfigs_skipped_counter_ = nullptr;
  obs::Gauge* overloaded_gauge_ = nullptr;
  std::vector<obs::Gauge*> limit_gauges_;
  std::map<sim::ServiceId, std::unique_ptr<RateController>> cluster_controllers_;
  std::map<sim::ApiId, std::unique_ptr<RateController>> recovery_controllers_;
  std::vector<Cluster> last_clusters_;
  ClusterTracker* tracker_ = nullptr;
  DecisionObserver* decision_observer_ = nullptr;
  std::vector<bool> flagged_;  ///< hysteresis state (when enabled)
  std::size_t sequential_cursor_ = 0;  // for the w/o-clustering ablation
  std::uint64_t decisions_ = 0;
  bool started_ = false;
};

}  // namespace topfull::core

// Controller decision hooks.
//
// TopFullController reports every control tick — the detected overloaded
// services, the tick's clustering, each Algorithm 1 decision (target,
// candidate APIs, observed state, chosen step), each recovery decision, and
// every rate-limit mutation — to an optional observer. Observation is
// pass-through: the observer cannot influence decisions, so attaching one
// never changes simulation results. obs::DecisionLog materialises the stream
// as replayable JSONL.
#pragma once

#include <vector>

#include "core/clustering.hpp"
#include "core/rate_controller.hpp"

namespace topfull::core {

class DecisionObserver {
 public:
  virtual ~DecisionObserver() = default;

  /// A control tick began: time, the overloaded-service set (after
  /// hysteresis) and the tick's clustering. Every later hook until EndTick
  /// belongs to this tick.
  virtual void BeginTick(double t_s, const std::vector<sim::ServiceId>& overloaded,
                         const std::vector<Cluster>& clusters) = 0;

  /// Algorithm 1 ran for `target` over `candidates` observing `state` and
  /// chose the multiplicative step `action`.
  virtual void OnClusterDecision(sim::ServiceId target,
                                 const std::vector<sim::ApiId>& candidates,
                                 const ControlState& state, double action) = 0;

  /// A recovery controller adjusted a rate-limited API whose paths are
  /// currently overload-free.
  virtual void OnRecoveryDecision(sim::ApiId api, const ControlState& state,
                                  double action) = 0;

  /// An API's rate limit changed from `before` to `after` rps (`before` is
  /// 0 when the API was just brought under control).
  virtual void OnRateChange(sim::ApiId api, double before, double after) = 0;

  virtual void EndTick() = 0;
};

}  // namespace topfull::core

// Overload detection from the per-window service metrics.
//
// The paper flags a microservice as overloaded when its resource utilisation
// exceeds a predetermined threshold (§4.2); we additionally (and optionally)
// treat a sustained per-service queueing delay as overload, which catches
// saturation that CPU accounting alone can miss (e.g. pods crash-looping).
#pragma once

#include <vector>

#include "sim/metrics.hpp"

namespace topfull::core {

struct OverloadConfig {
  double util_threshold = 0.95;
  bool use_queue_delay = true;
  double queue_delay_threshold_s = 0.2;
  /// Optional hysteresis: once flagged, a service stays overloaded until
  /// its utilisation falls below this exit threshold (two-threshold
  /// detector; stabilises cluster membership while a bottleneck is being
  /// held at capacity). <= 0 disables (stateless detection).
  double util_exit_threshold = -1.0;
};

inline std::vector<sim::ServiceId> DetectOverloaded(const sim::Snapshot& snap,
                                                    const OverloadConfig& config) {
  std::vector<sim::ServiceId> out;
  for (std::size_t s = 0; s < snap.services.size(); ++s) {
    const auto& w = snap.services[s];
    const bool util_over = w.cpu_utilization > config.util_threshold;
    const bool delay_over =
        config.use_queue_delay && w.avg_queue_delay_s > config.queue_delay_threshold_s;
    if (util_over || delay_over) out.push_back(static_cast<sim::ServiceId>(s));
  }
  return out;
}

}  // namespace topfull::core

#include "core/rate_controller.hpp"

#include "rl/observation.hpp"

namespace topfull::core {

double RlRateController::DecideStep(const ControlState& state) {
  const std::vector<double> obs = rl::MakeObservation(
      state.goodput, state.rate_limit, state.latency_s, state.slo_s);
  const double action = policy_->MeanAction(obs);
  return std::clamp(action, -0.5, 0.5);
}

}  // namespace topfull::core

// Rate-controller policies: given the end-to-end state of a set of candidate
// APIs, decide the multiplicative step applied to their entry rate limits.
//
// - RlRateController: the paper's contribution — a trained PPO policy
//   (deterministic mean action at deployment).
// - MimdRateController: the static threshold-based multiplicative
//   increase/decrease ablation (§6.2) and the DAGOR-style fixed-step
//   controller of Fig. 13 (configurable step sizes).
// - AimdRateController: the Breakwater-style controller used for
//   TopFull(BW) (§6.3): additive increase below the delay target,
//   multiplicative decrease proportional to the overload above it.
#pragma once

#include <algorithm>
#include <memory>

#include "rl/policy.hpp"

namespace topfull::core {

/// Observed state of the candidate API set for one decision.
struct ControlState {
  double goodput = 0.0;     ///< sum of the candidates' goodput (rps)
  double rate_limit = 0.0;  ///< sum of the candidates' current rate limits
  double latency_s = 0.0;   ///< highest e2e percentile latency among them
  double slo_s = 1.0;
};

class RateController {
 public:
  virtual ~RateController() = default;

  /// Returns the multiplicative step in [-0.5, 0.5]; the caller applies
  /// rate *= (1 + step) per Algorithm 1.
  virtual double DecideStep(const ControlState& state) = 0;

  /// Fresh instance with the same configuration (per-cluster controllers).
  virtual std::unique_ptr<RateController> Clone() const = 0;

  /// Clears adaptation state (episode boundaries in training).
  virtual void Reset() {}
};

/// RL-based controller: wraps a (shared, already-trained) policy.
class RlRateController : public RateController {
 public:
  explicit RlRateController(const rl::GaussianPolicy* policy) : policy_(policy) {}

  double DecideStep(const ControlState& state) override;
  std::unique_ptr<RateController> Clone() const override {
    return std::make_unique<RlRateController>(policy_);
  }

 private:
  const rl::GaussianPolicy* policy_;
};

/// Threshold-based multiplicative increase / decrease.
/// Defaults are the paper's ablation: -0.05 above the SLO, +0.01 below it.
class MimdRateController : public RateController {
 public:
  MimdRateController(double decrease_step = 0.05, double increase_step = 0.01)
      : decrease_(decrease_step), increase_(increase_step) {}

  double DecideStep(const ControlState& state) override {
    return state.latency_s > state.slo_s ? -decrease_ : increase_;
  }
  std::unique_ptr<RateController> Clone() const override {
    return std::make_unique<MimdRateController>(decrease_, increase_);
  }

 private:
  double decrease_;
  double increase_;
};

/// Breakwater-style AIMD on the rate limit (TopFull(BW), §6.3).
struct AimdConfig {
  double additive_rps = 20.0;  ///< increase per decision below the target
  double beta = 0.4;           ///< multiplicative-decrease aggressiveness
  double target_fraction = 0.8;  ///< delay target as a fraction of the SLO
  double max_decrease = 0.5;
};

class AimdRateController : public RateController {
 public:
  explicit AimdRateController(AimdConfig config = {}) : config_(config) {}

  double DecideStep(const ControlState& state) override {
    const double target = config_.target_fraction * state.slo_s;
    if (state.latency_s <= target) {
      // Additive increase expressed as a multiplicative step.
      if (state.rate_limit <= 0.0) return 0.0;
      return std::min(0.5, config_.additive_rps / state.rate_limit);
    }
    const double overload = (state.latency_s - target) / target;
    return -std::min(config_.max_decrease, config_.beta * overload);
  }
  std::unique_ptr<RateController> Clone() const override {
    return std::make_unique<AimdRateController>(config_);
  }

 private:
  AimdConfig config_;
};

}  // namespace topfull::core

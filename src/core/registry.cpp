#include "core/registry.hpp"

#include <algorithm>

namespace topfull::core {

ApiRegistry::ApiRegistry(const sim::Application& app) {
  api_services_.resize(app.NumApis());
  service_apis_.resize(app.NumServices());
  for (sim::ApiId a = 0; a < app.NumApis(); ++a) {
    const auto& involved = app.api(a).involved_services();
    api_services_[a].assign(involved.begin(), involved.end());
    for (const sim::ServiceId s : involved) service_apis_[s].push_back(a);
  }
}

bool ApiRegistry::Uses(sim::ApiId api, sim::ServiceId service) const {
  const auto& services = api_services_[api];
  return std::binary_search(services.begin(), services.end(), service);
}

}  // namespace topfull::core

// Execution-path registry: the static API <-> microservice membership map.
//
// Built once from the application's API specs (the production system builds
// it from distributed traces, §5). Branching APIs are registered as involved
// in every service of every possible path (§4.2).
#pragma once

#include <vector>

#include "sim/app.hpp"

namespace topfull::core {

class ApiRegistry {
 public:
  explicit ApiRegistry(const sim::Application& app);

  /// Services an API's (union of) execution paths traverse.
  const std::vector<sim::ServiceId>& ServicesOf(sim::ApiId api) const {
    return api_services_[api];
  }

  /// APIs whose execution paths traverse a service.
  const std::vector<sim::ApiId>& ApisOf(sim::ServiceId service) const {
    return service_apis_[service];
  }

  /// Number of distinct APIs using the service (the target-selection key:
  /// TopFull resolves the overloaded service used by the fewest APIs first).
  int ApiCount(sim::ServiceId service) const {
    return static_cast<int>(service_apis_[service].size());
  }

  bool Uses(sim::ApiId api, sim::ServiceId service) const;

  int num_apis() const { return static_cast<int>(api_services_.size()); }
  int num_services() const { return static_cast<int>(service_apis_.size()); }

 private:
  std::vector<std::vector<sim::ServiceId>> api_services_;
  std::vector<std::vector<sim::ApiId>> service_apis_;
};

}  // namespace topfull::core

#include "des/sharded_simulation.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <mutex>

namespace topfull::des {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

/// Phase barrier. The RunUntil caller publishes (phase, target) under the
/// mutex and bumps `seq`; workers wait for a new seq, run their shard's
/// share, and decrement `pending`. The caller doubles as shard 0's
/// executor, so only N-1 workers exist. A condition variable (no spinning)
/// keeps oversubscribed hosts — including single-core CI runners — from
/// livelocking: a phase is short relative to a context switch only when
/// shards are tiny, and then the sequential mode is the right tool anyway.
struct ShardedSimulation::Sync {
  std::mutex mutex;
  std::condition_variable start;
  std::condition_variable done;
  std::uint64_t seq = 0;
  Phase phase = Phase::kIdle;
  SimTime target = 0;
  int pending = 0;
};

void ShardedSimulation::Init() {
  assert(!shards_.empty());
  const std::size_t n = shards_.size();
  mailboxes_.resize(n * n);
  for (auto& box : mailboxes_)
    box = std::make_unique<SpscMailbox<Message>>();
  stats_.resize(n);
  sync_ = std::make_unique<Sync>();
}

ShardedSimulation::ShardedSimulation(std::vector<Simulation*> shards,
                                     Options options)
    : shards_(std::move(shards)), options_(options) {
  Init();
}

ShardedSimulation::ShardedSimulation(int num_shards, Options options)
    : options_(options) {
  assert(num_shards >= 1);
  owned_.reserve(static_cast<std::size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    owned_.push_back(std::make_unique<Simulation>());
    shards_.push_back(owned_.back().get());
  }
  Init();
}

ShardedSimulation::~ShardedSimulation() { StopWorkers(); }

void ShardedSimulation::Post(int from, int to, SimTime when, InlineEvent fn) {
  assert(from >= 0 && from < num_shards());
  assert(to >= 0 && to < num_shards());
  if (to == from) {
    shards_[static_cast<std::size_t>(from)]->ScheduleAt(when, std::move(fn));
    return;
  }
  // Conservative-lookahead contract: the receiver may already be at
  // sender_now rounded up to the window edge, so anything closer than
  // `lookahead` could land in its past.
  assert(when >= shards_[static_cast<std::size_t>(from)]->Now() +
                     options_.lookahead &&
         "cross-shard message undercuts the lookahead");
  MailboxFor(from, to).Push(Message{when, std::move(fn)});
  ++stats_[static_cast<std::size_t>(from)].messages_sent;
}

void ShardedSimulation::DrainInbox(int shard_index) {
  Simulation& sim = *shards_[static_cast<std::size_t>(shard_index)];
  ShardStats& st = stats_[static_cast<std::size_t>(shard_index)];
  // Fixed order — sender id ascending, FIFO within a mailbox — so the
  // receiving engine assigns tie-break seq numbers deterministically no
  // matter how threads were scheduled while the messages were produced.
  std::uint64_t drained = 0;
  for (int from = 0; from < num_shards(); ++from) {
    if (from == shard_index) continue;
    drained += MailboxFor(from, shard_index).Drain([&sim](Message&& m) {
      assert(m.when >= sim.Now() && "cross-shard message in the past");
      sim.ScheduleAt(m.when, std::move(m.fn));
    });
  }
  st.messages_delivered += drained;
  st.mailbox_depth_hwm = std::max(st.mailbox_depth_hwm, drained);
}

void ShardedSimulation::DoPhase(int shard_index, Phase phase, SimTime target) {
  switch (phase) {
    case Phase::kDrain:
      DrainInbox(shard_index);
      break;
    case Phase::kExecute:
      shards_[static_cast<std::size_t>(shard_index)]->RunUntil(target);
      break;
    case Phase::kIdle:
    case Phase::kExit:
      break;
  }
}

void ShardedSimulation::WorkerLoop(int shard_index) {
  ShardStats& st = stats_[static_cast<std::size_t>(shard_index)];
  std::uint64_t seen = 0;
  for (;;) {
    Phase phase;
    SimTime target;
    {
      const auto t0 = std::chrono::steady_clock::now();
      std::unique_lock<std::mutex> lock(sync_->mutex);
      sync_->start.wait(lock, [&] { return sync_->seq != seen; });
      seen = sync_->seq;
      phase = sync_->phase;
      target = sync_->target;
      st.blocked_s += SecondsSince(t0);
    }
    if (phase == Phase::kExit) return;
    const auto t0 = std::chrono::steady_clock::now();
    DoPhase(shard_index, phase, target);
    st.busy_s += SecondsSince(t0);
    {
      std::lock_guard<std::mutex> lock(sync_->mutex);
      if (--sync_->pending == 0) sync_->done.notify_one();
    }
  }
}

void ShardedSimulation::RunPhase(Phase phase, SimTime target) {
  if (workers_.empty()) {
    for (int i = 0; i < num_shards(); ++i) DoPhase(i, phase, target);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(sync_->mutex);
    sync_->phase = phase;
    sync_->target = target;
    sync_->pending = num_shards() - 1;
    ++sync_->seq;
  }
  sync_->start.notify_all();
  ShardStats& st = stats_[0];
  const auto t0 = std::chrono::steady_clock::now();
  DoPhase(0, phase, target);
  st.busy_s += SecondsSince(t0);
  const auto t1 = std::chrono::steady_clock::now();
  {
    std::unique_lock<std::mutex> lock(sync_->mutex);
    sync_->done.wait(lock, [&] { return sync_->pending == 0; });
  }
  st.blocked_s += SecondsSince(t1);
}

void ShardedSimulation::StartWorkers() {
  workers_.reserve(static_cast<std::size_t>(num_shards() - 1));
  for (int i = 1; i < num_shards(); ++i)
    workers_.emplace_back([this, i] { WorkerLoop(i); });
}

void ShardedSimulation::StopWorkers() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(sync_->mutex);
    sync_->phase = Phase::kExit;
    ++sync_->seq;
  }
  sync_->start.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
}

void ShardedSimulation::RunUntil(SimTime end) {
  if (num_shards() == 1) {
    // Bit-identical PR 5 fast path: no windows, no barrier, no threads.
    shards_[0]->RunUntil(end);
    horizon_ = std::max(horizon_, end);
    return;
  }
  assert(options_.lookahead > 0 && "lookahead must be positive for N > 1");
  if (options_.threaded && workers_.empty()) StartWorkers();
  while (horizon_ < end) {
    const SimTime h = std::min(horizon_ + options_.lookahead, end);
    if (round_observer_) {
      // Per-round wall clocks are observer-only: the protocol itself never
      // needs them and the unobserved hot loop stays clock-free.
      const auto t0 = std::chrono::steady_clock::now();
      RunPhase(Phase::kDrain, h);
      const auto t1 = std::chrono::steady_clock::now();
      RunPhase(Phase::kExecute, h);
      const auto t2 = std::chrono::steady_clock::now();
      horizon_ = h;
      ++rounds_;
      RoundInfo info;
      info.round = rounds_ - 1;
      info.horizon = horizon_;
      info.drain_s = std::chrono::duration<double>(t1 - t0).count();
      info.execute_s = std::chrono::duration<double>(t2 - t1).count();
      info.wall_s = info.drain_s + info.execute_s;
      round_observer_(info);
    } else {
      RunPhase(Phase::kDrain, h);
      RunPhase(Phase::kExecute, h);
      horizon_ = h;
      ++rounds_;
    }
  }
}

std::uint64_t ShardedSimulation::TotalEventsProcessed() const {
  std::uint64_t n = 0;
  for (const Simulation* s : shards_) n += s->EventsProcessed();
  return n;
}

std::uint64_t ShardedSimulation::TotalEventsScheduled() const {
  std::uint64_t n = 0;
  for (const Simulation* s : shards_) n += s->EventsScheduled();
  return n;
}

std::uint64_t ShardedSimulation::TotalEventsCancelled() const {
  std::uint64_t n = 0;
  for (const Simulation* s : shards_) n += s->EventsCancelled();
  return n;
}

std::uint64_t ShardedSimulation::TotalMessages() const {
  std::uint64_t n = 0;
  for (const auto& s : stats_) n += s.messages_sent;
  return n;
}

}  // namespace topfull::des

// Sharded parallel DES: conservative-lookahead synchronization of many
// single-threaded des::Simulation engines.
//
// The service graph decomposes into near-independent clusters (§6.4 of the
// paper — the same decomposition the overload controller exploits), so a
// whole-machine simulation is N per-shard engines that only interact through
// cross-shard RPC edges. Every such edge has a known minimum network
// latency, which gives a global conservative lookahead L = min over edges:
// no shard can affect another sooner than L ahead of its own clock.
//
// Synchronization is a bounded-lag window protocol (a simplified
// Chandy–Misra: the all-to-all mailbox topology makes per-link null
// messages degenerate to one global window bound). Time advances in rounds
// of two barrier-separated phases over a window (H_prev, H]:
//
//   drain phase    every shard empties its inbound mailboxes in a fixed
//                  order (sender shard id ascending, FIFO within a
//                  mailbox) and schedules the messages into its local
//                  engine. No shard produces messages in this phase.
//   execute phase  every shard runs its local engine to the horizon H =
//                  H_prev + L. Sends during this phase only Push into
//                  outbound mailboxes; no shard consumes.
//
// Safety: a message Posted during the execute phase of round k has send
// time > H_{k-1} and delivery time >= send + L > H_{k-1} + L = H_k, so
// draining it at the start of round k+1 (receiver clock == H_k) can never
// deliver into the receiver's past. Phase separation means push and pop on
// a mailbox are never concurrent (see SpscMailbox), and the fixed drain
// order makes delivery -> engine seq assignment deterministic regardless
// of thread scheduling: a fixed shard count yields bit-identical runs.
//
// shards == 1 bypasses the protocol entirely (no threads, no windows, a
// plain RunUntil) and is byte-identical to the PR 5 engine; the
// engine-identity digests pin this.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/ring_queue.hpp"
#include "common/sim_time.hpp"
#include "des/simulation.hpp"

namespace topfull::des {

class ShardedSimulation {
 public:
  struct Options {
    /// Conservative lookahead: the minimum cross-shard message latency.
    /// Post() asserts no message undercuts it. Must be > 0 for N > 1.
    SimTime lookahead = Millis(1);
    /// Run execute phases on worker threads (default) or on the calling
    /// thread, one shard at a time. Both modes run the identical window
    /// protocol and produce bit-identical results; sequential exists for
    /// determinism cross-checks and for debugging under a debugger.
    bool threaded = true;
  };

  /// Per-shard accounting for the benchmark tables and the live plane.
  struct ShardStats {
    double busy_s = 0;      ///< wall time inside drain/execute phases
    double blocked_s = 0;   ///< wall time waiting on the barrier
    std::uint64_t messages_sent = 0;
    std::uint64_t messages_delivered = 0;
    /// Deepest inbound backlog observed at a drain phase (messages queued
    /// across all senders since the previous round).
    std::uint64_t mailbox_depth_hwm = 0;
  };

  /// Wall-clock accounting for one completed synchronization round,
  /// delivered to the round observer on the RunUntil caller thread.
  struct RoundInfo {
    std::uint64_t round = 0;  ///< 0-based index of the round just completed
    SimTime horizon = 0;      ///< global horizon after the round
    double wall_s = 0.0;      ///< drain + execute wall time
    double drain_s = 0.0;
    double execute_s = 0.0;
  };

  /// Called after every completed round, on the caller thread, while all
  /// workers are parked at the barrier — the observer may therefore read
  /// every shard engine and Stats() without synchronization. It must not
  /// schedule events or otherwise mutate engine state (determinism). The
  /// per-round wall clocks are only measured while an observer is set.
  using RoundObserver = std::function<void(const RoundInfo&)>;
  void SetRoundObserver(RoundObserver observer) {
    round_observer_ = std::move(observer);
  }

  /// Non-owning: synchronizes engines owned elsewhere (e.g. by
  /// sim::Application instances). All pointers must outlive this object
  /// and every engine must be at the same clock (normally 0).
  ShardedSimulation(std::vector<Simulation*> shards, Options options);

  /// Owning convenience for DES-level tests: constructs `num_shards` fresh
  /// engines internally.
  ShardedSimulation(int num_shards, Options options);

  ~ShardedSimulation();

  ShardedSimulation(const ShardedSimulation&) = delete;
  ShardedSimulation& operator=(const ShardedSimulation&) = delete;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  Simulation& shard(int i) { return *shards_[static_cast<std::size_t>(i)]; }
  const Simulation& shard(int i) const {
    return *shards_[static_cast<std::size_t>(i)];
  }

  /// The globally synchronized time: every shard's clock after RunUntil.
  SimTime Horizon() const { return horizon_; }

  SimTime lookahead() const { return options_.lookahead; }

  /// Sends `fn` from shard `from` to shard `to`, to run at absolute time
  /// `when` on the receiving shard. Must be called from shard `from`'s
  /// execute phase (i.e. from inside one of its events), with
  /// `when >= shard(from).Now() + lookahead`. Messages to self are legal
  /// and become plain local events.
  void Post(int from, int to, SimTime when, InlineEvent fn);

  /// Advances every shard to `end` in lookahead windows. Callable
  /// repeatedly; messages still in flight past `end` are delivered by the
  /// next call's first drain phase.
  void RunUntil(SimTime end);

  /// Aggregate engine counters over all shards.
  std::uint64_t TotalEventsProcessed() const;
  std::uint64_t TotalEventsScheduled() const;
  std::uint64_t TotalEventsCancelled() const;
  std::uint64_t TotalMessages() const;

  /// Number of synchronization rounds executed so far.
  std::uint64_t Rounds() const { return rounds_; }

  /// Per-shard busy/blocked accounting. Stats are collected with wall
  /// clocks only in threaded mode; sequential mode reports zeros.
  const std::vector<ShardStats>& Stats() const { return stats_; }

 private:
  struct Message {
    SimTime when = 0;
    InlineEvent fn;
  };

  enum class Phase : std::uint8_t { kIdle, kDrain, kExecute, kExit };

  SpscMailbox<Message>& MailboxFor(int from, int to) {
    return *mailboxes_[static_cast<std::size_t>(from) *
                           static_cast<std::size_t>(num_shards()) +
                       static_cast<std::size_t>(to)];
  }

  void Init();
  void StartWorkers();
  void StopWorkers();
  void WorkerLoop(int shard_index);
  /// Runs one phase across all shards and waits for completion. The
  /// calling thread executes shard 0's share itself.
  void RunPhase(Phase phase, SimTime target);
  void DoPhase(int shard_index, Phase phase, SimTime target);
  void DrainInbox(int shard_index);

  std::vector<Simulation*> shards_;
  std::vector<std::unique_ptr<Simulation>> owned_;
  Options options_;
  SimTime horizon_ = 0;
  std::uint64_t rounds_ = 0;
  RoundObserver round_observer_;

  /// Dense from-major mailbox matrix; [from * N + to]. Heap-allocated so
  /// each alignas(64) mailbox sits on its own cache line.
  std::vector<std::unique_ptr<SpscMailbox<Message>>> mailboxes_;
  std::vector<ShardStats> stats_;

  // Barrier state (threaded mode). Workers handle shards 1..N-1; the
  // RunUntil caller thread doubles as shard 0's executor.
  struct Sync;
  std::unique_ptr<Sync> sync_;
  std::vector<std::thread> workers_;
};

}  // namespace topfull::des

#include "des/simulation.hpp"

#include <cassert>
#include <memory>
#include <utility>

namespace topfull::des {

void Simulation::ScheduleAt(SimTime when, Callback fn) {
  assert(when >= now_ && "cannot schedule in the past");
  queue_.push(Event{when < now_ ? now_ : when, next_seq_++, std::move(fn)});
}

void Simulation::SchedulePeriodic(SimTime start, SimTime period, Callback fn) {
  // Re-arms itself after each firing. Shared callback keeps one copy alive.
  auto shared = std::make_shared<Callback>(std::move(fn));
  struct Rearm {
    Simulation* sim;
    SimTime period;
    std::shared_ptr<Callback> fn;
    void operator()() const {
      (*fn)();
      sim->ScheduleAfter(period, Rearm{sim, period, fn});
    }
  };
  ScheduleAt(start, Rearm{this, period, shared});
}

void Simulation::RunUntil(SimTime end) {
  while (!queue_.empty() && queue_.top().when <= end) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.when;
    ++events_processed_;
    ev.fn();
  }
  if (now_ < end) now_ = end;
}

bool Simulation::Step() {
  if (queue_.empty()) return false;
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.when;
  ++events_processed_;
  ev.fn();
  return true;
}

}  // namespace topfull::des

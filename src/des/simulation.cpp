#include "des/simulation.hpp"

#include <cassert>
#include <utility>

namespace topfull::des {

// --- Slot pool ---------------------------------------------------------------

std::uint32_t Simulation::AllocSlot() {
  if (free_slots_.empty()) {
    const auto base = static_cast<std::uint32_t>(slabs_.size() * kSlabSize);
    slabs_.push_back(std::make_unique<Slot[]>(kSlabSize));
    free_slots_.reserve(slabs_.size() * kSlabSize);
    // Reverse order so slot ids are handed out ascending.
    for (std::size_t i = kSlabSize; i > 0; --i) {
      free_slots_.push_back(base + static_cast<std::uint32_t>(i - 1));
    }
  }
  const std::uint32_t id = free_slots_.back();
  free_slots_.pop_back();
  return id;
}

void Simulation::FreeSlot(std::uint32_t id) {
  Slot& s = SlotAt(id);
  s.fn = nullptr;
  ++s.gen;  // invalidate every outstanding handle to this slot
  free_slots_.push_back(id);
}

std::uint32_t Simulation::Resolve(TimerHandle handle) const {
  if (!handle.valid()) return kNoSlot;
  if (handle.slot >= slabs_.size() * kSlabSize) return kNoSlot;
  return SlotAt(handle.slot).gen == handle.gen ? handle.slot : kNoSlot;
}

// --- 4-ary indexed heap ------------------------------------------------------

void Simulation::SiftUp(std::uint32_t pos) {
  const std::uint32_t id = heap_[pos];
  const Slot& s = SlotAt(id);
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) >> 2;
    const std::uint32_t parent_id = heap_[parent];
    if (!Earlier(s, SlotAt(parent_id))) break;
    heap_[pos] = parent_id;
    SlotAt(parent_id).heap_pos = pos;
    pos = parent;
  }
  heap_[pos] = id;
  SlotAt(id).heap_pos = pos;
}

void Simulation::SiftDown(std::uint32_t pos) {
  const auto n = static_cast<std::uint32_t>(heap_.size());
  const std::uint32_t id = heap_[pos];
  const Slot& s = SlotAt(id);
  while (true) {
    const std::uint32_t first_child = (pos << 2) + 1;
    if (first_child >= n) break;
    std::uint32_t best = first_child;
    const std::uint32_t last_child = first_child + 3 < n ? first_child + 3 : n - 1;
    for (std::uint32_t c = first_child + 1; c <= last_child; ++c) {
      if (Earlier(SlotAt(heap_[c]), SlotAt(heap_[best]))) best = c;
    }
    const std::uint32_t best_id = heap_[best];
    if (!Earlier(SlotAt(best_id), s)) break;
    heap_[pos] = best_id;
    SlotAt(best_id).heap_pos = pos;
    pos = best;
  }
  heap_[pos] = id;
  SlotAt(id).heap_pos = pos;
}

void Simulation::HeapPush(std::uint32_t id) {
  heap_.push_back(id);
  SlotAt(id).heap_pos = static_cast<std::uint32_t>(heap_.size() - 1);
  SiftUp(SlotAt(id).heap_pos);
}

void Simulation::HeapRemove(std::uint32_t pos) {
  const std::uint32_t last = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;  // removed the tail
  heap_[pos] = last;
  SlotAt(last).heap_pos = pos;
  // The swapped-in tail may order either way relative to the hole's
  // neighbourhood; one of the two sifts is a no-op.
  SiftUp(pos);
  SiftDown(SlotAt(last).heap_pos);
}

// --- Scheduling --------------------------------------------------------------

Simulation::TimerHandle Simulation::ScheduleAt(SimTime when, Callback fn) {
  assert(when >= now_ && "cannot schedule in the past");
  const std::uint32_t id = AllocSlot();
  Slot& s = SlotAt(id);
  s.when = when < now_ ? now_ : when;
  s.seq = next_seq_++;
  s.period = 0;
  s.fn = std::move(fn);
  HeapPush(id);
  ++events_scheduled_;
  return TimerHandle{id, s.gen};
}

Simulation::TimerHandle Simulation::SchedulePeriodic(SimTime start, SimTime period,
                                                     Callback fn) {
  assert(period > 0 && "periodic events need a positive period");
  TimerHandle handle = ScheduleAt(start, std::move(fn));
  SlotAt(handle.slot).period = period;
  return handle;
}

bool Simulation::Cancel(TimerHandle handle) {
  const std::uint32_t id = Resolve(handle);
  if (id == kNoSlot) return false;
  if (id == running_slot_) {
    // A periodic event cancelling itself mid-callback: suppress the re-arm;
    // RunFront frees the slot when the callback returns.
    if (running_cancelled_) return false;
    running_cancelled_ = true;
    ++events_cancelled_;
    return true;
  }
  HeapRemove(SlotAt(id).heap_pos);
  FreeSlot(id);
  ++events_cancelled_;
  return true;
}

bool Simulation::Reschedule(TimerHandle handle, SimTime when) {
  const std::uint32_t id = Resolve(handle);
  if (id == kNoSlot || id == running_slot_) return false;
  Slot& s = SlotAt(id);
  s.when = when < now_ ? now_ : when;
  s.seq = next_seq_++;  // same tie-break position as cancel + re-schedule
  SiftUp(s.heap_pos);
  SiftDown(s.heap_pos);
  return true;
}

// --- Execution ---------------------------------------------------------------

void Simulation::RunFront() {
  const std::uint32_t id = heap_[0];
  Slot& s = SlotAt(id);
  now_ = s.when;
  ++events_processed_;
  if (s.period == 0) {
    // One-shot: free the slot before running so the callback can observe a
    // consistent queue (its own handle is already dead, like the old
    // pop-then-run engine).
    InlineEvent fn = std::move(s.fn);
    HeapRemove(0);
    FreeSlot(id);
    fn();
    return;
  }
  // Periodic: run, then re-arm the same slot in place. The fresh seq is
  // allocated AFTER the callback returns, matching the old self-re-arming
  // event's tie-break position relative to events the callback scheduled.
  running_slot_ = id;
  running_cancelled_ = false;
  s.fn();
  running_slot_ = kNoSlot;
  if (running_cancelled_) {
    running_cancelled_ = false;
    HeapRemove(s.heap_pos);
    FreeSlot(id);
    return;
  }
  s.when = now_ + s.period;
  s.seq = next_seq_++;
  // Only sift down: the re-armed event moved later in (when, seq) order.
  SiftDown(s.heap_pos);
}

void Simulation::RunUntil(SimTime end) {
  while (!heap_.empty() && SlotAt(heap_[0]).when <= end) RunFront();
  if (now_ < end) now_ = end;
}

bool Simulation::Step() {
  if (heap_.empty()) return false;
  RunFront();
  return true;
}

// --- Invariant check (tests) -------------------------------------------------

bool Simulation::CheckHeapInvariant() const {
  const std::size_t total = slabs_.size() * kSlabSize;
  if (heap_.size() + free_slots_.size() != total) return false;
  for (std::uint32_t pos = 0; pos < heap_.size(); ++pos) {
    const std::uint32_t id = heap_[pos];
    if (id >= total) return false;
    const Slot& s = SlotAt(id);
    if (s.heap_pos != pos) return false;
    if (!s.fn) return false;
    if (pos > 0 && Earlier(s, SlotAt(heap_[(pos - 1) >> 2]))) return false;
  }
  return true;
}

}  // namespace topfull::des

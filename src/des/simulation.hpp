// Discrete-event simulation engine.
//
// A Simulation owns a time-ordered event queue. Components schedule
// callbacks at absolute or relative times; ties are broken by insertion
// order so runs are fully deterministic. The engine is single-threaded by
// design — determinism and reproducibility outrank parallel speed for the
// reproduction experiments.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/sim_time.hpp"

namespace topfull::des {

class Simulation {
 public:
  using Callback = std::function<void()>;

  /// Current simulation time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` at absolute time `when` (>= Now()).
  void ScheduleAt(SimTime when, Callback fn);

  /// Schedules `fn` after `delay` (>= 0) from now.
  void ScheduleAfter(SimTime delay, Callback fn) { ScheduleAt(now_ + delay, std::move(fn)); }

  /// Schedules `fn` every `period`, starting at `start`, until the
  /// simulation ends. The callback sees the Simulation clock advance.
  void SchedulePeriodic(SimTime start, SimTime period, Callback fn);

  /// Runs events until the queue is empty or time would exceed `end`.
  /// The clock is left at `end` afterwards.
  void RunUntil(SimTime end);

  /// Processes a single event; returns false if the queue is empty.
  bool Step();

  /// Number of events processed so far.
  std::uint64_t EventsProcessed() const { return events_processed_; }

  /// Pending event count (for tests).
  std::size_t PendingEvents() const { return queue_.size(); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace topfull::des

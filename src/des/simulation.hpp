// Discrete-event simulation engine.
//
// A Simulation owns a time-ordered event queue. Components schedule
// callbacks at absolute or relative times; ties are broken by insertion
// order so runs are fully deterministic. The engine is single-threaded by
// design — determinism and reproducibility outrank parallel speed for the
// reproduction experiments.
//
// The queue is an indexed 4-ary heap over stable slot storage: every
// scheduled event has a pool slot whose address never moves, and the heap
// orders slot ids by (when, seq). That indirection is what buys O(log n)
// cancellation — ScheduleAt returns a generation-counted TimerHandle, and
// Cancel/Reschedule locate the slot through its back-pointer instead of
// leaving a dead event to fire as a no-op. Callbacks are InlineEvents
// (fixed inline storage, no heap), so scheduling costs zero allocations
// once the slot pool and heap have reached their high-water marks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/inline_function.hpp"
#include "common/sim_time.hpp"

namespace topfull::des {

/// Event callback with guaranteed-inline capture storage. 112 bytes fits
/// the fattest sim-internal capture (a pod completion event carrying its
/// 64-byte DoneFn) with room for a std::function-based test callback;
/// anything larger is a compile error at the schedule site.
using InlineEvent = InlineFunction<void(), 112>;

class Simulation {
 public:
  using Callback = InlineEvent;

  /// Identity of a scheduled event, valid until it fires or is cancelled.
  /// Slot ids are reused; `gen` makes stale handles harmless (Cancel and
  /// Reschedule on a fired/cancelled handle return false — ABA-safe).
  struct TimerHandle {
    std::uint32_t slot = 0xffffffffu;
    std::uint32_t gen = 0;
    bool valid() const { return slot != 0xffffffffu; }
  };

  /// Current simulation time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` at absolute time `when` (>= Now()).
  TimerHandle ScheduleAt(SimTime when, Callback fn);

  /// Schedules `fn` after `delay` (>= 0) from now.
  TimerHandle ScheduleAfter(SimTime delay, Callback fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` every `period` (> 0), starting at `start`, until the
  /// simulation ends or the handle is cancelled. The slot re-arms in place
  /// after each firing (no allocation, no new handle); the returned handle
  /// stays valid across firings.
  TimerHandle SchedulePeriodic(SimTime start, SimTime period, Callback fn);

  /// Cancels a pending event in O(log n). Returns false when the handle is
  /// stale (already fired, already cancelled, or one-shot currently
  /// executing). Cancelling a periodic event from inside its own callback
  /// is allowed and stops the re-arm.
  bool Cancel(TimerHandle handle);

  /// Moves a pending event to absolute time `when` (clamped to >= Now()),
  /// as if it had been cancelled and re-scheduled: the event goes to the
  /// back of the tie-break order at its new time. For a periodic event
  /// this shifts the next firing; the period is unchanged. Returns false
  /// for stale handles and for a periodic event currently executing.
  bool Reschedule(TimerHandle handle, SimTime when);

  /// Runs events until the queue is empty or time would exceed `end`.
  /// The clock is left at `end` afterwards.
  void RunUntil(SimTime end);

  /// Processes a single event; returns false if the queue is empty.
  bool Step();

  /// Number of events processed so far. Cancelled events never fire and
  /// are not counted here.
  std::uint64_t EventsProcessed() const { return events_processed_; }

  /// Number of events cancelled before firing.
  std::uint64_t EventsCancelled() const { return events_cancelled_; }

  /// Number of ScheduleAt/ScheduleAfter/SchedulePeriodic calls (periodic
  /// re-arms not included).
  std::uint64_t EventsScheduled() const { return events_scheduled_; }

  /// Pending event count (for tests).
  std::size_t PendingEvents() const { return heap_.size(); }

  /// Timer slot slab pool occupancy (for the live telemetry plane): total
  /// slots ever carved from slabs, and how many are currently on the free
  /// list. In-use slots == SlotCapacity() - SlotsFree().
  std::size_t SlotCapacity() const { return slabs_.size() * kSlabSize; }
  std::size_t SlotsFree() const { return free_slots_.size(); }

  /// Verifies the 4-ary heap order, the slot back-pointers, and the
  /// free-list accounting. O(n); for tests.
  bool CheckHeapInvariant() const;

 private:
  struct Slot {
    SimTime when = 0;
    std::uint64_t seq = 0;
    SimTime period = 0;  ///< 0 = one-shot
    std::uint32_t heap_pos = 0;
    std::uint32_t gen = 0;
    InlineEvent fn;
  };

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  static constexpr std::size_t kSlabShift = 8;  ///< 256 slots per slab
  static constexpr std::size_t kSlabSize = std::size_t{1} << kSlabShift;

  Slot& SlotAt(std::uint32_t id) {
    return slabs_[id >> kSlabShift][id & (kSlabSize - 1)];
  }
  const Slot& SlotAt(std::uint32_t id) const {
    return slabs_[id >> kSlabShift][id & (kSlabSize - 1)];
  }

  std::uint32_t AllocSlot();
  void FreeSlot(std::uint32_t id);
  /// Resolves a handle to a live slot id, or kNoSlot when stale.
  std::uint32_t Resolve(TimerHandle handle) const;

  static bool Earlier(const Slot& a, const Slot& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }
  void HeapPush(std::uint32_t id);
  void HeapRemove(std::uint32_t pos);
  void SiftUp(std::uint32_t pos);
  void SiftDown(std::uint32_t pos);

  /// Pops and runs the front event. Pre: heap non-empty.
  void RunFront();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t events_cancelled_ = 0;
  std::uint64_t events_scheduled_ = 0;
  std::vector<std::unique_ptr<Slot[]>> slabs_;  ///< stable slot storage
  std::vector<std::uint32_t> free_slots_;
  std::vector<std::uint32_t> heap_;  ///< slot ids, 4-ary min-heap order
  /// Slot id of the periodic event currently executing (kNoSlot otherwise);
  /// lets Cancel/Reschedule from inside the callback interact with the
  /// re-arm correctly.
  std::uint32_t running_slot_ = kNoSlot;
  bool running_cancelled_ = false;
};

}  // namespace topfull::des

#include "exp/csv.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace topfull::exp {

bool WriteTimelineCsv(const sim::Application& app, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "t_s";
  for (sim::ApiId a = 0; a < app.NumApis(); ++a) {
    const std::string& name = app.api(a).name();
    out << ",offered_" << name << ",admitted_" << name << ",good_" << name
        << ",p95_ms_" << name;
  }
  for (int s = 0; s < app.NumServices(); ++s) {
    out << ",util_" << app.service(s).name();
  }
  out << '\n';
  for (const auto& snap : app.metrics().Timeline()) {
    out << snap.t_end_s;
    for (const auto& api : snap.apis) {
      out << ',' << api.offered << ',' << api.admitted << ',' << api.good << ','
          << api.latency_p95_ms;
    }
    for (const auto& svc : snap.services) out << ',' << svc.cpu_utilization;
    out << '\n';
  }
  return static_cast<bool>(out);
}

void MaybeExportTimeline(const sim::Application& app, const std::string& name) {
  const char* dir = std::getenv("TOPFULL_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return;
  const std::string path = std::string(dir) + "/" + name + ".csv";
  if (WriteTimelineCsv(app, path)) {
    std::fprintf(stderr, "[csv] wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "[csv] FAILED to write %s\n", path.c_str());
  }
}

}  // namespace topfull::exp

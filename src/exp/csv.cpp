#include "exp/csv.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

namespace topfull::exp {

bool WriteTimelineCsv(const sim::Application& app, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "t_s";
  for (sim::ApiId a = 0; a < app.NumApis(); ++a) {
    const std::string& name = app.api(a).name();
    out << ",offered_" << name << ",admitted_" << name << ",good_" << name
        << ",p95_ms_" << name;
  }
  for (int s = 0; s < app.NumServices(); ++s) {
    out << ",util_" << app.service(s).name();
  }
  out << '\n';
  for (const auto& snap : app.metrics().Timeline()) {
    out << snap.t_end_s;
    for (const auto& api : snap.apis) {
      out << ',' << api.offered << ',' << api.admitted << ',' << api.good << ','
          << api.latency_p95_ms;
    }
    for (const auto& svc : snap.services) out << ',' << svc.cpu_utilization;
    out << '\n';
  }
  return static_cast<bool>(out);
}

void MaybeExportTimeline(const sim::Application& app, const std::string& name) {
  const char* dir = std::getenv("TOPFULL_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "[csv] cannot create %s: %s\n", dir,
                 ec.message().c_str());
    return;
  }
  const std::string path = std::string(dir) + "/" + name + ".csv";
  errno = 0;
  if (WriteTimelineCsv(app, path)) {
    std::fprintf(stderr, "[csv] wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "[csv] FAILED to write %s: %s\n", path.c_str(),
                 errno != 0 ? std::strerror(errno) : "write error");
  }
}

}  // namespace topfull::exp

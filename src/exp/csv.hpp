// CSV export of experiment timelines, for re-plotting figures.
//
// Every bench prints its table to stdout; setting TOPFULL_CSV_DIR
// additionally dumps the full per-second timeline of each run as CSV
// (one row per second: per-API offered/goodput/latency and per-service
// utilisation).
#pragma once

#include <string>

#include "sim/app.hpp"

namespace topfull::exp {

/// Writes the application's full metric timeline to `path`. Returns false
/// on I/O failure.
bool WriteTimelineCsv(const sim::Application& app, const std::string& path);

/// If the TOPFULL_CSV_DIR environment variable is set, writes the timeline
/// to "$TOPFULL_CSV_DIR/<name>.csv" and reports the location on stderr.
void MaybeExportTimeline(const sim::Application& app, const std::string& name);

}  // namespace topfull::exp

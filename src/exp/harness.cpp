#include "exp/harness.hpp"

#include <cassert>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "obs/export.hpp"
#include "obs/report.hpp"
#include "obs/tsdb_plane.hpp"

namespace topfull::exp {

std::string VariantName(Variant variant) {
  switch (variant) {
    case Variant::kNoControl: return "no-control";
    case Variant::kTopFull: return "TopFull";
    case Variant::kTopFullMimd: return "TopFull(MIMD)";
    case Variant::kTopFullNoCluster: return "TopFull(w/o cluster)";
    case Variant::kTopFullBw: return "TopFull(BW)";
    case Variant::kDagor: return "DAGOR";
    case Variant::kBreakwater: return "Breakwater";
    case Variant::kWisp: return "WISP";
    case Variant::kStaticLimit: return "static";
  }
  return "unknown";
}

std::optional<Variant> VariantFromName(const std::string& name) {
  if (name == "topfull" || name == "TopFull") return Variant::kTopFull;
  if (name == "mimd" || name == "topfull-mimd" || name == "TopFull(MIMD)") {
    return Variant::kTopFullMimd;
  }
  if (name == "topfull-nocluster" || name == "TopFull(w/o cluster)") {
    return Variant::kTopFullNoCluster;
  }
  if (name == "topfull-bw" || name == "TopFull(BW)") return Variant::kTopFullBw;
  if (name == "dagor" || name == "DAGOR") return Variant::kDagor;
  if (name == "breakwater" || name == "Breakwater") return Variant::kBreakwater;
  if (name == "wisp" || name == "WISP") return Variant::kWisp;
  if (name == "static") return Variant::kStaticLimit;
  if (name == "none" || name == "no-control") return Variant::kNoControl;
  return std::nullopt;
}

void Controllers::Attach(Variant variant, sim::Application& app,
                         const rl::GaussianPolicy* policy,
                         core::TopFullConfig config, double mimd_decrease,
                         double mimd_increase, double static_rate) {
  switch (variant) {
    case Variant::kNoControl:
      break;
    case Variant::kTopFull: {
      assert(policy != nullptr);
      topfull_ = std::make_unique<core::TopFullController>(
          &app, std::make_unique<core::RlRateController>(policy), config);
      topfull_->Start();
      break;
    }
    case Variant::kTopFullMimd: {
      topfull_ = std::make_unique<core::TopFullController>(
          &app, std::make_unique<core::MimdRateController>(mimd_decrease, mimd_increase),
          config);
      topfull_->Start();
      break;
    }
    case Variant::kTopFullNoCluster: {
      assert(policy != nullptr);
      config.enable_clustering = false;
      topfull_ = std::make_unique<core::TopFullController>(
          &app, std::make_unique<core::RlRateController>(policy), config);
      topfull_->Start();
      break;
    }
    case Variant::kTopFullBw: {
      topfull_ = std::make_unique<core::TopFullController>(
          &app, std::make_unique<core::AimdRateController>(), config);
      topfull_->Start();
      break;
    }
    case Variant::kDagor: {
      dagor_ = std::make_unique<baselines::DagorAdmission>(&app);
      dagor_->Install();
      break;
    }
    case Variant::kBreakwater: {
      breakwater_ = std::make_unique<baselines::BreakwaterAdmission>(&app);
      breakwater_->Install();
      break;
    }
    case Variant::kWisp: {
      wisp_ = std::make_unique<baselines::WispAdmission>(&app);
      wisp_->Install();
      break;
    }
    case Variant::kStaticLimit: {
      static_ = std::make_unique<baselines::StaticLimitAdmission>(
          &app, static_rate, config.burst_fraction, config.min_burst);
      static_->Install();
      break;
    }
  }
}

workload::ClosedLoopConfig UniformUsers(const sim::Application& app) {
  workload::ClosedLoopConfig config;
  config.mix.weights.assign(static_cast<std::size_t>(app.NumApis()), 1.0);
  return config;
}

double TotalGoodput(const sim::Application& app, double from_s, double to_s) {
  return app.metrics().AvgTotalGoodput(from_s, to_s);
}

TelemetryOptions TelemetryOptions::FromEnv() {
  TelemetryOptions options;
  const char* dir = std::getenv("TOPFULL_TRACE_DIR");
  if (dir != nullptr) options.dir = dir;
  const char* sample = std::getenv("TOPFULL_TRACE_SAMPLE");
  if (sample != nullptr && *sample != '\0') {
    options.sample_rate = std::atof(sample);
  }
  return options;
}

Telemetry::Telemetry(TelemetryOptions options) : options_(std::move(options)) {}

void Telemetry::Attach(sim::Application& app) {
  if (!enabled()) return;
  if (!tracer_) {
    obs::TraceConfig config;
    config.sample_rate = options_.sample_rate;
    config.max_traces = options_.max_traces;
    tracer_ = std::make_unique<obs::RequestTracer>(config);
  }
  app.SetObserver(tracer_.get());
  monitor_ = obs::SloMonitor::ForApp(app);
  if (decision_log_) monitor_->SetDecisionLog(decision_log_.get());
}

void Telemetry::Attach(core::TopFullController& controller) {
  if (!enabled()) return;
  if (!decision_log_) decision_log_ = std::make_unique<obs::DecisionLog>();
  controller.SetDecisionObserver(decision_log_.get());
  if (monitor_) monitor_->SetDecisionLog(decision_log_.get());
}

TelemetrySummary Telemetry::Export(const sim::Application& app,
                                   const std::string& name,
                                   const core::TopFullController* controller,
                                   const std::vector<fault::FaultRecord>* faults,
                                   bool log_stderr) {
  TelemetrySummary summary;
  if (!enabled()) return summary;
  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  if (ec) {
    std::fprintf(stderr, "[obs] cannot create %s: %s\n", options_.dir.c_str(),
                 ec.message().c_str());
    return summary;
  }
  const std::string base = options_.dir + "/" + name;
  const auto report = [&summary, log_stderr](const std::string& path, bool ok) {
    if (!ok) {
      std::fprintf(stderr, "[obs] FAILED to write %s\n", path.c_str());
      return;
    }
    summary.paths.push_back(path);
    if (log_stderr) std::fprintf(stderr, "[obs] wrote %s\n", path.c_str());
  };
  const std::vector<obs::SloEvent>* events =
      monitor_ ? &monitor_->events() : nullptr;
  if (tracer_) {
    summary.sampled = tracer_->counters().sampled;
    summary.dropped = tracer_->counters().dropped;
    const std::string path = base + ".trace.json";
    report(path, obs::WritePerfettoTrace(*tracer_, app, path, faults, events));
  }
  const std::vector<obs::AlertTransition>* alerts =
      tsdb_ != nullptr ? &tsdb_->rules().transitions() : nullptr;
  if (decision_log_) {
    summary.ticks = decision_log_->ticks().size();
    summary.decisions = decision_log_->DecisionCount();
    const std::string path = base + ".decisions.jsonl";
    report(path,
           obs::WriteDecisionLogJsonl(*decision_log_, app, path, events, alerts));
  }
  const std::string prom = base + ".metrics.prom";
  report(prom, obs::WritePrometheusText(app, tracer_.get(), prom));
  if (tsdb_ != nullptr) {
    const std::string tsdb_path = base + ".tsdb.json";
    report(tsdb_path, obs::WriteTsdbJson(tsdb_->tsdb(), tsdb_path));
    const std::string alerts_path = base + ".alerts.json";
    report(alerts_path, obs::WriteAlertsJson(tsdb_->rules(), alerts_path));
  }

  if (events != nullptr) summary.slo_events = events->size();
  obs::ReportInputs inputs;
  inputs.app = &app;
  inputs.label = name;
  inputs.controller = controller;
  inputs.monitor = monitor_.get();
  inputs.decisions = decision_log_.get();
  inputs.faults = faults;
  const std::string summary_path = base + ".summary.json";
  report(summary_path, obs::WriteRunSummaryJson(inputs, summary_path));
  const std::string html_path = base + ".report.html";
  report(html_path, obs::WriteHtmlReport(inputs, html_path));
  return summary;
}

std::string SanitizeFileName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '.')
               ? c
               : '_';
  }
  return out.empty() ? "run" : out;
}

std::vector<double> PerApiGoodputRow(const sim::Application& app, double from_s,
                                     double to_s) {
  std::vector<double> row;
  double total = 0.0;
  for (sim::ApiId a = 0; a < app.NumApis(); ++a) {
    const double g = app.metrics().AvgGoodput(a, from_s, to_s);
    row.push_back(g);
    total += g;
  }
  row.push_back(total);
  return row;
}

}  // namespace topfull::exp

#include "exp/harness.hpp"

#include <cassert>

namespace topfull::exp {

std::string VariantName(Variant variant) {
  switch (variant) {
    case Variant::kNoControl: return "no-control";
    case Variant::kTopFull: return "TopFull";
    case Variant::kTopFullMimd: return "TopFull(MIMD)";
    case Variant::kTopFullNoCluster: return "TopFull(w/o cluster)";
    case Variant::kTopFullBw: return "TopFull(BW)";
    case Variant::kDagor: return "DAGOR";
    case Variant::kBreakwater: return "Breakwater";
    case Variant::kWisp: return "WISP";
  }
  return "unknown";
}

void Controllers::Attach(Variant variant, sim::Application& app,
                         const rl::GaussianPolicy* policy,
                         core::TopFullConfig config, double mimd_decrease,
                         double mimd_increase) {
  switch (variant) {
    case Variant::kNoControl:
      break;
    case Variant::kTopFull: {
      assert(policy != nullptr);
      topfull_ = std::make_unique<core::TopFullController>(
          &app, std::make_unique<core::RlRateController>(policy), config);
      topfull_->Start();
      break;
    }
    case Variant::kTopFullMimd: {
      topfull_ = std::make_unique<core::TopFullController>(
          &app, std::make_unique<core::MimdRateController>(mimd_decrease, mimd_increase),
          config);
      topfull_->Start();
      break;
    }
    case Variant::kTopFullNoCluster: {
      assert(policy != nullptr);
      config.enable_clustering = false;
      topfull_ = std::make_unique<core::TopFullController>(
          &app, std::make_unique<core::RlRateController>(policy), config);
      topfull_->Start();
      break;
    }
    case Variant::kTopFullBw: {
      topfull_ = std::make_unique<core::TopFullController>(
          &app, std::make_unique<core::AimdRateController>(), config);
      topfull_->Start();
      break;
    }
    case Variant::kDagor: {
      dagor_ = std::make_unique<baselines::DagorAdmission>(&app);
      dagor_->Install();
      break;
    }
    case Variant::kBreakwater: {
      breakwater_ = std::make_unique<baselines::BreakwaterAdmission>(&app);
      breakwater_->Install();
      break;
    }
    case Variant::kWisp: {
      wisp_ = std::make_unique<baselines::WispAdmission>(&app);
      wisp_->Install();
      break;
    }
  }
}

workload::ClosedLoopConfig UniformUsers(const sim::Application& app) {
  workload::ClosedLoopConfig config;
  config.mix.weights.assign(static_cast<std::size_t>(app.NumApis()), 1.0);
  return config;
}

double TotalGoodput(const sim::Application& app, double from_s, double to_s) {
  return app.metrics().AvgTotalGoodput(from_s, to_s);
}

std::vector<double> PerApiGoodputRow(const sim::Application& app, double from_s,
                                     double to_s) {
  std::vector<double> row;
  double total = 0.0;
  for (sim::ApiId a = 0; a < app.NumApis(); ++a) {
    const double g = app.metrics().AvgGoodput(a, from_s, to_s);
    row.push_back(g);
    total += g;
  }
  row.push_back(total);
  return row;
}

}  // namespace topfull::exp

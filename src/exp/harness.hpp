// Shared experiment harness: attaching a named overload-control variant to
// an application, and small reporting helpers used by every bench binary.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "baselines/breakwater.hpp"
#include "baselines/dagor.hpp"
#include "baselines/static_limit.hpp"
#include "baselines/wisp.hpp"
#include "core/controller.hpp"
#include "fault/fault.hpp"
#include "obs/decision_log.hpp"
#include "obs/slo_monitor.hpp"
#include "obs/trace.hpp"
#include "rl/policy.hpp"
#include "sim/app.hpp"
#include "workload/generators.hpp"

namespace topfull::obs {
class TsdbPlane;
}  // namespace topfull::obs

namespace topfull::exp {

/// The overload-control variants compared across the paper's figures.
enum class Variant {
  kNoControl,         ///< nothing installed
  kTopFull,           ///< full system, RL rate controller
  kTopFullMimd,       ///< ablation: static MIMD steps instead of RL (§6.2)
  kTopFullNoCluster,  ///< ablation: sequential control, no parallel clusters
  kTopFullBw,         ///< TopFull(BW): Breakwater-style AIMD at entry (§6.3)
  kDagor,             ///< DAGOR baseline (per-pod priority admission)
  kBreakwater,        ///< Breakwater baseline (per-pod credits + AQM)
  kWisp,              ///< WISP baseline (per-pod limits, upstream shedding)
  kStaticLimit,       ///< fixed per-API entry token bucket (non-adaptive)
};

std::string VariantName(Variant variant);

/// Inverse of VariantName plus the CLI short names ("topfull", "mimd",
/// "dagor", "breakwater", "wisp", "static", "none", ...). Returns nullopt
/// for unknown names.
std::optional<Variant> VariantFromName(const std::string& name);

/// Attaches a variant's controller(s) to an application and keeps them
/// alive. `policy` must outlive this object for the RL variants.
/// `mimd_decrease`/`mimd_increase` customise the fixed-step controller
/// (Fig. 13 sweeps the decrease step).
class Controllers {
 public:
  Controllers() = default;

  void Attach(Variant variant, sim::Application& app,
              const rl::GaussianPolicy* policy,
              core::TopFullConfig config = {},
              double mimd_decrease = 0.05, double mimd_increase = 0.01,
              double static_rate = 0.0);

  core::TopFullController* topfull() { return topfull_.get(); }
  baselines::DagorAdmission* dagor() { return dagor_.get(); }
  baselines::BreakwaterAdmission* breakwater() { return breakwater_.get(); }
  baselines::WispAdmission* wisp() { return wisp_.get(); }
  baselines::StaticLimitAdmission* static_limit() { return static_.get(); }

 private:
  std::unique_ptr<core::TopFullController> topfull_;
  std::unique_ptr<baselines::DagorAdmission> dagor_;
  std::unique_ptr<baselines::BreakwaterAdmission> breakwater_;
  std::unique_ptr<baselines::WispAdmission> wisp_;
  std::unique_ptr<baselines::StaticLimitAdmission> static_;
};

/// Closed-loop user config with a uniform mix over all APIs of `app`
/// (the paper's Locust setup: N users, 1 request/second each).
workload::ClosedLoopConfig UniformUsers(const sim::Application& app);

/// Sum of AvgGoodput over all APIs in [from_s, to_s).
double TotalGoodput(const sim::Application& app, double from_s, double to_s = -1.0);

/// Per-API goodput averages in [from_s, to_s) as a row of doubles, with the
/// total appended.
std::vector<double> PerApiGoodputRow(const sim::Application& app, double from_s,
                                     double to_s = -1.0);

// --- Telemetry (span tracing + decision log + exporters) ---------------------

/// Where and how much to trace. Disabled (dir empty) by default; FromEnv
/// reads TOPFULL_TRACE_DIR and TOPFULL_TRACE_SAMPLE.
struct TelemetryOptions {
  std::string dir;           ///< output directory; empty = telemetry off
  double sample_rate = 1.0;  ///< fraction of requests traced, in [0, 1]
  std::size_t max_traces = 50000;

  bool enabled() const { return !dir.empty(); }
  static TelemetryOptions FromEnv();
};

/// End-of-run telemetry accounting returned by Telemetry::Export.
struct TelemetrySummary {
  std::uint64_t sampled = 0;
  std::uint64_t dropped = 0;
  std::uint64_t ticks = 0;      ///< decision-log ticks
  std::uint64_t decisions = 0;  ///< decision-log decisions (cluster + recovery)
  std::uint64_t slo_events = 0; ///< SLO monitor events emitted
  std::vector<std::string> paths;  ///< files written
};

/// Owns a RequestTracer, DecisionLog and SloMonitor for one run and writes
/// the Perfetto trace, decision JSONL, Prometheus dump, run summary JSON
/// and HTML report at the end. Must outlive the simulation run (the
/// application/controller hold raw observer pointers).
class Telemetry {
 public:
  Telemetry() = default;
  explicit Telemetry(TelemetryOptions options);

  bool enabled() const { return options_.enabled(); }

  /// Installs the span tracer and the SLO/overload monitor on `app`.
  /// No-op when disabled.
  void Attach(sim::Application& app);
  /// Installs the decision log on `controller` (and feeds it to the SLO
  /// monitor's oscillation detector). No-op when disabled.
  void Attach(core::TopFullController& controller);

  /// Associates a TSDB plane with this run (not owned, may be null). When
  /// set, Export additionally writes "<dir>/<name>.tsdb.json" and
  /// "<dir>/<name>.alerts.json" and merges the plane's alert transitions
  /// into the decision JSONL.
  void SetTsdb(const obs::TsdbPlane* tsdb) { tsdb_ = tsdb; }

  /// Writes "<dir>/<name>.trace.json", "<dir>/<name>.decisions.jsonl" (when
  /// a controller was attached), "<dir>/<name>.metrics.prom",
  /// "<dir>/<name>.summary.json" and "<dir>/<name>.report.html", creating
  /// `dir` recursively. Paths are reported on stderr when `log_stderr`
  /// (bench stdout must stay byte-identical with telemetry on or off).
  /// When `faults` is non-null, injected fault records are embedded in the
  /// trace (instant events), the summary and the report. SLO monitor
  /// events appear in the decision JSONL, the Perfetto trace, the summary
  /// and the report.
  TelemetrySummary Export(const sim::Application& app, const std::string& name,
                          const core::TopFullController* controller = nullptr,
                          const std::vector<fault::FaultRecord>* faults = nullptr,
                          bool log_stderr = true);

  const obs::RequestTracer* tracer() const { return tracer_.get(); }
  const obs::DecisionLog* decision_log() const { return decision_log_.get(); }
  const obs::SloMonitor* monitor() const { return monitor_.get(); }

 private:
  TelemetryOptions options_;
  std::unique_ptr<obs::RequestTracer> tracer_;
  std::unique_ptr<obs::DecisionLog> decision_log_;
  std::unique_ptr<obs::SloMonitor> monitor_;
  const obs::TsdbPlane* tsdb_ = nullptr;
};

/// Replaces path-hostile characters so a run label can name a trace file.
std::string SanitizeFileName(const std::string& name);

}  // namespace topfull::exp

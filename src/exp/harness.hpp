// Shared experiment harness: attaching a named overload-control variant to
// an application, and small reporting helpers used by every bench binary.
#pragma once

#include <memory>
#include <string>

#include "baselines/breakwater.hpp"
#include "baselines/dagor.hpp"
#include "baselines/wisp.hpp"
#include "core/controller.hpp"
#include "rl/policy.hpp"
#include "sim/app.hpp"
#include "workload/generators.hpp"

namespace topfull::exp {

/// The overload-control variants compared across the paper's figures.
enum class Variant {
  kNoControl,         ///< nothing installed
  kTopFull,           ///< full system, RL rate controller
  kTopFullMimd,       ///< ablation: static MIMD steps instead of RL (§6.2)
  kTopFullNoCluster,  ///< ablation: sequential control, no parallel clusters
  kTopFullBw,         ///< TopFull(BW): Breakwater-style AIMD at entry (§6.3)
  kDagor,             ///< DAGOR baseline (per-pod priority admission)
  kBreakwater,        ///< Breakwater baseline (per-pod credits + AQM)
  kWisp,              ///< WISP baseline (per-pod limits, upstream shedding)
};

std::string VariantName(Variant variant);

/// Attaches a variant's controller(s) to an application and keeps them
/// alive. `policy` must outlive this object for the RL variants.
/// `mimd_decrease`/`mimd_increase` customise the fixed-step controller
/// (Fig. 13 sweeps the decrease step).
class Controllers {
 public:
  Controllers() = default;

  void Attach(Variant variant, sim::Application& app,
              const rl::GaussianPolicy* policy,
              core::TopFullConfig config = {},
              double mimd_decrease = 0.05, double mimd_increase = 0.01);

  core::TopFullController* topfull() { return topfull_.get(); }
  baselines::DagorAdmission* dagor() { return dagor_.get(); }
  baselines::BreakwaterAdmission* breakwater() { return breakwater_.get(); }
  baselines::WispAdmission* wisp() { return wisp_.get(); }

 private:
  std::unique_ptr<core::TopFullController> topfull_;
  std::unique_ptr<baselines::DagorAdmission> dagor_;
  std::unique_ptr<baselines::BreakwaterAdmission> breakwater_;
  std::unique_ptr<baselines::WispAdmission> wisp_;
};

/// Closed-loop user config with a uniform mix over all APIs of `app`
/// (the paper's Locust setup: N users, 1 request/second each).
workload::ClosedLoopConfig UniformUsers(const sim::Application& app);

/// Sum of AvgGoodput over all APIs in [from_s, to_s).
double TotalGoodput(const sim::Application& app, double from_s, double to_s = -1.0);

/// Per-API goodput averages in [from_s, to_s) as a row of doubles, with the
/// total appended.
std::vector<double> PerApiGoodputRow(const sim::Application& app, double from_s,
                                     double to_s = -1.0);

}  // namespace topfull::exp

#include "exp/microservice_env.hpp"

#include <algorithm>
#include <cassert>

#include "rl/observation.hpp"

namespace topfull::exp {

MicroserviceEnv::MicroserviceEnv(MicroserviceEnvConfig config)
    : config_(std::move(config)) {
  assert(config_.factory && "an application factory is required");
}

MicroserviceEnv::~MicroserviceEnv() = default;

std::vector<double> MicroserviceEnv::Reset(std::uint64_t seed) {
  app_ = config_.factory(seed);
  assert(!config_.api_rate_ranges.empty());
  action_slot_ = std::make_shared<double>(0.0);
  controller_ = std::make_unique<core::TopFullController>(
      app_.get(), std::make_unique<ExternalActionController>(action_slot_),
      config_.controller);
  controller_->Start();

  traffic_ = std::make_unique<workload::TrafficDriver>(app_.get());
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 0xD6E8FEB86659FD93ULL);
  const bool surge = rng.Bernoulli(config_.surge_prob);
  const SimTime surge_at =
      config_.warmup + Seconds(rng.Uniform(5, config_.steps_per_episode * 0.6));
  const double surge_factor = rng.Uniform(1.5, 3.0);
  for (sim::ApiId a = 0; a < app_->NumApis(); ++a) {
    const auto& range =
        config_.api_rate_ranges[static_cast<std::size_t>(a) %
                                config_.api_rate_ranges.size()];
    const double rate = rng.Uniform(range.first, range.second);
    workload::Schedule schedule = workload::Schedule::Constant(rate);
    if (surge) schedule.Then(surge_at, rate * surge_factor);
    traffic_->AddOpenLoop(a, std::move(schedule));
  }
  if (rng.Bernoulli(config_.scaleup_prob)) {
    // Autoscaler-style mid-episode capacity increase on a random service.
    const auto svc = static_cast<sim::ServiceId>(
        rng.UniformInt(0, app_->NumServices() - 1));
    const SimTime when = config_.warmup +
                         Seconds(rng.Uniform(10, config_.steps_per_episode * 0.8));
    sim::Application* app = app_.get();
    app_->sim().ScheduleAt(when, [app, svc]() {
      auto& service = app->service(svc);
      service.SetPodCount(service.TotalPods() * 2, Seconds(5));
    });
  }

  app_->RunFor(config_.warmup);
  step_ = 0;
  prev_goodput_ = TotalGoodput();
  return Observation();
}

double MicroserviceEnv::TotalGoodput() const {
  const auto& snap = app_->metrics().Latest();
  double total = 0.0;
  for (const auto& api : snap.apis) total += static_cast<double>(api.good);
  return total;
}

core::ControlState MicroserviceEnv::CurrentState() const {
  // Mirror what the deployed controller observes: the candidate APIs of the
  // first live cluster; otherwise every rate-limited API; otherwise all.
  const auto& clusters = controller_->LastClusters();
  std::vector<sim::ApiId> apis;
  if (!clusters.empty() && !clusters.front().candidates.empty()) {
    apis = clusters.front().candidates;
  } else {
    for (sim::ApiId a = 0; a < app_->NumApis(); ++a) {
      if (controller_->RateLimit(a).has_value()) apis.push_back(a);
    }
    if (apis.empty()) {
      for (sim::ApiId a = 0; a < app_->NumApis(); ++a) apis.push_back(a);
    }
  }
  return controller_->StateOf(apis);
}

std::vector<double> MicroserviceEnv::Observation() const {
  const core::ControlState state = CurrentState();
  return rl::MakeObservation(state.goodput, state.rate_limit, state.latency_s,
                             state.slo_s);
}

rl::StepResult MicroserviceEnv::Step(double action) {
  *action_slot_ = std::clamp(action, -0.5, 0.5);
  app_->RunFor(Seconds(1));
  ++step_;

  rl::StepResult result;
  const double goodput = TotalGoodput();
  const core::ControlState state = CurrentState();
  const double violation =
      std::max(0.0, (state.latency_s - state.slo_s) / state.slo_s);
  result.reward =
      (goodput - prev_goodput_) / config_.goodput_scale - config_.rho * violation;
  prev_goodput_ = goodput;
  result.obs = Observation();
  result.done = step_ >= config_.steps_per_episode;
  return result;
}

}  // namespace topfull::exp

// Application-backed RL environment (the paper's "specialization" stage).
//
// Each episode builds a fresh simulated application, drives it with a
// randomly drawn per-API workload, and lets the agent steer the deployed
// TopFullController: the controller's rate controllers are replaced by a
// pass-through that returns the externally supplied action, so training
// exercises exactly the deployment code path (clustering, Algorithm 1,
// recovery). Observation/action/reward match the graph simulator, which is
// what makes Sim2real transfer work.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/controller.hpp"
#include "rl/env.hpp"
#include "sim/app.hpp"
#include "workload/generators.hpp"

namespace topfull::exp {

/// RateController that returns an externally set action (shared slot).
class ExternalActionController : public core::RateController {
 public:
  explicit ExternalActionController(std::shared_ptr<double> slot)
      : slot_(std::move(slot)) {}
  double DecideStep(const core::ControlState&) override { return *slot_; }
  std::unique_ptr<core::RateController> Clone() const override {
    return std::make_unique<ExternalActionController>(slot_);
  }

 private:
  std::shared_ptr<double> slot_;
};

struct MicroserviceEnvConfig {
  /// Builds a fresh application instance for an episode.
  std::function<std::unique_ptr<sim::Application>(std::uint64_t seed)> factory;
  /// Per-API open-loop rate ranges (rps) sampled per episode.
  std::vector<std::pair<double, double>> api_rate_ranges;
  double rho = 1.0;               ///< Eq. 3 penalty coefficient
  double goodput_scale = 1000.0;  ///< reward normalisation
  /// Mid-episode disturbances, mirroring the pre-training simulator: a
  /// sudden demand surge and/or an autoscaler-style capacity increase.
  double surge_prob = 0.4;
  double scaleup_prob = 0.4;
  int steps_per_episode = 50;
  SimTime warmup = Seconds(3);
  core::TopFullConfig controller;
};

class MicroserviceEnv : public rl::Env {
 public:
  explicit MicroserviceEnv(MicroserviceEnvConfig config);
  ~MicroserviceEnv() override;

  std::vector<double> Reset(std::uint64_t seed) override;
  rl::StepResult Step(double action) override;
  int ObsDim() const override { return 2; }

  /// The live application of the current episode (tests/inspection).
  sim::Application* app() { return app_.get(); }

 private:
  core::ControlState CurrentState() const;
  std::vector<double> Observation() const;
  double TotalGoodput() const;

  MicroserviceEnvConfig config_;
  std::unique_ptr<sim::Application> app_;
  std::unique_ptr<workload::TrafficDriver> traffic_;
  std::unique_ptr<core::TopFullController> controller_;
  std::shared_ptr<double> action_slot_;
  double prev_goodput_ = 0.0;
  int step_ = 0;
};

}  // namespace topfull::exp

#include "exp/model_cache.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "rl/graph_sim_env.hpp"

namespace topfull::exp {
namespace {

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const int parsed = std::atoi(value);
  return parsed > 0 ? parsed : fallback;
}

}  // namespace

std::string ModelDir() {
  const std::string dir = std::string(TOPFULL_SOURCE_DIR) + "/models";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

int PretrainEpisodes() { return EnvInt("TOPFULL_PRETRAIN_EPISODES", 16000); }
int FinetuneEpisodes() { return EnvInt("TOPFULL_FINETUNE_EPISODES", 160); }

std::shared_ptr<rl::GaussianPolicy> TrainBasePolicy(int episodes, std::uint64_t seed,
                                                    rl::TrainResult* result_out) {
  Rng init_rng(seed);
  auto policy = std::make_shared<rl::GaussianPolicy>(rl::PolicyConfig{}, init_rng);
  // Env factories: rollout and validation episodes run concurrently on
  // per-worker env clones (identical batches at any TOPFULL_THREADS).
  auto make_env = [seed]() -> std::unique_ptr<rl::Env> {
    return std::make_unique<rl::GraphSimEnv>(rl::GraphSimConfig{}, /*base_seed=*/seed);
  };
  rl::PpoTrainer trainer(policy.get(), rl::PpoConfig{}, seed ^ 0xBEEF);
  // Fixed validation scenarios (paper: "validating the checkpointed RL
  // models on a fixed set of scenarios in the simulator").
  auto make_validation_env = [seed]() -> std::unique_ptr<rl::Env> {
    return std::make_unique<rl::GraphSimEnv>(rl::GraphSimConfig{},
                                             /*base_seed=*/seed ^ 0x5A5A5A5A);
  };
  auto validate = [&make_validation_env](rl::GaussianPolicy& p) {
    return rl::EvaluatePolicy(p, make_validation_env, /*episodes=*/16,
                              /*seed0=*/9000, /*steps_per_episode=*/50);
  };
  const rl::TrainResult result = trainer.Train(make_env, episodes, validate,
                                               /*checkpoint_every=*/400);
  if (result_out != nullptr) *result_out = result;
  return policy;
}

std::shared_ptr<rl::GaussianPolicy> GetPretrainedPolicy() {
  const std::string path = ModelDir() + "/base_policy.txt";
  {
    Rng rng(1);
    auto policy = std::make_shared<rl::GaussianPolicy>(rl::PolicyConfig{}, rng);
    if (policy->LoadFile(path)) return policy;
  }
  const int episodes = PretrainEpisodes();
  std::fprintf(stderr,
               "[model-cache] training base policy on the graph simulator "
               "(%d episodes; set TOPFULL_PRETRAIN_EPISODES to change)...\n",
               episodes);
  auto policy = TrainBasePolicy(episodes);
  policy->SaveFile(path);
  std::fprintf(stderr, "[model-cache] saved %s\n", path.c_str());
  return policy;
}

std::shared_ptr<rl::GaussianPolicy> LoadCachedPolicy(const std::string& name) {
  Rng rng(1);
  auto policy = std::make_shared<rl::GaussianPolicy>(rl::PolicyConfig{}, rng);
  if (!policy->LoadFile(ModelDir() + "/" + name + ".txt")) return nullptr;
  return policy;
}

bool SaveCachedPolicy(const rl::GaussianPolicy& policy, const std::string& name) {
  return policy.SaveFile(ModelDir() + "/" + name + ".txt");
}

}  // namespace topfull::exp

// Pre-trained / fine-tuned policy cache.
//
// The paper pre-trains the PPO policy on the graph simulator (48 000
// episodes) and fine-tunes per application (800 episodes). Bench binaries
// share trained policies through text checkpoints under <repo>/models/;
// the first bench that needs a model trains and caches it. Episode counts
// are reduced by default so the whole suite runs in minutes — override with
// the TOPFULL_PRETRAIN_EPISODES / TOPFULL_FINETUNE_EPISODES environment
// variables for paper-scale training.
#pragma once

#include <memory>
#include <string>

#include "rl/policy.hpp"
#include "rl/ppo.hpp"

namespace topfull::exp {

/// Directory used for cached checkpoints (<repo>/models).
std::string ModelDir();

/// Default pre-training episode count (env-overridable).
int PretrainEpisodes();
/// Default fine-tuning episode count (env-overridable).
int FinetuneEpisodes();

/// Returns the shared pre-trained base policy: loads models/base_policy.txt
/// when present, otherwise trains it on GraphSimEnv (with validation-based
/// checkpoint selection) and saves it.
std::shared_ptr<rl::GaussianPolicy> GetPretrainedPolicy();

/// Trains a fresh policy on GraphSimEnv for `episodes` episodes (no cache).
std::shared_ptr<rl::GaussianPolicy> TrainBasePolicy(int episodes,
                                                    std::uint64_t seed = 1234,
                                                    rl::TrainResult* result = nullptr);

/// Loads a cached policy by name (e.g. "transfer_tt"); returns nullptr when
/// the cache file is absent or malformed.
std::shared_ptr<rl::GaussianPolicy> LoadCachedPolicy(const std::string& name);

/// Saves a policy under models/<name>.txt.
bool SaveCachedPolicy(const rl::GaussianPolicy& policy, const std::string& name);

}  // namespace topfull::exp

#include "exp/run_executor.hpp"

namespace topfull::exp {

RunResult RunExecutor::RunOne(const RunSpec& spec) {
  RunResult result;
  result.label = spec.label;
  result.app = spec.make_app();
  sim::Application& app = *result.app;

  // Controllers (and any custom attachment) only need to outlive the run:
  // after RunFor the metrics timeline is self-contained.
  Controllers controllers;
  std::shared_ptr<void> custom;
  if (spec.attach) {
    custom = spec.attach(app);
  } else {
    controllers.Attach(spec.variant, app, spec.policy);
  }

  workload::TrafficDriver traffic(&app);
  if (spec.traffic) spec.traffic(traffic, app);
  app.RunFor(Seconds(spec.duration_s));
  return result;
}

std::vector<RunResult> RunExecutor::Execute(const std::vector<RunSpec>& specs) const {
  ThreadPool& pool = pool_ != nullptr ? *pool_ : ThreadPool::Global();
  return pool.ParallelMap(specs.size(),
                          [&specs](std::size_t i) { return RunOne(specs[i]); });
}

}  // namespace topfull::exp

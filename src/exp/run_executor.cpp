#include "exp/run_executor.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "obs/live.hpp"
#include "obs/profile.hpp"
#include "obs/tsdb_plane.hpp"

namespace topfull::exp {

namespace {

/// TOPFULL_TSDB env gate: set, non-empty and not "0" enables a run-owned
/// TSDB plane for specs that do not pass one explicitly.
bool TsdbFromEnv() {
  const char* value = std::getenv("TOPFULL_TSDB");
  return value != nullptr && *value != '\0' &&
         std::string(value) != "0";
}

}  // namespace

RunResult RunExecutor::RunOne(const RunSpec& spec) {
  return RunOne(spec, SanitizeFileName(spec.label));
}

RunResult RunExecutor::RunOne(const RunSpec& spec,
                              const std::string& telemetry_name) {
  obs::ScopedTimer run_timer("exp/run");
  RunResult result;
  result.label = spec.label;
  {
    obs::ScopedTimer timer("exp/make_app");
    result.app = spec.make_app();
  }
  sim::Application& app = *result.app;

  Telemetry telemetry(TelemetryOptions::FromEnv());
  telemetry.Attach(app);

  // The TSDB feeder chains after the telemetry observers, so attach order
  // matters: monitor first, feeder second.
  std::unique_ptr<obs::TsdbPlane> owned_tsdb;
  obs::TsdbPlane* tsdb = spec.tsdb;
  if (tsdb == nullptr && TsdbFromEnv()) {
    owned_tsdb = std::make_unique<obs::TsdbPlane>();
    for (obs::AlertRule& rule : obs::SloBurnRules()) {
      owned_tsdb->rules().AddAlert(std::move(rule));
    }
    tsdb = owned_tsdb.get();
  }
  if (tsdb != nullptr) {
    tsdb->Attach(app);
    telemetry.SetTsdb(tsdb);
  }

  // Controllers (and any custom attachment) only need to outlive the run:
  // after RunFor the metrics timeline is self-contained.
  Controllers controllers;
  std::shared_ptr<void> custom;
  if (spec.attach) {
    custom = spec.attach(app);
  } else {
    controllers.Attach(spec.variant, app, spec.policy, spec.topfull_config,
                       /*mimd_decrease=*/0.05, /*mimd_increase=*/0.01,
                       spec.static_rate);
  }
  if (controllers.topfull() != nullptr) telemetry.Attach(*controllers.topfull());

  workload::TrafficDriver traffic(&app);
  if (spec.traffic) spec.traffic(traffic, app);

  fault::FaultInjector injector(&app, spec.faults, spec.fault_seed);
  if (!spec.faults.empty()) injector.Arm();

  {
    obs::ScopedTimer timer("exp/simulate");
    if (spec.live == nullptr) {
      app.RunFor(Seconds(spec.duration_s));
    } else {
      // Chunked execution for live publishing. Chunking RunUntil is
      // bit-identical to one long run (same events, same order); snapshots
      // are captured only at the chunk edges, where the engine is quiescent.
      obs::LiveSources sources;
      sources.shards.push_back({&app, telemetry.tracer(), telemetry.monitor()});
      sources.label = spec.label;
      sources.duration_s = spec.duration_s;
      const SimTime end = app.sim().Now() + Seconds(spec.duration_s);
      // Publish a start-of-run snapshot so a scrape that races the first
      // chunk never sees an empty board.
      spec.live->MaybePublish(sources);
      while (app.sim().Now() < end) {
        app.RunUntil(std::min(app.sim().Now() + Millis(100), end));
        spec.live->MaybePublish(sources);
      }
      spec.live->Publish(sources, /*finished=*/true);
    }
  }
  // Catch the final boundary in case the last window closed short of it
  // (idempotent: already-evaluated boundaries are skipped).
  if (tsdb != nullptr) tsdb->FinishRules(ToSeconds(app.sim().Now()));

  result.fault_log = injector.Log();
  if (telemetry.enabled()) {
    obs::ScopedTimer timer("exp/export_telemetry");
    telemetry.Export(app, telemetry_name, controllers.topfull(),
                     result.fault_log.empty() ? nullptr : &result.fault_log);
  }
  return result;
}

std::vector<RunResult> RunExecutor::Execute(const std::vector<RunSpec>& specs) const {
  ThreadPool& pool = pool_ != nullptr ? *pool_ : ThreadPool::Global();
  return pool.ParallelMap(specs.size(), [&specs](std::size_t i) {
    // Telemetry file names carry the spec index so sweeps with duplicate
    // labels never collide, and the naming is pool-size independent.
    char prefix[16];
    std::snprintf(prefix, sizeof(prefix), "%03zu_", i);
    return RunOne(specs[i], prefix + SanitizeFileName(specs[i].label));
  });
}

}  // namespace topfull::exp

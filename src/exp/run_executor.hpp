// Parallel sweep harness for the bench binaries.
//
// Every paper figure is a matrix of independent simulation runs
// (variant x demand, variant x seed, vCPUs x with/without, ...). A RunSpec
// describes one cell — an app factory, the controller variant to attach,
// the traffic to drive, and how long to run — and RunExecutor runs the
// whole list on the shared worker pool, one complete Simulation +
// Application per worker. Each run owns its app, RNG streams, and metrics,
// so runs never share mutable state (the pre-trained policy is shared
// read-only); results come back in spec order, making a parallel sweep's
// output bit-identical to the sequential one.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "exp/harness.hpp"
#include "fault/fault.hpp"
#include "sim/app.hpp"
#include "workload/generators.hpp"

namespace topfull::obs {
class LivePlane;
class TsdbPlane;
}  // namespace topfull::obs

namespace topfull::exp {

/// One independent simulation run.
struct RunSpec {
  std::string label;
  double duration_s = 0.0;

  /// Builds the application (topology, seeds, pod counts). Runs on the
  /// worker, so factories must not share mutable state across specs.
  std::function<std::unique_ptr<sim::Application>()> make_app;

  /// Installs the workload (closed-loop pools / open-loop generators).
  std::function<void(workload::TrafficDriver&, sim::Application&)> traffic;

  /// Standard controller attachment (ignored when `attach` is set).
  Variant variant = Variant::kNoControl;
  const rl::GaussianPolicy* policy = nullptr;  ///< shared read-only
  /// Config for the TopFull variants (ignored by the baselines).
  core::TopFullConfig topfull_config;
  /// Per-API entry rate for Variant::kStaticLimit (<= 0 = uncapped).
  double static_rate = 0.0;

  /// Custom controller attachment (e.g. a DAGOR with a swept config). The
  /// returned object is kept alive until the run completes.
  std::function<std::shared_ptr<void>(sim::Application&)> attach;

  /// Faults injected during the run (empty = none; zero perturbation).
  /// The injector draws only from its own stream seeded by `fault_seed`.
  fault::FaultSchedule faults;
  std::uint64_t fault_seed = fault::FaultInjector::kDefaultSeed;

  /// Live telemetry plane (non-owning; may be null). When set, the run is
  /// executed in sim-time chunks and a metrics snapshot is published to the
  /// plane between chunks — a pure observer, so the run stays bit-identical
  /// to one without it. The final snapshot is published with finished=true.
  obs::LivePlane* live = nullptr;

  /// Time-series plane (non-owning; may be null). When set, a window
  /// feeder is attached (chained after any telemetry observers) and rules
  /// evaluate at window closes; like `live`, a pure observer. When null,
  /// the TOPFULL_TSDB env var (non-empty, not "0") creates a run-owned
  /// plane with the default SLO burn rules, so benches gain the
  /// `.tsdb.json`/`.alerts.json` artifacts without code changes.
  obs::TsdbPlane* tsdb = nullptr;
};

/// The finished run: label echoed back plus the application with its full
/// metrics timeline, ready for goodput / convergence analysis.
struct RunResult {
  std::string label;
  std::unique_ptr<sim::Application> app;
  /// What the fault injector actually did (empty when no faults ran).
  std::vector<fault::FaultRecord> fault_log;
};

class RunExecutor {
 public:
  /// `pool == nullptr` uses ThreadPool::Global().
  explicit RunExecutor(ThreadPool* pool = nullptr) : pool_(pool) {}

  /// Runs every spec to completion; results are in spec order. With
  /// TOPFULL_TRACE_DIR set, every run additionally exports its telemetry
  /// (trace JSON / decision JSONL / Prometheus dump) under a deterministic
  /// "<index>_<label>" name, identically for any pool size.
  std::vector<RunResult> Execute(const std::vector<RunSpec>& specs) const;

  /// Runs a single spec on the calling thread. `telemetry_name` names the
  /// run's telemetry files (defaults to the sanitized label).
  static RunResult RunOne(const RunSpec& spec);
  static RunResult RunOne(const RunSpec& spec, const std::string& telemetry_name);

 private:
  ThreadPool* pool_;
};

}  // namespace topfull::exp

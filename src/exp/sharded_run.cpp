#include "exp/sharded_run.hpp"

#include <algorithm>
#include <string>

#include "obs/live.hpp"
#include "obs/profile.hpp"
#include "obs/tsdb_plane.hpp"

namespace topfull::exp {

fault::FaultSchedule FaultsForShard(const fault::FaultSchedule& all,
                                    const sim::Application& app,
                                    const sim::ShardPlan& plan, int shard) {
  fault::FaultSchedule out;
  for (const fault::FaultEvent& event : all.events()) {
    int owner = 0;  // cluster-wide and unknown-service events: shard 0
    if (event.type != fault::FaultType::kVmOutage) {
      const sim::ServiceId s = app.FindService(event.service);
      if (s != sim::kNoService) owner = plan.OwnerOf(s);
    }
    if (owner == shard) out.Add(event);
  }
  return out;
}

ShardedRunResult RunShardedSpec(const RunSpec& spec,
                                const ShardedRunOptions& options) {
  obs::ScopedTimer run_timer("exp/sharded_run");
  ShardedRunResult result;
  result.label = spec.label;

  sim::ShardedApp::Options app_options;
  app_options.shards = options.shards;
  app_options.net_latency = options.net_latency;
  app_options.threaded = options.threaded;
  result.app = std::make_unique<sim::ShardedApp>(spec.make_app, app_options);
  sim::ShardedApp& sharded = *result.app;
  const int n = sharded.num_shards();

  // Same attachment order as RunOne — telemetry, controllers, traffic,
  // faults — executed per shard. Everything lives until the run finishes.
  std::vector<Telemetry> telemetry;
  telemetry.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    telemetry.emplace_back(TelemetryOptions::FromEnv());
    telemetry.back().Attach(sharded.app(i));
  }

  // One shared store for all shards (cells labelled shard="k" when n > 1).
  // Feeders only append from the worker threads; rules evaluate on the
  // coordinating thread at chunk edges, where every shard has advanced
  // past the boundary — identical results to inline evaluation because
  // query evaluation is strictly backward-looking.
  if (spec.tsdb != nullptr) {
    spec.tsdb->DisableInlineEvaluation();
    for (int i = 0; i < n; ++i) {
      spec.tsdb->Attach(sharded.app(i), i, n);
    }
  }

  std::vector<Controllers> controllers(static_cast<std::size_t>(n));
  std::vector<std::shared_ptr<void>> custom;
  for (int i = 0; i < n; ++i) {
    if (spec.attach) {
      custom.push_back(spec.attach(sharded.app(i)));
    } else {
      controllers[static_cast<std::size_t>(i)].Attach(
          spec.variant, sharded.app(i), spec.policy, spec.topfull_config);
    }
    if (controllers[static_cast<std::size_t>(i)].topfull() != nullptr) {
      telemetry[static_cast<std::size_t>(i)].Attach(
          *controllers[static_cast<std::size_t>(i)].topfull());
    }
  }

  std::vector<std::unique_ptr<workload::TrafficDriver>> traffic;
  traffic.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    traffic.push_back(
        std::make_unique<workload::TrafficDriver>(&sharded.app(i)));
    if (n > 1) {
      traffic.back()->SetShardScope(
          workload::TrafficDriver::ShardScope{&sharded.plan().api_origin, i});
    }
    if (spec.traffic) spec.traffic(*traffic.back(), sharded.app(i));
  }

  std::vector<std::unique_ptr<fault::FaultInjector>> injectors;
  injectors.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    injectors.push_back(std::make_unique<fault::FaultInjector>(
        &sharded.app(i),
        FaultsForShard(spec.faults, sharded.app(i), sharded.plan(), i),
        spec.fault_seed));
    if (!injectors.back()->schedule().empty()) injectors.back()->Arm();
  }

  {
    obs::ScopedTimer timer("exp/simulate");
    if (spec.live == nullptr) {
      sharded.RunFor(Seconds(spec.duration_s));
    } else {
      obs::LiveSources sources;
      for (int i = 0; i < n; ++i) {
        sources.shards.push_back({&sharded.app(i),
                                  telemetry[static_cast<std::size_t>(i)].tracer(),
                                  telemetry[static_cast<std::size_t>(i)].monitor()});
      }
      sources.label = spec.label;
      sources.duration_s = spec.duration_s;
      sources.sharded = &sharded;
      // Chunks must be whole multiples of the lookahead so the window edges
      // land exactly where the unchunked run puts them — otherwise a
      // truncated window could reorder same-timestamp cross-shard delivery.
      const SimTime lookahead = std::max<SimTime>(options.net_latency, 1);
      const SimTime chunk =
          std::max<SimTime>(Millis(100) / lookahead, 1) * lookahead;
      const SimTime end = sharded.Now() + Seconds(spec.duration_s);
      // Publish a start-of-run snapshot so a scrape that races the first
      // window round never sees an empty board.
      spec.live->MaybePublish(sources);
      while (sharded.Now() < end) {
        sharded.RunUntil(std::min(sharded.Now() + chunk, end));
        if (spec.tsdb != nullptr) {
          spec.tsdb->EvaluateRulesUpTo(ToSeconds(sharded.Now()));
        }
        spec.live->MaybePublish(sources);
      }
      spec.live->Publish(sources, /*finished=*/true);
    }
  }
  if (spec.tsdb != nullptr) spec.tsdb->FinishRules(ToSeconds(sharded.Now()));

  // Deterministic merged fault log: shard-major concatenation, then a
  // stable sort by injection time (ties keep shard order).
  for (int i = 0; i < n; ++i) {
    const auto& log = injectors[static_cast<std::size_t>(i)]->Log();
    result.fault_log.insert(result.fault_log.end(), log.begin(), log.end());
  }
  std::stable_sort(
      result.fault_log.begin(), result.fault_log.end(),
      [](const fault::FaultRecord& a, const fault::FaultRecord& b) {
        return a.at < b.at;
      });

  if (!telemetry.empty() && telemetry[0].enabled()) {
    obs::ScopedTimer timer("exp/export_telemetry");
    for (int i = 0; i < n; ++i) {
      std::string name = SanitizeFileName(spec.label);
      if (n > 1) name += ".shard" + std::to_string(i);
      const auto& log = injectors[static_cast<std::size_t>(i)]->Log();
      telemetry[static_cast<std::size_t>(i)].Export(
          sharded.app(i), name, controllers[static_cast<std::size_t>(i)].topfull(),
          log.empty() ? nullptr : &log);
    }
    // The TSDB plane is run-level (one store, shard-labelled cells), so its
    // artifacts are written once under the run name rather than per shard.
    if (spec.tsdb != nullptr) {
      const std::string base = TelemetryOptions::FromEnv().dir + "/" +
                               SanitizeFileName(spec.label);
      obs::WriteTsdbJson(spec.tsdb->tsdb(), base + ".tsdb.json");
      obs::WriteAlertsJson(spec.tsdb->rules(), base + ".alerts.json");
    }
  }
  return result;
}

}  // namespace topfull::exp

// Sharded-run orchestration: one RunSpec executed across N engine shards.
//
// RunShardedSpec mirrors RunExecutor::RunOne step for step — app factory,
// telemetry attach, controller attach, traffic, fault arming, run — but
// performs each step once per shard replica with shard-local scope:
// controllers attach to every replica (a controller whose APIs see no
// local traffic simply never acts), traffic is apportioned by API origin,
// and fault events are armed only on the shard owning their target
// service. With shards == 1 every step degenerates to exactly what RunOne
// does, which the engine-identity digests verify byte-for-byte.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "exp/run_executor.hpp"
#include "sim/sharded_app.hpp"

namespace topfull::exp {

struct ShardedRunOptions {
  int shards = 1;
  /// One-way cross-shard RPC latency == synchronization lookahead.
  SimTime net_latency = Millis(1);
  /// Worker threads vs same-protocol sequential execution (bit-identical;
  /// sequential is for determinism cross-checks and debugging).
  bool threaded = true;
};

struct ShardedRunResult {
  std::string label;
  std::unique_ptr<sim::ShardedApp> app;
  /// Per-shard injector logs merged deterministically (stable-sorted by
  /// injection time, shard order preserved within a timestamp).
  std::vector<fault::FaultRecord> fault_log;
};

/// Splits a fault schedule by target-service ownership: each event lands
/// only on the shard owning its service (cluster-wide and unknown-service
/// events land on shard 0). The union over shards is the whole schedule.
fault::FaultSchedule FaultsForShard(const fault::FaultSchedule& all,
                                    const sim::Application& app,
                                    const sim::ShardPlan& plan, int shard);

/// Runs `spec` across `options.shards` shards. Telemetry (TOPFULL_TRACE_DIR)
/// exports per shard under "<label>.shard<k>" names for N > 1.
ShardedRunResult RunShardedSpec(const RunSpec& spec,
                                const ShardedRunOptions& options);

}  // namespace topfull::exp

#include "fault/chaos.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace topfull::fault {

FaultSchedule MakeChaosSchedule(const sim::Application& app,
                                const ChaosOptions& options) {
  FaultSchedule schedule;
  if (app.NumServices() == 0 || options.events <= 0) return schedule;
  // The chaos stream is derived only from the chaos seed; the app's
  // workload RNG is never touched.
  Rng rng = Rng(options.seed).Fork("chaos-profile");
  const double window_end = std::max(options.start_s, options.horizon_s * 0.8);
  std::vector<FaultEvent> events;
  events.reserve(static_cast<std::size_t>(options.events));
  for (int i = 0; i < options.events; ++i) {
    const auto svc_index =
        static_cast<sim::ServiceId>(rng.UniformInt(0, app.NumServices() - 1));
    const sim::Service& svc = app.service(svc_index);
    const int n_types = options.allow_blackhole ? 5 : 4;
    const auto pick = static_cast<int>(rng.UniformInt(0, n_types - 1));
    FaultEvent e;
    e.service = svc.name();
    e.at = Seconds(rng.Uniform(options.start_s, window_end));
    e.duration =
        Seconds(rng.Uniform(options.min_duration_s, options.max_duration_s));
    switch (pick) {
      case 0: {
        e.type = FaultType::kPodCrash;
        const double frac = rng.Uniform(0.2, options.max_crash_fraction);
        e.pods = std::max(
            1, static_cast<int>(std::lround(frac * svc.RunningPods())));
        // Crashes use restart, not revert: pods come back one by one.
        e.restart_delay = e.duration;
        e.restart_stagger = Seconds(rng.Uniform(0.0, 2.0));
        e.duration = 0;
        break;
      }
      case 1:
        e.type = FaultType::kCapacityDegrade;
        e.severity = rng.Uniform(0.2, 0.8);
        break;
      case 2:
        e.type = FaultType::kServiceTimeInflate;
        e.severity = rng.Uniform(1.5, 4.0);
        break;
      case 3:
        e.type = FaultType::kErrorBurst;
        e.severity = rng.Uniform(0.1, 0.5);
        break;
      default:
        e.type = FaultType::kBlackhole;
        break;
    }
    events.push_back(std::move(e));
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  for (auto& e : events) schedule.Add(std::move(e));
  return schedule;
}

}  // namespace topfull::fault

// Seeded random chaos profiles: draw a FaultSchedule from an application's
// topology using a dedicated RNG stream (never the workload RNG), so the
// same seed always yields the same fault timeline on the same app.
#pragma once

#include <cstdint>

#include "fault/fault.hpp"

namespace topfull::fault {

struct ChaosOptions {
  std::uint64_t seed = 1;
  /// Number of fault events to draw.
  int events = 4;
  /// Events are injected in [start_s, horizon_s × 0.8] so the tail of the
  /// run observes recovery.
  double start_s = 10.0;
  double horizon_s = 120.0;
  /// Transient faults last uniform [min_duration_s, max_duration_s].
  double min_duration_s = 5.0;
  double max_duration_s = 30.0;
  /// Pod crashes kill uniform [0.2, max_crash_fraction] of running pods.
  double max_crash_fraction = 0.6;
  /// Blackholes require a hop timeout to be survivable; excluded unless
  /// the caller opts in.
  bool allow_blackhole = false;
};

/// Draws `options.events` faults over `app`'s services. Severities by type:
/// capacity degrade factor in [0.2, 0.8], service-time inflation in
/// [1.5, 4.0], error-burst probability in [0.1, 0.5]. Events are returned
/// sorted by injection time.
FaultSchedule MakeChaosSchedule(const sim::Application& app, const ChaosOptions& options);

}  // namespace topfull::fault

#include "fault/fault.hpp"

#include <cstdio>
#include <utility>

#include "autoscale/cluster.hpp"

namespace topfull::fault {

const char* FaultTypeName(FaultType type) {
  switch (type) {
    case FaultType::kPodCrash: return "pod_crash";
    case FaultType::kCapacityDegrade: return "capacity_degrade";
    case FaultType::kServiceTimeInflate: return "service_time_inflate";
    case FaultType::kBlackhole: return "blackhole";
    case FaultType::kErrorBurst: return "error_burst";
    case FaultType::kVmOutage: return "vm_outage";
  }
  return "unknown";
}

const char* FaultActionName(FaultRecord::Action action) {
  switch (action) {
    case FaultRecord::Action::kApply: return "apply";
    case FaultRecord::Action::kRevert: return "revert";
    case FaultRecord::Action::kRestart: return "restart";
    case FaultRecord::Action::kSkipped: return "skipped";
  }
  return "unknown";
}

FaultSchedule& FaultSchedule::Add(FaultEvent event) {
  events_.push_back(std::move(event));
  return *this;
}

FaultSchedule& FaultSchedule::CrashPods(std::string service, SimTime at, int pods,
                                        SimTime restart_delay, SimTime restart_stagger) {
  FaultEvent e;
  e.type = FaultType::kPodCrash;
  e.service = std::move(service);
  e.at = at;
  e.pods = pods;
  e.restart_delay = restart_delay;
  e.restart_stagger = restart_stagger;
  return Add(std::move(e));
}

FaultSchedule& FaultSchedule::DegradeCapacity(std::string service, SimTime at,
                                              SimTime duration, double factor) {
  FaultEvent e;
  e.type = FaultType::kCapacityDegrade;
  e.service = std::move(service);
  e.at = at;
  e.duration = duration;
  e.severity = factor;
  return Add(std::move(e));
}

FaultSchedule& FaultSchedule::InflateServiceTime(std::string service, SimTime at,
                                                 SimTime duration, double factor) {
  FaultEvent e;
  e.type = FaultType::kServiceTimeInflate;
  e.service = std::move(service);
  e.at = at;
  e.duration = duration;
  e.severity = factor;
  return Add(std::move(e));
}

FaultSchedule& FaultSchedule::Blackhole(std::string service, SimTime at,
                                        SimTime duration) {
  FaultEvent e;
  e.type = FaultType::kBlackhole;
  e.service = std::move(service);
  e.at = at;
  e.duration = duration;
  return Add(std::move(e));
}

FaultSchedule& FaultSchedule::ErrorBurst(std::string service, SimTime at,
                                         SimTime duration, double error_rate) {
  FaultEvent e;
  e.type = FaultType::kErrorBurst;
  e.service = std::move(service);
  e.at = at;
  e.duration = duration;
  e.severity = error_rate;
  return Add(std::move(e));
}

FaultSchedule& FaultSchedule::VmOutage(SimTime at, SimTime duration, int vms) {
  FaultEvent e;
  e.type = FaultType::kVmOutage;
  e.at = at;
  e.duration = duration;
  e.pods = vms;
  return Add(std::move(e));
}

bool FaultSchedule::NeedsHopTimeout() const {
  for (const auto& e : events_) {
    if (e.type == FaultType::kBlackhole) return true;
  }
  return false;
}

FaultInjector::FaultInjector(sim::Application* app, FaultSchedule schedule,
                             std::uint64_t seed)
    : app_(app), schedule_(std::move(schedule)), rng_(seed) {}

void FaultInjector::Arm() {
  if (armed_) return;
  armed_ = true;
  obs::MetricsRegistry& metrics = app_->metrics_registry();
  applied_counter_ = metrics.GetCounter("topfull_faults_injected_total",
                                        "Fault events applied by the injector.");
  reverted_counter_ = metrics.GetCounter("topfull_faults_reverted_total",
                                         "Transient fault events reverted.");
  restarts_counter_ = metrics.GetCounter("topfull_fault_pod_restarts_total",
                                         "Pods restored after injected crashes.");
  if (schedule_.NeedsHopTimeout() && app_->config().hop_timeout <= 0) {
    std::fprintf(stderr,
                 "[fault] warning: schedule contains blackhole events but the "
                 "app has no hop timeout; blackholed requests will never "
                 "resolve\n");
  }
  auto& sim = app_->sim();
  for (const auto& event : schedule_.events()) {
    const FaultEvent* e = &event;  // events_ is immutable once armed
    SimTime delay = e->at - sim.Now();
    if (delay < 0) delay = 0;
    sim.ScheduleAfter(delay, [this, e]() { Apply(*e); });
    if (e->duration > 0 && e->type != FaultType::kPodCrash) {
      sim.ScheduleAfter(delay + e->duration, [this, e]() { Revert(*e); });
    }
  }
}

void FaultInjector::Apply(const FaultEvent& event) {
  if (event.type == FaultType::kVmOutage) {
    if (cluster_ == nullptr) {
      std::fprintf(stderr, "[fault] warning: vm_outage event with no cluster attached; skipped\n");
      Record(event.type, FaultRecord::Action::kSkipped, "", event.severity, 0);
      return;
    }
    const int took = cluster_->CordonVms(event.pods);
    Record(event.type, FaultRecord::Action::kApply, "", event.severity, took);
    return;
  }
  const sim::ServiceId id = app_->FindService(event.service);
  if (id == sim::kNoService) {
    std::fprintf(stderr, "[fault] warning: unknown service '%s'; event skipped\n",
                 event.service.c_str());
    Record(event.type, FaultRecord::Action::kSkipped, event.service, event.severity, 0);
    return;
  }
  sim::Service& svc = app_->service(id);
  switch (event.type) {
    case FaultType::kPodCrash: {
      const int killed = svc.KillPods(event.pods);
      Record(event.type, FaultRecord::Action::kApply, event.service, event.severity,
             killed);
      if (event.restart_delay > 0) {
        // The deployment controller replaces crashed pods one at a time,
        // restart_stagger apart (all at once when stagger is 0).
        for (int i = 0; i < killed; ++i) {
          app_->sim().ScheduleAfter(
              event.restart_delay + static_cast<SimTime>(i) * event.restart_stagger,
              [this, id, service = event.service, severity = event.severity]() {
                const int added = app_->service(id).RestorePods(1);
                if (added > 0) {
                  Record(FaultType::kPodCrash, FaultRecord::Action::kRestart, service,
                         severity, added);
                }
              });
        }
      }
      break;
    }
    case FaultType::kCapacityDegrade:
      svc.SetCapacityFactor(event.severity);
      Record(event.type, FaultRecord::Action::kApply, event.service, event.severity, 0);
      break;
    case FaultType::kServiceTimeInflate:
      svc.SetServiceTimeFactor(event.severity);
      Record(event.type, FaultRecord::Action::kApply, event.service, event.severity, 0);
      break;
    case FaultType::kBlackhole:
      svc.SetBlackhole(true);
      Record(event.type, FaultRecord::Action::kApply, event.service, event.severity, 0);
      break;
    case FaultType::kErrorBurst:
      // Each burst gets its own child stream so overlapping bursts on
      // different services stay decorrelated.
      svc.SetErrorInjection(event.severity, rng_.Fork(HashLabel(event.service)));
      Record(event.type, FaultRecord::Action::kApply, event.service, event.severity, 0);
      break;
    case FaultType::kVmOutage:
      break;  // handled above
  }
}

void FaultInjector::Revert(const FaultEvent& event) {
  if (event.type == FaultType::kVmOutage) {
    if (cluster_ == nullptr) return;
    const int back = cluster_->UncordonVms(event.pods);
    Record(event.type, FaultRecord::Action::kRevert, "", event.severity, back);
    return;
  }
  const sim::ServiceId id = app_->FindService(event.service);
  if (id == sim::kNoService) return;
  sim::Service& svc = app_->service(id);
  switch (event.type) {
    case FaultType::kCapacityDegrade:
      svc.SetCapacityFactor(1.0);
      break;
    case FaultType::kServiceTimeInflate:
      svc.SetServiceTimeFactor(1.0);
      break;
    case FaultType::kBlackhole:
      svc.SetBlackhole(false);
      break;
    case FaultType::kErrorBurst:
      svc.ClearErrorInjection();
      break;
    case FaultType::kPodCrash:
    case FaultType::kVmOutage:
      return;  // no revert path (crashes restart via kRestart records)
  }
  Record(event.type, FaultRecord::Action::kRevert, event.service, event.severity, 0);
}

void FaultInjector::Record(FaultType type, FaultRecord::Action action,
                           const std::string& service, double severity, int count) {
  FaultRecord r;
  r.at = app_->sim().Now();
  r.type = type;
  r.action = action;
  r.service = service;
  r.severity = severity;
  r.count = count;
  switch (action) {
    case FaultRecord::Action::kApply:
      if (applied_counter_ != nullptr) applied_counter_->Inc();
      break;
    case FaultRecord::Action::kRevert:
      if (reverted_counter_ != nullptr) reverted_counter_->Inc();
      break;
    case FaultRecord::Action::kRestart:
      if (restarts_counter_ != nullptr) restarts_counter_->Inc();
      break;
    case FaultRecord::Action::kSkipped:
      break;
  }
  log_.push_back(std::move(r));
}

int FaultInjector::InjectionCount() const {
  int n = 0;
  for (const auto& r : log_) {
    if (r.action != FaultRecord::Action::kSkipped) ++n;
  }
  return n;
}

}  // namespace topfull::fault

// Deterministic fault injection for the simulated deployment.
//
// A FaultSchedule is a list of typed events applied at simulated
// timestamps: pod crashes with staggered restarts, capacity degradation,
// service-time inflation, dependency blackholes, transient error bursts,
// and VM outages. The FaultInjector arms the schedule on an Application's
// DES and records everything it does.
//
// Determinism contract (same as src/obs):
//   * The injector owns its RNG stream (seeded independently) and never
//     draws from the workload RNG; an empty schedule — or events whose
//     trigger time lies beyond the run horizon — leaves the run
//     byte-identical to one with no injector at all.
//   * All fault state changes happen as ordinary DES events, so runs
//     replay bit-for-bit at any thread-pool size and with tracing on/off.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "sim/app.hpp"

namespace topfull::autoscale {
class Cluster;
}

namespace topfull::fault {

enum class FaultType : std::uint8_t {
  kPodCrash,           ///< Kill pods; optionally restart them, staggered.
  kCapacityDegrade,    ///< Per-pod parallelism capped to severity × threads.
  kServiceTimeInflate, ///< Sampled service times multiplied by severity.
  kBlackhole,          ///< Dispatches accepted but never complete.
  kErrorBurst,         ///< Dispatches fail fast with probability severity.
  kVmOutage,           ///< Cordon VMs in the attached autoscale::Cluster.
};

const char* FaultTypeName(FaultType type);

/// One scheduled fault. `duration == 0` means the fault is permanent
/// (never reverted); pod crashes instead use `restart_delay` to bring the
/// killed pods back one by one.
struct FaultEvent {
  FaultType type = FaultType::kPodCrash;
  std::string service;        ///< Target service name (ignored by kVmOutage).
  SimTime at = 0;             ///< Injection time.
  SimTime duration = 0;       ///< Revert after this long; 0 = permanent.
  int pods = 1;               ///< Pods to kill / VMs to cordon.
  SimTime restart_delay = 0;  ///< Crash only: first restart after this; 0 = none.
  SimTime restart_stagger = 0;  ///< Crash only: gap between successive restarts.
  double severity = 1.0;      ///< Factor (degrade/inflate) or probability (errors).
};

/// A typed fault timeline, built fluently:
///   FaultSchedule s;
///   s.CrashPods("ts-station", Seconds(50), 25, Seconds(60))
///    .Blackhole("ts-food", Seconds(20), Seconds(10));
class FaultSchedule {
 public:
  FaultSchedule& Add(FaultEvent event);
  FaultSchedule& CrashPods(std::string service, SimTime at, int pods,
                           SimTime restart_delay = 0, SimTime restart_stagger = 0);
  FaultSchedule& DegradeCapacity(std::string service, SimTime at, SimTime duration,
                                 double factor);
  FaultSchedule& InflateServiceTime(std::string service, SimTime at, SimTime duration,
                                    double factor);
  FaultSchedule& Blackhole(std::string service, SimTime at, SimTime duration);
  FaultSchedule& ErrorBurst(std::string service, SimTime at, SimTime duration,
                            double error_rate);
  FaultSchedule& VmOutage(SimTime at, SimTime duration, int vms);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /// True when any event needs a hop timeout to be survivable (blackholes
  /// never complete; callers without a timeout leak in-flight requests).
  bool NeedsHopTimeout() const;

 private:
  std::vector<FaultEvent> events_;
};

/// What the injector actually did, for reports and trace export.
struct FaultRecord {
  enum class Action : std::uint8_t { kApply, kRevert, kRestart, kSkipped };
  SimTime at = 0;
  FaultType type = FaultType::kPodCrash;
  Action action = Action::kApply;
  std::string service;  ///< Empty for cluster-wide events.
  double severity = 1.0;
  int count = 0;  ///< Pods killed/restored, VMs cordoned/uncordoned.
};

const char* FaultActionName(FaultRecord::Action action);

/// Arms a FaultSchedule on an application's DES and logs every state
/// change. Must outlive the simulation run.
class FaultInjector {
 public:
  static constexpr std::uint64_t kDefaultSeed = 0x0FA017'0FA017ULL;

  FaultInjector(sim::Application* app, FaultSchedule schedule,
                std::uint64_t seed = kDefaultSeed);

  /// Attaches the cluster targeted by kVmOutage events. Optional: without
  /// it those events are recorded as skipped.
  void AttachCluster(autoscale::Cluster* cluster) { cluster_ = cluster; }

  /// Schedules every event on the DES. Call once, before (or during) the
  /// run; events in the past of the sim clock fire immediately. Events
  /// naming unknown services are logged as skipped at their trigger time.
  void Arm();

  const FaultSchedule& schedule() const { return schedule_; }
  const std::vector<FaultRecord>& Log() const { return log_; }

  /// Number of apply/restart/revert records (i.e. real state changes).
  int InjectionCount() const;

 private:
  void Apply(const FaultEvent& event);
  void Revert(const FaultEvent& event);
  void Record(FaultType type, FaultRecord::Action action, const std::string& service,
              double severity, int count);

  sim::Application* app_;
  FaultSchedule schedule_;
  Rng rng_;  ///< Fault-owned stream; the workload RNG is never touched.
  autoscale::Cluster* cluster_ = nullptr;
  std::vector<FaultRecord> log_;
  // Live metrics-registry counters (owned by the app's registry; resolved
  // at Arm so fault-free runs add no families).
  obs::Counter* applied_counter_ = nullptr;
  obs::Counter* reverted_counter_ = nullptr;
  obs::Counter* restarts_counter_ = nullptr;
  bool armed_ = false;
};

}  // namespace topfull::fault

#include "fault/profile.hpp"

#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

#include "fault/chaos.hpp"

namespace topfull::fault {
namespace {

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::stringstream stream(s);
  std::string item;
  while (std::getline(stream, item, sep)) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

bool Fail(std::string* error, const std::string& reason) {
  if (error != nullptr) *error = reason;
  return false;
}

/// Parses `key=value,key=value` into a map; false on malformed pairs.
bool ParseKeyValues(const std::string& body, std::map<std::string, std::string>* out,
                    std::string* error) {
  for (const auto& pair : Split(body, ',')) {
    const auto eq = pair.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= pair.size()) {
      return Fail(error, "malformed key=value pair '" + pair + "'");
    }
    (*out)[pair.substr(0, eq)] = pair.substr(eq + 1);
  }
  return true;
}

double GetNum(const std::map<std::string, std::string>& kv, const std::string& key,
              double fallback) {
  const auto it = kv.find(key);
  return it == kv.end() ? fallback : std::atof(it->second.c_str());
}

/// Every key except `svc` carries a number; reject junk like `factor=x`
/// instead of silently reading it as 0.
bool CheckNumericValues(const std::map<std::string, std::string>& kv,
                        std::string* error) {
  for (const auto& [key, value] : kv) {
    if (key == "svc") continue;
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') {
      return Fail(error, "non-numeric value '" + value + "' for key '" + key + "'");
    }
  }
  return true;
}

bool RequireKeys(const std::map<std::string, std::string>& kv,
                 std::initializer_list<const char*> keys, const std::string& kind,
                 std::string* error) {
  for (const char* key : keys) {
    if (kv.find(key) == kv.end()) {
      return Fail(error, "'" + kind + "' event missing required key '" + key + "'");
    }
  }
  return true;
}

}  // namespace

std::optional<FaultSchedule> ParseFaultProfile(const std::string& spec,
                                               const sim::Application& app,
                                               std::string* error) {
  FaultSchedule schedule;
  for (const auto& entry : Split(spec, ';')) {
    const auto colon = entry.find(':');
    if (colon == std::string::npos) {
      Fail(error, "event '" + entry + "' has no 'kind:' prefix");
      return std::nullopt;
    }
    const std::string kind = entry.substr(0, colon);
    std::map<std::string, std::string> kv;
    if (!ParseKeyValues(entry.substr(colon + 1), &kv, error)) return std::nullopt;
    if (!CheckNumericValues(kv, error)) return std::nullopt;

    if (kind == "chaos") {
      ChaosOptions opts;
      opts.seed = static_cast<std::uint64_t>(GetNum(kv, "seed", 1.0));
      opts.events = static_cast<int>(GetNum(kv, "events", 4.0));
      opts.horizon_s = GetNum(kv, "horizon", 120.0);
      opts.start_s = GetNum(kv, "start", 10.0);
      opts.allow_blackhole = GetNum(kv, "blackhole", 0.0) != 0.0;
      const FaultSchedule chaos = MakeChaosSchedule(app, opts);
      for (const auto& e : chaos.events()) schedule.Add(e);
      continue;
    }
    if (kind == "vmout") {
      if (!RequireKeys(kv, {"at", "vms"}, kind, error)) return std::nullopt;
      schedule.VmOutage(Seconds(GetNum(kv, "at", 0.0)),
                        Seconds(GetNum(kv, "for", 0.0)),
                        static_cast<int>(GetNum(kv, "vms", 1.0)));
      continue;
    }
    // All remaining kinds target a named service.
    if (!RequireKeys(kv, {"svc", "at"}, kind, error)) return std::nullopt;
    const std::string svc = kv["svc"];
    if (app.FindService(svc) == sim::kNoService) {
      Fail(error, "unknown service '" + svc + "'");
      return std::nullopt;
    }
    const SimTime at = Seconds(GetNum(kv, "at", 0.0));
    const SimTime dur = Seconds(GetNum(kv, "for", 0.0));
    if (kind == "crash") {
      if (!RequireKeys(kv, {"pods"}, kind, error)) return std::nullopt;
      schedule.CrashPods(svc, at, static_cast<int>(GetNum(kv, "pods", 1.0)),
                         Seconds(GetNum(kv, "restart", 0.0)),
                         Seconds(GetNum(kv, "stagger", 0.0)));
    } else if (kind == "degrade") {
      if (!RequireKeys(kv, {"factor"}, kind, error)) return std::nullopt;
      schedule.DegradeCapacity(svc, at, dur, GetNum(kv, "factor", 1.0));
    } else if (kind == "inflate") {
      if (!RequireKeys(kv, {"factor"}, kind, error)) return std::nullopt;
      schedule.InflateServiceTime(svc, at, dur, GetNum(kv, "factor", 1.0));
    } else if (kind == "blackhole") {
      schedule.Blackhole(svc, at, dur);
    } else if (kind == "errors") {
      if (!RequireKeys(kv, {"p"}, kind, error)) return std::nullopt;
      schedule.ErrorBurst(svc, at, dur, GetNum(kv, "p", 0.0));
    } else {
      Fail(error, "unknown fault kind '" + kind + "'");
      return std::nullopt;
    }
  }
  return schedule;
}

}  // namespace topfull::fault

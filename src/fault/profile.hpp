// Textual fault-profile specs for the CLI and benches.
//
// A profile is a ';'-separated list of events, each `kind:key=value,...`:
//
//   crash:svc=ts-station,at=50,pods=25,restart=60,stagger=1
//   degrade:svc=frontend,at=30,for=40,factor=0.5
//   inflate:svc=cartservice,at=30,for=40,factor=2.5
//   blackhole:svc=ts-food,at=20,for=10
//   errors:svc=checkout,at=20,for=15,p=0.3
//   vmout:at=40,for=30,vms=2
//   chaos:seed=7,events=6,horizon=120,start=10,blackhole=1
//
// Times are seconds of simulated time. `chaos:` expands to a seeded random
// schedule drawn against the app topology (see chaos.hpp).
#pragma once

#include <optional>
#include <string>

#include "fault/fault.hpp"

namespace topfull::fault {

/// Parses `spec` against `app` (needed to expand `chaos:` profiles).
/// Returns std::nullopt on malformed input and, when `error` is non-null,
/// stores a human-readable reason.
std::optional<FaultSchedule> ParseFaultProfile(const std::string& spec,
                                               const sim::Application& app,
                                               std::string* error = nullptr);

}  // namespace topfull::fault

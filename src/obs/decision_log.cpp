#include "obs/decision_log.hpp"

namespace topfull::obs {

void DecisionLog::BeginTick(double t_s,
                            const std::vector<sim::ServiceId>& overloaded,
                            const std::vector<core::Cluster>& clusters) {
  current_ = TickRecord{};
  current_.t_s = t_s;
  current_.overloaded = overloaded;
  current_.clusters.reserve(clusters.size());
  for (const auto& cluster : clusters) {
    current_.clusters.push_back(ClusterMembership{cluster.apis, cluster.overloaded});
  }
  tick_limits_.clear();
  open_ = true;
}

void DecisionLog::OnClusterDecision(sim::ServiceId target,
                                    const std::vector<sim::ApiId>& candidates,
                                    const core::ControlState& state,
                                    double action) {
  if (!open_) return;
  current_.decisions.push_back(TargetDecision{target, candidates, state, action});
}

void DecisionLog::OnRecoveryDecision(sim::ApiId api,
                                     const core::ControlState& state,
                                     double action) {
  if (!open_) return;
  current_.recovery.push_back(RecoveryDecision{api, state, action});
}

void DecisionLog::OnRateChange(sim::ApiId api, double before, double after) {
  // Rate changes outside a tick (e.g. ForceRateLimit from the RL training
  // env) are not part of the control trajectory and are not logged.
  if (!open_) return;
  const auto [it, inserted] = tick_limits_.try_emplace(api, LimitDelta{api, before, after});
  if (!inserted) it->second.after = after;
}

void DecisionLog::EndTick() {
  if (!open_) return;
  open_ = false;
  current_.limits.reserve(tick_limits_.size());
  for (const auto& [api, delta] : tick_limits_) current_.limits.push_back(delta);
  ticks_.push_back(std::move(current_));
  current_ = TickRecord{};
}

std::uint64_t DecisionLog::DecisionCount() const {
  std::uint64_t n = 0;
  for (const auto& tick : ticks_) {
    n += tick.decisions.size() + tick.recovery.size();
  }
  return n;
}

}  // namespace topfull::obs

// Structured controller decision log.
//
// Buffers one TickRecord per control tick: overloaded services, cluster
// membership, per-target Algorithm 1 decisions, recovery decisions, and the
// per-API rate-limit deltas (first value before / last value after within
// the tick). obs::WriteDecisionLogJsonl serialises the buffer as one JSON
// object per line so any convergence plot can be replayed
// decision-by-decision.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/decision_observer.hpp"

namespace topfull::obs {

/// Membership of one cluster at one tick (paper Eq. 2).
struct ClusterMembership {
  std::vector<sim::ApiId> apis;
  std::vector<sim::ServiceId> overloaded;
};

/// One Algorithm 1 decision.
struct TargetDecision {
  sim::ServiceId target = sim::kNoService;
  std::vector<sim::ApiId> apis;  ///< candidates adjusted for this target
  core::ControlState state;
  double action = 0.0;
};

struct RecoveryDecision {
  sim::ApiId api = sim::kNoApi;
  core::ControlState state;
  double action = 0.0;
};

/// Net rate-limit movement of one API within one tick.
struct LimitDelta {
  sim::ApiId api = sim::kNoApi;
  double before = 0.0;  ///< limit entering the tick (0 = previously uncapped)
  double after = 0.0;   ///< limit leaving the tick
};

struct TickRecord {
  double t_s = 0.0;
  std::vector<sim::ServiceId> overloaded;
  std::vector<ClusterMembership> clusters;
  std::vector<TargetDecision> decisions;
  std::vector<RecoveryDecision> recovery;
  std::vector<LimitDelta> limits;  ///< sorted by ApiId
};

class DecisionLog : public core::DecisionObserver {
 public:
  // core::DecisionObserver:
  void BeginTick(double t_s, const std::vector<sim::ServiceId>& overloaded,
                 const std::vector<core::Cluster>& clusters) override;
  void OnClusterDecision(sim::ServiceId target,
                         const std::vector<sim::ApiId>& candidates,
                         const core::ControlState& state, double action) override;
  void OnRecoveryDecision(sim::ApiId api, const core::ControlState& state,
                          double action) override;
  void OnRateChange(sim::ApiId api, double before, double after) override;
  void EndTick() override;

  const std::vector<TickRecord>& ticks() const { return ticks_; }

  /// Total Algorithm 1 + recovery decisions logged (matches
  /// TopFullController::Decisions() when attached for the whole run).
  std::uint64_t DecisionCount() const;

 private:
  std::vector<TickRecord> ticks_;
  TickRecord current_;
  std::map<sim::ApiId, LimitDelta> tick_limits_;
  bool open_ = false;
};

}  // namespace topfull::obs

#include "obs/export.hpp"

#include <cstdio>
#include <fstream>

#include "core/controller.hpp"

namespace topfull::obs {

namespace {

/// Deterministic, locale-independent double formatting.
std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string U64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

const char* OutcomeName(sim::Outcome outcome) {
  switch (outcome) {
    case sim::Outcome::kCompleted: return "completed";
    case sim::Outcome::kRejectedEntry: return "rejected_entry";
    case sim::Outcome::kRejectedService: return "rejected_service";
  }
  return "unknown";
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool WritePerfettoTrace(const RequestTracer& tracer, const sim::Application& app,
                        const std::string& path,
                        const std::vector<fault::FaultRecord>* faults) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  const auto emit = [&out, &first](const std::string& event) {
    if (!first) out << ",\n";
    first = false;
    out << event;
  };

  // Process/thread naming: pid 0 is the client (root spans, one thread per
  // API); pid s+1 is microservice s.
  emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
       "\"args\":{\"name\":\"client:" + JsonEscape(app.name()) + "\"}}");
  for (int s = 0; s < app.NumServices(); ++s) {
    emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" + U64(s + 1) +
         ",\"tid\":0,\"args\":{\"name\":\"" + JsonEscape(app.service(s).name()) +
         "\"}}");
  }
  for (int pid = 0; pid <= app.NumServices(); ++pid) {
    for (sim::ApiId a = 0; a < app.NumApis(); ++a) {
      emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" + U64(pid) +
           ",\"tid\":" + U64(a) + ",\"args\":{\"name\":\"" +
           JsonEscape(app.api(a).name()) + "\"}}");
    }
  }

  // Injected faults get their own process row so they line up against the
  // request spans they disturbed.
  if (faults != nullptr && !faults->empty()) {
    const std::string fault_pid = U64(static_cast<std::uint64_t>(app.NumServices()) + 1);
    emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" + fault_pid +
         ",\"tid\":0,\"args\":{\"name\":\"faults\"}}");
    for (const fault::FaultRecord& r : *faults) {
      emit("{\"name\":\"" + std::string(fault::FaultTypeName(r.type)) + ":" +
           fault::FaultActionName(r.action) +
           "\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"g\",\"ts\":" +
           U64(static_cast<std::uint64_t>(r.at)) + ",\"pid\":" + fault_pid +
           ",\"tid\":0,\"args\":{\"service\":\"" + JsonEscape(r.service) +
           "\",\"severity\":" + Num(r.severity) + ",\"count\":" + U64(r.count) +
           "}}");
    }
  }

  for (const RequestTrace& trace : tracer.finished()) {
    const std::string tid = U64(static_cast<std::uint64_t>(trace.api));
    if (trace.outcome == sim::Outcome::kRejectedEntry) {
      emit("{\"name\":\"rejected_entry\",\"cat\":\"admission\",\"ph\":\"i\","
           "\"s\":\"t\",\"ts\":" + U64(trace.start) + ",\"pid\":0,\"tid\":" +
           tid + "}");
      continue;
    }
    emit("{\"name\":\"" + JsonEscape(app.api(trace.api).name()) +
         "\",\"cat\":\"request\",\"ph\":\"X\",\"ts\":" + U64(trace.start) +
         ",\"dur\":" + U64(trace.end - trace.start) + ",\"pid\":0,\"tid\":" +
         tid + ",\"args\":{\"id\":" + U64(trace.id) + ",\"outcome\":\"" +
         OutcomeName(trace.outcome) + "\",\"slo_ok\":" +
         (trace.slo_ok ? "true" : "false") + "}}");
    for (const HopSpan& span : trace.spans) {
      emit("{\"name\":\"" + JsonEscape(app.service(span.service).name()) +
           "\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":" + U64(span.start) +
           ",\"dur\":" + U64(span.end - span.start) + ",\"pid\":" +
           U64(span.service + 1) + ",\"tid\":" + tid +
           ",\"args\":{\"id\":" + U64(trace.id) + ",\"queue_wait_ms\":" +
           Num(ToMillis(span.queue_wait)) + ",\"service_time_ms\":" +
           Num(ToMillis(span.service_time)) + ",\"ok\":" +
           (span.ok ? "true" : "false") + ",\"shed\":" +
           (span.shed ? "true" : "false") + "}}");
    }
  }
  out << "\n]}\n";
  return static_cast<bool>(out);
}

bool WriteDecisionLogJsonl(const DecisionLog& log, const sim::Application& app,
                           const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  const auto api_name = [&app](sim::ApiId a) {
    return "\"" + JsonEscape(app.api(a).name()) + "\"";
  };
  const auto svc_name = [&app](sim::ServiceId s) {
    return "\"" + JsonEscape(app.service(s).name()) + "\"";
  };
  const auto api_list = [&api_name](const std::vector<sim::ApiId>& apis) {
    std::string s = "[";
    for (std::size_t i = 0; i < apis.size(); ++i) {
      if (i > 0) s += ",";
      s += api_name(apis[i]);
    }
    return s + "]";
  };
  const auto svc_list = [&svc_name](const std::vector<sim::ServiceId>& svcs) {
    std::string s = "[";
    for (std::size_t i = 0; i < svcs.size(); ++i) {
      if (i > 0) s += ",";
      s += svc_name(svcs[i]);
    }
    return s + "]";
  };
  const auto state_fields = [](const core::ControlState& state) {
    return "\"goodput\":" + Num(state.goodput) + ",\"rate_limit\":" +
           Num(state.rate_limit) + ",\"latency_s\":" + Num(state.latency_s) +
           ",\"slo_s\":" + Num(state.slo_s);
  };

  for (const TickRecord& tick : log.ticks()) {
    out << "{\"t_s\":" << Num(tick.t_s) << ",\"overloaded\":"
        << svc_list(tick.overloaded) << ",\"clusters\":[";
    for (std::size_t i = 0; i < tick.clusters.size(); ++i) {
      if (i > 0) out << ",";
      out << "{\"apis\":" << api_list(tick.clusters[i].apis) << ",\"overloaded\":"
          << svc_list(tick.clusters[i].overloaded) << "}";
    }
    out << "],\"decisions\":[";
    for (std::size_t i = 0; i < tick.decisions.size(); ++i) {
      const TargetDecision& d = tick.decisions[i];
      if (i > 0) out << ",";
      out << "{\"target\":" << svc_name(d.target) << ",\"apis\":"
          << api_list(d.apis) << "," << state_fields(d.state)
          << ",\"action\":" << Num(d.action) << "}";
    }
    out << "],\"recovery\":[";
    for (std::size_t i = 0; i < tick.recovery.size(); ++i) {
      const RecoveryDecision& d = tick.recovery[i];
      if (i > 0) out << ",";
      out << "{\"api\":" << api_name(d.api) << "," << state_fields(d.state)
          << ",\"action\":" << Num(d.action) << "}";
    }
    out << "],\"limits\":[";
    for (std::size_t i = 0; i < tick.limits.size(); ++i) {
      const LimitDelta& delta = tick.limits[i];
      if (i > 0) out << ",";
      out << "{\"api\":" << api_name(delta.api) << ",\"before\":"
          << Num(delta.before) << ",\"after\":" << Num(delta.after) << "}";
    }
    out << "]}\n";
  }
  return static_cast<bool>(out);
}

bool WritePrometheusText(const sim::Application& app,
                         const core::TopFullController* controller,
                         const RequestTracer* tracer, const std::string& path,
                         const std::vector<fault::FaultRecord>* faults) {
  std::ofstream out(path);
  if (!out) return false;

  const auto family = [&out](const char* name, const char* type,
                             const char* help) {
    out << "# HELP " << name << " " << help << "\n# TYPE " << name << " "
        << type << "\n";
  };
  const auto api_label = [&app](sim::ApiId a) {
    return "{api=\"" + JsonEscape(app.api(a).name()) + "\"}";
  };

  struct CounterField {
    const char* name;
    const char* help;
    std::uint64_t sim::ApiTotals::*field;
  };
  const CounterField counters[] = {
      {"topfull_requests_offered_total", "Client requests offered at the gateway.",
       &sim::ApiTotals::offered},
      {"topfull_requests_admitted_total", "Requests admitted by the entry limiter.",
       &sim::ApiTotals::admitted},
      {"topfull_requests_rejected_entry_total",
       "Requests shed by the entry rate limiter.", &sim::ApiTotals::rejected_entry},
      {"topfull_requests_rejected_service_total",
       "Admitted requests that failed at some microservice.",
       &sim::ApiTotals::rejected_service},
      {"topfull_requests_completed_total", "Requests that completed end to end.",
       &sim::ApiTotals::completed},
      {"topfull_requests_good_total", "Completions within the end-to-end SLO.",
       &sim::ApiTotals::good},
  };
  for (const CounterField& counter : counters) {
    family(counter.name, "counter", counter.help);
    for (sim::ApiId a = 0; a < app.NumApis(); ++a) {
      out << counter.name << api_label(a) << " "
          << U64(app.metrics().Totals()[a].*counter.field) << "\n";
    }
  }

  family("topfull_slo_seconds", "gauge", "End-to-end latency SLO.");
  out << "topfull_slo_seconds " << Num(ToSeconds(app.metrics().slo())) << "\n";
  family("topfull_sim_end_seconds", "gauge",
         "Simulation time at the last closed metrics window.");
  out << "topfull_sim_end_seconds " << Num(app.metrics().Latest().t_end_s) << "\n";

  family("topfull_service_running_pods", "gauge",
         "Running pods per microservice at end of run.");
  for (int s = 0; s < app.NumServices(); ++s) {
    out << "topfull_service_running_pods{service=\""
        << JsonEscape(app.service(s).name()) << "\"} "
        << app.service(s).RunningPods() << "\n";
  }
  family("topfull_service_capacity_rps", "gauge",
         "Estimated sustainable throughput per microservice at work=1.");
  for (int s = 0; s < app.NumServices(); ++s) {
    out << "topfull_service_capacity_rps{service=\""
        << JsonEscape(app.service(s).name()) << "\"} "
        << Num(app.service(s).CapacityRps()) << "\n";
  }

  if (controller != nullptr) {
    family("topfull_api_rate_limit_rps", "gauge",
           "Entry rate limit per API at end of run (+Inf = uncapped).");
    for (sim::ApiId a = 0; a < app.NumApis(); ++a) {
      const auto limit = controller->RateLimit(a);
      out << "topfull_api_rate_limit_rps" << api_label(a) << " "
          << (limit ? Num(*limit) : "+Inf") << "\n";
    }
    family("topfull_controller_decisions_total", "counter",
           "Control decisions taken (Algorithm 1 + recovery).");
    out << "topfull_controller_decisions_total " << U64(controller->Decisions())
        << "\n";
  }

  if (faults != nullptr) {
    std::uint64_t applied = 0, reverted = 0, restarts = 0;
    for (const fault::FaultRecord& r : *faults) {
      switch (r.action) {
        case fault::FaultRecord::Action::kApply: ++applied; break;
        case fault::FaultRecord::Action::kRevert: ++reverted; break;
        case fault::FaultRecord::Action::kRestart: ++restarts; break;
        case fault::FaultRecord::Action::kSkipped: break;
      }
    }
    family("topfull_faults_injected_total", "counter",
           "Fault events applied by the injector.");
    out << "topfull_faults_injected_total " << U64(applied) << "\n";
    family("topfull_faults_reverted_total", "counter",
           "Transient fault events reverted.");
    out << "topfull_faults_reverted_total " << U64(reverted) << "\n";
    family("topfull_fault_pod_restarts_total", "counter",
           "Pods restored after injected crashes.");
    out << "topfull_fault_pod_restarts_total " << U64(restarts) << "\n";
  }

  if (tracer != nullptr) {
    const TracerCounters& c = tracer->counters();
    family("topfull_trace_sampled_total", "counter", "Request traces recorded.");
    out << "topfull_trace_sampled_total " << U64(c.sampled) << "\n";
    family("topfull_trace_dropped_total", "counter",
           "Sampled traces discarded by the memory cap.");
    out << "topfull_trace_dropped_total " << U64(c.dropped) << "\n";
    std::uint64_t spans = 0;
    for (const RequestTrace& trace : tracer->finished()) spans += trace.spans.size();
    family("topfull_trace_spans_total", "counter",
           "Service hop spans across finished traces.");
    out << "topfull_trace_spans_total " << U64(spans) << "\n";
  }
  return static_cast<bool>(out);
}

}  // namespace topfull::obs

#include "obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "core/controller.hpp"

namespace topfull::obs {

namespace {

/// Deterministic, locale-independent double formatting.
std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string U64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

const char* OutcomeName(sim::Outcome outcome) {
  switch (outcome) {
    case sim::Outcome::kCompleted: return "completed";
    case sim::Outcome::kRejectedEntry: return "rejected_entry";
    case sim::Outcome::kRejectedService: return "rejected_service";
  }
  return "unknown";
}

}  // namespace

bool WritePerfettoTrace(const RequestTracer& tracer, const sim::Application& app,
                        const std::string& path,
                        const std::vector<fault::FaultRecord>* faults,
                        const std::vector<SloEvent>* slo_events) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  const auto emit = [&out, &first](const std::string& event) {
    if (!first) out << ",\n";
    first = false;
    out << event;
  };

  // Process/thread naming: pid 0 is the client (root spans, one thread per
  // API); pid s+1 is microservice s.
  emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
       "\"args\":{\"name\":\"client:" + JsonEscape(app.name()) + "\"}}");
  for (int s = 0; s < app.NumServices(); ++s) {
    emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" + U64(s + 1) +
         ",\"tid\":0,\"args\":{\"name\":\"" + JsonEscape(app.service(s).name()) +
         "\"}}");
  }
  for (int pid = 0; pid <= app.NumServices(); ++pid) {
    for (sim::ApiId a = 0; a < app.NumApis(); ++a) {
      emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" + U64(pid) +
           ",\"tid\":" + U64(a) + ",\"args\":{\"name\":\"" +
           JsonEscape(app.api(a).name()) + "\"}}");
    }
  }

  // Injected faults get their own process row so they line up against the
  // request spans they disturbed.
  if (faults != nullptr && !faults->empty()) {
    const std::string fault_pid = U64(static_cast<std::uint64_t>(app.NumServices()) + 1);
    emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" + fault_pid +
         ",\"tid\":0,\"args\":{\"name\":\"faults\"}}");
    for (const fault::FaultRecord& r : *faults) {
      emit("{\"name\":\"" + std::string(fault::FaultTypeName(r.type)) + ":" +
           fault::FaultActionName(r.action) +
           "\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"g\",\"ts\":" +
           U64(static_cast<std::uint64_t>(r.at)) + ",\"pid\":" + fault_pid +
           ",\"tid\":0,\"args\":{\"service\":\"" + JsonEscape(r.service) +
           "\",\"severity\":" + Num(r.severity) + ",\"count\":" + U64(r.count) +
           "}}");
    }
  }

  // SLO monitor events, likewise on their own row. Timestamps are window
  // closes in simulation time — deterministic by construction.
  if (slo_events != nullptr && !slo_events->empty()) {
    const std::string slo_pid = U64(static_cast<std::uint64_t>(app.NumServices()) + 2);
    emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" + slo_pid +
         ",\"tid\":0,\"args\":{\"name\":\"slo\"}}");
    for (const SloEvent& e : *slo_events) {
      emit("{\"name\":\"" + std::string(SloEventTypeName(e.type)) +
           "\",\"cat\":\"slo\",\"ph\":\"i\",\"s\":\"g\",\"ts\":" +
           U64(static_cast<std::uint64_t>(e.t_s * 1e6)) + ",\"pid\":" + slo_pid +
           ",\"tid\":0,\"args\":{\"subject\":\"" + JsonEscape(e.subject) +
           "\",\"value\":" + Num(e.value) + ",\"threshold\":" + Num(e.threshold) +
           "}}");
    }
  }

  for (const RequestTrace& trace : tracer.finished()) {
    const std::string tid = U64(static_cast<std::uint64_t>(trace.api));
    if (trace.outcome == sim::Outcome::kRejectedEntry) {
      emit("{\"name\":\"rejected_entry\",\"cat\":\"admission\",\"ph\":\"i\","
           "\"s\":\"t\",\"ts\":" + U64(trace.start) + ",\"pid\":0,\"tid\":" +
           tid + "}");
      continue;
    }
    emit("{\"name\":\"" + JsonEscape(app.api(trace.api).name()) +
         "\",\"cat\":\"request\",\"ph\":\"X\",\"ts\":" + U64(trace.start) +
         ",\"dur\":" + U64(trace.end - trace.start) + ",\"pid\":0,\"tid\":" +
         tid + ",\"args\":{\"id\":" + U64(trace.id) + ",\"outcome\":\"" +
         OutcomeName(trace.outcome) + "\",\"slo_ok\":" +
         (trace.slo_ok ? "true" : "false") + "}}");
    for (const HopSpan& span : trace.spans) {
      emit("{\"name\":\"" + JsonEscape(app.service(span.service).name()) +
           "\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":" + U64(span.start) +
           ",\"dur\":" + U64(span.end - span.start) + ",\"pid\":" +
           U64(span.service + 1) + ",\"tid\":" + tid +
           ",\"args\":{\"id\":" + U64(trace.id) + ",\"queue_wait_ms\":" +
           Num(ToMillis(span.queue_wait)) + ",\"service_time_ms\":" +
           Num(ToMillis(span.service_time)) + ",\"ok\":" +
           (span.ok ? "true" : "false") + ",\"shed\":" +
           (span.shed ? "true" : "false") + "}}");
    }
  }
  out << "\n]}\n";
  return static_cast<bool>(out);
}

namespace {

std::string SloEventLine(const SloEvent& e) {
  return "{\"t_s\":" + Num(e.t_s) + ",\"event\":\"" + SloEventTypeName(e.type) +
         "\",\"subject\":\"" + JsonEscape(e.subject) + "\",\"value\":" +
         Num(e.value) + ",\"threshold\":" + Num(e.threshold) + "}";
}

std::string AlertLine(const AlertTransition& tr) {
  // Burn ratios can be non-finite (zero denominator); keep the line JSON.
  const std::string value =
      std::isfinite(tr.value)
          ? Num(tr.value)
          : (std::isnan(tr.value) ? "\"nan\""
                                  : tr.value > 0 ? "\"inf\"" : "\"-inf\"");
  return "{\"t_s\":" + Num(tr.t_s) + ",\"event\":\"alert\",\"rule\":\"" +
         JsonEscape(tr.rule) + "\",\"from\":\"" + AlertStateName(tr.from) +
         "\",\"to\":\"" + AlertStateName(tr.to) + "\",\"value\":" + value + "}";
}

}  // namespace

bool WriteDecisionLogJsonl(const DecisionLog& log, const sim::Application& app,
                           const std::string& path,
                           const std::vector<SloEvent>* slo_events,
                           const std::vector<AlertTransition>* alerts) {
  std::ofstream out(path);
  if (!out) return false;
  const auto api_name = [&app](sim::ApiId a) {
    return "\"" + JsonEscape(app.api(a).name()) + "\"";
  };
  const auto svc_name = [&app](sim::ServiceId s) {
    return "\"" + JsonEscape(app.service(s).name()) + "\"";
  };
  const auto api_list = [&api_name](const std::vector<sim::ApiId>& apis) {
    std::string s = "[";
    for (std::size_t i = 0; i < apis.size(); ++i) {
      if (i > 0) s += ",";
      s += api_name(apis[i]);
    }
    return s + "]";
  };
  const auto svc_list = [&svc_name](const std::vector<sim::ServiceId>& svcs) {
    std::string s = "[";
    for (std::size_t i = 0; i < svcs.size(); ++i) {
      if (i > 0) s += ",";
      s += svc_name(svcs[i]);
    }
    return s + "]";
  };
  const auto state_fields = [](const core::ControlState& state) {
    return "\"goodput\":" + Num(state.goodput) + ",\"rate_limit\":" +
           Num(state.rate_limit) + ",\"latency_s\":" + Num(state.latency_s) +
           ",\"slo_s\":" + Num(state.slo_s);
  };

  // Merge the SLO event stream into the tick stream in time order. An
  // event at t fires at the window close, before the control tick of the
  // same second — the order the simulation executes them in.
  std::size_t next_event = 0;
  std::size_t next_alert = 0;
  const auto flush_events = [&out, &next_event, &next_alert, slo_events,
                             alerts](double upto_s) {
    while (true) {
      const bool have_event = slo_events != nullptr &&
                              next_event < slo_events->size() &&
                              (*slo_events)[next_event].t_s <= upto_s;
      const bool have_alert = alerts != nullptr &&
                              next_alert < alerts->size() &&
                              (*alerts)[next_alert].t_s <= upto_s;
      if (!have_event && !have_alert) break;
      // Time order; at a tie the monitor event wins (the window closes
      // before the rules evaluate on it).
      if (have_event &&
          (!have_alert || (*slo_events)[next_event].t_s <=
                              (*alerts)[next_alert].t_s)) {
        out << SloEventLine((*slo_events)[next_event]) << "\n";
        ++next_event;
      } else {
        out << AlertLine((*alerts)[next_alert]) << "\n";
        ++next_alert;
      }
    }
  };

  for (const TickRecord& tick : log.ticks()) {
    flush_events(tick.t_s);
    out << "{\"t_s\":" << Num(tick.t_s) << ",\"overloaded\":"
        << svc_list(tick.overloaded) << ",\"clusters\":[";
    for (std::size_t i = 0; i < tick.clusters.size(); ++i) {
      if (i > 0) out << ",";
      out << "{\"apis\":" << api_list(tick.clusters[i].apis) << ",\"overloaded\":"
          << svc_list(tick.clusters[i].overloaded) << "}";
    }
    out << "],\"decisions\":[";
    for (std::size_t i = 0; i < tick.decisions.size(); ++i) {
      const TargetDecision& d = tick.decisions[i];
      if (i > 0) out << ",";
      out << "{\"target\":" << svc_name(d.target) << ",\"apis\":"
          << api_list(d.apis) << "," << state_fields(d.state)
          << ",\"action\":" << Num(d.action) << "}";
    }
    out << "],\"recovery\":[";
    for (std::size_t i = 0; i < tick.recovery.size(); ++i) {
      const RecoveryDecision& d = tick.recovery[i];
      if (i > 0) out << ",";
      out << "{\"api\":" << api_name(d.api) << "," << state_fields(d.state)
          << ",\"action\":" << Num(d.action) << "}";
    }
    out << "],\"limits\":[";
    for (std::size_t i = 0; i < tick.limits.size(); ++i) {
      const LimitDelta& delta = tick.limits[i];
      if (i > 0) out << ",";
      out << "{\"api\":" << api_name(delta.api) << ",\"before\":"
          << Num(delta.before) << ",\"after\":" << Num(delta.after) << "}";
    }
    out << "]}\n";
  }
  if (slo_events != nullptr) {
    // Events after the last tick (or all of them, when no controller ran).
    while (next_event < slo_events->size()) {
      out << SloEventLine((*slo_events)[next_event]) << "\n";
      ++next_event;
    }
  }
  if (alerts != nullptr) {
    while (next_alert < alerts->size()) {
      out << AlertLine((*alerts)[next_alert]) << "\n";
      ++next_alert;
    }
  }
  return static_cast<bool>(out);
}

void AppendTracerCounters(SnapshotBuilder& builder, const RequestTracer& tracer,
                          const Labels& extra) {
  const TracerCounters& c = tracer.counters();
  builder.AddCounter("topfull_trace_sampled_total", "Request traces recorded.",
                     extra, c.sampled);
  builder.AddCounter("topfull_trace_dropped_total",
                     "Sampled traces discarded by the memory cap.", extra,
                     c.dropped);
  std::uint64_t spans = 0;
  for (const RequestTrace& trace : tracer.finished()) spans += trace.spans.size();
  builder.AddCounter("topfull_trace_spans_total",
                     "Service hop spans across finished traces.", extra, spans);
}

bool WritePrometheusText(const sim::Application& app, const RequestTracer* tracer,
                         const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  // The tracer lives outside the application (it is attached per run, the
  // registry belongs to the app), so its counters join the snapshot here.
  SnapshotBuilder builder;
  builder.AddRegistry(app.metrics_registry());
  if (tracer != nullptr) AppendTracerCounters(builder, *tracer);
  out << PromTextFromSnapshot(*builder.Finish());
  return static_cast<bool>(out);
}

}  // namespace topfull::obs

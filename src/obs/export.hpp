// Telemetry exporters.
//
// - WritePerfettoTrace: Chrome trace-event JSON (loadable in Perfetto /
//   chrome://tracing). One pid per service (pid 0 is the client/gateway),
//   one tid per API; timestamps are SimTime microseconds. Hop spans carry
//   queue-wait / service-time args; entry rejections are instant events;
//   injected faults and SLO-monitor events get dedicated process rows.
// - WriteDecisionLogJsonl: one JSON object per control tick, with SLO
//   monitor events merged in at their window-close timestamps.
// - WritePrometheusText: text-exposition dump of the application's live
//   metrics registry (every counter/gauge/histogram family the run
//   touched), plus the tracer counters when a tracer is attached. Label
//   values and help text are escaped per the Prometheus text-exposition
//   spec and every family carries a # TYPE line.
//
// All writers are deterministic: output depends only on simulation state,
// never on wall-clock time or thread scheduling.
#pragma once

#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "obs/decision_log.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/rules.hpp"
#include "obs/slo_monitor.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"
#include "sim/app.hpp"

namespace topfull::obs {

/// Writes the tracer's finished traces as Chrome trace-event JSON. `app`
/// supplies service/API names. When `faults` is non-null, injected fault
/// records appear as instant events on a dedicated "faults" process row;
/// when `slo_events` is non-null, SLO monitor events appear on an "slo"
/// row. Returns false on I/O failure.
bool WritePerfettoTrace(const RequestTracer& tracer, const sim::Application& app,
                        const std::string& path,
                        const std::vector<fault::FaultRecord>* faults = nullptr,
                        const std::vector<SloEvent>* slo_events = nullptr);

/// Writes the decision log as JSONL (one tick per line). When `slo_events`
/// is non-null the monitor's events are merged into the stream in time
/// order (an event at t precedes the control tick of the same second, the
/// order they occur in the simulation). When `alerts` is non-null the rule
/// engine's alert state transitions are merged the same way, after any SLO
/// event of the same timestamp (windows close before rules evaluate).
/// Returns false on I/O failure.
bool WriteDecisionLogJsonl(const DecisionLog& log, const sim::Application& app,
                           const std::string& path,
                           const std::vector<SloEvent>* slo_events = nullptr,
                           const std::vector<AlertTransition>* alerts = nullptr);

/// Writes the application's metrics registry in Prometheus text exposition
/// format; `tracer` (optional) appends the tracer counter families. Built
/// on the same SnapshotBuilder + PromTextFromSnapshot path the live
/// `/metrics` endpoint uses, so the two renderings are byte-identical.
/// Returns false on I/O failure.
bool WritePrometheusText(const sim::Application& app, const RequestTracer* tracer,
                         const std::string& path);

/// Adds the tracer's counter families (sampled/dropped traces, finished
/// hop spans) to a snapshot under construction; `extra` labels are appended
/// to each cell (the sharded capture path passes {{"shard", "k"}}).
void AppendTracerCounters(SnapshotBuilder& builder, const RequestTracer& tracer,
                          const Labels& extra = {});

}  // namespace topfull::obs

// Telemetry exporters.
//
// - WritePerfettoTrace: Chrome trace-event JSON (loadable in Perfetto /
//   chrome://tracing). One pid per service (pid 0 is the client/gateway),
//   one tid per API; timestamps are SimTime microseconds. Hop spans carry
//   queue-wait / service-time args; entry rejections are instant events.
// - WriteDecisionLogJsonl: one JSON object per control tick.
// - WritePrometheusText: text-exposition dump of end-of-run counters and
//   gauges (per-API totals, per-service pods/capacity, controller and
//   tracer counters).
//
// All writers are deterministic: output depends only on simulation state,
// never on wall-clock time or thread scheduling.
#pragma once

#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "obs/decision_log.hpp"
#include "obs/trace.hpp"
#include "sim/app.hpp"

namespace topfull::core {
class TopFullController;
}

namespace topfull::obs {

/// Writes the tracer's finished traces as Chrome trace-event JSON. `app`
/// supplies service/API names. When `faults` is non-null, injected fault
/// records appear as instant events on a dedicated "faults" process row.
/// Returns false on I/O failure.
bool WritePerfettoTrace(const RequestTracer& tracer, const sim::Application& app,
                        const std::string& path,
                        const std::vector<fault::FaultRecord>* faults = nullptr);

/// Writes the decision log as JSONL (one tick per line). Returns false on
/// I/O failure.
bool WriteDecisionLogJsonl(const DecisionLog& log, const sim::Application& app,
                           const std::string& path);

/// Writes end-of-run counters/gauges in Prometheus text exposition format.
/// `controller`, `tracer` and `faults` are optional (their families are
/// omitted when null). Returns false on I/O failure.
bool WritePrometheusText(const sim::Application& app,
                         const core::TopFullController* controller,
                         const RequestTracer* tracer, const std::string& path,
                         const std::vector<fault::FaultRecord>* faults = nullptr);

/// JSON string escaping (exposed for tests).
std::string JsonEscape(const std::string& s);

}  // namespace topfull::obs

#include "obs/fairness.hpp"

#include <algorithm>

namespace topfull::obs {

double JainIndex(const std::vector<double>& values) {
  if (values.size() <= 1) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq <= 0.0) return 1.0;  // all-zero: equally unserved is fair
  return (sum * sum) / (static_cast<double>(values.size()) * sum_sq);
}

FairnessStats SuccessRateFairness(const std::vector<double>& rates) {
  FairnessStats stats;
  stats.users = static_cast<int>(rates.size());
  if (rates.empty()) return stats;
  stats.jain = JainIndex(rates);
  stats.min = rates.front();
  stats.max = rates.front();
  double sum = 0.0;
  for (const double r : rates) {
    sum += r;
    stats.min = std::min(stats.min, r);
    stats.max = std::max(stats.max, r);
  }
  stats.mean = sum / static_cast<double>(rates.size());
  double m2 = 0.0;
  for (const double r : rates) m2 += (r - stats.mean) * (r - stats.mean);
  stats.variance = m2 / static_cast<double>(rates.size());
  return stats;
}

AmplificationStats ComputeAmplification(std::uint64_t hop_attempts,
                                        std::uint64_t server_retries,
                                        std::uint64_t client_attempts,
                                        std::uint64_t client_intents) {
  AmplificationStats amp;
  amp.hop_attempts = hop_attempts;
  amp.server_retries = server_retries;
  amp.client_attempts = client_attempts;
  amp.client_intents = client_intents;
  const std::uint64_t first_hops =
      hop_attempts >= server_retries ? hop_attempts - server_retries : 0;
  if (first_hops > 0) {
    amp.hop_amplification =
        static_cast<double>(hop_attempts) / static_cast<double>(first_hops);
  }
  if (client_intents > 0) {
    amp.client_amplification = static_cast<double>(client_attempts) /
                               static_cast<double>(client_intents);
  }
  amp.total = amp.hop_amplification * amp.client_amplification;
  return amp;
}

}  // namespace topfull::obs

// Multi-tenant fairness and retry-amplification statistics.
//
// WeChat's DAGOR experience says the production metric is per-user success
// under business x user priorities, not aggregate per-API goodput: a
// controller can post excellent goodput while starving a stable subset of
// users. These helpers turn per-user outcome counters into the two numbers
// the scenario invariants check — Jain's fairness index over per-user
// success rates, and the compound client x per-hop retry amplification
// factor. Everything is a pure function of the inputs (no registry, no
// simulation access), so the scenario engine can evaluate them identically
// on any thread.
#pragma once

#include <cstdint>
#include <vector>

namespace topfull::obs {

/// Jain's fairness index (sum x)^2 / (n * sum x^2) of non-negative
/// allocations; 1.0 = perfectly fair, 1/n = one user gets everything.
/// Degenerate inputs — empty, single element, or all-zero (everyone
/// equally unserved) — are defined as 1.0.
double JainIndex(const std::vector<double>& values);

/// Summary of a per-user success-rate distribution.
struct FairnessStats {
  int users = 0;           ///< users contributing a rate
  double jain = 1.0;       ///< Jain's index of the rates
  double mean = 0.0;
  double variance = 0.0;   ///< population variance
  double min = 0.0;
  double max = 0.0;
};

/// Stats over per-user success rates (each in [0, 1]). Users with no
/// settled transactions must be excluded by the caller — a user who never
/// issued a request carries no fairness signal.
FairnessStats SuccessRateFairness(const std::vector<double>& rates);

/// Compound retry amplification: how many RPCs one intended unit of work
/// fans out into once client-level and per-hop retries stack.
struct AmplificationStats {
  std::uint64_t hop_attempts = 0;     ///< server-side hop dispatches (incl. retries)
  std::uint64_t server_retries = 0;   ///< per-hop retry dispatches
  std::uint64_t client_attempts = 0;  ///< client submissions (incl. client retries)
  std::uint64_t client_intents = 0;   ///< client transactions started
  double hop_amplification = 1.0;     ///< hop_attempts / first-attempt hops
  double client_amplification = 1.0;  ///< client_attempts / client_intents
  double total = 1.0;                 ///< product of the two factors
};

/// Builds the stats from raw counters (sim::Application::HopAttempts() /
/// Retries() and the closed-loop pools' outcome totals). Zero denominators
/// yield factor 1.0.
AmplificationStats ComputeAmplification(std::uint64_t hop_attempts,
                                        std::uint64_t server_retries,
                                        std::uint64_t client_attempts,
                                        std::uint64_t client_intents);

}  // namespace topfull::obs

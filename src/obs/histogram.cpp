#include "obs/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace topfull::obs {

Histogram::Histogram(HistogramConfig config) : config_(config) {
  assert(config_.min_value > 0.0 && config_.max_value > config_.min_value);
  assert(config_.sub_buckets >= 1);
  // Number of power-of-two octaves covering [min_value, max_value).
  int exp = 0;
  std::frexp(config_.max_value / config_.min_value, &exp);
  octaves_ = std::max(exp, 1);
  buckets_.assign(static_cast<std::size_t>(octaves_) * config_.sub_buckets + 2, 0);
}

int Histogram::BucketIndex(double value) const {
  if (!(value > config_.min_value)) return 0;  // underflow (also NaN)
  if (value >= config_.max_value) return NumBuckets() - 1;
  // value / min_value = frac * 2^exp with frac in [0.5, 1), so the value
  // sits in octave exp-1 at linear position (frac - 0.5) * 2 within it.
  int exp = 0;
  const double frac = std::frexp(value / config_.min_value, &exp);
  const int octave = std::min(exp - 1, octaves_ - 1);
  int sub = static_cast<int>((frac - 0.5) * 2.0 * config_.sub_buckets);
  sub = std::clamp(sub, 0, config_.sub_buckets - 1);
  return 1 + octave * config_.sub_buckets + sub;
}

void Histogram::RecordN(double value, std::uint64_t n) {
  if (n == 0) return;
  buckets_[static_cast<std::size_t>(BucketIndex(value))] += n;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += n;
  sum_ += value * static_cast<double>(n);
}

void Histogram::Merge(const Histogram& other) {
  assert(config_ == other.config_ && "merging histograms with different layouts");
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::UpperBound(int i) const {
  if (i <= 0) return config_.min_value;
  if (i >= NumBuckets() - 1) return std::numeric_limits<double>::infinity();
  const int octave = (i - 1) / config_.sub_buckets;
  const int sub = (i - 1) % config_.sub_buckets;
  // Bucket (octave, sub) covers value/min in
  // [2^octave * (1 + sub/S), 2^octave * (1 + (sub+1)/S)).
  return config_.min_value * std::ldexp(1.0, octave) *
         (1.0 + static_cast<double>(sub + 1) / config_.sub_buckets);
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  const std::uint64_t target = std::max<std::uint64_t>(rank, 1);
  std::uint64_t seen = 0;
  for (int i = 0; i < NumBuckets(); ++i) {
    seen += buckets_[static_cast<std::size_t>(i)];
    if (seen >= target) return std::clamp(UpperBound(i), min_, max_);
  }
  return max_;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
}

}  // namespace topfull::obs

// Log-bucketed streaming histogram (the registry's distribution primitive).
//
// Fixed memory, allocated once at construction: values land in log-linear
// buckets — each power-of-two octave between `min_value` and `max_value` is
// split into `sub_buckets` equal-width slices, bounding the relative
// quantile error at 1/sub_buckets. Everything below the range goes to a
// dedicated underflow bucket, everything at/above to an overflow bucket, so
// Record never loses a sample. Recording is a frexp + two integer ops; no
// allocation, no floating-point accumulation error beyond the exact
// `sum`. Histograms with the same config are mergeable by bucket-wise
// addition, and every derived statistic is a pure function of the bucket
// counts + exact min/max/sum — deterministic across runs and thread counts.
#pragma once

#include <cstdint>
#include <vector>

namespace topfull::obs {

struct HistogramConfig {
  /// Lower edge of the bucketed range; values <= min_value underflow.
  double min_value = 1e-6;
  /// Upper edge; values >= max_value overflow.
  double max_value = 1e9;
  /// Linear slices per power-of-two octave (relative error <= 1/sub_buckets).
  int sub_buckets = 16;

  bool operator==(const HistogramConfig&) const = default;
};

class Histogram {
 public:
  explicit Histogram(HistogramConfig config = {});

  void Record(double value) { RecordN(value, 1); }
  void RecordN(double value, std::uint64_t n);

  /// Adds `other`'s samples; requires an identical bucket layout.
  void Merge(const Histogram& other);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double Mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }

  /// Quantile estimate in [0, 100]: the upper bound of the bucket holding
  /// the rank-th sample, clamped to the exact observed [min, max]. Returns
  /// 0 when empty.
  double Percentile(double p) const;

  // --- Bucket access (exporters) --------------------------------------------
  const HistogramConfig& config() const { return config_; }
  int NumBuckets() const { return static_cast<int>(buckets_.size()); }
  std::uint64_t BucketCount(int i) const { return buckets_[i]; }
  /// Inclusive upper bound of bucket `i` (+infinity for the overflow bucket).
  double UpperBound(int i) const;

  void Reset();

 private:
  int BucketIndex(double value) const;

  HistogramConfig config_;
  int octaves_ = 0;
  std::vector<std::uint64_t> buckets_;  // [underflow, octave slices..., overflow]
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace topfull::obs

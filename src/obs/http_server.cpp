#include "obs/http_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

namespace topfull::obs {

namespace {

constexpr std::size_t kMaxRequestBytes = 16 * 1024;

bool IsTokenChar(char c) {
  // RFC 7230 tchar, restricted to what methods actually use.
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_';
}

/// Splits one header line "Name: value" (value whitespace-trimmed).
bool ParseHeaderLine(std::string_view line,
                     std::pair<std::string, std::string>* out) {
  const std::size_t colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) return false;
  std::string_view name = line.substr(0, colon);
  for (const char c : name) {
    if (!IsTokenChar(c)) return false;
  }
  std::string_view value = line.substr(colon + 1);
  while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
    value.remove_prefix(1);
  }
  while (!value.empty() && (value.back() == ' ' || value.back() == '\t')) {
    value.remove_suffix(1);
  }
  out->first = std::string(name);
  out->second = std::string(value);
  return true;
}

}  // namespace

HttpParse ParseHttpRequest(std::string_view input, HttpRequest* out,
                           std::size_t* consumed) {
  // Find the end of the head: CRLFCRLF (or LFLF from sloppy clients).
  std::size_t head_end = std::string_view::npos;
  std::size_t body_start = 0;
  const std::size_t crlf = input.find("\r\n\r\n");
  const std::size_t lflf = input.find("\n\n");
  if (crlf != std::string_view::npos &&
      (lflf == std::string_view::npos || crlf < lflf)) {
    head_end = crlf;
    body_start = crlf + 4;
  } else if (lflf != std::string_view::npos) {
    head_end = lflf;
    body_start = lflf + 2;
  }
  if (head_end == std::string_view::npos) {
    // A head this large with no terminator is not going to get better.
    return input.size() > kMaxRequestBytes ? HttpParse::kBad
                                           : HttpParse::kIncomplete;
  }

  const std::string_view head = input.substr(0, head_end);
  const std::size_t line_end = head.find('\n');
  std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  if (!request_line.empty() && request_line.back() == '\r') {
    request_line.remove_suffix(1);
  }

  // METHOD SP TARGET SP HTTP/x.y
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      sp1 == 0 || sp2 == sp1 + 1 ||
      request_line.find(' ', sp2 + 1) != std::string_view::npos) {
    return HttpParse::kBad;
  }
  const std::string_view method = request_line.substr(0, sp1);
  const std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = request_line.substr(sp2 + 1);
  for (const char c : method) {
    if (!std::isupper(static_cast<unsigned char>(c))) return HttpParse::kBad;
  }
  if (target.front() != '/') return HttpParse::kBad;
  if (version.rfind("HTTP/", 0) != 0) return HttpParse::kBad;

  HttpRequest request;
  request.method = std::string(method);
  request.target = std::string(target);
  request.version = std::string(version);

  // Header lines, if any.
  std::size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 1;
  while (pos < head.size()) {
    std::size_t next = head.find('\n', pos);
    if (next == std::string_view::npos) next = head.size();
    std::string_view line = head.substr(pos, next - pos);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    pos = next + 1;
    if (line.empty()) continue;
    std::pair<std::string, std::string> header;
    if (!ParseHeaderLine(line, &header)) return HttpParse::kBad;
    request.headers.push_back(std::move(header));
  }

  if (out != nullptr) *out = std::move(request);
  if (consumed != nullptr) *consumed = body_start;
  return HttpParse::kOk;
}

const char* HttpStatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
  }
  return "Unknown";
}

std::string UrlDecode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  const auto hex = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '+') {
      out += ' ';
      continue;
    }
    if (text[i] == '%' && i + 2 < text.size()) {
      const int hi = hex(text[i + 1]);
      const int lo = hex(text[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
        continue;
      }
    }
    out += text[i];
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> ParseQueryParams(
    std::string_view target) {
  std::vector<std::pair<std::string, std::string>> out;
  const std::size_t q = target.find('?');
  if (q == std::string_view::npos) return out;
  std::string_view rest = target.substr(q + 1);
  while (!rest.empty()) {
    const std::size_t amp = rest.find('&');
    std::string_view pair =
        amp == std::string_view::npos ? rest : rest.substr(0, amp);
    rest = amp == std::string_view::npos ? std::string_view{}
                                         : rest.substr(amp + 1);
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      out.emplace_back(UrlDecode(pair), "");
    } else {
      out.emplace_back(UrlDecode(pair.substr(0, eq)),
                       UrlDecode(pair.substr(eq + 1)));
    }
  }
  return out;
}

std::string SerializeHttpResponse(const HttpResponse& response) {
  char status_line[64];
  std::snprintf(status_line, sizeof(status_line), "HTTP/1.1 %d %s\r\n",
                response.status, HttpStatusText(response.status));
  std::string out = status_line;
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  // Every endpoint serves live run state; a cached response is always wrong.
  out += "Cache-Control: no-store\r\n";
  for (const auto& [name, value] : response.headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

HttpServer::HttpServer(Handler handler) : handler_(std::move(handler)) {}

HttpServer::~HttpServer() { Stop(); }

bool HttpServer::Start(int port, std::string* error) {
  const auto fail = [this, error](const char* what) {
    if (error != nullptr) {
      *error = std::string(what) + ": " + std::strerror(errno);
    }
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };

  if (running()) {
    if (error != nullptr) *error = "server already running";
    return false;
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, 16) < 0) return fail("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this]() { AcceptLoop(); });
  return true;
}

void HttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  // Unblock accept(): shutdown makes the blocked call return on Linux.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void HttpServer::AcceptLoop() {
  while (running()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket shut down (Stop) or unrecoverable
    }
    ServeConnection(fd);
    ::close(fd);
  }
}

void HttpServer::ServeConnection(int fd) {
  // Scrape clients are local and short-lived; a receive timeout keeps a
  // stalled client from wedging the single-threaded accept loop.
  timeval timeout{};
  timeout.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  std::string buffer;
  HttpRequest request;
  HttpParse state = HttpParse::kIncomplete;
  char chunk[4096];
  while (state == HttpParse::kIncomplete && buffer.size() <= kMaxRequestBytes) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // client went away (or timed out) mid-request
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    state = ParseHttpRequest(buffer, &request);
  }

  HttpResponse response;
  if (state != HttpParse::kOk) {
    response.status = 400;
    response.body = "bad request\n";
  } else if (request.method != "GET") {
    response.status = 405;
    response.body = "method not allowed\n";
    response.headers.emplace_back("Allow", "GET");
  } else {
    response = handler_(request);
  }

  const std::string wire = SerializeHttpResponse(response);
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    sent += static_cast<std::size_t>(n);
  }
  served_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace topfull::obs

// Dependency-free embedded HTTP/1.1 server for the observability plane.
//
// One blocking accept loop on its own thread, one connection served at a
// time, `Connection: close` on every response — deliberately minimal: the
// only clients are scrape loops (curl, Prometheus) hitting read-only
// endpoints a few times per second. The handler runs on the server thread
// and must therefore only touch thread-safe state (in practice: a
// SnapshotBoard read). Binds 127.0.0.1 only; port 0 requests an ephemeral
// port (the bound port is readable via port(), used by tests).
//
// The request parser is exposed separately (ParseHttpRequest) so partial
// reads and malformed inputs are unit-testable without sockets.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace topfull::obs {

struct HttpRequest {
  std::string method;   // e.g. "GET"
  std::string target;   // e.g. "/metrics" (query string retained verbatim)
  std::string version;  // e.g. "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
};

enum class HttpParse {
  kOk,          // a complete request head was parsed
  kIncomplete,  // need more bytes (no terminating blank line yet)
  kBad,         // malformed; respond 400 and close
};

/// Parses an HTTP/1.x request head (request line + headers, terminated by
/// CRLFCRLF; bare LF line endings are tolerated). On kOk fills `out` and,
/// when non-null, `consumed` with the head's byte length. Request bodies
/// are not supported (every endpoint is a GET).
HttpParse ParseHttpRequest(std::string_view input, HttpRequest* out,
                           std::size_t* consumed = nullptr);

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  /// Extra headers rendered verbatim (e.g. {"Allow", "GET"}).
  std::vector<std::pair<std::string, std::string>> headers;
};

/// Standard reason phrase for the handful of statuses the plane uses.
const char* HttpStatusText(int status);

/// Percent-decodes one URL component; '+' decodes to a space. Malformed
/// %-escapes are passed through verbatim.
std::string UrlDecode(std::string_view text);

/// Splits the query string of a request target ("/query?expr=up&time=3")
/// into decoded key/value pairs, in order. No query string yields {}.
std::vector<std::pair<std::string, std::string>> ParseQueryParams(
    std::string_view target);

/// Serializes status line + headers + body with Content-Length and
/// Connection: close.
std::string SerializeHttpResponse(const HttpResponse& response);

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(Handler handler);
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept thread.
  /// Returns false (with `error` describing errno) on failure.
  bool Start(int port, std::string* error = nullptr);

  /// Stops the accept loop and joins the thread. Idempotent; also called
  /// by the destructor.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (valid after a successful Start).
  int port() const { return port_; }
  std::uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  Handler handler_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> served_{0};
  std::thread thread_;
};

}  // namespace topfull::obs

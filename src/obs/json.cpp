#include "obs/json.hpp"

#include <cstdio>
#include <cstdlib>

namespace topfull::obs {

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) return false;
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing characters after document");
    return true;
  }

 private:
  bool Fail(const char* message) {
    if (error_ != nullptr) {
      char buf[160];
      std::snprintf(buf, sizeof(buf), "%s (at byte %zu)", message, pos_);
      *error_ = buf;
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Literal(const char* word, std::size_t len) {
    if (text_.compare(pos_, len, word) != 0) return Fail("invalid literal");
    pos_ += len;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        out->type = JsonValue::Type::kNull;
        return Literal("null", 4);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->boolean = true;
        return Literal("true", 4);
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->boolean = false;
        return Literal("false", 5);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string);
      case '[': return ParseArray(out);
      case '{': return ParseObject(out);
      default: return ParseNumber(out);
    }
  }

  bool ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' ||
          c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    out->number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      return Fail("malformed number");
    }
    out->type = JsonValue::Type::kNumber;
    return true;
  }

  bool ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else return Fail("invalid \\u escape");
    }
    pos_ += 4;
    *out = v;
    return true;
  }

  static void AppendUtf8(unsigned cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned cp = 0;
          if (!ParseHex4(&cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF && pos_ + 1 < text_.size() &&
              text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
            pos_ += 2;
            unsigned low = 0;
            if (!ParseHex4(&low)) return false;
            if (low >= 0xDC00 && low <= 0xDFFF) {
              cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
            }
          }
          AppendUtf8(cp, out);
          break;
        }
        default: return Fail("invalid escape");
      }
    }
  }

  bool ParseArray(JsonValue* out) {
    ++pos_;  // '['
    out->type = JsonValue::Type::kArray;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue element;
      SkipWs();
      if (!ParseValue(&element)) return false;
      out->array.push_back(std::move(element));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      const char c = text_[pos_++];
      if (c == ']') return true;
      if (c != ',') return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseObject(JsonValue* out) {
    ++pos_;  // '{'
    out->type = JsonValue::Type::kObject;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':' after object key");
      }
      ++pos_;
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      const char c = text_[pos_++];
      if (c == '}') return true;
      if (c != ',') return Fail("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool ParseJson(const std::string& text, JsonValue* out, std::string* error) {
  Parser parser(text, error);
  return parser.Parse(out);
}

void FlattenNumbers(const JsonValue& value, const std::string& prefix,
                    std::map<std::string, double>* out) {
  switch (value.type) {
    case JsonValue::Type::kNumber:
      (*out)[prefix] = value.number;
      break;
    case JsonValue::Type::kBool:
      (*out)[prefix] = value.boolean ? 1.0 : 0.0;
      break;
    case JsonValue::Type::kArray:
      for (std::size_t i = 0; i < value.array.size(); ++i) {
        char idx[24];
        std::snprintf(idx, sizeof(idx), "%zu", i);
        FlattenNumbers(value.array[i],
                       prefix.empty() ? idx : prefix + "." + idx, out);
      }
      break;
    case JsonValue::Type::kObject:
      for (const auto& [k, v] : value.object) {
        FlattenNumbers(v, prefix.empty() ? k : prefix + "." + k, out);
      }
      break;
    case JsonValue::Type::kNull:
    case JsonValue::Type::kString:
      break;
  }
}

}  // namespace topfull::obs

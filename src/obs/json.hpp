// Minimal JSON document model + recursive-descent parser.
//
// Just enough JSON to read back the run summaries this repo writes (and
// any well-formed JSON document): null/bool/number/string/array/object,
// \uXXXX escapes decoded to UTF-8, numbers as double. Object members keep
// their source order so round-trip tooling stays deterministic. No
// external dependencies; errors carry a byte offset.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace topfull::obs {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  /// Members in source order (summaries never repeat keys).
  std::vector<std::pair<std::string, JsonValue>> object;

  bool IsNull() const { return type == Type::kNull; }
  bool IsNumber() const { return type == Type::kNumber; }
  bool IsObject() const { return type == Type::kObject; }
  bool IsArray() const { return type == Type::kArray; }
  bool IsString() const { return type == Type::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
};

/// Parses `text` into `out`. On failure returns false and describes the
/// problem (with a byte offset) in `error` when non-null.
bool ParseJson(const std::string& text, JsonValue* out, std::string* error = nullptr);

/// Flattens every numeric leaf into dotted paths ("total.goodput_rps",
/// "apis.compose.latency_ms.p95", "events.list.3.t_s"). Array elements use
/// their index as the path segment. Booleans count as 0/1; strings and
/// nulls are skipped.
void FlattenNumbers(const JsonValue& value, const std::string& prefix,
                    std::map<std::string, double>* out);

}  // namespace topfull::obs

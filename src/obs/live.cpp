#include "obs/live.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "common/sim_time.hpp"
#include "des/sharded_simulation.hpp"
#include "obs/export.hpp"
#include "obs/profile.hpp"
#include "obs/tsdb_plane.hpp"
#include "sim/app.hpp"
#include "sim/sharded_app.hpp"

namespace topfull::obs {

namespace {

/// Start/onset events pair with end/clear; oscillation is instantaneous.
/// Returns +1 / -1 / 0 and the subject's class prefix.
int SloEventDelta(SloEventType type, const char** prefix) {
  switch (type) {
    case SloEventType::kSloBurnStart: *prefix = "slo_burn"; return +1;
    case SloEventType::kSloBurnEnd: *prefix = "slo_burn"; return -1;
    case SloEventType::kOverloadOnset: *prefix = "overload"; return +1;
    case SloEventType::kOverloadClear: *prefix = "overload"; return -1;
    case SloEventType::kStarvationStart: *prefix = "starvation"; return +1;
    case SloEventType::kStarvationEnd: *prefix = "starvation"; return -1;
    case SloEventType::kOscillation: *prefix = "oscillation"; return 0;
  }
  *prefix = "unknown";
  return 0;
}

}  // namespace

std::uint64_t CountActiveSloEvents(const std::vector<SloEvent>& events,
                                   std::vector<std::string>* subjects) {
  std::map<std::string, int> open;  // "class:subject" -> net starts
  for (const SloEvent& e : events) {
    const char* prefix = nullptr;
    const int delta = SloEventDelta(e.type, &prefix);
    if (delta == 0) continue;
    int& n = open[std::string(prefix) + ":" + e.subject];
    n = std::max(0, n + delta);
  }
  std::uint64_t active = 0;
  for (const auto& [key, n] : open) {
    if (n <= 0) continue;
    active += static_cast<std::uint64_t>(n);
    if (subjects != nullptr) subjects->push_back(key);
  }
  return active;
}

LivePlane::LivePlane(LiveOptions options) : options_(options) {}

LivePlane::~LivePlane() { StopServer(); }

bool LivePlane::StartServer(std::string* error) {
  if (options_.port < 0) return true;  // publisher-only mode
  if (server_ != nullptr) {
    if (error != nullptr) *error = "server already started";
    return false;
  }
  server_ = std::make_unique<HttpServer>(
      [this](const HttpRequest& request) { return Route(request); });
  if (!server_->Start(options_.port, error)) {
    server_.reset();
    return false;
  }
  return true;
}

void LivePlane::StopServer() {
  if (server_ != nullptr) server_->Stop();
}

bool LivePlane::MaybePublish(const LiveSources& sources) {
  const auto now = std::chrono::steady_clock::now();
  if (version_ > 0) {
    const double elapsed =
        std::chrono::duration<double>(now - last_publish_).count();
    if (elapsed < options_.publish_interval_s) return false;
  }
  last_publish_ = now;
  Publish(sources, /*finished=*/false);
  return true;
}

void LivePlane::Publish(const LiveSources& sources, bool finished) {
  board_.Publish(Capture(sources, finished));
}

std::shared_ptr<const MetricsSnapshot> LivePlane::Capture(
    const LiveSources& sources, bool finished) {
  SnapshotBuilder builder;
  const bool multi = sources.shards.size() > 1;

  RunState run;
  run.label = sources.label;
  run.duration_s = sources.duration_s;
  run.finished = finished;
  run.shards.reserve(sources.shards.size());

  for (std::size_t i = 0; i < sources.shards.size(); ++i) {
    const LiveSources::Shard& shard = sources.shards[i];
    Labels extra;
    // A single-shard capture adds no label, so the end-of-run snapshot is
    // byte-identical to the offline .metrics.prom dump.
    if (multi) extra.emplace_back("shard", std::to_string(i));
    if (shard.app != nullptr) {
      builder.AddRegistry(shard.app->metrics_registry(), extra);
    }
    if (shard.tracer != nullptr) {
      AppendTracerCounters(builder, *shard.tracer, extra);
    }

    ShardRunState state;
    if (shard.app != nullptr) {
      const des::Simulation& sim = shard.app->sim();
      state.events_processed = sim.EventsProcessed();
      state.events_scheduled = sim.EventsScheduled();
      state.events_cancelled = sim.EventsCancelled();
      state.pending_events = sim.PendingEvents();
      run.sim_time_s = std::max(run.sim_time_s, ToSeconds(sim.Now()));
    }
    run.shards.push_back(state);

    if (shard.monitor != nullptr) {
      run.slo_events += shard.monitor->events().size();
      run.active_slo_events += CountActiveSloEvents(
          shard.monitor->events(), &run.active_slo_subjects);
    }
  }
  std::sort(run.active_slo_subjects.begin(), run.active_slo_subjects.end());

  if (sources.sharded != nullptr && multi) {
    const des::ShardedSimulation& engine = sources.sharded->engine();
    run.rounds = engine.Rounds();
    run.sim_time_s = std::max(run.sim_time_s, ToSeconds(engine.Horizon()));
    const std::vector<des::ShardedSimulation::ShardStats>& stats =
        engine.Stats();
    for (std::size_t i = 0;
         i < std::min(stats.size(), run.shards.size()); ++i) {
      run.shards[i].messages_sent = stats[i].messages_sent;
      run.shards[i].messages_delivered = stats[i].messages_delivered;
      run.shards[i].mailbox_depth_hwm = stats[i].mailbox_depth_hwm;
      run.shards[i].busy_s = stats[i].busy_s;
      run.shards[i].blocked_s = stats[i].blocked_s;
    }
    // Wall-clock scheduler metrics: live-only, never in offline dumps.
    builder.AddRegistry(sources.sharded->scheduler_registry());
  }

  // Profiler percentiles as live-only gauges (wall-clock, so they are
  // likewise excluded from the deterministic offline exports).
  Profiler& profiler = Profiler::Global();
  if (profiler.enabled()) {
    for (const auto& [phase, stats] : profiler.Snapshot()) {
      const Labels labels = {{"phase", phase}};
      builder.AddGauge("topfull_profile_count",
                       "Times the profiled phase ran.", labels,
                       static_cast<double>(stats.count));
      builder.AddGauge("topfull_profile_total_seconds",
                       "Cumulative wall time in the profiled phase.", labels,
                       stats.total_s);
      builder.AddGauge("topfull_profile_p50_ms",
                       "Median wall time per run of the profiled phase.",
                       labels, 1e3 * stats.p50_s);
      builder.AddGauge("topfull_profile_p99_ms",
                       "99th-percentile wall time per run of the profiled phase.",
                       labels, 1e3 * stats.p99_s);
      builder.AddGauge("topfull_profile_max_ms",
                       "Longest single run of the profiled phase.", labels,
                       1e3 * stats.max_s);
    }
  }

  ++version_;
  return builder.Finish(std::move(run), version_);
}

HttpResponse LivePlane::Route(const HttpRequest& request) const {
  return RouteSnapshotRequest(request, board_, tsdb_);
}

HttpResponse RouteSnapshotRequest(const HttpRequest& request,
                                  const SnapshotBoard& board,
                                  const TsdbPlane* tsdb) {
  const std::string path = request.target.substr(0, request.target.find('?'));
  HttpResponse response;
  if (path == "/healthz") {
    response.body = "ok\n";
    return response;
  }
  if (path == "/metrics") {
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = PromTextFromSnapshot(*board.Read());
    return response;
  }
  if (path == "/runs") {
    response.content_type = "application/json";
    response.body = RunStateJson(*board.Read());
    return response;
  }
  if (path == "/snapshot.json") {
    response.content_type = "application/json";
    response.body = SnapshotJson(*board.Read());
    return response;
  }
  if (path == "/query" && tsdb != nullptr) {
    return HandleQueryRequest(request, tsdb->tsdb());
  }
  if (path == "/alerts" && tsdb != nullptr) {
    response.content_type = "application/json";
    response.body = tsdb->rules().AlertsJson();
    return response;
  }
  if (path == "/") {
    response.body =
        "topfull live observability\n"
        "  /metrics        Prometheus text exposition\n"
        "  /healthz        liveness probe\n"
        "  /runs           run-state JSON\n"
        "  /snapshot.json  flattened registry dump\n"
        "  /query          PromQL-subset query (?expr=...&time= or "
        "&start=&end=&step=)\n"
        "  /alerts         alert states + transitions\n";
    return response;
  }
  response.status = 404;
  response.body = "not found\n";
  return response;
}

}  // namespace topfull::obs

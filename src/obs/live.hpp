// Live telemetry plane: snapshot publisher + embedded observability server.
//
// LivePlane owns a SnapshotBoard and an HttpServer and turns the two into
// the run-facing API: the sim-owning thread calls MaybePublish() at
// quiescent points (between RunUntil chunks, or between sharded window
// rounds — never from inside an event), which captures an immutable
// MetricsSnapshot of every attached registry and swaps it onto the board;
// the server thread answers scrapes from board reads only. Publishing is
// strictly an observer: it never schedules events, never touches RNG
// state, and is rate-limited by wall clock, so a run with the server
// enabled is bit-identical to one without.
//
// Endpoints:
//   /metrics        Prometheus text exposition (same renderer as the
//                   offline .metrics.prom dump — byte-identical at end of
//                   run). Sharded runs label per-shard cells shard="k".
//   /healthz        liveness probe ("ok")
//   /runs           run-state JSON: label, sim time/progress, active SLO
//                   events, per-shard engine + scheduler stats
//   /snapshot.json  flattened registry dump (histograms as percentile
//                   summaries)
//   /query          PromQL-subset evaluation over the attached TSDB plane
//                   (404 when no plane is attached); instant via
//                   ?expr=&time=, range via ?expr=&start=&end=&step=
//   /alerts         alert rule states + transition log (404 without plane)
//   /               endpoint index
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/http_server.hpp"
#include "obs/slo_monitor.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"

namespace topfull::sim {
class Application;
class ShardedApp;
}  // namespace topfull::sim

namespace topfull::obs {

class TsdbPlane;  // tsdb_plane.hpp

struct LiveOptions {
  /// TCP port for the observability server; 0 asks the kernel for an
  /// ephemeral port (tests), negative disables the server (bench runs that
  /// only measure the publisher).
  int port = 0;
  /// Minimum wall-clock interval between published snapshots; MaybePublish
  /// calls inside the interval are no-ops.
  double publish_interval_s = 0.010;
};

/// What a publish captures. All pointers are non-owning and may be null;
/// `shards` has one entry per shard (a single entry for unsharded runs).
struct LiveSources {
  struct Shard {
    const sim::Application* app = nullptr;
    const RequestTracer* tracer = nullptr;
    const SloMonitor* monitor = nullptr;
  };
  std::vector<Shard> shards;
  std::string label;
  double duration_s = 0.0;
  /// Sharded runs only: engine stats + the scheduler registry.
  const sim::ShardedApp* sharded = nullptr;
};

/// Counts SLO start/onset events without a matching end/clear (exposed for
/// tests). `subjects` (optional) receives the still-open subjects as
/// "type:subject" strings, sorted.
std::uint64_t CountActiveSloEvents(const std::vector<SloEvent>& events,
                                   std::vector<std::string>* subjects = nullptr);

class LivePlane {
 public:
  explicit LivePlane(LiveOptions options = {});
  ~LivePlane();
  LivePlane(const LivePlane&) = delete;
  LivePlane& operator=(const LivePlane&) = delete;

  /// Starts the HTTP server (no-op when options.port < 0). Returns false
  /// with `error` filled on bind failure.
  bool StartServer(std::string* error = nullptr);
  void StopServer();
  bool serving() const { return server_ != nullptr && server_->running(); }
  /// Bound port (valid after StartServer succeeded).
  int port() const { return server_ != nullptr ? server_->port() : -1; }

  const SnapshotBoard& board() const { return board_; }

  /// Exposes a TSDB plane through /query and /alerts (not owned; must
  /// outlive the server). Must be set before StartServer.
  void SetTsdb(const TsdbPlane* tsdb) { tsdb_ = tsdb; }

  /// Captures + publishes if at least publish_interval_s of wall time has
  /// passed since the last publish (always publishes the first call).
  /// Must be called from the sim-owning thread at a quiescent point.
  /// Returns true when a snapshot was published.
  bool MaybePublish(const LiveSources& sources);

  /// Unconditional capture + publish (the end-of-run final snapshot, and
  /// benches that pace publishing by sim time).
  void Publish(const LiveSources& sources, bool finished = false);

  std::uint64_t publishes() const { return version_; }

 private:
  std::shared_ptr<const MetricsSnapshot> Capture(const LiveSources& sources,
                                                 bool finished);
  HttpResponse Route(const HttpRequest& request) const;

  LiveOptions options_;
  SnapshotBoard board_;
  const TsdbPlane* tsdb_ = nullptr;
  std::unique_ptr<HttpServer> server_;
  std::uint64_t version_ = 0;  // written by the publishing thread only
  std::chrono::steady_clock::time_point last_publish_{};
};

/// Pure routing over a board (shared by LivePlane and `topfull serve`,
/// which replays a finished run through the same endpoints). When `tsdb`
/// is non-null, /query evaluates against its store and /alerts serves the
/// rule engine's state; otherwise both answer 404.
HttpResponse RouteSnapshotRequest(const HttpRequest& request,
                                  const SnapshotBoard& board,
                                  const TsdbPlane* tsdb = nullptr);

}  // namespace topfull::obs

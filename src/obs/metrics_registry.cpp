#include "obs/metrics_registry.hpp"

#include <cassert>

namespace topfull::obs {

const char* MetricTypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "untyped";
}

std::string MetricsRegistry::LabelKey(const Labels& labels) {
  std::string key;
  for (const auto& [k, v] : labels) {
    if (!key.empty()) key += ',';
    key += k;
    key += '=';
    key += v;
  }
  return key;
}

MetricsRegistry::Cell* MetricsRegistry::GetCell(const std::string& name,
                                                const std::string& help,
                                                MetricType type, Labels labels) {
  auto [it, inserted] = families_.try_emplace(name);
  Family& family = it->second;
  if (inserted) {
    family.name = name;
    family.help = help;
    family.type = type;
  } else {
    assert(family.type == type && "metric family re-registered with another type");
  }
  auto [cell_it, cell_inserted] =
      family.cells.try_emplace(LabelKey(labels));
  if (cell_inserted) {
    cell_it->second = std::make_unique<Cell>();
    cell_it->second->labels = std::move(labels);
  }
  return cell_it->second.get();
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help, Labels labels) {
  return &GetCell(name, help, MetricType::kCounter, std::move(labels))->counter;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, const std::string& help,
                                 Labels labels) {
  return &GetCell(name, help, MetricType::kGauge, std::move(labels))->gauge;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help, Labels labels,
                                         HistogramConfig config) {
  Cell* cell = GetCell(name, help, MetricType::kHistogram, std::move(labels));
  if (!cell->histogram) cell->histogram = std::make_unique<Histogram>(config);
  assert(cell->histogram->config() == config &&
         "histogram re-registered with another bucket layout");
  return cell->histogram.get();
}

const MetricsRegistry::Cell* MetricsRegistry::Find(const std::string& name,
                                                   const Labels& labels) const {
  const auto it = families_.find(name);
  if (it == families_.end()) return nullptr;
  const auto cell_it = it->second.cells.find(LabelKey(labels));
  return cell_it == it->second.cells.end() ? nullptr : cell_it->second.get();
}

}  // namespace topfull::obs

// Streaming metrics registry: named counters, gauges and histograms that
// simulation, controller, fault and experiment code update in-line as the
// DES advances.
//
// One registry per simulation (Application owns one): updates are plain
// non-atomic writes on the simulation's own thread, so parallel sweeps
// (one Application per worker) never share a registry and the values are
// bit-identical for any TOPFULL_THREADS. Metric handles returned by the
// Get* calls are stable for the registry's lifetime — call sites resolve
// the name once and keep the pointer, leaving a single add on the hot
// path. Families are keyed by Prometheus-style name + label set; iteration
// is sorted by name then labels, so every export is deterministic. The
// whole surface is queryable at any Snapshot boundary mid-run, not just at
// end of run.
//
// Naming scheme (DESIGN.md §9): topfull_<subsystem>_<noun>[_<unit>][_total]
// with snake_case names, `_total` for counters, explicit units (_seconds,
// _ms, _rps) for gauges/histograms, and api="..."/service="..." labels.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"

namespace topfull::obs {

/// Monotonic event count. Not thread-safe by design (see file comment).
class Counter {
 public:
  void Inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double v) { value_ += v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

enum class MetricType { kCounter, kGauge, kHistogram };

const char* MetricTypeName(MetricType type);

/// Label pairs, e.g. {{"api", "getcart"}}. Kept in the order given; use a
/// consistent order per family (exports render them verbatim).
using Labels = std::vector<std::pair<std::string, std::string>>;

class MetricsRegistry {
 public:
  struct Cell {
    Labels labels;
    Counter counter;
    Gauge gauge;
    std::unique_ptr<Histogram> histogram;  // kHistogram families only
  };

  struct Family {
    std::string name;
    std::string help;
    MetricType type = MetricType::kCounter;
    /// Cells keyed by the canonical rendering of their label set; std::map
    /// iteration gives the deterministic export order.
    std::map<std::string, std::unique_ptr<Cell>> cells;
  };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the family + cell. The returned pointer stays valid
  /// for the registry's lifetime. `help` is retained from the first call
  /// for a family; the family's type must not change between calls.
  Counter* GetCounter(const std::string& name, const std::string& help,
                      Labels labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  Labels labels = {});
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          Labels labels = {}, HistogramConfig config = {});

  /// Families sorted by name (map order). Cells within a family are sorted
  /// by their canonical label key.
  const std::map<std::string, Family>& families() const { return families_; }

  /// Lookup without creating; nullptr when the family/cell is absent.
  const Cell* Find(const std::string& name, const Labels& labels = {}) const;

  std::size_t FamilyCount() const { return families_.size(); }

  /// Canonical cell key for a label set ("k1=v1,k2=v2"; empty for no labels).
  static std::string LabelKey(const Labels& labels);

 private:
  Cell* GetCell(const std::string& name, const std::string& help,
                MetricType type, Labels labels);

  std::map<std::string, Family> families_;
};

}  // namespace topfull::obs

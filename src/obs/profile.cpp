#include "obs/profile.hpp"

#include <algorithm>
#include <cstdlib>

namespace topfull::obs {

Profiler& Profiler::Global() {
  static Profiler* instance = []() {
    auto* profiler = new Profiler();
    const char* env = std::getenv("TOPFULL_PROFILE");
    if (env != nullptr && *env != '\0' && *env != '0') {
      profiler->SetEnabled(true);
      std::atexit([]() { Profiler::Global().Report(stderr); });
    }
    return profiler;
  }();
  return *instance;
}

void Profiler::Record(const char* phase, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  PhaseEntry& entry = phases_[phase];
  ++entry.stats.count;
  entry.stats.total_s += seconds;
  entry.stats.max_s = std::max(entry.stats.max_s, seconds);
  entry.durations.Record(seconds);
}

std::vector<std::pair<std::string, PhaseStats>> Profiler::Snapshot() const {
  std::vector<std::pair<std::string, PhaseStats>> phases;
  {
    std::lock_guard<std::mutex> lock(mu_);
    phases.reserve(phases_.size());
    for (const auto& [name, entry] : phases_) {
      PhaseStats stats = entry.stats;
      stats.p50_s = entry.durations.Percentile(50);
      stats.p99_s = entry.durations.Percentile(99);
      phases.emplace_back(name, stats);
    }
  }
  std::sort(phases.begin(), phases.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return phases;
}

void Profiler::Report(std::FILE* out) const {
  const auto phases = Snapshot();
  if (phases.empty()) return;
  std::fprintf(out, "[profile] %-28s %10s %12s %12s %12s %12s %12s\n", "phase",
               "count", "total (s)", "avg (ms)", "p50 (ms)", "p99 (ms)",
               "max (ms)");
  for (const auto& [name, stats] : phases) {
    std::fprintf(out, "[profile] %-28s %10llu %12.3f %12.3f %12.3f %12.3f %12.3f\n",
                 name.c_str(), static_cast<unsigned long long>(stats.count),
                 stats.total_s,
                 stats.count > 0 ? 1e3 * stats.total_s / static_cast<double>(stats.count)
                                 : 0.0,
                 1e3 * stats.p50_s, 1e3 * stats.p99_s, 1e3 * stats.max_s);
  }
}

void Profiler::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  phases_.clear();
}

}  // namespace topfull::obs

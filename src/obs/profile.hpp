// Wall-clock scope timers for profiling the simulator's own hot phases.
//
// ScopedTimer accumulates elapsed wall time per phase name into the global
// Profiler; enable with TOPFULL_PROFILE=1 (or SetEnabled). Because wall
// clocks are inherently nondeterministic, the report goes to stderr only —
// never into the trace/decision-log files, whose bytes must stay identical
// across runs and thread counts. Recording is thread-safe (bench sweeps run
// on the worker pool) and a no-op when disabled.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"

namespace topfull::obs {

struct PhaseStats {
  std::uint64_t count = 0;
  double total_s = 0.0;
  double max_s = 0.0;
  /// Streamed percentiles over per-call durations (log-bucketed histogram,
  /// relative error <= 1/16); 0 when the phase never fired.
  double p50_s = 0.0;
  double p99_s = 0.0;
};

class Profiler {
 public:
  /// Process-wide instance; enabled at construction when TOPFULL_PROFILE is
  /// set (reports to stderr at process exit).
  static Profiler& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  void Record(const char* phase, double seconds);

  /// Phases sorted by name. The sort happens here (storage is unordered),
  /// so reports and tests see a stable order regardless of which phases
  /// were recorded first or on which thread.
  std::vector<std::pair<std::string, PhaseStats>> Snapshot() const;

  void Report(std::FILE* out) const;
  void Reset();

 private:
  Profiler() = default;

  /// Per-phase aggregate + duration histogram (seconds; 10 ns .. 1000 s
  /// bucketed range covers a clock read through an hour-long sweep).
  struct PhaseEntry {
    PhaseStats stats;
    Histogram durations{HistogramConfig{1e-8, 1e3, 16}};
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, PhaseEntry> phases_;
  std::atomic<bool> enabled_{false};
};

/// RAII timer: records the enclosing scope's wall time under `phase`.
/// `phase` must be a string literal (retained by pointer until destruction).
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* phase)
      : phase_(phase), active_(Profiler::Global().enabled()) {
    if (active_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (active_) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start_;
      Profiler::Global().Record(phase_, elapsed.count());
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const char* phase_;
  bool active_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace topfull::obs

#include "obs/prom_parser.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <string_view>

#include "obs/snapshot.hpp"

namespace topfull::obs {

namespace {

bool IsNameStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}
bool IsNameChar(char c) { return IsNameStart(c) || (c >= '0' && c <= '9'); }
bool IsLabelStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool IsLabelChar(char c) { return IsLabelStart(c) || (c >= '0' && c <= '9'); }

/// Consumes a metric/label identifier starting at `pos`; empty on failure.
std::string_view TakeName(std::string_view line, std::size_t& pos,
                          bool label_name) {
  const std::size_t start = pos;
  if (pos < line.size() &&
      (label_name ? IsLabelStart(line[pos]) : IsNameStart(line[pos]))) {
    ++pos;
    while (pos < line.size() &&
           (label_name ? IsLabelChar(line[pos]) : IsNameChar(line[pos]))) {
      ++pos;
    }
  }
  return line.substr(start, pos - start);
}

/// Parses a sample value token: the three spelled non-finite forms the
/// plane emits, or a fully-consumed strtod number.
bool ParseValue(const std::string& token, double* value) {
  if (token == "NaN") {
    *value = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  if (token == "+Inf") {
    *value = std::numeric_limits<double>::infinity();
    return true;
  }
  if (token == "-Inf") {
    *value = -std::numeric_limits<double>::infinity();
    return true;
  }
  if (token.empty()) return false;
  errno = 0;
  char* end = nullptr;
  *value = std::strtod(token.c_str(), &end);
  return errno == 0 && end == token.c_str() + token.size();
}

/// Unescapes a HELP payload (`\\` and `\n`, the two forms PromEscapeHelp
/// produces).
std::string UnescapeHelp(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\\' && i + 1 < text.size()) {
      const char next = text[i + 1];
      if (next == '\\') {
        out += '\\';
        ++i;
        continue;
      }
      if (next == 'n') {
        out += '\n';
        ++i;
        continue;
      }
    }
    out += text[i];
  }
  return out;
}

/// True when `name` is `base` + `suffix`.
bool HasSuffix(const std::string& name, const char* suffix,
               std::string* base) {
  const std::size_t n = std::strlen(suffix);
  if (name.size() <= n || name.compare(name.size() - n, n, suffix) != 0) {
    return false;
  }
  *base = name.substr(0, name.size() - n);
  return true;
}

struct Parser {
  PromScrape* out;
  std::string* error;
  /// Family name -> index in out->families.
  std::map<std::string, std::size_t> index;
  int line_no = 0;
  std::string_view current_line;

  bool Fail(const std::string& why) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + why + ": " +
               std::string(current_line);
    }
    return false;
  }

  PromFamily* Find(const std::string& name) {
    const auto it = index.find(name);
    return it == index.end() ? nullptr : &out->families[it->second];
  }

  PromFamily& GetOrCreate(const std::string& name) {
    const auto it = index.find(name);
    if (it != index.end()) return out->families[it->second];
    index.emplace(name, out->families.size());
    PromFamily family;
    family.name = name;
    out->families.push_back(std::move(family));
    return out->families.back();
  }

  bool HandleComment(std::string_view line) {
    // Only the two machine-readable comment forms are accepted: a strict
    // parser turning unknown directives into silent no-ops would hide
    // emitter drift.
    const bool is_help = line.rfind("# HELP ", 0) == 0;
    const bool is_type = line.rfind("# TYPE ", 0) == 0;
    if (!is_help && !is_type) return Fail("unknown comment directive");
    std::size_t pos = 7;  // past "# HELP " / "# TYPE "
    const std::string name{TakeName(line, pos, /*label_name=*/false)};
    if (name.empty()) return Fail("missing metric name");
    if (pos >= line.size() || line[pos] != ' ') {
      return Fail("missing payload after metric name");
    }
    const std::string_view payload = line.substr(pos + 1);
    if (is_help) {
      PromFamily* existing = Find(name);
      if (existing != nullptr && existing->has_help) {
        return Fail("duplicate # HELP for '" + name + "'");
      }
      if (existing != nullptr && !existing->samples.empty()) {
        return Fail("# HELP after samples for '" + name + "'");
      }
      PromFamily& family = GetOrCreate(name);
      family.help = UnescapeHelp(payload);
      family.has_help = true;
      return true;
    }
    MetricType type = MetricType::kGauge;
    if (payload == "counter") {
      type = MetricType::kCounter;
    } else if (payload == "gauge") {
      type = MetricType::kGauge;
    } else if (payload == "histogram") {
      type = MetricType::kHistogram;
    } else {
      return Fail("unknown metric type '" + std::string(payload) + "'");
    }
    PromFamily* existing = Find(name);
    if (existing != nullptr && !existing->samples.empty()) {
      return Fail("# TYPE after samples for '" + name + "'");
    }
    PromFamily& family = GetOrCreate(name);
    // A repeated TYPE line is emitter drift even when it agrees.
    if (&family == existing && existing->type_seen) {
      return Fail("duplicate # TYPE for '" + name + "'");
    }
    family.type = type;
    family.type_seen = true;
    return true;
  }

  bool ParseLabels(std::string_view line, std::size_t& pos, Labels* labels) {
    ++pos;  // consume '{'
    while (true) {
      const std::string key{TakeName(line, pos, /*label_name=*/true)};
      if (key.empty()) return Fail("bad label name");
      if (pos >= line.size() || line[pos] != '=') {
        return Fail("missing '=' after label name");
      }
      ++pos;
      if (pos >= line.size() || line[pos] != '"') {
        return Fail("label value must be quoted");
      }
      ++pos;
      std::string value;
      bool closed = false;
      while (pos < line.size()) {
        const char c = line[pos];
        if (c == '\\') {
          if (pos + 1 >= line.size()) return Fail("dangling escape");
          const char next = line[pos + 1];
          if (next == '\\') {
            value += '\\';
          } else if (next == '"') {
            value += '"';
          } else if (next == 'n') {
            value += '\n';
          } else {
            return Fail("unknown escape '\\" + std::string(1, next) + "'");
          }
          pos += 2;
          continue;
        }
        if (c == '"') {
          closed = true;
          ++pos;
          break;
        }
        value += c;
        ++pos;
      }
      if (!closed) return Fail("unterminated label value");
      labels->emplace_back(key, std::move(value));
      if (pos < line.size() && line[pos] == ',') {
        ++pos;
        continue;
      }
      if (pos < line.size() && line[pos] == '}') {
        ++pos;
        return true;
      }
      return Fail("expected ',' or '}' after label value");
    }
  }

  bool HandleSample(std::string_view line) {
    std::size_t pos = 0;
    PromSample sample;
    sample.name = std::string(TakeName(line, pos, /*label_name=*/false));
    if (sample.name.empty()) return Fail("bad metric name");
    if (pos < line.size() && line[pos] == '{') {
      if (!ParseLabels(line, pos, &sample.labels)) return false;
    }
    if (pos >= line.size() || line[pos] != ' ') {
      return Fail("missing value");
    }
    ++pos;
    const std::size_t value_start = pos;
    while (pos < line.size() && line[pos] != ' ') ++pos;
    sample.value_text =
        std::string(line.substr(value_start, pos - value_start));
    if (!ParseValue(sample.value_text, &sample.value)) {
      return Fail("bad sample value '" + sample.value_text + "'");
    }
    if (pos < line.size()) {
      ++pos;  // the space before the timestamp
      const std::string ts{line.substr(pos)};
      if (ts.empty()) return Fail("trailing space");
      errno = 0;
      char* end = nullptr;
      const long long parsed = std::strtoll(ts.c_str(), &end, 10);
      if (errno != 0 || end != ts.c_str() + ts.size()) {
        return Fail("bad timestamp '" + ts + "'");
      }
      sample.has_timestamp = true;
      sample.timestamp_ms = parsed;
    }

    // Resolve the owning family: exact name, else a histogram base via the
    // `_bucket`/`_sum`/`_count` suffix.
    PromFamily* family = Find(sample.name);
    if (family != nullptr && family->type == MetricType::kHistogram) {
      return Fail("histogram samples need a _bucket/_sum/_count suffix");
    }
    if (family == nullptr) {
      std::string base;
      const bool is_bucket = HasSuffix(sample.name, "_bucket", &base);
      if (is_bucket || HasSuffix(sample.name, "_sum", &base) ||
          HasSuffix(sample.name, "_count", &base)) {
        PromFamily* candidate = Find(base);
        if (candidate != nullptr &&
            candidate->type == MetricType::kHistogram) {
          family = candidate;
          if (is_bucket) {
            bool has_le = false;
            for (const auto& [k, v] : sample.labels) has_le |= (k == "le");
            if (!has_le) return Fail("_bucket sample without an le label");
          }
        }
      }
    }
    if (family == nullptr) {
      return Fail("sample before # TYPE for '" + sample.name + "'");
    }
    if (!family->type_seen) {
      return Fail("sample before # TYPE for '" + sample.name + "'");
    }
    family->samples.push_back(std::move(sample));
    return true;
  }

  bool Run(const std::string& text) {
    std::size_t start = 0;
    while (start < text.size()) {
      std::size_t end = text.find('\n', start);
      const bool had_newline = end != std::string::npos;
      if (!had_newline) end = text.size();
      ++line_no;
      current_line = std::string_view(text).substr(start, end - start);
      start = end + (had_newline ? 1 : 0);
      if (current_line.empty()) {
        // A final unterminated empty "line" cannot happen (the loop stops);
        // blank lines inside the exposition are emitter drift.
        return Fail("blank line");
      }
      if (current_line[0] == '#') {
        if (!HandleComment(current_line)) return false;
      } else {
        if (!HandleSample(current_line)) return false;
      }
    }
    return true;
  }
};

}  // namespace

const PromFamily* PromScrape::FindFamily(const std::string& name) const {
  for (const PromFamily& family : families) {
    if (family.name == name) return &family;
  }
  return nullptr;
}

bool ParsePromText(const std::string& text, PromScrape* out,
                   std::string* error) {
  out->families.clear();
  Parser parser;
  parser.out = out;
  parser.error = error;
  return parser.Run(text);
}

std::string PromTextFromScrape(const PromScrape& scrape) {
  std::string out;
  for (const PromFamily& family : scrape.families) {
    if (family.has_help) {
      out += "# HELP ";
      out += family.name;
      out += " ";
      out += PromEscapeHelp(family.help);
      out += "\n";
    }
    out += "# TYPE ";
    out += family.name;
    out += " ";
    out += MetricTypeName(family.type);
    out += "\n";
    for (const PromSample& sample : family.samples) {
      out += sample.name;
      if (!sample.labels.empty()) {
        out += "{";
        for (std::size_t i = 0; i < sample.labels.size(); ++i) {
          if (i > 0) out += ",";
          out += sample.labels[i].first + "=\"" +
                 PromEscapeLabel(sample.labels[i].second) + "\"";
        }
        out += "}";
      }
      out += " " + sample.value_text;
      if (sample.has_timestamp) {
        out += " " + std::to_string(sample.timestamp_ms);
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace topfull::obs

// Strict Prometheus text-exposition parser: the inverse of
// PromTextFromSnapshot, and the out-of-process ingestion path of the
// TSDB (tsdb.hpp).
//
// Accepts exactly the exposition-format subset the plane emits — `# HELP`
// / `# TYPE` pairs followed by sample lines with optional `{k="v",...}`
// labels, a value (decimal, `NaN`, `+Inf`, `-Inf`) and an optional integer
// millisecond timestamp — and is deliberately strict about everything
// else: every sample must belong to a family with a preceding `# TYPE`
// (histogram `_bucket`/`_sum`/`_count` samples attach to their base
// family), label values are unescaped (`\\`, `\"`, `\n`), and every
// rejection carries the 1-based line number of the offending line, so a
// bad scrape from a remote process is diagnosable without the payload.
//
// Round-trip contract (enforced by tests): parsing PromTextFromSnapshot's
// output and re-rendering it with PromTextFromScrape reproduces the input
// byte for byte.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics_registry.hpp"

namespace topfull::obs {

/// One sample line. `name` is the full series name (including any
/// `_bucket`/`_sum`/`_count` suffix); labels are in source order.
struct PromSample {
  std::string name;
  Labels labels;
  double value = 0.0;
  /// The value's source lexeme, kept verbatim so re-rendering reproduces
  /// the input byte for byte (e.g. large counters that %.10g would fold).
  std::string value_text;
  bool has_timestamp = false;
  std::int64_t timestamp_ms = 0;
};

/// One `# HELP`/`# TYPE` family and the samples attached to it.
struct PromFamily {
  std::string name;  ///< base family name (without histogram suffixes)
  std::string help;  ///< unescaped HELP text ("" when absent)
  bool has_help = false;
  MetricType type = MetricType::kGauge;
  bool type_seen = false;  ///< a `# TYPE` line was parsed for this family
  std::vector<PromSample> samples;
};

/// A whole scrape, families in source order.
struct PromScrape {
  std::vector<PromFamily> families;

  const PromFamily* FindFamily(const std::string& name) const;
};

/// Parses a full text exposition. Returns false and sets `error` to
/// "line N: reason: <line>" on the first rejection; `out` is left in an
/// unspecified state on failure.
bool ParsePromText(const std::string& text, PromScrape* out,
                   std::string* error = nullptr);

/// Renders a scrape back to text-exposition format (`# HELP` when present,
/// `# TYPE`, then samples in order) — the round-trip counterpart of
/// ParsePromText.
std::string PromTextFromScrape(const PromScrape& scrape);

}  // namespace topfull::obs

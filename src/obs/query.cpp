#include "obs/query.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <regex>
#include <string_view>

namespace topfull::obs {

namespace {

/// Deterministic, locale-independent double formatting.
std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

// --- Lexer -------------------------------------------------------------------

struct Token {
  enum Kind { kIdent, kNumber, kString, kPunct, kEnd } kind = kEnd;
  std::string text;
  double number = 0.0;
  std::size_t pos = 0;
};

struct Lexer {
  std::string_view src;
  std::size_t pos = 0;
  std::string error;

  std::vector<Token> Run() {
    std::vector<Token> tokens;
    while (error.empty()) {
      while (pos < src.size() && (src[pos] == ' ' || src[pos] == '\t' ||
                                  src[pos] == '\n')) {
        ++pos;
      }
      if (pos >= src.size()) {
        tokens.push_back({Token::kEnd, "", 0.0, pos});
        break;
      }
      const std::size_t start = pos;
      const char c = src[pos];
      if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
          c == ':') {
        while (pos < src.size() &&
               (std::isalnum(static_cast<unsigned char>(src[pos])) ||
                src[pos] == '_' || src[pos] == ':')) {
          ++pos;
        }
        tokens.push_back(
            {Token::kIdent, std::string(src.substr(start, pos - start)), 0.0,
             start});
        continue;
      }
      if ((c >= '0' && c <= '9') || c == '.') {
        while (pos < src.size() &&
               (std::isdigit(static_cast<unsigned char>(src[pos])) ||
                src[pos] == '.' || src[pos] == 'e' || src[pos] == 'E' ||
                ((src[pos] == '+' || src[pos] == '-') && pos > start &&
                 (src[pos - 1] == 'e' || src[pos - 1] == 'E')))) {
          ++pos;
        }
        const std::string text(src.substr(start, pos - start));
        char* end = nullptr;
        const double value = std::strtod(text.c_str(), &end);
        if (end != text.c_str() + text.size()) {
          error = "bad number '" + text + "'";
          break;
        }
        tokens.push_back({Token::kNumber, text, value, start});
        continue;
      }
      if (c == '"') {
        ++pos;
        std::string value;
        bool closed = false;
        while (pos < src.size()) {
          if (src[pos] == '\\' && pos + 1 < src.size()) {
            const char next = src[pos + 1];
            value += next == 'n' ? '\n' : next;
            pos += 2;
            continue;
          }
          if (src[pos] == '"') {
            closed = true;
            ++pos;
            break;
          }
          value += src[pos++];
        }
        if (!closed) {
          error = "unterminated string";
          break;
        }
        tokens.push_back({Token::kString, value, 0.0, start});
        continue;
      }
      // Multi-char operators first.
      static const char* kTwo[] = {"==", "!=", "<=", ">=", "=~", "!~"};
      bool matched = false;
      for (const char* op : kTwo) {
        if (src.substr(pos, 2) == op) {
          tokens.push_back({Token::kPunct, op, 0.0, start});
          pos += 2;
          matched = true;
          break;
        }
      }
      if (matched) continue;
      static const std::string kOne = "+-*/(){}[],<>=";
      if (kOne.find(c) != std::string::npos) {
        tokens.push_back({Token::kPunct, std::string(1, c), 0.0, start});
        ++pos;
        continue;
      }
      error = "unexpected character '" + std::string(1, c) + "'";
      break;
    }
    return tokens;
  }
};

// --- AST ---------------------------------------------------------------------

struct Node;
using NodePtr = std::unique_ptr<Node>;

struct Matcher {
  enum Op { kEq, kNe, kRe, kNre } op = kEq;
  std::string label;
  std::string value;
  std::regex re;  // kRe/kNre only, fully anchored
};

struct Node {
  enum Kind { kNumber, kSelector, kCall, kAgg, kBinary, kNeg } kind = kNumber;
  double number = 0.0;
  // kSelector
  std::string name;
  std::vector<Matcher> matchers;
  double range_s = 0.0;  ///< 0 = instant selector
  // kCall (func name) / kAgg (sum|avg|min|max)
  std::string func;
  std::vector<NodePtr> args;
  bool has_by = false;
  std::vector<std::string> by;
  // kBinary
  std::string op;
};

// --- Parser ------------------------------------------------------------------

struct Parser {
  std::vector<Token> tokens;
  std::size_t at = 0;
  std::string error;

  const Token& Peek() const { return tokens[at]; }
  Token Take() { return tokens[at++]; }
  bool Fail(const std::string& why) {
    if (error.empty()) {
      error = "parse error at offset " + std::to_string(Peek().pos) + ": " +
              why;
    }
    return false;
  }
  bool Expect(const std::string& punct) {
    if (Peek().kind == Token::kPunct && Peek().text == punct) {
      ++at;
      return true;
    }
    return Fail("expected '" + punct + "'");
  }

  static bool IsAggregator(const std::string& name) {
    return name == "sum" || name == "avg" || name == "min" || name == "max";
  }
  static bool IsFunction(const std::string& name) {
    return name == "rate" || name == "increase" ||
           name == "avg_over_time" || name == "min_over_time" ||
           name == "max_over_time" || name == "sum_over_time" ||
           name == "histogram_quantile";
  }

  NodePtr ParseExpr() { return ParseComparison(); }

  NodePtr ParseComparison() {
    NodePtr lhs = ParseAdditive();
    if (!lhs) return nullptr;
    const Token& t = Peek();
    if (t.kind == Token::kPunct &&
        (t.text == "==" || t.text == "!=" || t.text == "<" ||
         t.text == "<=" || t.text == ">" || t.text == ">=")) {
      auto node = std::make_unique<Node>();
      node->kind = Node::kBinary;
      node->op = Take().text;
      node->args.push_back(std::move(lhs));
      NodePtr rhs = ParseAdditive();
      if (!rhs) return nullptr;
      node->args.push_back(std::move(rhs));
      return node;
    }
    return lhs;
  }

  NodePtr ParseAdditive() {
    NodePtr lhs = ParseMultiplicative();
    if (!lhs) return nullptr;
    while (Peek().kind == Token::kPunct &&
           (Peek().text == "+" || Peek().text == "-")) {
      auto node = std::make_unique<Node>();
      node->kind = Node::kBinary;
      node->op = Take().text;
      node->args.push_back(std::move(lhs));
      NodePtr rhs = ParseMultiplicative();
      if (!rhs) return nullptr;
      node->args.push_back(std::move(rhs));
      lhs = std::move(node);
    }
    return lhs;
  }

  NodePtr ParseMultiplicative() {
    NodePtr lhs = ParseUnary();
    if (!lhs) return nullptr;
    while (Peek().kind == Token::kPunct &&
           (Peek().text == "*" || Peek().text == "/")) {
      auto node = std::make_unique<Node>();
      node->kind = Node::kBinary;
      node->op = Take().text;
      node->args.push_back(std::move(lhs));
      NodePtr rhs = ParseUnary();
      if (!rhs) return nullptr;
      node->args.push_back(std::move(rhs));
      lhs = std::move(node);
    }
    return lhs;
  }

  NodePtr ParseUnary() {
    if (Peek().kind == Token::kPunct && Peek().text == "-") {
      Take();
      auto node = std::make_unique<Node>();
      node->kind = Node::kNeg;
      NodePtr arg = ParseUnary();
      if (!arg) return nullptr;
      node->args.push_back(std::move(arg));
      return node;
    }
    return ParsePrimary();
  }

  bool ParseByClause(Node* node) {
    // Caller saw the `by` ident already consumed.
    if (!Expect("(")) return false;
    while (true) {
      if (Peek().kind != Token::kIdent) return Fail("expected label name");
      node->by.push_back(Take().text);
      if (Peek().kind == Token::kPunct && Peek().text == ",") {
        Take();
        continue;
      }
      break;
    }
    node->has_by = true;
    return Expect(")");
  }

  NodePtr ParsePrimary() {
    const Token& t = Peek();
    if (t.kind == Token::kNumber) {
      auto node = std::make_unique<Node>();
      node->kind = Node::kNumber;
      node->number = Take().number;
      return node;
    }
    if (t.kind == Token::kPunct && t.text == "(") {
      Take();
      NodePtr inner = ParseExpr();
      if (!inner) return nullptr;
      if (!Expect(")")) return nullptr;
      return inner;
    }
    if (t.kind != Token::kIdent) {
      Fail("expected expression");
      return nullptr;
    }
    const std::string name = Take().text;
    if (IsAggregator(name) &&
        ((Peek().kind == Token::kPunct && Peek().text == "(") ||
         (Peek().kind == Token::kIdent && Peek().text == "by"))) {
      auto node = std::make_unique<Node>();
      node->kind = Node::kAgg;
      node->func = name;
      if (Peek().kind == Token::kIdent && Peek().text == "by") {
        Take();
        if (!ParseByClause(node.get())) return nullptr;
      }
      if (!Expect("(")) return nullptr;
      NodePtr arg = ParseExpr();
      if (!arg) return nullptr;
      node->args.push_back(std::move(arg));
      if (!Expect(")")) return nullptr;
      if (!node->has_by && Peek().kind == Token::kIdent &&
          Peek().text == "by") {
        Take();
        if (!ParseByClause(node.get())) return nullptr;
      }
      return node;
    }
    if (IsFunction(name) && Peek().kind == Token::kPunct &&
        Peek().text == "(") {
      auto node = std::make_unique<Node>();
      node->kind = Node::kCall;
      node->func = name;
      Take();  // "("
      while (true) {
        NodePtr arg = ParseExpr();
        if (!arg) return nullptr;
        node->args.push_back(std::move(arg));
        if (Peek().kind == Token::kPunct && Peek().text == ",") {
          Take();
          continue;
        }
        break;
      }
      if (!Expect(")")) return nullptr;
      return node;
    }
    return ParseSelector(name);
  }

  NodePtr ParseSelector(const std::string& name) {
    auto node = std::make_unique<Node>();
    node->kind = Node::kSelector;
    node->name = name;
    if (Peek().kind == Token::kPunct && Peek().text == "{") {
      Take();
      while (!(Peek().kind == Token::kPunct && Peek().text == "}")) {
        if (Peek().kind != Token::kIdent) {
          Fail("expected label name in matcher");
          return nullptr;
        }
        Matcher matcher;
        matcher.label = Take().text;
        if (Peek().kind != Token::kPunct) {
          Fail("expected matcher operator");
          return nullptr;
        }
        const std::string op = Take().text;
        if (op == "=") {
          matcher.op = Matcher::kEq;
        } else if (op == "!=") {
          matcher.op = Matcher::kNe;
        } else if (op == "=~") {
          matcher.op = Matcher::kRe;
        } else if (op == "!~") {
          matcher.op = Matcher::kNre;
        } else {
          Fail("bad matcher operator '" + op + "'");
          return nullptr;
        }
        if (Peek().kind != Token::kString) {
          Fail("matcher value must be a quoted string");
          return nullptr;
        }
        matcher.value = Take().text;
        if (matcher.op == Matcher::kRe || matcher.op == Matcher::kNre) {
          try {
            matcher.re = std::regex("^(?:" + matcher.value + ")$",
                                    std::regex::ECMAScript);
          } catch (const std::regex_error&) {
            Fail("bad regex '" + matcher.value + "'");
            return nullptr;
          }
        }
        node->matchers.push_back(std::move(matcher));
        if (Peek().kind == Token::kPunct && Peek().text == ",") Take();
      }
      Take();  // "}"
    }
    if (Peek().kind == Token::kPunct && Peek().text == "[") {
      Take();
      if (Peek().kind != Token::kNumber) {
        Fail("expected range duration");
        return nullptr;
      }
      double duration = Take().number;
      if (Peek().kind == Token::kIdent) {
        const std::string unit = Peek().text;
        if (unit == "s") {
          Take();
        } else if (unit == "m") {
          Take();
          duration *= 60.0;
        } else if (unit == "h") {
          Take();
          duration *= 3600.0;
        } else {
          Fail("bad duration unit '" + unit + "'");
          return nullptr;
        }
      }
      if (duration <= 0.0) {
        Fail("range duration must be positive");
        return nullptr;
      }
      node->range_s = duration;
      if (!Expect("]")) return nullptr;
    }
    return node;
  }
};

// --- Evaluator ---------------------------------------------------------------

struct Ser {
  Labels labels;
  std::string key;
  std::vector<TsdbSample> samples;
};

struct Value {
  enum Kind { kScalar, kVector, kRange } kind = kScalar;
  double scalar = 0.0;
  std::vector<Ser> series;
};

void SortSeries(std::vector<Ser>* series) {
  std::sort(series->begin(), series->end(),
            [](const Ser& a, const Ser& b) { return a.key < b.key; });
}

struct Evaluator {
  const Tsdb& tsdb;
  const EvalOptions& options;
  double t;
  std::string error;

  bool Fail(const std::string& why) {
    if (error.empty()) error = why;
    return false;
  }

  bool MatchLabels(const Labels& labels, const std::vector<Matcher>& matchers) {
    for (const Matcher& m : matchers) {
      std::string value;  // a missing label matches as ""
      for (const auto& [k, v] : labels) {
        if (k == m.label) {
          value = v;
          break;
        }
      }
      switch (m.op) {
        case Matcher::kEq:
          if (value != m.value) return false;
          break;
        case Matcher::kNe:
          if (value == m.value) return false;
          break;
        case Matcher::kRe:
          if (!std::regex_match(value, m.re)) return false;
          break;
        case Matcher::kNre:
          if (std::regex_match(value, m.re)) return false;
          break;
      }
    }
    return true;
  }

  bool EvalSelector(const Node& node, Value* out) {
    const auto pred = [this, &node](const Labels& labels) {
      return MatchLabels(labels, node.matchers);
    };
    const std::vector<SeriesSnapshot> matched = tsdb.Match(node.name, pred);
    out->series.clear();
    if (node.range_s > 0.0) {
      out->kind = Value::kRange;
      for (const SeriesSnapshot& series : matched) {
        Ser ser;
        ser.labels = series.labels;
        ser.key = series.label_key;
        for (const TsdbSample& sample : series.samples) {
          if (sample.t_s > t - node.range_s && sample.t_s <= t) {
            ser.samples.push_back(sample);
          }
        }
        if (!ser.samples.empty()) out->series.push_back(std::move(ser));
      }
    } else {
      out->kind = Value::kVector;
      for (const SeriesSnapshot& series : matched) {
        const TsdbSample* latest = nullptr;
        for (const TsdbSample& sample : series.samples) {
          if (sample.t_s <= t && sample.t_s >= t - options.lookback_s) {
            latest = &sample;
          }
        }
        if (latest == nullptr) continue;
        Ser ser;
        ser.labels = series.labels;
        ser.key = series.label_key;
        ser.samples.push_back({t, latest->value});
        out->series.push_back(std::move(ser));
      }
    }
    // tsdb.Match returns label-key order per name; already sorted.
    return true;
  }

  /// rate/increase over one range-vector series. Counter resets contribute
  /// the post-reset value; rate divides by the covered span.
  static bool RangeDelta(const Ser& ser, bool per_second, double* out) {
    if (ser.samples.size() < 2) return false;
    double increase = 0.0;
    for (std::size_t i = 1; i < ser.samples.size(); ++i) {
      const double delta = ser.samples[i].value - ser.samples[i - 1].value;
      increase += delta >= 0.0 ? delta : ser.samples[i].value;
    }
    if (per_second) {
      const double span = ser.samples.back().t_s - ser.samples.front().t_s;
      if (span <= 0.0) return false;
      increase /= span;
    }
    *out = increase;
    return true;
  }

  bool EvalOverTime(const Node& node, Value* out) {
    Value arg;
    if (!Eval(*node.args[0], &arg)) return false;
    if (arg.kind != Value::kRange) {
      return Fail(node.func + "() needs a range vector (selector[duration])");
    }
    out->kind = Value::kVector;
    out->series.clear();
    for (const Ser& ser : arg.series) {
      double value = 0.0;
      if (node.func == "rate" || node.func == "increase") {
        if (!RangeDelta(ser, node.func == "rate", &value)) continue;
      } else if (node.func == "avg_over_time") {
        for (const TsdbSample& s : ser.samples) value += s.value;
        value /= static_cast<double>(ser.samples.size());
      } else if (node.func == "sum_over_time") {
        for (const TsdbSample& s : ser.samples) value += s.value;
      } else if (node.func == "min_over_time") {
        value = ser.samples.front().value;
        for (const TsdbSample& s : ser.samples) value = std::min(value, s.value);
      } else {  // max_over_time
        value = ser.samples.front().value;
        for (const TsdbSample& s : ser.samples) value = std::max(value, s.value);
      }
      Ser result;
      result.labels = ser.labels;
      result.key = ser.key;
      result.samples.push_back({t, value});
      out->series.push_back(std::move(result));
    }
    return true;
  }

  bool EvalHistogramQuantile(const Node& node, Value* out) {
    if (node.args.size() != 2) {
      return Fail("histogram_quantile(phi, vector) takes two arguments");
    }
    Value phi_value;
    if (!Eval(*node.args[0], &phi_value)) return false;
    if (phi_value.kind != Value::kScalar) {
      return Fail("histogram_quantile: phi must be a scalar");
    }
    const double phi = phi_value.scalar;
    Value arg;
    if (!Eval(*node.args[1], &arg)) return false;
    if (arg.kind != Value::kVector) {
      return Fail("histogram_quantile: second argument must be an instant "
                  "vector of _bucket series");
    }
    // Group by labels-minus-le.
    struct Bucket {
      double le = 0.0;
      double count = 0.0;
    };
    struct Group {
      Labels labels;
      std::vector<Bucket> buckets;
    };
    std::map<std::string, Group> groups;
    for (const Ser& ser : arg.series) {
      double le = 0.0;
      bool has_le = false;
      Labels rest;
      for (const auto& [k, v] : ser.labels) {
        if (k == "le") {
          has_le = true;
          le = v == "+Inf" ? std::numeric_limits<double>::infinity()
                           : std::strtod(v.c_str(), nullptr);
        } else {
          rest.emplace_back(k, v);
        }
      }
      if (!has_le) continue;
      const std::string key = MetricsRegistry::LabelKey(rest);
      Group& group = groups[key];
      group.labels = rest;
      group.buckets.push_back({le, ser.samples[0].value});
    }
    out->kind = Value::kVector;
    out->series.clear();
    for (auto& [key, group] : groups) {
      std::sort(group.buckets.begin(), group.buckets.end(),
                [](const Bucket& a, const Bucket& b) { return a.le < b.le; });
      if (group.buckets.empty() ||
          !std::isinf(group.buckets.back().le)) {
        continue;  // no +Inf bucket: not a conformant histogram
      }
      const double total = group.buckets.back().count;
      double value;
      if (!(total > 0.0) || !(phi >= 0.0) || phi > 1.0) {
        value = std::numeric_limits<double>::quiet_NaN();
      } else {
        const double rank = phi * total;
        std::size_t b = 0;
        while (b < group.buckets.size() && group.buckets[b].count < rank) ++b;
        if (b >= group.buckets.size()) b = group.buckets.size() - 1;
        if (std::isinf(group.buckets[b].le)) {
          // The rank lands past every finite bound: answer the highest
          // finite one (there is no upper edge to interpolate toward).
          value = group.buckets.size() >= 2
                      ? group.buckets[group.buckets.size() - 2].le
                      : std::numeric_limits<double>::quiet_NaN();
        } else {
          const double upper = group.buckets[b].le;
          const double lower = b == 0 ? 0.0 : group.buckets[b - 1].le;
          const double cum_prev = b == 0 ? 0.0 : group.buckets[b - 1].count;
          const double in_bucket = group.buckets[b].count - cum_prev;
          value = in_bucket <= 0.0
                      ? upper
                      : lower + (upper - lower) * (rank - cum_prev) / in_bucket;
        }
      }
      Ser ser;
      ser.labels = group.labels;
      ser.key = key;
      ser.samples.push_back({t, value});
      out->series.push_back(std::move(ser));
    }
    SortSeries(&out->series);
    return true;
  }

  bool EvalAgg(const Node& node, Value* out) {
    Value arg;
    if (!Eval(*node.args[0], &arg)) return false;
    if (arg.kind != Value::kVector) {
      return Fail(node.func + "() needs an instant vector");
    }
    struct Group {
      Labels labels;
      double sum = 0.0;
      double min = 0.0;
      double max = 0.0;
      std::size_t n = 0;
    };
    std::map<std::string, Group> groups;
    for (const Ser& ser : arg.series) {
      Labels keep;
      if (node.has_by) {
        // Output labels sorted by name: canonical regardless of by-order.
        std::vector<std::string> wanted = node.by;
        std::sort(wanted.begin(), wanted.end());
        for (const std::string& label : wanted) {
          for (const auto& [k, v] : ser.labels) {
            if (k == label) {
              keep.emplace_back(k, v);
              break;
            }
          }
        }
      }
      const std::string key = MetricsRegistry::LabelKey(keep);
      const double v = ser.samples[0].value;
      Group& group = groups[key];
      if (group.n == 0) {
        group.labels = keep;
        group.min = group.max = v;
      }
      group.sum += v;
      group.min = std::min(group.min, v);
      group.max = std::max(group.max, v);
      ++group.n;
    }
    out->kind = Value::kVector;
    out->series.clear();
    for (const auto& [key, group] : groups) {
      double value = group.sum;
      if (node.func == "avg") value = group.sum / static_cast<double>(group.n);
      if (node.func == "min") value = group.min;
      if (node.func == "max") value = group.max;
      Ser ser;
      ser.labels = group.labels;
      ser.key = key;
      ser.samples.push_back({t, value});
      out->series.push_back(std::move(ser));
    }
    return true;  // std::map iteration is already key-sorted
  }

  static double Apply(const std::string& op, double a, double b) {
    if (op == "+") return a + b;
    if (op == "-") return a - b;
    if (op == "*") return a * b;
    if (op == "/") return a / b;
    if (op == "==") return a == b ? 1.0 : 0.0;
    if (op == "!=") return a != b ? 1.0 : 0.0;
    if (op == "<") return a < b ? 1.0 : 0.0;
    if (op == "<=") return a <= b ? 1.0 : 0.0;
    if (op == ">") return a > b ? 1.0 : 0.0;
    return a >= b ? 1.0 : 0.0;  // ">="
  }

  static bool IsComparison(const std::string& op) {
    return op == "==" || op == "!=" || op == "<" || op == "<=" || op == ">" ||
           op == ">=";
  }

  bool EvalBinary(const Node& node, Value* out) {
    Value lhs, rhs;
    if (!Eval(*node.args[0], &lhs) || !Eval(*node.args[1], &rhs)) return false;
    if (lhs.kind == Value::kRange || rhs.kind == Value::kRange) {
      return Fail("range vectors cannot appear in binary operations");
    }
    const bool cmp = IsComparison(node.op);
    if (lhs.kind == Value::kScalar && rhs.kind == Value::kScalar) {
      out->kind = Value::kScalar;
      out->scalar = Apply(node.op, lhs.scalar, rhs.scalar);
      return true;
    }
    out->kind = Value::kVector;
    out->series.clear();
    if (lhs.kind == Value::kVector && rhs.kind == Value::kVector) {
      // Join on exact label-set equality.
      std::map<std::string, const Ser*> right;
      for (const Ser& ser : rhs.series) right[ser.key] = &ser;
      for (const Ser& ser : lhs.series) {
        const auto it = right.find(ser.key);
        if (it == right.end()) continue;
        const double a = ser.samples[0].value;
        const double b = it->second->samples[0].value;
        if (cmp) {
          if (Apply(node.op, a, b) == 0.0) continue;
          Ser result = ser;  // comparisons keep the left value
          out->series.push_back(std::move(result));
        } else {
          Ser result;
          result.labels = ser.labels;
          result.key = ser.key;
          result.samples.push_back({t, Apply(node.op, a, b)});
          out->series.push_back(std::move(result));
        }
      }
      return true;
    }
    // vector (op) scalar, either side.
    const bool vector_left = lhs.kind == Value::kVector;
    const Value& vec = vector_left ? lhs : rhs;
    const double scalar = vector_left ? rhs.scalar : lhs.scalar;
    for (const Ser& ser : vec.series) {
      const double v = ser.samples[0].value;
      const double a = vector_left ? v : scalar;
      const double b = vector_left ? scalar : v;
      if (cmp) {
        if (Apply(node.op, a, b) == 0.0) continue;
        Ser result = ser;  // filter: keep the vector element's value
        out->series.push_back(std::move(result));
      } else {
        Ser result;
        result.labels = ser.labels;
        result.key = ser.key;
        result.samples.push_back({t, Apply(node.op, a, b)});
        out->series.push_back(std::move(result));
      }
    }
    return true;
  }

  bool Eval(const Node& node, Value* out) {
    switch (node.kind) {
      case Node::kNumber:
        out->kind = Value::kScalar;
        out->scalar = node.number;
        return true;
      case Node::kSelector:
        return EvalSelector(node, out);
      case Node::kCall:
        if (node.func == "histogram_quantile") {
          return EvalHistogramQuantile(node, out);
        }
        if (node.args.size() != 1) {
          return Fail(node.func + "() takes one argument");
        }
        return EvalOverTime(node, out);
      case Node::kAgg:
        return EvalAgg(node, out);
      case Node::kBinary:
        return EvalBinary(node, out);
      case Node::kNeg: {
        Value arg;
        if (!Eval(*node.args[0], &arg)) return false;
        if (arg.kind == Value::kScalar) {
          out->kind = Value::kScalar;
          out->scalar = -arg.scalar;
          return true;
        }
        if (arg.kind != Value::kVector) {
          return Fail("cannot negate a range vector");
        }
        *out = std::move(arg);
        for (Ser& ser : out->series) ser.samples[0].value = -ser.samples[0].value;
        return true;
      }
    }
    return Fail("internal: unknown node kind");
  }
};

NodePtr ParseExpression(const std::string& expr, std::string* error) {
  Lexer lexer;
  lexer.src = expr;
  std::vector<Token> tokens = lexer.Run();
  if (!lexer.error.empty()) {
    *error = "parse error: " + lexer.error;
    return nullptr;
  }
  Parser parser;
  parser.tokens = std::move(tokens);
  NodePtr root = parser.ParseExpr();
  if (!root) {
    *error = parser.error.empty() ? "parse error" : parser.error;
    return nullptr;
  }
  if (parser.Peek().kind != Token::kEnd) {
    parser.Fail("trailing input");
    *error = parser.error;
    return nullptr;
  }
  return root;
}

QueryResult FromValue(const Value& value, double t) {
  QueryResult result;
  result.ok = true;
  switch (value.kind) {
    case Value::kScalar: {
      result.type = QueryResult::Type::kScalar;
      QuerySeries series;
      series.points.push_back({t, value.scalar});
      result.series.push_back(std::move(series));
      break;
    }
    case Value::kVector:
      result.type = QueryResult::Type::kVector;
      for (const Ser& ser : value.series) {
        QuerySeries series;
        series.labels = ser.labels;
        series.label_key = ser.key;
        series.points = ser.samples;
        result.series.push_back(std::move(series));
      }
      break;
    case Value::kRange:
      result.type = QueryResult::Type::kMatrix;
      for (const Ser& ser : value.series) {
        QuerySeries series;
        series.labels = ser.labels;
        series.label_key = ser.key;
        series.points = ser.samples;
        result.series.push_back(std::move(series));
      }
      break;
  }
  return result;
}

}  // namespace

QueryResult EvalInstant(const Tsdb& tsdb, const std::string& expr, double t_s,
                        const EvalOptions& options) {
  QueryResult result;
  std::string error;
  const NodePtr root = ParseExpression(expr, &error);
  if (!root) {
    result.error = error;
    return result;
  }
  Evaluator evaluator{tsdb, options, t_s, {}};
  Value value;
  if (!evaluator.Eval(*root, &value)) {
    result.error = evaluator.error;
    return result;
  }
  return FromValue(value, t_s);
}

QueryResult EvalRange(const Tsdb& tsdb, const std::string& expr,
                      double start_s, double end_s, double step_s,
                      const EvalOptions& options) {
  QueryResult result;
  if (step_s <= 0.0 || end_s < start_s) {
    result.error = "bad range: need start <= end and step > 0";
    return result;
  }
  std::string error;
  const NodePtr root = ParseExpression(expr, &error);
  if (!root) {
    result.error = error;
    return result;
  }
  result.ok = true;
  result.type = QueryResult::Type::kMatrix;
  std::map<std::string, QuerySeries> merged;
  std::vector<std::string> order;  // label keys in first-seen... (sorted below)
  const double epsilon = step_s * 1e-9;
  for (double t = start_s; t <= end_s + epsilon; t += step_s) {
    Evaluator evaluator{tsdb, options, t, {}};
    Value value;
    if (!evaluator.Eval(*root, &value)) {
      result.ok = false;
      result.series.clear();
      result.error = evaluator.error;
      return result;
    }
    if (value.kind == Value::kRange) {
      result.ok = false;
      result.series.clear();
      result.error = "range query needs a scalar or instant-vector "
                     "expression";
      return result;
    }
    if (value.kind == Value::kScalar) {
      merged[""].points.push_back({t, value.scalar});
      continue;
    }
    for (const Ser& ser : value.series) {
      QuerySeries& series = merged[ser.key];
      if (series.points.empty()) {
        series.labels = ser.labels;
        series.label_key = ser.key;
      }
      series.points.push_back({t, ser.samples[0].value});
    }
  }
  for (auto& [key, series] : merged) result.series.push_back(std::move(series));
  return result;
}

std::string QueryResultJson(const QueryResult& result) {
  if (!result.ok) {
    return "{\"status\":\"error\",\"errorType\":\"bad_data\",\"error\":\"" +
           JsonEscape(result.error) + "\"}\n";
  }
  const auto labels_json = [](const Labels& labels) {
    std::string out = "{";
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"" + JsonEscape(labels[i].first) + "\":\"" +
             JsonEscape(labels[i].second) + "\"";
    }
    return out + "}";
  };
  const auto point_json = [](const TsdbSample& sample) {
    return "[" + Num(sample.t_s) + ",\"" + Num(sample.value) + "\"]";
  };
  std::string out = "{\"status\":\"success\",\"data\":{\"resultType\":\"";
  switch (result.type) {
    case QueryResult::Type::kScalar: {
      out += "scalar\",\"result\":";
      out += point_json(result.series[0].points[0]);
      out += "}}\n";
      return out;
    }
    case QueryResult::Type::kVector: {
      out += "vector\",\"result\":[";
      for (std::size_t i = 0; i < result.series.size(); ++i) {
        if (i > 0) out += ",";
        out += "{\"metric\":" + labels_json(result.series[i].labels) +
               ",\"value\":" + point_json(result.series[i].points[0]) + "}";
      }
      out += "]}}\n";
      return out;
    }
    case QueryResult::Type::kMatrix: {
      out += "matrix\",\"result\":[";
      for (std::size_t i = 0; i < result.series.size(); ++i) {
        if (i > 0) out += ",";
        out += "{\"metric\":" + labels_json(result.series[i].labels) +
               ",\"values\":[";
        for (std::size_t p = 0; p < result.series[i].points.size(); ++p) {
          if (p > 0) out += ",";
          out += point_json(result.series[i].points[p]);
        }
        out += "]}";
      }
      out += "]}}\n";
      return out;
    }
  }
  return out;
}

}  // namespace topfull::obs

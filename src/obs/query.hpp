// PromQL-subset evaluator over the embedded TSDB (tsdb.hpp).
//
// Supported grammar (recursive descent, Prometheus precedence):
//
//   expr        := comparison
//   comparison  := additive (("=="|"!="|"<"|"<="|">"|">=") additive)?
//   additive    := multiplicative (("+"|"-") multiplicative)*
//   multiplicative := unary (("*"|"/") unary)*
//   unary       := "-" unary | primary
//   primary     := number | "(" expr ")" | aggregation | function | selector
//   aggregation := ("sum"|"avg"|"min"|"max") by? "(" expr ")" by?
//   by          := "by" "(" label ("," label)* ")"
//   function    := name "(" expr ("," expr)* ")"
//                  with name in rate, increase, avg_over_time,
//                  min_over_time, max_over_time, sum_over_time,
//                  histogram_quantile
//   selector    := metric ("{" matcher ("," matcher)* "}")? ("[" dur "]")?
//   matcher     := label ("="|"!="|"=~"|"!~") "quoted"
//   dur         := number ("s"|"m"|"h")?      (bare numbers are seconds)
//
// Semantics (documented deltas from Prometheus, all in the direction of
// determinism and small-sample honesty):
//   * An instant selector returns the most recent sample within
//     `EvalOptions::lookback_s` of the evaluation time.
//   * `rate(m[w])` needs >= 2 samples in (t-w, t]; `increase` sums
//     per-step deltas with counter resets compensated (a negative delta
//     contributes the new value), and `rate` divides by the *covered*
//     sample span, not the nominal window — no extrapolation, no startup
//     dip while the window fills.
//   * `histogram_quantile(phi, v)` groups by labels-minus-`le`, linearly
//     interpolates inside the owning bucket, and answers the highest
//     finite bound when the rank lands in `+Inf` — the documented error
//     vs obs::Histogram::Percentile is one sub-bucket width.
//   * Vector-vector binary ops join on exact label-set equality;
//     comparisons filter (vector) or yield 0/1 (scalar).
//   * Output series are sorted by canonical label key; the metric name is
//     dropped from result label sets (like Prometheus after any function).
//
// Evaluation only ever looks backward from the evaluation timestamp, so
// re-evaluating a time T after later samples arrived gives the identical
// answer — the property the sharded rule-evaluation discipline relies on.
#pragma once

#include <string>
#include <vector>

#include "obs/tsdb.hpp"

namespace topfull::obs {

struct EvalOptions {
  /// Instant-selector staleness horizon: samples older than this many
  /// seconds before the evaluation time are invisible.
  double lookback_s = 10.0;
};

/// One output series: labels plus either a single (instant) or many
/// (range-query) points.
struct QuerySeries {
  Labels labels;
  std::string label_key;
  std::vector<TsdbSample> points;
};

struct QueryResult {
  bool ok = false;
  std::string error;  ///< parse/eval failure, with expression offset
  enum class Type { kScalar, kVector, kMatrix } type = Type::kVector;
  /// kScalar: one unlabeled series with one point. kVector: one point per
  /// series. kMatrix: step-aligned points per series.
  std::vector<QuerySeries> series;
};

/// Evaluates `expr` at the single timestamp `t_s`.
QueryResult EvalInstant(const Tsdb& tsdb, const std::string& expr, double t_s,
                        const EvalOptions& options = {});

/// Evaluates `expr` at every step in [start_s, end_s] (inclusive,
/// `step_s` apart), merging per-series points into a matrix.
QueryResult EvalRange(const Tsdb& tsdb, const std::string& expr,
                      double start_s, double end_s, double step_s,
                      const EvalOptions& options = {});

/// Renders a result in the Prometheus HTTP API shape:
/// {"status":"success","data":{"resultType":...,"result":[...]}} with
/// values as strings, or {"status":"error","error":...} for failures.
std::string QueryResultJson(const QueryResult& result);

}  // namespace topfull::obs

#include "obs/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "core/controller.hpp"
#include "obs/export.hpp"

namespace topfull::obs {

namespace {

std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string U64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string Quote(const std::string& s) { return "\"" + JsonEscape(s) + "\""; }

/// Latency/delay digest of a registry histogram as a JSON object.
std::string HistogramJson(const Histogram* h) {
  if (h == nullptr) {
    return "{\"count\":0,\"mean\":0,\"p50\":0,\"p95\":0,\"p99\":0,\"max\":0}";
  }
  return "{\"count\":" + U64(h->count()) + ",\"mean\":" + Num(h->Mean()) +
         ",\"p50\":" + Num(h->Percentile(50)) + ",\"p95\":" + Num(h->Percentile(95)) +
         ",\"p99\":" + Num(h->Percentile(99)) + ",\"max\":" + Num(h->max()) + "}";
}

const Histogram* FindHistogram(const MetricsRegistry& registry,
                               const std::string& name, const Labels& labels) {
  const MetricsRegistry::Cell* cell = registry.Find(name, labels);
  return cell != nullptr ? cell->histogram.get() : nullptr;
}

double FindGauge(const MetricsRegistry& registry, const std::string& name,
                 const Labels& labels) {
  const MetricsRegistry::Cell* cell = registry.Find(name, labels);
  return cell != nullptr ? cell->gauge.value() : 0.0;
}

std::uint64_t FindCounter(const MetricsRegistry& registry, const std::string& name,
                          const Labels& labels = {}) {
  const MetricsRegistry::Cell* cell = registry.Find(name, labels);
  return cell != nullptr ? cell->counter.value() : 0;
}

std::string CounterFields(const sim::ApiTotals& t) {
  return "\"offered\":" + U64(t.offered) + ",\"admitted\":" + U64(t.admitted) +
         ",\"rejected_entry\":" + U64(t.rejected_entry) + ",\"rejected_service\":" +
         U64(t.rejected_service) + ",\"completed\":" + U64(t.completed) +
         ",\"good\":" + U64(t.good);
}

// --- HTML helpers ------------------------------------------------------------

std::string HtmlEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

constexpr const char* kPalette[] = {"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728",
                                    "#9467bd", "#8c564b", "#e377c2", "#7f7f7f",
                                    "#bcbd22", "#17becf"};
constexpr int kPaletteSize = 10;

const char* EventColor(SloEventType type) {
  switch (type) {
    case SloEventType::kSloBurnStart: return "#d62728";
    case SloEventType::kSloBurnEnd: return "#2ca02c";
    case SloEventType::kOverloadOnset: return "#ff7f0e";
    case SloEventType::kOverloadClear: return "#1f77b4";
    case SloEventType::kStarvationStart: return "#9467bd";
    case SloEventType::kStarvationEnd: return "#8c564b";
    case SloEventType::kOscillation: return "#e377c2";
  }
  return "#7f7f7f";
}

struct Series {
  std::string name;
  std::string color;
  std::vector<double> ys;
};

/// One inline SVG line chart: series over a shared x axis, optional SLO
/// event annotation lines, optional horizontal threshold line.
std::string SvgChart(const std::string& title, const std::string& y_label,
                     const std::vector<double>& xs, const std::vector<Series>& series,
                     const std::vector<SloEvent>* events, double threshold = -1.0) {
  constexpr double kW = 940, kH = 240;
  constexpr double kLeft = 56, kRight = 12, kTop = 14, kBottom = 26;
  const double plot_w = kW - kLeft - kRight;
  const double plot_h = kH - kTop - kBottom;

  double y_max = threshold > 0 ? threshold : 0.0;
  for (const Series& s : series) {
    for (const double y : s.ys) y_max = std::max(y_max, y);
  }
  if (y_max <= 0.0) y_max = 1.0;
  y_max *= 1.05;
  const double x_min = xs.empty() ? 0.0 : xs.front();
  const double x_max = xs.empty() || xs.back() <= x_min ? x_min + 1.0 : xs.back();

  const auto px = [&](double x) {
    return kLeft + (x - x_min) / (x_max - x_min) * plot_w;
  };
  const auto py = [&](double y) { return kTop + (1.0 - y / y_max) * plot_h; };

  std::string svg = "<h3>" + HtmlEscape(title) + "</h3>\n<div class=\"legend\">";
  for (const Series& s : series) {
    svg += "<span><i style=\"background:" + s.color + "\"></i>" +
           HtmlEscape(s.name) + "</span> ";
  }
  svg += "</div>\n<svg viewBox=\"0 0 " + Num(kW) + " " + Num(kH) +
         "\" class=\"chart\">\n";
  // Axes + gridlines at 0, 1/2 and max.
  for (const double frac : {0.0, 0.5, 1.0}) {
    const double y = py(frac * y_max / 1.05);
    svg += "<line x1=\"" + Num(kLeft) + "\" y1=\"" + Num(y) + "\" x2=\"" +
           Num(kW - kRight) + "\" y2=\"" + Num(y) +
           "\" stroke=\"#ddd\" stroke-width=\"1\"/>\n";
    svg += "<text x=\"" + Num(kLeft - 6) + "\" y=\"" + Num(y + 4) +
           "\" text-anchor=\"end\" class=\"tick\">" + Num(frac * y_max / 1.05) +
           "</text>\n";
  }
  svg += "<text x=\"" + Num(kLeft) + "\" y=\"" + Num(kH - 6) +
         "\" class=\"tick\">" + Num(x_min) + "s</text>\n";
  svg += "<text x=\"" + Num(kW - kRight) + "\" y=\"" + Num(kH - 6) +
         "\" text-anchor=\"end\" class=\"tick\">" + Num(x_max) + "s</text>\n";
  svg += "<text x=\"12\" y=\"" + Num(kTop + 10) + "\" class=\"tick\">" +
         HtmlEscape(y_label) + "</text>\n";

  if (threshold > 0) {
    svg += "<line x1=\"" + Num(kLeft) + "\" y1=\"" + Num(py(threshold)) +
           "\" x2=\"" + Num(kW - kRight) + "\" y2=\"" + Num(py(threshold)) +
           "\" stroke=\"#d62728\" stroke-width=\"1\" stroke-dasharray=\"6,4\"/>\n";
  }

  // Event annotation lines behind the series.
  if (events != nullptr) {
    for (const SloEvent& e : *events) {
      if (e.t_s < x_min || e.t_s > x_max) continue;
      svg += "<line x1=\"" + Num(px(e.t_s)) + "\" y1=\"" + Num(kTop) + "\" x2=\"" +
             Num(px(e.t_s)) + "\" y2=\"" + Num(kTop + plot_h) + "\" stroke=\"" +
             EventColor(e.type) +
             "\" stroke-width=\"1.5\" stroke-dasharray=\"2,3\" opacity=\"0.8\">"
             "<title>" +
             HtmlEscape(std::string(SloEventTypeName(e.type)) + " " + e.subject +
                        " @ " + Num(e.t_s) + "s (value " + Num(e.value) + ")") +
             "</title></line>\n";
    }
  }

  for (const Series& s : series) {
    if (s.ys.empty()) continue;
    std::string points;
    for (std::size_t i = 0; i < s.ys.size() && i < xs.size(); ++i) {
      points += Num(px(xs[i])) + "," + Num(py(s.ys[i])) + " ";
    }
    svg += "<polyline fill=\"none\" stroke=\"" + s.color +
           "\" stroke-width=\"1.5\" points=\"" + points + "\"/>\n";
  }
  svg += "</svg>\n";
  return svg;
}

std::vector<std::string> SplitPath(const std::string& path) {
  std::vector<std::string> segments;
  std::size_t start = 0;
  while (true) {
    const std::size_t dot = path.find('.', start);
    if (dot == std::string::npos) {
      segments.push_back(path.substr(start));
      return segments;
    }
    segments.push_back(path.substr(start, dot - start));
    start = dot + 1;
  }
}

bool Contains(const std::string& s, const char* needle) {
  return s.find(needle) != std::string::npos;
}

}  // namespace

std::string BuildRunSummaryJson(const ReportInputs& inputs) {
  const sim::Application& app = *inputs.app;
  const MetricsRegistry& registry = app.metrics_registry();
  const auto& totals = app.metrics().Totals();

  std::string out = "{\n";
  out += "\"schema\":\"topfull.run_summary.v1\",\n";
  out += "\"label\":" + Quote(inputs.label) + ",\n";
  out += "\"app\":" + Quote(app.name()) + ",\n";
  out += "\"sim_end_s\":" + Num(app.metrics().Latest().t_end_s) + ",\n";
  out += "\"slo_s\":" + Num(ToSeconds(app.metrics().slo())) + ",\n";
  out += "\"windows\":" + U64(app.metrics().Timeline().size()) + ",\n";

  // Whole-run totals; latency digest merged across the per-API histograms
  // (all share one bucket layout, taken from the first one found).
  sim::ApiTotals sum;
  const Histogram* first_latency = nullptr;
  for (sim::ApiId a = 0; a < app.NumApis() && first_latency == nullptr; ++a) {
    first_latency = FindHistogram(registry, "topfull_request_latency_ms",
                                  {{"api", app.api(a).name()}});
  }
  Histogram merged_latency{first_latency != nullptr ? first_latency->config()
                                                    : HistogramConfig{}};
  for (sim::ApiId a = 0; a < app.NumApis(); ++a) {
    const sim::ApiTotals& t = totals[a];
    sum.offered += t.offered;
    sum.admitted += t.admitted;
    sum.rejected_entry += t.rejected_entry;
    sum.rejected_service += t.rejected_service;
    sum.completed += t.completed;
    sum.good += t.good;
    const Histogram* h = FindHistogram(registry, "topfull_request_latency_ms",
                                       {{"api", app.api(a).name()}});
    if (h != nullptr) merged_latency.Merge(*h);
  }
  out += "\"total\":{" + CounterFields(sum) +
         ",\"goodput_rps\":" + Num(app.metrics().AvgTotalGoodput(0.0)) +
         ",\"latency_ms\":" + HistogramJson(&merged_latency) + "},\n";

  out += "\"apis\":{";
  for (sim::ApiId a = 0; a < app.NumApis(); ++a) {
    if (a > 0) out += ",";
    const std::string& name = app.api(a).name();
    out += "\n" + Quote(name) + ":{" + CounterFields(totals[a]) +
           ",\"goodput_rps\":" + Num(app.metrics().AvgGoodput(a, 0.0)) +
           ",\"latency_ms\":" +
           HistogramJson(FindHistogram(registry, "topfull_request_latency_ms",
                                       {{"api", name}})) +
           "}";
  }
  out += "},\n";

  out += "\"services\":{";
  for (int s = 0; s < app.NumServices(); ++s) {
    if (s > 0) out += ",";
    const std::string& name = app.service(s).name();
    const Labels labels{{"service", name}};
    out += "\n" + Quote(name) + ":{\"running_pods\":" +
           Num(FindGauge(registry, "topfull_service_running_pods", labels)) +
           ",\"cpu_utilization\":" +
           Num(FindGauge(registry, "topfull_service_cpu_utilization", labels)) +
           ",\"capacity_rps\":" +
           Num(FindGauge(registry, "topfull_service_capacity_rps", labels)) +
           ",\"queue_delay_ms\":" +
           HistogramJson(
               FindHistogram(registry, "topfull_service_queue_delay_ms", labels)) +
           "}";
  }
  out += "},\n";

  if (inputs.controller != nullptr) {
    out += "\"controller\":{\"ticks\":" +
           U64(FindCounter(registry, "topfull_controller_ticks_total")) +
           ",\"decisions\":" + U64(inputs.controller->Decisions()) +
           ",\"rate_limits\":{";
    for (sim::ApiId a = 0; a < app.NumApis(); ++a) {
      if (a > 0) out += ",";
      const auto limit = inputs.controller->RateLimit(a);
      out += Quote(app.api(a).name()) + ":" + (limit ? Num(*limit) : "null");
    }
    out += "}},\n";
  }

  if (inputs.monitor != nullptr) {
    out += "\"events\":{\"total\":" +
           U64(static_cast<std::uint64_t>(inputs.monitor->events().size())) +
           ",\"by_type\":{";
    constexpr SloEventType kAllTypes[] = {
        SloEventType::kSloBurnStart,    SloEventType::kSloBurnEnd,
        SloEventType::kOverloadOnset,   SloEventType::kOverloadClear,
        SloEventType::kStarvationStart, SloEventType::kStarvationEnd,
        SloEventType::kOscillation};
    bool first = true;
    for (const SloEventType type : kAllTypes) {
      if (!first) out += ",";
      first = false;
      out += Quote(SloEventTypeName(type)) + ":" + U64(inputs.monitor->CountOf(type));
    }
    out += "},\"list\":[";
    for (std::size_t i = 0; i < inputs.monitor->events().size(); ++i) {
      const SloEvent& e = inputs.monitor->events()[i];
      if (i > 0) out += ",";
      out += "\n{\"t_s\":" + Num(e.t_s) + ",\"event\":" +
             Quote(SloEventTypeName(e.type)) + ",\"subject\":" + Quote(e.subject) +
             ",\"value\":" + Num(e.value) + ",\"threshold\":" + Num(e.threshold) +
             "}";
    }
    out += "]},\n";
  }

  if (inputs.faults != nullptr) {
    std::uint64_t applied = 0, reverted = 0, restarts = 0;
    for (const fault::FaultRecord& r : *inputs.faults) {
      switch (r.action) {
        case fault::FaultRecord::Action::kApply: ++applied; break;
        case fault::FaultRecord::Action::kRevert: ++reverted; break;
        case fault::FaultRecord::Action::kRestart: ++restarts; break;
        case fault::FaultRecord::Action::kSkipped: break;
      }
    }
    out += "\"faults\":{\"applied\":" + U64(applied) + ",\"reverted\":" +
           U64(reverted) + ",\"restarts\":" + U64(restarts) + ",\"records\":" +
           U64(static_cast<std::uint64_t>(inputs.faults->size())) + "},\n";
  }

  out += "\"registry_families\":" +
         U64(static_cast<std::uint64_t>(registry.FamilyCount())) + "\n}\n";
  return out;
}

std::string BuildHtmlReport(const ReportInputs& inputs) {
  const sim::Application& app = *inputs.app;
  const MetricsRegistry& registry = app.metrics_registry();
  const auto& timeline = app.metrics().Timeline();
  const std::vector<SloEvent>* events =
      inputs.monitor != nullptr ? &inputs.monitor->events() : nullptr;

  std::string html =
      "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n<title>" +
      HtmlEscape(inputs.label.empty() ? app.name() : inputs.label) +
      " — TopFull run report</title>\n<style>\n"
      "body{font:14px/1.45 system-ui,sans-serif;margin:24px auto;max-width:980px;"
      "color:#222}\n"
      "h1{font-size:22px}h2{font-size:18px;margin-top:28px;border-bottom:1px solid "
      "#ddd;padding-bottom:4px}h3{font-size:15px;margin-bottom:2px}\n"
      "table{border-collapse:collapse;margin:8px 0}td,th{border:1px solid "
      "#ccc;padding:3px 9px;text-align:right}th{background:#f3f3f3}\n"
      "td:first-child,th:first-child{text-align:left}\n"
      ".chart{width:100%;height:auto;background:#fff;border:1px solid #eee}\n"
      ".tick{font-size:11px;fill:#666}\n"
      ".legend span{margin-right:14px;font-size:12px}.legend "
      "i{display:inline-block;width:10px;height:10px;margin-right:4px}\n"
      ".meta{color:#555}\n</style></head><body>\n";

  html += "<h1>TopFull run report — " +
          HtmlEscape(inputs.label.empty() ? app.name() : inputs.label) + "</h1>\n";
  html += "<p class=\"meta\">app <b>" + HtmlEscape(app.name()) + "</b> · " +
          U64(static_cast<std::uint64_t>(app.NumApis())) + " APIs · " +
          U64(static_cast<std::uint64_t>(app.NumServices())) + " services · " +
          Num(app.metrics().Latest().t_end_s) + "s simulated · SLO " +
          Num(ToSeconds(app.metrics().slo())) + "s</p>\n";

  // --- Goodput timeline with SLO event annotations ---------------------------
  std::vector<double> xs;
  xs.reserve(timeline.size());
  Series offered{"offered", "#bbbbbb", {}};
  Series goodput{"goodput", "#2ca02c", {}};
  Series completed{"completed", "#1f77b4", {}};
  for (const sim::Snapshot& snap : timeline) {
    xs.push_back(snap.t_end_s);
    double off = 0, good = 0, comp = 0;
    for (const sim::ApiWindow& w : snap.apis) {
      off += static_cast<double>(w.offered);
      good += static_cast<double>(w.good);
      comp += static_cast<double>(w.completed);
    }
    offered.ys.push_back(off);
    goodput.ys.push_back(good);
    completed.ys.push_back(comp);
  }
  html += "<h2>Throughput</h2>\n";
  html += SvgChart("Total offered / completed / goodput per window (rps)", "rps",
                   xs, {offered, completed, goodput}, events);

  // --- Queueing delay per service --------------------------------------------
  std::vector<Series> delay_series;
  for (int s = 0; s < app.NumServices(); ++s) {
    Series series{app.service(s).name(), kPalette[s % kPaletteSize], {}};
    for (const sim::Snapshot& snap : timeline) {
      series.ys.push_back(
          s < static_cast<int>(snap.services.size())
              ? 1e3 * snap.services[static_cast<std::size_t>(s)].avg_queue_delay_s
              : 0.0);
    }
    delay_series.push_back(std::move(series));
  }
  const double overload_threshold_ms =
      inputs.monitor != nullptr
          ? 1e3 * inputs.monitor->config().overload_queue_delay_s
          : -1.0;
  html += "<h2>Queueing delay</h2>\n";
  html += SvgChart("Average queueing delay per service (ms, dashed = overload "
                   "threshold)",
                   "ms", xs, delay_series, events, overload_threshold_ms);

  // --- Per-API table ----------------------------------------------------------
  html += "<h2>APIs</h2>\n<table><tr><th>API</th><th>offered</th><th>admitted</th>"
          "<th>rejected</th><th>completed</th><th>good</th><th>goodput "
          "(rps)</th><th>p50 (ms)</th><th>p95 (ms)</th><th>p99 (ms)</th></tr>\n";
  const auto& totals = app.metrics().Totals();
  for (sim::ApiId a = 0; a < app.NumApis(); ++a) {
    const sim::ApiTotals& t = totals[a];
    const Histogram* h = FindHistogram(registry, "topfull_request_latency_ms",
                                       {{"api", app.api(a).name()}});
    html += "<tr><td>" + HtmlEscape(app.api(a).name()) + "</td><td>" +
            U64(t.offered) + "</td><td>" + U64(t.admitted) + "</td><td>" +
            U64(t.rejected_entry + t.rejected_service) + "</td><td>" +
            U64(t.completed) + "</td><td>" + U64(t.good) + "</td><td>" +
            Num(app.metrics().AvgGoodput(a, 0.0)) + "</td><td>" +
            (h != nullptr ? Num(h->Percentile(50)) : "-") + "</td><td>" +
            (h != nullptr ? Num(h->Percentile(95)) : "-") + "</td><td>" +
            (h != nullptr ? Num(h->Percentile(99)) : "-") + "</td></tr>\n";
  }
  html += "</table>\n";

  // --- Per-service table ------------------------------------------------------
  html += "<h2>Services</h2>\n<table><tr><th>Service</th><th>pods</th><th>cpu</th>"
          "<th>capacity (rps)</th><th>queue delay p95 (ms)</th><th>queue delay max "
          "(ms)</th></tr>\n";
  for (int s = 0; s < app.NumServices(); ++s) {
    const Labels labels{{"service", app.service(s).name()}};
    const Histogram* h =
        FindHistogram(registry, "topfull_service_queue_delay_ms", labels);
    html += "<tr><td>" + HtmlEscape(app.service(s).name()) + "</td><td>" +
            Num(FindGauge(registry, "topfull_service_running_pods", labels)) +
            "</td><td>" +
            Num(FindGauge(registry, "topfull_service_cpu_utilization", labels)) +
            "</td><td>" +
            Num(FindGauge(registry, "topfull_service_capacity_rps", labels)) +
            "</td><td>" + (h != nullptr ? Num(h->Percentile(95)) : "-") +
            "</td><td>" + (h != nullptr ? Num(h->max()) : "-") + "</td></tr>\n";
  }
  html += "</table>\n";

  // --- SLO events -------------------------------------------------------------
  if (events != nullptr) {
    html += "<h2>SLO / overload events (" +
            U64(static_cast<std::uint64_t>(events->size())) + ")</h2>\n";
    if (events->empty()) {
      html += "<p class=\"meta\">No events — the run stayed inside its "
              "SLO/overload envelopes.</p>\n";
    } else {
      html += "<table><tr><th>t (s)</th><th>event</th><th>subject</th>"
              "<th>value</th><th>threshold</th></tr>\n";
      for (const SloEvent& e : *events) {
        html += "<tr><td>" + Num(e.t_s) + "</td><td><span style=\"color:" +
                EventColor(e.type) + "\">&#9632;</span> " + SloEventTypeName(e.type) +
                "</td><td>" + HtmlEscape(e.subject) + "</td><td>" + Num(e.value) +
                "</td><td>" + Num(e.threshold) + "</td></tr>\n";
      }
      html += "</table>\n";
    }
  }

  // --- Faults -----------------------------------------------------------------
  if (inputs.faults != nullptr && !inputs.faults->empty()) {
    html += "<h2>Injected faults (" +
            U64(static_cast<std::uint64_t>(inputs.faults->size())) +
            " records)</h2>\n<table><tr><th>t (s)</th><th>fault</th><th>action</th>"
            "<th>service</th><th>severity</th><th>count</th></tr>\n";
    for (const fault::FaultRecord& r : *inputs.faults) {
      html += "<tr><td>" + Num(ToSeconds(r.at)) + "</td><td>" +
              fault::FaultTypeName(r.type) + "</td><td>" +
              fault::FaultActionName(r.action) + "</td><td>" +
              HtmlEscape(r.service) + "</td><td>" + Num(r.severity) + "</td><td>" +
              U64(static_cast<std::uint64_t>(r.count)) + "</td></tr>\n";
    }
    html += "</table>\n";
  }

  // --- Controller -------------------------------------------------------------
  if (inputs.controller != nullptr) {
    html += "<h2>Controller</h2>\n<p class=\"meta\">" +
            U64(FindCounter(registry, "topfull_controller_ticks_total")) +
            " ticks · " + U64(inputs.controller->Decisions()) +
            " decisions</p>\n<table><tr><th>API</th><th>final rate limit "
            "(rps)</th></tr>\n";
    for (sim::ApiId a = 0; a < app.NumApis(); ++a) {
      const auto limit = inputs.controller->RateLimit(a);
      html += "<tr><td>" + HtmlEscape(app.api(a).name()) + "</td><td>" +
              (limit ? Num(*limit) : "uncapped") + "</td></tr>\n";
    }
    html += "</table>\n";
  }

  html += "</body></html>\n";
  return html;
}

bool WriteRunSummaryJson(const ReportInputs& inputs, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << BuildRunSummaryJson(inputs);
  return static_cast<bool>(out);
}

bool WriteHtmlReport(const ReportInputs& inputs, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << BuildHtmlReport(inputs);
  return static_cast<bool>(out);
}

// --- Regression diffing ------------------------------------------------------

MetricDirection DirectionOf(const std::string& path) {
  const std::vector<std::string> segments = SplitPath(path);
  const std::string& tail = segments.back();
  const std::string parent =
      segments.size() >= 2 ? segments[segments.size() - 2] : std::string();
  const std::string joined = parent + "." + tail;
  if (Contains(joined, "latency") || Contains(joined, "queue_delay") ||
      Contains(joined, "rejected") || Contains(joined, "dropped") ||
      Contains(joined, "restart") || Contains(joined, "burn")) {
    return MetricDirection::kLowerBetter;
  }
  if (Contains(joined, "goodput") || Contains(joined, "capacity") ||
      tail == "good" || tail == "completed" || tail == "admitted") {
    return MetricDirection::kHigherBetter;
  }
  return MetricDirection::kNeutral;
}

CompareResult CompareRunSummaries(const JsonValue& baseline,
                                  const JsonValue& candidate,
                                  const CompareOptions& options) {
  std::map<std::string, double> base_metrics, cand_metrics;
  FlattenNumbers(baseline, "", &base_metrics);
  FlattenNumbers(candidate, "", &cand_metrics);
  const auto skip = [](const std::string& path) {
    // Individual events shift freely between runs; totals are compared via
    // events.by_type.*.
    return path.rfind("events.list.", 0) == 0;
  };

  CompareResult result;
  for (const auto& [path, base_value] : base_metrics) {
    if (skip(path)) continue;
    const auto it = cand_metrics.find(path);
    if (it == cand_metrics.end()) {
      result.missing.push_back(path);
      continue;
    }
    const double cand_value = it->second;
    const double tolerance =
        std::max(options.abs_tol, options.rel_tol * std::fabs(base_value));
    if (std::fabs(cand_value - base_value) <= tolerance) continue;
    MetricDiff diff;
    diff.path = path;
    diff.baseline = base_value;
    diff.candidate = cand_value;
    diff.direction = DirectionOf(path);
    const double worse = diff.direction == MetricDirection::kHigherBetter
                             ? base_value - cand_value
                             : cand_value - base_value;
    diff.regression = diff.direction != MetricDirection::kNeutral && worse > 0;
    if (diff.regression) ++result.regressions;
    result.changed.push_back(std::move(diff));
  }
  for (const auto& [path, value] : cand_metrics) {
    if (skip(path)) continue;
    if (base_metrics.find(path) == base_metrics.end()) result.added.push_back(path);
  }
  return result;
}

std::string FormatCompareResult(const CompareResult& result,
                                const CompareOptions& options) {
  std::string out;
  char line[256];
  for (const MetricDiff& diff : result.changed) {
    const char* tag = diff.regression ? "REGRESSION"
                      : diff.direction == MetricDirection::kNeutral
                          ? "change    "
                          : "improved  ";
    const double pct = diff.baseline != 0.0
                           ? 100.0 * (diff.candidate - diff.baseline) /
                                 std::fabs(diff.baseline)
                           : 0.0;
    std::snprintf(line, sizeof(line), "%s %-48s %.6g -> %.6g (%+.2f%%)\n", tag,
                  diff.path.c_str(), diff.baseline, diff.candidate, pct);
    out += line;
  }
  for (const std::string& path : result.missing) {
    out += "MISSING    " + path + " (present in baseline only)\n";
  }
  for (const std::string& path : result.added) {
    out += "added      " + path + " (candidate only)\n";
  }
  std::snprintf(line, sizeof(line),
                "%zu metric(s) changed beyond tolerance (rel %.3g / abs %.3g), "
                "%d regression(s), %zu missing, %zu added\n",
                result.changed.size(), options.rel_tol, options.abs_tol,
                result.regressions, result.missing.size(), result.added.size());
  out += line;
  return out;
}

}  // namespace topfull::obs

// Per-run reports and regression diffing.
//
// - BuildRunSummaryJson: one machine-readable JSON document per run —
//   whole-run totals, per-API counters + latency digests (from the live
//   metrics registry's histograms), per-service gauges, controller totals,
//   SLO monitor events and fault records. The schema is flat enough that
//   FlattenNumbers yields stable dotted metric paths for diffing.
// - BuildHtmlReport: a self-contained HTML page (no external assets) with
//   inline SVG timelines of goodput and queueing delay, SLO/overload event
//   annotations, and the tabular summaries.
// - CompareRunSummaries: per-metric diff of two summaries with
//   per-direction semantics (goodput up = good, latency up = bad) and
//   configurable tolerances; drives `topfull_cli compare`'s exit code.
//
// Everything here is a pure function of simulation state: byte-identical
// output for byte-identical runs.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "obs/decision_log.hpp"
#include "obs/json.hpp"
#include "obs/slo_monitor.hpp"
#include "sim/app.hpp"

namespace topfull::core {
class TopFullController;
}

namespace topfull::obs {

/// Everything a report can draw on. `app` is required; the rest are
/// optional (their sections are omitted when null).
struct ReportInputs {
  const sim::Application* app = nullptr;
  std::string label;
  const core::TopFullController* controller = nullptr;
  const SloMonitor* monitor = nullptr;
  const DecisionLog* decisions = nullptr;
  const std::vector<fault::FaultRecord>* faults = nullptr;
};

/// Renders the machine-readable run summary (schema
/// "topfull.run_summary.v1").
std::string BuildRunSummaryJson(const ReportInputs& inputs);

/// Renders the self-contained HTML report.
std::string BuildHtmlReport(const ReportInputs& inputs);

/// Convenience writers; false on I/O failure.
bool WriteRunSummaryJson(const ReportInputs& inputs, const std::string& path);
bool WriteHtmlReport(const ReportInputs& inputs, const std::string& path);

// --- Regression diffing ------------------------------------------------------

struct CompareOptions {
  /// Relative tolerance: |delta| within rel_tol * |baseline| is noise.
  double rel_tol = 0.05;
  /// Absolute floor below which deltas never count (guards zero baselines).
  double abs_tol = 1e-9;
};

/// How a metric's movement is judged.
enum class MetricDirection { kNeutral, kHigherBetter, kLowerBetter };

/// Direction of a flattened summary path ("total.goodput_rps" is
/// higher-better, "apis.x.latency_ms.p95" lower-better, counters and
/// timestamps neutral). Exposed for tests.
MetricDirection DirectionOf(const std::string& path);

struct MetricDiff {
  std::string path;
  double baseline = 0.0;
  double candidate = 0.0;
  MetricDirection direction = MetricDirection::kNeutral;
  bool regression = false;  ///< moved the bad way, beyond tolerance
};

struct CompareResult {
  /// Metrics whose values differ beyond tolerance, in path order.
  std::vector<MetricDiff> changed;
  /// Paths present only in the baseline / only in the candidate.
  std::vector<std::string> missing;
  std::vector<std::string> added;
  int regressions = 0;

  bool HasRegression() const { return regressions > 0 || !missing.empty(); }
};

/// Diffs two parsed run summaries (per-event "events.list.*" entries are
/// excluded — event totals are compared via "events.by_type.*").
CompareResult CompareRunSummaries(const JsonValue& baseline,
                                  const JsonValue& candidate,
                                  const CompareOptions& options = {});

/// Human-readable diff table for the CLI.
std::string FormatCompareResult(const CompareResult& result,
                                const CompareOptions& options);

}  // namespace topfull::obs

#include "obs/rules.hpp"

#include <cmath>
#include <cstdio>

namespace topfull::obs {

namespace {

std::string Num(double v) {
  // An infinite alert value (e.g. a burn ratio with a zero denominator)
  // must not leak bare "inf" into the JSON body.
  if (!std::isfinite(v)) return std::isnan(v) ? "\"nan\"" : v > 0 ? "\"inf\"" : "\"-inf\"";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

/// The SLO bad-fraction burn expression over one window, as a multiple of
/// the error budget. NaN (no completions in the window) compares false,
/// so the alert stays quiet before traffic.
std::string BurnExpr(double window_s, double budget) {
  const std::string w = Num(window_s) + "s";
  return "(1 - sum(rate(topfull_requests_good_total[" + w +
         "])) / sum(rate(topfull_requests_completed_total[" + w + "]))) / " +
         Num(budget);
}

}  // namespace

const char* AlertStateName(AlertState state) {
  switch (state) {
    case AlertState::kInactive: return "inactive";
    case AlertState::kPending: return "pending";
    case AlertState::kFiring: return "firing";
  }
  return "unknown";
}

void RuleEngine::AddRecording(RecordingRule rule) {
  std::lock_guard<std::mutex> lock(mu_);
  recordings_.push_back(std::move(rule));
}

void RuleEngine::AddAlert(AlertRule rule) {
  std::lock_guard<std::mutex> lock(mu_);
  AlertStatus status;
  status.rule = std::move(rule);
  alerts_.push_back(std::move(status));
}

void RuleEngine::Evaluate(double t_s) {
  std::lock_guard<std::mutex> lock(mu_);
  last_eval_s_ = t_s;

  for (const RecordingRule& rule : recordings_) {
    const QueryResult result = EvalInstant(*tsdb_, rule.expr, t_s, eval_options_);
    if (!result.ok) continue;  // a misconfigured rule must not kill the run
    if (result.type == QueryResult::Type::kScalar) {
      tsdb_->Append(rule.name, {}, MetricType::kGauge, t_s,
                    result.series[0].points[0].value);
    } else if (result.type == QueryResult::Type::kVector) {
      for (const QuerySeries& series : result.series) {
        tsdb_->Append(rule.name, series.labels, MetricType::kGauge, t_s,
                      series.points[0].value);
      }
    }
  }

  for (AlertStatus& alert : alerts_) {
    bool all_true = !alert.rule.exprs.empty();
    double value = 0.0;
    bool have_value = false;
    for (const std::string& expr : alert.rule.exprs) {
      const QueryResult result = EvalInstant(*tsdb_, expr, t_s, eval_options_);
      bool truthy = false;
      if (result.ok && result.type == QueryResult::Type::kScalar) {
        const double v = result.series[0].points[0].value;
        truthy = v != 0.0;  // NaN compares false: stays quiet
        if (!have_value) {
          value = v;
          have_value = true;
        }
      } else if (result.ok && result.type == QueryResult::Type::kVector &&
                 !result.series.empty()) {
        truthy = true;
        if (!have_value) {
          value = result.series[0].points[0].value;
          have_value = true;
        }
      }
      if (!truthy) {
        all_true = false;
        break;
      }
    }

    const auto transition = [this, t_s, &alert](AlertState to) {
      transitions_.push_back(
          {t_s, alert.rule.name, alert.state, to, alert.value});
      alert.state = to;
      alert.since_s = t_s;
    };
    if (have_value) alert.value = value;
    if (all_true) {
      switch (alert.state) {
        case AlertState::kInactive:
          transition(alert.rule.for_s <= 0.0 ? AlertState::kFiring
                                             : AlertState::kPending);
          break;
        case AlertState::kPending:
          if (t_s - alert.since_s >= alert.rule.for_s) {
            transition(AlertState::kFiring);
          }
          break;
        case AlertState::kFiring:
          break;
      }
    } else if (alert.state != AlertState::kInactive) {
      transition(AlertState::kInactive);
    }
  }
}

double RuleEngine::last_eval_s() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_eval_s_;
}

std::string RuleEngine::AlertsJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"status\":\"success\",\"data\":{\"last_eval_s\":" +
                    Num(last_eval_s_) + ",\"alerts\":[";
  for (std::size_t i = 0; i < alerts_.size(); ++i) {
    const AlertStatus& alert = alerts_[i];
    if (i > 0) out += ",";
    out += "{\"name\":\"" + JsonEscape(alert.rule.name) + "\",\"severity\":\"" +
           JsonEscape(alert.rule.severity) + "\",\"for_s\":" +
           Num(alert.rule.for_s) + ",\"state\":\"" +
           AlertStateName(alert.state) + "\",\"since_s\":" +
           Num(alert.since_s) + ",\"value\":" + Num(alert.value) + "}";
  }
  out += "],\"transitions\":[";
  for (std::size_t i = 0; i < transitions_.size(); ++i) {
    const AlertTransition& tr = transitions_[i];
    if (i > 0) out += ",";
    out += "{\"t_s\":" + Num(tr.t_s) + ",\"rule\":\"" + JsonEscape(tr.rule) +
           "\",\"from\":\"" + AlertStateName(tr.from) + "\",\"to\":\"" +
           AlertStateName(tr.to) + "\",\"value\":" + Num(tr.value) + "}";
  }
  out += "]}}\n";
  return out;
}

AlertRule GoodputFloorRule(double floor_rps, double for_s) {
  AlertRule rule;
  rule.name = "goodput_floor_burn";
  rule.exprs = {"sum(rate(topfull_requests_good_total[10s])) < " +
                Num(floor_rps)};
  rule.for_s = for_s;
  rule.severity = "page";
  return rule;
}

std::vector<AlertRule> SloBurnRules(double slo_target, double burn_threshold) {
  const double budget = 1.0 - slo_target;
  std::vector<AlertRule> rules;

  AlertRule fast;
  fast.name = "slo_fast_burn";
  // Multi-window AND: the short window reacts, the longer one confirms.
  fast.exprs = {BurnExpr(5.0, budget) + " > " + Num(burn_threshold),
                BurnExpr(30.0, budget) + " > " + Num(burn_threshold)};
  fast.for_s = 2.0;
  fast.severity = "page";
  rules.push_back(std::move(fast));

  AlertRule slow;
  slow.name = "slo_slow_burn";
  slow.exprs = {BurnExpr(30.0, budget) + " > " + Num(burn_threshold / 2.0),
                BurnExpr(120.0, budget) + " > " + Num(burn_threshold / 2.0)};
  slow.for_s = 15.0;
  slow.severity = "ticket";
  rules.push_back(std::move(slow));
  return rules;
}

}  // namespace topfull::obs

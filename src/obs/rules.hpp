// Recording rules and multi-window burn-rate alert rules over the TSDB.
//
// The engine evaluates at metric-window boundaries (1 Hz sim time by
// default). A recording rule appends its instant-vector result back into
// the store under the rule's name, so later expressions (and /query) can
// build on it. An alert rule carries one or more condition expressions —
// ALL must be true at the evaluation time (the multi-window AND of
// burn-rate alerting: a fast window to react and a slow window to resist
// flapping) — and drives the usual inactive -> pending -> firing state
// machine: pending after the first true evaluation, firing once the
// conditions have held `for_s` seconds, back to inactive on the first
// false one. Every state change is recorded as an AlertTransition
// (sim-time-stamped, deterministic) and merged into the decision JSONL so
// scenario invariants can assert on the alert stream.
//
// "True" for a condition: a comparison/vector expression evaluating to a
// non-empty vector, or a scalar evaluating non-zero. Evaluation is
// strictly backward-looking (see query.hpp), so boundaries may be
// evaluated late — e.g. between sharded rounds — with identical results.
//
// Thread safety: Evaluate and the JSON/state readers lock internally;
// transitions() returns a reference and is for single-threaded use after
// the run (exports, invariant checks).
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "obs/query.hpp"
#include "obs/tsdb.hpp"

namespace topfull::obs {

struct RecordingRule {
  std::string name;  ///< series name the result is recorded under
  std::string expr;
};

struct AlertRule {
  std::string name;
  /// Condition expressions; the alert is eligible only when every one is
  /// true at the evaluation time.
  std::vector<std::string> exprs;
  /// Seconds the conditions must hold before pending becomes firing.
  double for_s = 0.0;
  std::string severity = "page";
};

enum class AlertState { kInactive, kPending, kFiring };
const char* AlertStateName(AlertState state);

struct AlertTransition {
  double t_s = 0.0;
  std::string rule;
  AlertState from = AlertState::kInactive;
  AlertState to = AlertState::kInactive;
  /// The first condition's value at the transition (0 when unavailable).
  double value = 0.0;
};

class RuleEngine {
 public:
  explicit RuleEngine(Tsdb* tsdb) : tsdb_(tsdb) {}

  void AddRecording(RecordingRule rule);
  void AddAlert(AlertRule rule);

  /// Evaluates every recording rule (results appended to the store), then
  /// every alert rule, at time `t_s`. Boundaries must be evaluated in
  /// increasing time order; each exactly once.
  void Evaluate(double t_s);

  /// Post-run reader (not safe against a concurrent Evaluate).
  const std::vector<AlertTransition>& transitions() const {
    return transitions_;
  }

  std::size_t rule_count() const { return alerts_.size(); }
  double last_eval_s() const;

  /// The canonical `/alerts` body: current states plus the transition log.
  /// Served live and written as the `<name>.alerts.json` artifact — byte
  /// equality between the two is the replay contract.
  std::string AlertsJson() const;

 private:
  struct AlertStatus {
    AlertRule rule;
    AlertState state = AlertState::kInactive;
    double since_s = 0.0;  ///< time the current state was entered
    double value = 0.0;    ///< last observed condition value
  };

  Tsdb* tsdb_;
  mutable std::mutex mu_;
  std::vector<RecordingRule> recordings_;
  std::vector<AlertStatus> alerts_;
  std::vector<AlertTransition> transitions_;
  double last_eval_s_ = 0.0;
  EvalOptions eval_options_;
};

/// `goodput_floor_burn`: total good throughput over a 10 s window stays
/// below `floor_rps` for `for_s` seconds. The scenario matrix asserts this
/// one fires for trapped controllers and clears for escaping ones.
AlertRule GoodputFloorRule(double floor_rps, double for_s = 20.0);

/// `slo_fast_burn` / `slo_slow_burn`: SLO bad-request fraction consumes
/// the error budget (1 - slo_target) at more than `burn_threshold` times
/// the sustainable rate over fast (5 s + 30 s) or slow (30 s + 120 s)
/// window pairs — the standard multi-window burn-rate pattern.
std::vector<AlertRule> SloBurnRules(double slo_target = 0.99,
                                    double burn_threshold = 2.0);

}  // namespace topfull::obs

#include "obs/slo_monitor.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace topfull::obs {

const char* SloEventTypeName(SloEventType type) {
  switch (type) {
    case SloEventType::kSloBurnStart: return "slo_burn_start";
    case SloEventType::kSloBurnEnd: return "slo_burn_end";
    case SloEventType::kOverloadOnset: return "overload_onset";
    case SloEventType::kOverloadClear: return "overload_clear";
    case SloEventType::kStarvationStart: return "starvation_start";
    case SloEventType::kStarvationEnd: return "starvation_end";
    case SloEventType::kOscillation: return "oscillation";
  }
  return "unknown";
}

SloMonitor::SloMonitor(std::vector<std::string> api_names,
                       std::vector<std::string> service_names,
                       SloMonitorConfig config)
    : config_(config),
      api_names_(std::move(api_names)),
      service_names_(std::move(service_names)),
      overload_(service_names_.size()),
      starvation_(api_names_.size()),
      directions_(api_names_.size()) {
  assert(config_.window_s > 0.0);
}

std::unique_ptr<SloMonitor> SloMonitor::ForApp(sim::Application& app,
                                               SloMonitorConfig config) {
  config.window_s = ToSeconds(app.config().metrics_period);
  std::vector<std::string> api_names;
  for (sim::ApiId a = 0; a < app.NumApis(); ++a) api_names.push_back(app.api(a).name());
  std::vector<std::string> service_names;
  for (int s = 0; s < app.NumServices(); ++s) {
    service_names.push_back(app.service(s).name());
  }
  auto monitor = std::make_unique<SloMonitor>(std::move(api_names),
                                              std::move(service_names), config);
  monitor->BindRegistry(&app.metrics_registry());
  app.metrics().SetWindowObserver(monitor.get());
  return monitor;
}

void SloMonitor::BindRegistry(MetricsRegistry* registry) { registry_ = registry; }

void SloMonitor::Emit(double t_s, SloEventType type, const std::string& subject,
                      double value, double threshold) {
  events_.push_back(SloEvent{t_s, type, subject, value, threshold});
  if (registry_ != nullptr) {
    registry_
        ->GetCounter("topfull_slo_events_total",
                     "Events emitted by the online SLO/overload monitor.",
                     {{"type", SloEventTypeName(type)}})
        ->Inc();
  }
}

std::uint64_t SloMonitor::CountOf(SloEventType type) const {
  std::uint64_t n = 0;
  for (const SloEvent& e : events_) {
    if (e.type == type) ++n;
  }
  return n;
}

double SloMonitor::BurnOver(int windows) const {
  std::uint64_t completed = 0, good = 0;
  const int n = std::min<int>(windows, static_cast<int>(burn_history_.size()));
  for (int i = 0; i < n; ++i) {
    const auto& [c, g] = burn_history_[burn_history_.size() - 1 - i];
    completed += c;
    good += g;
  }
  if (completed == 0) return 0.0;
  const double bad_fraction =
      static_cast<double>(completed - good) / static_cast<double>(completed);
  const double budget = std::max(1.0 - config_.slo_target, 1e-9);
  return bad_fraction / budget;
}

void SloMonitor::ObserveBurn(const sim::Snapshot& snap) {
  std::uint64_t completed = 0, good = 0;
  for (const sim::ApiWindow& w : snap.apis) {
    completed += w.completed;
    good += w.good;
  }
  burn_history_.emplace_back(completed, good);
  const auto slow_n =
      static_cast<std::size_t>(std::lround(config_.slow_window_s / config_.window_s));
  while (burn_history_.size() > std::max<std::size_t>(slow_n, 1)) {
    burn_history_.pop_front();
  }
  const int fast_n =
      std::max(1, static_cast<int>(std::lround(config_.fast_window_s / config_.window_s)));
  const double fast = BurnOver(fast_n);
  const double slow = BurnOver(static_cast<int>(slow_n));
  if (!burn_active_ && fast >= config_.burn_threshold && slow >= config_.burn_threshold) {
    burn_active_ = true;
    Emit(snap.t_end_s, SloEventType::kSloBurnStart, "total", fast,
         config_.burn_threshold);
  } else if (burn_active_ && fast < config_.burn_threshold &&
             slow < config_.burn_threshold) {
    burn_active_ = false;
    Emit(snap.t_end_s, SloEventType::kSloBurnEnd, "total", fast,
         config_.burn_threshold);
  }
}

void SloMonitor::ObserveOverload(const sim::Snapshot& snap) {
  const std::size_t n = std::min(overload_.size(), snap.services.size());
  for (std::size_t s = 0; s < n; ++s) {
    OverloadState& state = overload_[s];
    const double delay = snap.services[s].avg_queue_delay_s;
    if (delay > config_.overload_queue_delay_s) {
      ++state.over_windows;
      state.under_windows = 0;
      if (!state.overloaded && state.over_windows >= config_.overload_onset_windows) {
        state.overloaded = true;
        Emit(snap.t_end_s, SloEventType::kOverloadOnset, service_names_[s], delay,
             config_.overload_queue_delay_s);
      }
    } else {
      ++state.under_windows;
      state.over_windows = 0;
      if (state.overloaded && state.under_windows >= config_.overload_clear_windows) {
        state.overloaded = false;
        Emit(snap.t_end_s, SloEventType::kOverloadClear, service_names_[s], delay,
             config_.overload_queue_delay_s);
      }
    }
  }
}

void SloMonitor::ObserveStarvation(const sim::Snapshot& snap) {
  const std::size_t n = std::min(starvation_.size(), snap.apis.size());
  for (std::size_t a = 0; a < n; ++a) {
    StarvationState& state = starvation_[a];
    const sim::ApiWindow& w = snap.apis[a];
    if (w.offered >= config_.starvation_min_offered && w.good == 0) {
      ++state.starved_windows;
      if (!state.starved && state.starved_windows >= config_.starvation_windows) {
        state.starved = true;
        Emit(snap.t_end_s, SloEventType::kStarvationStart, api_names_[a],
             static_cast<double>(state.starved_windows),
             static_cast<double>(config_.starvation_windows));
      }
    } else {
      if (state.starved) {
        Emit(snap.t_end_s, SloEventType::kStarvationEnd, api_names_[a],
             static_cast<double>(state.starved_windows),
             static_cast<double>(config_.starvation_windows));
      }
      state.starved = false;
      state.starved_windows = 0;
    }
  }
}

void SloMonitor::ObserveOscillation(const sim::Snapshot& snap) {
  if (decision_log_ == nullptr) return;
  const auto& ticks = decision_log_->ticks();
  for (; decision_cursor_ < ticks.size(); ++decision_cursor_) {
    for (const LimitDelta& delta : ticks[decision_cursor_].limits) {
      if (delta.after == delta.before) continue;
      const int dir = delta.after > delta.before ? 1 : -1;
      if (static_cast<std::size_t>(delta.api) >= directions_.size()) continue;
      auto& history = directions_[delta.api];
      history.push_back(dir);
      while (history.size() >
             static_cast<std::size_t>(std::max(config_.oscillation_window_ticks, 2))) {
        history.pop_front();
      }
      int flips = 0;
      for (std::size_t i = 1; i < history.size(); ++i) {
        if (history[i] != history[i - 1]) ++flips;
      }
      if (flips >= config_.oscillation_flips) {
        Emit(snap.t_end_s, SloEventType::kOscillation, api_names_[delta.api],
             static_cast<double>(flips),
             static_cast<double>(config_.oscillation_flips));
        history.clear();  // cooldown: re-arm only after fresh reversals
      }
    }
  }
}

void SloMonitor::OnWindow(const sim::Snapshot& snap) {
  ObserveBurn(snap);
  ObserveOverload(snap);
  ObserveStarvation(snap);
  ObserveOscillation(snap);
}

}  // namespace topfull::obs

// Online SLO / overload monitor.
//
// Consumes the sim::MetricsCollector window stream (via sim::WindowObserver,
// synchronously at every Snapshot close) and emits structured, deterministic
// events:
//
//  - SLO burn rate over a fast and a slow sliding window (multi-window burn
//    alerting a la Google SRE): burn = bad-fraction / error-budget, where
//    bad-fraction is the share of completions missing the latency SLO.
//  - Overload onset/clear per microservice from queueing delay, the DAGOR
//    signal (Zhou et al.): average queueing delay above a threshold for N
//    consecutive windows flags the service, below it for M windows clears.
//  - Per-API starvation: offered traffic with zero goodput for K windows.
//  - Controller oscillation: rate-limit direction flips in the decision log.
//
// Events carry simulation timestamps only, so the stream is byte-identical
// across TOPFULL_THREADS values and with tracing on or off. The monitor is
// strictly pass-through: it observes windows and the decision log, never
// the controller or admission path.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "obs/decision_log.hpp"
#include "obs/metrics_registry.hpp"
#include "sim/app.hpp"
#include "sim/metrics.hpp"

namespace topfull::obs {

struct SloMonitorConfig {
  /// Metrics window length (for converting the sliding windows to counts).
  double window_s = 1.0;
  /// Target fraction of completions inside the latency SLO; the error
  /// budget is 1 - slo_target.
  double slo_target = 0.99;
  double fast_window_s = 5.0;
  double slow_window_s = 30.0;
  /// Burn-rate multiple that opens (both windows above) and closes (both
  /// below) the burn alert.
  double burn_threshold = 2.0;
  /// DAGOR-style average queueing-delay threshold (their default: 20 ms).
  double overload_queue_delay_s = 0.02;
  int overload_onset_windows = 2;
  int overload_clear_windows = 3;
  /// Windows with traffic but zero goodput before an API counts as starved.
  int starvation_windows = 5;
  std::uint64_t starvation_min_offered = 1;
  /// Oscillation: at least `oscillation_flips` direction reversals among an
  /// API's last `oscillation_window_ticks` rate-limit changes.
  int oscillation_window_ticks = 12;
  int oscillation_flips = 6;
};

enum class SloEventType {
  kSloBurnStart,
  kSloBurnEnd,
  kOverloadOnset,
  kOverloadClear,
  kStarvationStart,
  kStarvationEnd,
  kOscillation,
};

/// Stable wire name ("slo_burn_start", "overload_onset", ...).
const char* SloEventTypeName(SloEventType type);

struct SloEvent {
  double t_s = 0.0;  ///< window-close simulation time
  SloEventType type = SloEventType::kSloBurnStart;
  std::string subject;  ///< API/service name; "total" for app-level burn
  double value = 0.0;
  double threshold = 0.0;
};

class SloMonitor : public sim::WindowObserver {
 public:
  SloMonitor(std::vector<std::string> api_names,
             std::vector<std::string> service_names, SloMonitorConfig config = {});

  /// Builds a monitor for `app` (names, window/SLO parameters from its
  /// config), installs it as the window observer and binds the event
  /// counters into the app's registry. The caller owns the monitor and
  /// must keep it alive for the run.
  static std::unique_ptr<SloMonitor> ForApp(sim::Application& app,
                                            SloMonitorConfig config = {});

  /// Oscillation source (not owned). Ticks appended to the log are
  /// consumed incrementally at every window close.
  void SetDecisionLog(const DecisionLog* log) { decision_log_ = log; }

  /// Mirrors per-type event counts into `topfull_slo_events_total`.
  void BindRegistry(MetricsRegistry* registry);

  // sim::WindowObserver:
  void OnWindow(const sim::Snapshot& snapshot) override;

  const std::vector<SloEvent>& events() const { return events_; }
  std::uint64_t CountOf(SloEventType type) const;
  const SloMonitorConfig& config() const { return config_; }

 private:
  void Emit(double t_s, SloEventType type, const std::string& subject,
            double value, double threshold);
  void ObserveBurn(const sim::Snapshot& snap);
  void ObserveOverload(const sim::Snapshot& snap);
  void ObserveStarvation(const sim::Snapshot& snap);
  void ObserveOscillation(const sim::Snapshot& snap);
  double BurnOver(int windows) const;

  SloMonitorConfig config_;
  std::vector<std::string> api_names_;
  std::vector<std::string> service_names_;
  const DecisionLog* decision_log_ = nullptr;
  MetricsRegistry* registry_ = nullptr;

  std::vector<SloEvent> events_;

  // Burn-rate state: per-window (completed, good) aggregates, newest last.
  std::deque<std::pair<std::uint64_t, std::uint64_t>> burn_history_;
  bool burn_active_ = false;

  // Per-service overload state.
  struct OverloadState {
    bool overloaded = false;
    int over_windows = 0;
    int under_windows = 0;
  };
  std::vector<OverloadState> overload_;

  // Per-API starvation state.
  struct StarvationState {
    bool starved = false;
    int starved_windows = 0;
  };
  std::vector<StarvationState> starvation_;

  // Per-API oscillation state: recent rate-change directions (+1/-1).
  std::vector<std::deque<int>> directions_;
  std::size_t decision_cursor_ = 0;
};

}  // namespace topfull::obs

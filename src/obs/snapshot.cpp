#include "obs/snapshot.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <utility>

namespace topfull::obs {

namespace {

/// Deterministic, locale-independent double formatting.
std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string U64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

/// Sample-value rendering: Prometheus spells out non-finite values.
std::string PromNum(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  return Num(v);
}

/// Renders a label set as {k1="v1",k2="v2"}; empty string for no labels.
/// `extra_key`/`extra_value` append one more pair (the histogram `le`).
std::string PromLabels(const Labels& labels, const char* extra_key = nullptr,
                       const std::string& extra_value = {}) {
  if (labels.empty() && extra_key == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + PromEscapeLabel(v) + "\"";
  }
  if (extra_key != nullptr) {
    if (!first) out += ",";
    out += std::string(extra_key) + "=\"" + PromEscapeLabel(extra_value) + "\"";
  }
  return out + "}";
}

void RenderHistogramCell(const std::string& name,
                         const MetricsSnapshot::Cell& cell, std::string* out) {
  const Histogram& h = *cell.histogram;
  // Cumulative bucket series. Empty buckets are elided (cumulative counts
  // stay valid under any subset of boundaries); the +Inf bucket is always
  // present, as the spec requires.
  std::uint64_t cumulative = 0;
  for (int b = 0; b < h.NumBuckets() - 1; ++b) {  // last bucket == +Inf
    const std::uint64_t c = h.BucketCount(b);
    if (c == 0) continue;
    cumulative += c;
    *out += name + "_bucket" + PromLabels(cell.labels, "le", Num(h.UpperBound(b))) +
            " " + U64(cumulative) + "\n";
  }
  *out += name + "_bucket" + PromLabels(cell.labels, "le", "+Inf") + " " +
          U64(h.count()) + "\n";
  *out += name + "_sum" + PromLabels(cell.labels) + " " + Num(h.sum()) + "\n";
  *out += name + "_count" + PromLabels(cell.labels) + " " + U64(h.count()) + "\n";
}

std::string JsonLabels(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += JsonEscape(k);
    out += "\":\"";
    out += JsonEscape(v);
    out += "\"";
  }
  out += "}";
  return out;
}

/// JSON number rendering: non-finite doubles are not valid JSON, so they
/// degrade to null (consumers treat that as "absent").
std::string JsonNum(double v) {
  if (!std::isfinite(v)) return "null";
  return Num(v);
}

}  // namespace

std::string PromEscapeLabel(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string PromEscapeHelp(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// --- MetricsSnapshot --------------------------------------------------------

const MetricsSnapshot::Family* MetricsSnapshot::FindFamily(
    const std::string& name) const {
  const auto it = std::lower_bound(
      families.begin(), families.end(), name,
      [](const Family& f, const std::string& n) { return f.name < n; });
  if (it == families.end() || it->name != name) return nullptr;
  return &*it;
}

const MetricsSnapshot::Cell* MetricsSnapshot::FindCell(
    const std::string& name, const Labels& labels) const {
  const Family* family = FindFamily(name);
  if (family == nullptr) return nullptr;
  const std::string key = MetricsRegistry::LabelKey(labels);
  for (const Cell& cell : family->cells) {
    if (MetricsRegistry::LabelKey(cell.labels) == key) return &cell;
  }
  return nullptr;
}

// --- SnapshotBuilder --------------------------------------------------------

MetricsSnapshot::Cell* SnapshotBuilder::GetCell(const std::string& name,
                                                const std::string& help,
                                                MetricType type,
                                                Labels labels) {
  FamilyBuild& family = families_[name];
  if (family.cells.empty()) {
    family.help = help;
    family.type = type;
  }
  std::string key = MetricsRegistry::LabelKey(labels);
  MetricsSnapshot::Cell& cell = family.cells[std::move(key)];
  cell.labels = std::move(labels);
  return &cell;
}

void SnapshotBuilder::AddRegistry(const MetricsRegistry& registry,
                                  const Labels& extra) {
  // The registry already keys every cell by its canonical label key, and
  // `extra` appends at the end of the label list, so the combined key is a
  // plain concatenation — no re-encoding on this (per-publish) path. Cells
  // iterate in key order, so the end() hint makes fresh inserts O(1).
  const std::string extra_key = MetricsRegistry::LabelKey(extra);
  for (const auto& [name, family] : registry.families()) {
    FamilyBuild& build = families_[name];
    if (build.cells.empty()) {
      build.help = family.help;
      build.type = family.type;
    }
    for (const auto& [key, cell] : family.cells) {
      std::string cell_key = key;
      if (!extra_key.empty()) {
        if (cell_key.empty()) {
          cell_key = extra_key;
        } else {
          cell_key += ",";
          cell_key += extra_key;
        }
      }
      MetricsSnapshot::Cell& out =
          build.cells
              .emplace_hint(build.cells.end(), std::move(cell_key),
                            MetricsSnapshot::Cell{})
              ->second;
      out.labels.clear();
      out.labels.reserve(cell->labels.size() + extra.size());
      out.labels.insert(out.labels.end(), cell->labels.begin(),
                        cell->labels.end());
      out.labels.insert(out.labels.end(), extra.begin(), extra.end());
      switch (family.type) {
        case MetricType::kCounter:
          out.counter = cell->counter.value();
          break;
        case MetricType::kGauge:
          out.gauge = cell->gauge.value();
          break;
        case MetricType::kHistogram:
          out.histogram = *cell->histogram;
          break;
      }
    }
  }
}

void SnapshotBuilder::AddCounter(const std::string& name,
                                 const std::string& help, Labels labels,
                                 std::uint64_t value) {
  GetCell(name, help, MetricType::kCounter, std::move(labels))->counter = value;
}

void SnapshotBuilder::AddGauge(const std::string& name, const std::string& help,
                               Labels labels, double value) {
  GetCell(name, help, MetricType::kGauge, std::move(labels))->gauge = value;
}

void SnapshotBuilder::AddHistogram(const std::string& name,
                                   const std::string& help, Labels labels,
                                   const Histogram& histogram) {
  GetCell(name, help, MetricType::kHistogram, std::move(labels))->histogram =
      histogram;
}

std::shared_ptr<const MetricsSnapshot> SnapshotBuilder::Finish(
    RunState run, std::uint64_t version) {
  auto snapshot = std::make_shared<MetricsSnapshot>();
  snapshot->version = version;
  snapshot->run = std::move(run);
  snapshot->families.reserve(families_.size());
  for (auto& [name, build] : families_) {
    MetricsSnapshot::Family family;
    family.name = name;
    family.help = std::move(build.help);
    family.type = build.type;
    family.cells.reserve(build.cells.size());
    for (auto& [key, cell] : build.cells) {
      family.cells.push_back(std::move(cell));
    }
    snapshot->families.push_back(std::move(family));
  }
  families_.clear();
  return snapshot;
}

// --- SnapshotBoard ----------------------------------------------------------

SnapshotBoard::SnapshotBoard() {
  slots_[0].snapshot = std::make_shared<const MetricsSnapshot>();
}

void SnapshotBoard::Publish(std::shared_ptr<const MetricsSnapshot> snapshot) {
  if (snapshot == nullptr) return;
  const std::uint32_t cur = current_.load(std::memory_order_relaxed);
  // Pick a slot no reader has pinned. A slot is pinned only for the
  // duration of one shared_ptr copy, so this scan terminates quickly; the
  // seq_cst scan pairs with the readers' seq_cst pin/re-validate (see the
  // class comment for why either the scan sees the pin or the reader's
  // re-validation sees the flip).
  std::uint32_t next = cur;
  for (;;) {
    next = (next + 1) % kSlots;
    if (next == cur) continue;
    if (slots_[next].readers.load(std::memory_order_seq_cst) == 0) break;
  }
  slots_[next].snapshot = std::move(snapshot);
  current_.store(next, std::memory_order_seq_cst);
}

std::shared_ptr<const MetricsSnapshot> SnapshotBoard::Read() const {
  for (;;) {
    const std::uint32_t i = current_.load(std::memory_order_seq_cst);
    Slot& slot = slots_[i];
    slot.readers.fetch_add(1, std::memory_order_seq_cst);
    if (current_.load(std::memory_order_seq_cst) == i) {
      std::shared_ptr<const MetricsSnapshot> out = slot.snapshot;
      slot.readers.fetch_sub(1, std::memory_order_seq_cst);
      return out;
    }
    // The publisher flipped away from (and may be refilling) slot i
    // between our two loads; unpin and retry against the new current.
    slot.readers.fetch_sub(1, std::memory_order_seq_cst);
  }
}

// --- Renderers --------------------------------------------------------------

std::string PromTextFromSnapshot(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const MetricsSnapshot::Family& family : snapshot.families) {
    out += "# HELP " + family.name + " " + PromEscapeHelp(family.help) + "\n";
    out += "# TYPE " + family.name + " " + MetricTypeName(family.type) + "\n";
    for (const MetricsSnapshot::Cell& cell : family.cells) {
      switch (family.type) {
        case MetricType::kCounter:
          out += family.name + PromLabels(cell.labels) + " " +
                 U64(cell.counter) + "\n";
          break;
        case MetricType::kGauge:
          out += family.name + PromLabels(cell.labels) + " " +
                 PromNum(cell.gauge) + "\n";
          break;
        case MetricType::kHistogram:
          RenderHistogramCell(family.name, cell, &out);
          break;
      }
    }
  }
  return out;
}

std::string PromTextFromRegistry(const MetricsRegistry& registry) {
  SnapshotBuilder builder;
  builder.AddRegistry(registry);
  return PromTextFromSnapshot(*builder.Finish());
}

std::string SnapshotJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"version\":" + U64(snapshot.version) +
                    ",\"label\":\"" + JsonEscape(snapshot.run.label) +
                    "\",\"sim_time_s\":" + JsonNum(snapshot.run.sim_time_s) +
                    ",\"families\":[";
  bool first_family = true;
  for (const MetricsSnapshot::Family& family : snapshot.families) {
    if (!first_family) out += ",";
    first_family = false;
    out += "{\"name\":\"" + JsonEscape(family.name) + "\",\"type\":\"" +
           MetricTypeName(family.type) + "\",\"help\":\"" +
           JsonEscape(family.help) + "\",\"cells\":[";
    bool first_cell = true;
    for (const MetricsSnapshot::Cell& cell : family.cells) {
      if (!first_cell) out += ",";
      first_cell = false;
      out += "{\"labels\":" + JsonLabels(cell.labels);
      switch (family.type) {
        case MetricType::kCounter:
          out += ",\"value\":" + U64(cell.counter);
          break;
        case MetricType::kGauge:
          out += ",\"value\":" + JsonNum(cell.gauge);
          break;
        case MetricType::kHistogram: {
          const Histogram& h = *cell.histogram;
          out += ",\"count\":" + U64(h.count()) + ",\"sum\":" + JsonNum(h.sum()) +
                 ",\"min\":" + JsonNum(h.min()) + ",\"max\":" + JsonNum(h.max()) +
                 ",\"mean\":" + JsonNum(h.Mean()) +
                 ",\"p50\":" + JsonNum(h.Percentile(50)) +
                 ",\"p90\":" + JsonNum(h.Percentile(90)) +
                 ",\"p99\":" + JsonNum(h.Percentile(99));
          break;
        }
      }
      out += "}";
    }
    out += "]}";
  }
  return out + "]}";
}

std::string RunStateJson(const MetricsSnapshot& snapshot) {
  const RunState& run = snapshot.run;
  const double progress =
      run.duration_s > 0.0
          ? std::min(1.0, run.sim_time_s / run.duration_s)
          : (run.finished ? 1.0 : 0.0);
  std::string out = "{\"label\":\"" + JsonEscape(run.label) +
                    "\",\"state\":\"" +
                    (run.finished ? "finished" : "running") +
                    "\",\"sim_time_s\":" + JsonNum(run.sim_time_s) +
                    ",\"duration_s\":" + JsonNum(run.duration_s) +
                    ",\"progress\":" + JsonNum(progress) +
                    ",\"snapshot_version\":" + U64(snapshot.version) +
                    ",\"rounds\":" + U64(run.rounds) +
                    ",\"slo_events_total\":" + U64(run.slo_events) +
                    ",\"active_slo_events\":" + U64(run.active_slo_events) +
                    ",\"active_slo_subjects\":[";
  for (std::size_t i = 0; i < run.active_slo_subjects.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"";
    out += JsonEscape(run.active_slo_subjects[i]);
    out += "\"";
  }
  out += "],\"shards\":[";
  for (std::size_t i = 0; i < run.shards.size(); ++i) {
    const ShardRunState& s = run.shards[i];
    if (i > 0) out += ",";
    out += "{\"shard\":" + U64(i) +
           ",\"events_processed\":" + U64(s.events_processed) +
           ",\"events_scheduled\":" + U64(s.events_scheduled) +
           ",\"events_cancelled\":" + U64(s.events_cancelled) +
           ",\"pending_events\":" + U64(s.pending_events) +
           ",\"messages_sent\":" + U64(s.messages_sent) +
           ",\"messages_delivered\":" + U64(s.messages_delivered) +
           ",\"mailbox_depth_hwm\":" + U64(s.mailbox_depth_hwm) +
           ",\"busy_s\":" + JsonNum(s.busy_s) +
           ",\"blocked_s\":" + JsonNum(s.blocked_s) + "}";
  }
  return out + "]}";
}

// --- Validator --------------------------------------------------------------

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return IsNameStart(c) || std::isdigit(static_cast<unsigned char>(c));
}

/// Parses a metric name at `pos`; returns empty on failure.
std::string ParseName(const std::string& line, std::size_t* pos) {
  std::size_t i = *pos;
  if (i >= line.size() || !IsNameStart(line[i])) return "";
  while (i < line.size() && IsNameChar(line[i])) ++i;
  std::string name = line.substr(*pos, i - *pos);
  *pos = i;
  return name;
}

/// Parses a {k="v",...} label block at `pos` (which must point at '{').
bool ParseLabelBlock(const std::string& line, std::size_t* pos) {
  std::size_t i = *pos + 1;  // skip '{'
  if (i < line.size() && line[i] == '}') {
    *pos = i + 1;
    return true;
  }
  while (true) {
    std::size_t name_pos = i;
    if (ParseName(line, &name_pos).empty()) return false;
    i = name_pos;
    if (i >= line.size() || line[i] != '=') return false;
    ++i;
    if (i >= line.size() || line[i] != '"') return false;
    ++i;
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\') ++i;  // escaped char
      ++i;
    }
    if (i >= line.size()) return false;  // unterminated value
    ++i;                                 // skip closing quote
    if (i < line.size() && line[i] == ',') {
      ++i;
      continue;
    }
    if (i < line.size() && line[i] == '}') {
      *pos = i + 1;
      return true;
    }
    return false;
  }
}

bool ParseSampleValue(const std::string& token) {
  if (token == "NaN" || token == "+Inf" || token == "-Inf") return true;
  if (token.empty()) return false;
  char* end = nullptr;
  std::strtod(token.c_str(), &end);
  return end == token.c_str() + token.size();
}

/// Strips a histogram series suffix; returns the base family name.
std::string HistogramBase(const std::string& name) {
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const std::string s(suffix);
    if (name.size() > s.size() &&
        name.compare(name.size() - s.size(), s.size(), s) == 0) {
      return name.substr(0, name.size() - s.size());
    }
  }
  return name;
}

}  // namespace

bool ValidatePromText(const std::string& text, std::string* error) {
  const auto fail = [error](std::size_t line_no, const std::string& line,
                            const char* why) {
    if (error != nullptr) {
      *error = "line " + U64(line_no) + ": " + why + ": " + line;
    }
    return false;
  };

  std::set<std::string> typed;         // family name -> has a # TYPE line
  std::set<std::string> histograms;    // families typed histogram
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    ++line_no;
    if (line.empty()) continue;

    if (line[0] == '#') {
      // "# TYPE name type" / "# HELP name text" / free-form comment.
      if (line.rfind("# TYPE ", 0) == 0) {
        std::size_t pos = 7;
        const std::string name = ParseName(line, &pos);
        if (name.empty() || pos >= line.size() || line[pos] != ' ') {
          return fail(line_no, line, "malformed # TYPE");
        }
        const std::string type = line.substr(pos + 1);
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          return fail(line_no, line, "unknown metric type");
        }
        typed.insert(name);
        if (type == "histogram") histograms.insert(name);
      } else if (line.rfind("# HELP ", 0) == 0) {
        std::size_t pos = 7;
        if (ParseName(line, &pos).empty()) {
          return fail(line_no, line, "malformed # HELP");
        }
      }
      continue;
    }

    std::size_t pos = 0;
    const std::string name = ParseName(line, &pos);
    if (name.empty()) return fail(line_no, line, "bad metric name");
    const std::string base = HistogramBase(name);
    if (typed.count(name) == 0 &&
        !(histograms.count(base) != 0 && base != name)) {
      return fail(line_no, line, "sample without preceding # TYPE");
    }
    if (pos < line.size() && line[pos] == '{') {
      if (!ParseLabelBlock(line, &pos)) {
        return fail(line_no, line, "malformed label block");
      }
    }
    if (pos >= line.size() || line[pos] != ' ') {
      return fail(line_no, line, "missing sample value");
    }
    const std::size_t value_start = pos + 1;
    std::size_t value_end = line.find(' ', value_start);
    if (value_end == std::string::npos) value_end = line.size();
    if (!ParseSampleValue(line.substr(value_start, value_end - value_start))) {
      return fail(line_no, line, "unparsable sample value");
    }
    // Anything after the value must be an integer timestamp.
    if (value_end < line.size()) {
      const std::string ts = line.substr(value_end + 1);
      if (ts.empty() ||
          ts.find_first_not_of("-0123456789") != std::string::npos) {
        return fail(line_no, line, "trailing garbage after sample value");
      }
    }
  }
  return true;
}

}  // namespace topfull::obs

// Immutable metric snapshots: the read side of the live telemetry plane.
//
// The registry (metrics_registry.hpp) is deliberately not thread-safe: the
// simulation updates it with plain writes on its own thread. To observe it
// live without perturbing that hot path, the *owning* thread captures an
// immutable MetricsSnapshot at a quiescent point (between RunUntil chunks,
// or on the sharded caller thread between window rounds while the workers
// are parked at the barrier) and publishes it through a SnapshotBoard — a
// hazard-style slot ring (see the class comment). Readers (the HTTP
// observability server) pin a slot, copy one shared_ptr and then walk a
// structure nobody mutates, so scrapes never take a lock and never touch
// live registry storage.
//
// Memory-ordering contract (DESIGN.md §12):
//   writer: build snapshot (plain writes) → Publish (slot fill, then
//           seq_cst flip of the current index)
//   reader: Read (seq_cst pin + re-validate) → walk immutable snapshot
// The copied shared_ptr keeps a scraped snapshot alive across later
// publishes, so there is no reclamation race; old snapshots free when the
// last reader drops them.
//
// PromTextFromSnapshot renders the exact same text-exposition bytes as the
// offline Prometheus dump — WritePrometheusText is implemented on top of
// it — so a live `/metrics` scrape at end of run equals the `.metrics.prom`
// artifact byte for byte.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/metrics_registry.hpp"

namespace topfull::obs {

/// Per-shard engine/scheduler state captured alongside the metric families
/// (rendered by `/runs`, not by `/metrics`).
struct ShardRunState {
  std::uint64_t events_processed = 0;
  std::uint64_t events_scheduled = 0;
  std::uint64_t events_cancelled = 0;
  std::uint64_t pending_events = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t mailbox_depth_hwm = 0;
  double busy_s = 0.0;
  double blocked_s = 0.0;
};

/// Run-level progress captured at publish time.
struct RunState {
  std::string label;
  bool finished = false;
  double sim_time_s = 0.0;
  double duration_s = 0.0;
  /// Window rounds completed (sharded runs; 0 for the unsharded engine).
  std::uint64_t rounds = 0;
  std::uint64_t slo_events = 0;
  /// SLO start/onset events without a matching end/clear yet.
  std::uint64_t active_slo_events = 0;
  std::vector<std::string> active_slo_subjects;
  std::vector<ShardRunState> shards;
};

/// Immutable flattened copy of one or more registries. Families are sorted
/// by name, cells by canonical label key — the same deterministic order the
/// registry itself iterates in.
struct MetricsSnapshot {
  struct Cell {
    Labels labels;
    std::uint64_t counter = 0;
    double gauge = 0.0;
    std::optional<Histogram> histogram;  // kHistogram families only
  };

  struct Family {
    std::string name;
    std::string help;
    MetricType type = MetricType::kCounter;
    std::vector<Cell> cells;
  };

  std::uint64_t version = 0;
  RunState run;
  std::vector<Family> families;

  const Family* FindFamily(const std::string& name) const;
  const Cell* FindCell(const std::string& name, const Labels& labels) const;
};

/// Accumulates cells from registries and ad-hoc values, then freezes them
/// into a sorted immutable snapshot. Single-use: Finish() moves the state
/// out. Adding the same (family, label set) twice overwrites the cell —
/// callers keep cells distinct (sharded captures add a shard="k" label).
class SnapshotBuilder {
 public:
  /// Copies every family/cell of `registry`, appending `extra` labels to
  /// each cell (e.g. {{"shard", "2"}}; pass {} for none).
  void AddRegistry(const MetricsRegistry& registry, const Labels& extra = {});

  void AddCounter(const std::string& name, const std::string& help,
                  Labels labels, std::uint64_t value);
  void AddGauge(const std::string& name, const std::string& help,
                Labels labels, double value);
  void AddHistogram(const std::string& name, const std::string& help,
                    Labels labels, const Histogram& histogram);

  std::shared_ptr<const MetricsSnapshot> Finish(RunState run = {},
                                                std::uint64_t version = 0);

 private:
  struct FamilyBuild {
    std::string help;
    MetricType type = MetricType::kCounter;
    std::map<std::string, MetricsSnapshot::Cell> cells;  // by canonical key
  };

  MetricsSnapshot::Cell* GetCell(const std::string& name,
                                 const std::string& help, MetricType type,
                                 Labels labels);

  std::map<std::string, FamilyBuild> families_;
};

/// Publish/read exchange between the snapshot producer (the sim-owning
/// thread — exactly one publisher) and any number of reader threads.
/// Starts holding an empty snapshot so readers never observe null.
///
/// Not std::atomic<shared_ptr>: libstdc++'s _Sp_atomic releases its
/// internal spinlock from load() with a relaxed RMW, so there is no
/// release edge from a reader's pointer read to the next store's pointer
/// write and TSan (correctly, per the model) reports the pair as a data
/// race. Instead the board is a small hazard-style slot ring: Publish()
/// fills a slot no reader has pinned and flips `current_`; Read() pins
/// slots_[current_] with a reader count, re-validates `current_`, and
/// copies the shared_ptr out. The seq_cst handshake (reader: pin then
/// re-read current_; publisher: flip current_ then scan reader counts)
/// guarantees the publisher never reuses a slot a reader is copying from:
/// in the seq_cst total order either the publisher's scan sees the pin, or
/// the reader's re-validation sees the flip and backs off. Readers never
/// block each other or the publisher.
class SnapshotBoard {
 public:
  SnapshotBoard();
  SnapshotBoard(const SnapshotBoard&) = delete;
  SnapshotBoard& operator=(const SnapshotBoard&) = delete;

  /// Publisher side; single-threaded by contract.
  void Publish(std::shared_ptr<const MetricsSnapshot> snapshot);
  std::shared_ptr<const MetricsSnapshot> Read() const;

 private:
  struct Slot {
    std::atomic<int> readers{0};
    std::shared_ptr<const MetricsSnapshot> snapshot;
  };
  // current_ + spare slots for in-flight publishes while stragglers copy.
  static constexpr std::uint32_t kSlots = 4;

  mutable Slot slots_[kSlots];
  std::atomic<std::uint32_t> current_{0};
};

/// Renders a snapshot in Prometheus text exposition format: families in
/// name order, a # HELP/# TYPE pair per family, histogram families as
/// cumulative `_bucket{le=...}` series (empty buckets elided) plus `_sum`
/// and `_count`.
std::string PromTextFromSnapshot(const MetricsSnapshot& snapshot);

/// Registry convenience wrapper around PromTextFromSnapshot (the offline
/// export path and tests use this).
std::string PromTextFromRegistry(const MetricsRegistry& registry);

/// `/snapshot.json`: every family/cell as a JSON document (histograms as
/// count/sum/min/max/mean/p50/p90/p99 summaries).
std::string SnapshotJson(const MetricsSnapshot& snapshot);

/// `/runs`: run-state JSON (label, progress, SLO events, per-shard stats).
std::string RunStateJson(const MetricsSnapshot& snapshot);

/// Structural check of Prometheus text-exposition output: every sample line
/// parses (name, optional balanced label set, numeric value) and belongs to
/// a family announced by a preceding # TYPE line. Used by tests and the CI
/// scrape smoke. Returns false and describes the first offending line in
/// `error` (when non-null).
bool ValidatePromText(const std::string& text, std::string* error = nullptr);

/// Prometheus label-value escaping (backslash, double-quote, newline).
std::string PromEscapeLabel(const std::string& s);
/// Prometheus HELP-text escaping (backslash, newline).
std::string PromEscapeHelp(const std::string& s);
/// JSON string escaping (exposed for tests).
std::string JsonEscape(const std::string& s);

}  // namespace topfull::obs

#include "obs/trace.hpp"

#include <algorithm>

namespace topfull::obs {

namespace {

/// SplitMix64 finaliser — the sampling hash. Independent of the simulation
/// RNG streams so tracing never perturbs results.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

RequestTracer::RequestTracer(TraceConfig config) : config_(config) {
  const double rate = std::clamp(config_.sample_rate, 0.0, 1.0);
  sample_all_ = rate >= 1.0;
  // 2^64 as a double; the product is exact enough for a sampling knob.
  threshold_ = static_cast<std::uint64_t>(rate * 18446744073709551616.0);
}

bool RequestTracer::HasCapacity() const {
  return active_.size() + finished_.size() < config_.max_traces;
}

void RequestTracer::OnOffered(sim::ApiId, SimTime) {
  ++counters_.offered;
  pending_sample_ =
      sample_all_ || Mix(counters_.offered ^ config_.salt) < threshold_;
}

void RequestTracer::OnEntryRejected(sim::ApiId api, SimTime now) {
  ++counters_.rejected_entry;
  if (!pending_sample_) return;
  pending_sample_ = false;
  if (!HasCapacity()) {
    ++counters_.dropped;
    return;
  }
  ++counters_.sampled;
  RequestTrace trace;
  trace.api = api;
  trace.start = trace.end = now;
  trace.outcome = sim::Outcome::kRejectedEntry;
  finished_.push_back(std::move(trace));
}

void RequestTracer::OnAdmitted(sim::RequestId id, sim::ApiId api, SimTime now) {
  ++counters_.admitted;
  if (!pending_sample_) return;
  pending_sample_ = false;
  if (!HasCapacity()) {
    ++counters_.dropped;
    return;
  }
  ++counters_.sampled;
  RequestTrace trace;
  trace.id = id;
  trace.api = api;
  trace.start = now;
  active_.emplace(id, std::move(trace));
}

bool RequestTracer::Tracing(sim::RequestId id) const {
  return active_.count(id) > 0;
}

void RequestTracer::OnHopShed(sim::RequestId id, sim::ServiceId service,
                              SimTime now) {
  const auto it = active_.find(id);
  if (it == active_.end()) return;
  HopSpan span;
  span.service = service;
  span.start = span.end = now;
  span.shed = true;
  it->second.spans.push_back(span);
}

void RequestTracer::OnHopDone(sim::RequestId id, sim::ServiceId service,
                              SimTime start, SimTime end, SimTime service_time,
                              bool ok) {
  const auto it = active_.find(id);
  if (it == active_.end()) return;
  HopSpan span;
  span.service = service;
  span.start = start;
  span.end = end;
  span.service_time = ok ? service_time : 0;
  span.queue_wait = std::max<SimTime>(0, end - start - span.service_time);
  span.ok = ok;
  it->second.spans.push_back(span);
}

void RequestTracer::OnRequestDone(sim::RequestId id, sim::ApiId api,
                                  SimTime start, SimTime end,
                                  sim::Outcome outcome, bool slo_ok) {
  const auto it = active_.find(id);
  if (it == active_.end()) return;
  RequestTrace trace = std::move(it->second);
  active_.erase(it);
  trace.api = api;
  trace.start = start;
  trace.end = end;
  trace.outcome = outcome;
  trace.slo_ok = slo_ok;
  finished_.push_back(std::move(trace));
}

}  // namespace topfull::obs

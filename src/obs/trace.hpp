// Request span tracer: the simulator's stand-in for Istio distributed
// tracing (paper §5).
//
// RequestTracer implements sim::RequestObserver and records, for a sampled
// subset of requests, one trace per request: the admission verdict, a span
// per service hop (queue wait + service time), and the end-to-end outcome
// against the SLO. Sampling is a deterministic hash of the arrival index —
// never the simulation RNG — so enabling tracing cannot perturb results,
// and trace content is identical across ThreadPool sizes (each run owns its
// tracer and the simulation itself is single-threaded).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/request_observer.hpp"

namespace topfull::obs {

struct TraceConfig {
  /// Fraction of offered requests traced, in [0, 1]. 1 = trace everything.
  double sample_rate = 1.0;
  /// Memory bound: once this many traces are held (finished + in flight),
  /// further sampled requests are counted as dropped instead of recorded.
  std::size_t max_traces = 50000;
  /// Mixed into the sampling hash; distinct salts give distinct samples.
  std::uint64_t salt = 0x9E3779B97F4A7C15ULL;
};

/// One service hop of a traced request.
struct HopSpan {
  sim::ServiceId service = sim::kNoService;
  SimTime start = 0;         ///< dispatch time
  SimTime end = 0;           ///< local service completion (or failure) time
  SimTime queue_wait = 0;    ///< time waiting for a worker slot
  SimTime service_time = 0;  ///< sampled service duration
  bool ok = false;
  bool shed = false;  ///< rejected at dispatch (queue full / pod down)
};

/// A finished request trace. Entry-rejected samples have id 0, no spans and
/// start == end (the shedding instant).
struct RequestTrace {
  sim::RequestId id = 0;
  sim::ApiId api = sim::kNoApi;
  SimTime start = 0;
  SimTime end = 0;
  sim::Outcome outcome = sim::Outcome::kCompleted;
  bool slo_ok = false;
  std::vector<HopSpan> spans;
};

struct TracerCounters {
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected_entry = 0;
  std::uint64_t sampled = 0;  ///< traces recorded (incl. rejection marks)
  std::uint64_t dropped = 0;  ///< sampled but discarded by the memory cap
};

class RequestTracer : public sim::RequestObserver {
 public:
  explicit RequestTracer(TraceConfig config = {});

  // sim::RequestObserver:
  void OnOffered(sim::ApiId api, SimTime now) override;
  void OnEntryRejected(sim::ApiId api, SimTime now) override;
  void OnAdmitted(sim::RequestId id, sim::ApiId api, SimTime now) override;
  bool Tracing(sim::RequestId id) const override;
  void OnHopShed(sim::RequestId id, sim::ServiceId service, SimTime now) override;
  void OnHopDone(sim::RequestId id, sim::ServiceId service, SimTime start,
                 SimTime end, SimTime service_time, bool ok) override;
  void OnRequestDone(sim::RequestId id, sim::ApiId api, SimTime start,
                     SimTime end, sim::Outcome outcome, bool slo_ok) override;

  /// Finished traces in completion order (deterministic).
  const std::vector<RequestTrace>& finished() const { return finished_; }
  /// Traces of requests still in flight (admitted, not finalised).
  std::size_t ActiveCount() const { return active_.size(); }
  const TracerCounters& counters() const { return counters_; }
  const TraceConfig& config() const { return config_; }

 private:
  bool HasCapacity() const;

  TraceConfig config_;
  bool sample_all_ = false;
  std::uint64_t threshold_ = 0;  ///< hash < threshold_ => sampled
  bool pending_sample_ = false;  ///< verdict of the current Submit's arrival
  TracerCounters counters_;
  std::unordered_map<sim::RequestId, RequestTrace> active_;
  std::vector<RequestTrace> finished_;
};

}  // namespace topfull::obs

#include "obs/tsdb.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/histogram.hpp"
#include "obs/prom_parser.hpp"

namespace topfull::obs {

namespace {

/// Deterministic, locale-independent double formatting (display forms).
std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

/// Round-trip-exact formatting for stored sample values: 17 significant
/// digits reconstruct any finite double bit-exactly, which the
/// live-vs-replay equality contract depends on. JSON has no literal for
/// non-finite values, so those become strings ("inf"/"-inf"/"nan") that
/// TsdbFromJson maps back.
std::string NumExact(double v) {
  if (!std::isfinite(v)) {
    if (std::isnan(v)) return "\"nan\"";
    return v > 0 ? "\"inf\"" : "\"-inf\"";
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

bool IsCumulative(MetricType type) { return type == MetricType::kCounter; }

}  // namespace

Tsdb::Tsdb(TsdbOptions options) : options_(options) {
  if (options_.retention == 0) options_.retention = 1;
  if (options_.step_s <= 0.0) options_.step_s = 1.0;
}

Tsdb::Series& Tsdb::GetSeries(const std::string& name, const Labels& labels,
                              MetricType type) {
  const auto key = std::make_pair(name, MetricsRegistry::LabelKey(labels));
  auto it = series_.find(key);
  if (it == series_.end()) {
    it = series_.emplace(key, Series{}).first;
    it->second.labels = labels;
    it->second.type = type;
    it->second.ring.reserve(options_.retention);
  }
  return it->second;
}

bool Tsdb::AppendLocked(Series& series, double t_s, double value) {
  if (series.size > 0) {
    const std::size_t tail =
        (series.head + series.size - 1) % options_.retention;
    const TsdbSample& last = series.ring[tail];
    if (t_s <= last.t_s) {
      ++out_of_order_;
      return false;
    }
    if (IsCumulative(series.type) && value < last.value) ++series.resets;
  }
  const TsdbSample sample{t_s, value};
  if (series.ring.size() < options_.retention) {
    series.ring.push_back(sample);
    ++series.size;
  } else if (series.size < options_.retention) {
    // The ring is at capacity but logically not full (cannot happen with
    // append-only growth, kept for safety).
    series.ring[(series.head + series.size) % options_.retention] = sample;
    ++series.size;
  } else {
    series.ring[series.head] = sample;  // overwrite the oldest
    series.head = (series.head + 1) % options_.retention;
    ++evicted_;
  }
  ++appended_;
  return true;
}

bool Tsdb::Append(const std::string& name, const Labels& labels,
                  MetricType type, double t_s, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  return AppendLocked(GetSeries(name, labels, type), t_s, value);
}

void Tsdb::AppendSnapshot(const MetricsSnapshot& snapshot, double t_s) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const MetricsSnapshot::Family& family : snapshot.families) {
    for (const MetricsSnapshot::Cell& cell : family.cells) {
      switch (family.type) {
        case MetricType::kCounter:
          AppendLocked(GetSeries(family.name, cell.labels, MetricType::kCounter),
                       t_s, static_cast<double>(cell.counter));
          break;
        case MetricType::kGauge:
          AppendLocked(GetSeries(family.name, cell.labels, MetricType::kGauge),
                       t_s, cell.gauge);
          break;
        case MetricType::kHistogram: {
          if (!cell.histogram.has_value()) break;
          const Histogram& h = *cell.histogram;
          // Mirror the text exposition exactly: cumulative buckets with
          // empty ones elided, `+Inf` always present, then _sum/_count.
          // All derived series are cumulative, hence stored as counters.
          std::uint64_t cumulative = 0;
          Labels bucket_labels = cell.labels;
          bucket_labels.emplace_back("le", "");
          for (int b = 0; b + 1 < h.NumBuckets(); ++b) {
            const std::uint64_t in_bucket = h.BucketCount(b);
            cumulative += in_bucket;
            if (in_bucket == 0) continue;
            bucket_labels.back().second = Num(h.UpperBound(b));
            AppendLocked(GetSeries(family.name + "_bucket", bucket_labels,
                                   MetricType::kCounter),
                         t_s, static_cast<double>(cumulative));
          }
          bucket_labels.back().second = "+Inf";
          AppendLocked(GetSeries(family.name + "_bucket", bucket_labels,
                                 MetricType::kCounter),
                       t_s, static_cast<double>(h.count()));
          AppendLocked(GetSeries(family.name + "_sum", cell.labels,
                                 MetricType::kCounter),
                       t_s, h.sum());
          AppendLocked(GetSeries(family.name + "_count", cell.labels,
                                 MetricType::kCounter),
                       t_s, static_cast<double>(h.count()));
          break;
        }
      }
    }
  }
}

void Tsdb::AppendScrape(const PromScrape& scrape, double t_s) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const PromFamily& family : scrape.families) {
    for (const PromSample& sample : family.samples) {
      // Histogram families arrive pre-flattened; their suffixed series
      // (_bucket/_sum/_count) are cumulative and behave as counters.
      const MetricType type = family.type == MetricType::kGauge
                                  ? MetricType::kGauge
                                  : MetricType::kCounter;
      AppendLocked(GetSeries(sample.name, sample.labels, type), t_s,
                   sample.value);
    }
  }
}

SeriesSnapshot Tsdb::CopyOut(const std::pair<std::string, std::string>& key,
                             const Series& series) const {
  SeriesSnapshot out;
  out.name = key.first;
  out.label_key = key.second;
  out.labels = series.labels;
  out.type = series.type;
  out.samples.reserve(series.size);
  for (std::size_t i = 0; i < series.size; ++i) {
    out.samples.push_back(series.ring[(series.head + i) % options_.retention]);
  }
  return out;
}

std::vector<SeriesSnapshot> Tsdb::Match(
    const std::string& name,
    const std::function<bool(const Labels&)>& pred) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SeriesSnapshot> out;
  // Series sharing a name are contiguous in the sorted map.
  for (auto it = series_.lower_bound({name, std::string()});
       it != series_.end() && it->first.first == name; ++it) {
    if (pred && !pred(it->second.labels)) continue;
    out.push_back(CopyOut(it->first, it->second));
  }
  return out;
}

std::vector<SeriesSnapshot> Tsdb::All() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SeriesSnapshot> out;
  out.reserve(series_.size());
  for (const auto& [key, series] : series_) out.push_back(CopyOut(key, series));
  return out;
}

double Tsdb::LatestTime() const {
  std::lock_guard<std::mutex> lock(mu_);
  double latest = 0.0;
  for (const auto& [key, series] : series_) {
    if (series.size == 0) continue;
    const std::size_t tail =
        (series.head + series.size - 1) % options_.retention;
    latest = std::max(latest, series.ring[tail].t_s);
  }
  return latest;
}

TsdbStats Tsdb::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  TsdbStats stats;
  stats.series = series_.size();
  stats.appended = appended_;
  stats.evicted = evicted_;
  stats.out_of_order = out_of_order_;
  for (const auto& [key, series] : series_) stats.counter_resets += series.resets;
  return stats;
}

std::string TsdbJson(const Tsdb& tsdb) {
  const TsdbStats stats = tsdb.stats();
  std::string out = "{\"schema\":\"topfull.tsdb.v1\",\"step_s\":" +
                    Num(tsdb.options().step_s) + ",\"retention\":" +
                    std::to_string(tsdb.options().retention) +
                    ",\"stats\":{\"series\":" + std::to_string(stats.series) +
                    ",\"appended\":" + std::to_string(stats.appended) +
                    ",\"evicted\":" + std::to_string(stats.evicted) +
                    ",\"out_of_order\":" + std::to_string(stats.out_of_order) +
                    ",\"counter_resets\":" + std::to_string(stats.counter_resets) +
                    "},\"series\":[";
  bool first_series = true;
  for (const SeriesSnapshot& series : tsdb.All()) {
    if (!first_series) out += ",";
    first_series = false;
    out += "\n{\"name\":\"";
    out += JsonEscape(series.name);
    out += "\",\"type\":\"";
    out += MetricTypeName(series.type);
    out += "\",\"labels\":{";
    for (std::size_t i = 0; i < series.labels.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"";
      out += JsonEscape(series.labels[i].first);
      out += "\":\"";
      out += JsonEscape(series.labels[i].second);
      out += "\"";
    }
    out += "},\"samples\":[";
    for (std::size_t i = 0; i < series.samples.size(); ++i) {
      if (i > 0) out += ",";
      out += "[";
      out += NumExact(series.samples[i].t_s);
      out += ",";
      out += NumExact(series.samples[i].value);
      out += "]";
    }
    out += "]}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace topfull::obs

// Embedded fixed-memory time-series store for the observability plane.
//
// One Tsdb holds many series, each keyed by (family name, canonical label
// key — MetricsRegistry::LabelKey order) and backed by an append-only ring
// of (sim-time, value) samples with a fixed per-series capacity: memory is
// bounded by series x retention regardless of run length, and the oldest
// samples are evicted first. Two ingestion paths feed it:
//
//   * in-process: AppendSnapshot flattens a MetricsSnapshot at its sim-time
//     stamp — histogram cells expand into the same cumulative
//     `_bucket{le=...}` / `_sum` / `_count` series the Prometheus text
//     exposition renders (empty buckets elided, `+Inf` always present), so
//     the TSDB, the text endpoint, and the query engine agree on keys;
//   * out-of-process: AppendScrape ingests a parsed Prometheus scrape
//     (prom_parser.hpp), the ingestion half of the standalone runtime mode.
//
// Samples must arrive in nondecreasing time order per series; a sample at
// or before the series tail is dropped and counted, never reordered.
// Counter resets (a cumulative series going backwards) are detected on
// append and counted per series; rate()/increase() in the query engine
// compensate for them.
//
// Determinism: iteration (Match, TsdbJson) is sorted by (name, label key),
// values are formatted with the same locale-independent printf forms as
// the rest of the plane, and nothing here reads wall-clock time — a TSDB
// fed from sim-time window closes serialises byte-identically across
// TOPFULL_THREADS and shard-worker interleavings. All public methods are
// thread-safe (one mutex), so the HTTP query thread may read mid-run.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics_registry.hpp"
#include "obs/snapshot.hpp"

namespace topfull::obs {

struct PromScrape;  // prom_parser.hpp

struct TsdbOptions {
  /// Nominal sample spacing in seconds (the metrics-window cadence). The
  /// store does not enforce it; rule evaluation and artifact metadata use
  /// it.
  double step_s = 1.0;
  /// Ring capacity per series: samples retained before eviction.
  std::size_t retention = 4096;
};

/// One timestamped value of a series.
struct TsdbSample {
  double t_s = 0.0;
  double value = 0.0;
};

/// A copied-out view of one series, returned by Match (time-ascending).
struct SeriesSnapshot {
  std::string name;
  Labels labels;
  std::string label_key;  ///< MetricsRegistry::LabelKey(labels)
  MetricType type = MetricType::kGauge;
  std::vector<TsdbSample> samples;
};

/// Aggregate store counters (diagnostics + property tests).
struct TsdbStats {
  std::size_t series = 0;
  std::uint64_t appended = 0;      ///< samples accepted
  std::uint64_t evicted = 0;       ///< samples overwritten by the ring
  std::uint64_t out_of_order = 0;  ///< samples dropped (t <= series tail)
  std::uint64_t counter_resets = 0;
};

class Tsdb {
 public:
  explicit Tsdb(TsdbOptions options = {});

  /// Appends one sample. Creates the series (with `type`) on first use;
  /// later appends ignore `type`. Returns false when dropped out-of-order.
  bool Append(const std::string& name, const Labels& labels, MetricType type,
              double t_s, double value);

  /// Flattens every family of `snapshot` at time `t_s`. Histogram cells
  /// expand into cumulative `_bucket`/`_sum`/`_count` counter series keyed
  /// exactly like the text exposition.
  void AppendSnapshot(const MetricsSnapshot& snapshot, double t_s);

  /// Ingests a parsed Prometheus scrape at time `t_s`. Histogram families
  /// arrive pre-flattened (their samples already carry `le`); every sample
  /// of a histogram family is stored as a counter series.
  void AppendScrape(const PromScrape& scrape, double t_s);

  /// Copies out every series named `name` (exact match) whose labels pass
  /// `pred` (null = all), sorted by label key. One lock per call.
  std::vector<SeriesSnapshot> Match(
      const std::string& name,
      const std::function<bool(const Labels&)>& pred = nullptr) const;

  /// Copies out every series, sorted by (name, label key).
  std::vector<SeriesSnapshot> All() const;

  /// Largest sample time across all series (0 when empty): the "now" an
  /// instant query defaults to.
  double LatestTime() const;

  TsdbStats stats() const;
  const TsdbOptions& options() const { return options_; }

 private:
  struct Series {
    Labels labels;
    MetricType type = MetricType::kGauge;
    std::vector<TsdbSample> ring;  ///< capacity `retention`, oldest at head
    std::size_t head = 0;
    std::size_t size = 0;
    std::uint64_t resets = 0;
  };

  Series& GetSeries(const std::string& name, const Labels& labels,
                    MetricType type);
  bool AppendLocked(Series& series, double t_s, double value);
  SeriesSnapshot CopyOut(const std::pair<std::string, std::string>& key,
                         const Series& series) const;

  TsdbOptions options_;
  mutable std::mutex mu_;
  /// Keyed by (family name, canonical label key): sorted, deterministic.
  std::map<std::pair<std::string, std::string>, Series> series_;
  std::uint64_t appended_ = 0;
  std::uint64_t evicted_ = 0;
  std::uint64_t out_of_order_ = 0;
};

/// Serialises the whole store as the "topfull.tsdb.v1" JSON document
/// (options, stats, series with `%.17g` sample values so reloading
/// round-trips bit-exactly).
std::string TsdbJson(const Tsdb& tsdb);

}  // namespace topfull::obs

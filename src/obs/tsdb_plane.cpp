#include "obs/tsdb_plane.hpp"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <limits>

#include "obs/json.hpp"
#include "obs/query.hpp"
#include "obs/snapshot.hpp"
#include "sim/app.hpp"

namespace topfull::obs {

/// Chained window observer: forwards to the previously installed observer
/// first (SloMonitor events precede same-timestamp TSDB activity), then
/// hands the window to the plane.
struct TsdbPlane::Feeder : sim::WindowObserver {
  TsdbPlane* plane = nullptr;
  const MetricsRegistry* registry = nullptr;
  sim::WindowObserver* next = nullptr;
  Labels extra;

  void OnWindow(const sim::Snapshot& snapshot) override {
    if (next != nullptr) next->OnWindow(snapshot);
    plane->OnFeederWindow(*this, snapshot);
  }
};

TsdbPlane::TsdbPlane(TsdbPlaneOptions options)
    : options_(options), tsdb_(options.tsdb), rules_(&tsdb_) {}

TsdbPlane::~TsdbPlane() = default;

void TsdbPlane::Attach(sim::Application& app, int shard, int num_shards) {
  auto feeder = std::make_unique<Feeder>();
  feeder->plane = this;
  feeder->registry = &app.metrics_registry();
  feeder->next = app.metrics().window_observer();
  if (num_shards > 1) {
    feeder->extra.emplace_back("shard", std::to_string(shard));
  }
  app.metrics().SetWindowObserver(feeder.get());
  feeders_.push_back(std::move(feeder));
}

void TsdbPlane::OnFeederWindow(const Feeder& feeder,
                               const sim::Snapshot& snapshot) {
  // Registry families only: the live-only wall-clock families (profiler,
  // sharded scheduler) never enter the store, so its contents depend on
  // simulation state alone.
  SnapshotBuilder builder;
  builder.AddRegistry(*feeder.registry, feeder.extra);
  tsdb_.AppendSnapshot(*builder.Finish(), snapshot.t_end_s);
  if (options_.evaluate_on_window) {
    EvaluateBoundaries(snapshot.t_end_s, /*inclusive=*/true);
  }
}

void TsdbPlane::EvaluateRulesUpTo(double t_s) {
  EvaluateBoundaries(t_s, /*inclusive=*/false);
}

void TsdbPlane::FinishRules(double t_s) {
  EvaluateBoundaries(t_s, /*inclusive=*/true);
}

void TsdbPlane::EvaluateBoundaries(double limit_s, bool inclusive) {
  std::lock_guard<std::mutex> lock(eval_mu_);
  const double step = options_.tsdb.step_s;
  if (step <= 0.0) return;
  const double eps = step * 1e-9;
  while (true) {
    const double boundary = static_cast<double>(next_boundary_) * step;
    if (inclusive ? boundary > limit_s + eps : boundary >= limit_s - eps) {
      break;
    }
    rules_.Evaluate(boundary);
    ++next_boundary_;
  }
}

namespace {

bool WriteTextFile(const std::string& path, const std::string& body) {
  std::ofstream out(path);
  if (!out) return false;
  out << body;
  return static_cast<bool>(out);
}

}  // namespace

bool WriteTsdbJson(const Tsdb& tsdb, const std::string& path) {
  return WriteTextFile(path, TsdbJson(tsdb));
}

bool WriteAlertsJson(const RuleEngine& rules, const std::string& path) {
  return WriteTextFile(path, rules.AlertsJson());
}

std::unique_ptr<Tsdb> TsdbFromJson(const std::string& text,
                                   std::string* error) {
  const auto fail = [error](const std::string& why) -> std::unique_ptr<Tsdb> {
    if (error != nullptr) *error = why;
    return nullptr;
  };
  JsonValue doc;
  if (!ParseJson(text, &doc, error)) return nullptr;
  const JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || !schema->IsString() ||
      schema->string != "topfull.tsdb.v1") {
    return fail("not a topfull.tsdb.v1 document");
  }
  TsdbOptions options;
  if (const JsonValue* step = doc.Find("step_s");
      step != nullptr && step->IsNumber()) {
    options.step_s = step->number;
  }
  if (const JsonValue* retention = doc.Find("retention");
      retention != nullptr && retention->IsNumber()) {
    options.retention = static_cast<std::size_t>(retention->number);
  }
  auto tsdb = std::make_unique<Tsdb>(options);

  const JsonValue* series_list = doc.Find("series");
  if (series_list == nullptr || !series_list->IsArray()) {
    return fail("missing series array");
  }
  for (const JsonValue& series : series_list->array) {
    const JsonValue* name = series.Find("name");
    const JsonValue* type_name = series.Find("type");
    const JsonValue* labels_obj = series.Find("labels");
    const JsonValue* samples = series.Find("samples");
    if (name == nullptr || !name->IsString() || type_name == nullptr ||
        !type_name->IsString() || labels_obj == nullptr ||
        !labels_obj->IsObject() || samples == nullptr ||
        !samples->IsArray()) {
      return fail("malformed series entry");
    }
    MetricType type = MetricType::kGauge;
    if (type_name->string == "counter") {
      type = MetricType::kCounter;
    } else if (type_name->string == "gauge") {
      type = MetricType::kGauge;
    } else if (type_name->string == "histogram") {
      type = MetricType::kHistogram;
    } else {
      return fail("unknown series type '" + type_name->string + "'");
    }
    Labels labels;
    for (const auto& [key, value] : labels_obj->object) {
      if (!value.IsString()) return fail("non-string label value");
      labels.emplace_back(key, value.string);
    }
    for (const JsonValue& sample : samples->array) {
      if (!sample.IsArray() || sample.array.size() != 2 ||
          !sample.array[0].IsNumber()) {
        return fail("malformed sample (want [t, v])");
      }
      // Non-finite values round-trip as strings (JSON has no inf/nan).
      double value = 0.0;
      if (sample.array[1].IsNumber()) {
        value = sample.array[1].number;
      } else if (sample.array[1].IsString() && sample.array[1].string == "inf") {
        value = std::numeric_limits<double>::infinity();
      } else if (sample.array[1].IsString() &&
                 sample.array[1].string == "-inf") {
        value = -std::numeric_limits<double>::infinity();
      } else if (sample.array[1].IsString() && sample.array[1].string == "nan") {
        value = std::numeric_limits<double>::quiet_NaN();
      } else {
        return fail("malformed sample (want [t, v])");
      }
      tsdb->Append(name->string, labels, type, sample.array[0].number, value);
    }
  }
  return tsdb;
}

namespace {

HttpResponse QueryError(int status, const std::string& message) {
  QueryResult result;
  result.ok = false;
  result.error = message;
  HttpResponse response;
  response.status = status;
  response.content_type = "application/json";
  response.body = QueryResultJson(result);
  return response;
}

/// Full-token strtod; false on partial or empty input.
bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return errno == 0 && end == text.c_str() + text.size();
}

}  // namespace

HttpResponse HandleQueryRequest(const HttpRequest& request, const Tsdb& tsdb) {
  std::string expr;
  std::string time_text, start_text, end_text, step_text;
  for (const auto& [key, value] : ParseQueryParams(request.target)) {
    if (key == "expr" || key == "query") expr = value;
    if (key == "time") time_text = value;
    if (key == "start") start_text = value;
    if (key == "end") end_text = value;
    if (key == "step") step_text = value;
  }
  if (expr.empty()) return QueryError(400, "missing expr parameter");

  QueryResult result;
  const bool range = !start_text.empty() || !end_text.empty() ||
                     !step_text.empty();
  if (range) {
    double start = 0.0, end = 0.0, step = 0.0;
    if (!ParseDouble(start_text, &start) || !ParseDouble(end_text, &end) ||
        !ParseDouble(step_text, &step)) {
      return QueryError(400, "range query needs numeric start, end and step");
    }
    if (step <= 0.0) return QueryError(400, "step must be positive");
    if (end < start) return QueryError(400, "end precedes start");
    result = EvalRange(tsdb, expr, start, end, step);
  } else {
    double t = tsdb.LatestTime();
    if (!time_text.empty() && !ParseDouble(time_text, &t)) {
      return QueryError(400, "bad time parameter");
    }
    result = EvalInstant(tsdb, expr, t);
  }

  HttpResponse response;
  response.status = result.ok ? 200 : 400;
  response.content_type = "application/json";
  response.body = QueryResultJson(result);
  return response;
}

}  // namespace topfull::obs

// In-process TSDB feed + rule evaluation for a simulation run.
//
// A TsdbPlane owns one Tsdb and one RuleEngine and feeds the store from
// the sim::MetricsCollector window stream: Attach installs a
// WindowObserver on the application that, at every window close, builds a
// registry-only MetricsSnapshot (no wall-clock families — none of the
// live-only profiler/scheduler gauges ever enter the store) and appends it
// at the window's sim-time stamp. The feeder chains to whatever observer
// was already installed (obs::SloMonitor) and calls it first, so the SLO
// event stream is untouched and alert transitions at the same timestamp
// sort after monitor events.
//
// Rule pacing follows the quiescent-point discipline:
//  * unsharded (evaluate_on_window = true, the default): rules are
//    evaluated inline at each window close, right after the append;
//  * sharded (evaluate_on_window = false): feeders only append; the
//    coordinating thread calls EvaluateRulesUpTo at chunk edges and
//    FinishRules at end of run. Because query evaluation is strictly
//    backward-looking (query.hpp), evaluating a boundary late produces the
//    identical result, so both pacings yield the same transitions.
//
// The plane is a pure observer: it never schedules events or touches RNG
// state, so a run with it attached is bit-identical to one without.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/http_server.hpp"
#include "obs/rules.hpp"
#include "obs/tsdb.hpp"
#include "sim/metrics.hpp"

namespace topfull::sim {
class Application;
}  // namespace topfull::sim

namespace topfull::obs {

struct TsdbPlaneOptions {
  TsdbOptions tsdb;
  /// Evaluate rules inline at every window close (unsharded runs). Sharded
  /// runs set false and pace evaluation with EvaluateRulesUpTo/FinishRules.
  bool evaluate_on_window = true;
};

class TsdbPlane {
 public:
  explicit TsdbPlane(TsdbPlaneOptions options = {});
  ~TsdbPlane();
  TsdbPlane(const TsdbPlane&) = delete;
  TsdbPlane& operator=(const TsdbPlane&) = delete;

  /// Installs the window feeder on `app`, chaining to any observer already
  /// installed there. Cells get a shard="k" label only when num_shards > 1
  /// (so unsharded series keys match the text exposition exactly).
  void Attach(sim::Application& app, int shard = 0, int num_shards = 1);

  Tsdb& tsdb() { return tsdb_; }
  const Tsdb& tsdb() const { return tsdb_; }
  RuleEngine& rules() { return rules_; }
  const RuleEngine& rules() const { return rules_; }
  const TsdbPlaneOptions& options() const { return options_; }

  /// Switches to externally paced rule evaluation (the sharded runner
  /// calls this before attaching feeders: worker threads must only
  /// append). Must be called before the run starts.
  void DisableInlineEvaluation() { options_.evaluate_on_window = false; }

  /// Evaluates every not-yet-evaluated step boundary strictly before
  /// `t_s`. Strictly: a window closing exactly at a chunk edge may not
  /// have run yet, so the edge itself is deferred to the next call.
  void EvaluateRulesUpTo(double t_s);

  /// End-of-run catch-up: evaluates boundaries up to and including `t_s`.
  void FinishRules(double t_s);

 private:
  struct Feeder;
  void OnFeederWindow(const Feeder& feeder, const sim::Snapshot& snapshot);
  void EvaluateBoundaries(double limit_s, bool inclusive);

  TsdbPlaneOptions options_;
  Tsdb tsdb_;
  RuleEngine rules_;
  std::mutex eval_mu_;
  std::uint64_t next_boundary_ = 1;  ///< next boundary is next_boundary_*step
  std::vector<std::unique_ptr<Feeder>> feeders_;
};

/// Writes TsdbJson(tsdb) to `path`. Returns false on I/O failure.
bool WriteTsdbJson(const Tsdb& tsdb, const std::string& path);

/// Writes rules.AlertsJson() to `path`. Returns false on I/O failure.
bool WriteAlertsJson(const RuleEngine& rules, const std::string& path);

/// Reloads a "topfull.tsdb.v1" document (the `<name>.tsdb.json` artifact)
/// into a fresh store. Samples are stored in `%.17g`, so the reload is
/// bit-exact and replayed /query responses match the live ones byte for
/// byte. Returns null with `error` filled on malformed input.
std::unique_ptr<Tsdb> TsdbFromJson(const std::string& text,
                                   std::string* error = nullptr);

/// Serves `/query?expr=...` over any store: `time=` (default: the store's
/// latest sample time) selects an instant query, `start=`/`end=`/`step=`
/// a range query. Body is QueryResultJson; parse/eval errors return 400,
/// missing/bad parameters 400 with the same JSON error envelope.
HttpResponse HandleQueryRequest(const HttpRequest& request, const Tsdb& tsdb);

}  // namespace topfull::obs

// RL environment interface.
//
// Episodic, single-scalar-action environments (the rate-control problem):
// observation is a small vector, action is one continuous multiplicative
// step. Implemented by GraphSimEnv (pre-training, §4.3) and by the
// application-backed MicroserviceEnv (specialisation, in src/exp).
#pragma once

#include <cstdint>
#include <vector>

namespace topfull::rl {

struct StepResult {
  std::vector<double> obs;
  double reward = 0.0;
  bool done = false;
};

class Env {
 public:
  virtual ~Env() = default;

  /// Starts a new episode; `seed` randomises the scenario (DAG shapes,
  /// capacities, demand). Returns the initial observation.
  virtual std::vector<double> Reset(std::uint64_t seed) = 0;

  /// Applies one action and advances the environment.
  virtual StepResult Step(double action) = 0;

  virtual int ObsDim() const = 0;
};

}  // namespace topfull::rl

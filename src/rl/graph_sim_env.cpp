#include "rl/graph_sim_env.hpp"

#include <algorithm>
#include <cmath>

#include "rl/observation.hpp"

namespace topfull::rl {

GraphSimEnv::GraphSimEnv(GraphSimConfig config, std::uint64_t base_seed)
    : config_(config), base_seed_(base_seed), rng_(base_seed) {}

std::vector<double> GraphSimEnv::Reset(std::uint64_t seed) {
  rng_ = Rng(base_seed_ ^ (seed * 0x9E3779B97F4A7C15ULL + 0x2545F4914F6CDD1DULL));
  nodes_.clear();
  dags_.clear();
  step_ = 0;

  const int num_dags =
      static_cast<int>(rng_.UniformInt(config_.min_dags, config_.max_dags));
  for (int d = 0; d < num_dags; ++d) {
    Dag dag;
    const int num_nodes =
        static_cast<int>(rng_.UniformInt(config_.min_nodes, config_.max_nodes));
    for (int n = 0; n < num_nodes; ++n) {
      int idx;
      if (!nodes_.empty() && rng_.Bernoulli(config_.node_share_prob)) {
        idx = static_cast<int>(
            rng_.UniformInt(0, static_cast<std::int64_t>(nodes_.size()) - 1));
        if (std::find(dag.nodes.begin(), dag.nodes.end(), idx) != dag.nodes.end()) {
          continue;  // avoid the same node twice in one path
        }
      } else {
        Node node;
        node.capacity = rng_.Uniform(config_.capacity_lo, config_.capacity_hi);
        node.base_latency_ms =
            rng_.Uniform(config_.base_latency_lo_ms, config_.base_latency_hi_ms);
        nodes_.push_back(node);
        idx = static_cast<int>(nodes_.size()) - 1;
      }
      dag.nodes.push_back(idx);
    }
    if (dag.nodes.empty()) {
      Node node;
      node.capacity = rng_.Uniform(config_.capacity_lo, config_.capacity_hi);
      node.base_latency_ms =
          rng_.Uniform(config_.base_latency_lo_ms, config_.base_latency_hi_ms);
      nodes_.push_back(node);
      dag.nodes.push_back(static_cast<int>(nodes_.size()) - 1);
    }
    dags_.push_back(std::move(dag));
  }

  // Demand relative to each DAG's bottleneck capacity: some under, some over.
  for (auto& dag : dags_) {
    double bottleneck = 1e18;
    for (const int n : dag.nodes) bottleneck = std::min(bottleneck, nodes_[n].capacity);
    dag.demand = rng_.Uniform(config_.demand_lo, config_.demand_hi) * bottleneck;
  }

  // Mid-episode disturbances (teach surge reaction / autoscaler recovery).
  surge_step_ = rng_.Bernoulli(config_.surge_prob)
                    ? static_cast<int>(rng_.UniformInt(5, config_.steps_per_episode - 10))
                    : -1;
  surge_factor_ = rng_.Uniform(1.5, 3.0);
  scaleup_step_ = rng_.Bernoulli(config_.scaleup_prob)
                      ? static_cast<int>(rng_.UniformInt(10, config_.steps_per_episode - 5))
                      : -1;
  scaleup_factor_ = rng_.Uniform(1.5, 2.5);

  // Most episodes start uncapped (the limit equals total offered demand);
  // some start deeply throttled to teach fast recovery.
  rate_limit_ = total_demand();
  if (rng_.Bernoulli(config_.undershoot_start_prob)) {
    rate_limit_ *= rng_.Uniform(0.02, 0.5);
  }
  Simulate();
  return Observation();
}

double GraphSimEnv::total_demand() const {
  double sum = 0.0;
  for (const auto& dag : dags_) sum += dag.demand;
  return sum;
}

double GraphSimEnv::BottleneckCapacity() const {
  // Sustainable total goodput bound: sum over dags of per-dag bottleneck,
  // capped by shared-node capacities (approximation for reporting only).
  double sum = 0.0;
  for (const auto& dag : dags_) {
    double bottleneck = 1e18;
    for (const int n : dag.nodes) bottleneck = std::min(bottleneck, nodes_[n].capacity);
    sum += bottleneck;
  }
  return sum;
}

void GraphSimEnv::Simulate() {
  // Split the aggregate rate limit across DAGs in proportion to demand.
  const double demand = total_demand();
  const double admit_total = std::min(demand, rate_limit_);
  std::vector<double> admitted(dags_.size(), 0.0);
  for (std::size_t d = 0; d < dags_.size(); ++d) {
    admitted[d] = demand > 0.0 ? admit_total * dags_[d].demand / demand : 0.0;
  }

  // Node arrivals.
  std::vector<double> arrivals(nodes_.size(), 0.0);
  for (std::size_t d = 0; d < dags_.size(); ++d) {
    for (const int n : dags_[d].nodes) arrivals[n] += admitted[d];
  }

  // Backlog dynamics (1 s step): served = min(capacity, backlog + arrivals).
  std::vector<double> delay_ms(nodes_.size(), 0.0);
  std::vector<double> pass_share(nodes_.size(), 1.0);
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    Node& node = nodes_[n];
    const double offered = node.backlog + arrivals[n];
    // Rule 1 (§4.3): past saturation, efficiency falls as pressure rises —
    // an overloaded node serves *less* when pushed harder, so the goodput
    // peak sits exactly at offered == capacity.
    const double pressure =
        node.capacity > 0.0 ? std::max(0.0, offered / node.capacity - 1.0) : 0.0;
    const double effective_capacity =
        node.capacity / (1.0 + config_.thrash * pressure);
    const double served = std::min(effective_capacity, offered);
    node.backlog = std::min(offered - served, node.capacity * config_.max_backlog_s);
    const double overload = node.capacity > 0.0 ? node.backlog / node.capacity : 0.0;
    // Stochastic queueing delay is negligible at low utilisation and grows
    // sharply past ~0.85 (Erlang-C-like u^6/(1-u) knee) — without this the
    // agent would learn that sitting at capacity is latency-free, which no
    // real queueing system offers.
    const double util =
        node.capacity > 0.0 ? std::min(arrivals[n] / node.capacity, 0.995) : 0.0;
    const double u6 = util * util * util * util * util * util;
    const double queue_ms = node.base_latency_ms * u6 / (1.0 - util) * 2.0;
    double noise = 0.0;
    if (config_.noise > 0.0 && (overload > 0.0 || util > 0.5)) {
      // Rule: noise proportional to the scale of the overload condition.
      noise = rng_.Normal(0.0, config_.noise * (overload + util * util)) * 1000.0;
    }
    delay_ms[n] =
        std::max(0.0, node.base_latency_ms + queue_ms + overload * 1000.0 + noise);
    pass_share[n] = offered > 0.0 ? served / offered : 1.0;
  }

  // Per-DAG end-to-end latency and goodput.
  double total_good = 0.0;
  double max_latency_s = 0.0;
  for (std::size_t d = 0; d < dags_.size(); ++d) {
    double latency_ms = 0.0;
    double through = admitted[d];
    for (const int n : dags_[d].nodes) {
      latency_ms += delay_ms[n];
      through *= pass_share[n];
    }
    const double latency_s = latency_ms / 1000.0;
    max_latency_s = std::max(max_latency_s, latency_s);
    // Responses count as good while the path meets the SLO; past it the
    // good fraction decays (requests increasingly finish late).
    double ok = 1.0;
    if (latency_s > config_.slo_s) {
      ok = std::max(0.0, 1.0 - 2.0 * (latency_s - config_.slo_s) / config_.slo_s);
    }
    total_good += through * ok;
  }
  last_goodput_ = total_good;
  last_latency_s_ = max_latency_s;
}

std::vector<double> GraphSimEnv::Observation() const {
  return MakeObservation(last_goodput_, rate_limit_, last_latency_s_, config_.slo_s);
}

StepResult GraphSimEnv::Step(double action) {
  const double clipped = std::clamp(action, -0.5, 0.5);
  const double prev_good = last_goodput_;

  // Disturbances fire at their scheduled step.
  if (step_ == surge_step_) {
    for (auto& dag : dags_) dag.demand *= surge_factor_;
  }
  if (step_ == scaleup_step_) {
    for (auto& node : nodes_) node.capacity *= scaleup_factor_;
  }

  rate_limit_ *= (1.0 + clipped);
  const double floor = 0.01 * BottleneckCapacity();
  const double ceil = 3.0 * std::max(total_demand(), BottleneckCapacity());
  rate_limit_ = std::clamp(rate_limit_, std::max(1.0, floor), ceil);

  Simulate();
  ++step_;

  StepResult result;
  result.obs = Observation();
  const double delta_good = (last_goodput_ - prev_good) / config_.goodput_scale;
  const double violation =
      std::max(0.0, (last_latency_s_ - config_.slo_s) / config_.slo_s);
  result.reward = delta_good - config_.rho * violation;
  result.done = step_ >= config_.steps_per_episode;
  return result;
}

}  // namespace topfull::rl

// The paper's pre-training graph simulator (§4.3 "Simulator's design
// principle").
//
// Each episode randomly generates 1-3 DAGs (API execution paths) of 1-5
// nodes (microservices), possibly sharing nodes. Every node has a random
// base latency and load capacity and keeps a backlog: when arrivals exceed
// capacity the backlog grows, latency rises with it (plus noise proportional
// to the overload), and goodput falls — the three behaviour rules of the
// paper. The agent controls one aggregate entry rate limit with a
// multiplicative step; reward is Eq. 3 (delta-goodput minus SLO-violation
// penalty).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "rl/env.hpp"

namespace topfull::rl {

struct GraphSimConfig {
  int min_dags = 1, max_dags = 3;      // paper: 1-3 DAGs
  int min_nodes = 1, max_nodes = 5;    // paper: 1-5 nodes per DAG
  double node_share_prob = 0.4;        ///< chance a node is reused across DAGs
  double capacity_lo = 300.0, capacity_hi = 3000.0;  // rps
  double base_latency_lo_ms = 2.0, base_latency_hi_ms = 30.0;
  double demand_lo = 0.6, demand_hi = 2.5;  ///< x bottleneck capacity
  double slo_s = 1.0;
  double rho = 0.5;              ///< Eq. 3 penalty coefficient
  double goodput_scale = 300.0; ///< reward normalisation (krps)
  double max_backlog_s = 2.0;    ///< queued work cap (timeout drops)
  /// Service-efficiency loss under overload (the paper's rule 1: an
  /// overloaded node's goodput *decreases* as its incoming rate rises).
  /// served = capacity / (1 + thrash * overload_ratio).
  double thrash = 0.4;
  double noise = 0.05;           ///< latency noise, scaled by overload
  double surge_prob = 0.35;      ///< mid-episode demand surge
  double scaleup_prob = 0.35;    ///< mid-episode capacity increase (autoscaler)
  /// Probability an episode starts deeply rate-limited (recovery training:
  /// the controller must climb back fast after an overload was resolved or
  /// an autoscaler added capacity - teaches rapid upward adaptation).
  double undershoot_start_prob = 0.5;
  int steps_per_episode = 50;
};

class GraphSimEnv : public Env {
 public:
  explicit GraphSimEnv(GraphSimConfig config = {}, std::uint64_t base_seed = 1);

  std::vector<double> Reset(std::uint64_t seed) override;
  StepResult Step(double action) override;
  int ObsDim() const override { return 2; }

  // Introspection for tests.
  double rate_limit() const { return rate_limit_; }
  double total_demand() const;
  double last_goodput() const { return last_goodput_; }
  double last_latency_s() const { return last_latency_s_; }
  double BottleneckCapacity() const;

 private:
  struct Node {
    double capacity = 0.0;
    double base_latency_ms = 0.0;
    double backlog = 0.0;  // queued requests
  };
  struct Dag {
    std::vector<int> nodes;  // indices into nodes_
    double demand = 0.0;     // offered rps
  };

  /// Advances the queueing dynamics by one 1 s step given the current rate
  /// limit; refreshes last_goodput_ / last_latency_s_.
  void Simulate();
  std::vector<double> Observation() const;

  GraphSimConfig config_;
  std::uint64_t base_seed_;
  Rng rng_;
  std::vector<Node> nodes_;
  std::vector<Dag> dags_;
  double rate_limit_ = 0.0;
  double last_goodput_ = 0.0;
  double last_latency_s_ = 0.0;
  int step_ = 0;
  int surge_step_ = -1;
  double surge_factor_ = 1.0;
  int scaleup_step_ = -1;
  double scaleup_factor_ = 1.0;
};

}  // namespace topfull::rl

#include "rl/nn.hpp"

#include <cassert>
#include <cmath>

namespace topfull::rl {

Mlp::Mlp(std::vector<int> sizes, Rng& rng) : sizes_(std::move(sizes)) {
  assert(sizes_.size() >= 2);
  layers_.resize(sizes_.size() - 1);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    Layer& layer = layers_[l];
    layer.in = sizes_[l];
    layer.out = sizes_[l + 1];
    layer.w.resize(static_cast<std::size_t>(layer.in) * layer.out);
    layer.b.assign(layer.out, 0.0);
    layer.gw.assign(layer.w.size(), 0.0);
    layer.gb.assign(layer.b.size(), 0.0);
    // Xavier/Glorot uniform.
    const double bound = std::sqrt(6.0 / static_cast<double>(layer.in + layer.out));
    for (auto& w : layer.w) w = rng.Uniform(-bound, bound);
  }
}

std::vector<double> Mlp::Forward(const std::vector<double>& x, Cache* cache) const {
  assert(static_cast<int>(x.size()) == sizes_.front());
  std::vector<double> a = x;
  if (cache != nullptr) {
    cache->activations.clear();
    cache->activations.push_back(a);
  }
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    std::vector<double> z(layer.out, 0.0);
    for (int o = 0; o < layer.out; ++o) {
      double acc = layer.b[o];
      const double* row = &layer.w[static_cast<std::size_t>(o) * layer.in];
      for (int i = 0; i < layer.in; ++i) acc += row[i] * a[i];
      z[o] = acc;
    }
    const bool hidden = l + 1 < layers_.size();
    if (hidden) {
      for (auto& v : z) v = std::tanh(v);
    }
    a = std::move(z);
    if (cache != nullptr) cache->activations.push_back(a);
  }
  return a;
}

std::vector<double> Mlp::Backward(const Cache& cache, const std::vector<double>& dy) {
  assert(cache.activations.size() == layers_.size() + 1);
  std::vector<double> delta = dy;  // dL/d(activation of current layer)
  for (std::size_t li = layers_.size(); li-- > 0;) {
    Layer& layer = layers_[li];
    const std::vector<double>& a_in = cache.activations[li];
    const std::vector<double>& a_out = cache.activations[li + 1];
    // For hidden layers, activation is tanh: dz = da * (1 - a^2).
    std::vector<double> dz = delta;
    const bool hidden = li + 1 < layers_.size();
    if (hidden) {
      for (int o = 0; o < layer.out; ++o) dz[o] *= 1.0 - a_out[o] * a_out[o];
    }
    for (int o = 0; o < layer.out; ++o) {
      layer.gb[o] += dz[o];
      double* grow = &layer.gw[static_cast<std::size_t>(o) * layer.in];
      for (int i = 0; i < layer.in; ++i) grow[i] += dz[o] * a_in[i];
    }
    std::vector<double> dx(layer.in, 0.0);
    for (int o = 0; o < layer.out; ++o) {
      const double* row = &layer.w[static_cast<std::size_t>(o) * layer.in];
      for (int i = 0; i < layer.in; ++i) dx[i] += row[i] * dz[o];
    }
    delta = std::move(dx);
  }
  return delta;
}

void Mlp::ZeroGrad() {
  for (auto& layer : layers_) {
    std::fill(layer.gw.begin(), layer.gw.end(), 0.0);
    std::fill(layer.gb.begin(), layer.gb.end(), 0.0);
  }
}

std::size_t Mlp::ParamCount() const {
  std::size_t n = 0;
  for (const auto& layer : layers_) n += layer.w.size() + layer.b.size();
  return n;
}

void Mlp::CopyParamsTo(std::vector<double>& out) const {
  out.clear();
  out.reserve(ParamCount());
  for (const auto& layer : layers_) {
    out.insert(out.end(), layer.w.begin(), layer.w.end());
    out.insert(out.end(), layer.b.begin(), layer.b.end());
  }
}

void Mlp::SetParams(const std::vector<double>& params) {
  assert(params.size() == ParamCount());
  std::size_t k = 0;
  for (auto& layer : layers_) {
    for (auto& w : layer.w) w = params[k++];
    for (auto& b : layer.b) b = params[k++];
  }
}

void Mlp::CopyGradsTo(std::vector<double>& out) const {
  out.clear();
  out.reserve(ParamCount());
  for (const auto& layer : layers_) {
    out.insert(out.end(), layer.gw.begin(), layer.gw.end());
    out.insert(out.end(), layer.gb.begin(), layer.gb.end());
  }
}

Adam::Adam(std::size_t dim, double lr, double beta1, double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps), m_(dim, 0.0), v_(dim, 0.0) {}

void Adam::Step(std::vector<double>& params, const std::vector<double>& grads) {
  assert(params.size() == m_.size() && grads.size() == m_.size());
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * grads[i];
    v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * grads[i] * grads[i];
    const double mhat = m_[i] / bc1;
    const double vhat = v_[i] / bc2;
    params[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
  }
}

}  // namespace topfull::rl

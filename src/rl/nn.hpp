// Minimal neural-network building blocks for the PPO rate controller.
//
// The paper's policy is tiny (2-dim state, 1-dim action, RLlib default
// 2x64 tanh hidden layers), so a small dense MLP with manual backprop and an
// Adam optimiser is a faithful CPU reimplementation of the RLlib setup.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/rng.hpp"

namespace topfull::rl {

/// Fully connected multi-layer perceptron with tanh hidden activations and a
/// linear output layer. Parameters are stored flat per layer; gradients are
/// accumulated into a parallel structure by Backward.
class Mlp {
 public:
  /// `sizes` = {in, hidden..., out}. Weights are Xavier-initialised.
  Mlp(std::vector<int> sizes, Rng& rng);

  /// Activations cache produced by Forward and consumed by Backward.
  struct Cache {
    std::vector<std::vector<double>> activations;  // a[0]=input .. a[L]=output
  };

  /// Computes the output for `x` (and the cache when `cache` non-null).
  std::vector<double> Forward(const std::vector<double>& x, Cache* cache = nullptr) const;

  /// Backpropagates dL/dy, accumulating parameter gradients (into the
  /// internal grad buffers) and returning dL/dx.
  std::vector<double> Backward(const Cache& cache, const std::vector<double>& dy);

  /// Zeroes accumulated gradients.
  void ZeroGrad();

  /// Number of scalar parameters.
  std::size_t ParamCount() const;

  /// Flattened views used by the optimiser and checkpointing.
  void CopyParamsTo(std::vector<double>& out) const;
  void SetParams(const std::vector<double>& params);
  void CopyGradsTo(std::vector<double>& out) const;

  const std::vector<int>& sizes() const { return sizes_; }

 private:
  struct Layer {
    int in = 0, out = 0;
    std::vector<double> w;       // out x in, row-major
    std::vector<double> b;       // out
    std::vector<double> gw, gb;  // accumulated gradients
  };

  std::vector<int> sizes_;
  std::vector<Layer> layers_;
};

/// Adam optimiser over a flat parameter vector.
class Adam {
 public:
  explicit Adam(std::size_t dim, double lr = 5e-5, double beta1 = 0.9,
                double beta2 = 0.999, double eps = 1e-8);

  /// Applies one update: params -= lr * mhat / (sqrt(vhat) + eps).
  void Step(std::vector<double>& params, const std::vector<double>& grads);

  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

 private:
  double lr_, beta1_, beta2_, eps_;
  std::uint64_t t_ = 0;
  std::vector<double> m_, v_;
};

}  // namespace topfull::rl

// Canonical observation encoding shared by training environments and the
// deployed controller.
//
// The paper's state (§4.3): 1) ratio of goodput to the current rate limit of
// the candidate APIs, 2) their highest end-to-end percentile latency. We
// normalise latency by the SLO and clip both features so the policy sees the
// same scale in the graph simulator, in the application environment, and in
// deployment.
#pragma once

#include <algorithm>
#include <vector>

namespace topfull::rl {

inline constexpr double kMaxLatencyFactor = 5.0;

/// Builds the 2-dim observation: [goodput/limit in [0, 2], latency/SLO in
/// [0, kMaxLatencyFactor]].
inline std::vector<double> MakeObservation(double goodput, double rate_limit,
                                           double latency_s, double slo_s) {
  const double ratio =
      rate_limit > 0.0 ? std::clamp(goodput / rate_limit, 0.0, 2.0) : 0.0;
  const double lat =
      slo_s > 0.0 ? std::clamp(latency_s / slo_s, 0.0, kMaxLatencyFactor) : 0.0;
  return {ratio, lat};
}

}  // namespace topfull::rl

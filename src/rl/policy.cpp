#include "rl/policy.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <fstream>
#include <sstream>

namespace topfull::rl {
namespace {

std::vector<int> NetSizes(const PolicyConfig& config) {
  std::vector<int> sizes;
  sizes.push_back(config.obs_dim);
  for (const int h : config.hidden) sizes.push_back(h);
  sizes.push_back(1);
  return sizes;
}

constexpr double kHalfLog2Pi = 0.9189385332046727;  // 0.5 * log(2*pi)

}  // namespace

GaussianPolicy::GaussianPolicy(PolicyConfig config, Rng& rng)
    : config_(std::move(config)),
      mean_net_(NetSizes(config_), rng),
      value_net_(NetSizes(config_), rng),
      log_std_(config_.init_log_std) {}

GaussianPolicy::Eval GaussianPolicy::Evaluate(const std::vector<double>& obs) const {
  Eval eval;
  const std::vector<double> out = mean_net_.Forward(obs, &eval.cache);
  eval.raw_out = out[0];
  const double center = 0.5 * (config_.action_low + config_.action_high);
  const double half = 0.5 * (config_.action_high - config_.action_low);
  eval.mean = center + half * std::tanh(eval.raw_out);
  eval.log_std = log_std_;
  return eval;
}

double GaussianPolicy::MeanAction(const std::vector<double>& obs) const {
  return Evaluate(obs).mean;
}

double GaussianPolicy::SampleAction(const std::vector<double>& obs, Rng& rng,
                                    double* raw) const {
  const Eval eval = Evaluate(obs);
  const double std = std::exp(eval.log_std);
  const double sample = rng.Normal(eval.mean, std);
  if (raw != nullptr) *raw = sample;
  return std::clamp(sample, config_.action_low, config_.action_high);
}

double GaussianPolicy::LogProb(double a, double mean, double log_std) {
  const double std = std::exp(log_std);
  const double z = (a - mean) / std;
  return -0.5 * z * z - log_std - kHalfLog2Pi;
}

void GaussianPolicy::Accumulate(const Eval& eval, double d_mean, double d_log_std) {
  // mean = center + half * tanh(raw_out) => dmean/draw = half * (1 - tanh^2).
  const double half = 0.5 * (config_.action_high - config_.action_low);
  const double t = std::tanh(eval.raw_out);
  const double d_raw = d_mean * half * (1.0 - t * t);
  mean_net_.Backward(eval.cache, {d_raw});
  g_log_std_ += d_log_std;
}

double GaussianPolicy::Value(const std::vector<double>& obs, Mlp::Cache* cache) const {
  return value_net_.Forward(obs, cache)[0];
}

void GaussianPolicy::AccumulateValue(const Mlp::Cache& cache, double d_value) {
  value_net_.Backward(cache, {d_value});
}

void GaussianPolicy::ZeroGrad() {
  mean_net_.ZeroGrad();
  value_net_.ZeroGrad();
  g_log_std_ = 0.0;
}

std::size_t GaussianPolicy::ParamCount() const {
  return mean_net_.ParamCount() + 1 + value_net_.ParamCount();
}

void GaussianPolicy::CopyParamsTo(std::vector<double>& out) const {
  std::vector<double> tmp;
  mean_net_.CopyParamsTo(out);
  out.push_back(log_std_);
  value_net_.CopyParamsTo(tmp);
  out.insert(out.end(), tmp.begin(), tmp.end());
}

void GaussianPolicy::SetParams(const std::vector<double>& params) {
  assert(params.size() == ParamCount());
  const std::size_t m = mean_net_.ParamCount();
  std::vector<double> mean_params(params.begin(), params.begin() + m);
  mean_net_.SetParams(mean_params);
  log_std_ = params[m];
  std::vector<double> value_params(params.begin() + m + 1, params.end());
  value_net_.SetParams(value_params);
}

void GaussianPolicy::CopyGradsTo(std::vector<double>& out) const {
  std::vector<double> tmp;
  mean_net_.CopyGradsTo(out);
  out.push_back(g_log_std_);
  value_net_.CopyGradsTo(tmp);
  out.insert(out.end(), tmp.begin(), tmp.end());
}

void GaussianPolicy::Save(std::ostream& os) const {
  os << "topfull-policy-v1\n";
  os << config_.obs_dim << ' ' << config_.hidden.size();
  for (const int h : config_.hidden) os << ' ' << h;
  os << '\n';
  os << config_.action_low << ' ' << config_.action_high << '\n';
  std::vector<double> params;
  CopyParamsTo(params);
  os << params.size() << '\n';
  os.precision(17);
  for (const double p : params) os << p << '\n';
}

bool GaussianPolicy::Load(std::istream& is) {
  std::string magic;
  if (!(is >> magic) || magic != "topfull-policy-v1") return false;
  int obs_dim = 0;
  std::size_t num_hidden = 0;
  if (!(is >> obs_dim >> num_hidden)) return false;
  std::vector<int> hidden(num_hidden);
  for (auto& h : hidden) {
    if (!(is >> h)) return false;
  }
  double low = 0.0, high = 0.0;
  if (!(is >> low >> high)) return false;
  if (obs_dim != config_.obs_dim || hidden != config_.hidden) return false;
  std::size_t n = 0;
  if (!(is >> n) || n != ParamCount()) return false;
  std::vector<double> params(n);
  for (auto& p : params) {
    if (!(is >> p)) return false;
  }
  config_.action_low = low;
  config_.action_high = high;
  SetParams(params);
  return true;
}

bool GaussianPolicy::SaveFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  Save(out);
  return static_cast<bool>(out);
}

bool GaussianPolicy::LoadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  return Load(in);
}

}  // namespace topfull::rl

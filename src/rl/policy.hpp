// Diagonal-Gaussian policy + value function for the rate controller.
//
// Observation (paper §4.3): [goodput / rate limit, e2e percentile latency].
// Action: one continuous multiplicative step; the network emits a mean that
// is tanh-squashed into [action_low, action_high] (paper: [-0.5, 0.5]) with
// a state-independent learned log-std, RLlib-style. Sampled actions are
// clipped to the bounds when applied; log-probabilities use the raw sample.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "rl/nn.hpp"

namespace topfull::rl {

struct PolicyConfig {
  int obs_dim = 2;
  std::vector<int> hidden = {64, 64};
  double action_low = -0.5;
  double action_high = 0.5;
  double init_log_std = -1.2;  // std ~0.3: enough exploration, resolves fine steps
};

class GaussianPolicy {
 public:
  GaussianPolicy(PolicyConfig config, Rng& rng);

  /// Forward pass artefacts needed for both inference and backprop.
  struct Eval {
    double mean = 0.0;     ///< squashed mean in [low, high]
    double raw_out = 0.0;  ///< pre-squash network output
    double log_std = 0.0;
    Mlp::Cache cache;
  };

  Eval Evaluate(const std::vector<double>& obs) const;

  /// Deterministic action (the squashed mean) — used at deployment time.
  double MeanAction(const std::vector<double>& obs) const;

  /// Samples an action; returns the clipped action and stores the raw
  /// (unclipped) sample in `raw` for log-prob bookkeeping.
  double SampleAction(const std::vector<double>& obs, Rng& rng, double* raw) const;

  /// Gaussian log-density of raw action `a` under (mean, std).
  static double LogProb(double a, double mean, double log_std);

  /// Accumulates gradients: dL/dmean and dL/dlog_std for the sample whose
  /// forward pass produced `eval`.
  void Accumulate(const Eval& eval, double d_mean, double d_log_std);

  /// Value-function forward / backward.
  double Value(const std::vector<double>& obs, Mlp::Cache* cache = nullptr) const;
  void AccumulateValue(const Mlp::Cache& cache, double d_value);

  // --- Optimisation plumbing ----------------------------------------------
  void ZeroGrad();
  /// Flattened parameters: [mean-net | log_std | value-net].
  std::size_t ParamCount() const;
  void CopyParamsTo(std::vector<double>& out) const;
  void SetParams(const std::vector<double>& params);
  void CopyGradsTo(std::vector<double>& out) const;

  // --- Checkpointing --------------------------------------------------------
  void Save(std::ostream& os) const;
  /// Loads a checkpoint; returns false on malformed input.
  bool Load(std::istream& is);
  bool SaveFile(const std::string& path) const;
  bool LoadFile(const std::string& path);

  const PolicyConfig& config() const { return config_; }
  double log_std() const { return log_std_; }

 private:
  PolicyConfig config_;
  Mlp mean_net_;
  Mlp value_net_;
  double log_std_;
  double g_log_std_ = 0.0;
};

}  // namespace topfull::rl

#include "rl/ppo.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "common/thread_pool.hpp"

namespace topfull::rl {

PpoTrainer::PpoTrainer(GaussianPolicy* policy, PpoConfig config, std::uint64_t seed)
    : policy_(policy),
      config_(config),
      seed_(seed),
      rng_(seed),
      optimizer_(policy->ParamCount(), config.lr),
      kl_coeff_(config.kl_coeff) {}

PpoTrainer::EpisodeRollout PpoTrainer::RunEpisode(Env& env,
                                                  std::uint64_t episode_index) const {
  // Per-episode action-noise stream derived from (trainer seed, episode
  // index): episode e draws identically whether it runs back-to-back on a
  // shared env or on a fresh env clone on a worker thread.
  Rng rng(seed_ ^ (episode_index * 0x9E3779B97F4A7C15ULL + 0x2545F4914F6CDD1DULL));
  EpisodeRollout rollout;
  std::vector<double> obs = env.Reset(episode_index);
  std::vector<double> rewards;
  std::vector<double> values;
  bool done = false;
  for (int t = 0; t < config_.steps_per_episode && !done; ++t) {
    const GaussianPolicy::Eval eval = policy_->Evaluate(obs);
    const double std = std::exp(eval.log_std);
    const double raw = rng.Normal(eval.mean, std);
    const double clipped =
        std::clamp(raw, policy_->config().action_low, policy_->config().action_high);
    Sample s;
    s.obs = obs;
    s.raw_action = raw;
    s.mean_old = eval.mean;
    s.log_std_old = eval.log_std;
    s.logp_old = GaussianPolicy::LogProb(raw, eval.mean, eval.log_std);
    values.push_back(policy_->Value(obs));
    const StepResult result = env.Step(clipped);
    rewards.push_back(result.reward);
    rollout.reward += result.reward;
    obs = result.obs;
    done = result.done;
    rollout.samples.push_back(std::move(s));
  }
  // GAE-lambda advantages; terminal bootstrap with V(s_T) when the
  // episode was truncated by the step limit rather than `done`.
  const double v_last = done ? 0.0 : policy_->Value(obs);
  const int n = static_cast<int>(rollout.samples.size());
  double gae = 0.0;
  for (int t = n - 1; t >= 0; --t) {
    const double v_next = (t == n - 1) ? v_last : values[t + 1];
    const double delta = rewards[t] + config_.gamma * v_next - values[t];
    gae = delta + config_.gamma * config_.gae_lambda * gae;
    rollout.samples[t].advantage = gae;
    rollout.samples[t].target_return = gae + values[t];
  }
  return rollout;
}

double PpoTrainer::CollectRollout(Env& env, std::vector<Sample>& batch) {
  const std::uint64_t base = episode_counter_;
  episode_counter_ += static_cast<std::uint64_t>(config_.episodes_per_iter);
  double reward_sum = 0.0;
  for (int e = 0; e < config_.episodes_per_iter; ++e) {
    EpisodeRollout rollout = RunEpisode(env, base + static_cast<std::uint64_t>(e));
    reward_sum += rollout.reward;
    for (auto& s : rollout.samples) batch.push_back(std::move(s));
  }
  return reward_sum / static_cast<double>(config_.episodes_per_iter);
}

double PpoTrainer::CollectRollout(const EnvFactory& make_env,
                                  std::vector<Sample>& batch) {
  const std::uint64_t base = episode_counter_;
  episode_counter_ += static_cast<std::uint64_t>(config_.episodes_per_iter);
  ThreadPool& pool = pool_ != nullptr ? *pool_ : ThreadPool::Global();
  // Episodes are independent given their index; ParallelMap returns them in
  // episode order, so the batch assembly below never depends on scheduling.
  std::vector<EpisodeRollout> rollouts = pool.ParallelMap(
      static_cast<std::size_t>(config_.episodes_per_iter), [&](std::size_t e) {
        std::unique_ptr<Env> env = make_env();
        return RunEpisode(*env, base + e);
      });
  double reward_sum = 0.0;
  for (auto& rollout : rollouts) {
    reward_sum += rollout.reward;
    for (auto& s : rollout.samples) batch.push_back(std::move(s));
  }
  return reward_sum / static_cast<double>(config_.episodes_per_iter);
}

double PpoTrainer::CollectRolloutOnly(const EnvFactory& make_env) {
  std::vector<Sample> batch;
  batch.reserve(static_cast<std::size_t>(config_.episodes_per_iter) *
                static_cast<std::size_t>(config_.steps_per_episode));
  return CollectRollout(make_env, batch);
}

void PpoTrainer::Update(std::vector<Sample>& batch, IterStats& stats) {
  // Normalise advantages across the batch.
  double mean = 0.0;
  for (const auto& s : batch) mean += s.advantage;
  mean /= static_cast<double>(batch.size());
  double var = 0.0;
  for (const auto& s : batch) var += (s.advantage - mean) * (s.advantage - mean);
  var /= static_cast<double>(batch.size());
  const double denom = std::sqrt(var) + 1e-8;
  for (auto& s : batch) s.advantage = (s.advantage - mean) / denom;

  std::vector<std::size_t> order(batch.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> params, grads;

  double last_policy_loss = 0.0;
  double last_value_loss = 0.0;
  for (int epoch = 0; epoch < config_.sgd_iters; ++epoch) {
    // Fisher-Yates shuffle with our deterministic RNG.
    for (std::size_t i = order.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(rng_.UniformInt(0, static_cast<std::int64_t>(i) - 1));
      std::swap(order[i - 1], order[j]);
    }
    for (std::size_t begin = 0; begin < order.size();
         begin += static_cast<std::size_t>(config_.minibatch_size)) {
      const std::size_t end =
          std::min(order.size(), begin + static_cast<std::size_t>(config_.minibatch_size));
      const double inv_n = 1.0 / static_cast<double>(end - begin);
      policy_->ZeroGrad();
      double policy_loss = 0.0;
      double value_loss = 0.0;
      for (std::size_t k = begin; k < end; ++k) {
        const Sample& s = batch[order[k]];
        const GaussianPolicy::Eval eval = policy_->Evaluate(s.obs);
        const double std_new = std::exp(eval.log_std);
        const double logp = GaussianPolicy::LogProb(s.raw_action, eval.mean, eval.log_std);
        const double ratio = std::exp(logp - s.logp_old);
        // Clipped surrogate. Gradient flows only when unclipped branch is
        // active (standard PPO subgradient).
        const bool clipped = (s.advantage >= 0.0 && ratio > 1.0 + config_.clip) ||
                             (s.advantage < 0.0 && ratio < 1.0 - config_.clip);
        const double surrogate =
            std::min(ratio * s.advantage,
                     std::clamp(ratio, 1.0 - config_.clip, 1.0 + config_.clip) * s.advantage);
        policy_loss += -surrogate;
        double d_logp = clipped ? 0.0 : -s.advantage * ratio;

        // Adaptive-KL penalty vs. the rollout policy.
        const double std_old = std::exp(s.log_std_old);
        const double mu_diff = s.mean_old - eval.mean;
        const double kl = (eval.log_std - s.log_std_old) +
                          (std_old * std_old + mu_diff * mu_diff) /
                              (2.0 * std_new * std_new) -
                          0.5;
        policy_loss += kl_coeff_ * kl;
        const double dkl_dmean = (eval.mean - s.mean_old) / (std_new * std_new);
        const double dkl_dlogstd =
            1.0 - (std_old * std_old + mu_diff * mu_diff) / (std_new * std_new);

        // d logp / d mean, d logp / d log_std.
        const double z = (s.raw_action - eval.mean) / std_new;
        const double dlogp_dmean = z / std_new;
        const double dlogp_dlogstd = z * z - 1.0;

        double d_mean = (d_logp * dlogp_dmean + kl_coeff_ * dkl_dmean) * inv_n;
        double d_logstd = (d_logp * dlogp_dlogstd + kl_coeff_ * dkl_dlogstd) * inv_n;
        // Entropy bonus: H = log_std + 0.5*log(2*pi*e).
        d_logstd += -config_.entropy_coeff * inv_n;
        policy_->Accumulate(eval, d_mean, d_logstd);

        // Value loss.
        Mlp::Cache vcache;
        const double v = policy_->Value(s.obs, &vcache);
        const double verr = v - s.target_return;
        value_loss += config_.vf_coeff * verr * verr;
        policy_->AccumulateValue(vcache, 2.0 * config_.vf_coeff * verr * inv_n);
      }
      last_policy_loss = policy_loss * inv_n;
      last_value_loss = value_loss * inv_n;
      policy_->CopyParamsTo(params);
      policy_->CopyGradsTo(grads);
      if (config_.grad_clip > 0.0) {
        double norm2 = 0.0;
        for (const double g : grads) norm2 += g * g;
        const double norm = std::sqrt(norm2);
        if (norm > config_.grad_clip) {
          const double scale = config_.grad_clip / norm;
          for (auto& g : grads) g *= scale;
        }
      }
      optimizer_.Step(params, grads);
      policy_->SetParams(params);
    }
  }

  // Measure KL(old || new) over the whole batch and adapt the coefficient
  // (RLlib rule: outside [0.5, 2.0]x target -> halve / x1.5).
  double kl_sum = 0.0;
  for (const auto& s : batch) {
    const GaussianPolicy::Eval eval = policy_->Evaluate(s.obs);
    const double std_new = std::exp(eval.log_std);
    const double std_old = std::exp(s.log_std_old);
    const double mu_diff = s.mean_old - eval.mean;
    kl_sum += (eval.log_std - s.log_std_old) +
              (std_old * std_old + mu_diff * mu_diff) / (2.0 * std_new * std_new) - 0.5;
  }
  const double mean_kl = kl_sum / static_cast<double>(batch.size());
  if (mean_kl > 2.0 * config_.kl_target) {
    kl_coeff_ *= 1.5;
  } else if (mean_kl < 0.5 * config_.kl_target) {
    kl_coeff_ *= 0.5;
  }
  stats.mean_kl = mean_kl;
  stats.kl_coeff = kl_coeff_;
  stats.policy_loss = last_policy_loss;
  stats.value_loss = last_value_loss;
}

IterStats PpoTrainer::IterateWith(
    const std::function<double(std::vector<Sample>&)>& collect) {
  IterStats stats;
  std::vector<Sample> batch;
  batch.reserve(static_cast<std::size_t>(config_.episodes_per_iter) *
                static_cast<std::size_t>(config_.steps_per_episode));
  stats.mean_episode_reward = collect(batch);
  stats.episodes = config_.episodes_per_iter;
  if (!batch.empty()) Update(batch, stats);
  return stats;
}

IterStats PpoTrainer::TrainIteration(Env& env) {
  return IterateWith([&](std::vector<Sample>& batch) { return CollectRollout(env, batch); });
}

IterStats PpoTrainer::TrainIteration(const EnvFactory& make_env) {
  return IterateWith(
      [&](std::vector<Sample>& batch) { return CollectRollout(make_env, batch); });
}

TrainResult PpoTrainer::TrainLoop(const std::function<IterStats()>& iterate,
                                  int total_episodes,
                                  const std::function<double(GaussianPolicy&)>& validate,
                                  int checkpoint_every) {
  TrainResult result;
  result.best_validation_score = -1e300;
  int episodes_since_checkpoint = 0;
  while (result.episodes_trained < total_episodes) {
    const IterStats stats = iterate();
    result.episodes_trained += stats.episodes;
    episodes_since_checkpoint += stats.episodes;
    result.history.push_back(stats);
    if (validate && episodes_since_checkpoint >= checkpoint_every) {
      episodes_since_checkpoint = 0;
      const double score = validate(*policy_);
      if (score > result.best_validation_score) {
        result.best_validation_score = score;
        policy_->CopyParamsTo(result.best_params);
      }
    }
  }
  if (validate) {
    const double score = validate(*policy_);
    if (score > result.best_validation_score) {
      result.best_validation_score = score;
      policy_->CopyParamsTo(result.best_params);
    }
    if (!result.best_params.empty()) policy_->SetParams(result.best_params);
  }
  return result;
}

TrainResult PpoTrainer::Train(Env& env, int total_episodes,
                              const std::function<double(GaussianPolicy&)>& validate,
                              int checkpoint_every) {
  return TrainLoop([&] { return TrainIteration(env); }, total_episodes, validate,
                   checkpoint_every);
}

TrainResult PpoTrainer::Train(const EnvFactory& make_env, int total_episodes,
                              const std::function<double(GaussianPolicy&)>& validate,
                              int checkpoint_every) {
  return TrainLoop([&] { return TrainIteration(make_env); }, total_episodes, validate,
                   checkpoint_every);
}

namespace {

/// One deterministic (mean-action) evaluation episode; shared by both
/// EvaluatePolicy forms so they stay numerically identical.
double RunEvalEpisode(GaussianPolicy& policy, Env& env, std::uint64_t seed,
                      int steps_per_episode) {
  double total = 0.0;
  std::vector<double> obs = env.Reset(seed);
  bool done = false;
  for (int t = 0; t < steps_per_episode && !done; ++t) {
    const double action = policy.MeanAction(obs);
    const StepResult r = env.Step(action);
    total += r.reward;
    obs = r.obs;
    done = r.done;
  }
  return total;
}

}  // namespace

double EvaluatePolicy(GaussianPolicy& policy, Env& env, int episodes,
                      std::uint64_t seed0, int steps_per_episode) {
  double total = 0.0;
  for (int e = 0; e < episodes; ++e) {
    total += RunEvalEpisode(policy, env, seed0 + static_cast<std::uint64_t>(e),
                            steps_per_episode);
  }
  return total / static_cast<double>(episodes);
}

double EvaluatePolicy(GaussianPolicy& policy, const EnvFactory& make_env,
                      int episodes, std::uint64_t seed0, int steps_per_episode,
                      ThreadPool* pool) {
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::Global();
  const std::vector<double> totals =
      p.ParallelMap(static_cast<std::size_t>(episodes), [&](std::size_t e) {
        std::unique_ptr<Env> env = make_env();
        return RunEvalEpisode(policy, *env, seed0 + e, steps_per_episode);
      });
  double total = 0.0;
  for (const double t : totals) total += t;
  return total / static_cast<double>(episodes);
}

}  // namespace topfull::rl

// Proximal Policy Optimization (clipped surrogate + adaptive KL penalty),
// following RLlib's PPO with the hyper-parameters of the paper's Table 1.
//
// Rollout collection has two entry points: the classic single-env form
// (episodes run back-to-back on one env) and an env-factory form where the
// `episodes_per_iter` episodes run concurrently on per-worker env clones.
// Both produce byte-identical sample batches: episode e always draws its
// action noise from a stream seeded by (trainer seed, global episode index),
// envs are fully re-seeded by Reset(episode index), and the batch is
// assembled in episode order regardless of completion order. Policy
// parameters are read-only during collection, so workers share the policy.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "rl/env.hpp"
#include "rl/policy.hpp"

namespace topfull {
class ThreadPool;
}  // namespace topfull

namespace topfull::rl {

/// Creates a fresh env clone for one rollout worker. Clones must be
/// behaviourally identical (same construction seed/config): episode
/// identity comes entirely from Reset(episode index).
using EnvFactory = std::function<std::unique_ptr<Env>()>;

/// Training hyper-parameters (defaults = paper Table 1 / RLlib defaults).
struct PpoConfig {
  int steps_per_episode = 50;  // Table 1: steps in episode
  double lr = 5e-5;            // Table 1: learning rate
  double kl_coeff = 0.2;       // Table 1: KL coefficient (adaptive)
  double kl_target = 0.01;     // Table 1: KL target
  int minibatch_size = 128;    // Table 1: minibatch size
  double clip = 0.3;           // Table 1: PPO clip parameter
  double gamma = 0.9;   // strong-ish discount: with the Eq.-3 delta-goodput reward,
                       // returns telescope, so the discount is what makes
                       // reaching high goodput SOONER worth anything.
  double gae_lambda = 0.9;
  int episodes_per_iter = 8;  // rollout batch = episodes_per_iter * steps
  int sgd_iters = 10;         // epochs over the rollout per iteration
  double vf_coeff = 0.5;
  double entropy_coeff = 0.0;
  double grad_clip = 10.0;  ///< global-norm gradient clip (0 disables)
};

struct IterStats {
  double mean_episode_reward = 0.0;
  double mean_kl = 0.0;
  double kl_coeff = 0.0;
  double policy_loss = 0.0;
  double value_loss = 0.0;
  int episodes = 0;
};

struct TrainResult {
  int episodes_trained = 0;
  double best_validation_score = 0.0;
  std::vector<double> best_params;  ///< empty when no validation was given
  std::vector<IterStats> history;
};

class PpoTrainer {
 public:
  PpoTrainer(GaussianPolicy* policy, PpoConfig config, std::uint64_t seed);

  /// Collects one rollout batch from `env` and performs the PPO update.
  IterStats TrainIteration(Env& env);

  /// Same, but episodes run concurrently on env clones from `make_env`.
  /// The batch (and therefore the update) is bit-identical to the
  /// single-env form at any pool size.
  IterStats TrainIteration(const EnvFactory& make_env);

  /// Trains for `total_episodes`, checkpointing every `checkpoint_every`
  /// episodes and scoring each checkpoint with `validate` (higher is
  /// better). The best checkpoint's parameters are restored into the
  /// policy at the end (paper: "select the pre-trained model by validating
  /// the checkpointed RL models on a fixed set of scenarios").
  TrainResult Train(Env& env, int total_episodes,
                    const std::function<double(GaussianPolicy&)>& validate = {},
                    int checkpoint_every = 50);

  /// Env-factory form of Train: parallel rollout collection.
  TrainResult Train(const EnvFactory& make_env, int total_episodes,
                    const std::function<double(GaussianPolicy&)>& validate = {},
                    int checkpoint_every = 50);

  /// Collects one rollout batch without updating the policy; returns the
  /// mean episode reward. Benchmark / profiling hook for the collection
  /// hot path in isolation.
  double CollectRolloutOnly(const EnvFactory& make_env);

  /// Worker pool override; nullptr (default) uses ThreadPool::Global().
  void set_pool(ThreadPool* pool) { pool_ = pool; }

  const PpoConfig& config() const { return config_; }
  double kl_coeff() const { return kl_coeff_; }

 private:
  struct Sample {
    std::vector<double> obs;
    double raw_action = 0.0;
    double logp_old = 0.0;
    double mean_old = 0.0;
    double log_std_old = 0.0;
    double advantage = 0.0;
    double target_return = 0.0;
  };

  /// One episode's samples (with GAE already applied) and total reward.
  struct EpisodeRollout {
    std::vector<Sample> samples;
    double reward = 0.0;
  };

  /// Runs episode `episode_index` on `env`. Read-only on the policy and
  /// trainer state; safe to call concurrently on distinct envs.
  EpisodeRollout RunEpisode(Env& env, std::uint64_t episode_index) const;

  /// Runs episodes, filling `batch`; returns mean episode reward.
  double CollectRollout(Env& env, std::vector<Sample>& batch);
  double CollectRollout(const EnvFactory& make_env, std::vector<Sample>& batch);
  IterStats IterateWith(const std::function<double(std::vector<Sample>&)>& collect);
  TrainResult TrainLoop(const std::function<IterStats()>& iterate, int total_episodes,
                        const std::function<double(GaussianPolicy&)>& validate,
                        int checkpoint_every);
  void Update(std::vector<Sample>& batch, IterStats& stats);

  GaussianPolicy* policy_;
  PpoConfig config_;
  std::uint64_t seed_;
  Rng rng_;  // minibatch shuffling only; rollouts use per-episode streams
  Adam optimizer_;
  ThreadPool* pool_ = nullptr;
  std::uint64_t episode_counter_ = 0;
  double kl_coeff_;
};

/// Runs `policy` deterministically on `env` for `episodes` episodes starting
/// from `seed0` and returns the mean total episode reward. The standard
/// validation score.
double EvaluatePolicy(GaussianPolicy& policy, Env& env, int episodes,
                      std::uint64_t seed0, int steps_per_episode);

/// Env-factory form: evaluation episodes run concurrently on env clones.
/// Identical result to the single-env form (envs fully re-seed on Reset and
/// the mean action is deterministic).
double EvaluatePolicy(GaussianPolicy& policy, const EnvFactory& make_env,
                      int episodes, std::uint64_t seed0, int steps_per_episode,
                      ThreadPool* pool = nullptr);

}  // namespace topfull::rl

#include "scenario/invariant.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>

namespace topfull::scenario {
namespace {

std::string Format(const char* fmt, double a, double b) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), fmt, a, b);
  return buf;
}

std::string Format1(const char* fmt, double a) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), fmt, a);
  return buf;
}

InvariantResult CheckGoodputFloor(const Invariant& inv,
                                  const RunArtifacts& art) {
  InvariantResult result{inv};
  result.measured =
      art.metrics != nullptr ? art.metrics->AvgTotalGoodput(inv.from_s) : 0.0;
  result.ok = result.measured >= inv.value;
  result.detail = Format("avg goodput %.1f rps vs floor %.1f", result.measured,
                         inv.value);
  return result;
}

// Escapes overload: every overload onset observed at or after `from_s`
// (and any episode already open at `from_s`) must clear within `value`
// seconds of the deadline start. The deadline is from_s + value; an onset
// whose clear never arrives, arrives late, or an onset occurring after
// the deadline each violate. `measured` reports the latest time the
// system was overloaded (or the deadline itself when it never recovered).
InvariantResult CheckEscapesOverload(const Invariant& inv,
                                     const RunArtifacts& art) {
  InvariantResult result{inv};
  const double deadline = inv.from_s + inv.value;
  result.measured = 0.0;
  result.detail =
      Format("all overload cleared before %.1f s (budget %.1f s)", deadline,
             inv.value);
  if (art.slo_events == nullptr) return result;

  // Track open overload episodes per subject; events are time-ordered.
  std::vector<std::pair<std::string, obs::SloEvent>> open;
  for (const obs::SloEvent& ev : *art.slo_events) {
    if (ev.type == obs::SloEventType::kOverloadOnset) {
      if (ev.t_s >= deadline) {
        result.ok = false;
        result.measured = ev.t_s;
        result.witness = ev;
        result.detail = Format(
            "overload onset at %.1f s, past the %.1f s escape deadline",
            ev.t_s, deadline);
        return result;
      }
      open.emplace_back(ev.subject, ev);
    } else if (ev.type == obs::SloEventType::kOverloadClear) {
      for (auto it = open.begin(); it != open.end(); ++it) {
        if (it->first == ev.subject) {
          if (ev.t_s > deadline) {
            result.ok = false;
            result.measured = ev.t_s;
            result.witness = it->second;
            result.detail = Format(
                "overload cleared only at %.1f s, after the %.1f s deadline",
                ev.t_s, deadline);
            return result;
          }
          result.measured = std::max(result.measured, ev.t_s);
          open.erase(it);
          break;
        }
      }
    }
  }
  if (!open.empty()) {
    result.ok = false;
    result.measured = deadline;
    result.witness = open.front().second;
    result.detail = Format(
        "overload from %.1f s never cleared (deadline %.1f s)",
        open.front().second.t_s, deadline);
  }
  return result;
}

InvariantResult CheckAmplification(const Invariant& inv,
                                   const RunArtifacts& art) {
  InvariantResult result{inv};
  result.measured = art.amplification.total;
  result.ok = result.measured <= inv.value;
  result.detail = Format("retry amplification %.3f vs cap %.3f",
                         result.measured, inv.value);
  return result;
}

InvariantResult CheckFairness(const Invariant& inv, const RunArtifacts& art) {
  InvariantResult result{inv};
  result.measured = MinTenantFairness(art.tenant_outcomes);
  result.ok = result.measured >= inv.value;
  result.detail = Format("min tenant Jain index %.4f vs floor %.4f",
                         result.measured, inv.value);
  return result;
}

InvariantResult CheckNoOscillation(const Invariant& inv,
                                   const RunArtifacts& art) {
  InvariantResult result{inv};
  result.detail = Format1("no controller oscillation at/after %.1f s",
                          inv.from_s);
  if (art.slo_events == nullptr) return result;
  for (const obs::SloEvent& ev : *art.slo_events) {
    if (ev.type == obs::SloEventType::kOscillation && ev.t_s >= inv.from_s) {
      result.ok = false;
      result.measured = ev.t_s;
      result.witness = ev;
      result.detail =
          Format("oscillation at %.1f s (quiet required after %.1f s)",
                 ev.t_s, inv.from_s);
      return result;
    }
  }
  return result;
}

// No alert firing: reconstructs the firing intervals of the watched rule
// (param; empty = every rule) from the transition stream and fails when
// any interval intersects [from_s, end-of-run). An interval opens at a
// `-> firing` transition and closes at the next transition of the same
// rule away from firing; a rule still firing at the end of the run is an
// open interval reaching the horizon, so it always intersects.
InvariantResult CheckNoAlertFiring(const Invariant& inv,
                                   const RunArtifacts& art) {
  InvariantResult result{inv};
  const std::string& rule = inv.param;
  result.detail = Format1(
      rule.empty() ? "no alert firing at/after %.1f s"
                   : ("alert '" + rule + "' never firing at/after %.1f s").c_str(),
      inv.from_s);
  if (art.alerts == nullptr) return result;

  // rule name -> firing-since time, for currently open intervals.
  std::vector<std::pair<std::string, double>> firing;
  // The rule fires over [start, end): a clear exactly at the gate is fine.
  const auto check_interval = [&](double start_s, double end_s) {
    if (end_s <= inv.from_s) return;  // interval entirely before the gate
    result.ok = false;
    result.measured = std::max(start_s, inv.from_s);
  };
  for (const obs::AlertTransition& tr : *art.alerts) {
    if (!rule.empty() && tr.rule != rule) continue;
    if (tr.to == obs::AlertState::kFiring) {
      firing.emplace_back(tr.rule, tr.t_s);
    } else if (tr.from == obs::AlertState::kFiring) {
      for (auto it = firing.begin(); it != firing.end(); ++it) {
        if (it->first == tr.rule) {
          check_interval(it->second, tr.t_s);
          firing.erase(it);
          break;
        }
      }
    }
    if (!result.ok) break;
  }
  if (result.ok) {
    for (const auto& [name, since_s] : firing) {
      check_interval(since_s, std::numeric_limits<double>::infinity());
      if (!result.ok) break;
    }
  }
  if (!result.ok) {
    result.detail = Format(
        rule.empty()
            ? "an alert was firing at %.1f s (quiet required after %.1f s)"
            : ("alert '" + rule +
               "' firing at %.1f s (quiet required after %.1f s)")
                  .c_str(),
        result.measured, inv.from_s);
  }
  return result;
}

}  // namespace

double MinTenantFairness(
    const std::vector<std::vector<workload::UserOutcomes>>& tenant_outcomes) {
  double min_jain = 1.0;
  for (const auto& users : tenant_outcomes) {
    std::vector<double> rates;
    rates.reserve(users.size());
    for (const workload::UserOutcomes& u : users) {
      if (u.ok + u.failed > 0) rates.push_back(u.SuccessRate());
    }
    if (rates.empty()) continue;  // tenant never settled a request
    min_jain = std::min(min_jain, obs::JainIndex(rates));
  }
  return min_jain;
}

std::vector<InvariantResult> CheckInvariants(const ScenarioSpec& spec,
                                             const RunArtifacts& artifacts) {
  std::vector<InvariantResult> results;
  results.reserve(spec.invariants.size());
  for (const Invariant& inv : spec.invariants) {
    switch (inv.kind) {
      case InvariantKind::kGoodputFloor:
        results.push_back(CheckGoodputFloor(inv, artifacts));
        break;
      case InvariantKind::kEscapesOverloadBy:
        results.push_back(CheckEscapesOverload(inv, artifacts));
        break;
      case InvariantKind::kMaxRetryAmplification:
        results.push_back(CheckAmplification(inv, artifacts));
        break;
      case InvariantKind::kFairnessIndexMin:
        results.push_back(CheckFairness(inv, artifacts));
        break;
      case InvariantKind::kNoOscillationAfter:
        results.push_back(CheckNoOscillation(inv, artifacts));
        break;
      case InvariantKind::kNoAlertFiring:
        results.push_back(CheckNoAlertFiring(inv, artifacts));
        break;
    }
  }
  return results;
}

}  // namespace topfull::scenario

// Invariant evaluation over a finished scenario run.
//
// Each invariant is a pure predicate over the run's artefacts — the
// metrics timeline, the SLO-monitor event stream, the per-user outcome
// counters and the retry counters — so checking is deterministic and
// independent of thread count. A failed check carries the measured value
// and, where one exists, the SLO event that witnesses the violation
// (e.g. the overload onset that never cleared), so a CI failure names the
// exact moment the scenario went wrong.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "obs/fairness.hpp"
#include "obs/rules.hpp"
#include "obs/slo_monitor.hpp"
#include "scenario/scenario.hpp"
#include "sim/metrics.hpp"
#include "workload/generators.hpp"

namespace topfull::scenario {

/// Outcome of one invariant check.
struct InvariantResult {
  Invariant invariant;
  bool ok = true;
  /// The measured quantity the threshold was compared against.
  double measured = 0.0;
  /// Human-readable account of the check.
  std::string detail;
  /// The SLO event witnessing the violation, when one exists.
  std::optional<obs::SloEvent> witness;
  /// Whether the scenario declares this controller is *supposed* to
  /// violate this invariant (filled by the matrix runner, not the check).
  bool expected_violation = false;
};

/// Everything the checks need from a finished run. All pointers are
/// borrowed and must outlive the call.
struct RunArtifacts {
  const sim::MetricsCollector* metrics = nullptr;
  const std::vector<obs::SloEvent>* slo_events = nullptr;
  /// Alert-rule transitions from the run's TSDB plane (null = no plane;
  /// kNoAlertFiring then passes vacuously).
  const std::vector<obs::AlertTransition>* alerts = nullptr;
  /// Per-tenant, per-user outcome counters (one inner vector per pool).
  std::vector<std::vector<workload::UserOutcomes>> tenant_outcomes;
  obs::AmplificationStats amplification;
};

/// Evaluates every invariant of `spec` against the artefacts, in spec
/// order.
std::vector<InvariantResult> CheckInvariants(const ScenarioSpec& spec,
                                             const RunArtifacts& artifacts);

/// Minimum Jain index across tenants, over per-user success rates of users
/// with at least one settled transaction. Tenants with no such user (and a
/// run with no tenants at all) contribute 1.0.
double MinTenantFairness(
    const std::vector<std::vector<workload::UserOutcomes>>& tenant_outcomes);

}  // namespace topfull::scenario

#include "scenario/library.hpp"

namespace topfull::scenario {
namespace {

// Retry storm: a 2x surge with aggressive retries at both layers. Each
// client transaction may be submitted up to 3 times and every hop may be
// dispatched up to 2 times, so unchecked timeouts can inflate one intent
// into ~6x the RPC work. Adaptive admission keeps latency below the
// timeout lines and the compound amplification small; a mis-tuned static
// limit rejects so much that client-level retries alone blow the cap.
ScenarioSpec RetryStorm() {
  return ScenarioSpec::Make("retry_storm", "boutique")
      .Describe("client x per-hop retry amplification under a 2x surge")
      .Seed(11)
      .Duration(150.0)
      .Phase(0.0, 500.0)
      .Phase(30.0, 3200.0)
      .Phase(100.0, 500.0)
      .Client(/*timeout_s=*/2.0, /*retries=*/3, /*backoff_s=*/0.2)
      .Rpc(/*timeout_s=*/0.5, /*retries=*/1, /*backoff_s=*/0.05)
      .StaticRate(1000.0)
      .Require(InvariantKind::kMaxRetryAmplification, 3.35)
      .Require(InvariantKind::kGoodputFloor, 400.0, 30.0)
      .ExpectViolation("static", InvariantKind::kMaxRetryAmplification)
      .ExpectViolation("static", InvariantKind::kGoodputFloor);
}

// Metastable trap: the spike is over at t=70 s, yet pending queues plus
// client retry loops keep offered load above capacity — the system has
// entered the metastable failure state of Bronson et al. The invariant
// asks whether admission control breaks the feedback loop within 40 s of
// the trigger ending. A static limit provisioned for the steady state
// admits the whole retry backlog and never recovers.
ScenarioSpec MetastableTrap() {
  return ScenarioSpec::Make("metastable_trap", "boutique")
      .Describe("retry feedback sustains overload after the spike ends")
      .Seed(23)
      .Duration(180.0)
      .Phase(0.0, 400.0)
      .Phase(40.0, 3000.0)
      .Phase(70.0, 700.0)
      .Client(/*timeout_s=*/3.0, /*retries=*/3, /*backoff_s=*/0.25)
      .Rpc(/*timeout_s=*/0.8, /*retries=*/1, /*backoff_s=*/0.05)
      .StaticRate(1200.0)
      .Require(InvariantKind::kEscapesOverloadBy, 40.0, 70.0)
      .Require(InvariantKind::kGoodputFloor, 300.0, 120.0)
      // The goodput-floor burn alert (floor taken from the invariant
      // above) must be quiet once the trap window is past: an adaptive
      // controller has recovered, the trapped static baseline pages.
      .Require(InvariantKind::kNoAlertFiring, 0.0, 120.0, "goodput_floor_burn")
      .ExpectViolation("static", InvariantKind::kEscapesOverloadBy)
      .ExpectViolation("static", InvariantKind::kGoodputFloor)
      .ExpectViolation("static", InvariantKind::kNoAlertFiring);
}

// Flash crowd: a steep 15 s climb to a sustained peak, then a slow decay
// (the breaking-news shape). Controllers must track the ramp both ways
// without rate-limit oscillation once the crowd is gone.
ScenarioSpec FlashCrowd() {
  return ScenarioSpec::Make("flash_crowd", "boutique")
      .Describe("steep ramp to sustained peak, slow decay")
      .Seed(31)
      .Duration(200.0)
      .Phase(0.0, 500.0)
      .Phase(40.0, 3000.0, /*ramp_s=*/15.0)
      .Phase(90.0, 500.0, /*ramp_s=*/60.0)
      .Client(/*timeout_s=*/4.0, /*retries=*/1, /*backoff_s=*/0.2)
      .StaticRate(400.0)
      .Require(InvariantKind::kGoodputFloor, 500.0, 40.0)
      .Require(InvariantKind::kEscapesOverloadBy, 30.0, 150.0);
}

// Diurnal replay: two day/night cycles with capacity crossed only near the
// peaks. The controller has to ride the curve — goodput must track demand
// through both troughs and peaks.
ScenarioSpec Diurnal() {
  return ScenarioSpec::Make("diurnal", "boutique")
      .Describe("raised-cosine day/night replay, two cycles")
      .Seed(47)
      .Duration(240.0)
      .Diurnal(/*low=*/400.0, /*high=*/2800.0, /*period_s=*/120.0)
      .Client(/*timeout_s=*/4.0, /*retries=*/1, /*backoff_s=*/0.2)
      .StaticRate(400.0)
      .Require(InvariantKind::kGoodputFloor, 500.0, 0.0);
}

// Multi-tenant fairness: premium and free tenants share a saturated
// system. DAGOR's user-priority cutoff is deliberately coarse — inside one
// tenant it admits users below the threshold and starves the rest, so its
// per-user Jain index collapses while per-API controllers (which are blind
// to user identity) reject uniformly and stay fair.
ScenarioSpec FairnessTiers() {
  TenantSpec premium;
  premium.name = "premium";
  premium.weight = 0.3;
  premium.priority_lo = 0;
  premium.priority_hi = 15;
  TenantSpec free_tier;
  free_tier.name = "free";
  free_tier.weight = 0.7;
  free_tier.priority_lo = 100;
  free_tier.priority_hi = 127;
  return ScenarioSpec::Make("fairness_tiers", "boutique")
      .Describe("premium/free user mix judged on per-user fairness")
      .Seed(53)
      .Duration(120.0)
      .Phase(0.0, 600.0)
      .Phase(20.0, 4500.0)
      .Tenant(premium)
      .Tenant(free_tier)
      .Client(/*timeout_s=*/3.0, /*retries=*/0, /*backoff_s=*/0.2)
      .StaticRate(150.0)
      .Require(InvariantKind::kFairnessIndexMin, 0.8, 20.0)
      .Require(InvariantKind::kGoodputFloor, 300.0, 20.0)
      .ExpectViolation("dagor", InvariantKind::kFairnessIndexMin);
}

}  // namespace

std::vector<ScenarioSpec> BuiltinScenarios() {
  std::vector<ScenarioSpec> all;
  all.push_back(RetryStorm());
  all.push_back(MetastableTrap());
  all.push_back(FlashCrowd());
  all.push_back(Diurnal());
  all.push_back(FairnessTiers());
  return all;
}

std::optional<ScenarioSpec> FindBuiltinScenario(const std::string& name) {
  for (ScenarioSpec& spec : BuiltinScenarios()) {
    if (spec.name == name) return std::move(spec);
  }
  return std::nullopt;
}

}  // namespace topfull::scenario

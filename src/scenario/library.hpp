// The built-in workload-pathology families.
//
// Five named scenarios, each reproducing one production failure mode from
// the overload-control literature:
//
//  - retry_storm       compounding client x per-hop retries under a surge
//                      (the amplification pathology; Google SRE ch. 22)
//  - metastable_trap   a spike ends but retry work keeps the system pinned
//                      above capacity (Bronson et al., HotOS '21); the
//                      invariant asks whether the controller escapes
//  - flash_crowd       steep ramp to a sustained peak, then slow decay
//  - diurnal           raised-cosine day/night replay, capacity crossed
//                      only near the peaks
//  - fairness_tiers    premium/free tenant mix under sustained overload,
//                      judged on per-user fairness, not aggregate goodput
//
// Thresholds are calibrated against the committed simulator capacities, so
// the matrix is a regression suite: a controller change that breaks an
// invariant fails CI with the violating SLO event attached.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "scenario/scenario.hpp"

namespace topfull::scenario {

/// All built-in scenarios, in stable (report) order.
std::vector<ScenarioSpec> BuiltinScenarios();

/// Looks up one built-in scenario by name.
std::optional<ScenarioSpec> FindBuiltinScenario(const std::string& name);

}  // namespace topfull::scenario

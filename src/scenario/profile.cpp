#include "scenario/profile.hpp"

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

namespace topfull::scenario {
namespace {

using KeyValues = std::map<std::string, std::string>;

std::string Trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

bool Fail(std::string* error, int line, const std::string& reason) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line) + ": " + reason;
  }
  return false;
}

/// Parses `key=value, key=value`; rejects malformed pairs.
bool ParseKeyValues(const std::string& body, int line, KeyValues* out,
                    std::string* error) {
  std::stringstream stream(body);
  std::string pair;
  while (std::getline(stream, pair, ',')) {
    pair = Trim(pair);
    if (pair.empty()) continue;
    const auto eq = pair.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= pair.size()) {
      return Fail(error, line, "malformed key=value pair '" + pair + "'");
    }
    (*out)[Trim(pair.substr(0, eq))] = Trim(pair.substr(eq + 1));
  }
  return true;
}

/// Rejects any key outside `allowed`; the parser never guesses at typos.
bool CheckAllowedKeys(const KeyValues& kv,
                      std::initializer_list<const char*> allowed,
                      const std::string& directive, int line,
                      std::string* error) {
  for (const auto& [key, value] : kv) {
    bool ok = false;
    for (const char* a : allowed) {
      if (key == a) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      return Fail(error, line,
                  "unknown key '" + key + "' in '" + directive + "' directive");
    }
  }
  return true;
}

bool RequireKeys(const KeyValues& kv, std::initializer_list<const char*> keys,
                 const std::string& directive, int line, std::string* error) {
  for (const char* key : keys) {
    if (kv.find(key) == kv.end()) {
      return Fail(error, line,
                  "'" + directive + "' directive missing required key '" +
                      std::string(key) + "'");
    }
  }
  return true;
}

/// Every key except the listed text-valued ones must parse fully as a
/// number; junk like `users=many` is rejected rather than read as 0.
bool CheckNumericValues(const KeyValues& kv,
                        std::initializer_list<const char*> text_keys, int line,
                        std::string* error) {
  for (const auto& [key, value] : kv) {
    bool text = false;
    for (const char* t : text_keys) {
      if (key == t) {
        text = true;
        break;
      }
    }
    if (text) continue;
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') {
      return Fail(error, line,
                  "non-numeric value '" + value + "' for key '" + key + "'");
    }
  }
  return true;
}

double GetNum(const KeyValues& kv, const std::string& key, double fallback) {
  const auto it = kv.find(key);
  return it == kv.end() ? fallback : std::atof(it->second.c_str());
}

std::string GetStr(const KeyValues& kv, const std::string& key,
                   const std::string& fallback = "") {
  const auto it = kv.find(key);
  return it == kv.end() ? fallback : it->second;
}

/// Parses a `prio=LO-HI` band (or a single `prio=P`).
bool ParsePriorityBand(const std::string& value, int line, int* lo, int* hi,
                       std::string* error) {
  const auto dash = value.find('-');
  char* end = nullptr;
  if (dash == std::string::npos) {
    *lo = *hi = static_cast<int>(std::strtol(value.c_str(), &end, 10));
    if (end == value.c_str() || *end != '\0') {
      return Fail(error, line, "malformed priority '" + value + "'");
    }
    return true;
  }
  const std::string lo_s = value.substr(0, dash);
  const std::string hi_s = value.substr(dash + 1);
  *lo = static_cast<int>(std::strtol(lo_s.c_str(), &end, 10));
  if (end == lo_s.c_str() || *end != '\0') {
    return Fail(error, line, "malformed priority band '" + value + "'");
  }
  *hi = static_cast<int>(std::strtol(hi_s.c_str(), &end, 10));
  if (end == hi_s.c_str() || *end != '\0') {
    return Fail(error, line, "malformed priority band '" + value + "'");
  }
  if (*lo < 0 || *hi < *lo) {
    return Fail(error, line, "empty priority band '" + value + "'");
  }
  return true;
}

}  // namespace

std::optional<std::vector<ScenarioSpec>> ParseScenarioProfile(
    const std::string& text, std::string* error) {
  std::vector<ScenarioSpec> specs;
  ScenarioSpec* current = nullptr;

  std::stringstream stream(text);
  std::string raw;
  int line = 0;
  while (std::getline(stream, raw)) {
    ++line;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw = raw.substr(0, hash);
    raw = Trim(raw);
    if (raw.empty()) continue;

    const auto colon = raw.find(':');
    if (colon == std::string::npos) {
      Fail(error, line, "directive '" + raw + "' has no ':'");
      return std::nullopt;
    }
    const std::string directive = Trim(raw.substr(0, colon));
    const std::string body = Trim(raw.substr(colon + 1));

    if (directive == "scenario") {
      KeyValues kv;
      if (!ParseKeyValues(body, line, &kv, error)) return std::nullopt;
      if (!CheckAllowedKeys(kv,
                            {"name", "app", "duration", "seed", "static",
                             "distinct_prio"},
                            directive, line, error)) {
        return std::nullopt;
      }
      if (!RequireKeys(kv, {"name"}, directive, line, error)) return std::nullopt;
      if (!CheckNumericValues(kv, {"name", "app"}, line, error)) {
        return std::nullopt;
      }
      const std::string name = GetStr(kv, "name");
      for (const ScenarioSpec& s : specs) {
        if (s.name == name) {
          Fail(error, line, "duplicate scenario name '" + name + "'");
          return std::nullopt;
        }
      }
      ScenarioSpec spec = ScenarioSpec::Make(name, GetStr(kv, "app", "boutique"));
      spec.duration_s = GetNum(kv, "duration", spec.duration_s);
      spec.seed = static_cast<std::uint64_t>(GetNum(kv, "seed", 42.0));
      spec.static_rate = GetNum(kv, "static", 0.0);
      spec.distinct_priorities = GetNum(kv, "distinct_prio", 0.0) != 0.0;
      specs.push_back(std::move(spec));
      current = &specs.back();
      continue;
    }

    if (current == nullptr) {
      Fail(error, line,
           "'" + directive + "' directive before the first 'scenario:'");
      return std::nullopt;
    }

    if (directive == "fault") {
      // Opaque fault-profile string, validated against the app at run time
      // (the services it names do not exist yet at parse time).
      if (body.empty()) {
        Fail(error, line, "'fault' directive with empty profile");
        return std::nullopt;
      }
      if (!current->fault_profile.empty()) current->fault_profile += ";";
      current->fault_profile += body;
      continue;
    }

    KeyValues kv;
    if (!ParseKeyValues(body, line, &kv, error)) return std::nullopt;

    if (directive == "phase") {
      if (!CheckAllowedKeys(kv, {"at", "users", "ramp"}, directive, line,
                            error) ||
          !RequireKeys(kv, {"at", "users"}, directive, line, error) ||
          !CheckNumericValues(kv, {}, line, error)) {
        return std::nullopt;
      }
      WorkloadPhase phase{GetNum(kv, "at", 0.0), GetNum(kv, "users", 0.0),
                          GetNum(kv, "ramp", 0.0)};
      if (!current->phases.empty() && phase.at_s < current->phases.back().at_s) {
        Fail(error, line, "phase times must be nondecreasing");
        return std::nullopt;
      }
      current->phases.push_back(phase);
    } else if (directive == "tenant") {
      if (!CheckAllowedKeys(kv, {"name", "weight", "prio"}, directive, line,
                            error) ||
          !RequireKeys(kv, {"name", "weight"}, directive, line, error) ||
          !CheckNumericValues(kv, {"name", "prio"}, line, error)) {
        return std::nullopt;
      }
      TenantSpec tenant;
      tenant.name = GetStr(kv, "name");
      tenant.weight = GetNum(kv, "weight", 1.0);
      if (kv.count("prio") != 0 &&
          !ParsePriorityBand(kv.at("prio"), line, &tenant.priority_lo,
                             &tenant.priority_hi, error)) {
        return std::nullopt;
      }
      current->tenants.push_back(std::move(tenant));
    } else if (directive == "client") {
      if (!CheckAllowedKeys(kv, {"timeout", "retries", "backoff", "think"},
                            directive, line, error) ||
          !CheckNumericValues(kv, {}, line, error)) {
        return std::nullopt;
      }
      current->client_timeout_s = GetNum(kv, "timeout", current->client_timeout_s);
      current->client_retries =
          static_cast<int>(GetNum(kv, "retries", current->client_retries));
      current->client_retry_backoff_s =
          GetNum(kv, "backoff", current->client_retry_backoff_s);
      current->think_s = GetNum(kv, "think", current->think_s);
    } else if (directive == "rpc") {
      if (!CheckAllowedKeys(kv, {"timeout", "retries", "backoff"}, directive,
                            line, error) ||
          !CheckNumericValues(kv, {}, line, error)) {
        return std::nullopt;
      }
      current->hop_timeout_s = GetNum(kv, "timeout", current->hop_timeout_s);
      current->hop_retries =
          static_cast<int>(GetNum(kv, "retries", current->hop_retries));
      current->hop_retry_backoff_s =
          GetNum(kv, "backoff", current->hop_retry_backoff_s);
    } else if (directive == "diurnal") {
      if (!CheckAllowedKeys(kv, {"low", "high", "period"}, directive, line,
                            error) ||
          !RequireKeys(kv, {"low", "high", "period"}, directive, line, error) ||
          !CheckNumericValues(kv, {}, line, error)) {
        return std::nullopt;
      }
      current->diurnal_low = GetNum(kv, "low", 0.0);
      current->diurnal_high = GetNum(kv, "high", 0.0);
      current->diurnal_period_s = GetNum(kv, "period", 0.0);
    } else if (directive == "invariant") {
      if (!CheckAllowedKeys(kv, {"kind", "value", "from", "param"}, directive,
                            line, error) ||
          !RequireKeys(kv, {"kind"}, directive, line, error) ||
          !CheckNumericValues(kv, {"kind", "param"}, line, error)) {
        return std::nullopt;
      }
      const auto kind = InvariantKindFromName(GetStr(kv, "kind"));
      if (!kind.has_value()) {
        Fail(error, line, "unknown invariant kind '" + GetStr(kv, "kind") + "'");
        return std::nullopt;
      }
      current->Require(*kind, GetNum(kv, "value", 0.0), GetNum(kv, "from", 0.0),
                       GetStr(kv, "param"));
    } else if (directive == "expect_violation") {
      if (!CheckAllowedKeys(kv, {"controller", "invariant"}, directive, line,
                            error) ||
          !RequireKeys(kv, {"controller", "invariant"}, directive, line,
                       error)) {
        return std::nullopt;
      }
      const auto kind = InvariantKindFromName(GetStr(kv, "invariant"));
      if (!kind.has_value()) {
        Fail(error, line,
             "unknown invariant kind '" + GetStr(kv, "invariant") + "'");
        return std::nullopt;
      }
      current->ExpectViolation(GetStr(kv, "controller"), *kind);
    } else {
      Fail(error, line, "unknown directive '" + directive + "'");
      return std::nullopt;
    }
  }
  if (specs.empty()) {
    Fail(error, line, "profile declares no scenarios");
    return std::nullopt;
  }
  return specs;
}

std::optional<std::vector<ScenarioSpec>> LoadScenarioProfile(
    const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open profile '" + path + "'";
    return std::nullopt;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParseScenarioProfile(buffer.str(), error);
}

}  // namespace topfull::scenario

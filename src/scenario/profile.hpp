// Text profiles for scenario specs.
//
// A profile is a newline-separated list of directives, each
// `directive: key=value, key=value, ...`, with `#` starting a comment.
// One file may declare several scenarios; every directive after a
// `scenario:` line configures that scenario until the next one.
//
//   # metastable trap, shrunk
//   scenario: name=meta_smoke, app=boutique, duration=120, seed=7
//   phase: at=0, users=300
//   phase: at=40, users=2200
//   phase: at=70, users=300
//   client: timeout=4, retries=3, backoff=0.25
//   rpc: timeout=0.5, retries=1, backoff=0.05
//   invariant: kind=escapes_overload_by, value=40, from=70
//   expect_violation: controller=static, invariant=escapes_overload_by
//
// Directives: scenario, phase, tenant, client, rpc, fault, diurnal,
// invariant, expect_violation. The parser is strict — unknown directives
// or keys, non-numeric values, duplicate scenario names, out-of-order
// phases, and directives before the first `scenario:` are all rejected
// with a line-numbered message, never a crash; malformed input is a
// first-class test fixture (tests/data/scenarios/).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "scenario/scenario.hpp"

namespace topfull::scenario {

/// Parses a profile into scenario specs. Returns nullopt and sets *error
/// (if non-null) on any malformed input.
std::optional<std::vector<ScenarioSpec>> ParseScenarioProfile(
    const std::string& text, std::string* error = nullptr);

/// Reads and parses a profile file; distinguishes unreadable files from
/// parse failures in *error.
std::optional<std::vector<ScenarioSpec>> LoadScenarioProfile(
    const std::string& path, std::string* error = nullptr);

}  // namespace topfull::scenario

#include "scenario/runner.hpp"

#include <cstdio>
#include <memory>
#include <utility>

#include "apps/alibaba_demo.hpp"
#include "apps/online_boutique.hpp"
#include "apps/train_ticket.hpp"
#include "common/table.hpp"
#include "exp/model_cache.hpp"
#include "exp/run_executor.hpp"
#include "fault/profile.hpp"
#include "obs/snapshot.hpp"
#include "obs/tsdb_plane.hpp"

namespace topfull::scenario {
namespace {

std::unique_ptr<sim::Application> MakeApp(const ScenarioSpec& spec,
                                          std::string* error) {
  if (spec.app == "boutique") {
    apps::BoutiqueOptions options;
    options.seed = spec.seed;
    options.distinct_priorities = spec.distinct_priorities;
    return apps::MakeOnlineBoutique(options);
  }
  if (spec.app == "trainticket") {
    apps::TrainTicketOptions options;
    options.seed = spec.seed;
    options.distinct_priorities = spec.distinct_priorities;
    return apps::MakeTrainTicket(options);
  }
  if (spec.app == "alibaba") {
    apps::AlibabaDemoOptions options;
    options.seed = spec.seed;
    return apps::MakeAlibabaDemo(options).app;
  }
  *error = "unknown app '" + spec.app + "'";
  return nullptr;
}

/// True when `variant` runs the RL rate controller and needs the
/// pre-trained policy.
bool NeedsPolicy(exp::Variant variant) {
  switch (variant) {
    case exp::Variant::kTopFull:
    case exp::Variant::kTopFullNoCluster:
    case exp::Variant::kTopFullBw:
      return true;
    default:
      return false;
  }
}

CellVerdict RunCell(const ScenarioSpec& spec, const std::string& controller,
                    const std::string& telemetry_name) {
  CellVerdict verdict;
  verdict.scenario = spec.name;
  verdict.controller = controller;

  const auto variant = exp::VariantFromName(controller);
  if (!variant.has_value()) {
    verdict.error = "unknown controller '" + controller + "'";
    return verdict;
  }
  auto app = MakeApp(spec, &verdict.error);
  if (app == nullptr) return verdict;

  if (spec.hop_timeout_s > 0.0) {
    app->ConfigureRpc(Seconds(spec.hop_timeout_s), spec.hop_retries,
                      Seconds(spec.hop_retry_backoff_s));
  }

  // Faults are validated against the app before anything runs, so a bad
  // profile yields an error cell rather than a half-run scenario.
  fault::FaultSchedule faults;
  if (!spec.fault_profile.empty()) {
    std::string fault_error;
    const auto parsed =
        fault::ParseFaultProfile(spec.fault_profile, *app, &fault_error);
    if (!parsed.has_value()) {
      verdict.error = "fault profile: " + fault_error;
      return verdict;
    }
    faults = *parsed;
  }

  exp::Telemetry telemetry(exp::TelemetryOptions::FromEnv());
  telemetry.Attach(*app);

  std::shared_ptr<rl::GaussianPolicy> policy;
  if (NeedsPolicy(*variant)) policy = exp::GetPretrainedPolicy();
  exp::Controllers controllers;
  controllers.Attach(*variant, *app, policy.get(), {},
                     /*mimd_decrease=*/0.05, /*mimd_increase=*/0.01,
                     spec.static_rate);

  // The SLO monitor drives the invariant checks, so every cell gets one:
  // telemetry's when tracing is on, a private one otherwise. Either way it
  // is a pure window observer — the event stream (and hence the verdict)
  // is identical with tracing on or off.
  std::unique_ptr<obs::SloMonitor> own_monitor;
  std::unique_ptr<obs::DecisionLog> own_log;
  const obs::SloMonitor* monitor = nullptr;
  if (telemetry.enabled()) {
    if (controllers.topfull() != nullptr) telemetry.Attach(*controllers.topfull());
    monitor = telemetry.monitor();
  } else {
    own_monitor = obs::SloMonitor::ForApp(*app);
    if (controllers.topfull() != nullptr) {
      own_log = std::make_unique<obs::DecisionLog>();
      controllers.topfull()->SetDecisionObserver(own_log.get());
      own_monitor->SetDecisionLog(own_log.get());
    }
    monitor = own_monitor.get();
  }

  // Every cell gets a time-series plane with the standard burn-rate rules
  // plus a goodput-floor alert derived from the scenario's own floor
  // invariant, so kNoAlertFiring always has the same rules to judge. The
  // plane is a pure observer and its rules read only the window stream, so
  // the verdict is identical for any pool size and with tracing on or off.
  obs::TsdbPlane tsdb_plane;
  for (obs::AlertRule& rule : obs::SloBurnRules()) {
    tsdb_plane.rules().AddAlert(std::move(rule));
  }
  for (const Invariant& inv : spec.invariants) {
    if (inv.kind == InvariantKind::kGoodputFloor) {
      tsdb_plane.rules().AddAlert(obs::GoodputFloorRule(inv.value));
      break;
    }
  }
  tsdb_plane.Attach(*app);

  // One closed-loop pool per tenant, splitting the scheduled population by
  // weight. A scenario without tenants runs one anonymous pool over the
  // full schedule (the legacy uniform-users setup).
  workload::TrafficDriver traffic(app.get());
  std::vector<TenantSpec> tenants = spec.tenants;
  if (tenants.empty()) tenants.push_back(TenantSpec{});
  double total_weight = 0.0;
  for (const TenantSpec& tenant : tenants) total_weight += tenant.weight;
  if (total_weight <= 0.0) total_weight = 1.0;
  const workload::Schedule users = spec.BuildUserSchedule();
  for (const TenantSpec& tenant : tenants) {
    workload::ClosedLoopConfig config = exp::UniformUsers(*app);
    if (!tenant.api_weights.empty()) config.mix.weights = tenant.api_weights;
    config.think = Seconds(spec.think_s);
    config.client_timeout = Seconds(spec.client_timeout_s);
    config.max_client_retries = spec.client_retries;
    config.client_retry_backoff = Seconds(spec.client_retry_backoff_s);
    config.user_priority_lo = tenant.priority_lo;
    config.user_priority_hi = tenant.priority_hi;
    config.tenant = tenant.name;
    traffic.AddClosedLoop(std::move(config),
                          users.Scaled(tenant.weight / total_weight));
  }

  fault::FaultInjector injector(app.get(), faults,
                                fault::FaultInjector::kDefaultSeed);
  if (!spec.fault_profile.empty()) injector.Arm();

  app->RunFor(Seconds(spec.duration_s));
  tsdb_plane.FinishRules(ToSeconds(app->sim().Now()));

  // --- Fold the run into artefacts and check --------------------------------
  RunArtifacts artifacts;
  artifacts.metrics = &app->metrics();
  artifacts.slo_events = &monitor->events();
  artifacts.alerts = &tsdb_plane.rules().transitions();
  std::uint64_t client_attempts = 0;
  std::uint64_t client_intents = 0;
  std::vector<double> all_rates;
  for (const auto& pool : traffic.pools()) {
    artifacts.tenant_outcomes.push_back(pool->Outcomes());
    for (const workload::UserOutcomes& user : pool->Outcomes()) {
      client_attempts += user.attempts;
      client_intents += user.intents;
      if (user.ok + user.failed > 0) all_rates.push_back(user.SuccessRate());
    }
  }
  artifacts.amplification = obs::ComputeAmplification(
      app->HopAttempts(), app->Retries(), client_attempts, client_intents);

  verdict.invariants = CheckInvariants(spec, artifacts);
  verdict.pass = true;
  verdict.conforms = true;
  for (InvariantResult& result : verdict.invariants) {
    result.expected_violation =
        spec.ExpectsViolation(controller, result.invariant.kind);
    verdict.pass = verdict.pass && result.ok;
    verdict.conforms =
        verdict.conforms && (result.ok == !result.expected_violation);
  }
  verdict.goodput_rps = app->metrics().AvgTotalGoodput();
  verdict.fairness = obs::SuccessRateFairness(all_rates);
  verdict.amplification = artifacts.amplification;
  verdict.slo_events = monitor->events().size();

  if (telemetry.enabled()) {
    telemetry.Export(*app, telemetry_name, controllers.topfull(),
                     injector.Log().empty() ? nullptr : &injector.Log());
  }
  return verdict;
}

std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string Quote(const std::string& s) { return "\"" + obs::JsonEscape(s) + "\""; }

std::string Bool(bool b) { return b ? "true" : "false"; }

void AppendInvariantJson(std::string* out, const InvariantResult& result) {
  *out += "{\"kind\":" + std::string(Quote(InvariantKindName(result.invariant.kind)));
  *out += ",\"value\":" + Num(result.invariant.value);
  *out += ",\"from_s\":" + Num(result.invariant.from_s);
  if (!result.invariant.param.empty()) {
    *out += ",\"param\":" + Quote(result.invariant.param);
  }
  *out += ",\"ok\":" + std::string(Bool(result.ok));
  *out += ",\"expected_violation\":" + std::string(Bool(result.expected_violation));
  *out += ",\"conforms\":" + std::string(Bool(result.ok == !result.expected_violation));
  *out += ",\"measured\":" + Num(result.measured);
  *out += ",\"detail\":" + Quote(result.detail);
  if (result.witness.has_value()) {
    const obs::SloEvent& ev = *result.witness;
    *out += ",\"witness\":{\"t_s\":" + Num(ev.t_s);
    *out += ",\"type\":" + Quote(obs::SloEventTypeName(ev.type));
    *out += ",\"subject\":" + Quote(ev.subject);
    *out += ",\"value\":" + Num(ev.value);
    *out += ",\"threshold\":" + Num(ev.threshold) + "}";
  }
  *out += "}";
}

}  // namespace

CellVerdict RunScenarioCell(const ScenarioSpec& spec,
                            const std::string& controller) {
  return RunCell(spec, controller,
                 exp::SanitizeFileName(spec.name + "_" + controller));
}

std::vector<CellVerdict> RunScenarioMatrix(
    const std::vector<ScenarioSpec>& scenarios, const MatrixOptions& options) {
  const std::size_t cols = options.controllers.size();
  const std::size_t n = scenarios.size() * cols;
  ThreadPool& pool =
      options.pool != nullptr ? *options.pool : ThreadPool::Global();
  return pool.ParallelMap(n, [&scenarios, &options, cols](std::size_t i) {
    const ScenarioSpec& spec = scenarios[i / cols];
    const std::string& controller = options.controllers[i % cols];
    // Telemetry names carry the cell index so exports never collide and
    // the naming is pool-size independent.
    char prefix[16];
    std::snprintf(prefix, sizeof(prefix), "%03zu_", i);
    return RunCell(spec, controller,
                   prefix + exp::SanitizeFileName(spec.name + "_" + controller));
  });
}

std::string MatrixReportJson(const std::vector<CellVerdict>& verdicts) {
  std::string out = "{\"schema\":\"topfull.scenario_matrix.v1\",\"cells\":[";
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    const CellVerdict& cell = verdicts[i];
    if (i != 0) out += ",";
    out += "{\"scenario\":" + Quote(cell.scenario);
    out += ",\"controller\":" + Quote(cell.controller);
    out += ",\"pass\":" + std::string(Bool(cell.pass));
    out += ",\"conforms\":" + std::string(Bool(cell.conforms));
    if (!cell.error.empty()) out += ",\"error\":" + Quote(cell.error);
    out += ",\"goodput_rps\":" + Num(cell.goodput_rps);
    out += ",\"slo_events\":" + std::to_string(cell.slo_events);
    out += ",\"amplification\":{\"hop\":" + Num(cell.amplification.hop_amplification);
    out += ",\"client\":" + Num(cell.amplification.client_amplification);
    out += ",\"total\":" + Num(cell.amplification.total);
    out += ",\"hop_attempts\":" + std::to_string(cell.amplification.hop_attempts);
    out += ",\"server_retries\":" + std::to_string(cell.amplification.server_retries);
    out += ",\"client_attempts\":" + std::to_string(cell.amplification.client_attempts);
    out += ",\"client_intents\":" + std::to_string(cell.amplification.client_intents) + "}";
    out += ",\"fairness\":{\"users\":" + std::to_string(cell.fairness.users);
    out += ",\"jain\":" + Num(cell.fairness.jain);
    out += ",\"mean\":" + Num(cell.fairness.mean);
    out += ",\"variance\":" + Num(cell.fairness.variance);
    out += ",\"min\":" + Num(cell.fairness.min);
    out += ",\"max\":" + Num(cell.fairness.max) + "}";
    out += ",\"invariants\":[";
    for (std::size_t j = 0; j < cell.invariants.size(); ++j) {
      if (j != 0) out += ",";
      AppendInvariantJson(&out, cell.invariants[j]);
    }
    out += "]}";
  }
  out += "]}\n";
  return out;
}

void PrintMatrixReport(const std::vector<CellVerdict>& verdicts) {
  Table table("Scenario conformance matrix (cell = scenario x controller)");
  table.SetHeader({"scenario", "controller", "verdict", "goodput", "amp",
                   "jain", "events", "detail"});
  for (const CellVerdict& cell : verdicts) {
    std::string note;
    if (!cell.error.empty()) {
      note = cell.error;
    } else {
      for (const InvariantResult& result : cell.invariants) {
        if (result.ok == !result.expected_violation) continue;
        note = std::string(InvariantKindName(result.invariant.kind)) + ": " +
               result.detail;
        if (result.expected_violation) note += " (expected a violation)";
        break;
      }
      if (note.empty() && !cell.pass) note = "violations all expected";
    }
    table.AddRow({cell.scenario, cell.controller,
                  cell.conforms ? "conform" : "FAIL", Fmt(cell.goodput_rps, 1),
                  Fmt(cell.amplification.total, 2), Fmt(cell.fairness.jain, 3),
                  std::to_string(cell.slo_events), note});
  }
  table.Print();
}

bool AllConform(const std::vector<CellVerdict>& verdicts) {
  for (const CellVerdict& cell : verdicts) {
    if (!cell.conforms) return false;
  }
  return true;
}

}  // namespace topfull::scenario

// The scenario x controller conformance matrix.
//
// Runs every scenario under every requested controller, evaluates the
// scenario's invariants against the finished run, and folds in the
// expected-violation declarations: a cell *conforms* when each invariant's
// outcome matches the expectation (holds when it should hold, breaks when
// the scenario says this controller must break it). Cells execute on the
// shared worker pool, one Simulation per cell, results in matrix order —
// the JSON report is byte-identical for any TOPFULL_THREADS value and
// with tracing on or off.
#pragma once

#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "obs/fairness.hpp"
#include "scenario/invariant.hpp"
#include "scenario/scenario.hpp"

namespace topfull::scenario {

/// One scenario x controller cell of the matrix.
struct CellVerdict {
  std::string scenario;
  std::string controller;

  std::vector<InvariantResult> invariants;
  /// Every invariant held.
  bool pass = false;
  /// Each invariant matched its expectation (two-sided).
  bool conforms = false;

  double goodput_rps = 0.0;  ///< whole-run average total goodput
  obs::FairnessStats fairness;
  obs::AmplificationStats amplification;
  std::size_t slo_events = 0;

  /// Non-empty when the cell could not run (bad app name, bad fault
  /// profile); a cell with an error never conforms.
  std::string error;
};

struct MatrixOptions {
  /// Controller names (exp::VariantFromName vocabulary), matrix order.
  std::vector<std::string> controllers = {"topfull", "dagor", "breakwater",
                                          "static"};
  /// Worker pool (nullptr = ThreadPool::Global()).
  ThreadPool* pool = nullptr;
};

/// Runs one cell on the calling thread.
CellVerdict RunScenarioCell(const ScenarioSpec& spec,
                            const std::string& controller);

/// Runs the full matrix (scenarios x options.controllers, scenario-major
/// order) on the worker pool.
std::vector<CellVerdict> RunScenarioMatrix(
    const std::vector<ScenarioSpec>& scenarios,
    const MatrixOptions& options = {});

/// Serialises verdicts as the "topfull.scenario_matrix.v1" JSON document.
std::string MatrixReportJson(const std::vector<CellVerdict>& verdicts);

/// Renders the per-cell verdict table to stdout.
void PrintMatrixReport(const std::vector<CellVerdict>& verdicts);

/// True when every cell conforms (the CI gate).
bool AllConform(const std::vector<CellVerdict>& verdicts);

}  // namespace topfull::scenario

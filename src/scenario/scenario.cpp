#include "scenario/scenario.hpp"

#include <algorithm>
#include <utility>

namespace topfull::scenario {

const char* InvariantKindName(InvariantKind kind) {
  switch (kind) {
    case InvariantKind::kGoodputFloor: return "goodput_floor";
    case InvariantKind::kEscapesOverloadBy: return "escapes_overload_by";
    case InvariantKind::kMaxRetryAmplification: return "max_retry_amplification";
    case InvariantKind::kFairnessIndexMin: return "fairness_index_min";
    case InvariantKind::kNoOscillationAfter: return "no_oscillation_after";
    case InvariantKind::kNoAlertFiring: return "no_alert_firing";
  }
  return "unknown";
}

std::optional<InvariantKind> InvariantKindFromName(const std::string& name) {
  if (name == "goodput_floor") return InvariantKind::kGoodputFloor;
  if (name == "escapes_overload_by") return InvariantKind::kEscapesOverloadBy;
  if (name == "max_retry_amplification") {
    return InvariantKind::kMaxRetryAmplification;
  }
  if (name == "fairness_index_min") return InvariantKind::kFairnessIndexMin;
  if (name == "no_oscillation_after") return InvariantKind::kNoOscillationAfter;
  if (name == "no_alert_firing") return InvariantKind::kNoAlertFiring;
  return std::nullopt;
}

ScenarioSpec ScenarioSpec::Make(std::string name, std::string app) {
  ScenarioSpec spec;
  spec.name = std::move(name);
  spec.app = std::move(app);
  return spec;
}

ScenarioSpec& ScenarioSpec::Describe(std::string text) {
  description = std::move(text);
  return *this;
}

ScenarioSpec& ScenarioSpec::Seed(std::uint64_t s) {
  seed = s;
  return *this;
}

ScenarioSpec& ScenarioSpec::Duration(double seconds) {
  duration_s = seconds;
  return *this;
}

ScenarioSpec& ScenarioSpec::Phase(double at_s, double users, double ramp_s) {
  phases.push_back({at_s, users, ramp_s});
  return *this;
}

ScenarioSpec& ScenarioSpec::Diurnal(double low, double high, double period_s) {
  diurnal_low = low;
  diurnal_high = high;
  diurnal_period_s = period_s;
  return *this;
}

ScenarioSpec& ScenarioSpec::Tenant(TenantSpec tenant) {
  tenants.push_back(std::move(tenant));
  return *this;
}

ScenarioSpec& ScenarioSpec::Client(double timeout_s, int retries,
                                   double backoff_s, double think) {
  client_timeout_s = timeout_s;
  client_retries = retries;
  client_retry_backoff_s = backoff_s;
  think_s = think;
  return *this;
}

ScenarioSpec& ScenarioSpec::Rpc(double timeout_s, int retries,
                                double backoff_s) {
  hop_timeout_s = timeout_s;
  hop_retries = retries;
  hop_retry_backoff_s = backoff_s;
  return *this;
}

ScenarioSpec& ScenarioSpec::Faults(std::string profile) {
  fault_profile = std::move(profile);
  return *this;
}

ScenarioSpec& ScenarioSpec::StaticRate(double rate) {
  static_rate = rate;
  return *this;
}

ScenarioSpec& ScenarioSpec::DistinctPriorities(bool on) {
  distinct_priorities = on;
  return *this;
}

ScenarioSpec& ScenarioSpec::Require(InvariantKind kind, double value,
                                    double from_s) {
  invariants.push_back({kind, value, from_s, ""});
  return *this;
}

ScenarioSpec& ScenarioSpec::Require(InvariantKind kind, double value,
                                    double from_s, std::string param) {
  invariants.push_back({kind, value, from_s, std::move(param)});
  return *this;
}

ScenarioSpec& ScenarioSpec::ExpectViolation(std::string controller,
                                            InvariantKind kind) {
  expected_violations.push_back({std::move(controller), kind});
  return *this;
}

workload::Schedule ScenarioSpec::BuildUserSchedule() const {
  if (diurnal_period_s > 0.0) {
    return workload::Schedule::Diurnal(diurnal_low, diurnal_high,
                                       Seconds(diurnal_period_s),
                                       Seconds(duration_s));
  }
  workload::Schedule schedule = workload::Schedule::Constant(0.0);
  double prev_users = 0.0;
  for (const WorkloadPhase& phase : phases) {
    const SimTime at = Seconds(phase.at_s);
    if (phase.ramp_s > 0.0) {
      // Stepped linear climb from the previous level, 1 s granularity
      // (matching Schedule::Ramp), landing exactly on `users`.
      const SimTime step = Seconds(1);
      const auto steps =
          std::max<int>(1, static_cast<int>(Seconds(phase.ramp_s) / step));
      for (int i = 1; i <= steps; ++i) {
        const double frac = static_cast<double>(i) / static_cast<double>(steps);
        schedule.Then(at + i * step,
                      prev_users + (phase.users - prev_users) * frac);
      }
    } else {
      schedule.Then(at, phase.users);
    }
    prev_users = phase.users;
  }
  return schedule;
}

bool ScenarioSpec::ExpectsViolation(const std::string& controller,
                                    InvariantKind kind) const {
  for (const Expectation& e : expected_violations) {
    if (e.controller == controller && e.invariant == kind) return true;
  }
  return false;
}

ScenarioSpec ScenarioSpec::TimeScaled(double factor) const {
  ScenarioSpec scaled = *this;
  scaled.duration_s *= factor;
  for (WorkloadPhase& phase : scaled.phases) {
    phase.at_s *= factor;
    phase.ramp_s *= factor;
  }
  scaled.diurnal_period_s *= factor;
  for (Invariant& inv : scaled.invariants) {
    inv.from_s *= factor;
    // The escape budget is itself a time; every other value is a
    // rate/ratio threshold and survives the shrink untouched.
    if (inv.kind == InvariantKind::kEscapesOverloadBy) inv.value *= factor;
  }
  return scaled;
}

}  // namespace topfull::scenario

// Declarative workload-pathology scenarios (the conformance suite).
//
// A ScenarioSpec names one end-to-end overload situation — which app to
// build, how the user population evolves (piecewise phases, or a diurnal
// curve), how clients and RPC hops retry, which tenants share the system —
// plus the machine-checkable invariants every controller is vetted
// against and the violations a given controller is *expected* to commit
// (a static limiter is supposed to stay trapped in the metastable
// scenario; if it escapes, the scenario no longer demonstrates the
// pathology and the suite flags it).
//
// Specs are built fluently in C++ (see library.hpp for the built-in
// families) or parsed from a text profile (profile.hpp). Everything in a
// spec is plain data: a spec can be serialised into the matrix report and
// two runs of the same spec are byte-identical.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "workload/schedule.hpp"

namespace topfull::scenario {

/// One breakpoint of the user-population schedule: `users` from `at_s`
/// onward, reached by a linear ramp of `ramp_s` seconds (0 = step).
struct WorkloadPhase {
  double at_s = 0.0;
  double users = 0.0;
  double ramp_s = 0.0;
};

/// One tenant class sharing the system: a slice of the user population
/// with its own API mix and a stable DAGOR user-priority band. With no
/// tenants declared, a scenario runs one anonymous class over a uniform
/// mix and legacy per-request priorities.
struct TenantSpec {
  std::string name = "all";
  /// Share of the scheduled user population (normalised across tenants).
  double weight = 1.0;
  /// Stable per-user priority band [lo, hi]; -1 = per-request sampling.
  int priority_lo = -1;
  int priority_hi = -1;
  /// Per-API mix weights (empty = uniform over the app's APIs).
  std::vector<double> api_weights;
};

/// The machine-checkable invariant kinds (see invariant.hpp for the exact
/// semantics of each check).
enum class InvariantKind {
  kGoodputFloor,           ///< avg total goodput >= value over [from_s, end)
  kEscapesOverloadBy,      ///< overload gone within `value` s after `from_s`
  kMaxRetryAmplification,  ///< compound retry amplification <= value
  kFairnessIndexMin,       ///< min per-tenant Jain index >= value
  kNoOscillationAfter,     ///< no controller oscillation at/after from_s
  kNoAlertFiring,          ///< alert `param` never firing at/after from_s
};

/// Stable wire name ("goodput_floor", "escapes_overload_by", ...).
const char* InvariantKindName(InvariantKind kind);
std::optional<InvariantKind> InvariantKindFromName(const std::string& name);

struct Invariant {
  InvariantKind kind = InvariantKind::kGoodputFloor;
  /// Threshold: rps floor, escape budget in seconds, amplification cap, or
  /// minimum fairness index (unused for kNoOscillationAfter and
  /// kNoAlertFiring).
  double value = 0.0;
  /// Reference time: window start for kGoodputFloor, the end of the
  /// pathological phase for kEscapesOverloadBy, the quiet-after time for
  /// kNoOscillationAfter / kNoAlertFiring (unused for the other kinds).
  double from_s = 0.0;
  /// Kind-specific selector. kNoAlertFiring: the alert-rule name to watch
  /// (empty = any rule). Unused by the other kinds.
  std::string param;
};

/// Declares that `controller` (matrix name, e.g. "static") is expected to
/// violate `invariant` in this scenario. Expectations are two-sided: a
/// controller that dodges its expected violation un-demonstrates the
/// pathology and fails the cell just like an unexpected violation does.
struct Expectation {
  std::string controller;
  InvariantKind invariant = InvariantKind::kGoodputFloor;
};

struct ScenarioSpec {
  std::string name;
  std::string description;
  /// App factory key: "boutique", "trainticket" or "alibaba".
  std::string app = "boutique";
  std::uint64_t seed = 42;
  double duration_s = 120.0;
  /// Give the app's APIs distinct business priorities (DAGOR-style mixes).
  bool distinct_priorities = false;

  // --- Client behaviour -----------------------------------------------------
  double think_s = 1.0;
  double client_timeout_s = 5.0;
  int client_retries = 0;
  double client_retry_backoff_s = 0.1;

  // --- Per-hop RPC policy ---------------------------------------------------
  double hop_timeout_s = 0.0;
  int hop_retries = 0;
  double hop_retry_backoff_s = 0.0;

  // --- Workload -------------------------------------------------------------
  std::vector<WorkloadPhase> phases;  ///< sorted by at_s
  /// Diurnal replay: when period > 0 the user schedule is a raised-cosine
  /// oscillation between low and high (phases are ignored).
  double diurnal_low = 0.0;
  double diurnal_high = 0.0;
  double diurnal_period_s = 0.0;
  std::vector<TenantSpec> tenants;

  /// Fault profile string (fault/profile.hpp grammar), expanded against
  /// the app when the cell runs. Empty = no faults.
  std::string fault_profile;

  /// Per-API rate of the "static" matrix controller (<= 0 = uncapped).
  double static_rate = 0.0;

  std::vector<Invariant> invariants;
  std::vector<Expectation> expected_violations;

  // --- Fluent builder -------------------------------------------------------
  static ScenarioSpec Make(std::string name, std::string app = "boutique");
  ScenarioSpec& Describe(std::string text);
  ScenarioSpec& Seed(std::uint64_t seed);
  ScenarioSpec& Duration(double seconds);
  ScenarioSpec& Phase(double at_s, double users, double ramp_s = 0.0);
  ScenarioSpec& Diurnal(double low, double high, double period_s);
  ScenarioSpec& Tenant(TenantSpec tenant);
  ScenarioSpec& Client(double timeout_s, int retries, double backoff_s,
                       double think_s = 1.0);
  ScenarioSpec& Rpc(double timeout_s, int retries, double backoff_s);
  ScenarioSpec& Faults(std::string profile);
  ScenarioSpec& StaticRate(double rate);
  ScenarioSpec& DistinctPriorities(bool on = true);
  ScenarioSpec& Require(InvariantKind kind, double value, double from_s = 0.0);
  ScenarioSpec& Require(InvariantKind kind, double value, double from_s,
                        std::string param);
  ScenarioSpec& ExpectViolation(std::string controller, InvariantKind kind);

  /// The user-population schedule implied by the phases / diurnal fields.
  workload::Schedule BuildUserSchedule() const;

  /// Whether `controller` is expected to violate `kind` here.
  bool ExpectsViolation(const std::string& controller, InvariantKind kind) const;

  /// Multiplies every time in the spec (duration, phase times and ramps,
  /// diurnal period, time-valued invariant fields) by `factor` — the
  /// smoke-mode shrink. Thresholds that are not times are untouched.
  ScenarioSpec TimeScaled(double factor) const;
};

}  // namespace topfull::scenario

// Admission-control extension points of the simulator.
//
// TopFull acts only at the entry gateway (EntryAdmission). The baselines
// (DAGOR, Breakwater) act at every microservice (ServiceAdmission), which is
// exactly the architectural difference the paper studies.
#pragma once

#include "common/sim_time.hpp"
#include "sim/types.hpp"

namespace topfull::sim {

/// Gateway-side admission: consulted once per client request.
class EntryAdmission {
 public:
  virtual ~EntryAdmission() = default;
  /// Returns true to admit the request into the application.
  virtual bool Admit(ApiId api, SimTime now) = 0;
};

/// Per-microservice admission: consulted for every sub-request arriving at a
/// service, before it is enqueued on a pod.
class ServiceAdmission {
 public:
  virtual ~ServiceAdmission() = default;
  /// Returns true to let the sub-request onto `pod_index` of `service`.
  virtual bool Admit(const RequestInfo& info, ServiceId service, int pod_index,
                     SimTime now) = 0;
};

}  // namespace topfull::sim

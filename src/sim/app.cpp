#include "sim/app.hpp"

#include <cassert>
#include <utility>

namespace topfull::sim {

struct Application::Request {
  RequestInfo info;
  SimTime start = 0;
  const ExecutionPath* path = nullptr;
  DoneFn on_done;
  bool finalized = false;
};

Application::Application(std::string name, std::uint64_t seed, AppConfig config)
    : name_(std::move(name)), config_(config), rng_(seed) {}

ServiceId Application::AddService(ServiceConfig config) {
  assert(!finalized_ && "cannot add services after Finalize()");
  const auto id = static_cast<ServiceId>(services_.size());
  Rng service_rng = rng_.Fork(HashLabel(config.name) ^ static_cast<std::uint64_t>(id));
  services_.push_back(std::make_unique<Service>(&sim_, id, std::move(config), service_rng));
  return id;
}

ApiId Application::AddApi(ApiSpec spec) {
  assert(!finalized_ && "cannot add APIs after Finalize()");
  const auto id = static_cast<ApiId>(apis_.size());
  apis_.push_back(std::move(spec));
  return id;
}

void Application::Finalize() {
  assert(!finalized_);
  finalized_ = true;
  for (auto& api : apis_) api.Finalize();
  metrics_ = std::make_unique<MetricsCollector>(NumApis(), config_.slo);

  // Streaming-metrics registry: resolve every request/service family once
  // so the per-event hot path is a single pointer add.
  std::vector<ApiMetricHandles> api_handles;
  api_handles.reserve(apis_.size());
  for (const auto& api : apis_) {
    const obs::Labels labels{{"api", api.name()}};
    ApiMetricHandles h;
    h.offered = registry_.GetCounter("topfull_requests_offered_total",
                                     "Client requests offered at the gateway.", labels);
    h.admitted = registry_.GetCounter("topfull_requests_admitted_total",
                                      "Requests admitted by the entry limiter.", labels);
    h.rejected_entry =
        registry_.GetCounter("topfull_requests_rejected_entry_total",
                             "Requests shed by the entry rate limiter.", labels);
    h.rejected_service = registry_.GetCounter(
        "topfull_requests_rejected_service_total",
        "Admitted requests that failed at some microservice.", labels);
    h.completed = registry_.GetCounter("topfull_requests_completed_total",
                                       "Requests that completed end to end.", labels);
    h.good = registry_.GetCounter("topfull_requests_good_total",
                                  "Completions within the end-to-end SLO.", labels);
    obs::HistogramConfig latency_buckets;
    latency_buckets.min_value = 1e-2;  // 10 us, in ms
    latency_buckets.max_value = 1e6;   // ~17 min, in ms
    h.latency_ms = registry_.GetHistogram(
        "topfull_request_latency_ms", "End-to-end latency of completed requests.",
        labels, latency_buckets);
    api_handles.push_back(h);
  }
  metrics_->BindRegistry(std::move(api_handles));

  service_handles_.clear();
  for (const auto& svc : services_) {
    const obs::Labels labels{{"service", svc->name()}};
    ServiceMetricHandles h;
    h.cpu = registry_.GetGauge("topfull_service_cpu_utilization",
                               "CPU utilisation over the last closed window.", labels);
    h.pods = registry_.GetGauge("topfull_service_running_pods",
                                "Running pods per microservice.", labels);
    h.outstanding =
        registry_.GetGauge("topfull_service_outstanding_jobs",
                           "Queued + in-service jobs at the window close.", labels);
    h.capacity = registry_.GetGauge(
        "topfull_service_capacity_rps",
        "Estimated sustainable throughput per microservice at work=1.", labels);
    h.capacity->Set(svc->CapacityRps());
    obs::HistogramConfig delay_buckets;
    delay_buckets.min_value = 1e-3;  // 1 us, in ms
    delay_buckets.max_value = 1e6;
    h.queue_delay_ms = registry_.GetHistogram(
        "topfull_service_queue_delay_ms",
        "Per-window average queueing delay (one sample per window).", labels,
        delay_buckets);
    service_handles_.push_back(h);
  }
  registry_.GetGauge("topfull_slo_seconds", "End-to-end latency SLO.")
      ->Set(ToSeconds(config_.slo));
  sim_end_gauge_ = registry_.GetGauge(
      "topfull_sim_end_seconds", "Simulation time at the last closed metrics window.");

  // Metric collection loop. Registered before any controller loop so that
  // within every tick, controllers observe the freshly closed window.
  sim_.SchedulePeriodic(config_.metrics_period, config_.metrics_period, [this]() {
    std::vector<ServiceWindow> windows;
    windows.reserve(services_.size());
    for (std::size_t s = 0; s < services_.size(); ++s) {
      const ServiceWindowStats w = services_[s]->CollectWindow(config_.metrics_period);
      windows.push_back(ServiceWindow{w.cpu_utilization, w.avg_queue_delay_s,
                                      w.max_queue_delay_s, w.running_pods,
                                      w.total_outstanding});
      ServiceMetricHandles& h = service_handles_[s];
      h.cpu->Set(w.cpu_utilization);
      h.pods->Set(w.running_pods);
      h.outstanding->Set(w.total_outstanding);
      h.capacity->Set(services_[s]->CapacityRps());
      h.queue_delay_ms->Record(1e3 * w.avg_queue_delay_s);
    }
    sim_end_gauge_->Set(ToSeconds(sim_.Now()));
    metrics_->Collect(sim_.Now(), std::move(windows));
  });
}

ServiceId Application::FindService(const std::string& name) const {
  for (const auto& svc : services_) {
    if (svc->name() == name) return svc->id();
  }
  return kNoService;
}

ApiId Application::FindApi(const std::string& name) const {
  for (std::size_t i = 0; i < apis_.size(); ++i) {
    if (apis_[i].name() == name) return static_cast<ApiId>(i);
  }
  return kNoApi;
}

void Application::Submit(ApiId api, DoneFn on_done) {
  assert(finalized_ && "Finalize() before submitting traffic");
  metrics_->OnOffered(api);
  if (observer_ != nullptr) observer_->OnOffered(api, sim_.Now());
  if (entry_ != nullptr && !entry_->Admit(api, sim_.Now())) {
    metrics_->OnRejectedEntry(api);
    if (observer_ != nullptr) observer_->OnEntryRejected(api, sim_.Now());
    if (on_done) on_done(Outcome::kRejectedEntry, 0);
    return;
  }
  metrics_->OnAdmitted(api);

  auto req = std::make_shared<Request>();
  req->info.id = next_request_id_++;
  req->info.api = api;
  req->info.business_priority = apis_[api].business_priority();
  req->info.user_priority = static_cast<int>(rng_.UniformInt(0, 127));
  req->start = sim_.Now();
  const auto& spec = apis_[api];
  req->path = &spec.paths()[spec.SamplePath(rng_.NextDouble())];
  req->on_done = std::move(on_done);
  ++inflight_;
  if (observer_ != nullptr) observer_->OnAdmitted(req->info.id, api, sim_.Now());

  ExecNode(req, &req->path->root,
           [this, req](bool ok) { FinalizeRequest(req, ok); });
}

void Application::ExecNode(const std::shared_ptr<Request>& req, const CallNode* node,
                           Continuation cont) {
  AttemptNode(req, node, /*attempt=*/0, std::move(cont));
}

void Application::AttemptNode(const std::shared_ptr<Request>& req, const CallNode* node,
                              int attempt, Continuation cont) {
  Service& svc = *services_[node->service];
  // Synchronous-RPC services hold their worker slot while the request's
  // downstream subtree runs; the slot is released when the subtree
  // resolves (success or failure). A fresh handle per attempt: a retried
  // hop lands on a (possibly) different pod.
  const bool blocking = svc.config().blocking_rpc && !node->children.empty();
  std::shared_ptr<Service::HeldDispatch> held;
  if (blocking) held = std::make_shared<Service::HeldDispatch>();
  // Failure path shared by shed, injected error, pod death, and hop
  // timeout: bounded retry with backoff, then propagate the failure. The
  // retry re-enters AttemptNode, re-picking a pod and re-sampling service
  // time — work already burned on the failed attempt stays spent.
  auto fail = [this, req, node, attempt, cont]() {
    if (attempt < config_.max_retries) {
      ++retries_;
      auto retry = [this, req, node, attempt, cont]() {
        AttemptNode(req, node, attempt + 1, cont);
      };
      if (config_.retry_backoff > 0) {
        sim_.ScheduleAfter(config_.retry_backoff, std::move(retry));
      } else {
        retry();
      }
    } else {
      cont(false);
    }
  };
  // Span bookkeeping only for traced requests; the shared slot receives the
  // sampled service duration from the dispatch call.
  const bool traced = observer_ != nullptr && observer_->Tracing(req->info.id);
  std::shared_ptr<SimTime> hop_service_time;
  if (traced) hop_service_time = std::make_shared<SimTime>(0);
  const SimTime hop_start = sim_.Now();
  // First of {local completion, hop timeout} settles the attempt; the
  // loser only cleans up.
  auto settled = std::make_shared<bool>(false);
  auto on_local_done = [this, req, node, cont, fail, held, settled, traced,
                        hop_start, hop_service_time](bool ok) mutable {
    if (*settled) {
      // The hop timed out earlier; the server just finished the wasted
      // work. A blocking attempt's slot is freed here (nobody else will);
      // non-blocking pods free their own slot.
      if (held != nullptr) Service::ReleaseHeld(*held);
      return;
    }
    *settled = true;
    if (traced) {
      observer_->OnHopDone(req->info.id, node->service, hop_start, sim_.Now(),
                           *hop_service_time, ok);
    }
    if (!ok) {
      // Pod died mid-service: no slot is held (the hold handle never
      // activated), so fail/retry directly.
      fail();
      return;
    }
    Continuation sub_cont = std::move(cont);
    if (held != nullptr) {
      sub_cont = [held, inner = std::move(sub_cont)](bool sub_ok) {
        Service::ReleaseHeld(*held);
        inner(sub_ok);
      };
    }
    if (node->children.empty()) {
      sub_cont(true);
      return;
    }
    if (node->parallel) {
      // Fan out all children; join when every branch resolves. Failed
      // branches do not cancel their siblings (their work is wasted),
      // matching real partially-constructed responses.
      auto remaining = std::make_shared<int>(static_cast<int>(node->children.size()));
      auto all_ok = std::make_shared<bool>(true);
      auto joined = std::make_shared<Continuation>(std::move(sub_cont));
      for (const auto& child : node->children) {
        ExecNode(req, &child, [remaining, all_ok, joined](bool child_ok) {
          if (!child_ok) *all_ok = false;
          if (--*remaining == 0) (*joined)(*all_ok);
        });
      }
    } else {
      ExecChildren(req, node, 0, std::move(sub_cont));
    }
  };
  const bool dispatched =
      blocking ? svc.DispatchHeld(req->info, node->work, on_local_done, held,
                                  hop_service_time.get())
               : svc.Dispatch(req->info, node->work, on_local_done,
                              hop_service_time.get());
  if (!dispatched) {
    if (traced) observer_->OnHopShed(req->info.id, node->service, sim_.Now());
    fail();
    return;
  }
  if (config_.hop_timeout > 0) {
    // Scheduled identically whether or not the request is traced — the
    // event sequence (and thus every tie-break) must not depend on
    // observation.
    sim_.ScheduleAfter(config_.hop_timeout,
                       [this, req, node, fail, settled, traced, hop_start,
                        hop_service_time]() mutable {
                         if (*settled) return;
                         *settled = true;
                         ++hop_timeouts_;
                         if (traced) {
                           observer_->OnHopDone(req->info.id, node->service, hop_start,
                                                sim_.Now(), *hop_service_time,
                                                /*ok=*/false);
                         }
                         fail();
                       });
  }
}

void Application::ExecChildren(const std::shared_ptr<Request>& req, const CallNode* node,
                               std::size_t next_child, Continuation cont) {
  if (next_child >= node->children.size()) {
    cont(true);
    return;
  }
  ExecNode(req, &node->children[next_child],
           [this, req, node, next_child, cont = std::move(cont)](bool ok) mutable {
             if (!ok) {
               cont(false);
               return;
             }
             ExecChildren(req, node, next_child + 1, std::move(cont));
           });
}

void Application::FinalizeRequest(const std::shared_ptr<Request>& req, bool ok) {
  if (req->finalized) return;
  req->finalized = true;
  --inflight_;
  const SimTime latency = sim_.Now() - req->start;
  if (observer_ != nullptr && observer_->Tracing(req->info.id)) {
    observer_->OnRequestDone(req->info.id, req->info.api, req->start, sim_.Now(),
                             ok ? Outcome::kCompleted : Outcome::kRejectedService,
                             ok && latency <= config_.slo);
  }
  if (ok) {
    metrics_->OnCompleted(req->info.api, latency);
    if (req->on_done) req->on_done(Outcome::kCompleted, latency);
  } else {
    metrics_->OnRejectedService(req->info.api);
    if (req->on_done) req->on_done(Outcome::kRejectedService, latency);
  }
}

}  // namespace topfull::sim

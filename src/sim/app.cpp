#include "sim/app.hpp"

#include <cassert>
#include <utility>

#include "des/sharded_simulation.hpp"

namespace topfull::sim {

// One pooled record per admitted request. Recycled through a SlabPool; the
// generation counter survives recycling and invalidates any stale pointer
// (retry events assert against it).
struct Application::RequestRec {
  RequestInfo info;
  SimTime start = 0;
  const ExecutionPath* path = nullptr;
  std::uint32_t path_index = 0;
  DoneFn on_done;
  std::uint32_t gen = 0;
  bool finalized = false;
  /// Remote-subtree records (allocated by BeginRemoteSubtree on behalf of
  /// another shard) reply to `remote_origin` instead of finalising API
  /// metrics; -1 marks an ordinary local root request.
  int remote_origin = -1;
  AttemptRec* remote_proxy = nullptr;
  std::uint32_t remote_proxy_gen = 0;
};

// One pooled record per hop attempt. Replaces the old per-attempt closure
// web (shared_ptr<Request> + shared_ptr<bool> settled + shared_ptr<SimTime>
// + shared_ptr<HeldDispatch> + std::function captures) with a single
// recycled struct. `pending` counts the references that may still touch the
// record: the attempt logic itself, the dispatch completion callback, and
// the hop-timeout timer; the record is freed (generation bumped) when all
// are gone.
struct Application::AttemptRec {
  RequestRec* req = nullptr;
  const CallNode* node = nullptr;
  int attempt = 0;
  ContRef cont{};
  std::uint32_t gen = 0;
  int pending = 0;
  bool settled = false;
  /// Settled by the hop timeout: the held worker slot (if any) must NOT be
  /// released at subtree resolution — the late completion releases it.
  bool timed_out = false;
  bool traced = false;
  Service::HeldDispatch held{};
  SimTime hop_start = 0;
  SimTime hop_service_time = 0;
  des::Simulation::TimerHandle timeout{};
  std::uint32_t next_child = 0;   // sequential-children cursor
  int join_remaining = 0;         // parallel join
  bool join_all_ok = true;
};

Application::Application(std::string name, std::uint64_t seed, AppConfig config)
    : name_(std::move(name)), config_(config), rng_(seed) {}

Application::~Application() = default;

ServiceId Application::AddService(ServiceConfig config) {
  assert(!finalized_ && "cannot add services after Finalize()");
  const auto id = static_cast<ServiceId>(services_.size());
  Rng service_rng = rng_.Fork(HashLabel(config.name) ^ static_cast<std::uint64_t>(id));
  services_.push_back(std::make_unique<Service>(&sim_, id, std::move(config), service_rng));
  return id;
}

ApiId Application::AddApi(ApiSpec spec) {
  assert(!finalized_ && "cannot add APIs after Finalize()");
  const auto id = static_cast<ApiId>(apis_.size());
  apis_.push_back(std::move(spec));
  return id;
}

void Application::Finalize() {
  assert(!finalized_);
  finalized_ = true;
  for (auto& api : apis_) api.Finalize();
  metrics_ = std::make_unique<MetricsCollector>(NumApis(), config_.slo);

  // Name -> id indices. Topology is frozen from here on, so the maps never
  // go stale; controllers and fault profiles resolve names every tick.
  service_index_.reserve(services_.size());
  for (const auto& svc : services_) service_index_.emplace(svc->name(), svc->id());
  api_index_.reserve(apis_.size());
  for (std::size_t i = 0; i < apis_.size(); ++i) {
    api_index_.emplace(apis_[i].name(), static_cast<ApiId>(i));
  }

  // Streaming-metrics registry: resolve every request/service family once
  // so the per-event hot path is a single pointer add.
  std::vector<ApiMetricHandles> api_handles;
  api_handles.reserve(apis_.size());
  for (const auto& api : apis_) {
    const obs::Labels labels{{"api", api.name()}};
    ApiMetricHandles h;
    h.offered = registry_.GetCounter("topfull_requests_offered_total",
                                     "Client requests offered at the gateway.", labels);
    h.admitted = registry_.GetCounter("topfull_requests_admitted_total",
                                      "Requests admitted by the entry limiter.", labels);
    h.rejected_entry =
        registry_.GetCounter("topfull_requests_rejected_entry_total",
                             "Requests shed by the entry rate limiter.", labels);
    h.rejected_service = registry_.GetCounter(
        "topfull_requests_rejected_service_total",
        "Admitted requests that failed at some microservice.", labels);
    h.completed = registry_.GetCounter("topfull_requests_completed_total",
                                       "Requests that completed end to end.", labels);
    h.good = registry_.GetCounter("topfull_requests_good_total",
                                  "Completions within the end-to-end SLO.", labels);
    obs::HistogramConfig latency_buckets;
    latency_buckets.min_value = 1e-2;  // 10 us, in ms
    latency_buckets.max_value = 1e6;   // ~17 min, in ms
    h.latency_ms = registry_.GetHistogram(
        "topfull_request_latency_ms", "End-to-end latency of completed requests.",
        labels, latency_buckets);
    api_handles.push_back(h);
  }
  metrics_->BindRegistry(std::move(api_handles));

  service_handles_.clear();
  for (const auto& svc : services_) {
    const obs::Labels labels{{"service", svc->name()}};
    ServiceMetricHandles h;
    h.cpu = registry_.GetGauge("topfull_service_cpu_utilization",
                               "CPU utilisation over the last closed window.", labels);
    h.pods = registry_.GetGauge("topfull_service_running_pods",
                                "Running pods per microservice.", labels);
    h.outstanding =
        registry_.GetGauge("topfull_service_outstanding_jobs",
                           "Queued + in-service jobs at the window close.", labels);
    h.capacity = registry_.GetGauge(
        "topfull_service_capacity_rps",
        "Estimated sustainable throughput per microservice at work=1.", labels);
    h.capacity->Set(svc->CapacityRps());
    obs::HistogramConfig delay_buckets;
    delay_buckets.min_value = 1e-3;  // 1 us, in ms
    delay_buckets.max_value = 1e6;
    h.queue_delay_ms = registry_.GetHistogram(
        "topfull_service_queue_delay_ms",
        "Per-window average queueing delay (one sample per window).", labels,
        delay_buckets);
    service_handles_.push_back(h);
  }
  registry_.GetGauge("topfull_slo_seconds", "End-to-end latency SLO.")
      ->Set(ToSeconds(config_.slo));
  sim_end_gauge_ = registry_.GetGauge(
      "topfull_sim_end_seconds", "Simulation time at the last closed metrics window.");
  engine_handles_.pending_events = registry_.GetGauge(
      "topfull_engine_pending_events",
      "Timer-heap size (scheduled events not yet fired) at the window close.");
  engine_handles_.events_cancelled = registry_.GetGauge(
      "topfull_engine_events_cancelled",
      "Events cancelled before firing, cumulative.");
  engine_handles_.timer_slots = registry_.GetGauge(
      "topfull_engine_timer_slots",
      "Timer slots carved from the slab pool (capacity high-water).");
  engine_handles_.timer_slots_free = registry_.GetGauge(
      "topfull_engine_timer_slots_free",
      "Timer slots currently on the free list.");
  engine_handles_.arena_requests_live = registry_.GetGauge(
      "topfull_engine_arena_requests_live",
      "Live pooled request records at the window close.");
  engine_handles_.arena_requests_capacity = registry_.GetGauge(
      "topfull_engine_arena_requests_capacity",
      "Request-record arena capacity high-water.");
  engine_handles_.arena_attempts_live = registry_.GetGauge(
      "topfull_engine_arena_attempts_live",
      "Live pooled attempt records at the window close.");
  engine_handles_.arena_attempts_capacity = registry_.GetGauge(
      "topfull_engine_arena_attempts_capacity",
      "Attempt-record arena capacity high-water.");

  // Metric collection loop. Registered before any controller loop so that
  // within every tick, controllers observe the freshly closed window.
  window_scratch_.reserve(services_.size());
  sim_.SchedulePeriodic(config_.metrics_period, config_.metrics_period, [this]() {
    window_scratch_.clear();
    for (std::size_t s = 0; s < services_.size(); ++s) {
      const ServiceWindowStats w = services_[s]->CollectWindow(config_.metrics_period);
      window_scratch_.push_back(ServiceWindow{w.cpu_utilization, w.avg_queue_delay_s,
                                              w.max_queue_delay_s, w.running_pods,
                                              w.total_outstanding});
      ServiceMetricHandles& h = service_handles_[s];
      h.cpu->Set(w.cpu_utilization);
      h.pods->Set(w.running_pods);
      h.outstanding->Set(w.total_outstanding);
      h.capacity->Set(services_[s]->CapacityRps());
      h.queue_delay_ms->Record(1e3 * w.avg_queue_delay_s);
    }
    sim_end_gauge_->Set(ToSeconds(sim_.Now()));
    engine_handles_.pending_events->Set(static_cast<double>(sim_.PendingEvents()));
    engine_handles_.events_cancelled->Set(
        static_cast<double>(sim_.EventsCancelled()));
    engine_handles_.timer_slots->Set(static_cast<double>(sim_.SlotCapacity()));
    engine_handles_.timer_slots_free->Set(static_cast<double>(sim_.SlotsFree()));
    const ArenaStats arena = Arena();
    engine_handles_.arena_requests_live->Set(
        static_cast<double>(arena.live_requests));
    engine_handles_.arena_requests_capacity->Set(
        static_cast<double>(arena.request_capacity));
    engine_handles_.arena_attempts_live->Set(
        static_cast<double>(arena.live_attempts));
    engine_handles_.arena_attempts_capacity->Set(
        static_cast<double>(arena.attempt_capacity));
    metrics_->Collect(sim_.Now(), window_scratch_);
  });
}

ServiceId Application::FindService(const std::string& name) const {
  if (finalized_) {
    const auto it = service_index_.find(name);
    return it != service_index_.end() ? it->second : kNoService;
  }
  for (const auto& svc : services_) {
    if (svc->name() == name) return svc->id();
  }
  return kNoService;
}

ApiId Application::FindApi(const std::string& name) const {
  if (finalized_) {
    const auto it = api_index_.find(name);
    return it != api_index_.end() ? it->second : kNoApi;
  }
  for (std::size_t i = 0; i < apis_.size(); ++i) {
    if (apis_[i].name() == name) return static_cast<ApiId>(i);
  }
  return kNoApi;
}

Application::ArenaStats Application::Arena() const {
  return ArenaStats{request_pool_.live(), request_pool_.capacity(),
                    attempt_pool_.live(), attempt_pool_.capacity()};
}

void Application::Submit(ApiId api, DoneFn on_done) {
  Submit(api, SubmitOptions{}, std::move(on_done));
}

void Application::Submit(ApiId api, const SubmitOptions& options, DoneFn on_done) {
  assert(finalized_ && "Finalize() before submitting traffic");
  metrics_->OnOffered(api);
  if (observer_ != nullptr) observer_->OnOffered(api, sim_.Now());
  if (entry_ != nullptr && !entry_->Admit(api, sim_.Now())) {
    metrics_->OnRejectedEntry(api);
    if (observer_ != nullptr) observer_->OnEntryRejected(api, sim_.Now());
    if (on_done) on_done(Outcome::kRejectedEntry, 0);
    return;
  }
  metrics_->OnAdmitted(api);

  RequestRec* req = request_pool_.Alloc();
  req->info.id = next_request_id_++;
  req->info.api = api;
  req->info.business_priority = apis_[api].business_priority();
  // A pinned user priority consumes no randomness, so pools that pin it
  // draw exactly the same gateway stream as before for unpinned traffic.
  req->info.user_priority = options.user_priority >= 0
                                ? options.user_priority
                                : static_cast<int>(rng_.UniformInt(0, 127));
  req->start = sim_.Now();
  const auto& spec = apis_[api];
  const std::size_t path_index = spec.SamplePath(rng_.NextDouble());
  req->path = &spec.paths()[path_index];
  req->path_index = static_cast<std::uint32_t>(path_index);
  req->on_done = std::move(on_done);
  req->finalized = false;
  req->remote_origin = -1;
  req->remote_proxy = nullptr;
  req->remote_proxy_gen = 0;
  ++inflight_;
  if (observer_ != nullptr) observer_->OnAdmitted(req->info.id, api, sim_.Now());

  StartAttempt(req, &req->path->root, /*attempt=*/0, ContRef{});
}

void Application::StartAttempt(RequestRec* req, const CallNode* node, int attempt,
                               ContRef cont) {
  if (IsRemote(node->service)) {
    // Retries of a cross-shard hop happen on the owner shard (it runs the
    // whole subtree with its own retry budget), so a remote route is only
    // ever taken for the first attempt.
    assert(attempt == 0);
    (void)attempt;
    StartRemoteAttempt(req, node, cont);
    return;
  }
  Service& svc = *services_[node->service];
  ++hop_attempts_;
  AttemptRec* a = attempt_pool_.Alloc();
  a->req = req;
  a->node = node;
  a->attempt = attempt;
  a->cont = cont;
  a->pending = 1;  // the attempt logic itself
  a->settled = false;
  a->timed_out = false;
  a->traced = observer_ != nullptr && observer_->Tracing(req->info.id);
  a->held = Service::HeldDispatch{};
  a->hop_start = sim_.Now();
  a->hop_service_time = 0;
  a->timeout = des::Simulation::TimerHandle{};
  a->next_child = 0;
  a->join_remaining = 0;
  a->join_all_ok = true;

  // Synchronous-RPC services hold their worker slot while the request's
  // downstream subtree runs; the slot is released when the subtree
  // resolves (success or failure). A fresh handle per attempt: a retried
  // hop lands on a (possibly) different pod.
  const bool blocking = svc.config().blocking_rpc && !node->children.empty();
  const std::uint32_t gen = a->gen;
  // The service-time slot is written unconditionally (a dead store when the
  // request is untraced) so the dispatch call — and thus the RNG stream —
  // is identical with and without tracing.
  bool callback_retained = false;
  const bool dispatched =
      blocking ? svc.DispatchHeld(req->info, node->work,
                                  [this, a, gen](bool ok) { OnLocalDone(a, gen, ok); },
                                  &a->held, &a->hop_service_time, &callback_retained)
               : svc.Dispatch(req->info, node->work,
                              [this, a, gen](bool ok) { OnLocalDone(a, gen, ok); },
                              &a->hop_service_time, &callback_retained);
  if (!dispatched) {
    if (a->traced) observer_->OnHopShed(req->info.id, node->service, sim_.Now());
    FailAttempt(a);  // consumes the logic reference
    return;
  }
  if (callback_retained) ++a->pending;
  if (config_.hop_timeout > 0) {
    // Scheduled identically whether or not the request is traced — the
    // event sequence (and thus every tie-break) must not depend on
    // observation. Cancelled when the hop settles first.
    ++a->pending;
    a->timeout = sim_.ScheduleAfter(config_.hop_timeout,
                                    [this, a, gen]() { OnHopTimeout(a, gen); });
  }
}

void Application::OnLocalDone(AttemptRec* a, std::uint32_t gen, bool ok) {
  // The dispatch-callback reference pins the record, so the generation can
  // only match; the check documents (and guards, in debug builds) the
  // lifetime contract.
  assert(a->gen == gen);
  (void)gen;
  if (a->settled) {
    // The hop timed out earlier; the server just finished the wasted
    // work. A blocking attempt's slot is freed here (nobody else will);
    // non-blocking pods free their own slot.
    Service::ReleaseHeld(a->held);
    ReleaseAttempt(a);
    return;
  }
  a->settled = true;
  if (a->timeout.valid()) {
    if (sim_.Cancel(a->timeout)) ReleaseAttempt(a);  // timer reference gone
    a->timeout = des::Simulation::TimerHandle{};
  }
  if (a->traced) {
    observer_->OnHopDone(a->req->info.id, a->node->service, a->hop_start,
                         sim_.Now(), a->hop_service_time, ok);
  }
  if (!ok) {
    // Pod died mid-service: no slot is held (the hold handle never
    // activated), so fail/retry directly.
    FailAttempt(a);
  } else {
    AfterLocalSuccess(a);
  }
  ReleaseAttempt(a);  // the dispatch-callback reference
}

void Application::OnHopTimeout(AttemptRec* a, std::uint32_t gen) {
  assert(a->gen == gen);  // the timer reference pins the record
  (void)gen;
  if (!a->settled) {
    a->settled = true;
    a->timed_out = true;
    a->timeout = des::Simulation::TimerHandle{};
    ++hop_timeouts_;
    if (a->traced) {
      observer_->OnHopDone(a->req->info.id, a->node->service, a->hop_start,
                           sim_.Now(), a->hop_service_time, /*ok=*/false);
    }
    FailAttempt(a);  // consumes the logic reference
  }
  ReleaseAttempt(a);  // the timer reference
}

void Application::FailAttempt(AttemptRec* a) {
  if (a->attempt < config_.max_retries) {
    ++retries_;
    RequestRec* req = a->req;
    const CallNode* node = a->node;
    const int next_attempt = a->attempt + 1;
    const ContRef cont = a->cont;
    if (config_.retry_backoff > 0) {
      // A pending retry keeps the subtree unresolved, which pins the
      // request and the continuation parent until the retry runs.
      const std::uint32_t req_gen = req->gen;
      sim_.ScheduleAfter(config_.retry_backoff,
                         [this, req, req_gen, node, next_attempt, cont]() {
                           assert(req->gen == req_gen);
                           (void)req_gen;
                           StartAttempt(req, node, next_attempt, cont);
                         });
      ReleaseAttempt(a);
    } else {
      ReleaseAttempt(a);
      StartAttempt(req, node, next_attempt, cont);
    }
  } else {
    ResolveSubtree(a, false);
  }
}

void Application::AfterLocalSuccess(AttemptRec* a) {
  const CallNode* node = a->node;
  if (node->children.empty()) {
    ResolveSubtree(a, true);
    return;
  }
  if (node->parallel) {
    // Fan out all children; join when every branch resolves. Failed
    // branches do not cancel their siblings (their work is wasted),
    // matching real partially-constructed responses.
    a->join_remaining = static_cast<int>(node->children.size());
    a->join_all_ok = true;
    const std::uint32_t gen = a->gen;
    for (const auto& child : node->children) {
      StartAttempt(a->req, &child, /*attempt=*/0,
                   ContRef{ContRef::Kind::kJoin, a, gen});
    }
  } else {
    a->next_child = 0;
    RunNextChild(a);
  }
}

void Application::RunNextChild(AttemptRec* a) {
  const auto& children = a->node->children;
  if (a->next_child >= children.size()) {
    ResolveSubtree(a, true);
    return;
  }
  StartAttempt(a->req, &children[a->next_child], /*attempt=*/0,
               ContRef{ContRef::Kind::kSeq, a, a->gen});
}

void Application::ResolveSubtree(AttemptRec* a, bool ok) {
  // A timed-out attempt must keep its held slot: the server is still
  // working and the late completion handler is the one that frees it.
  if (!a->timed_out) Service::ReleaseHeld(a->held);
  const ContRef cont = a->cont;
  RequestRec* req = a->req;
  switch (cont.kind) {
    case ContRef::Kind::kRoot:
      if (req->remote_origin >= 0) {
        FinalizeRemoteSubtree(req, ok);
      } else {
        FinalizeRequest(req, ok);
      }
      break;
    case ContRef::Kind::kSeq: {
      AttemptRec* p = cont.parent;
      assert(p->gen == cont.parent_gen);
      if (!ok) {
        ResolveSubtree(p, false);
      } else {
        ++p->next_child;
        RunNextChild(p);
      }
      break;
    }
    case ContRef::Kind::kJoin: {
      AttemptRec* p = cont.parent;
      assert(p->gen == cont.parent_gen);
      if (!ok) p->join_all_ok = false;
      if (--p->join_remaining == 0) ResolveSubtree(p, p->join_all_ok);
      break;
    }
  }
  ReleaseAttempt(a);  // the logic reference
}

void Application::FinalizeRequest(RequestRec* req, bool ok) {
  if (req->finalized) return;
  req->finalized = true;
  --inflight_;
  const SimTime latency = sim_.Now() - req->start;
  const ApiId api = req->info.api;
  if (observer_ != nullptr && observer_->Tracing(req->info.id)) {
    observer_->OnRequestDone(req->info.id, req->info.api, req->start, sim_.Now(),
                             ok ? Outcome::kCompleted : Outcome::kRejectedService,
                             ok && latency <= config_.slo);
  }
  // Recycle the record before running the user callback: on_done may
  // Submit re-entrantly and is welcome to reuse this slot.
  DoneFn done = std::move(req->on_done);
  req->on_done = nullptr;
  ++req->gen;
  request_pool_.Free(req);
  if (ok) {
    metrics_->OnCompleted(api, latency);
    if (done) done(Outcome::kCompleted, latency);
  } else {
    metrics_->OnRejectedService(api);
    if (done) done(Outcome::kRejectedService, latency);
  }
}

void Application::StartRemoteAttempt(RequestRec* req, const CallNode* node,
                                     ContRef cont) {
  assert(shard_.net != nullptr && shard_.peers != nullptr);
  const int owner =
      (*shard_.service_owner)[static_cast<std::size_t>(node->service)];
  Application* remote = (*shard_.peers)[static_cast<std::size_t>(owner)];
  // The proxy holds the caller's place in the call tree: it owns no
  // dispatch, no timeout, no worker slot — just the logic reference that
  // the response message resolves. Failure handling (retries, hop
  // timeouts) is entirely the owner shard's business.
  AttemptRec* a = attempt_pool_.Alloc();
  a->req = req;
  a->node = node;
  a->attempt = 0;
  a->cont = cont;
  a->pending = 1;  // resolved by OnRemoteResponse
  a->settled = false;
  a->timed_out = false;
  a->traced = false;
  a->held = Service::HeldDispatch{};
  a->hop_start = sim_.Now();
  a->hop_service_time = 0;
  a->timeout = des::Simulation::TimerHandle{};
  a->next_child = 0;
  a->join_remaining = 0;
  a->join_all_ok = true;
  ++remote_calls_out_;

  const RequestInfo info = req->info;
  const std::uint32_t path_index = req->path_index;
  const int node_index = node->node_index;
  assert(node_index >= 0 && "call graph not finalized");
  const int origin = shard_.shard;
  const std::uint32_t proxy_gen = a->gen;
  shard_.net->Post(
      origin, owner, sim_.Now() + shard_.net_latency,
      [remote, info, path_index, node_index, origin, a, proxy_gen]() {
        remote->BeginRemoteSubtree(info, path_index, node_index, origin, a,
                                   proxy_gen);
      });
}

void Application::BeginRemoteSubtree(const RequestInfo& info,
                                     std::uint32_t path_index, int node_index,
                                     int origin_shard, AttemptRec* proxy,
                                     std::uint32_t proxy_gen) {
  ++remote_calls_in_;
  const ApiSpec& spec = apis_[info.api];
  const CallNode* node = spec.Node(path_index, node_index);
  assert(!IsRemote(node->service) && "remote subtree routed to a non-owner");
  // A lightweight request record anchors the subtree: it carries the
  // request identity (priorities drive per-service admission) but touches
  // neither API metrics nor the inflight gauge — those belong to the
  // origin shard.
  RequestRec* req = request_pool_.Alloc();
  req->info = info;
  req->start = sim_.Now();
  req->path = &spec.paths()[path_index];
  req->path_index = path_index;
  req->on_done = nullptr;
  req->finalized = false;
  req->remote_origin = origin_shard;
  req->remote_proxy = proxy;
  req->remote_proxy_gen = proxy_gen;
  StartAttempt(req, node, /*attempt=*/0, ContRef{});
}

void Application::FinalizeRemoteSubtree(RequestRec* req, bool ok) {
  if (req->finalized) return;
  req->finalized = true;
  const int origin = req->remote_origin;
  AttemptRec* proxy = req->remote_proxy;
  const std::uint32_t proxy_gen = req->remote_proxy_gen;
  ++req->gen;
  request_pool_.Free(req);
  Application* origin_app = (*shard_.peers)[static_cast<std::size_t>(origin)];
  shard_.net->Post(shard_.shard, origin, sim_.Now() + shard_.net_latency,
                   [origin_app, proxy, proxy_gen, ok]() {
                     origin_app->OnRemoteResponse(proxy, proxy_gen, ok);
                   });
}

void Application::OnRemoteResponse(AttemptRec* proxy, std::uint32_t proxy_gen,
                                   bool ok) {
  // The proxy's logic reference is held until this response, so the record
  // cannot have been recycled.
  assert(proxy->gen == proxy_gen);
  (void)proxy_gen;
  ResolveSubtree(proxy, ok);  // consumes the logic reference
}

void Application::ReleaseAttempt(AttemptRec* a) {
  assert(a->pending > 0);
  if (--a->pending == 0) {
    ++a->gen;  // invalidate any stale pointer into this record
    attempt_pool_.Free(a);
  }
}

}  // namespace topfull::sim

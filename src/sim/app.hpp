// Application: a complete simulated microservice deployment.
//
// Owns the event engine, the services, the API registry, the entry gateway
// and the metrics collector, and implements the request lifecycle: entry
// admission -> call-tree execution across services -> completion/failure
// accounting. A rejection at any service fails the whole request while the
// work already done upstream stays spent — the waste/starvation mechanism
// of Fig. 1.
//
// The request engine runs on pooled records instead of shared_ptr-chained
// closures: one RequestRec per admitted request and one AttemptRec per hop
// attempt, both slab-allocated and recycled, with generation counters
// guarding every callback that might outlive its attempt. Hop timeouts are
// cancellable timers that are withdrawn when the hop settles, so the
// steady-state per-hop path performs zero heap allocations.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/object_pool.hpp"
#include "common/rng.hpp"
#include "des/simulation.hpp"
#include "obs/metrics_registry.hpp"
#include "sim/call_graph.hpp"
#include "sim/metrics.hpp"
#include "sim/request_observer.hpp"
#include "sim/service.hpp"
#include "sim/types.hpp"

namespace topfull::des {
class ShardedSimulation;
}

namespace topfull::sim {

class Application;

/// Wires one Application replica into a sharded run (see DESIGN.md §11).
/// Every shard holds a structurally identical replica of the whole app
/// (same topology, same seeds, so ids and RNG forks line up); the binding
/// tells a replica which services it owns. A hop whose service is owned
/// elsewhere is forwarded as a timestamped message and executed on the
/// owner's replica; only the owner ever draws from a service's RNG or
/// touches its pods, so replicas never double-count.
struct ShardBinding {
  int shard = 0;
  int num_shards = 1;
  /// One-way cross-shard RPC network latency, charged per direction. Must
  /// be >= the ShardedSimulation lookahead (normally equal: the lookahead
  /// is derived as the minimum cross-shard latency).
  SimTime net_latency = 0;
  /// ServiceId -> owning shard. Not owned; must outlive the Application.
  const std::vector<int>* service_owner = nullptr;
  des::ShardedSimulation* net = nullptr;  ///< not owned
  /// Shard index -> replica. Not owned; must outlive the Application.
  const std::vector<Application*>* peers = nullptr;
};

/// Application-wide knobs.
struct AppConfig {
  /// End-to-end latency SLO; completions beyond it do not count as goodput.
  SimTime slo = Seconds(1);
  /// Metrics collection window (the paper observes at 1 s granularity).
  SimTime metrics_period = Seconds(1);
  /// Per-hop RPC timeout; 0 disables (a hop waits forever — required to be
  /// > 0 for blackhole faults to resolve). The timed-out job keeps running
  /// on its server: the partial work stays spent.
  SimTime hop_timeout = 0;
  /// Bounded retries per hop after a shed, error, or timeout. Each retry
  /// re-picks a pod and re-samples the service time (retry amplification).
  int max_retries = 0;
  /// Delay before each retry attempt.
  SimTime retry_backoff = 0;
};

/// Optional per-request attribution supplied by the traffic source.
struct SubmitOptions {
  /// DAGOR-style user priority in [0, 127]. Negative keeps the legacy
  /// behaviour of sampling a fresh priority per request at the gateway; a
  /// non-negative value pins it, which is what gives a closed-loop *user*
  /// a stable identity across all of their requests (multi-tenant
  /// fairness scenarios depend on this).
  int user_priority = -1;
};

class Application {
 public:
  /// Completion callback: outcome and end-to-end latency (0 on rejection).
  using DoneFn = std::function<void(Outcome, SimTime)>;

  Application(std::string name, std::uint64_t seed, AppConfig config = {});
  ~Application();

  // --- Topology construction ----------------------------------------------

  /// Registers a microservice; returns its id.
  ServiceId AddService(ServiceConfig config);

  /// Registers an external API; returns its id. `spec` may be unfinalised;
  /// Finalize() completes it.
  ApiId AddApi(ApiSpec spec);

  /// Must be called once after all services/APIs are added. Starts the
  /// metrics collection loop (which therefore ticks before any controller
  /// loop registered afterwards — controllers see fresh windows) and
  /// builds the name -> id lookup indices.
  void Finalize();

  // --- Entry point ---------------------------------------------------------

  /// Installs the entry admission hook (TopFull's rate limiter). Not owned.
  void SetEntryAdmission(EntryAdmission* admission) { entry_ = admission; }

  /// Installs a request-lifecycle observer (span tracing). Not owned; must
  /// outlive the simulation run. Strictly pass-through: results are
  /// identical with or without an observer.
  void SetObserver(RequestObserver* observer) { observer_ = observer; }
  RequestObserver* observer() const { return observer_; }

  /// Submits one client request for `api` at the current sim time.
  void Submit(ApiId api, DoneFn on_done = {});
  /// Submit with explicit attribution (stable user priority, ...).
  void Submit(ApiId api, const SubmitOptions& options, DoneFn on_done = {});

  // --- Access ---------------------------------------------------------------

  des::Simulation& sim() { return sim_; }
  const des::Simulation& sim() const { return sim_; }
  MetricsCollector& metrics() { return *metrics_; }
  const MetricsCollector& metrics() const { return *metrics_; }

  /// The live streaming-metrics registry. Populated by Finalize() with the
  /// request/service families (updated in-line as the DES advances);
  /// controllers and fault injectors add their own families. One registry
  /// per Application — never shared across parallel runs.
  obs::MetricsRegistry& metrics_registry() { return registry_; }
  const obs::MetricsRegistry& metrics_registry() const { return registry_; }

  Service& service(ServiceId id) { return *services_[id]; }
  const Service& service(ServiceId id) const { return *services_[id]; }
  int NumServices() const { return static_cast<int>(services_.size()); }

  const ApiSpec& api(ApiId id) const { return apis_[id]; }
  ApiSpec& mutable_api(ApiId id) { return apis_[id]; }
  int NumApis() const { return static_cast<int>(apis_.size()); }

  /// Looks up a service by name; returns kNoService when absent. O(1)
  /// after Finalize() (hash index), linear scan before.
  ServiceId FindService(const std::string& name) const;
  /// Looks up an API by name; returns kNoApi when absent. O(1) after
  /// Finalize().
  ApiId FindApi(const std::string& name) const;

  const std::string& name() const { return name_; }
  const AppConfig& config() const { return config_; }
  Rng& rng() { return rng_; }

  /// Runs the simulation for `duration` from the current clock.
  void RunFor(SimTime duration) { sim_.RunUntil(sim_.Now() + duration); }
  void RunUntil(SimTime t) { sim_.RunUntil(t); }

  /// In-flight request count (admitted, not yet finalised).
  int Inflight() const { return inflight_; }

  /// Reconfigures the per-hop timeout/retry policy (callable any time; new
  /// dispatches pick it up immediately). Convenience for benches/CLI so app
  /// factories need not thread the knobs through.
  void ConfigureRpc(SimTime hop_timeout, int max_retries, SimTime retry_backoff) {
    config_.hop_timeout = hop_timeout;
    config_.max_retries = max_retries < 0 ? 0 : max_retries;
    config_.retry_backoff = retry_backoff;
  }

  /// Cumulative hop timeouts fired / retry attempts dispatched.
  std::uint64_t HopTimeouts() const { return hop_timeouts_; }
  std::uint64_t Retries() const { return retries_; }

  /// Cumulative local hop attempts dispatched (first attempts + retries,
  /// including attempts shed at dispatch). HopAttempts() - Retries() is the
  /// number of first attempts, so the per-hop retry amplification factor is
  /// HopAttempts() / (HopAttempts() - Retries()). Cross-shard proxy hops
  /// count on the owning shard only (where the real dispatch happens).
  std::uint64_t HopAttempts() const { return hop_attempts_; }

  // --- Sharding -------------------------------------------------------------

  /// Installs the shard binding. Call after Finalize(), before traffic.
  void BindShard(const ShardBinding& binding) { shard_ = binding; }
  const ShardBinding& shard_binding() const { return shard_; }

  /// Cross-shard hops forwarded from this replica / subtrees executed here
  /// on behalf of another shard.
  std::uint64_t RemoteCallsOut() const { return remote_calls_out_; }
  std::uint64_t RemoteCallsIn() const { return remote_calls_in_; }

  /// Request-engine arena usage (benches/tests): live records and pool
  /// high-water capacity. Steady-state capacity growth means the hot path
  /// is allocating — the tab_event_throughput bench watches this.
  struct ArenaStats {
    std::size_t live_requests = 0;
    std::size_t request_capacity = 0;
    std::size_t live_attempts = 0;
    std::size_t attempt_capacity = 0;
  };
  ArenaStats Arena() const;

 private:
  struct RequestRec;
  struct AttemptRec;

  /// Where an attempt's subtree result is delivered: the owning request
  /// (root of the call tree), a sequential parent (advance to the next
  /// child), or a parallel parent (join). Parent access is generation-
  /// checked; the parent record is pinned until its subtree resolves, so
  /// the check is an assertion rather than a branch.
  struct ContRef {
    enum class Kind : std::uint8_t { kRoot, kSeq, kJoin };
    Kind kind = Kind::kRoot;
    AttemptRec* parent = nullptr;
    std::uint32_t parent_gen = 0;
  };

  void StartAttempt(RequestRec* req, const CallNode* node, int attempt,
                    ContRef cont);
  /// True when `service` lives on another shard's replica.
  bool IsRemote(ServiceId service) const {
    return shard_.service_owner != nullptr &&
           (*shard_.service_owner)[static_cast<std::size_t>(service)] !=
               shard_.shard;
  }
  /// Forwards a hop to the owning shard: allocates a proxy attempt that
  /// waits for the response message, ships (api, path, node) by index.
  void StartRemoteAttempt(RequestRec* req, const CallNode* node, ContRef cont);
  /// Owner side: rebuilds the subtree request from indices and runs it
  /// locally (nested cross-shard hops compose).
  void BeginRemoteSubtree(const RequestInfo& info, std::uint32_t path_index,
                          int node_index, int origin_shard,
                          AttemptRec* proxy, std::uint32_t proxy_gen);
  /// Owner side: remote subtree resolved — reply to the origin shard.
  void FinalizeRemoteSubtree(RequestRec* req, bool ok);
  /// Origin side: response message arrived — settle the proxy attempt.
  void OnRemoteResponse(AttemptRec* proxy, std::uint32_t proxy_gen, bool ok);
  void OnLocalDone(AttemptRec* a, std::uint32_t gen, bool ok);
  void OnHopTimeout(AttemptRec* a, std::uint32_t gen);
  /// Shed/error/pod-death/timeout: bounded retry, else resolve(false).
  void FailAttempt(AttemptRec* a);
  /// Local service succeeded: run children (or resolve a leaf).
  void AfterLocalSuccess(AttemptRec* a);
  void RunNextChild(AttemptRec* a);
  /// The attempt's whole subtree is decided: release the held worker slot,
  /// deliver to the continuation, drop the logic reference.
  void ResolveSubtree(AttemptRec* a, bool ok);
  void FinalizeRequest(RequestRec* req, bool ok);
  /// Drops one reference; frees the record (bumping its generation) at 0.
  void ReleaseAttempt(AttemptRec* a);

  std::string name_;
  AppConfig config_;
  Rng rng_;
  des::Simulation sim_;
  std::vector<std::unique_ptr<Service>> services_;
  std::vector<ApiSpec> apis_;
  std::unique_ptr<MetricsCollector> metrics_;
  obs::MetricsRegistry registry_;
  /// Per-service live handles updated at every window close.
  struct ServiceMetricHandles {
    obs::Gauge* cpu = nullptr;
    obs::Gauge* pods = nullptr;
    obs::Gauge* outstanding = nullptr;
    obs::Gauge* capacity = nullptr;
    obs::Histogram* queue_delay_ms = nullptr;
  };
  std::vector<ServiceMetricHandles> service_handles_;
  obs::Gauge* sim_end_gauge_ = nullptr;
  /// Engine-state gauges (timer heap, cancellations, slab/arena occupancy)
  /// refreshed at every window close. All values are pure functions of
  /// simulation state, so they are deterministic and safe to include in
  /// the offline Prometheus dump.
  struct EngineMetricHandles {
    obs::Gauge* pending_events = nullptr;
    obs::Gauge* events_cancelled = nullptr;
    obs::Gauge* timer_slots = nullptr;
    obs::Gauge* timer_slots_free = nullptr;
    obs::Gauge* arena_requests_live = nullptr;
    obs::Gauge* arena_requests_capacity = nullptr;
    obs::Gauge* arena_attempts_live = nullptr;
    obs::Gauge* arena_attempts_capacity = nullptr;
  };
  EngineMetricHandles engine_handles_;
  EntryAdmission* entry_ = nullptr;
  RequestObserver* observer_ = nullptr;
  RequestId next_request_id_ = 1;
  int inflight_ = 0;
  bool finalized_ = false;
  std::uint64_t hop_timeouts_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t hop_attempts_ = 0;
  ShardBinding shard_{};
  std::uint64_t remote_calls_out_ = 0;
  std::uint64_t remote_calls_in_ = 0;
  SlabPool<RequestRec> request_pool_;
  SlabPool<AttemptRec> attempt_pool_;
  std::unordered_map<std::string, ServiceId> service_index_;  // built at Finalize
  std::unordered_map<std::string, ApiId> api_index_;
  /// Reused per metrics window; reallocating it every second was measurable.
  std::vector<ServiceWindow> window_scratch_;
};

}  // namespace topfull::sim

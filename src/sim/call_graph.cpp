#include "sim/call_graph.hpp"

#include <cassert>

namespace topfull::sim {

void CollectServices(const CallNode& node, std::set<ServiceId>& out) {
  if (node.service != kNoService) out.insert(node.service);
  for (const auto& child : node.children) CollectServices(child, out);
}

std::size_t CountNodes(const CallNode& node) {
  std::size_t n = node.service != kNoService ? 1 : 0;
  for (const auto& child : node.children) n += CountNodes(child);
  return n;
}

namespace {

void IndexPreorder(CallNode& node, std::vector<const CallNode*>& out) {
  node.node_index = static_cast<int>(out.size());
  out.push_back(&node);
  for (auto& child : node.children) IndexPreorder(child, out);
}

}  // namespace

void ApiSpec::Finalize() {
  assert(!paths_.empty() && "API must have at least one execution path");
  double total = 0.0;
  for (auto& p : paths_) total += p.probability;
  involved_.clear();
  path_nodes_.clear();
  path_nodes_.resize(paths_.size());
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    auto& p = paths_[i];
    p.probability = total > 0.0 ? p.probability / total
                                : 1.0 / static_cast<double>(paths_.size());
    p.services.clear();
    CollectServices(p.root, p.services);
    involved_.insert(p.services.begin(), p.services.end());
    IndexPreorder(p.root, path_nodes_[i]);
  }
}

const CallNode* ApiSpec::Node(std::size_t path_index, int node_index) const {
  assert(path_index < path_nodes_.size());
  const auto& nodes = path_nodes_[path_index];
  assert(node_index >= 0 && static_cast<std::size_t>(node_index) < nodes.size());
  return nodes[static_cast<std::size_t>(node_index)];
}

std::size_t ApiSpec::SamplePath(double u) const {
  double acc = 0.0;
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    acc += paths_[i].probability;
    if (u < acc) return i;
  }
  return paths_.size() - 1;
}

CallNode Chain(const std::vector<ServiceId>& services, double work) {
  assert(!services.empty());
  CallNode root{services.front(), work, false, {}};
  CallNode* tail = &root;
  for (std::size_t i = 1; i < services.size(); ++i) {
    tail->children.push_back(CallNode{services[i], work, false, {}});
    tail = &tail->children.back();
  }
  return root;
}

CallNode FanOut(ServiceId root, const std::vector<ServiceId>& children,
                double work) {
  CallNode node{root, work, true, {}};
  node.children.reserve(children.size());
  for (const ServiceId c : children) {
    node.children.push_back(CallNode{c, work, false, {}});
  }
  return node;
}

}  // namespace topfull::sim

// API call graphs: execution paths through microservices.
//
// Each external API owns one or more ExecutionPaths (branching APIs, §4.2,
// sample one path per request by probability). A path is a call tree whose
// nodes name the microservice invoked, the relative amount of work done
// there, and whether children fan out sequentially or in parallel. End-to-end
// latency is the sum over sequential stages and the max over parallel
// branches — the aggregation rule of the paper's simulator design (§4.3).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace topfull::sim {

/// One microservice invocation in a call tree.
struct CallNode {
  ServiceId service = kNoService;
  /// Multiplier on the service's base service-time (per-endpoint cost).
  double work = 1.0;
  /// If true, children are invoked concurrently after this node's local
  /// work; otherwise one after another.
  bool parallel = false;
  std::vector<CallNode> children;
  /// Preorder position within the path's call tree; assigned by
  /// ApiSpec::Finalize. Node pointers never cross shard boundaries — a
  /// node travels as (api, path_index, node_index) and is resolved on the
  /// receiving shard's identical ApiSpec.
  int node_index = -1;
};

/// A complete execution path (one possible call tree of an API).
struct ExecutionPath {
  CallNode root;
  /// Selection probability among the API's paths; normalised on Finalize.
  double probability = 1.0;
  /// All services appearing anywhere in this path (derived).
  std::set<ServiceId> services;
};

/// An external, user-facing API.
class ApiSpec {
 public:
  ApiSpec() = default;
  ApiSpec(std::string name, int business_priority)
      : name_(std::move(name)), business_priority_(business_priority) {}

  /// Adds one possible execution path.
  void AddPath(ExecutionPath path) { paths_.push_back(std::move(path)); }

  /// Normalises path probabilities and computes involved-service sets.
  /// Must be called once all paths are added.
  void Finalize();

  /// Samples a path index given a uniform [0,1) draw.
  std::size_t SamplePath(double u) const;

  /// Resolves a (path_index, node_index) pair assigned by Finalize back to
  /// the node. Used to rebuild cross-shard call-tree references.
  const CallNode* Node(std::size_t path_index, int node_index) const;

  const std::string& name() const { return name_; }
  int business_priority() const { return business_priority_; }
  void set_business_priority(int p) { business_priority_ = p; }
  const std::vector<ExecutionPath>& paths() const { return paths_; }

  /// Union of services over every possible path — the membership set used
  /// for clustering (branching APIs count as involved in all their paths).
  const std::set<ServiceId>& involved_services() const { return involved_; }

  /// True if any path traverses `s`.
  bool Uses(ServiceId s) const { return involved_.count(s) > 0; }

 private:
  std::string name_;
  int business_priority_ = 0;
  std::vector<ExecutionPath> paths_;
  std::set<ServiceId> involved_;
  /// Per path: preorder node pointers, indexed by CallNode::node_index.
  /// Pointers stay stable because paths_ is never resized after Finalize.
  std::vector<std::vector<const CallNode*>> path_nodes_;
};

/// Collects the services of a call (sub)tree into `out`.
void CollectServices(const CallNode& node, std::set<ServiceId>& out);

/// Counts nodes in a call tree.
std::size_t CountNodes(const CallNode& node);

/// Builders for common shapes.
/// Chain: root -> a -> b -> c (each node sequential child of the previous).
CallNode Chain(const std::vector<ServiceId>& services, double work = 1.0);
/// Fan-out: root calls all children in parallel.
CallNode FanOut(ServiceId root, const std::vector<ServiceId>& children,
                double work = 1.0);

}  // namespace topfull::sim

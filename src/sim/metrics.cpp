#include "sim/metrics.hpp"

#include <algorithm>
#include <cassert>

#include "common/stats.hpp"

namespace topfull::sim {

void MetricsCollector::Resize(int num_apis) {
  window_.assign(num_apis, ApiWindow{});
  window_lat_.assign(num_apis, {});
  totals_.assign(num_apis, ApiTotals{});
  empty_.apis.assign(num_apis, ApiWindow{});
}

void MetricsCollector::BindRegistry(std::vector<ApiMetricHandles> handles) {
  assert(handles.empty() || handles.size() == window_.size());
  registry_ = std::move(handles);
}

void MetricsCollector::OnOffered(ApiId api) {
  ++window_[api].offered;
  ++totals_[api].offered;
  if (!registry_.empty()) registry_[api].offered->Inc();
}

void MetricsCollector::OnRejectedEntry(ApiId api) {
  ++window_[api].rejected_entry;
  ++totals_[api].rejected_entry;
  if (!registry_.empty()) registry_[api].rejected_entry->Inc();
}

void MetricsCollector::OnAdmitted(ApiId api) {
  ++window_[api].admitted;
  ++totals_[api].admitted;
  if (!registry_.empty()) registry_[api].admitted->Inc();
}

void MetricsCollector::OnRejectedService(ApiId api) {
  ++window_[api].rejected_service;
  ++totals_[api].rejected_service;
  if (!registry_.empty()) registry_[api].rejected_service->Inc();
}

void MetricsCollector::OnCompleted(ApiId api, SimTime latency) {
  ++window_[api].completed;
  ++totals_[api].completed;
  const bool good = latency <= slo_;
  if (good) {
    ++window_[api].good;
    ++totals_[api].good;
  }
  const double latency_ms = ToMillis(latency);
  window_lat_[api].push_back(latency_ms);
  if (!registry_.empty()) {
    registry_[api].completed->Inc();
    if (good) registry_[api].good->Inc();
    registry_[api].latency_ms->Record(latency_ms);
  }
}

const Snapshot& MetricsCollector::Collect(SimTime now,
                                          const std::vector<ServiceWindow>& services) {
  Snapshot snap;
  snap.t_end_s = ToSeconds(now);
  snap.services = services;  // snapshot copy; the caller's buffer is reused
  snap.apis.reserve(window_.size());
  for (std::size_t i = 0; i < window_.size(); ++i) {
    ApiWindow w = window_[i];
    auto& lat = window_lat_[i];
    if (!lat.empty()) {
      // One in-place sort serves all three quantiles and the mean; the old
      // code copied and re-sorted the window once per Percentile call.
      std::sort(lat.begin(), lat.end());
      double sum = 0.0;
      for (const double v : lat) sum += v;
      w.latency_mean_ms = sum / static_cast<double>(lat.size());
      w.latency_p50_ms = PercentileSorted(lat, 50.0);
      w.latency_p95_ms = PercentileSorted(lat, 95.0);
      w.latency_p99_ms = PercentileSorted(lat, 99.0);
    }
    snap.apis.push_back(w);
    window_[i] = ApiWindow{};
    window_lat_[i].clear();
  }
  timeline_.push_back(std::move(snap));
  if (window_observer_ != nullptr) window_observer_->OnWindow(timeline_.back());
  return timeline_.back();
}

const Snapshot& MetricsCollector::Latest() const {
  return timeline_.empty() ? empty_ : timeline_.back();
}

double MetricsCollector::AvgGoodput(ApiId api, double from_s, double to_s) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& snap : timeline_) {
    if (snap.t_end_s <= from_s) continue;
    if (to_s >= 0.0 && snap.t_end_s > to_s) break;
    sum += static_cast<double>(snap.apis[api].good);
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double MetricsCollector::AvgTotalGoodput(double from_s, double to_s) const {
  double sum = 0.0;
  const int apis = static_cast<int>(window_.size());
  for (ApiId a = 0; a < apis; ++a) sum += AvgGoodput(a, from_s, to_s);
  return sum;
}

}  // namespace topfull::sim

// The distributed-tracing / metrics substrate (paper §5).
//
// The real system collects per-API traces via Istio and per-microservice
// resource utilisation via cAdvisor, at 1-second granularity. This collector
// exposes the same observable surface: for every 1 s window, per-API offered
// / admitted / completed / goodput counts and end-to-end latency percentiles,
// and per-service CPU utilisation and queueing delays. Windows are appended
// to a timeline that experiment harnesses read to print figures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_time.hpp"
#include "common/stats.hpp"
#include "obs/metrics_registry.hpp"
#include "sim/service.hpp"
#include "sim/types.hpp"

namespace topfull::sim {

/// Per-API counters and latency digest for one window. Counts are raw
/// per-window totals; with the default 1 s window they read as rates (rps).
struct ApiWindow {
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected_entry = 0;
  std::uint64_t rejected_service = 0;
  std::uint64_t completed = 0;
  std::uint64_t good = 0;  ///< completed within the SLO.
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_mean_ms = 0.0;
};

/// Per-service view for one window (from Service::CollectWindow).
struct ServiceWindow {
  double cpu_utilization = 0.0;
  double avg_queue_delay_s = 0.0;
  double max_queue_delay_s = 0.0;
  int running_pods = 0;
  int outstanding = 0;
};

/// One timeline entry: everything observed during [t_end - window, t_end).
struct Snapshot {
  double t_end_s = 0.0;
  std::vector<ApiWindow> apis;
  std::vector<ServiceWindow> services;
};

/// Whole-run totals per API.
struct ApiTotals {
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected_entry = 0;
  std::uint64_t rejected_service = 0;
  std::uint64_t completed = 0;
  std::uint64_t good = 0;
};

/// Receives every freshly closed metrics window, synchronously from
/// Collect (i.e. at the Snapshot boundary, before any controller tick of
/// the same second). Strictly pass-through: observers cannot influence the
/// simulation. obs::SloMonitor consumes the window stream this way.
class WindowObserver {
 public:
  virtual ~WindowObserver() = default;
  virtual void OnWindow(const Snapshot& snapshot) = 0;
};

/// Live registry handles for one API's hot-path updates (resolved once so
/// recording is a single pointer add; see obs::MetricsRegistry).
struct ApiMetricHandles {
  obs::Counter* offered = nullptr;
  obs::Counter* admitted = nullptr;
  obs::Counter* rejected_entry = nullptr;
  obs::Counter* rejected_service = nullptr;
  obs::Counter* completed = nullptr;
  obs::Counter* good = nullptr;
  obs::Histogram* latency_ms = nullptr;
};

class MetricsCollector {
 public:
  MetricsCollector(int num_apis, SimTime slo) : slo_(slo) { Resize(num_apis); }

  // --- Recording hooks (called by the request engine) ---------------------
  void OnOffered(ApiId api);
  void OnRejectedEntry(ApiId api);
  void OnAdmitted(ApiId api);
  void OnRejectedService(ApiId api);
  void OnCompleted(ApiId api, SimTime latency);

  /// Closes the current window: computes per-API digests, appends the
  /// snapshot (services stats passed in by the Application, copied — the
  /// caller keeps and reuses its buffer), resets window counters. Returns
  /// the new snapshot.
  const Snapshot& Collect(SimTime now, const std::vector<ServiceWindow>& services);

  /// Most recent snapshot; empty timeline yields an all-zero snapshot.
  const Snapshot& Latest() const;

  const std::vector<Snapshot>& Timeline() const { return timeline_; }
  const std::vector<ApiTotals>& Totals() const { return totals_; }
  SimTime slo() const { return slo_; }

  /// Average per-window goodput of `api` over timeline seconds
  /// [from_s, to_s). Negative `to_s` means "until the end".
  double AvgGoodput(ApiId api, double from_s = 0.0, double to_s = -1.0) const;

  /// Sum over all APIs of AvgGoodput.
  double AvgTotalGoodput(double from_s = 0.0, double to_s = -1.0) const;

  /// Mirrors every recording hook into live registry metrics (one handle
  /// set per API, in ApiId order). Empty vector unbinds.
  void BindRegistry(std::vector<ApiMetricHandles> handles);

  /// Installs the window-stream observer (not owned; must outlive the run).
  void SetWindowObserver(WindowObserver* observer) { window_observer_ = observer; }

  /// Currently installed window observer (may be null). Lets a new observer
  /// chain to the existing one instead of displacing it.
  WindowObserver* window_observer() const { return window_observer_; }

 private:
  void Resize(int num_apis);

  SimTime slo_;
  std::vector<ApiWindow> window_;                 // live counters
  std::vector<std::vector<double>> window_lat_;   // latencies (ms) per API
  std::vector<ApiTotals> totals_;
  std::vector<Snapshot> timeline_;
  std::vector<ApiMetricHandles> registry_;        // empty = not bound
  WindowObserver* window_observer_ = nullptr;
  Snapshot empty_;
};

}  // namespace topfull::sim

#include "sim/pod.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace topfull::sim {

Pod::Pod(des::Simulation* sim, int threads, int max_queue)
    : sim_(sim), threads_(threads), max_queue_(max_queue) {}

bool Pod::Enqueue(SimTime service_time, DoneFn done) {
  if (state_ != PodState::kRunning) return false;
  if (static_cast<int>(queue_.size()) >= max_queue_) return false;
  queue_.push_back(Job{service_time, sim_->Now(), std::move(done), nullptr});
  StartNext();
  return true;
}

bool Pod::EnqueueHeld(SimTime service_time, DoneFn done, HoldHandle* hold) {
  if (state_ != PodState::kRunning) return false;
  if (static_cast<int>(queue_.size()) >= max_queue_) return false;
  queue_.push_back(Job{service_time, sim_->Now(), std::move(done), hold});
  StartNext();
  return true;
}

void Pod::Release(const HoldHandle& hold) {
  if (!hold.active || hold.epoch != epoch_) return;  // pod died meanwhile
  --busy_;
  StartNext();
}

void Pod::Start() {
  if (state_ == PodState::kStarting) state_ = PodState::kRunning;
}

void Pod::SetOfflineThreads(int n) {
  offline_threads_ = std::clamp(n, 0, threads_ - 1);
  // When servers come back online, backfill them from the queue; when they
  // go offline, in-service jobs simply run to completion and are not
  // replaced until busy_ drops below the new effective count.
  StartNext();
}

void Pod::Kill() {
  state_ = PodState::kKilled;
  ++epoch_;  // orphan all in-flight completion events
  busy_ = 0;
  // Fail queued jobs. Move them out first: their callbacks may re-enter.
  std::vector<DoneFn> to_fail;
  to_fail.reserve(queue_.size());
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    to_fail.push_back(std::move(queue_.at(i).done));
  }
  queue_.clear();
  for (auto& done : to_fail) done(false);
}

SimTime Pod::HeadOfLineWait() const {
  if (queue_.empty()) return 0;
  return sim_->Now() - queue_.front().enqueued_at;
}

void Pod::StartNext() {
  while (busy_ < EffectiveThreads() && !queue_.empty()) {
    Job job = std::move(queue_.front());
    queue_.pop_front();
    ++busy_;
    const double qdelay = ToSeconds(sim_->Now() - job.enqueued_at);
    ++window_.started;
    window_.queue_delay_sum_s += qdelay;
    window_.queue_delay_max_s = std::max(window_.queue_delay_max_s, qdelay);
    const std::uint64_t epoch = epoch_;
    const SimTime service_time = job.service_time;
    HoldHandle* hold = job.hold;
    sim_->ScheduleAfter(service_time,
                        [this, epoch, service_time, hold,
                         done = std::move(job.done)]() mutable {
                          OnServiceDone(epoch, service_time, std::move(done), hold);
                        });
  }
}

void Pod::OnServiceDone(std::uint64_t epoch, SimTime service_time, DoneFn done,
                        HoldHandle* hold) {
  if (epoch != epoch_) {
    // The pod was killed while this job was in service; the job already
    // failed via Kill()'s sweep of queued jobs or is simply lost.
    done(false);
    return;
  }
  ++window_.completed;
  const double busy_s = ToSeconds(service_time);
  window_.busy_seconds += busy_s;
  total_busy_seconds_ += busy_s;
  if (hold != nullptr) {
    // Synchronous RPC: the worker stays blocked until Release().
    hold->epoch = epoch;
    hold->active = true;
  } else {
    --busy_;
    StartNext();
  }
  done(true);
}

PodWindowStats Pod::DrainWindowStats() {
  return std::exchange(window_, PodWindowStats{});
}

}  // namespace topfull::sim

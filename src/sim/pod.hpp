// A pod: one replica of a microservice, modelled as a c-server FIFO queue.
//
// Each pod has `threads` worker servers. An accepted job waits in FIFO order
// for a free server, occupies it for its sampled service time, then invokes
// its completion callback. Busy time is accounted per pod so the metric
// collector can compute CPU utilisation — the paper's overload signal.
//
// Pods are never destructed while the simulation runs (services keep them and
// mark state); in-flight completion events are invalidated by an epoch
// counter when the pod is killed.
//
// Completion callbacks are InlineFunctions (64 bytes of capture storage:
// the request engine captures {app, attempt record, generation}) and the
// job queue is a recycling ring buffer, so the enqueue → serve → complete
// cycle performs no heap allocations in steady state.
#pragma once

#include <cstdint>

#include "common/inline_function.hpp"
#include "common/ring_queue.hpp"
#include "common/sim_time.hpp"
#include "des/simulation.hpp"

namespace topfull::sim {

/// Pod lifecycle state.
enum class PodState : std::uint8_t {
  kStarting,  ///< Scheduled; becomes running after the startup delay.
  kRunning,   ///< Accepting and serving requests.
  kKilled,    ///< Crashed or scaled down; serves nothing.
};

/// Per-window counters drained by the metric collector.
struct PodWindowStats {
  double busy_seconds = 0.0;    ///< Server-busy time accrued in the window.
  std::uint64_t started = 0;    ///< Jobs that entered service.
  std::uint64_t completed = 0;  ///< Jobs that finished service.
  double queue_delay_sum_s = 0.0;  ///< Sum of queueing delays of started jobs.
  double queue_delay_max_s = 0.0;  ///< Max queueing delay of started jobs.
};

class Pod {
 public:
  using DoneFn = InlineFunction<void(bool ok), 48>;

  /// Token identifying a worker slot kept occupied past local service
  /// completion (synchronous-RPC mode: the thread blocks on downstream
  /// calls). Pass back to Release().
  struct HoldHandle {
    std::uint64_t epoch = 0;
    bool active = false;
  };

  Pod(des::Simulation* sim, int threads, int max_queue);

  /// Attempts to enqueue a job with the given service duration. Returns
  /// false (and does not take the callback) when the queue is full or the
  /// pod is not running. `done(true)` fires when service completes;
  /// `done(false)` fires if the pod dies first.
  bool Enqueue(SimTime service_time, DoneFn done);

  /// Like Enqueue, but the worker slot stays occupied after the local work
  /// finishes (a thread blocked on downstream RPCs) until Release() is
  /// called with the handle stored into `*hold` when `done(true)` fires.
  bool EnqueueHeld(SimTime service_time, DoneFn done, HoldHandle* hold);

  /// Frees a slot taken by EnqueueHeld. No-op if the pod died in between.
  void Release(const HoldHandle& hold);

  /// Marks the pod running (startup complete).
  void Start();

  /// Kills the pod: every queued and in-service job fails immediately.
  void Kill();

  /// Fault injection: takes `n` worker servers offline (capacity
  /// degradation — CPU throttling, noisy neighbours). Jobs already in
  /// service finish; new jobs only enter service while fewer than
  /// EffectiveThreads() servers are busy. Clamped to keep at least one
  /// server — full loss of capacity is a crash (Kill), not a degrade.
  void SetOfflineThreads(int n);

  PodState state() const { return state_; }
  bool running() const { return state_ == PodState::kRunning; }
  int threads() const { return threads_; }
  /// Servers currently allowed to serve (threads minus offline servers).
  int EffectiveThreads() const { return threads_ - offline_threads_; }
  int OfflineThreads() const { return offline_threads_; }

  /// Jobs waiting (not yet in service).
  int QueueLength() const { return static_cast<int>(queue_.size()); }
  /// Jobs currently in service.
  int InService() const { return busy_; }
  /// Waiting + in service; the load-balancing key.
  int Outstanding() const { return QueueLength() + busy_; }

  /// Age of the head-of-line job (0 when the queue is empty) — the
  /// instantaneous queueing-delay signal used by Breakwater-style AQM.
  SimTime HeadOfLineWait() const;

  /// Returns and resets the per-window counters.
  PodWindowStats DrainWindowStats();

  /// Cumulative busy seconds (for whole-run accounting).
  double TotalBusySeconds() const { return total_busy_seconds_; }

 private:
  struct Job {
    SimTime service_time = 0;
    SimTime enqueued_at = 0;
    DoneFn done;
    HoldHandle* hold = nullptr;  ///< non-null => keep the slot until Release
  };

  void StartNext();
  void OnServiceDone(std::uint64_t epoch, SimTime service_time, DoneFn done,
                     HoldHandle* hold);

  des::Simulation* sim_;
  int threads_;
  int max_queue_;
  int offline_threads_ = 0;
  PodState state_ = PodState::kStarting;
  int busy_ = 0;
  std::uint64_t epoch_ = 0;  ///< Bumped on Kill to invalidate in-flight events.
  RingQueue<Job> queue_;
  PodWindowStats window_;
  double total_busy_seconds_ = 0.0;
};

}  // namespace topfull::sim

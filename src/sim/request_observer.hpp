// Request-level tracing hooks of the simulator.
//
// The production system observes requests through Istio distributed tracing
// (paper §5); the simulator exposes the same signal as an optional observer
// interface the request engine calls at each lifecycle edge: entry admission
// verdict, per-service hop completion (with the queue-wait / service-time
// split), and end-to-end finalisation. Observation is strictly pass-through:
// hooks consume no randomness and schedule no events, so simulation results
// are bit-identical with an observer installed or not.
#pragma once

#include "common/sim_time.hpp"
#include "sim/types.hpp"

namespace topfull::sim {

/// Lifecycle observer consulted by Application when installed. All calls
/// happen on the simulation thread in deterministic event order.
class RequestObserver {
 public:
  virtual ~RequestObserver() = default;

  /// A client request arrived at the gateway (before the admission verdict).
  virtual void OnOffered(ApiId api, SimTime now) = 0;

  /// The entry rate limiter shed the request (no RequestId is assigned).
  virtual void OnEntryRejected(ApiId api, SimTime now) = 0;

  /// The request was admitted and assigned `id`. The observer decides here
  /// whether to trace the request's hops.
  virtual void OnAdmitted(RequestId id, ApiId api, SimTime now) = 0;

  /// Whether hop-level events should be reported for `id`. The engine skips
  /// span bookkeeping entirely for untraced requests.
  virtual bool Tracing(RequestId id) const = 0;

  /// A sub-request was shed at dispatch (queue full / no running pod /
  /// per-service admission denial).
  virtual void OnHopShed(RequestId id, ServiceId service, SimTime now) = 0;

  /// A sub-request finished local service at `service`. `start` is dispatch
  /// time, `end` local completion (or pod death when !ok), `service_time`
  /// the sampled service duration; queue wait is end - start - service_time.
  virtual void OnHopDone(RequestId id, ServiceId service, SimTime start,
                         SimTime end, SimTime service_time, bool ok) = 0;

  /// The request finalised. Only called for requests with Tracing(id) true.
  /// `slo_ok` mirrors the metrics collector's goodput accounting.
  virtual void OnRequestDone(RequestId id, ApiId api, SimTime start, SimTime end,
                             Outcome outcome, bool slo_ok) = 0;
};

}  // namespace topfull::sim

#include "sim/service.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace topfull::sim {

Service::Service(des::Simulation* sim, ServiceId id, ServiceConfig config, Rng rng)
    : sim_(sim), id_(id), config_(std::move(config)), rng_(rng) {
  assert(config_.mean_service_ms > 0.0);
  assert(config_.threads > 0);
  // Lognormal mu such that the mean equals mean_service_ms.
  log_mean_ = std::log(config_.mean_service_ms) -
              0.5 * config_.service_sigma * config_.service_sigma;
  SetPodCount(config_.initial_pods, /*startup_delay=*/0);
  if (config_.probe_failures_enabled) StartProbeLoop();
}

int Service::PickPod() {
  // Least-outstanding among running pods, round-robin tie-break.
  int best = -1;
  const int n = static_cast<int>(pods_.size());
  if (n == 0) return -1;
  for (int k = 0; k < n; ++k) {
    const int i = (rr_cursor_ + k) % n;
    Pod* pod = pods_[i].get();
    if (!pod->running()) continue;
    if (best < 0 || pod->Outstanding() < pods_[best]->Outstanding()) best = i;
  }
  ++rr_cursor_;
  return best;
}

bool Service::Dispatch(const RequestInfo& info, double work, DoneFn done,
                       SimTime* sampled_service_time, bool* callback_retained) {
  if (callback_retained != nullptr) *callback_retained = true;
  const int pod_index = PickPod();
  if (pod_index < 0) return false;
  Pod* pod = pods_[pod_index].get();
  if (admission_ != nullptr) {
    if (!admission_->Admit(info, id_, pod_index, sim_->Now())) return false;
  }
  if (blackholed_) {
    // The caller sees a successful send that never completes; its hop
    // timeout (if any) converts the silence into a failure. Dropping the
    // callback before the service-time draw keeps the workload RNG stream
    // aligned with the post-revert run.
    ++blackholed_dispatches_;
    if (callback_retained != nullptr) *callback_retained = false;
    return true;
  }
  if (error_rate_ > 0.0 && error_rng_.NextDouble() < error_rate_) {
    ++injected_errors_;  // transient 5xx: fails fast, retryable
    return false;
  }
  const double sigma = config_.service_sigma;
  double ms = sigma > 0.0 ? rng_.LogNormal(log_mean_ + std::log(work), sigma)
                          : config_.mean_service_ms * work;
  ms *= time_factor_;
  if (sampled_service_time != nullptr) *sampled_service_time = Millis(ms);
  return pod->Enqueue(Millis(ms), std::move(done));
}

bool Service::DispatchHeld(const RequestInfo& info, double work, DoneFn done,
                           HeldDispatch* held, SimTime* sampled_service_time,
                           bool* callback_retained) {
  if (callback_retained != nullptr) *callback_retained = true;
  const int pod_index = PickPod();
  if (pod_index < 0) return false;
  Pod* pod = pods_[pod_index].get();
  if (admission_ != nullptr) {
    if (!admission_->Admit(info, id_, pod_index, sim_->Now())) return false;
  }
  if (blackholed_) {
    // `held->pod` stays null, so a later ReleaseHeld is a no-op: no worker
    // slot was ever taken by a blackholed dispatch.
    ++blackholed_dispatches_;
    if (callback_retained != nullptr) *callback_retained = false;
    return true;
  }
  if (error_rate_ > 0.0 && error_rng_.NextDouble() < error_rate_) {
    ++injected_errors_;
    return false;
  }
  const double sigma = config_.service_sigma;
  double ms = sigma > 0.0 ? rng_.LogNormal(log_mean_ + std::log(work), sigma)
                          : config_.mean_service_ms * work;
  ms *= time_factor_;
  if (sampled_service_time != nullptr) *sampled_service_time = Millis(ms);
  held->pod = pod;
  return pod->EnqueueHeld(Millis(ms), std::move(done), &held->handle);
}

void Service::AddPod(SimTime startup_delay) {
  pods_.push_back(std::make_unique<Pod>(sim_, config_.threads, config_.max_queue));
  probe_strikes_.push_back(0);
  Pod* pod = pods_.back().get();
  // New pods land on the same (possibly degraded) machines as the rest of
  // the fleet, so they inherit the active capacity factor.
  const int offline = OfflineThreadsPerPod();
  if (offline > 0) pod->SetOfflineThreads(offline);
  if (startup_delay <= 0) {
    pod->Start();
  } else {
    sim_->ScheduleAfter(startup_delay, [pod]() { pod->Start(); });
  }
}

void Service::SetPodCount(int n, SimTime startup_delay) {
  n = std::max(0, n);
  desired_pods_ = n;
  // Count live pods (running or starting).
  int live = TotalPods();
  while (live < n) {
    AddPod(startup_delay);
    ++live;
  }
  if (live > n) {
    // Remove starting pods first, then running pods from the back.
    for (auto it = pods_.rbegin(); it != pods_.rend() && live > n; ++it) {
      if ((*it)->state() == PodState::kStarting) {
        (*it)->Kill();
        --live;
      }
    }
    for (auto it = pods_.rbegin(); it != pods_.rend() && live > n; ++it) {
      if ((*it)->running()) {
        (*it)->Kill();
        --live;
      }
    }
  }
}

int Service::KillPods(int n) {
  int killed = 0;
  for (auto& pod : pods_) {
    if (killed >= n) break;
    if (pod->running()) {
      pod->Kill();
      ++killed;
    }
  }
  return killed;
}

int Service::RestorePods(int n, SimTime startup_delay) {
  int added = 0;
  while (added < n && TotalPods() < desired_pods_) {
    AddPod(startup_delay);
    ++added;
  }
  return added;
}

int Service::OfflineThreadsPerPod() const {
  if (capacity_factor_ >= 1.0) return 0;
  const int effective = std::max(
      1, static_cast<int>(std::floor(static_cast<double>(config_.threads) *
                                         capacity_factor_ +
                                     1e-9)));
  return config_.threads - effective;
}

void Service::SetCapacityFactor(double factor) {
  capacity_factor_ = std::clamp(factor, 1e-6, 1.0);
  const int offline = OfflineThreadsPerPod();
  for (auto& pod : pods_) pod->SetOfflineThreads(offline);
}

void Service::SetServiceTimeFactor(double factor) {
  time_factor_ = std::max(0.01, factor);
}

void Service::SetErrorInjection(double rate, Rng rng) {
  error_rate_ = std::clamp(rate, 0.0, 1.0);
  error_rng_ = rng;
}

int Service::RunningPods() const {
  int n = 0;
  for (const auto& pod : pods_) n += pod->running() ? 1 : 0;
  return n;
}

int Service::TotalPods() const {
  int n = 0;
  for (const auto& pod : pods_) {
    n += (pod->state() == PodState::kRunning || pod->state() == PodState::kStarting) ? 1 : 0;
  }
  return n;
}

ServiceWindowStats Service::CollectWindow(SimTime window) {
  ServiceWindowStats out;
  double busy = 0.0;
  double qsum = 0.0;
  int available_threads = 0;
  for (auto& pod : pods_) {
    const PodWindowStats w = pod->DrainWindowStats();
    busy += w.busy_seconds;
    qsum += w.queue_delay_sum_s;
    out.max_queue_delay_s = std::max(out.max_queue_delay_s, w.queue_delay_max_s);
    out.started += w.started;
    out.completed += w.completed;
    if (pod->running()) {
      ++out.running_pods;
      out.total_outstanding += pod->Outstanding();
      available_threads += pod->EffectiveThreads();
    }
  }
  out.avg_queue_delay_s = out.started > 0 ? qsum / static_cast<double>(out.started) : 0.0;
  // Utilisation is measured against *effective* servers: a degraded pod
  // that saturates its remaining capacity reads 100 % busy, which is what
  // the HPA and the overload detector should see.
  const double denom = ToSeconds(window) * static_cast<double>(available_threads);
  if (denom > 0.0) {
    out.cpu_utilization = std::clamp(busy / denom, 0.0, 1.0);
  } else {
    out.cpu_utilization = (out.started > 0 || out.total_outstanding > 0) ? 1.0 : 0.0;
  }
  return out;
}

double Service::CapacityRps() const {
  int available_threads = 0;
  for (const auto& pod : pods_) {
    if (pod->running()) available_threads += pod->EffectiveThreads();
  }
  return static_cast<double>(available_threads) /
         (config_.mean_service_ms * time_factor_ / 1000.0);
}

void Service::SetProbeFailures(bool enabled) {
  config_.probe_failures_enabled = enabled;
  if (enabled) StartProbeLoop();
}

void Service::StartProbeLoop() {
  if (probe_loop_running_) return;
  probe_loop_running_ = true;
  sim_->SchedulePeriodic(config_.probe_period, config_.probe_period,
                         [this]() { RunProbe(); });
}

void Service::RunProbe() {
  if (!config_.probe_failures_enabled) return;
  for (std::size_t i = 0; i < pods_.size(); ++i) {
    Pod* pod = pods_[i].get();
    if (!pod->running()) continue;
    if (pod->QueueLength() > config_.probe_queue_threshold) {
      if (++probe_strikes_[i] >= config_.probe_failure_count) {
        pod->Kill();
        probe_strikes_[i] = 0;
        ++probe_kills_;
        // The deployment controller replaces the crashed pod after the
        // restart delay (if the service is still under its desired count).
        sim_->ScheduleAfter(config_.restart_delay, [this]() {
          if (TotalPods() < desired_pods_) {
            SetPodCount(desired_pods_, /*startup_delay=*/Seconds(1));
          }
        });
      }
    } else {
      probe_strikes_[i] = 0;
    }
  }
}

}  // namespace topfull::sim

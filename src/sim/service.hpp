// A microservice: a named pool of pods plus dispatch, scaling, and failure
// machinery.
//
// Capacity model: each running pod serves with `threads` parallel servers and
// a lognormal service time with mean `mean_service_ms` (scaled by the call
// node's work factor), i.e. one pod sustains threads / mean_service_time
// requests per second at 100 % CPU.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "des/simulation.hpp"
#include "sim/admission.hpp"
#include "sim/pod.hpp"
#include "sim/types.hpp"

namespace topfull::sim {

/// Static configuration of a microservice.
struct ServiceConfig {
  std::string name;
  /// Mean service time per request in milliseconds (before work scaling).
  double mean_service_ms = 10.0;
  /// Lognormal sigma of the service time (0 = deterministic).
  double service_sigma = 0.25;
  /// Worker servers per pod.
  int threads = 8;
  /// Per-pod queue capacity; arrivals beyond it are shed (503).
  int max_queue = 512;
  /// Initial replica count.
  int initial_pods = 1;
  /// vCPUs consumed by one pod (used by the cluster/autoscaler model).
  double vcpus_per_pod = 1.0;
  /// Synchronous (thread-per-request) RPC mode: the worker thread stays
  /// blocked while its request awaits downstream calls, so a slow
  /// downstream eats this service's concurrency — the classic cascade
  /// amplifier. Off by default (async RPC servers, like the paper's gRPC
  /// services with async handlers).
  bool blocking_rpc = false;
  /// Liveness-probe failure model (Fig. 15): when enabled, a pod whose
  /// queue stays above `probe_queue_threshold` for `probe_failure_count`
  /// consecutive probes is killed and restarted after `restart_delay`.
  bool probe_failures_enabled = false;
  SimTime probe_period = Seconds(5);
  int probe_queue_threshold = 400;
  int probe_failure_count = 3;
  SimTime restart_delay = Seconds(15);
};

/// Utilisation and queue snapshot for one collection window.
struct ServiceWindowStats {
  double cpu_utilization = 0.0;  ///< busy server time / available server time.
  double avg_queue_delay_s = 0.0;
  double max_queue_delay_s = 0.0;
  std::uint64_t started = 0;
  std::uint64_t completed = 0;
  int running_pods = 0;
  int total_outstanding = 0;  ///< queued + in-service jobs across pods.
};

class Service {
 public:
  using DoneFn = Pod::DoneFn;

  Service(des::Simulation* sim, ServiceId id, ServiceConfig config, Rng rng);

  /// Dispatches one sub-request doing `work`× the base service time.
  /// Returns false when shed (admission denied, queue full, or no running
  /// pod); `done` is only retained on success. When `sampled_service_time`
  /// is non-null, the sampled service duration is written to it on success
  /// (tracing observes the queue-wait/service-time split this way; the RNG
  /// draw is identical either way). A blackholed service returns true but
  /// drops the callback; `*callback_retained` (when non-null) tells the
  /// caller whether `done` will eventually fire — the request engine's
  /// attempt records count outstanding callback references and must not
  /// wait for one that was dropped.
  bool Dispatch(const RequestInfo& info, double work, DoneFn done,
                SimTime* sampled_service_time = nullptr,
                bool* callback_retained = nullptr);

  /// Worker-slot token for blocking-RPC dispatches; call ReleaseHeld once
  /// the request's downstream subtree has completed.
  struct HeldDispatch {
    Pod* pod = nullptr;
    Pod::HoldHandle handle;
  };

  /// Like Dispatch, but the worker slot stays occupied after local service
  /// completes until ReleaseHeld(*held). `held` must stay at a stable
  /// address until the attempt resolves (it lives in the request engine's
  /// pooled attempt record).
  bool DispatchHeld(const RequestInfo& info, double work, DoneFn done,
                    HeldDispatch* held, SimTime* sampled_service_time = nullptr,
                    bool* callback_retained = nullptr);

  static void ReleaseHeld(HeldDispatch& held) {
    if (held.pod != nullptr) held.pod->Release(held.handle);
    held.pod = nullptr;
  }

  /// Installs a per-service admission controller (baselines). Not owned.
  void SetAdmission(ServiceAdmission* admission) { admission_ = admission; }

  // --- Scaling -------------------------------------------------------------

  /// Scales to `n` pods. New pods become running after `startup_delay`;
  /// removed pods are killed immediately (their queued jobs fail).
  void SetPodCount(int n, SimTime startup_delay = 0);

  /// Kills `n` running pods (failure injection, Fig. 18). Returns the
  /// number actually killed.
  int KillPods(int n);

  /// Re-adds up to `n` pods toward the desired count without changing it
  /// (deployment controller replacing crashed pods one by one — the fault
  /// engine's staggered-restart path). Returns the number added.
  int RestorePods(int n, SimTime startup_delay = 0);

  // --- Fault injection (src/fault) -----------------------------------------
  //
  // All knobs below default to the identity and, while inactive, consume no
  // randomness and change no behaviour — the same no-perturbation contract
  // as the observers in src/obs.

  /// Caps per-pod parallelism to `factor` × threads (capacity degradation:
  /// CPU throttling, noisy neighbours). Applies to current and future pods;
  /// each pod keeps at least one effective server. factor is clamped to
  /// (0, 1].
  void SetCapacityFactor(double factor);
  double CapacityFactor() const { return capacity_factor_; }

  /// Multiplies every sampled service time by `factor` (>= 0.01). The
  /// underlying lognormal draw is unchanged, so reverting the fault
  /// restores the baseline sample stream exactly.
  void SetServiceTimeFactor(double factor);
  double ServiceTimeFactor() const { return time_factor_; }

  /// Blackholes the service: dispatches are accepted (the caller believes
  /// the RPC is in flight) but never complete. Callers need a hop timeout
  /// to make progress — exactly the dependency-failure mode the fault
  /// engine models. No RNG is consumed for blackholed dispatches.
  void SetBlackhole(bool on) { blackholed_ = on; }
  bool Blackholed() const { return blackholed_; }

  /// Transient error injection: each dispatch fails immediately with
  /// probability `rate`, drawn from `rng` — a fault-owned stream, never
  /// the workload RNG, so rate 0 keeps runs byte-identical.
  void SetErrorInjection(double rate, Rng rng);
  void ClearErrorInjection() { error_rate_ = 0.0; }
  double ErrorRate() const { return error_rate_; }

  std::uint64_t BlackholedDispatches() const { return blackholed_dispatches_; }
  std::uint64_t InjectedErrors() const { return injected_errors_; }

  int RunningPods() const;
  int DesiredPods() const { return desired_pods_; }
  /// Pods that exist in any live state (running or starting).
  int TotalPods() const;

  /// Direct pod access (baseline controllers read per-pod queue signals).
  /// Indices are stable: killed pods remain as tombstones.
  int PodCount() const { return static_cast<int>(pods_.size()); }
  Pod& pod(int index) { return *pods_[index]; }
  const Pod& pod(int index) const { return *pods_[index]; }

  // --- Metrics -------------------------------------------------------------

  /// Drains per-pod counters accumulated since the previous call and
  /// returns the aggregated window view. `window` is the elapsed time the
  /// counters cover.
  ServiceWindowStats CollectWindow(SimTime window);

  /// Estimated sustainable throughput in requests/second at work=1.
  double CapacityRps() const;

  const ServiceConfig& config() const { return config_; }
  ServiceId id() const { return id_; }
  const std::string& name() const { return config_.name; }

  /// Enables/disables the liveness-probe failure model at runtime.
  void SetProbeFailures(bool enabled);

  /// Total number of probe-triggered pod kills (for reporting).
  int ProbeKills() const { return probe_kills_; }

 private:
  /// Index of the least-loaded running pod, or -1 when none is running.
  int PickPod();
  /// Appends one pod (starting after `startup_delay`) with the current
  /// capacity factor applied.
  void AddPod(SimTime startup_delay);
  /// Offline servers per pod implied by the current capacity factor.
  int OfflineThreadsPerPod() const;
  void StartProbeLoop();
  void RunProbe();

  des::Simulation* sim_;
  ServiceId id_;
  ServiceConfig config_;
  Rng rng_;
  ServiceAdmission* admission_ = nullptr;
  std::vector<std::unique_ptr<Pod>> pods_;
  std::vector<int> probe_strikes_;  ///< consecutive failed probes per pod.
  int desired_pods_ = 0;
  int rr_cursor_ = 0;
  int probe_kills_ = 0;
  bool probe_loop_running_ = false;
  double log_mean_;  ///< precomputed lognormal mu for the base service time.

  // Fault-injection state (identity defaults = no behaviour change).
  double capacity_factor_ = 1.0;
  double time_factor_ = 1.0;
  bool blackholed_ = false;
  double error_rate_ = 0.0;
  Rng error_rng_;  ///< Only drawn from while error_rate_ > 0.
  std::uint64_t blackholed_dispatches_ = 0;
  std::uint64_t injected_errors_ = 0;
};

}  // namespace topfull::sim

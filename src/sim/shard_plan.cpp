#include "sim/shard_plan.hpp"

#include <cassert>

#include "common/partition.hpp"
#include "common/union_find.hpp"
#include "sim/app.hpp"

namespace topfull::sim {

namespace {

/// Expected event-rate proxy for one service: how many requests/second it
/// can absorb (pods * threads / mean service time). The true per-shard
/// event rate depends on offered load, but capacity tracks where load is
/// provisioned to go, and a static plan must not depend on the workload
/// (the same app + shard count must partition identically in every run).
double ServiceWeight(const Application& app, ServiceId s) {
  const auto& config = app.service(s).config();
  const double per_thread =
      config.mean_service_ms > 0 ? 1000.0 / config.mean_service_ms : 1.0;
  return static_cast<double>(config.initial_pods) *
         static_cast<double>(config.threads) * per_thread;
}

}  // namespace

ShardPlan BuildShardPlan(const Application& app,
                         const ShardPlanOptions& options) {
  const int num_services = app.NumServices();
  const int num_apis = app.NumApis();
  ShardPlan plan;
  plan.num_shards = options.num_shards < 1 ? 1 : options.num_shards;
  plan.net_latency = options.net_latency;
  plan.service_owner.assign(static_cast<std::size_t>(num_services), 0);
  plan.api_origin.assign(static_cast<std::size_t>(num_apis), 0);

  // Cluster decomposition: services co-appearing in any API's call graph
  // are merged (the same shared-microservice relation the paper clusters
  // overloaded APIs by; here over the static topology).
  UnionFind uf(num_services);
  for (ApiId a = 0; a < num_apis; ++a) {
    const auto& involved = app.api(a).involved_services();
    ServiceId first = kNoService;
    for (const ServiceId s : involved) {
      if (first == kNoService) {
        first = s;
      } else {
        uf.Union(first, s);
      }
    }
  }
  plan.service_cluster.assign(static_cast<std::size_t>(num_services), 0);
  std::vector<int> root_to_cluster(static_cast<std::size_t>(num_services), -1);
  int num_clusters = 0;
  for (ServiceId s = 0; s < num_services; ++s) {
    const int root = uf.Find(s);
    if (root_to_cluster[static_cast<std::size_t>(root)] < 0) {
      root_to_cluster[static_cast<std::size_t>(root)] = num_clusters++;
    }
    plan.service_cluster[static_cast<std::size_t>(s)] =
        root_to_cluster[static_cast<std::size_t>(root)];
  }
  plan.num_clusters = num_clusters;

  if (plan.num_shards > 1) {
    if (num_clusters >= plan.num_shards) {
      // Pure cluster packing: whole clusters onto shards, zero cross-shard
      // edges.
      std::vector<double> cluster_weight(static_cast<std::size_t>(num_clusters),
                                         0.0);
      for (ServiceId s = 0; s < num_services; ++s) {
        cluster_weight[static_cast<std::size_t>(
            plan.service_cluster[static_cast<std::size_t>(s)])] +=
            ServiceWeight(app, s);
      }
      const std::vector<int> cluster_shard =
          PackBinsLpt(cluster_weight, plan.num_shards);
      for (ServiceId s = 0; s < num_services; ++s) {
        plan.service_owner[static_cast<std::size_t>(s)] =
            cluster_shard[static_cast<std::size_t>(
                plan.service_cluster[static_cast<std::size_t>(s)])];
      }
    } else {
      // Fewer clusters than shards (hand-built apps are often one big
      // cluster): split at service granularity and pay for the cross-shard
      // edges with messages.
      std::vector<double> weights(static_cast<std::size_t>(num_services), 0.0);
      for (ServiceId s = 0; s < num_services; ++s) {
        weights[static_cast<std::size_t>(s)] = ServiceWeight(app, s);
      }
      plan.service_owner = PackBinsLpt(weights, plan.num_shards);
    }
  }

  // API origins + alignment check.
  plan.cluster_aligned = true;
  for (ApiId a = 0; a < num_apis; ++a) {
    const ApiSpec& spec = app.api(a);
    assert(!spec.paths().empty() && "BuildShardPlan needs a finalized app");
    const ServiceId root = spec.paths()[0].root.service;
    plan.api_origin[static_cast<std::size_t>(a)] = plan.OwnerOf(root);
    for (const ServiceId s : spec.involved_services()) {
      if (plan.OwnerOf(s) != plan.OriginOf(a)) plan.cluster_aligned = false;
    }
  }
  return plan;
}

}  // namespace topfull::sim

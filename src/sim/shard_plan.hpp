// Static shard partitioning of a service topology.
//
// TopFull's clustering insight (§6.4) — APIs sharing microservices form
// near-independent clusters — is exactly the decomposition a conservative
// parallel DES wants: services inside one cluster interact every hop,
// clusters interact never (by construction). BuildShardPlan reproduces the
// union-find cluster decomposition over the finalized app topology (the
// same computation core::ClusterTracker performs online on overloaded
// APIs, here applied statically to the full graph) and packs whole
// clusters onto shards with deterministic LPT. When the topology is one
// big cluster (hand-built demo apps), the plan falls back to splitting at
// service granularity: correctness is unaffected — cross-shard hops just
// become messages — only the cross-shard edge count grows.
#pragma once

#include <vector>

#include "common/sim_time.hpp"
#include "sim/types.hpp"

namespace topfull::sim {

class Application;

struct ShardPlanOptions {
  int num_shards = 1;
  /// One-way network latency charged to every cross-shard hop; doubles as
  /// the synchronization lookahead (it is the minimum — and only —
  /// cross-shard message latency).
  SimTime net_latency = Millis(1);
};

struct ShardPlan {
  int num_shards = 1;
  SimTime net_latency = Millis(1);
  /// ServiceId -> owning shard.
  std::vector<int> service_owner;
  /// ApiId -> shard where the API's requests enter (owner of path 0's
  /// root). Traffic generators and API metrics live there.
  std::vector<int> api_origin;
  /// ServiceId -> cluster index (union-find component over shared-API
  /// membership), before packing.
  std::vector<int> service_cluster;
  int num_clusters = 0;
  /// True when every API's involved-service set landed on one shard, i.e.
  /// the plan induces zero cross-shard hops (pure cluster packing).
  bool cluster_aligned = true;

  int OwnerOf(ServiceId s) const {
    return service_owner[static_cast<std::size_t>(s)];
  }
  int OriginOf(ApiId a) const {
    return api_origin[static_cast<std::size_t>(a)];
  }
};

/// Computes the shard plan for a finalized application. Deterministic:
/// depends only on the topology and `options`.
ShardPlan BuildShardPlan(const Application& app, const ShardPlanOptions& options);

}  // namespace topfull::sim

#include "sim/sharded_app.hpp"

#include <algorithm>
#include <cassert>

namespace topfull::sim {

ShardedApp::ShardedApp(const AppFactory& factory, Options options)
    : options_(options) {
  const int n = std::max(1, options_.shards);
  apps_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    apps_.push_back(factory());
    assert(apps_.back() != nullptr);
    assert(apps_.back()->NumApis() == apps_[0]->NumApis() &&
           apps_.back()->NumServices() == apps_[0]->NumServices() &&
           "app factory must be deterministic across replicas");
  }
  ShardPlanOptions plan_options;
  plan_options.num_shards = n;
  plan_options.net_latency = options_.net_latency;
  plan_ = BuildShardPlan(*apps_[0], plan_options);

  std::vector<des::Simulation*> sims;
  sims.reserve(apps_.size());
  for (auto& a : apps_) sims.push_back(&a->sim());
  des::ShardedSimulation::Options engine_options;
  engine_options.lookahead = options_.net_latency;
  engine_options.threaded = options_.threaded;
  engine_ = std::make_unique<des::ShardedSimulation>(std::move(sims),
                                                     engine_options);

  peers_.reserve(apps_.size());
  for (auto& a : apps_) peers_.push_back(a.get());
  if (n > 1) {
    for (int i = 0; i < n; ++i) {
      ShardBinding binding;
      binding.shard = i;
      binding.num_shards = n;
      binding.net_latency = options_.net_latency;
      binding.service_owner = &plan_.service_owner;
      binding.net = engine_.get();
      binding.peers = &peers_;
      apps_[static_cast<std::size_t>(i)]->BindShard(binding);
    }
  }
}

std::vector<Snapshot> ShardedApp::MergedTimeline() const {
  const auto& base = app(0).metrics().Timeline();
  std::size_t rows = base.size();
  for (int i = 1; i < num_shards(); ++i) {
    rows = std::min(rows, app(i).metrics().Timeline().size());
  }
  std::vector<Snapshot> merged;
  merged.reserve(rows);
  for (std::size_t row = 0; row < rows; ++row) {
    Snapshot snap;
    snap.t_end_s = base[row].t_end_s;
    snap.apis.reserve(base[row].apis.size());
    for (std::size_t a = 0; a < base[row].apis.size(); ++a) {
      const int origin = plan_.OriginOf(static_cast<ApiId>(a));
      snap.apis.push_back(app(origin).metrics().Timeline()[row].apis[a]);
    }
    snap.services.reserve(base[row].services.size());
    for (std::size_t s = 0; s < base[row].services.size(); ++s) {
      const int owner = plan_.OwnerOf(static_cast<ServiceId>(s));
      snap.services.push_back(app(owner).metrics().Timeline()[row].services[s]);
    }
    merged.push_back(std::move(snap));
  }
  return merged;
}

std::vector<ApiTotals> ShardedApp::MergedTotals() const {
  const int num_apis = app(0).NumApis();
  std::vector<ApiTotals> totals;
  totals.reserve(static_cast<std::size_t>(num_apis));
  for (ApiId a = 0; a < num_apis; ++a) {
    totals.push_back(
        app(plan_.OriginOf(a)).metrics().Totals()[static_cast<std::size_t>(a)]);
  }
  return totals;
}

double ShardedApp::MergedAvgTotalGoodput(double from_s, double to_s) const {
  double total = 0.0;
  for (ApiId a = 0; a < app(0).NumApis(); ++a) {
    total += app(plan_.OriginOf(a)).metrics().AvgGoodput(a, from_s, to_s);
  }
  return total;
}

std::uint64_t ShardedApp::HopTimeouts() const {
  std::uint64_t n = 0;
  for (const auto& a : apps_) n += a->HopTimeouts();
  return n;
}

std::uint64_t ShardedApp::Retries() const {
  std::uint64_t n = 0;
  for (const auto& a : apps_) n += a->Retries();
  return n;
}

std::uint64_t ShardedApp::RemoteCalls() const {
  std::uint64_t n = 0;
  for (const auto& a : apps_) n += a->RemoteCallsOut();
  return n;
}

int ShardedApp::Inflight() const {
  int n = 0;
  for (const auto& a : apps_) n += a->Inflight();
  return n;
}

}  // namespace topfull::sim

#include "sim/sharded_app.hpp"

#include <algorithm>
#include <cassert>

namespace topfull::sim {

ShardedApp::ShardedApp(const AppFactory& factory, Options options)
    : options_(options) {
  const int n = std::max(1, options_.shards);
  apps_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    apps_.push_back(factory());
    assert(apps_.back() != nullptr);
    assert(apps_.back()->NumApis() == apps_[0]->NumApis() &&
           apps_.back()->NumServices() == apps_[0]->NumServices() &&
           "app factory must be deterministic across replicas");
  }
  ShardPlanOptions plan_options;
  plan_options.num_shards = n;
  plan_options.net_latency = options_.net_latency;
  plan_ = BuildShardPlan(*apps_[0], plan_options);

  std::vector<des::Simulation*> sims;
  sims.reserve(apps_.size());
  for (auto& a : apps_) sims.push_back(&a->sim());
  des::ShardedSimulation::Options engine_options;
  engine_options.lookahead = options_.net_latency;
  engine_options.threaded = options_.threaded;
  engine_ = std::make_unique<des::ShardedSimulation>(std::move(sims),
                                                     engine_options);

  peers_.reserve(apps_.size());
  for (auto& a : apps_) peers_.push_back(a.get());
  if (n > 1) {
    for (int i = 0; i < n; ++i) {
      ShardBinding binding;
      binding.shard = i;
      binding.num_shards = n;
      binding.net_latency = options_.net_latency;
      binding.service_owner = &plan_.service_owner;
      binding.net = engine_.get();
      binding.peers = &peers_;
      apps_[static_cast<std::size_t>(i)]->BindShard(binding);
    }
    InstallSchedulerInstrumentation();
  }
}

void ShardedApp::InstallSchedulerInstrumentation() {
  // Durations land in milliseconds (sub-microsecond rounds underflow),
  // counts in events/messages; both ranges are generous without paying for
  // the default 50-octave layout per cell.
  const obs::HistogramConfig ms_config{1e-3, 1e6, 8};
  const obs::HistogramConfig count_config{1.0, 1e9, 8};

  round_wall_ms_ = sched_registry_.GetHistogram(
      "topfull_shard_round_wall_ms",
      "Wall time per synchronization round (drain + execute).", {}, ms_config);
  round_drain_ms_ = sched_registry_.GetHistogram(
      "topfull_shard_round_drain_ms",
      "Wall time per round spent in the drain phase.", {}, ms_config);
  rounds_total_ = sched_registry_.GetCounter(
      "topfull_shard_rounds_total", "Synchronization rounds completed.");

  sched_.resize(apps_.size());
  for (int i = 0; i < num_shards(); ++i) {
    const obs::Labels labels = {{"shard", std::to_string(i)}};
    ShardSched& s = sched_[static_cast<std::size_t>(i)];
    s.barrier_wait_ms = sched_registry_.GetHistogram(
        "topfull_shard_barrier_wait_ms",
        "Per-round wall time a shard spent blocked at the phase barrier.",
        labels, ms_config);
    s.events_per_round = sched_registry_.GetHistogram(
        "topfull_shard_events_per_round",
        "Engine events a shard processed in one round.", labels, count_config);
    s.messages_per_round = sched_registry_.GetHistogram(
        "topfull_shard_messages_per_round",
        "Cross-shard messages delivered to a shard in one round.", labels,
        count_config);
    s.mailbox_hwm = sched_registry_.GetGauge(
        "topfull_shard_mailbox_depth_hwm",
        "Deepest inbound mailbox backlog observed at a drain phase.", labels);
    s.busy_seconds = sched_registry_.GetGauge(
        "topfull_shard_busy_seconds",
        "Cumulative wall time inside drain/execute phases.", labels);
    s.blocked_seconds = sched_registry_.GetGauge(
        "topfull_shard_barrier_wait_seconds",
        "Cumulative wall time blocked at the phase barrier.", labels);
    s.messages_sent = sched_registry_.GetCounter(
        "topfull_shard_messages_sent_total",
        "Cross-shard messages sent by this shard.", labels);
    s.messages_delivered = sched_registry_.GetCounter(
        "topfull_shard_messages_delivered_total",
        "Cross-shard messages delivered to this shard.", labels);
  }

  engine_->SetRoundObserver(
      [this](const des::ShardedSimulation::RoundInfo& info) { OnRound(info); });
}

void ShardedApp::OnRound(const des::ShardedSimulation::RoundInfo& info) {
  // Runs on the RunUntil caller thread while every worker is parked at the
  // barrier, so reading engine counters and Stats() is race-free here.
  round_wall_ms_->Record(info.wall_s * 1e3);
  round_drain_ms_->Record(info.drain_s * 1e3);
  rounds_total_->Inc();
  const std::vector<des::ShardedSimulation::ShardStats>& stats =
      engine_->Stats();
  for (int i = 0; i < num_shards(); ++i) {
    ShardSched& s = sched_[static_cast<std::size_t>(i)];
    const des::ShardedSimulation::ShardStats& st =
        stats[static_cast<std::size_t>(i)];
    const des::Simulation& sim = engine_->shard(i);

    const std::uint64_t events = sim.EventsProcessed();
    s.events_per_round->Record(static_cast<double>(events - s.prev_events));
    s.prev_events = events;

    s.messages_per_round->Record(
        static_cast<double>(st.messages_delivered - s.prev_delivered));
    s.messages_sent->Inc(st.messages_sent - s.prev_sent);
    s.messages_delivered->Inc(st.messages_delivered - s.prev_delivered);
    s.prev_sent = st.messages_sent;
    s.prev_delivered = st.messages_delivered;

    s.barrier_wait_ms->Record((st.blocked_s - s.prev_blocked_s) * 1e3);
    s.prev_blocked_s = st.blocked_s;

    s.mailbox_hwm->Set(static_cast<double>(st.mailbox_depth_hwm));
    s.busy_seconds->Set(st.busy_s);
    s.blocked_seconds->Set(st.blocked_s);
  }
}

std::vector<Snapshot> ShardedApp::MergedTimeline() const {
  const auto& base = app(0).metrics().Timeline();
  std::size_t rows = base.size();
  for (int i = 1; i < num_shards(); ++i) {
    rows = std::min(rows, app(i).metrics().Timeline().size());
  }
  std::vector<Snapshot> merged;
  merged.reserve(rows);
  for (std::size_t row = 0; row < rows; ++row) {
    Snapshot snap;
    snap.t_end_s = base[row].t_end_s;
    snap.apis.reserve(base[row].apis.size());
    for (std::size_t a = 0; a < base[row].apis.size(); ++a) {
      const int origin = plan_.OriginOf(static_cast<ApiId>(a));
      snap.apis.push_back(app(origin).metrics().Timeline()[row].apis[a]);
    }
    snap.services.reserve(base[row].services.size());
    for (std::size_t s = 0; s < base[row].services.size(); ++s) {
      const int owner = plan_.OwnerOf(static_cast<ServiceId>(s));
      snap.services.push_back(app(owner).metrics().Timeline()[row].services[s]);
    }
    merged.push_back(std::move(snap));
  }
  return merged;
}

std::vector<ApiTotals> ShardedApp::MergedTotals() const {
  const int num_apis = app(0).NumApis();
  std::vector<ApiTotals> totals;
  totals.reserve(static_cast<std::size_t>(num_apis));
  for (ApiId a = 0; a < num_apis; ++a) {
    totals.push_back(
        app(plan_.OriginOf(a)).metrics().Totals()[static_cast<std::size_t>(a)]);
  }
  return totals;
}

double ShardedApp::MergedAvgTotalGoodput(double from_s, double to_s) const {
  double total = 0.0;
  for (ApiId a = 0; a < app(0).NumApis(); ++a) {
    total += app(plan_.OriginOf(a)).metrics().AvgGoodput(a, from_s, to_s);
  }
  return total;
}

std::uint64_t ShardedApp::HopTimeouts() const {
  std::uint64_t n = 0;
  for (const auto& a : apps_) n += a->HopTimeouts();
  return n;
}

std::uint64_t ShardedApp::Retries() const {
  std::uint64_t n = 0;
  for (const auto& a : apps_) n += a->Retries();
  return n;
}

std::uint64_t ShardedApp::RemoteCalls() const {
  std::uint64_t n = 0;
  for (const auto& a : apps_) n += a->RemoteCallsOut();
  return n;
}

int ShardedApp::Inflight() const {
  int n = 0;
  for (const auto& a : apps_) n += a->Inflight();
  return n;
}

}  // namespace topfull::sim

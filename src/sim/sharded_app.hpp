// ShardedApp: one logical application simulated across many engine shards.
//
// Each shard holds a full Application replica built by the same factory
// (identical topology, identical seeds, so ServiceIds, ApiIds and RNG fork
// points line up across replicas), a shard plan assigns every service an
// owning shard, and a des::ShardedSimulation synchronizes the per-shard
// engines with conservative lookahead equal to the cross-shard network
// latency. Traffic enters each API on its origin shard; hops to services
// owned elsewhere travel as timestamped messages (see Application's shard
// binding). Observability stays shard-local during the run and is merged
// deterministically afterwards: API windows are taken from the API's
// origin shard, service windows from the service's owner — each row has
// exactly one authoritative shard, so the merge is a selection, not a sum.
//
// shards=1 constructs a single unbound replica and runs it directly — the
// engine-identity digests pin that path to the unsharded engine.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/sim_time.hpp"
#include "des/sharded_simulation.hpp"
#include "obs/metrics_registry.hpp"
#include "sim/app.hpp"
#include "sim/metrics.hpp"
#include "sim/shard_plan.hpp"

namespace topfull::sim {

class ShardedApp {
 public:
  using AppFactory = std::function<std::unique_ptr<Application>()>;

  struct Options {
    int shards = 1;
    /// One-way cross-shard RPC latency; also the synchronization lookahead.
    SimTime net_latency = Millis(1);
    /// Worker threads (default) vs the same window protocol run on the
    /// calling thread. Bit-identical either way.
    bool threaded = true;
  };

  /// `factory` must return a finalized Application and must be
  /// deterministic: every call builds a structurally identical app.
  ShardedApp(const AppFactory& factory, Options options);

  int num_shards() const { return static_cast<int>(apps_.size()); }
  Application& app(int shard) { return *apps_[static_cast<std::size_t>(shard)]; }
  const Application& app(int shard) const {
    return *apps_[static_cast<std::size_t>(shard)];
  }
  const ShardPlan& plan() const { return plan_; }
  des::ShardedSimulation& engine() { return *engine_; }
  const des::ShardedSimulation& engine() const { return *engine_; }

  SimTime Now() const { return engine_->Horizon(); }
  void RunUntil(SimTime t) { engine_->RunUntil(t); }
  void RunFor(SimTime duration) { RunUntil(Now() + duration); }

  // --- Deterministic merged observability ----------------------------------

  /// Whole-run timeline with every window row taken from its authoritative
  /// shard (APIs from their origin, services from their owner).
  std::vector<Snapshot> MergedTimeline() const;
  std::vector<ApiTotals> MergedTotals() const;
  double MergedAvgTotalGoodput(double from_s = 0.0, double to_s = -1.0) const;

  /// Aggregates over shards.
  std::uint64_t HopTimeouts() const;
  std::uint64_t Retries() const;
  std::uint64_t RemoteCalls() const;
  int Inflight() const;

  /// Scheduler instrumentation registry (shards > 1): per-shard
  /// `topfull_shard_*` gauges/histograms/counters fed by the engine's round
  /// observer — round wall time, barrier waits, mailbox depth high-water,
  /// events and cross-shard messages per round. Values derive from wall
  /// clocks, so this registry is published only through the live plane and
  /// never merged into the deterministic offline exports. Written on the
  /// RunUntil caller thread between rounds; read it only at quiescent
  /// points (the same contract as the per-shard app registries).
  const obs::MetricsRegistry& scheduler_registry() const {
    return sched_registry_;
  }

 private:
  /// Per-shard scheduler metric handles + previous cumulative engine
  /// counters (the observer records per-round deltas).
  struct ShardSched {
    obs::Histogram* barrier_wait_ms = nullptr;
    obs::Histogram* events_per_round = nullptr;
    obs::Histogram* messages_per_round = nullptr;
    obs::Gauge* mailbox_hwm = nullptr;
    obs::Gauge* busy_seconds = nullptr;
    obs::Gauge* blocked_seconds = nullptr;
    obs::Counter* messages_sent = nullptr;
    obs::Counter* messages_delivered = nullptr;
    std::uint64_t prev_events = 0;
    std::uint64_t prev_sent = 0;
    std::uint64_t prev_delivered = 0;
    double prev_blocked_s = 0.0;
  };

  void InstallSchedulerInstrumentation();
  void OnRound(const des::ShardedSimulation::RoundInfo& info);

  Options options_;
  std::vector<std::unique_ptr<Application>> apps_;
  std::vector<Application*> peers_;
  ShardPlan plan_;
  std::unique_ptr<des::ShardedSimulation> engine_;

  obs::MetricsRegistry sched_registry_;
  obs::Histogram* round_wall_ms_ = nullptr;
  obs::Histogram* round_drain_ms_ = nullptr;
  obs::Counter* rounds_total_ = nullptr;
  std::vector<ShardSched> sched_;
};

}  // namespace topfull::sim

// Shared identifiers and request-level types of the microservice simulator.
#pragma once

#include <cstdint>
#include <limits>

#include "common/sim_time.hpp"

namespace topfull::sim {

/// Index of an external API within an Application.
using ApiId = int;

/// Index of a microservice within an Application.
using ServiceId = int;

/// Unique id of a client request instance.
using RequestId = std::uint64_t;

inline constexpr ServiceId kNoService = -1;
inline constexpr ApiId kNoApi = -1;

/// Why a request terminated.
enum class Outcome : std::uint8_t {
  kCompleted,        ///< All call-tree nodes responded.
  kRejectedEntry,    ///< Shed by the entry rate limiter (TopFull).
  kRejectedService,  ///< Shed by a per-service admission controller or a
                     ///< full pod queue anywhere along the path.
};

/// Immutable per-request facts consulted by admission controllers.
struct RequestInfo {
  RequestId id = 0;
  ApiId api = kNoApi;
  /// Business priority of the API. Smaller value = higher priority
  /// (priority 1 outranks priority 2), mirroring DAGOR's convention.
  int business_priority = 0;
  /// DAGOR-style user priority in [0, 127], assigned at entry and inherited
  /// by every sub-request of this request.
  int user_priority = 0;
};

}  // namespace topfull::sim

#include "trace/synthetic_trace.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/rng.hpp"
#include "common/union_find.hpp"

namespace topfull::trace {
namespace {

/// Samples an index in [0, n) with Zipf(s) popularity using inverse-CDF on a
/// precomputed cumulative table.
class ZipfSampler {
 public:
  ZipfSampler(int n, double s) : cdf_(static_cast<std::size_t>(n)) {
    double acc = 0.0;
    for (int i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[static_cast<std::size_t>(i)] = acc;
    }
    total_ = acc;
  }

  int Sample(Rng& rng) const {
    const double u = rng.NextDouble() * total_;
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<int>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
  double total_ = 0.0;
};

std::vector<int> OverloadedServices(const SyntheticTrace& trace, double threshold) {
  std::vector<int> out;
  for (int s = 0; s < trace.num_services; ++s) {
    if (trace.cpu_util[static_cast<std::size_t>(s)] > threshold) out.push_back(s);
  }
  return out;
}

/// service -> APIs traversing it, restricted to the given services.
std::map<int, std::vector<int>> ApisByService(const SyntheticTrace& trace,
                                              const std::vector<int>& services) {
  std::set<int> wanted(services.begin(), services.end());
  std::map<int, std::vector<int>> result;
  for (const int s : services) result[s];  // ensure entries exist
  for (std::size_t a = 0; a < trace.api_paths.size(); ++a) {
    for (const int s : trace.api_paths[a]) {
      if (wanted.count(s) > 0) result[s].push_back(static_cast<int>(a));
    }
  }
  for (auto& [s, apis] : result) {
    std::sort(apis.begin(), apis.end());
    apis.erase(std::unique(apis.begin(), apis.end()), apis.end());
  }
  return result;
}

}  // namespace

SyntheticTrace GenerateTrace(const TraceConfig& config, std::uint64_t seed) {
  Rng rng(seed);
  SyntheticTrace trace;
  trace.num_services = config.num_services;
  trace.api_paths.resize(static_cast<std::size_t>(config.num_apis));
  trace.cpu_util.assign(static_cast<std::size_t>(config.num_services), 0.0);

  // Popularity permutation: rank r of Zipf maps to a random service id, so
  // hot services are scattered across the id space.
  std::vector<int> perm(static_cast<std::size_t>(config.num_services));
  for (int i = 0; i < config.num_services; ++i) perm[static_cast<std::size_t>(i)] = i;
  for (std::size_t i = perm.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(i) - 1));
    std::swap(perm[i - 1], perm[j]);
  }

  ZipfSampler zipf(config.num_services, config.zipf_exponent);

  // Backbone segments: short chains shared verbatim across API paths.
  // Segments take *disjoint* services from the moderately-popular rank
  // band — a sub-chain belongs to one application, so two different
  // segments never share a microservice (this keeps the sharing groups of
  // the overload analysis small, as in the real trace).
  std::vector<std::vector<int>> segments(
      static_cast<std::size_t>(config.num_segments));
  {
    std::size_t rank = 100;  // skip the global top: those stay standalone
    for (auto& segment : segments) {
      const int len = static_cast<int>(
          rng.UniformInt(config.segment_len_lo, config.segment_len_hi));
      for (int k = 0; k < len && rank < perm.size(); ++k) {
        segment.push_back(perm[rank++]);
      }
    }
  }
  ZipfSampler segment_zipf(config.num_segments, 1.0);

  for (auto& path : trace.api_paths) {
    const int len = static_cast<int>(
        rng.UniformInt(config.min_path_len, config.max_path_len));
    std::set<int> used;
    if (rng.Bernoulli(config.segment_prob)) {
      const auto& segment = segments[static_cast<std::size_t>(segment_zipf.Sample(rng))];
      used.insert(segment.begin(), segment.end());
      if (rng.Bernoulli(config.second_segment_prob)) {
        const auto& extra =
            segments[static_cast<std::size_t>(segment_zipf.Sample(rng))];
        used.insert(extra.begin(), extra.end());
      }
    }
    while (static_cast<int>(used.size()) < len) {
      used.insert(perm[static_cast<std::size_t>(zipf.Sample(rng))]);
    }
    path.assign(used.begin(), used.end());
  }

  // Baseline utilisation.
  for (auto& util : trace.cpu_util) util = rng.Uniform(0.05, 0.75);

  // Mark ~target_overloaded services as overloaded. A fraction arrives as
  // correlated incidents — two services on one API's execution path
  // saturating together (overload propagates along call chains) — and the
  // rest are independent services picked uniformly (with 23k services,
  // these are almost surely unpopular and isolated).
  std::set<int> overloaded;
  Rng orng = rng.Fork("overload");
  const int correlated_target = static_cast<int>(
      config.correlated_fraction * config.target_overloaded);
  int guard = 0;
  while (static_cast<int>(overloaded.size()) < correlated_target && ++guard < 100000) {
    // A whole backbone segment saturates together (overload propagates
    // along the shared call chain); the busier segments saturate first.
    const int pool = std::min(config.hot_segment_pool, config.num_segments);
    const auto& segment = segments[static_cast<std::size_t>(
        orng.UniformInt(0, pool - 1))];
    overloaded.insert(segment.begin(), segment.end());
  }
  while (static_cast<int>(overloaded.size()) < config.target_overloaded) {
    // Independent saturations on mid-popularity standalone services: busy
    // enough that a few APIs are involved, rare enough that they stay
    // isolated from every other overloaded microservice.
    const auto lo = std::min<std::int64_t>(1000, config.num_services / 4);
    const auto hi = std::min<std::int64_t>(8000, config.num_services - 1);
    const auto rank = static_cast<std::size_t>(orng.UniformInt(lo, std::max(lo, hi)));
    overloaded.insert(perm[rank]);
  }
  for (const int s : overloaded) {
    trace.cpu_util[static_cast<std::size_t>(s)] = orng.Uniform(0.82, 0.99);
  }
  return trace;
}

StarvationAnalysis AnalyzeStarvation(const SyntheticTrace& trace,
                                     double util_threshold) {
  StarvationAnalysis result;
  const std::vector<int> overloaded = OverloadedServices(trace, util_threshold);
  result.overloaded_services = static_cast<int>(overloaded.size());
  const auto by_service = ApisByService(trace, overloaded);

  // Per API: which overloaded services it touches.
  std::map<int, std::vector<int>> api_overloaded;
  for (const auto& [s, apis] : by_service) {
    for (const int a : apis) api_overloaded[a].push_back(s);
  }
  result.apis_involved = static_cast<int>(api_overloaded.size());
  for (const auto& [a, services] : api_overloaded) {
    if (services.size() < 2) continue;  // needs multiple overloaded services
    // ... and at least one contending API at some overloaded service.
    bool contended = false;
    for (const int s : services) {
      if (by_service.at(s).size() > 1) {
        contended = true;
        break;
      }
    }
    if (contended) ++result.vulnerable_apis;
  }
  result.vulnerable_fraction =
      result.apis_involved > 0
          ? static_cast<double>(result.vulnerable_apis) / result.apis_involved
          : 0.0;
  return result;
}

ClusteringAnalysis AnalyzeClustering(const SyntheticTrace& trace,
                                     double util_threshold) {
  ClusteringAnalysis result;
  const std::vector<int> overloaded = OverloadedServices(trace, util_threshold);
  result.overloaded_services = static_cast<int>(overloaded.size());
  if (overloaded.empty()) return result;
  const auto by_service = ApisByService(trace, overloaded);

  // Union overloaded services that share any API (Eq. 2 on the service
  // side: two constraints belong to one sub-problem iff an API links them).
  std::map<int, std::size_t> index;
  for (std::size_t i = 0; i < overloaded.size(); ++i) index[overloaded[i]] = i;
  UnionFind dsu(overloaded.size());
  std::map<int, int> first_service_of_api;  // api -> overloaded service seen
  for (const auto& [s, apis] : by_service) {
    for (const int a : apis) {
      const auto it = first_service_of_api.find(a);
      if (it == first_service_of_api.end()) {
        first_service_of_api[a] = s;
      } else {
        dsu.Union(index[it->second], index[s]);
      }
    }
  }

  std::map<std::size_t, int> cluster_sizes;
  for (std::size_t i = 0; i < overloaded.size(); ++i) ++cluster_sizes[dsu.Find(i)];
  result.clusters = static_cast<int>(cluster_sizes.size());
  result.overloaded_ids = overloaded;
  result.service_cluster.resize(overloaded.size());
  std::map<std::size_t, int> cluster_id;  // dsu root -> dense id
  for (std::size_t i = 0; i < overloaded.size(); ++i) {
    const std::size_t root = dsu.Find(i);
    auto it = cluster_id.find(root);
    if (it == cluster_id.end()) {
      const int next = static_cast<int>(cluster_id.size());
      it = cluster_id.emplace(root, next).first;
    }
    result.service_cluster[i] = it->second;
  }
  result.avg_constraints_per_cluster =
      static_cast<double>(overloaded.size()) / static_cast<double>(result.clusters);

  int isolated = 0;
  double sharing_group_total = 0.0;
  int sharing = 0;
  for (std::size_t i = 0; i < overloaded.size(); ++i) {
    const std::size_t size = dsu.SizeOf(i);
    if (size == 1) {
      ++isolated;
    } else {
      ++sharing;
      sharing_group_total += static_cast<double>(size);
    }
  }
  result.isolated_fraction =
      static_cast<double>(isolated) / static_cast<double>(overloaded.size());
  result.avg_sharing_group = sharing > 0 ? sharing_group_total / sharing : 0.0;
  return result;
}

}  // namespace topfull::trace

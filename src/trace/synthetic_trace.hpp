// Synthetic Alibaba-style cluster trace and the paper's two offline
// analyses over it.
//
// The paper analyses the Alibaba 2021 microservice trace (23 481
// microservices with CPU-utilisation samples and API execution paths) to
// show (a) §2: 44.4 % of APIs touching overloaded microservices are
// starvation-vulnerable, and (b) §6.4: at any instant at most ~68
// microservices are overloaded and they decompose into ~57 independent
// clusters averaging 1.19 constraints. The real trace is not redistributable
// here, so we generate a trace with matching shape: Zipf service popularity
// across API paths and overload probability biased towards popular services
// (hot services are the ones that saturate).
#pragma once

#include <cstdint>
#include <vector>

namespace topfull::trace {

struct TraceConfig {
  int num_services = 23481;  ///< paper: 23,481 microservices
  int num_apis = 3000;
  int min_path_len = 2;
  int max_path_len = 8;
  double zipf_exponent = 0.7;   ///< service popularity skew in paths
  /// Backbone segments: short service chains (think auth -> user, or
  /// basic -> station) shared verbatim by many API paths, the way real
  /// call graphs share sub-chains. Segment popularity is Zipf-skewed.
  int num_segments = 300;
  int segment_len_lo = 2, segment_len_hi = 3;
  double segment_prob = 0.5;    ///< chance an API path embeds a segment
  /// Correlated overload incidents are drawn from the busiest segments.
  int hot_segment_pool = 80;
  double second_segment_prob = 0.1;
  double util_threshold = 0.8;  ///< paper: overloaded when CPU util > 0.8
  int target_overloaded = 68;   ///< paper: up to 68 overloaded at a time
  /// Fraction of the overloaded set that comes from *correlated incidents*:
  /// overload propagates along call paths, so pairs of services on one
  /// API's execution path saturate together. The rest are independent
  /// (mostly unpopular, hence isolated) services. This is what produces the
  /// paper's mix of 59 % isolated overloaded services alongside 44 % of
  /// involved APIs being starvation-vulnerable.
  double correlated_fraction = 0.42;
};

struct SyntheticTrace {
  int num_services = 0;
  std::vector<std::vector<int>> api_paths;  ///< api -> involved services
  std::vector<double> cpu_util;             ///< per-service utilisation sample
};

SyntheticTrace GenerateTrace(const TraceConfig& config, std::uint64_t seed);

/// §2 analysis: of the APIs involved in at least one overloaded
/// microservice, how many are starvation-vulnerable — i.e. involved in more
/// than one overloaded microservice while having at least one contending
/// API at some shared overloaded microservice.
struct StarvationAnalysis {
  int overloaded_services = 0;
  int apis_involved = 0;
  int vulnerable_apis = 0;
  double vulnerable_fraction = 0.0;
};
StarvationAnalysis AnalyzeStarvation(const SyntheticTrace& trace,
                                     double util_threshold);

/// §6.4 analysis: cluster the overloaded microservices by shared APIs.
struct ClusteringAnalysis {
  int overloaded_services = 0;
  int clusters = 0;
  double avg_constraints_per_cluster = 0.0;  ///< overloaded ms per cluster
  /// Fraction of overloaded microservices sharing no API with any other
  /// overloaded microservice (paper: 59 %).
  double isolated_fraction = 0.0;
  /// Among the sharing ones, average size of their sharing group
  /// (paper: 2.38).
  double avg_sharing_group = 0.0;
  /// The overloaded service ids, ascending, and the cluster each belongs
  /// to (dense ids, numbered by first appearance in `overloaded_ids`
  /// order). Feeds the cluster -> shard packing of the sharded DES.
  std::vector<int> overloaded_ids;
  std::vector<int> service_cluster;
};
ClusteringAnalysis AnalyzeClustering(const SyntheticTrace& trace,
                                     double util_threshold);

}  // namespace topfull::trace
